module github.com/hybridmig/hybridmig

go 1.24
