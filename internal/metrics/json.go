package metrics

import (
	"encoding/json"
	"math"
)

// JSON shapes for the campaign records: stable snake_case keys plus the
// derived aggregates (makespan, per-job wait/duration) that consumers of the
// text tables read off the rendered output. Marshal-only — the derived
// fields make unmarshal lossy, and nothing in the repo reads campaigns back.

// finite clamps NaN and ±Inf to 0. encoding/json rejects non-finite floats
// (json.UnsupportedValueError), so a degenerate campaign — zero jobs, a
// zero-duration window, an aborted run with garbage timestamps — would turn
// the whole marshal into an error. For these derived aggregates 0 is the
// honest "nothing measurable" value and keeps the record serializable.
func finite(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return v
}

// MarshalJSON renders the job record with its derived wait and duration.
func (j JobStat) MarshalJSON() ([]byte, error) {
	return json.Marshal(struct {
		Name        string  `json:"name"`
		QueuedS     float64 `json:"queued_s"`
		StartedS    float64 `json:"started_s"`
		FinishedS   float64 `json:"finished_s"`
		WaitS       float64 `json:"wait_s"`
		DurationS   float64 `json:"duration_s"`
		DowntimeMS  float64 `json:"downtime_ms"`
		Attempts    int     `json:"attempts,omitempty"`
		Exhausted   bool    `json:"exhausted,omitempty"`
		WastedBytes float64 `json:"wasted_bytes,omitempty"`
		Fenced      int     `json:"fenced,omitempty"`
	}{
		Name:        j.Name,
		QueuedS:     finite(j.Queued),
		StartedS:    finite(j.Started),
		FinishedS:   finite(j.Finished),
		WaitS:       finite(j.Wait()),
		DurationS:   finite(j.Duration()),
		DowntimeMS:  finite(j.Downtime * 1000),
		Attempts:    j.Attempts,
		Exhausted:   j.Exhausted,
		WastedBytes: finite(j.WastedBytes),
		Fenced:      j.Fenced,
	})
}

// MarshalJSON renders one tag's byte attribution.
func (t TagBytes) MarshalJSON() ([]byte, error) {
	return json.Marshal(struct {
		Tag   string  `json:"tag"`
		Bytes float64 `json:"bytes"`
	}{Tag: t.Tag, Bytes: finite(t.Bytes)})
}

// MarshalJSON renders the campaign with its derived aggregates.
func (c *Campaign) MarshalJSON() ([]byte, error) {
	return json.Marshal(struct {
		Policy            string     `json:"policy"`
		Jobs              int        `json:"jobs"`
		StartS            float64    `json:"start_s"`
		EndS              float64    `json:"end_s"`
		MakespanS         float64    `json:"makespan_s"`
		AvgMigrationS     float64    `json:"avg_migration_s"`
		TotalDowntimeMS   float64    `json:"total_downtime_ms"`
		PeakConcurrent    int        `json:"peak_concurrent"`
		PeakFlows         int        `json:"peak_flows"`
		TransferredBytes  float64    `json:"transferred_bytes"`
		Retries           int        `json:"retries,omitempty"`
		ExhaustedJobs     int        `json:"exhausted_jobs,omitempty"`
		WastedBytes       float64    `json:"wasted_bytes,omitempty"`
		FencedMigrations  int        `json:"fenced_migrations,omitempty"`
		SplitBrainWindows int        `json:"split_brain_windows,omitempty"`
		Traffic           []TagBytes `json:"traffic,omitempty"`
		JobStats          []JobStat  `json:"job_stats"`
	}{
		Policy:            c.Policy,
		Jobs:              c.Jobs,
		StartS:            finite(c.Start),
		EndS:              finite(c.End),
		MakespanS:         finite(c.Makespan()),
		AvgMigrationS:     finite(c.AvgMigrationTime()),
		TotalDowntimeMS:   finite(c.TotalDowntime * 1000),
		PeakConcurrent:    c.PeakConcurrent,
		PeakFlows:         c.PeakFlows,
		TransferredBytes:  finite(c.TransferredBytes),
		Retries:           c.Retries,
		ExhaustedJobs:     c.ExhaustedJobs,
		WastedBytes:       finite(c.WastedBytes),
		FencedMigrations:  c.FencedMigrations,
		SplitBrainWindows: c.SplitBrainWindows,
		Traffic:           c.Traffic,
		JobStats:          c.JobStats,
	})
}
