package metrics

import "encoding/json"

// JSON shapes for the campaign records: stable snake_case keys plus the
// derived aggregates (makespan, per-job wait/duration) that consumers of the
// text tables read off the rendered output. Marshal-only — the derived
// fields make unmarshal lossy, and nothing in the repo reads campaigns back.

// MarshalJSON renders the job record with its derived wait and duration.
func (j JobStat) MarshalJSON() ([]byte, error) {
	return json.Marshal(struct {
		Name        string  `json:"name"`
		QueuedS     float64 `json:"queued_s"`
		StartedS    float64 `json:"started_s"`
		FinishedS   float64 `json:"finished_s"`
		WaitS       float64 `json:"wait_s"`
		DurationS   float64 `json:"duration_s"`
		DowntimeMS  float64 `json:"downtime_ms"`
		Attempts    int     `json:"attempts,omitempty"`
		Exhausted   bool    `json:"exhausted,omitempty"`
		WastedBytes float64 `json:"wasted_bytes,omitempty"`
		Fenced      int     `json:"fenced,omitempty"`
	}{
		Name:        j.Name,
		QueuedS:     j.Queued,
		StartedS:    j.Started,
		FinishedS:   j.Finished,
		WaitS:       j.Wait(),
		DurationS:   j.Duration(),
		DowntimeMS:  j.Downtime * 1000,
		Attempts:    j.Attempts,
		Exhausted:   j.Exhausted,
		WastedBytes: j.WastedBytes,
		Fenced:      j.Fenced,
	})
}

// MarshalJSON renders one tag's byte attribution.
func (t TagBytes) MarshalJSON() ([]byte, error) {
	return json.Marshal(struct {
		Tag   string  `json:"tag"`
		Bytes float64 `json:"bytes"`
	}{Tag: t.Tag, Bytes: t.Bytes})
}

// MarshalJSON renders the campaign with its derived aggregates.
func (c *Campaign) MarshalJSON() ([]byte, error) {
	return json.Marshal(struct {
		Policy            string     `json:"policy"`
		Jobs              int        `json:"jobs"`
		StartS            float64    `json:"start_s"`
		EndS              float64    `json:"end_s"`
		MakespanS         float64    `json:"makespan_s"`
		AvgMigrationS     float64    `json:"avg_migration_s"`
		TotalDowntimeMS   float64    `json:"total_downtime_ms"`
		PeakConcurrent    int        `json:"peak_concurrent"`
		PeakFlows         int        `json:"peak_flows"`
		TransferredBytes  float64    `json:"transferred_bytes"`
		Retries           int        `json:"retries,omitempty"`
		ExhaustedJobs     int        `json:"exhausted_jobs,omitempty"`
		WastedBytes       float64    `json:"wasted_bytes,omitempty"`
		FencedMigrations  int        `json:"fenced_migrations,omitempty"`
		SplitBrainWindows int        `json:"split_brain_windows,omitempty"`
		Traffic           []TagBytes `json:"traffic,omitempty"`
		JobStats          []JobStat  `json:"job_stats"`
	}{
		Policy:            c.Policy,
		Jobs:              c.Jobs,
		StartS:            c.Start,
		EndS:              c.End,
		MakespanS:         c.Makespan(),
		AvgMigrationS:     c.AvgMigrationTime(),
		TotalDowntimeMS:   c.TotalDowntime * 1000,
		PeakConcurrent:    c.PeakConcurrent,
		PeakFlows:         c.PeakFlows,
		TransferredBytes:  c.TransferredBytes,
		Retries:           c.Retries,
		ExhaustedJobs:     c.ExhaustedJobs,
		WastedBytes:       c.WastedBytes,
		FencedMigrations:  c.FencedMigrations,
		SplitBrainWindows: c.SplitBrainWindows,
		Traffic:           c.Traffic,
		JobStats:          c.JobStats,
	})
}
