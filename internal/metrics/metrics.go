// Package metrics provides the small reporting utilities the experiment
// harness uses: aligned text tables (the "rows the paper reports") and
// unit-formatting helpers.
package metrics

import (
	"fmt"
	"strings"
)

// Table accumulates rows and renders them with aligned columns.
type Table struct {
	Title   string
	header  []string
	rows    [][]string
	numeric []bool // column alignment: numeric columns are right-aligned
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, header ...string) *Table {
	return &Table{Title: title, header: header, numeric: make([]bool, len(header))}
}

// AddRow appends a row; values are formatted with %v, float64 with %.2f.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
			if i < len(t.numeric) {
				t.numeric[i] = true
			}
		case int, int64, uint64:
			row[i] = fmt.Sprintf("%d", v)
			if i < len(t.numeric) {
				t.numeric[i] = true
			}
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.rows = append(t.rows, row)
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			if i < len(t.numeric) && t.numeric[i] {
				b.WriteString(strings.Repeat(" ", widths[i]-len(c)))
				b.WriteString(c)
			} else {
				b.WriteString(c)
				b.WriteString(strings.Repeat(" ", widths[i]-len(c)))
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total-2))
	b.WriteByte('\n')
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}

// MB renders bytes as megabytes.
func MB(bytes float64) float64 { return bytes / (1 << 20) }

// GB renders bytes as gigabytes.
func GB(bytes float64) float64 { return bytes / (1 << 30) }

// Pct renders a 0..1 ratio as a percentage.
func Pct(x float64) float64 { return x * 100 }

// Ratio guards against division by zero.
func Ratio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}
