// Package metrics provides the small reporting utilities the experiment
// harness uses: aligned text tables (the "rows the paper reports") and
// unit-formatting helpers.
package metrics

import (
	"fmt"
	"strings"
)

// Table accumulates rows and renders them with aligned columns.
type Table struct {
	Title   string
	header  []string
	rows    [][]string
	numeric []bool // column alignment: numeric columns are right-aligned
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, header ...string) *Table {
	return &Table{Title: title, header: header, numeric: make([]bool, len(header))}
}

// AddRow appends a row; values are formatted with %v, float64 with %.2f.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
			if i < len(t.numeric) {
				t.numeric[i] = true
			}
		case int, int64, uint64:
			row[i] = fmt.Sprintf("%d", v)
			if i < len(t.numeric) {
				t.numeric[i] = true
			}
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.rows = append(t.rows, row)
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			if i < len(t.numeric) && t.numeric[i] {
				b.WriteString(strings.Repeat(" ", widths[i]-len(c)))
				b.WriteString(c)
			} else {
				b.WriteString(c)
				b.WriteString(strings.Repeat(" ", widths[i]-len(c)))
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total-2))
	b.WriteByte('\n')
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}

// JobStat is the per-migration record of a campaign: when the job was
// submitted, when the policy admitted it, and what it cost.
type JobStat struct {
	Name     string
	Queued   float64 // campaign start (all jobs are submitted together)
	Started  float64 // first admission: window open and slot acquired
	Finished float64
	Downtime float64 // stop-and-copy duration of this migration

	// Fault/retry outcome. Attempts counts runs of the job (1 when nothing
	// went wrong); Exhausted marks a job whose retry budget ran out without
	// a completed migration; WastedBytes is the wire traffic its aborted
	// attempts threw away; Fenced counts attempts aborted by fencing
	// decisions of the shared-volume attachment manager.
	Attempts    int
	Exhausted   bool
	WastedBytes float64
	Fenced      int
}

// Wait returns how long the policy held the job back before it ran.
func (j JobStat) Wait() float64 { return j.Started - j.Queued }

// Duration returns the job's own migration time.
func (j JobStat) Duration() float64 { return j.Finished - j.Started }

// TagBytes attributes campaign traffic to one flow tag (the tag name is
// kept as a string so this package stays dependency-free).
type TagBytes struct {
	Tag   string
	Bytes float64
}

// Campaign aggregates one orchestrated batch of live migrations: the
// quantities concurrent-migration studies report (makespan, cumulative
// downtime, total bytes moved, peak concurrency) plus per-job records and a
// per-tag traffic breakdown for interference analysis.
type Campaign struct {
	Policy string
	Jobs   int
	Start  float64
	End    float64

	TotalDowntime     float64
	PeakConcurrent    int     // most jobs running at once
	PeakFlows         int     // most network/disk flows active at a job boundary
	TransferredBytes  float64 // all bytes moved while the campaign ran
	Retries           int     // aborted attempts that were re-admitted
	ExhaustedJobs     int     // jobs that ran out of retry budget
	WastedBytes       float64 // wire bytes thrown away by aborted attempts
	FencedMigrations  int     // attempts aborted because fencing won
	SplitBrainWindows int     // unsafe failovers taken while the campaign ran (NoFencing only)
	Traffic           []TagBytes
	JobStats          []JobStat
}

// Makespan returns the wall-clock span of the campaign: first submission to
// last completion.
func (c *Campaign) Makespan() float64 { return c.End - c.Start }

// TotalMigrationTime returns the sum of per-job migration durations.
func (c *Campaign) TotalMigrationTime() float64 {
	var s float64
	for _, j := range c.JobStats {
		s += j.Duration()
	}
	return s
}

// AvgMigrationTime returns the mean per-job migration duration.
func (c *Campaign) AvgMigrationTime() float64 {
	return Ratio(c.TotalMigrationTime(), float64(len(c.JobStats)))
}

// TagBytesFor returns the campaign traffic attributed to the named tag.
func (c *Campaign) TagBytesFor(tag string) float64 {
	for _, t := range c.Traffic {
		if t.Tag == tag {
			return t.Bytes
		}
	}
	return 0
}

// Summary renders the campaign's aggregate line and per-job rows.
func (c *Campaign) Summary() *Table {
	t := NewTable(
		fmt.Sprintf("Campaign: %d migrations under %s — makespan %.2f s, avg migration %.2f s, total downtime %.0f ms, moved %.1f MB, peak %d concurrent (%d flows)",
			c.Jobs, c.Policy, c.Makespan(), c.AvgMigrationTime(),
			c.TotalDowntime*1000, MB(c.TransferredBytes), c.PeakConcurrent, c.PeakFlows),
		"job", "wait_s", "migration_s", "downtime_ms")
	for _, j := range c.JobStats {
		t.AddRow(j.Name, j.Wait(), j.Duration(), j.Downtime*1000)
	}
	return t
}

// MB renders bytes as megabytes.
func MB(bytes float64) float64 { return bytes / (1 << 20) }

// GB renders bytes as gigabytes.
func GB(bytes float64) float64 { return bytes / (1 << 30) }

// Pct renders a 0..1 ratio as a percentage.
func Pct(x float64) float64 { return x * 100 }

// Ratio guards against division by zero.
func Ratio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}
