package metrics

import (
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tab := NewTable("Title", "name", "value")
	tab.AddRow("alpha", 1.5)
	tab.AddRow("beta-longer", 42)
	s := tab.String()
	if !strings.HasPrefix(s, "Title\n") {
		t.Fatalf("missing title: %q", s)
	}
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 4 { // title, header, rule, 2 rows -> 5? title+header+rule+2 = 5
		if len(lines) != 5 {
			t.Fatalf("lines = %d: %q", len(lines), s)
		}
	}
	if !strings.Contains(s, "1.50") {
		t.Fatalf("float not formatted: %q", s)
	}
	if !strings.Contains(s, "42") {
		t.Fatalf("int missing: %q", s)
	}
	// Numeric columns right-align: the 42 row should pad on the left.
	for _, l := range lines {
		if strings.Contains(l, "beta-longer") && !strings.Contains(l, "   42") {
			t.Fatalf("numeric column not right-aligned: %q", l)
		}
	}
}

func TestTableNoTitle(t *testing.T) {
	tab := NewTable("", "a")
	tab.AddRow("x")
	if strings.HasPrefix(tab.String(), "\n") {
		t.Fatal("empty title produced a leading newline")
	}
}

func TestUnitHelpers(t *testing.T) {
	if MB(1<<20) != 1 || GB(1<<30) != 1 {
		t.Fatal("unit conversions wrong")
	}
	if Pct(0.5) != 50 {
		t.Fatal("Pct wrong")
	}
	if Ratio(1, 0) != 0 {
		t.Fatal("Ratio must guard zero denominators")
	}
	if Ratio(6, 3) != 2 {
		t.Fatal("Ratio wrong")
	}
}

func TestCampaignAggregates(t *testing.T) {
	c := &Campaign{
		Policy: "batched-2",
		Jobs:   2,
		Start:  10,
		End:    30,
		JobStats: []JobStat{
			{Name: "vm0", Queued: 10, Started: 10, Finished: 22, Downtime: 0.03},
			{Name: "vm1", Queued: 10, Started: 14, Finished: 30, Downtime: 0.05},
		},
		TotalDowntime:    0.08,
		TransferredBytes: 3 << 20,
		Traffic:          []TagBytes{{Tag: "memory", Bytes: 1 << 20}, {Tag: "push", Bytes: 2 << 20}},
	}
	if c.Makespan() != 20 {
		t.Errorf("makespan = %v", c.Makespan())
	}
	if c.TotalMigrationTime() != 28 {
		t.Errorf("total migration time = %v", c.TotalMigrationTime())
	}
	if c.AvgMigrationTime() != 14 {
		t.Errorf("avg migration time = %v", c.AvgMigrationTime())
	}
	if c.JobStats[1].Wait() != 4 {
		t.Errorf("wait = %v", c.JobStats[1].Wait())
	}
	if c.TagBytesFor("push") != 2<<20 {
		t.Errorf("push bytes = %v", c.TagBytesFor("push"))
	}
	if c.TagBytesFor("absent") != 0 {
		t.Errorf("absent tag bytes = %v", c.TagBytesFor("absent"))
	}
	s := c.Summary().String()
	for _, want := range []string{"batched-2", "vm0", "vm1", "makespan 20.00 s", "total downtime 80 ms"} {
		if !strings.Contains(s, want) {
			t.Errorf("summary missing %q:\n%s", want, s)
		}
	}
}
