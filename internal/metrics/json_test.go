package metrics

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestCampaignJSON(t *testing.T) {
	c := &Campaign{
		Policy: "batched-2",
		Jobs:   2,
		Start:  10,
		End:    30,

		TotalDowntime:    0.05,
		PeakConcurrent:   2,
		PeakFlows:        7,
		TransferredBytes: 1 << 30,
		Traffic:          []TagBytes{{Tag: "memory", Bytes: 1 << 29}},
		JobStats: []JobStat{
			{Name: "vm0", Queued: 10, Started: 10, Finished: 22, Downtime: 0.03},
			{Name: "vm1", Queued: 10, Started: 12, Finished: 30, Downtime: 0.02},
		},
	}
	raw, err := json.Marshal(c)
	if err != nil {
		t.Fatal(err)
	}
	var got map[string]any
	if err := json.Unmarshal(raw, &got); err != nil {
		t.Fatalf("output not valid JSON: %v", err)
	}
	if got["policy"] != "batched-2" {
		t.Errorf("policy = %v", got["policy"])
	}
	if got["makespan_s"] != 20.0 {
		t.Errorf("makespan_s = %v, want 20 (derived field missing?)", got["makespan_s"])
	}
	if got["avg_migration_s"] != 15.0 {
		t.Errorf("avg_migration_s = %v, want 15", got["avg_migration_s"])
	}
	if got["total_downtime_ms"] != 50.0 {
		t.Errorf("total_downtime_ms = %v, want 50", got["total_downtime_ms"])
	}
	jobs, ok := got["job_stats"].([]any)
	if !ok || len(jobs) != 2 {
		t.Fatalf("job_stats = %v", got["job_stats"])
	}
	j0 := jobs[0].(map[string]any)
	if j0["wait_s"] != 0.0 || j0["duration_s"] != 12.0 || j0["downtime_ms"] != 30.0 {
		t.Errorf("job 0 derived fields wrong: %v", j0)
	}
	traffic := got["traffic"].([]any)[0].(map[string]any)
	if traffic["tag"] != "memory" {
		t.Errorf("traffic tag = %v", traffic["tag"])
	}
	// Keys are stable snake_case: a rename would break downstream parsers.
	for _, key := range []string{"policy", "jobs", "makespan_s", "peak_concurrent", "transferred_bytes"} {
		if !strings.Contains(string(raw), `"`+key+`"`) {
			t.Errorf("key %q missing from %s", key, raw)
		}
	}
}
