package metrics

import (
	"encoding/json"
	"math"
	"strings"
	"testing"
)

func TestCampaignJSON(t *testing.T) {
	c := &Campaign{
		Policy: "batched-2",
		Jobs:   2,
		Start:  10,
		End:    30,

		TotalDowntime:    0.05,
		PeakConcurrent:   2,
		PeakFlows:        7,
		TransferredBytes: 1 << 30,
		Traffic:          []TagBytes{{Tag: "memory", Bytes: 1 << 29}},
		JobStats: []JobStat{
			{Name: "vm0", Queued: 10, Started: 10, Finished: 22, Downtime: 0.03},
			{Name: "vm1", Queued: 10, Started: 12, Finished: 30, Downtime: 0.02},
		},
	}
	raw, err := json.Marshal(c)
	if err != nil {
		t.Fatal(err)
	}
	var got map[string]any
	if err := json.Unmarshal(raw, &got); err != nil {
		t.Fatalf("output not valid JSON: %v", err)
	}
	if got["policy"] != "batched-2" {
		t.Errorf("policy = %v", got["policy"])
	}
	if got["makespan_s"] != 20.0 {
		t.Errorf("makespan_s = %v, want 20 (derived field missing?)", got["makespan_s"])
	}
	if got["avg_migration_s"] != 15.0 {
		t.Errorf("avg_migration_s = %v, want 15", got["avg_migration_s"])
	}
	if got["total_downtime_ms"] != 50.0 {
		t.Errorf("total_downtime_ms = %v, want 50", got["total_downtime_ms"])
	}
	jobs, ok := got["job_stats"].([]any)
	if !ok || len(jobs) != 2 {
		t.Fatalf("job_stats = %v", got["job_stats"])
	}
	j0 := jobs[0].(map[string]any)
	if j0["wait_s"] != 0.0 || j0["duration_s"] != 12.0 || j0["downtime_ms"] != 30.0 {
		t.Errorf("job 0 derived fields wrong: %v", j0)
	}
	traffic := got["traffic"].([]any)[0].(map[string]any)
	if traffic["tag"] != "memory" {
		t.Errorf("traffic tag = %v", traffic["tag"])
	}
	// Keys are stable snake_case: a rename would break downstream parsers.
	for _, key := range []string{"policy", "jobs", "makespan_s", "peak_concurrent", "transferred_bytes"} {
		if !strings.Contains(string(raw), `"`+key+`"`) {
			t.Errorf("key %q missing from %s", key, raw)
		}
	}
}

// TestCampaignJSONDegenerate pins the serving contract: every degenerate
// campaign — empty, zero-job policies, zero-duration windows, NaN/Inf
// timestamps from an aborted run — must still marshal (encoding/json rejects
// non-finite floats, which would turn an edge-case run into a server error),
// with non-finite derived aggregates clamped to 0.
func TestCampaignJSONDegenerate(t *testing.T) {
	nan, inf := math.NaN(), math.Inf(1)
	cases := []struct {
		name string
		c    *Campaign
	}{
		{"zero value", &Campaign{}},
		{"empty with policy", &Campaign{Policy: "serial"}},
		{"zero-duration window", &Campaign{Policy: "all-at-once", Jobs: 1, Start: 5, End: 5,
			JobStats: []JobStat{{Name: "vm0", Queued: 5, Started: 5, Finished: 5}}}},
		{"NaN bounds", &Campaign{Policy: "serial", Start: nan, End: nan}},
		{"Inf makespan", &Campaign{Policy: "serial", Start: 0, End: inf}},
		{"NaN job timestamps", &Campaign{Policy: "serial", Jobs: 1,
			JobStats: []JobStat{{Name: "vm0", Queued: nan, Started: inf, Finished: math.Inf(-1), Downtime: nan}}}},
		{"Inf wasted bytes", &Campaign{Policy: "serial", WastedBytes: inf,
			JobStats: []JobStat{{Name: "vm0", WastedBytes: inf}}}},
		{"non-finite traffic", &Campaign{Policy: "serial",
			Traffic: []TagBytes{{Tag: "memory", Bytes: nan}, {Tag: "disk", Bytes: inf}}}},
	}
	for _, tc := range cases {
		raw, err := json.Marshal(tc.c)
		if err != nil {
			t.Errorf("%s: marshal failed: %v", tc.name, err)
			continue
		}
		var got map[string]any
		if err := json.Unmarshal(raw, &got); err != nil {
			t.Errorf("%s: output not valid JSON: %v", tc.name, err)
			continue
		}
		// Every float the decoder handed back must be finite.
		var walk func(prefix string, v any)
		walk = func(prefix string, v any) {
			switch x := v.(type) {
			case float64:
				if math.IsNaN(x) || math.IsInf(x, 0) {
					t.Errorf("%s: %s is non-finite: %v", tc.name, prefix, x)
				}
			case map[string]any:
				for k, vv := range x {
					walk(prefix+"."+k, vv)
				}
			case []any:
				for _, vv := range x {
					walk(prefix, vv)
				}
			}
		}
		walk("campaign", got)
	}
}

// TestJobStatJSONDegenerate covers the job record marshaler in isolation.
func TestJobStatJSONDegenerate(t *testing.T) {
	nan := math.NaN()
	raw, err := json.Marshal(JobStat{Name: "vm0", Queued: nan, Started: nan, Finished: nan, Downtime: nan, WastedBytes: math.Inf(1)})
	if err != nil {
		t.Fatalf("marshal failed: %v", err)
	}
	var got map[string]any
	if err := json.Unmarshal(raw, &got); err != nil {
		t.Fatalf("output not valid JSON: %v", err)
	}
	for _, key := range []string{"queued_s", "started_s", "finished_s", "wait_s", "duration_s", "downtime_ms"} {
		if got[key] != 0.0 {
			t.Errorf("%s = %v, want 0 (clamped)", key, got[key])
		}
	}
}
