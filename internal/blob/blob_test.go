package blob

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/hybridmig/hybridmig/internal/fabric"
	"github.com/hybridmig/hybridmig/internal/params"
	"github.com/hybridmig/hybridmig/internal/sim"
)

func testStore(nServers int, repl int) (*sim.Engine, *fabric.Cluster, *Store) {
	eng := sim.New()
	tb := params.DefaultTestbed()
	tb.NICBandwidth = 100
	tb.DiskBandwidth = 50
	tb.FabricBandwidth = 10000
	tb.NetLatency = 0
	tb.DiskLatency = 0
	c := fabric.NewCluster(eng, nServers+2, tb)
	rp := params.Repository{StripeSize: 100, Replication: repl, MetadataLatency: 0}
	st := NewStore(c, c.Nodes[:nServers], rp)
	return eng, c, st
}

func TestCreateGeometry(t *testing.T) {
	_, _, st := testStore(4, 1)
	b := st.Create(950)
	if b.Stripes() != 10 {
		t.Fatalf("stripes = %d, want 10", b.Stripes())
	}
	if b.stripeLen(9) != 50 {
		t.Fatalf("last stripe len = %d, want 50", b.stripeLen(9))
	}
	for i := 0; i < 10; i++ {
		if b.ContentAt(i) != 0 {
			t.Fatal("fresh blob has nonzero content")
		}
	}
}

func TestPutContentAndClone(t *testing.T) {
	_, _, st := testStore(4, 1)
	b := st.Create(400)
	ids := []ContentID{1, 2, 3, 4}
	b.PutContent(ids)
	cl := b.Clone()
	for i := range ids {
		if cl.ContentAt(i) != ids[i] {
			t.Fatal("clone content differs")
		}
	}
	// Clone is independent metadata.
	cl.content[0] = 99
	if b.ContentAt(0) != 1 {
		t.Fatal("clone aliases parent metadata")
	}
}

func TestReadReturnsContent(t *testing.T) {
	eng, c, st := testStore(4, 1)
	b := st.Create(400)
	b.PutContent([]ContentID{10, 20, 30, 40})
	client := c.Nodes[5]
	var got []ContentID
	eng.Go("reader", func(p *sim.Proc) {
		got = b.Read(p, client, 1, 2)
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != 20 || got[1] != 30 {
		t.Fatalf("got %v", got)
	}
	if st.Reads() == 0 || st.ReadBytes() != 200 {
		t.Fatalf("accounting: reads=%d bytes=%v", st.Reads(), st.ReadBytes())
	}
}

func TestReadSpreadsAcrossServers(t *testing.T) {
	eng, c, st := testStore(4, 1)
	b := st.Create(4000) // 40 stripes over 4 servers
	client := c.Nodes[5]
	eng.Go("reader", func(p *sim.Proc) {
		b.Read(p, client, 0, 40)
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	per := st.ServerBytes()
	for i, v := range per {
		if v != 1000 {
			t.Fatalf("server %d served %v bytes, want 1000 (balanced)", i, v)
		}
	}
}

func TestStripedReadFasterThanSingleServer(t *testing.T) {
	// 4 servers with 50 B/s disks, client NIC 100 B/s: a 4000-byte read
	// striped over 4 servers is bottlenecked by the client NIC (100),
	// finishing in ~40s, while a single disk would need 80s.
	eng, c, st := testStore(4, 1)
	b := st.Create(4000)
	client := c.Nodes[5]
	var doneAt sim.Time
	eng.Go("reader", func(p *sim.Proc) {
		b.Read(p, client, 0, 40)
		doneAt = p.Now()
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if doneAt > 45 {
		t.Fatalf("striped read took %v, want ~40 (NIC-bound, not disk-bound)", doneAt)
	}
}

func TestConcurrentClientsBalance(t *testing.T) {
	eng, c, st := testStore(4, 1)
	b := st.Create(2000)
	done := 0
	for i := 0; i < 2; i++ {
		client := c.Nodes[4+i]
		eng.Go("reader", func(p *sim.Proc) {
			b.Read(p, client, 0, 20)
			done++
		})
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if done != 2 {
		t.Fatalf("done = %d", done)
	}
	per := st.ServerBytes()
	total := 0.0
	for _, v := range per {
		total += v
	}
	if total != 4000 {
		t.Fatalf("total served = %v, want 4000", total)
	}
	for i, v := range per {
		if math.Abs(v-1000) > 1e-9 {
			t.Fatalf("server %d served %v, want 1000", i, v)
		}
	}
}

func TestReplicatedReadsRotateReplicas(t *testing.T) {
	eng, c, st := testStore(4, 2)
	b := st.Create(400) // 4 stripes, each on 2 servers
	client := c.Nodes[5]
	eng.Go("reader", func(p *sim.Proc) {
		for i := 0; i < 4; i++ {
			b.Read(p, client, 0, 4)
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	// With rotation, every server should have served something.
	for i, v := range st.ServerBytes() {
		if v == 0 {
			t.Fatalf("server %d never used despite replication", i)
		}
	}
}

func TestWriteAdvancesVersion(t *testing.T) {
	eng, c, st := testStore(4, 1)
	b := st.Create(400)
	client := c.Nodes[5]
	v0 := b.Version()
	eng.Go("writer", func(p *sim.Proc) {
		b.Write(p, client, 1, []ContentID{7, 8})
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if b.Version() != v0+1 {
		t.Fatalf("version = %d, want %d", b.Version(), v0+1)
	}
	want := []ContentID{0, 7, 8, 0}
	for i, w := range want {
		if b.ContentAt(i) != w {
			t.Fatalf("content[%d] = %d, want %d", i, b.ContentAt(i), w)
		}
	}
}

func TestReadAsyncCompletes(t *testing.T) {
	eng, c, st := testStore(4, 1)
	b := st.Create(1000)
	client := c.Nodes[5]
	doneAt := sim.Time(-1)
	b.ReadAsync(client, 0, 10, 0, func() { doneAt = eng.Now() })
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if doneAt < 0 {
		t.Fatal("ReadAsync never completed")
	}
	if st.ReadBytes() != 1000 {
		t.Fatalf("read bytes = %v", st.ReadBytes())
	}
}

func TestReadAsyncRateCap(t *testing.T) {
	eng, c, st := testStore(1, 1)
	b := st.Create(100) // single stripe, single server
	client := c.Nodes[2]
	var doneAt sim.Time
	b.ReadAsync(client, 0, 1, 10, func() { doneAt = eng.Now() })
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if math.Abs(doneAt-10) > 1e-6 {
		t.Fatalf("capped prefetch finished at %v, want 10", doneAt)
	}
}

// TestReadWriteProperty: arbitrary write sequences produce the content map a
// reference model predicts.
func TestReadWriteProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		eng, c, st := testStore(3, 1)
		n := 5 + rng.Intn(20)
		b := st.Create(int64(n) * 100)
		ref := make([]ContentID, n)
		client := c.Nodes[4]
		ok := true
		eng.Go("driver", func(p *sim.Proc) {
			for i := 0; i < 30; i++ {
				first := rng.Intn(n)
				count := 1 + rng.Intn(n-first)
				if rng.Intn(2) == 0 {
					ids := make([]ContentID, count)
					for j := range ids {
						ids[j] = ContentID(rng.Uint64())
						ref[first+j] = ids[j]
					}
					b.Write(p, client, first, ids)
				} else {
					got := b.Read(p, client, first, count)
					for j := range got {
						if got[j] != ref[first+j] {
							ok = false
						}
					}
				}
			}
		})
		if err := eng.Run(); err != nil {
			return false
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
