// Package blob implements the cloud repository substrate: a striped,
// replicated, versioned object store in the spirit of BlobSeer (Nicolae et
// al.), which the paper uses to hold base VM disk images.
//
// A blob's content is split into fixed-size stripes distributed round-robin
// over the participating storage nodes, so concurrent readers spread load
// across servers — the property the paper relies on to avoid read contention
// when many destinations fetch base-image content simultaneously.
//
// Writes never modify stripes in place: each write publishes a new version
// whose stripe map shares unmodified stripes with its parent (shadowing), and
// Clone creates a new blob sharing all stripes (the multi-deployment pattern
// of the paper's prior work). Content is identified by 64-bit content IDs
// rather than materialized bytes; see package core for how IDs propagate.
package blob

import (
	"fmt"

	"github.com/hybridmig/hybridmig/internal/fabric"
	"github.com/hybridmig/hybridmig/internal/flow"
	"github.com/hybridmig/hybridmig/internal/params"
	"github.com/hybridmig/hybridmig/internal/sim"
)

// ContentID identifies the content of one stripe. The zero value means
// "never written" (reads as zeros).
type ContentID uint64

// stripeLoc describes where the replicas of one stripe live.
type stripeLoc struct {
	servers []int // indices into Store.Servers
}

// Store is the repository service.
type Store struct {
	Cluster *fabric.Cluster
	Servers []*fabric.Node
	P       params.Repository

	nextBlobID int
	nextRead   int // round-robin replica selector
	reads      uint64
	readBytes  float64
	perServer  []float64 // bytes served per server, for balance tests
}

// NewStore creates a repository over the given server nodes.
func NewStore(c *fabric.Cluster, servers []*fabric.Node, p params.Repository) *Store {
	if len(servers) == 0 {
		panic("blob: store needs at least one server")
	}
	if p.StripeSize <= 0 {
		panic("blob: stripe size must be positive")
	}
	if p.Replication <= 0 {
		p.Replication = 1
	}
	if p.Replication > len(servers) {
		p.Replication = len(servers)
	}
	return &Store{
		Cluster:   c,
		Servers:   servers,
		P:         p,
		perServer: make([]float64, len(servers)),
	}
}

// Reads returns the number of read requests served.
func (s *Store) Reads() uint64 { return s.reads }

// ReadBytes returns the total bytes served.
func (s *Store) ReadBytes() float64 { return s.readBytes }

// ServerBytes returns bytes served per server (index-aligned with Servers).
func (s *Store) ServerBytes() []float64 {
	out := make([]float64, len(s.perServer))
	copy(out, s.perServer)
	return out
}

// Blob is one versioned striped object.
type Blob struct {
	Store *Store
	ID    int
	Size  int64

	version int
	content []ContentID
	loc     []stripeLoc
}

// Stripes returns the number of stripes in the blob.
func (b *Blob) Stripes() int { return len(b.content) }

// Version returns the blob's current version number.
func (b *Blob) Version() int { return b.version }

// Create allocates a blob of the given size with zero content. Stripe i is
// placed on servers (i, i+1, ... i+R-1) mod N — BlobSeer-style round-robin
// with replication.
func (s *Store) Create(size int64) *Blob {
	if size <= 0 {
		panic("blob: size must be positive")
	}
	n := int((size + s.P.StripeSize - 1) / s.P.StripeSize)
	b := &Blob{
		Store:   s,
		ID:      s.nextBlobID,
		Size:    size,
		content: make([]ContentID, n),
		loc:     make([]stripeLoc, n),
	}
	s.nextBlobID++
	for i := range b.loc {
		servers := make([]int, s.P.Replication)
		for r := range servers {
			servers[r] = (i + r) % len(s.Servers)
		}
		b.loc[i] = stripeLoc{servers: servers}
	}
	return b
}

// PutContent seeds the blob's stripe content (used to install a base image
// without simulating the upload). The slice is copied.
func (b *Blob) PutContent(ids []ContentID) {
	if len(ids) != len(b.content) {
		panic(fmt.Sprintf("blob: PutContent of %d stripes into blob of %d", len(ids), len(b.content)))
	}
	copy(b.content, ids)
	b.version++
}

// Clone creates a new blob sharing all stripe content and placement — a
// metadata-only snapshot, as in BlobSeer's cloning.
func (b *Blob) Clone() *Blob {
	nb := b.Store.Create(b.Size)
	copy(nb.content, b.content)
	nb.version = 1
	return nb
}

// ContentAt returns the content ID of stripe i.
func (b *Blob) ContentAt(i int) ContentID { return b.content[i] }

// stripeServer picks the replica server for a read. round rotates the
// replica choice across successive read requests so repeated reads of the
// same stripes spread over all replicas deterministically.
func (b *Blob) stripeServer(i, round int) int {
	loc := b.loc[i]
	return loc.servers[(i+round)%len(loc.servers)]
}

// Read fetches stripes [first, first+count) to the client node, blocking
// until all data has arrived. It issues one flow per contiguous same-server
// run (round-robin placement means runs are usually one stripe long, which
// is exactly what spreads a big read over many servers). Returns the content
// IDs of the stripes read.
func (b *Blob) Read(p *sim.Proc, client *fabric.Node, first, count int) []ContentID {
	if first < 0 || count <= 0 || first+count > len(b.content) {
		panic(fmt.Sprintf("blob: read [%d,%d) of blob with %d stripes", first, first+count, len(b.content)))
	}
	s := b.Store
	p.Sleep(s.P.MetadataLatency)
	round := s.nextRead
	s.nextRead++
	// Group the stripes by chosen server.
	perServer := make(map[int]int64)
	order := make([]int, 0, 4)
	for i := first; i < first+count; i++ {
		srv := b.stripeServer(i, round)
		if _, ok := perServer[srv]; !ok {
			order = append(order, srv)
		}
		perServer[srv] += b.stripeLen(i)
	}
	var wg sim.WaitGroup
	eng := s.Cluster.Eng
	for _, srv := range order {
		bytes := float64(perServer[srv])
		server := s.Servers[srv]
		wg.Add(1)
		s.reads++
		s.readBytes += bytes
		s.perServer[srv] += bytes
		s.Cluster.TransferFlowPath(s.Cluster.RemoteReadPath(server, client), bytes, flow.TagRepo, func() {
			wg.Done(eng)
		})
	}
	wg.Wait(p)
	out := make([]ContentID, count)
	copy(out, b.content[first:first+count])
	return out
}

// ReadAsync starts fetching stripes [first, first+count) to the client and
// calls onDone when every byte has arrived. Used by the destination's
// base-image prefetcher. rateCap > 0 limits aggregate prefetch bandwidth.
func (b *Blob) ReadAsync(client *fabric.Node, first, count int, rateCap float64, onDone func()) {
	s := b.Store
	round := s.nextRead
	s.nextRead++
	perServer := make(map[int]int64)
	order := make([]int, 0, 4)
	for i := first; i < first+count; i++ {
		srv := b.stripeServer(i, round)
		if _, ok := perServer[srv]; !ok {
			order = append(order, srv)
		}
		perServer[srv] += b.stripeLen(i)
	}
	remaining := len(order)
	for _, srv := range order {
		bytes := float64(perServer[srv])
		server := s.Servers[srv]
		s.reads++
		s.readBytes += bytes
		s.perServer[srv] += bytes
		f := &flow.Flow{
			Links:   s.Cluster.RemoteReadPath(server, client),
			Size:    bytes,
			MaxRate: rateCap,
			Tag:     flow.TagRepo,
			OnDone: func() {
				remaining--
				if remaining == 0 && onDone != nil {
					onDone()
				}
			},
		}
		s.Cluster.Net.Start(f)
	}
}

// Write publishes new content for stripes [first, first+count): data moves
// from the client to each stripe's primary server, then the blob's version
// advances. ids supplies the new content IDs.
func (b *Blob) Write(p *sim.Proc, client *fabric.Node, first int, ids []ContentID) {
	count := len(ids)
	if first < 0 || count == 0 || first+count > len(b.content) {
		panic(fmt.Sprintf("blob: write [%d,%d) of blob with %d stripes", first, first+count, len(b.content)))
	}
	s := b.Store
	p.Sleep(s.P.MetadataLatency)
	perServer := make(map[int]int64)
	order := make([]int, 0, 4)
	for i := first; i < first+count; i++ {
		srv := b.loc[i].servers[0]
		if _, ok := perServer[srv]; !ok {
			order = append(order, srv)
		}
		perServer[srv] += b.stripeLen(i)
	}
	var wg sim.WaitGroup
	eng := s.Cluster.Eng
	for _, srv := range order {
		bytes := float64(perServer[srv])
		server := s.Servers[srv]
		wg.Add(1)
		s.Cluster.TransferFlowPath(s.Cluster.RemoteWritePath(client, server), bytes, flow.TagRepo, func() {
			wg.Done(eng)
		})
	}
	wg.Wait(p)
	copy(b.content[first:first+count], ids)
	b.version++
}

// StripeSpan converts a byte range to the stripe interval covering it.
func (b *Blob) StripeSpan(off, length int64) (first, count int) {
	if off < 0 || length <= 0 || off+length > b.Size {
		panic(fmt.Sprintf("blob: range [%d,%d) outside blob of %d bytes", off, off+length, b.Size))
	}
	first = int(off / b.Store.P.StripeSize)
	last := int((off + length - 1) / b.Store.P.StripeSize)
	return first, last - first + 1
}

// ReadRange is Read addressed in bytes instead of stripes.
func (b *Blob) ReadRange(p *sim.Proc, client *fabric.Node, off, length int64) {
	first, count := b.StripeSpan(off, length)
	b.Read(p, client, first, count)
}

// ReadRangeAsync is ReadAsync addressed in bytes instead of stripes.
func (b *Blob) ReadRangeAsync(client *fabric.Node, off, length int64, rateCap float64, onDone func()) {
	first, count := b.StripeSpan(off, length)
	b.ReadAsync(client, first, count, rateCap, onDone)
}

// stripeLen returns the byte length of stripe i (the last may be short).
func (b *Blob) stripeLen(i int) int64 {
	off := int64(i) * b.Store.P.StripeSize
	ln := b.Store.P.StripeSize
	if off+ln > b.Size {
		ln = b.Size - off
	}
	return ln
}
