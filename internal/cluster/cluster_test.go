package cluster

import (
	"strings"
	"testing"

	"github.com/hybridmig/hybridmig/internal/flow"
	"github.com/hybridmig/hybridmig/internal/metrics"
	"github.com/hybridmig/hybridmig/internal/params"
	"github.com/hybridmig/hybridmig/internal/sched"
	"github.com/hybridmig/hybridmig/internal/sim"
	"github.com/hybridmig/hybridmig/internal/strategy"
)

func smallTB() *Testbed {
	return New(SmallConfig(6))
}

func TestLaunchAllApproaches(t *testing.T) {
	tb := smallTB()
	for i, a := range Approaches() {
		inst := tb.Launch(string(a), i, a)
		if inst.VM == nil || inst.Guest == nil {
			t.Fatalf("%s: incomplete instance", a)
		}
	}
	// Run the boot reads to completion.
	if err := tb.Eng.RunUntil(1e5); err != nil {
		t.Fatal(err)
	}
	if tb.Repo.ReadBytes() == 0 {
		t.Fatal("boot reads never hit the repository")
	}
	tb.Eng.Shutdown()
	if len(tb.Instances()) != 5 {
		t.Fatalf("instances = %d", len(tb.Instances()))
	}
}

func TestGuestIOWorksPerApproach(t *testing.T) {
	for _, a := range Approaches() {
		a := a
		t.Run(string(a), func(t *testing.T) {
			tb := smallTB()
			inst := tb.Launch("vm0", 0, a)
			doneWrite := false
			tb.Eng.Go("io", func(p *sim.Proc) {
				f := inst.Guest.FS.Create("data", 16*params.MB)
				inst.Guest.FS.Write(p, f, 0, 16*params.MB)
				inst.Guest.FS.Read(p, f, 0, 16*params.MB)
				doneWrite = true
			})
			if err := tb.Eng.RunUntil(1e5); err != nil {
				t.Fatal(err)
			}
			tb.Eng.Shutdown()
			if !doneWrite {
				t.Fatal("guest I/O never completed")
			}
		})
	}
}

func TestMigrateEachApproach(t *testing.T) {
	for _, a := range Approaches() {
		a := a
		t.Run(string(a), func(t *testing.T) {
			tb := smallTB()
			inst := tb.Launch("vm0", 0, a)
			tb.Eng.Go("workload", func(p *sim.Proc) {
				f := inst.Guest.FS.Create("data", 64*params.MB)
				for i := 0; i < 8; i++ {
					inst.Guest.FS.Write(p, f, int64(i)*8*params.MB, 8*params.MB)
					p.Sleep(0.5)
				}
			})
			tb.Eng.Go("middleware", func(p *sim.Proc) {
				p.Sleep(2) // mid-workload
				tb.MigrateInstance(p, inst, 1)
			})
			if err := tb.Eng.RunUntil(1e5); err != nil {
				t.Fatal(err)
			}
			tb.Eng.Shutdown()
			if !inst.Migrated {
				t.Fatal("migration never completed")
			}
			if inst.VM.Node != tb.Cl.Nodes[1] {
				t.Fatal("VM not on destination")
			}
			if inst.MigrationTime <= 0 {
				t.Fatalf("migration time = %v", inst.MigrationTime)
			}
			if inst.HVResult.MemoryBytes <= 0 {
				t.Fatal("no memory was migrated")
			}
			net := tb.Cl.Net
			switch a {
			case OurApproach:
				if net.BytesByTag(flow.TagStoragePush) == 0 {
					t.Error("our-approach produced no push traffic")
				}
			case Postcopy:
				if net.BytesByTag(flow.TagStoragePush) != 0 {
					t.Error("postcopy produced push traffic")
				}
				if net.BytesByTag(flow.TagStoragePull) == 0 {
					t.Error("postcopy produced no pull traffic")
				}
			case Mirror:
				if net.BytesByTag(flow.TagMirror) == 0 {
					t.Error("mirror produced no mirror traffic")
				}
			case Precopy:
				if net.BytesByTag(flow.TagBlockMig) == 0 {
					t.Error("precopy produced no block-migration traffic")
				}
			case PVFSShared:
				if net.BytesByTag(flow.TagStoragePush)+net.BytesByTag(flow.TagStoragePull)+
					net.BytesByTag(flow.TagBlockMig)+net.BytesByTag(flow.TagMirror) != 0 {
					t.Error("pvfs-shared moved storage during migration")
				}
				if net.BytesByTag(flow.TagPFS) == 0 {
					t.Error("pvfs-shared produced no PFS traffic")
				}
			}
		})
	}
}

func TestMigrationTimeDefinitions(t *testing.T) {
	// our-approach counts until source release (>= control transfer);
	// mirror counts until control transfer only.
	for _, a := range []Approach{OurApproach, Mirror} {
		tb := smallTB()
		inst := tb.Launch("vm0", 0, a)
		tb.Eng.Go("workload", func(p *sim.Proc) {
			f := inst.Guest.FS.Create("data", 64*params.MB)
			inst.Guest.FS.Write(p, f, 0, 64*params.MB)
		})
		tb.Eng.Go("middleware", func(p *sim.Proc) {
			p.Sleep(1)
			tb.MigrateInstance(p, inst, 1)
		})
		if err := tb.Eng.RunUntil(1e5); err != nil {
			t.Fatal(err)
		}
		tb.Eng.Shutdown()
		ctrl := inst.HVResult.ControlTransfer - inst.CoreStats.RequestedAt
		switch a {
		case OurApproach:
			if inst.MigrationTime < ctrl {
				t.Errorf("our-approach migration time %v < control transfer %v", inst.MigrationTime, ctrl)
			}
		case Mirror:
			if inst.MigrationTime > ctrl+1e-9 {
				t.Errorf("mirror migration time %v > control transfer %v", inst.MigrationTime, ctrl)
			}
		}
	}
}

func TestSuccessiveMigrationsOfDifferentVMs(t *testing.T) {
	tb := smallTB()
	a := OurApproach
	i1 := tb.Launch("vm1", 0, a)
	i2 := tb.Launch("vm2", 1, a)
	tb.Eng.Go("wl1", func(p *sim.Proc) {
		f := i1.Guest.FS.Create("d", 32*params.MB)
		i1.Guest.FS.Write(p, f, 0, 32*params.MB)
	})
	tb.Eng.Go("wl2", func(p *sim.Proc) {
		f := i2.Guest.FS.Create("d", 32*params.MB)
		i2.Guest.FS.Write(p, f, 0, 32*params.MB)
	})
	tb.Eng.Go("middleware", func(p *sim.Proc) {
		p.Sleep(1)
		tb.MigrateInstance(p, i1, 2)
		p.Sleep(1)
		tb.MigrateInstance(p, i2, 3)
	})
	if err := tb.Eng.RunUntil(1e5); err != nil {
		t.Fatal(err)
	}
	tb.Eng.Shutdown()
	if !i1.Migrated || !i2.Migrated {
		t.Fatal("migrations incomplete")
	}
	if i1.VM.Node != tb.Cl.Nodes[2] || i2.VM.Node != tb.Cl.Nodes[3] {
		t.Fatal("VMs on wrong nodes")
	}
}

func TestTable1Descriptions(t *testing.T) {
	for _, a := range Approaches() {
		d, ok := strategy.Describe(string(a))
		if !ok {
			t.Fatalf("approach %s is not in the strategy registry", a)
		}
		if a.Description() != d {
			t.Fatalf("approach %s description diverges from the registry", a)
		}
	}
	if len(Approaches()) != 5 {
		t.Fatal("the paper compares exactly five approaches")
	}
	// An unregistered approach must name the registered strategies instead
	// of reporting a silent "unknown".
	desc := Approach("warp-drive").Description()
	for _, name := range strategy.Names() {
		if !strings.Contains(desc, name) {
			t.Fatalf("unregistered-approach description %q omits %q", desc, name)
		}
	}
}

// TestMigrateAllCampaign migrates three idle VMs as one serial campaign and
// checks the orchestrator moved every instance and produced coherent stats.
func TestMigrateAllCampaign(t *testing.T) {
	tb := New(SmallConfig(6))
	reqs := make([]MigrationRequest, 3)
	for i := range reqs {
		inst := tb.Launch(string(rune('a'+i)), i, OurApproach)
		reqs[i] = MigrationRequest{Inst: inst, DstIdx: 3 + i}
	}
	var c *metrics.Campaign
	tb.Eng.Go("orch", func(p *sim.Proc) {
		p.Sleep(1)
		c = tb.MigrateAll(p, reqs, sched.Serial{})
	})
	if err := tb.Eng.RunUntil(1e6); err != nil {
		t.Fatal(err)
	}
	tb.Eng.Shutdown()
	if c == nil {
		t.Fatal("campaign incomplete")
	}
	if c.PeakConcurrent != 1 {
		t.Errorf("serial campaign peak = %d", c.PeakConcurrent)
	}
	if c.TotalDowntime <= 0 {
		t.Errorf("downtime = %v", c.TotalDowntime)
	}
	prevEnd := 0.0
	for i, r := range reqs {
		if !r.Inst.Migrated {
			t.Fatalf("instance %d not migrated", i)
		}
		if r.Inst.VM.Node != tb.Cl.Nodes[3+i] {
			t.Errorf("instance %d on %v, want node %d", i, r.Inst.VM.Node, 3+i)
		}
		js := c.JobStats[i]
		if js.Started < prevEnd {
			t.Errorf("serial job %d started %v before predecessor finished %v", i, js.Started, prevEnd)
		}
		prevEnd = js.Finished
		if js.Downtime != r.Inst.HVResult.Downtime {
			t.Errorf("job %d downtime %v != instance downtime %v", i, js.Downtime, r.Inst.HVResult.Downtime)
		}
	}
}

// TestLowIOSignal checks the cycle-aware admission probe: a freshly idle VM
// is in a low-I/O window; one that just buffered a large write is not.
func TestLowIOSignal(t *testing.T) {
	tb := New(SmallConfig(2))
	inst := tb.Launch("vm", 0, OurApproach)
	var busy, idle bool
	tb.Eng.Go("probe", func(p *sim.Proc) {
		f := inst.Guest.FS.Create("d", 64<<20)
		inst.Guest.FS.Write(p, f, 0, 48<<20)
		busy = tb.LowIO(inst)    // dirty cache right after the write
		inst.Guest.Cache.Sync(p) // drain writeback
		idle = tb.LowIO(inst)
	})
	if err := tb.Eng.RunUntil(1e6); err != nil {
		t.Fatal(err)
	}
	tb.Eng.Shutdown()
	if busy {
		t.Error("LowIO true immediately after writing 48 MB")
	}
	if !idle {
		t.Error("LowIO false after the cache drained")
	}
}
