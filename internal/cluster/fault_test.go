package cluster

import (
	"errors"
	"testing"

	"github.com/hybridmig/hybridmig/internal/metrics"
	"github.com/hybridmig/hybridmig/internal/params"
	"github.com/hybridmig/hybridmig/internal/sched"
	"github.com/hybridmig/hybridmig/internal/sim"
)

// TestAbortMigrationMidFlightThenRetry injects a destination crash into
// every approach's migration mid-flight, checks the attempt fails with
// ErrMigrationAborted and the VM stays at the source, then retries to
// completion on the same instance.
func TestAbortMigrationMidFlightThenRetry(t *testing.T) {
	for _, a := range Approaches() {
		a := a
		t.Run(string(a), func(t *testing.T) {
			tb := smallTB()
			inst := tb.Launch("vm0", 0, a)
			tb.Eng.Go("workload", func(p *sim.Proc) {
				f := inst.Guest.FS.Create("data", 64*params.MB)
				for i := 0; i < 8; i++ {
					inst.Guest.FS.Write(p, f, int64(i)*8*params.MB, 8*params.MB)
					p.Sleep(0.5)
				}
			})
			var firstErr, retryErr error
			tb.Eng.Go("middleware", func(p *sim.Proc) {
				p.Sleep(2)
				firstErr = tb.MigrateInstance(p, inst, 1)
				if firstErr != nil {
					p.Sleep(1) // backoff
					retryErr = tb.MigrateInstance(p, inst, 1)
				}
			})
			// The fault fires shortly after the migration request: every
			// approach is still moving memory or storage then.
			tb.Eng.At(2.5, func() {
				if !tb.AbortMigration(inst, "dest-crash") {
					t.Error("AbortMigration found nothing in flight")
				}
				if inst.VM.Node != tb.Cl.Nodes[0] && !inst.VM.Paused() {
					// The VM may transiently be paused in stop-and-copy, but
					// it must not be live at the destination after an abort.
					t.Error("VM live off-source immediately after abort")
				}
			})
			if err := tb.Eng.RunUntil(1e5); err != nil {
				t.Fatal(err)
			}
			tb.Eng.Shutdown()
			if !errors.Is(firstErr, ErrMigrationAborted) {
				t.Fatalf("first attempt error = %v, want ErrMigrationAborted", firstErr)
			}
			if retryErr != nil {
				t.Fatalf("retry failed: %v", retryErr)
			}
			if !inst.Migrated || inst.VM.Node != tb.Cl.Nodes[1] {
				t.Fatal("retry did not complete on the destination")
			}
			if inst.Attempts != 2 || inst.Aborts != 1 {
				t.Fatalf("attempts=%d aborts=%d, want 2,1", inst.Attempts, inst.Aborts)
			}
			if inst.AbortedBytes <= 0 {
				t.Fatal("aborted attempt wasted no bytes")
			}
		})
	}
}

// TestAbortMigrationIdle: no in-flight migration means nothing to abort.
func TestAbortMigrationIdle(t *testing.T) {
	tb := smallTB()
	inst := tb.Launch("vm0", 0, OurApproach)
	if tb.AbortMigration(inst, "noop") {
		t.Fatal("AbortMigration acted on an idle instance")
	}
}

// TestMigrateAllRetryCompletesCampaign: a campaign whose jobs are hit by
// one fault each still terminates with retries recorded.
func TestMigrateAllRetryCompletesCampaign(t *testing.T) {
	tb := smallTB()
	a := tb.Launch("vma", 0, OurApproach)
	b := tb.Launch("vmb", 1, Postcopy)
	for _, inst := range []*Instance{a, b} {
		inst := inst
		tb.Eng.Go(inst.Name+"/wl", func(p *sim.Proc) {
			f := inst.Guest.FS.Create("data", 32*params.MB)
			for i := 0; i < 6; i++ {
				inst.Guest.FS.Write(p, f, int64(i)*4*params.MB, 4*params.MB)
				p.Sleep(0.5)
			}
		})
	}
	var c *metrics.Campaign
	tb.Eng.Go("campaign", func(p *sim.Proc) {
		c = tb.MigrateAllRetry(p,
			[]MigrationRequest{{Inst: a, DstIdx: 2}, {Inst: b, DstIdx: 3}},
			sched.Serial{}, sched.Retry{MaxAttempts: 3, Backoff: 0.5})
	})
	tb.Eng.At(0.7, func() {
		if !tb.AbortMigration(a, "dest-crash") {
			t.Error("fault missed the in-flight migration")
		}
	})
	if err := tb.Eng.RunUntil(1e5); err != nil {
		t.Fatal(err)
	}
	tb.Eng.Shutdown()
	if c == nil {
		t.Fatal("campaign did not complete")
	}
	if c.Retries != 1 || c.ExhaustedJobs != 0 {
		t.Fatalf("retries=%d exhausted=%d, want 1,0", c.Retries, c.ExhaustedJobs)
	}
	if !a.Migrated || !b.Migrated {
		t.Fatal("campaign left a VM unmigrated")
	}
	if c.WastedBytes <= 0 {
		t.Fatal("campaign recorded no wasted bytes for the aborted attempt")
	}
	if c.JobStats[0].Attempts != 2 || c.JobStats[1].Attempts != 1 {
		t.Fatalf("attempts = %d,%d, want 2,1", c.JobStats[0].Attempts, c.JobStats[1].Attempts)
	}
}
