// Package cluster is the cloud middleware of the reproduction: it assembles
// the testbed (compute nodes, repository, parallel file system), deploys VM
// instances wired for one of the five compared approaches (Table 1 of the
// paper), and orchestrates live migrations end to end — the storage
// manager's MIGRATION REQUEST followed by the hypervisor's memory migration,
// exactly as Section 4.3 prescribes.
package cluster

import (
	"errors"
	"fmt"

	"github.com/hybridmig/hybridmig/internal/blob"
	"github.com/hybridmig/hybridmig/internal/chunk"
	"github.com/hybridmig/hybridmig/internal/core"
	"github.com/hybridmig/hybridmig/internal/fabric"
	"github.com/hybridmig/hybridmig/internal/guest"
	"github.com/hybridmig/hybridmig/internal/hv"
	"github.com/hybridmig/hybridmig/internal/metrics"
	"github.com/hybridmig/hybridmig/internal/params"
	"github.com/hybridmig/hybridmig/internal/pfs"
	"github.com/hybridmig/hybridmig/internal/sched"
	"github.com/hybridmig/hybridmig/internal/sim"
	"github.com/hybridmig/hybridmig/internal/trace"
	"github.com/hybridmig/hybridmig/internal/vm"
)

// Approach names one of the five compared local-storage transfer strategies
// (Table 1 of the paper).
type Approach string

// The five approaches of the evaluation.
const (
	OurApproach Approach = "our-approach"
	Mirror      Approach = "mirror"
	Postcopy    Approach = "postcopy"
	Precopy     Approach = "precopy"
	PVFSShared  Approach = "pvfs-shared"
)

// Approaches lists all five in the paper's presentation order.
func Approaches() []Approach {
	return []Approach{OurApproach, Mirror, Postcopy, Precopy, PVFSShared}
}

// Description returns the Table 1 summary line for the approach.
func (a Approach) Description() string {
	switch a {
	case OurApproach:
		return "As presented in Section 4.3 (hybrid push/prioritized prefetch)"
	case Mirror:
		return "Sync writes both at src and dest"
	case Postcopy:
		return "Pull from src after transfer of control"
	case Precopy:
		return "Push to dest before transfer of control"
	case PVFSShared:
		return "Does not apply (All writes go to PVFS)"
	}
	return "unknown"
}

// coreMode maps an approach to a migration-manager mode.
func (a Approach) coreMode() (core.Mode, bool) {
	switch a {
	case OurApproach:
		return core.ModeHybrid, true
	case Mirror:
		return core.ModeMirror, true
	case Postcopy:
		return core.ModePostcopy, true
	}
	return 0, false
}

// Config assembles every knob of a testbed.
type Config struct {
	Nodes      int // compute nodes (repository/PFS servers ride on them, as in the paper)
	Testbed    params.Testbed
	HV         params.Hypervisor
	Guest      params.Guest
	Manager    params.Manager
	Repo       params.Repository
	Experiment params.Experiment
	// BootRead is how much base-image content each instance reads at launch
	// (OS boot + warm-up), which seeds the hot-base-content hints.
	BootRead int64
	// ManagerOverride, when non-nil, replaces the manager options derived
	// from Manager (used by ablations).
	ManagerOverride *core.Options
}

// DefaultConfig returns the paper's testbed at the given node count.
func DefaultConfig(nodes int) Config {
	return Config{
		Nodes:      nodes,
		Testbed:    params.DefaultTestbed(),
		HV:         params.DefaultHypervisor(),
		Guest:      params.DefaultGuest(),
		Manager:    params.DefaultManager(),
		Repo:       params.DefaultRepository(),
		Experiment: params.DefaultExperiment(),
		BootRead:   192 * params.MB,
	}
}

// SmallConfig returns a miniature testbed (256 MB images, 512 MB RAM) that
// preserves all the ratios of DefaultConfig. Tests and smoke runs use it to
// keep simulations fast while exercising the same code paths.
func SmallConfig(nodes int) Config {
	cfg := DefaultConfig(nodes)
	cfg.Testbed.ImageSize = 256 * params.MB
	cfg.Testbed.RAM = 512 * params.MB
	cfg.HV.BootedFootprint = 64 * params.MB
	cfg.Guest.DirtyLimit = 48 * params.MB
	cfg.Guest.CacheRegion = 160 * params.MB
	cfg.BootRead = 24 * params.MB
	return cfg
}

// Testbed is a fully assembled simulated datacenter.
type Testbed struct {
	Eng  *sim.Engine
	Cl   *fabric.Cluster
	Repo *blob.Store
	PFS  *pfs.FS
	Cfg  Config

	baseBlob  *blob.Blob
	basePFS   *pfs.File
	geo       chunk.Geometry
	instances []*Instance
	bus       *trace.Bus
}

// Observe subscribes an observer to the testbed's trace bus: migration
// requests and completions (this layer), storage phase transitions
// (internal/core), pre-copy rounds (internal/hv), and campaign admissions
// (internal/sched). Subscribe before Launch so managers created later see
// the bus; with no subscribers the bus is inert and runs are bit-identical
// to unobserved ones.
func (tb *Testbed) Observe(o trace.Observer) { tb.bus.Subscribe(o) }

// Bus returns the testbed's trace bus (the scenario layer samples onto it).
func (tb *Testbed) Bus() *trace.Bus { return tb.bus }

// New builds the testbed: BlobSeer and PVFS both span all compute nodes, as
// in Section 5.2, and the 4 GB base image is installed in both.
func New(cfg Config) *Testbed {
	eng := sim.New()
	cl := fabric.NewCluster(eng, cfg.Nodes, cfg.Testbed)
	repo := blob.NewStore(cl, cl.Nodes, cfg.Repo)
	fs := pfs.NewFS(cl, cl.Nodes, pfs.Params{
		StripeSize:      cfg.Repo.StripeSize,
		MetadataLatency: cfg.Repo.MetadataLatency,
	})
	tb := &Testbed{
		Eng:  eng,
		Cl:   cl,
		Repo: repo,
		PFS:  fs,
		Cfg:  cfg,
		geo:  chunk.NewGeometry(cfg.Testbed.ImageSize, cfg.Testbed.ChunkSize),
		bus:  &trace.Bus{},
	}
	tb.baseBlob = repo.Create(cfg.Testbed.ImageSize)
	ids := make([]blob.ContentID, tb.baseBlob.Stripes())
	for i := range ids {
		ids[i] = blob.ContentID(1_000_000 + i) // distinct base content
	}
	tb.baseBlob.PutContent(ids)
	tb.basePFS = fs.Create("base.img", cfg.Testbed.ImageSize)
	pids := make([]pfs.ContentID, tb.basePFS.Stripes())
	for i := range pids {
		pids[i] = pfs.ContentID(1_000_000 + i)
	}
	tb.basePFS.PutContent(pids)
	return tb
}

// Geometry returns the image chunking.
func (tb *Testbed) Geometry() chunk.Geometry { return tb.geo }

// Instance is one deployed VM with its full stack.
type Instance struct {
	Name     string
	Approach Approach
	VM       *vm.VM
	Guest    *guest.Guest

	// Exactly one of these backs the instance, depending on the approach.
	Core   *core.Image
	COW    *hv.COWImage
	Shared *pfs.File // pvfs-shared snapshot file

	sharedImg *hv.SharedImage

	// Migration measurements (filled by MigrateInstance).
	Migrated      bool
	MigrationTime float64
	HVResult      hv.Result
	CoreStats     core.Stats
	Done          sim.Gate

	// Fault/retry accounting, cumulative across attempts.
	Attempts     int     // migration attempts, aborted ones included
	Aborts       int     // attempts torn down by injected faults
	AbortedBytes float64 // wire bytes wasted by aborted attempts
	Exhausted    bool    // a retry budget ran out without completing

	abort *hv.Abort // in-flight attempt's cancellation handle, nil when idle
}

// managerOptions derives core options from the config.
func (tb *Testbed) managerOptions(mode core.Mode) core.Options {
	if tb.Cfg.ManagerOverride != nil {
		o := *tb.Cfg.ManagerOverride
		o.Mode = mode
		o.Trace = tb.bus
		return o
	}
	m := tb.Cfg.Manager
	return core.Options{
		Trace:              tb.bus,
		Mode:               mode,
		Threshold:          m.Threshold,
		PushBatch:          m.PushBatch,
		PullBatch:          m.PullBatch,
		PullPriority:       true,
		PullRequestLatency: m.PullRequestLatency,
		BasePrefetch:       m.BasePrefetch,
		BasePrefetchRate:   m.BasePrefetchRate,
		DedupHashBytes:     1024,
	}
}

// Launch deploys an instance of the given approach on node nodeIdx. The
// returned instance's guest is ready; its boot read runs as a process and
// completes within the warm-up period.
func (tb *Testbed) Launch(name string, nodeIdx int, approach Approach) *Instance {
	node := tb.Cl.Nodes[nodeIdx]
	cfg := tb.Cfg
	mem := vm.NewMemory(cfg.Testbed.RAM, cfg.HV.MemPageSize)
	mem.Alloc(cfg.HV.BootedFootprint, true) // kernel + userland
	v := vm.New(tb.Eng, name, node, mem, 2)

	inst := &Instance{Name: name, Approach: approach, VM: v}
	raw := &guest.RawDisk{Cl: tb.Cl, Node: func() *fabric.Node { return v.Node }, Geo: tb.geo}
	gopts := guest.Options{HostCache: true, Buffered: true, Inner: raw}
	switch approach {
	case OurApproach, Mirror, Postcopy:
		mode, _ := approach.coreMode()
		gopts.MakeImage = func(backing vm.DiskImage) vm.DiskImage {
			inst.Core = core.NewImage(tb.Eng, tb.Cl, node, tb.geo, tb.baseBlob,
				backing, tb.managerOptions(mode), name)
			return inst.Core
		}
	case Precopy:
		gopts.MakeImage = func(backing vm.DiskImage) vm.DiskImage {
			inst.COW = hv.NewCOWImage(tb.Cl, node, tb.geo, tb.basePFS, backing)
			return inst.COW
		}
	case PVFSShared:
		snap := tb.PFS.Create(name+".qcow2", cfg.Testbed.ImageSize)
		inst.Shared = snap
		inst.sharedImg = hv.NewSharedImage(tb.Cl, node, tb.geo, tb.basePFS, snap)
		gopts.HostCache = false // shared-storage migration mandates cache=none
		gopts.MakeImage = func(vm.DiskImage) vm.DiskImage { return inst.sharedImg }
	default:
		panic(fmt.Sprintf("cluster: unknown approach %q", approach))
	}
	inst.Guest = guest.New(tb.Eng, v, cfg.Guest, gopts)
	if inst.Core != nil {
		// Chunks installed at the destination transit its host RAM and are
		// therefore cache-warm there.
		inst.Core.OnDestInstall = inst.Guest.Cache.MarkCachedRange
	}

	if cfg.BootRead > 0 {
		tb.Eng.Go(name+"/boot", func(p *sim.Proc) {
			osOff, osEnd := inst.Guest.FS.OSArea()
			span := osEnd - osOff
			boot := cfg.BootRead
			if boot > span {
				boot = span
			}
			inst.Guest.FS.ReadRaw(p, osOff, boot)
		})
	}
	tb.instances = append(tb.instances, inst)
	return inst
}

// Instances returns all deployed instances.
func (tb *Testbed) Instances() []*Instance { return tb.instances }

// ErrMigrationAborted is returned by MigrateInstance when an injected fault
// tore the attempt down. The instance keeps running at the source and may be
// retried with a fresh MigrateInstance call.
var ErrMigrationAborted = errors.New("cluster: migration aborted by injected fault")

// MigrateInstance live-migrates inst to the node at dstIdx, blocking until
// the migration fully completes per the approach's own definition of
// migration time (Section 5.2): control transfer for precopy, mirror and
// pvfs-shared; source release for our-approach and postcopy. When a fault
// aborts the attempt (see AbortMigration) it returns ErrMigrationAborted
// with the VM live at the source and the wasted traffic accumulated on the
// instance.
func (tb *Testbed) MigrateInstance(p *sim.Proc, inst *Instance, dstIdx int) error {
	dst := tb.Cl.Nodes[dstIdx]
	src := inst.VM.Node
	start := tb.Eng.Now()
	inst.Attempts++
	inst.abort = hv.NewAbort(tb.Cl.Net)
	defer func() { inst.abort = nil }()
	if tb.bus.Active() {
		tb.bus.Emit(trace.Event{Time: start, Kind: trace.KindMigrationRequested,
			VM: inst.Name, Detail: string(inst.Approach), Value: float64(dst.ID)})
	}
	// Host-side migration work steals guest CPU for as long as the VM's
	// host is involved in transfers (Section 2's "impact on application
	// performance" is precisely this resource consumption).
	inst.VM.SetCPUSteal(tb.Cfg.HV.CPUSteal)
	defer inst.VM.SetCPUSteal(0)
	aborted := false
	switch inst.Approach {
	case OurApproach, Postcopy, Mirror:
		inst.Core.MigrationRequest(dst)
		var stopGate *sim.Gate
		if inst.Approach == Mirror {
			stopGate = inst.Core.BulkDoneGate()
		}
		inst.HVResult = hv.MigrateAbortable(p, tb.Cl, inst.VM, dst, tb.Cfg.HV, nil, stopGate, tb.bus, inst.abort)
		if inst.HVResult.Aborted {
			// Fault before control transfer: the VM never left the source
			// and the manager (aborted by the same fault) already rolled
			// its storage state back.
			aborted = true
			break
		}
		// The destination host cache starts cold except for the content the
		// migration itself moved through its RAM.
		inst.Guest.Cache.Invalidate()
		inst.Core.ForEachLocalRange(inst.Guest.Cache.MarkCachedRange)
		inst.Core.WaitComplete(p)
		if !inst.Core.Complete() {
			// Fault during the pull phase: the destination crashed after
			// going live. Storage control fell back to the intact source
			// replica; the VM restarts there from its source-side state.
			aborted = true
			inst.VM.MoveTo(src)
			inst.Guest.Cache.Invalidate()
			inst.Core.ForEachLocalRange(inst.Guest.Cache.MarkCachedRange)
			break
		}
		inst.CoreStats = inst.Core.Stats()
		if inst.Approach == Mirror {
			inst.MigrationTime = inst.HVResult.ControlTransfer - start
		} else {
			// Until every resource is available at the destination: the
			// later of source release (storage) and control transfer
			// (memory), per the Section 2 definition.
			end := inst.CoreStats.ReleasedAt
			if inst.HVResult.ControlTransfer > end {
				end = inst.HVResult.ControlTransfer
			}
			inst.MigrationTime = end - start
		}
	case Precopy:
		inst.HVResult = hv.MigrateAbortable(p, tb.Cl, inst.VM, dst, tb.Cfg.HV, inst.COW, nil, tb.bus, inst.abort)
		if inst.HVResult.Aborted {
			aborted = true
			break
		}
		inst.COW.MoveTo(dst)
		inst.Guest.Cache.Invalidate()
		inst.COW.ForEachLocalRange(inst.Guest.Cache.MarkCachedRange)
		inst.MigrationTime = inst.HVResult.ControlTransfer - start
	case PVFSShared:
		inst.HVResult = hv.MigrateAbortable(p, tb.Cl, inst.VM, dst, tb.Cfg.HV, nil, nil, tb.bus, inst.abort)
		if inst.HVResult.Aborted {
			aborted = true
			break
		}
		inst.sharedImg.MoveTo(dst)
		inst.MigrationTime = inst.HVResult.ControlTransfer - start
	}
	if aborted {
		inst.Aborts++
		wasted := inst.HVResult.MemoryBytes + inst.HVResult.BlockBytes
		if inst.Core != nil {
			wasted += inst.Core.Stats().WireBytes()
		}
		inst.AbortedBytes += wasted
		if tb.bus.Active() {
			tb.bus.Emit(trace.Event{Time: tb.Eng.Now(), Kind: trace.KindMigrationAborted,
				VM: inst.Name, Detail: string(inst.Approach), Value: wasted})
		}
		return ErrMigrationAborted
	}
	inst.Migrated = true
	if tb.bus.Active() {
		tb.bus.Emit(trace.Event{Time: tb.Eng.Now(), Kind: trace.KindMigrationCompleted,
			VM: inst.Name, Detail: string(inst.Approach), Value: inst.MigrationTime})
	}
	inst.Done.Open(tb.Eng)
	return nil
}

// AbortMigration injects a fault into inst's in-flight migration: the
// storage manager rolls back (destination state released, I/O control kept
// at or returned to the source) and the hypervisor transfer unwinds. Reports
// whether a migration was actually in flight to abort.
//
// For manager-backed approaches the storage migration is the point of no
// return: once the manager has fully completed (source released), aborting
// only the final memory copy would strand storage at the destination while
// the VM restarts at the source, so a fault landing in that tail is "too
// late" and the migration is allowed to finish.
func (tb *Testbed) AbortMigration(inst *Instance, reason string) bool {
	if inst.abort == nil || inst.abort.Aborted() {
		return false // no attempt in flight (or this one is already dying)
	}
	if inst.Core != nil {
		if !inst.Core.Abort(reason) {
			return false // storage not abortable: idle or already complete
		}
		inst.abort.Trigger()
		return true
	}
	inst.abort.Trigger()
	return true
}

// MigrationRequest names one migration of a campaign: an instance and the
// index of its destination node.
type MigrationRequest struct {
	Inst   *Instance
	DstIdx int
}

// lowIOFraction is the dirty-cache cutoff for the cycle-aware policy: a VM
// whose guest cache holds less than this fraction of its dirty limit is in a
// low-I/O window (writers idle or draining, not pushing against throttle).
const lowIOFraction = 8

// LowIO reports whether the instance's workload is currently in a low-I/O
// window, judged by how much dirty data sits in its guest cache. Workload
// cycles (IOR's write/read phases, AsyncWR's compute/write alternation) show
// up directly in this signal.
func (tb *Testbed) LowIO(inst *Instance) bool {
	return inst.Guest.Cache.DirtyBytes() <= tb.Cfg.Guest.DirtyLimit/lowIOFraction
}

// MigrateAll executes a campaign of migrations under the policy, blocking
// until every request has completed, and returns the campaign's aggregate
// stats. Requests are admitted in slice order; identical inputs yield
// identical campaigns (the simulation stays deterministic).
func (tb *Testbed) MigrateAll(p *sim.Proc, reqs []MigrationRequest, pol sched.Policy) *metrics.Campaign {
	return tb.MigrateAllRetry(p, reqs, pol, sched.Retry{})
}

// MigrateAllRetry is MigrateAll with a retry budget: fault-aborted
// migrations back off and rejoin the admission queue until they complete or
// exhaust retry.MaxAttempts. Instances whose budget runs out are marked
// Exhausted and left running at their source.
func (tb *Testbed) MigrateAllRetry(p *sim.Proc, reqs []MigrationRequest, pol sched.Policy, retry sched.Retry) *metrics.Campaign {
	jobs := make([]sched.Job, len(reqs))
	for i, r := range reqs {
		r := r
		jobs[i] = sched.Job{
			Name:     r.Inst.Name,
			Run:      func(jp *sim.Proc) error { return tb.MigrateInstance(jp, r.Inst, r.DstIdx) },
			LowIO:    func() bool { return tb.LowIO(r.Inst) },
			Downtime: func() float64 { return r.Inst.HVResult.Downtime },
			Wasted:   func() float64 { return r.Inst.AbortedBytes },
		}
	}
	o := sched.New(tb.Eng, tb.Cl.Net)
	o.Trace = tb.bus
	c := o.RunRetry(p, jobs, pol, retry)
	for i, st := range c.JobStats {
		if st.Exhausted {
			reqs[i].Inst.Exhausted = true
		}
	}
	return c
}
