// Package cluster is the cloud middleware of the reproduction: it assembles
// the testbed (compute nodes, repository, parallel file system), deploys VM
// instances provisioned through the storage-transfer strategy registry
// (internal/strategy — the five compared approaches of Table 1 plus any
// strategy registered on top), and orchestrates live migrations end to end —
// the storage-side MIGRATION REQUEST followed by the hypervisor's memory
// migration, exactly as Section 4.3 prescribes, with every per-approach
// decision behind the strategy interface.
package cluster

import (
	"errors"
	"fmt"

	"github.com/hybridmig/hybridmig/internal/blob"
	"github.com/hybridmig/hybridmig/internal/chunk"
	"github.com/hybridmig/hybridmig/internal/core"
	"github.com/hybridmig/hybridmig/internal/fabric"
	"github.com/hybridmig/hybridmig/internal/guest"
	"github.com/hybridmig/hybridmig/internal/hv"
	"github.com/hybridmig/hybridmig/internal/lease"
	"github.com/hybridmig/hybridmig/internal/metrics"
	"github.com/hybridmig/hybridmig/internal/params"
	"github.com/hybridmig/hybridmig/internal/pfs"
	"github.com/hybridmig/hybridmig/internal/sched"
	"github.com/hybridmig/hybridmig/internal/sim"
	"github.com/hybridmig/hybridmig/internal/strategy"
	"github.com/hybridmig/hybridmig/internal/trace"
	"github.com/hybridmig/hybridmig/internal/vm"
)

// Approach names a registered storage-transfer strategy (see
// internal/strategy). The five Table 1 approaches have named constants; any
// further registered strategy is addressed by its registry name.
type Approach string

// The five approaches of the paper's evaluation.
const (
	OurApproach Approach = "our-approach"
	Mirror      Approach = "mirror"
	Postcopy    Approach = "postcopy"
	Precopy     Approach = "precopy"
	PVFSShared  Approach = "pvfs-shared"
)

// MultiAttach is the shared-volume strategy that dual-attaches the volume
// during switchover under lease fencing (not part of the paper's Table 1).
const MultiAttach Approach = "multiattach"

// Approaches lists the paper's five compared approaches in the Table 1
// presentation order. The full registered set — which may be larger — is
// strategy.Names().
func Approaches() []Approach {
	return []Approach{OurApproach, Mirror, Postcopy, Precopy, PVFSShared}
}

// Description returns the registered Table 1 summary line for the approach;
// an unregistered approach reports the actual registered strategy names
// instead of a silent "unknown".
func (a Approach) Description() string {
	if d, ok := strategy.Describe(string(a)); ok {
		return d
	}
	return fmt.Sprintf("unregistered strategy %q (registered: %s)", string(a), strategy.Registered())
}

// Config assembles every knob of a testbed.
type Config struct {
	Nodes      int // compute nodes (repository/PFS servers ride on them, as in the paper)
	Testbed    params.Testbed
	HV         params.Hypervisor
	Guest      params.Guest
	Manager    params.Manager
	Repo       params.Repository
	Experiment params.Experiment
	// BootRead is how much base-image content each instance reads at launch
	// (OS boot + warm-up), which seeds the hot-base-content hints.
	BootRead int64
	// Lease configures the shared-volume attachment manager (TTL, grace
	// period, reconcile interval, and the NoFencing demonstrator switch);
	// the zero value selects the defaults.
	Lease lease.Options
	// ManagerOverride, when non-nil, replaces the manager options derived
	// from Manager (used by ablations).
	ManagerOverride *core.Options
}

// DefaultConfig returns the paper's testbed at the given node count.
func DefaultConfig(nodes int) Config {
	return Config{
		Nodes:      nodes,
		Testbed:    params.DefaultTestbed(),
		HV:         params.DefaultHypervisor(),
		Guest:      params.DefaultGuest(),
		Manager:    params.DefaultManager(),
		Repo:       params.DefaultRepository(),
		Experiment: params.DefaultExperiment(),
		BootRead:   192 * params.MB,
	}
}

// SmallConfig returns a miniature testbed (256 MB images, 512 MB RAM) that
// preserves all the ratios of DefaultConfig. Tests and smoke runs use it to
// keep simulations fast while exercising the same code paths.
func SmallConfig(nodes int) Config {
	cfg := DefaultConfig(nodes)
	cfg.Testbed.ImageSize = 256 * params.MB
	cfg.Testbed.RAM = 512 * params.MB
	cfg.HV.BootedFootprint = 64 * params.MB
	cfg.Guest.DirtyLimit = 48 * params.MB
	cfg.Guest.CacheRegion = 160 * params.MB
	cfg.BootRead = 24 * params.MB
	return cfg
}

// Testbed is a fully assembled simulated datacenter.
type Testbed struct {
	Eng  *sim.Engine
	Cl   *fabric.Cluster
	Repo *blob.Store
	PFS  *pfs.FS
	Cfg  Config

	baseBlob  *blob.Blob
	basePFS   *pfs.File
	geo       chunk.Geometry
	instances []*Instance
	bus       *trace.Bus
	leases    *lease.Manager
}

// Observe subscribes an observer to the testbed's trace bus: migration
// requests and completions (this layer), storage phase transitions
// (internal/core), pre-copy rounds (internal/hv), and campaign admissions
// (internal/sched). Subscribe before Launch so managers created later see
// the bus; with no subscribers the bus is inert and runs are bit-identical
// to unobserved ones.
func (tb *Testbed) Observe(o trace.Observer) { tb.bus.Subscribe(o) }

// Bus returns the testbed's trace bus (the scenario layer samples onto it).
func (tb *Testbed) Bus() *trace.Bus { return tb.bus }

// New builds the testbed: BlobSeer and PVFS both span all compute nodes, as
// in Section 5.2, and the 4 GB base image is installed in both.
func New(cfg Config) *Testbed {
	eng := sim.New()
	cl := fabric.NewCluster(eng, cfg.Nodes, cfg.Testbed)
	repo := blob.NewStore(cl, cl.Nodes, cfg.Repo)
	fs := pfs.NewFS(cl, cl.Nodes, pfs.Params{
		StripeSize:      cfg.Repo.StripeSize,
		MetadataLatency: cfg.Repo.MetadataLatency,
	})
	tb := &Testbed{
		Eng:  eng,
		Cl:   cl,
		Repo: repo,
		PFS:  fs,
		Cfg:  cfg,
		geo:  chunk.NewGeometry(cfg.Testbed.ImageSize, cfg.Testbed.ChunkSize),
		bus:  &trace.Bus{},
	}
	tb.baseBlob = repo.Create(cfg.Testbed.ImageSize)
	ids := make([]blob.ContentID, tb.baseBlob.Stripes())
	for i := range ids {
		ids[i] = blob.ContentID(1_000_000 + i) // distinct base content
	}
	tb.baseBlob.PutContent(ids)
	tb.basePFS = fs.Create("base.img", cfg.Testbed.ImageSize)
	pids := make([]pfs.ContentID, tb.basePFS.Stripes())
	for i := range pids {
		pids[i] = pfs.ContentID(1_000_000 + i)
	}
	tb.basePFS.PutContent(pids)
	// The attachment manager's reachability probe is the fabric's partition
	// state: a node inside a partition window cannot renew its leases.
	tb.leases = lease.NewManager(eng, tb.bus, cfg.Lease, func(node int) bool {
		return !cl.PartitionedNow(node)
	})
	return tb
}

// Leases returns the testbed's shared-volume attachment manager.
func (tb *Testbed) Leases() *lease.Manager { return tb.leases }

// Geometry returns the image chunking.
func (tb *Testbed) Geometry() chunk.Geometry { return tb.geo }

// Instance is one deployed VM with its full stack.
type Instance struct {
	Name     string
	Approach Approach
	VM       *vm.VM
	Guest    *guest.Guest

	// Strategy is the per-VM storage-transfer strategy state backing the
	// instance — one uniform handle instead of per-approach union fields.
	Strategy strategy.Instance

	// Migration measurements (filled by MigrateInstance).
	Migrated      bool
	MigrationTime float64
	HVResult      hv.Result
	CoreStats     core.Stats
	Done          sim.Gate

	// Fault/retry accounting, cumulative across attempts.
	Attempts     int     // migration attempts, aborted ones included
	Aborts       int     // attempts torn down by injected faults
	Fenced       int     // aborts that were fencing decisions (subset of Aborts)
	AbortedBytes float64 // wire bytes wasted by aborted attempts
	Exhausted    bool    // a retry budget ran out without completing

	abort *hv.Abort // in-flight attempt's cancellation handle, nil when idle
}

// strategyEnv assembles the provisioning environment strategies build
// against.
func (tb *Testbed) strategyEnv() strategy.Env {
	return strategy.Env{
		Eng:             tb.Eng,
		Cl:              tb.Cl,
		Geo:             tb.geo,
		Base:            tb.baseBlob,
		BasePFS:         tb.basePFS,
		PFS:             tb.PFS,
		Bus:             tb.bus,
		HV:              tb.Cfg.HV,
		Manager:         tb.Cfg.Manager,
		ManagerOverride: tb.Cfg.ManagerOverride,
		Leases:          tb.leases,
	}
}

// Launch deploys an instance of the given approach on node nodeIdx,
// provisioning its storage through the strategy registry. The returned
// instance's guest is ready; its boot read runs as a process and completes
// within the warm-up period.
func (tb *Testbed) Launch(name string, nodeIdx int, approach Approach) *Instance {
	def, ok := strategy.Lookup(string(approach))
	if !ok {
		panic(fmt.Sprintf("cluster: unregistered strategy %q (registered: %s)",
			approach, strategy.Registered()))
	}
	node := tb.Cl.Nodes[nodeIdx]
	cfg := tb.Cfg
	mem := vm.NewMemory(cfg.Testbed.RAM, cfg.HV.MemPageSize)
	mem.Alloc(cfg.HV.BootedFootprint, true) // kernel + userland
	v := vm.New(tb.Eng, name, node, mem, 2)

	inst := &Instance{Name: name, Approach: approach, VM: v}
	inst.Strategy = def.Provision(tb.strategyEnv(), name, node)
	raw := &guest.RawDisk{Cl: tb.Cl, Node: func() *fabric.Node { return v.Node }, Geo: tb.geo}
	gopts := guest.Options{
		HostCache: inst.Strategy.HostCache(),
		Buffered:  true,
		Inner:     raw,
		MakeImage: inst.Strategy.MakeImage,
	}
	inst.Guest = guest.New(tb.Eng, v, cfg.Guest, gopts)
	inst.Strategy.AttachGuest(inst.Guest)

	if cfg.BootRead > 0 {
		tb.Eng.Go(name+"/boot", func(p *sim.Proc) {
			osOff, osEnd := inst.Guest.FS.OSArea()
			span := osEnd - osOff
			boot := cfg.BootRead
			if boot > span {
				boot = span
			}
			inst.Guest.FS.ReadRaw(p, osOff, boot)
		})
	}
	tb.instances = append(tb.instances, inst)
	return inst
}

// Instances returns all deployed instances.
func (tb *Testbed) Instances() []*Instance { return tb.instances }

// ErrMigrationAborted is returned by MigrateInstance when an injected fault
// tore the attempt down. The instance keeps running at the source and may be
// retried with a fresh MigrateInstance call.
var ErrMigrationAborted = errors.New("cluster: migration aborted by injected fault")

// ErrMigrationFenced is returned when the attempt was aborted by a fencing
// decision of the attachment manager (a lease revoked or refused during the
// shared-volume switchover window). It wraps ErrMigrationAborted, so retry
// machinery that matches on the general abort keeps working.
var ErrMigrationFenced = fmt.Errorf("%w: fencing won", ErrMigrationAborted)

// MigrateInstance live-migrates inst to the node at dstIdx, blocking until
// the migration fully completes per the strategy's own definition of
// migration time (Section 5.2): control transfer for precopy, mirror and
// pvfs-shared; source release for the push/pull schemes. When a fault aborts
// the attempt (see AbortMigration) it returns ErrMigrationAborted with the
// VM live at the source and the wasted traffic accumulated on the instance.
func (tb *Testbed) MigrateInstance(p *sim.Proc, inst *Instance, dstIdx int) error {
	dst := tb.Cl.Nodes[dstIdx]
	src := inst.VM.Node
	start := tb.Eng.Now()
	inst.Attempts++
	inst.abort = hv.NewAbort(tb.Cl.Net)
	defer func() { inst.abort = nil }()
	if tb.bus.Active() {
		tb.bus.Emit(trace.Event{Time: start, Kind: trace.KindMigrationRequested,
			VM: inst.Name, Detail: string(inst.Approach), Value: float64(dst.ID)})
	}
	// Host-side migration work steals guest CPU for as long as the VM's
	// host is involved in transfers (Section 2's "impact on application
	// performance" is precisely this resource consumption).
	inst.VM.SetCPUSteal(tb.Cfg.HV.CPUSteal)
	defer inst.VM.SetCPUSteal(0)
	out := inst.Strategy.Migrate(&strategy.Migration{
		P: p, VM: inst.VM, Src: src, Dst: dst, Start: start, Abort: inst.abort,
	})
	inst.HVResult = out.HV
	if out.Aborted {
		inst.Aborts++
		wasted := out.HV.MemoryBytes + out.HV.BlockBytes + out.StorageWasted
		inst.AbortedBytes += wasted
		detail := string(inst.Approach)
		if out.Fenced {
			inst.Fenced++
			detail = "fenced"
		}
		if tb.bus.Active() {
			tb.bus.Emit(trace.Event{Time: tb.Eng.Now(), Kind: trace.KindMigrationAborted,
				VM: inst.Name, Detail: detail, Value: wasted})
		}
		if out.Fenced {
			return ErrMigrationFenced
		}
		return ErrMigrationAborted
	}
	inst.CoreStats = inst.Strategy.Stats()
	inst.MigrationTime = out.MigrationTime
	inst.Migrated = true
	if tb.bus.Active() {
		tb.bus.Emit(trace.Event{Time: tb.Eng.Now(), Kind: trace.KindMigrationCompleted,
			VM: inst.Name, Detail: string(inst.Approach), Value: inst.MigrationTime})
	}
	inst.Done.Open(tb.Eng)
	return nil
}

// AbortMigration injects a fault into inst's in-flight migration: the
// strategy tears its storage state down (destination state released, I/O
// control kept at or returned to the source) and the hypervisor transfer
// unwinds. Reports whether a migration was actually in flight to abort.
//
// A strategy may veto the fault by returning false from Abort — for
// manager-backed strategies the storage migration is the point of no return:
// once the manager has fully completed (source released), aborting only the
// final memory copy would strand storage at the destination while the VM
// restarts at the source, so a fault landing in that tail is "too late" and
// the migration is allowed to finish.
func (tb *Testbed) AbortMigration(inst *Instance, reason string) bool {
	if inst.abort == nil || inst.abort.Aborted() {
		return false // no attempt in flight (or this one is already dying)
	}
	if !inst.Strategy.Abort(reason) {
		return false // storage not abortable: idle or already complete
	}
	inst.abort.Trigger()
	return true
}

// MigrationRequest names one migration of a campaign: an instance and the
// index of its destination node.
type MigrationRequest struct {
	Inst   *Instance
	DstIdx int
}

// lowIOFraction is the dirty-cache cutoff for the cycle-aware policy: a VM
// whose guest cache holds less than this fraction of its dirty limit is in a
// low-I/O window (writers idle or draining, not pushing against throttle).
const lowIOFraction = 8

// LowIO reports whether the instance's workload is currently in a low-I/O
// window, judged by how much dirty data sits in its guest cache. Workload
// cycles (IOR's write/read phases, AsyncWR's compute/write alternation) show
// up directly in this signal.
func (tb *Testbed) LowIO(inst *Instance) bool {
	return inst.Guest.Cache.DirtyBytes() <= tb.Cfg.Guest.DirtyLimit/lowIOFraction
}

// MigrateAll executes a campaign of migrations under the policy, blocking
// until every request has completed, and returns the campaign's aggregate
// stats. Requests are admitted in slice order; identical inputs yield
// identical campaigns (the simulation stays deterministic).
func (tb *Testbed) MigrateAll(p *sim.Proc, reqs []MigrationRequest, pol sched.Policy) *metrics.Campaign {
	return tb.MigrateAllRetry(p, reqs, pol, sched.Retry{})
}

// MigrateAllRetry is MigrateAll with a retry budget: fault-aborted
// migrations back off and rejoin the admission queue until they complete or
// exhaust retry.MaxAttempts. Instances whose budget runs out are marked
// Exhausted and left running at their source.
func (tb *Testbed) MigrateAllRetry(p *sim.Proc, reqs []MigrationRequest, pol sched.Policy, retry sched.Retry) *metrics.Campaign {
	jobs := make([]sched.Job, len(reqs))
	for i, r := range reqs {
		r := r
		jobs[i] = sched.Job{
			Name:     r.Inst.Name,
			Run:      func(jp *sim.Proc) error { return tb.MigrateInstance(jp, r.Inst, r.DstIdx) },
			LowIO:    func() bool { return tb.LowIO(r.Inst) },
			Downtime: func() float64 { return r.Inst.HVResult.Downtime },
			Wasted:   func() float64 { return r.Inst.AbortedBytes },
			Fenced:   func() int { return r.Inst.Fenced },
		}
	}
	o := sched.New(tb.Eng, tb.Cl.Net)
	o.Trace = tb.bus
	sb0 := tb.leases.SplitBrainWindows()
	c := o.RunRetry(p, jobs, pol, retry)
	c.SplitBrainWindows = tb.leases.SplitBrainWindows() - sb0
	for i, st := range c.JobStats {
		if st.Exhausted {
			reqs[i].Inst.Exhausted = true
		}
	}
	return c
}
