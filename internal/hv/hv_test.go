package hv

import (
	"testing"

	"github.com/hybridmig/hybridmig/internal/chunk"
	"github.com/hybridmig/hybridmig/internal/fabric"
	"github.com/hybridmig/hybridmig/internal/flow"
	"github.com/hybridmig/hybridmig/internal/params"
	"github.com/hybridmig/hybridmig/internal/pfs"
	"github.com/hybridmig/hybridmig/internal/sim"
	"github.com/hybridmig/hybridmig/internal/vm"
)

const (
	mb        = params.MB
	imageSize = 256 * mb
	ramSize   = 256 * mb
)

// rig is a two-node world with a PFS on a third node.
type rig struct {
	eng *sim.Engine
	cl  *fabric.Cluster
	fs  *pfs.FS
	v   *vm.VM
	geo chunk.Geometry
}

func newRig(t *testing.T) *rig {
	t.Helper()
	eng := sim.New()
	tb := params.DefaultTestbed()
	tb.NICBandwidth = 100 * mb
	tb.DiskBandwidth = 50 * mb
	tb.FabricBandwidth = 8000 * mb
	tb.NetLatency = 0
	tb.DiskLatency = 0
	cl := fabric.NewCluster(eng, 3, tb)
	fs := pfs.NewFS(cl, cl.Nodes[2:3], pfs.Params{StripeSize: 256 * params.KB})
	mem := vm.NewMemory(ramSize, 1*mb)
	v := vm.New(eng, "vm0", cl.Nodes[0], mem, 1)
	return &rig{eng: eng, cl: cl, fs: fs, v: v,
		geo: chunk.NewGeometry(imageSize, 256*params.KB)}
}

func hp() params.Hypervisor {
	h := params.DefaultHypervisor()
	h.MigrationSpeed = 100 * mb
	h.BootedFootprint = 32 * mb
	return h
}

// noopImage satisfies vm.DiskImage for memory-only migration tests.
type noopImage struct {
	geo   chunk.Geometry
	syncs int
}

func (n *noopImage) Read(p *sim.Proc, off, length int64)  {}
func (n *noopImage) Write(p *sim.Proc, off, length int64) {}
func (n *noopImage) Sync(p *sim.Proc)                     { n.syncs++ }
func (n *noopImage) Geometry() chunk.Geometry             { return n.geo }

func TestMemoryOnlyMigrationConverges(t *testing.T) {
	r := newRig(t)
	img := &noopImage{geo: r.geo}
	r.v.Image = img
	// 64 MB of touched memory, no dirtying: one round plus stop-and-copy.
	r.v.Mem.Alloc(64*mb, true)
	var res Result
	r.eng.Go("mig", func(p *sim.Proc) {
		res = Migrate(p, r.cl, r.v, r.cl.Nodes[1], hp(), nil, nil)
	})
	if err := r.eng.Run(); err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("static memory did not converge")
	}
	if res.Rounds != 1 {
		t.Fatalf("rounds = %d, want 1", res.Rounds)
	}
	// 64 MB at 100 MB/s ~ 0.64s.
	want := 0.64
	got := res.ControlTransfer - res.Requested
	if got < want*0.9 || got > want*1.5 {
		t.Fatalf("migration time = %v, want ~%v", got, want)
	}
	if res.Downtime <= 0 || res.Downtime > 0.1 {
		t.Fatalf("downtime = %v, want small positive", res.Downtime)
	}
	if img.syncs != 1 {
		t.Fatalf("image synced %d times, want 1", img.syncs)
	}
	if r.v.Node != r.cl.Nodes[1] {
		t.Fatal("VM not rehomed")
	}
}

func TestDirtyingExtendsRounds(t *testing.T) {
	r := newRig(t)
	r.v.Image = &noopImage{geo: r.geo}
	reg := r.v.Mem.Alloc(128*mb, true)
	d := r.v.Mem.NewDirtier(reg, 30*mb) // dirties slower than the link
	d.SetActive(true, 0)
	var res Result
	r.eng.Go("mig", func(p *sim.Proc) {
		res = Migrate(p, r.cl, r.v, r.cl.Nodes[1], hp(), nil, nil)
	})
	if err := r.eng.Run(); err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("should converge: dirty rate < link rate")
	}
	if res.Rounds < 2 {
		t.Fatalf("rounds = %d, want >= 2 with active dirtying", res.Rounds)
	}
	if res.MemoryBytes <= 128*mb {
		t.Fatalf("memory moved = %v, want > initial footprint (re-sent dirty pages)", res.MemoryBytes)
	}
}

func TestNonConvergenceHitsRoundCap(t *testing.T) {
	r := newRig(t)
	r.v.Image = &noopImage{geo: r.geo}
	reg := r.v.Mem.Alloc(200*mb, true)
	// Dirties faster than the 100 MB/s link over a big working set.
	d := r.v.Mem.NewDirtier(reg, 150*mb)
	d.SetActive(true, 0)
	h := hp()
	h.MaxRounds = 6
	var res Result
	r.eng.Go("mig", func(p *sim.Proc) {
		res = Migrate(p, r.cl, r.v, r.cl.Nodes[1], h, nil, nil)
	})
	if err := r.eng.Run(); err != nil {
		t.Fatal(err)
	}
	if res.Converged {
		t.Fatal("cannot converge when dirty rate > link rate")
	}
	if res.Rounds != 6 {
		t.Fatalf("rounds = %d, want cap 6", res.Rounds)
	}
	// Forced stop-and-copy moves a large final payload: downtime far above
	// the 30 ms target.
	if res.Downtime < 0.5 {
		t.Fatalf("downtime = %v, want large (forced)", res.Downtime)
	}
}

func TestDowntimeRespectsBudgetWhenConverged(t *testing.T) {
	r := newRig(t)
	r.v.Image = &noopImage{geo: r.geo}
	reg := r.v.Mem.Alloc(128*mb, true)
	d := r.v.Mem.NewDirtier(reg, 10*mb)
	d.SetActive(true, 0)
	var res Result
	r.eng.Go("mig", func(p *sim.Proc) {
		res = Migrate(p, r.cl, r.v, r.cl.Nodes[1], hp(), nil, nil)
	})
	if err := r.eng.Run(); err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("should converge")
	}
	// Device state (2 MB) rides in the downtime window: at 100 MB/s that is
	// 20 ms; budget is 30 ms for the dirty payload, so bound it loosely.
	if res.Downtime > 0.08 {
		t.Fatalf("downtime = %v, want <= ~2x budget", res.Downtime)
	}
}

func TestGuestPausedExactlyDuringDowntime(t *testing.T) {
	r := newRig(t)
	r.v.Image = &noopImage{geo: r.geo}
	r.v.Mem.Alloc(64*mb, true)
	var res Result
	r.eng.Go("mig", func(p *sim.Proc) {
		res = Migrate(p, r.cl, r.v, r.cl.Nodes[1], hp(), nil, nil)
	})
	if err := r.eng.Run(); err != nil {
		t.Fatal(err)
	}
	if got := r.v.TotalDowntime(); got != res.Downtime {
		t.Fatalf("VM downtime %v != result downtime %v", got, res.Downtime)
	}
	if r.v.Paused() {
		t.Fatal("VM still paused after migration")
	}
}

func TestCOWImageReadWrite(t *testing.T) {
	r := newRig(t)
	base := r.fs.Create("base", imageSize)
	ids := make([]pfs.ContentID, base.Stripes())
	for i := range ids {
		ids[i] = pfs.ContentID(i + 1)
	}
	base.PutContent(ids)
	im := NewCOWImage(r.cl, r.cl.Nodes[0], r.geo, base, nil)
	r.eng.Go("io", func(p *sim.Proc) {
		im.Read(p, 0, 1*mb) // base read via PFS
		if im.BaseReadBytes != 1*mb {
			t.Errorf("base reads = %v, want 1 MB", im.BaseReadBytes)
		}
		im.Write(p, 0, 1*mb) // full chunks: no RMW
		if im.RMWFetches != 0 {
			t.Errorf("RMW fetches = %d, want 0 for aligned write", im.RMWFetches)
		}
		im.Read(p, 0, 1*mb) // now local
		if im.LocalReadBytes != 1*mb {
			t.Errorf("local reads = %v, want 1 MB", im.LocalReadBytes)
		}
		// Partial write to an unallocated chunk triggers COW RMW.
		im.Write(p, 4*mb+100, 1000)
		if im.RMWFetches != 1 {
			t.Errorf("RMW fetches = %d, want 1", im.RMWFetches)
		}
	})
	if err := r.eng.Run(); err != nil {
		t.Fatal(err)
	}
	if im.LocalSet().Count() != 5 {
		t.Fatalf("local chunks = %d, want 5 (4 aligned + 1 COW)", im.LocalSet().Count())
	}
}

func TestBlockMigrationMovesAllocatedChunks(t *testing.T) {
	r := newRig(t)
	base := r.fs.Create("base", imageSize)
	im := NewCOWImage(r.cl, r.cl.Nodes[0], r.geo, base, nil)
	r.v.Image = im
	r.v.Mem.Alloc(32*mb, true)
	var res Result
	r.eng.Go("driver", func(p *sim.Proc) {
		im.Write(p, 0, 64*mb) // allocate 64 MB locally
		res = Migrate(p, r.cl, r.v, r.cl.Nodes[1], hp(), im, nil)
	})
	if err := r.eng.Run(); err != nil {
		t.Fatal(err)
	}
	if res.BlockBytes < 64*mb {
		t.Fatalf("block bytes = %v, want >= 64 MB bulk", res.BlockBytes)
	}
	if im.Node() != r.cl.Nodes[1] {
		// MoveTo is the orchestrator's job; here FinishBlockMigration only
		// stops tracking. Move it manually to mimic the orchestrator.
		im.MoveTo(r.cl.Nodes[1])
	}
	if got := r.cl.Net.BytesByTag(flow.TagBlockMig); got < 64*mb {
		t.Fatalf("block migration traffic = %v, want >= 64 MB", got)
	}
}

func TestBlockMigrationRetransfersDirtyBlocks(t *testing.T) {
	r := newRig(t)
	base := r.fs.Create("base", imageSize)
	im := NewCOWImage(r.cl, r.cl.Nodes[0], r.geo, base, nil)
	r.v.Image = im
	r.v.Mem.Alloc(16*mb, true)
	var res Result
	r.eng.Go("driver", func(p *sim.Proc) {
		im.Write(p, 0, 64*mb)
		// Keep rewriting one region while migration runs.
		done := false
		r.eng.Go("writer", func(wp *sim.Proc) {
			for !done {
				im.Write(wp, 0, 8*mb)
				wp.Sleep(0.2)
			}
		})
		res = Migrate(p, r.cl, r.v, r.cl.Nodes[1], hp(), im, nil)
		done = true
	})
	if err := r.eng.Run(); err != nil {
		t.Fatal(err)
	}
	// Rewrites force block re-transfers beyond the 64 MB bulk.
	if res.BlockBytes <= 64*mb {
		t.Fatalf("block bytes = %v, want > 64 MB (dirty block retransfer)", res.BlockBytes)
	}
}

func TestSharedImageAllIOOverNetwork(t *testing.T) {
	r := newRig(t)
	base := r.fs.Create("base", imageSize)
	snap := r.fs.Create("snap", imageSize)
	im := NewSharedImage(r.cl, r.cl.Nodes[0], r.geo, base, snap)
	r.eng.Go("io", func(p *sim.Proc) {
		im.Write(p, 0, 4*mb)
		im.Read(p, 0, 4*mb)    // from snapshot
		im.Read(p, 8*mb, 1*mb) // from base
	})
	if err := r.eng.Run(); err != nil {
		t.Fatal(err)
	}
	if got := r.cl.Net.BytesByTag(flow.TagPFS); got != 9*mb {
		t.Fatalf("PFS traffic = %v, want 9 MB (4 write + 5 read)", got)
	}
	snapChunk := im.ContentSnapshot()[0]
	if snapChunk == 0 {
		t.Fatal("snapshot content not recorded")
	}
}

func TestSharedImageMigrationIsMemoryOnly(t *testing.T) {
	r := newRig(t)
	base := r.fs.Create("base", imageSize)
	snap := r.fs.Create("snap", imageSize)
	im := NewSharedImage(r.cl, r.cl.Nodes[0], r.geo, base, snap)
	r.v.Image = im
	r.v.Mem.Alloc(64*mb, true)
	var res Result
	r.eng.Go("driver", func(p *sim.Proc) {
		im.Write(p, 0, 32*mb)
		res = Migrate(p, r.cl, r.v, r.cl.Nodes[1], hp(), nil, nil)
		im.MoveTo(r.v.Node)
	})
	if err := r.eng.Run(); err != nil {
		t.Fatal(err)
	}
	if res.BlockBytes != 0 {
		t.Fatalf("block bytes = %v, want 0", res.BlockBytes)
	}
	if im.Node() != r.cl.Nodes[1] {
		t.Fatal("image client side not rehomed")
	}
	// Content written before migration is still visible after (shared).
	if im.ContentSnapshot()[0] == 0 {
		t.Fatal("shared content lost across migration")
	}
}
