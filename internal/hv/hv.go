// Package hv models the hypervisor: QEMU/KVM-style pre-copy live migration
// of memory, with optional incremental block migration (the paper's
// "precopy" baseline), zero-page elision, and downtime-bounded convergence.
//
// The migration loop mirrors QEMU 1.0's: round 0 moves every non-zero page;
// each later round moves the pages dirtied during the previous round; when
// the remaining dirty payload can be transferred within the max-downtime
// budget (at the measured link rate), the VM is stopped, the final state is
// flushed, the disk image is synced (which is where the paper's migration
// manager intercepts control transfer), and the VM resumes on the
// destination. If the workload dirties faster than the link drains, rounds
// keep shrinking nothing and the loop only exits via the round cap —
// exactly the non-convergence pathology the paper describes for pre-copy
// under I/O-intensive workloads.
package hv

import (
	"github.com/hybridmig/hybridmig/internal/fabric"
	"github.com/hybridmig/hybridmig/internal/flow"
	"github.com/hybridmig/hybridmig/internal/params"
	"github.com/hybridmig/hybridmig/internal/sim"
	"github.com/hybridmig/hybridmig/internal/trace"
	"github.com/hybridmig/hybridmig/internal/vm"
)

// BlockMigrator is implemented by disk images that participate in QEMU-style
// incremental block migration (the precopy baseline): the hypervisor drags
// their blocks through the same iterative loop as memory.
type BlockMigrator interface {
	// BulkBytes returns the bytes of every currently allocated local block
	// (the bulk phase payload) and arms dirty-block tracking.
	BulkBytes() int64
	// CollectDirtyBytes returns and clears the bytes of blocks dirtied since
	// the previous call.
	CollectDirtyBytes() int64
	// FinishBlockMigration is called at control transfer, after the final
	// (downtime) round has moved the last dirty blocks.
	FinishBlockMigration()
}

// Result summarizes one live migration from the hypervisor's perspective.
type Result struct {
	Requested       sim.Time
	ControlTransfer sim.Time // moment the VM resumed on the destination
	Downtime        float64  // stop-and-copy duration
	Rounds          int      // pre-copy rounds executed (including round 0)
	MemoryBytes     float64  // memory payload moved (incl. device state)
	BlockBytes      float64  // block-migration payload moved
	Converged       bool     // false when the round cap forced stop-and-copy
	Aborted         bool     // an injected fault tore the migration down
}

// Abort is the cancellation handle for one in-flight live migration. A fault
// injector calls Trigger, which cancels the transfer currently on the wire;
// the migration process wakes from its flow wait, observes the flag, and
// unwinds without pausing or moving the VM (or, if already paused, resumes
// it at the source). Everything runs synchronously in simulation context —
// no watcher processes, no timers — so aborting leaves nothing behind.
type Abort struct {
	net     *flow.Net
	aborted bool
	cur     *flow.Flow
}

// NewAbort returns an abort handle bound to the network the migration's
// flows run on.
func NewAbort(net *flow.Net) *Abort { return &Abort{net: net} }

// Trigger aborts the migration: the in-flight transfer (if any) is canceled
// and the migration process unwinds at its next step. Triggering twice, or
// triggering a nil handle, is a no-op.
func (a *Abort) Trigger() {
	if a == nil || a.aborted {
		return
	}
	a.aborted = true
	if a.cur != nil && !a.cur.Done() {
		a.net.Cancel(a.cur)
	}
	a.cur = nil
}

// Aborted reports whether Trigger has fired. Nil handles report false.
func (a *Abort) Aborted() bool { return a != nil && a.aborted }

// Migrate live-migrates v from its current node to dst, blocking until the
// VM runs on dst. bm is non-nil only for the precopy (block migration)
// baseline. The image's Sync is invoked right before control transfer, which
// is the hook the migration manager uses (Section 4.4 of the paper).
// stopGate, when non-nil, delays stop-and-copy until it opens — the mirror
// baseline keeps the VM live (with writes mirrored) until the bulk copy
// completes, so the hypervisor idles in extra rounds instead of freezing the
// guest (Haselhorst et al.'s full-synchronization-before-control rule).
func Migrate(p *sim.Proc, cl *fabric.Cluster, v *vm.VM, dst *fabric.Node, hp params.Hypervisor, bm BlockMigrator, stopGate *sim.Gate) Result {
	return MigrateTraced(p, cl, v, dst, hp, bm, stopGate, nil)
}

// MigrateTraced is Migrate with an observer bus: the start of every pre-copy
// round is published as a trace.KindRound event (round number and payload
// bytes). A nil bus is valid and traces nothing.
func MigrateTraced(p *sim.Proc, cl *fabric.Cluster, v *vm.VM, dst *fabric.Node, hp params.Hypervisor, bm BlockMigrator, stopGate *sim.Gate, bus *trace.Bus) Result {
	return MigrateAbortable(p, cl, v, dst, hp, bm, stopGate, bus, nil)
}

// MigrateAbortable is MigrateTraced with a fault-injection handle: when ab
// is triggered mid-migration the in-flight transfer is canceled and the
// migration unwinds with Result.Aborted set, leaving the VM running at the
// source. Byte counters then report what actually crossed the wire before
// the abort (the wasted traffic of the attempt). A nil ab disables aborts
// and is byte-for-byte the untraced path.
func MigrateAbortable(p *sim.Proc, cl *fabric.Cluster, v *vm.VM, dst *fabric.Node, hp params.Hypervisor, bm BlockMigrator, stopGate *sim.Gate, bus *trace.Bus, ab *Abort) Result {
	eng := cl.Eng
	src := v.Node
	res := Result{Requested: eng.Now()}

	transfer := func(bytes float64, tag flow.Tag) float64 {
		if bytes <= 0 || ab.Aborted() {
			return 0
		}
		start := eng.Now()
		path := cl.NetPath(src, dst)
		if tag == flow.TagBlockMig {
			// QEMU's block migration reads blocks synchronously through the
			// block layer: the source disk is on the path and contends with
			// guest writeback — a key reason the precopy baseline starves
			// under I/O-intensive guests.
			path = append([]*flow.Link{src.Disk}, path...)
		}
		f := &flow.Flow{Links: path, Size: bytes, MaxRate: hp.MigrationSpeed, Tag: tag}
		cl.Net.Start(f)
		if ab != nil {
			ab.cur = f
		}
		f.Wait(p)
		if ab != nil {
			ab.cur = nil
		}
		// Account what actually moved: a completed flow moved exactly bytes,
		// a canceled one only its settled part.
		moved := bytes - f.Remaining()
		if tag == flow.TagBlockMig {
			res.BlockBytes += moved
		} else {
			res.MemoryBytes += moved
		}
		return eng.Now() - start
	}

	// Round 0: full non-zero memory plus, for block migration, every
	// allocated block.
	memPayload := float64(v.Mem.NonZeroBytes())
	var blkPayload float64
	if bm != nil {
		blkPayload = float64(bm.BulkBytes())
	}

	rate := hp.MigrationSpeed // estimate until measured
	for round := 0; ; round++ {
		res.Rounds = round + 1
		if bus.Active() {
			bus.Emit(trace.Event{Time: eng.Now(), Kind: trace.KindRound, VM: v.Name,
				Round: round, Value: memPayload + blkPayload})
		}
		dur := transfer(blkPayload, flow.TagBlockMig)
		dur += transfer(memPayload, flow.TagMemory)
		if ab.Aborted() {
			res.Aborted = true
			return res
		}
		if moved := memPayload + blkPayload; dur > 0 && moved > 0 {
			rate = moved / dur
		}

		memPayload = float64(v.Mem.CollectDirty(eng.Now()))
		blkPayload = 0
		if bm != nil {
			blkPayload = float64(bm.CollectDirtyBytes())
		}
		remaining := memPayload + blkPayload
		if remaining <= rate*hp.MaxDowntime {
			if stopGate != nil && !stopGate.IsOpen() {
				// Converged but storage is not synchronized yet: keep the VM
				// live, wait for the gate, and run one more catch-up round.
				stopGate.Wait(p)
				if ab.Aborted() {
					res.Aborted = true
					return res
				}
				memPayload = float64(v.Mem.CollectDirty(eng.Now()))
				if bm != nil {
					blkPayload = float64(bm.CollectDirtyBytes())
				}
				continue
			}
			res.Converged = true
			break
		}
		if round+1 >= hp.MaxRounds {
			res.Converged = false
			break
		}
	}

	// Stop-and-copy: pause, quiesce the disk image (this flushes buffered
	// writes and, for the migration manager, performs the control handoff of
	// Section 4.4 — the destination is ready to intercept I/O before the VM
	// resumes there), then flush the final dirty payload and device state.
	v.Pause()
	stopStart := eng.Now()
	v.Image.Sync(p)
	// Dirtying that raced in before the pause, plus blocks written by the
	// sync's flush.
	memPayload += float64(v.Mem.CollectDirty(eng.Now()))
	if bm != nil {
		blkPayload += float64(bm.CollectDirtyBytes())
	}
	transfer(blkPayload, flow.TagBlockMig)
	transfer(memPayload+float64(hp.DeviceState), flow.TagMemory)
	if ab.Aborted() {
		// Fault during stop-and-copy: the destination never went live, so
		// the VM resumes where it is — at the source.
		res.Downtime = eng.Now() - stopStart
		v.Resume()
		res.Aborted = true
		return res
	}
	if bm != nil {
		bm.FinishBlockMigration()
	}
	v.MoveTo(dst)
	res.Downtime = eng.Now() - stopStart
	v.Resume()
	res.ControlTransfer = eng.Now()
	return res
}
