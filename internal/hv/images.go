package hv

import (
	"fmt"

	"github.com/hybridmig/hybridmig/internal/chunk"
	"github.com/hybridmig/hybridmig/internal/fabric"
	"github.com/hybridmig/hybridmig/internal/flow"
	"github.com/hybridmig/hybridmig/internal/pfs"
	"github.com/hybridmig/hybridmig/internal/sim"
	"github.com/hybridmig/hybridmig/internal/vm"
)

// COWImage is the precopy baseline's disk image: a qcow2-style copy-on-write
// snapshot on the local disk backed by a base image on the parallel file
// system (Section 5.2.2 case 1). The hypervisor migrates the snapshot with
// incremental block migration via the BlockMigrator interface.
type COWImage struct {
	cl      *fabric.Cluster
	node    *fabric.Node
	geo     chunk.Geometry
	base    *pfs.File
	backing vm.DiskImage // host-cached local qcow2 file (nil = raw disk time)

	local    *chunk.Set // chunks allocated in the COW snapshot
	content  []uint64   // content IDs of allocated chunks
	seq      uint64
	tracking bool       // block-dirty log armed (during migration)
	dirty    *chunk.Set // blocks dirtied since last collection

	// Stats.
	BaseReadBytes  float64
	LocalReadBytes float64
	WriteBytes     float64
	RMWFetches     int
}

var _ vm.DiskImage = (*COWImage)(nil)
var _ BlockMigrator = (*COWImage)(nil)

// NewCOWImage creates the image on node with the given base file. backing,
// when non-nil, is the host-cached local file below the qcow2 layer.
func NewCOWImage(cl *fabric.Cluster, node *fabric.Node, geo chunk.Geometry, base *pfs.File, backing vm.DiskImage) *COWImage {
	if base == nil {
		panic("hv: COW image needs a base file")
	}
	return &COWImage{
		cl:      cl,
		node:    node,
		geo:     geo,
		base:    base,
		backing: backing,
		local:   chunk.NewSet(geo.Chunks()),
		content: make([]uint64, geo.Chunks()),
		dirty:   chunk.NewSet(geo.Chunks()),
	}
}

// store charges a write to the local qcow2 file.
func (im *COWImage) store(p *sim.Proc, off, length int64) {
	if im.backing != nil {
		im.backing.Write(p, off, length)
		return
	}
	im.cl.DiskIO(p, im.node, float64(length), flow.TagOther)
}

// loadLocal charges a read from the local qcow2 file.
func (im *COWImage) loadLocal(p *sim.Proc, off, length int64) {
	if im.backing != nil {
		im.backing.Read(p, off, length)
		return
	}
	im.cl.DiskIO(p, im.node, float64(length), flow.TagOther)
}

// Node returns the node currently hosting the snapshot.
func (im *COWImage) Node() *fabric.Node { return im.node }

// Geometry implements vm.DiskImage.
func (im *COWImage) Geometry() chunk.Geometry { return im.geo }

// ContentSnapshot returns a copy of the per-chunk content IDs (tests).
func (im *COWImage) ContentSnapshot() []uint64 {
	out := make([]uint64, len(im.content))
	copy(out, im.content)
	return out
}

// LocalSet returns the allocated-chunk set (tests).
func (im *COWImage) LocalSet() *chunk.Set { return im.local }

// ForEachLocalRange calls fn for every maximal run of allocated chunks
// (byte offsets).
func (im *COWImage) ForEachLocalRange(fn func(off, length int64)) {
	c := chunk.Idx(0)
	for {
		start, n := im.local.NextRunFrom(c, 1<<30)
		if start < 0 {
			return
		}
		r1 := im.geo.ChunkRange(start)
		r2 := im.geo.ChunkRange(start + chunk.Idx(n-1))
		fn(r1.Off, r2.End()-r1.Off)
		c = start + chunk.Idx(n)
	}
}

// Read implements vm.DiskImage: allocated chunks come from the local disk,
// unallocated ones from the base file on the parallel FS (no copy-on-read,
// matching qcow2).
func (im *COWImage) Read(p *sim.Proc, off, length int64) {
	if length <= 0 {
		return
	}
	first, last := im.geo.Span(chunk.Range{Off: off, Len: length})
	for c := first; c <= last; {
		inLocal := im.local.Contains(c)
		end := c
		for end+1 <= last && im.local.Contains(end+1) == inLocal {
			end++
		}
		bytes := im.runBytes(off, length, c, end)
		if inLocal {
			lo := im.geo.ChunkRange(c).Off
			if off > lo {
				lo = off
			}
			im.loadLocal(p, lo, int64(bytes))
			im.LocalReadBytes += bytes
		} else {
			im.readBase(p, c, end, bytes)
		}
		c = end + 1
	}
}

// readBase fetches [c..end] from the base file over the PFS.
func (im *COWImage) readBase(p *sim.Proc, c, end chunk.Idx, bytes float64) {
	r1 := im.geo.ChunkRange(c)
	r2 := im.geo.ChunkRange(end)
	im.base.Read(p, im.node, r1.Off, r2.End()-r1.Off)
	im.BaseReadBytes += bytes
}

// Write implements vm.DiskImage: copy-on-write at chunk granularity.
// Partially covered unallocated chunks fetch the base cluster first.
func (im *COWImage) Write(p *sim.Proc, off, length int64) {
	if length <= 0 {
		return
	}
	first, last := im.geo.Span(chunk.Range{Off: off, Len: length})
	wr := chunk.Range{Off: off, Len: length}
	for c := first; c <= last; c++ {
		if !im.local.Contains(c) && !im.geo.FullyCovers(wr, c) {
			// COW read-modify-write of the backing cluster.
			cr := im.geo.ChunkRange(c)
			im.base.Read(p, im.node, cr.Off, cr.Len)
			im.RMWFetches++
		}
	}
	im.store(p, off, length)
	im.WriteBytes += float64(length)
	for c := first; c <= last; c++ {
		im.local.Add(c)
		im.seq++
		im.content[c] = im.seq
		if im.tracking {
			im.dirty.Add(c)
		}
	}
}

// Sync implements vm.DiskImage: flush the local qcow2 file (bdrv_flush).
func (im *COWImage) Sync(p *sim.Proc) {
	if im.backing != nil {
		im.backing.Sync(p)
	}
}

// BulkBytes implements BlockMigrator: the bulk phase covers every allocated
// chunk; dirty tracking arms here.
func (im *COWImage) BulkBytes() int64 {
	im.tracking = true
	im.dirty.Clear()
	var b int64
	im.local.ForEach(func(c chunk.Idx) bool {
		b += im.geo.ChunkLen(c)
		return true
	})
	return b
}

// CollectDirtyBytes implements BlockMigrator.
func (im *COWImage) CollectDirtyBytes() int64 {
	var b int64
	im.dirty.ForEach(func(c chunk.Idx) bool {
		b += im.geo.ChunkLen(c)
		return true
	})
	im.dirty.Clear()
	return b
}

// MoveTo rehomes the snapshot after control transfer: by the end of block
// migration every allocated chunk has been re-created on the destination.
func (im *COWImage) MoveTo(node *fabric.Node) {
	im.node = node
	im.tracking = false
}

// FinishBlockMigration implements BlockMigrator.
func (im *COWImage) FinishBlockMigration() { im.tracking = false }

// WriteGuard authorizes writes to a shared volume. AuthorizeWrite is asked
// before every snapshot write with the issuing node; returning false blocks
// the write (a fenced holder's I/O). Implementations that detect an
// unauthorized-but-unfenced writer record the violation themselves and
// return true — the corruption happens and is detected, not hidden.
type WriteGuard interface {
	AuthorizeWrite(node int) bool
}

// SharedImage is the pvfs-shared baseline's disk: the base image and the
// copy-on-write snapshot both live on the parallel file system, so source
// and destination are always synchronized and migration moves memory only —
// but every guest I/O crosses the network (Section 5.2.3).
type SharedImage struct {
	cl   *fabric.Cluster
	node *fabric.Node // VM location (for network paths)
	geo  chunk.Geometry
	base *pfs.File
	snap *pfs.File

	written *chunk.Set // chunks present in the snapshot
	content []uint64
	seq     uint64

	// Guard, when non-nil, gates every write through the attachment
	// manager's lease check (nil preserves the unguarded baseline exactly).
	Guard WriteGuard

	ReadBytes  float64
	WriteBytes float64
	// FencedWriteBytes counts write traffic blocked by the guard (a fenced
	// holder's I/O never reaches the volume).
	FencedWriteBytes float64
}

var _ vm.DiskImage = (*SharedImage)(nil)

// NewSharedImage creates the image; snap must be a PFS file of image size.
func NewSharedImage(cl *fabric.Cluster, node *fabric.Node, geo chunk.Geometry, base, snap *pfs.File) *SharedImage {
	if snap.Size < geo.ImageSize {
		panic(fmt.Sprintf("hv: snapshot file too small (%d < %d)", snap.Size, geo.ImageSize))
	}
	return &SharedImage{
		cl:      cl,
		node:    node,
		geo:     geo,
		base:    base,
		snap:    snap,
		written: chunk.NewSet(geo.Chunks()),
		content: make([]uint64, geo.Chunks()),
	}
}

// Node returns the VM's current location.
func (im *SharedImage) Node() *fabric.Node { return im.node }

// MoveTo rehomes the client side (the data never moves — it is shared).
func (im *SharedImage) MoveTo(node *fabric.Node) { im.node = node }

// Geometry implements vm.DiskImage.
func (im *SharedImage) Geometry() chunk.Geometry { return im.geo }

// ContentSnapshot returns per-chunk content IDs (tests).
func (im *SharedImage) ContentSnapshot() []uint64 {
	out := make([]uint64, len(im.content))
	copy(out, im.content)
	return out
}

// Read implements vm.DiskImage: written chunks come from the snapshot file,
// untouched ones from the base file — all over the PFS.
func (im *SharedImage) Read(p *sim.Proc, off, length int64) {
	if length <= 0 {
		return
	}
	first, last := im.geo.Span(chunk.Range{Off: off, Len: length})
	for c := first; c <= last; {
		inSnap := im.written.Contains(c)
		end := c
		for end+1 <= last && im.written.Contains(end+1) == inSnap {
			end++
		}
		bytes := im.runBytes(off, length, c, end)
		r1 := im.geo.ChunkRange(c)
		src := im.base
		if inSnap {
			src = im.snap
		}
		src.Read(p, im.node, r1.Off, int64(bytes))
		im.ReadBytes += bytes
		c = end + 1
	}
}

// Write implements vm.DiskImage: all writes go to the snapshot on the PFS.
func (im *SharedImage) Write(p *sim.Proc, off, length int64) {
	im.writeFrom(p, im.node, off, length)
}

// WriteFrom issues a write from an explicit node — the path a recovery
// writer takes when a failover activates the volume on a node other than
// the VM's current location (the split-brain demonstrator).
func (im *SharedImage) WriteFrom(p *sim.Proc, node *fabric.Node, off, length int64) {
	im.writeFrom(p, node, off, length)
}

func (im *SharedImage) writeFrom(p *sim.Proc, node *fabric.Node, off, length int64) {
	if length <= 0 {
		return
	}
	if im.Guard != nil && !im.Guard.AuthorizeWrite(node.ID) {
		im.FencedWriteBytes += float64(length)
		return
	}
	im.seq++
	im.snap.Write(p, node, off, length, pfs.ContentID(im.seq))
	im.WriteBytes += float64(length)
	first, last := im.geo.Span(chunk.Range{Off: off, Len: length})
	for c := first; c <= last; c++ {
		im.written.Add(c)
		im.content[c] = im.seq
	}
}

// Sync implements vm.DiskImage: the PFS is already coherent.
func (im *SharedImage) Sync(p *sim.Proc) {}

// runBytes returns the bytes of [off,off+length) that fall within chunks
// [c..end].
func (im *SharedImage) runBytes(off, length int64, c, end chunk.Idx) float64 {
	return runBytes(im.geo, off, length, c, end)
}

func (im *COWImage) runBytes(off, length int64, c, end chunk.Idx) float64 {
	return runBytes(im.geo, off, length, c, end)
}

// runBytes clips the request [off, off+length) to the chunk run [c..end].
func runBytes(geo chunk.Geometry, off, length int64, c, end chunk.Idx) float64 {
	lo := geo.ChunkRange(c).Off
	hi := geo.ChunkRange(end).End()
	if off > lo {
		lo = off
	}
	if off+length < hi {
		hi = off + length
	}
	if hi < lo {
		return 0
	}
	return float64(hi - lo)
}
