package strategy

import (
	"github.com/hybridmig/hybridmig/internal/core"
	"github.com/hybridmig/hybridmig/internal/fabric"
	"github.com/hybridmig/hybridmig/internal/guest"
	"github.com/hybridmig/hybridmig/internal/hv"
	"github.com/hybridmig/hybridmig/internal/lease"
	"github.com/hybridmig/hybridmig/internal/vm"
)

// sharedDescription is the Table 1 summary line of the pvfs-shared baseline.
const sharedDescription = "Does not apply (All writes go to PVFS)"

// leaseGuard adapts the attachment manager to the shared image's WriteGuard:
// every write to the volume is authorized against the current lease state.
type leaseGuard struct {
	m   *lease.Manager
	vol string
}

func (g leaseGuard) AuthorizeWrite(node int) bool { return g.m.AuthorizeWrite(g.vol, node) }

// provisionShared builds the pvfs-shared baseline instance. The snapshot
// file is created at provision time (before the guest stack is assembled),
// matching the original launch order. The volume is registered with the
// attachment manager in degenerate single-lease mode: one exclusive
// attach+write lease that moves atomically at switchover.
func provisionShared(env Env, vmName string, node *fabric.Node) Instance {
	snap := env.PFS.Create(vmName+".qcow2", env.Geo.ImageSize)
	s := &shared{
		env: env,
		vol: vmName,
		img: hv.NewSharedImage(env.Cl, node, env.Geo, env.BasePFS, snap),
	}
	if env.Leases != nil {
		att, err := env.Leases.Acquire(vmName, node.ID)
		if err != nil {
			// Provision happens before any fault window opens; an acquire
			// failure here is a programmer error, not a scenario outcome.
			panic("strategy: pvfs-shared provision could not acquire lease: " + err.Error())
		}
		s.att = att
		s.img.Guard = leaseGuard{m: env.Leases, vol: vmName}
	}
	return s
}

// shared is the pvfs-shared baseline (Section 5.2.3): base image and COW
// snapshot both live on the parallel file system, so migration moves memory
// only — and every guest I/O crosses the network. The volume is held under a
// single exclusive lease; migration monitors it for the span of the attempt
// and hands it over at switchover.
type shared struct {
	env Env
	vol string
	img *hv.SharedImage

	att    *lease.Attachment // exclusive volume lease (nil without a manager)
	fenced bool              // current attempt died to a fencing decision
	moved  bool              // lease handed to the destination (past the point of no return)
	abortH *hv.Abort         // current attempt's abort handle (fence wiring)
}

var _ Instance = (*shared)(nil)

// MakeImage implements Instance: the image lives on the PFS; the local
// backing store is unused.
func (s *shared) MakeImage(vm.DiskImage) vm.DiskImage { return s.img }

// HostCache implements Instance: shared-storage migration mandates
// cache=none.
func (s *shared) HostCache() bool          { return false }
func (s *shared) AttachGuest(*guest.Guest) {}

// Migrate moves memory only; the shared data never moves. The attempt runs
// inside a lease-monitoring window: if the reconciler fences the source's
// lease mid-attempt (the holder became unreachable past TTL+grace), the
// attempt aborts as a fencing outcome. All lease operations are pure state
// on the simulation clock, so fault-free runs are bit-identical to the
// pre-lease baseline.
func (s *shared) Migrate(m *Migration) Outcome {
	lm := s.env.Leases
	s.fenced, s.moved = false, false
	s.abortH = m.Abort
	if lm != nil {
		if s.att == nil || s.att.Fenced {
			// A previous attempt was fenced; re-acquire once the source is
			// reachable again. While it is not, the attempt dies on the spot
			// — fenced, zero bytes moved.
			att, err := lm.Acquire(s.vol, m.Src.ID)
			if err != nil {
				return Outcome{Aborted: true, Fenced: true}
			}
			s.att = att
		}
		lm.BeginWindow(s.vol, s.onFence, nil)
		defer lm.EndWindow(s.vol)
	}
	res := hv.MigrateAbortable(m.P, s.env.Cl, m.VM, m.Dst, s.env.HV, nil, nil, s.env.Bus, m.Abort)
	if res.Aborted {
		return Outcome{HV: res, Aborted: true, Fenced: s.fenced}
	}
	if lm != nil {
		lm.MoveAttachment(s.att, m.Dst.ID)
		s.moved = true
	}
	s.img.MoveTo(m.Dst)
	return Outcome{HV: res, MigrationTime: res.ControlTransfer - m.Start}
}

// onFence aborts the in-flight attempt when the reconciler fences the
// volume's lease: without a valid lease the migration must not complete.
func (s *shared) onFence(*lease.Attachment) {
	s.fenced = true
	if s.abortH != nil {
		s.abortH.Trigger()
	}
}

// Abort implements Instance, lease-aware: the attempt is abortable while the
// volume lease is still held at the source; once the handover moved it to
// the destination the migration is past its point of no return and the
// fault is vetoed.
func (s *shared) Abort(reason string) bool { return !s.moved }

func (s *shared) Stats() core.Stats { return core.Stats{} }
