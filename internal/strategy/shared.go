package strategy

import (
	"github.com/hybridmig/hybridmig/internal/core"
	"github.com/hybridmig/hybridmig/internal/fabric"
	"github.com/hybridmig/hybridmig/internal/guest"
	"github.com/hybridmig/hybridmig/internal/hv"
	"github.com/hybridmig/hybridmig/internal/vm"
)

// sharedDescription is the Table 1 summary line of the pvfs-shared baseline.
const sharedDescription = "Does not apply (All writes go to PVFS)"

// provisionShared builds the pvfs-shared baseline instance. The snapshot
// file is created at provision time (before the guest stack is assembled),
// matching the original launch order.
func provisionShared(env Env, vmName string, node *fabric.Node) Instance {
	snap := env.PFS.Create(vmName+".qcow2", env.Geo.ImageSize)
	return &shared{
		env: env,
		img: hv.NewSharedImage(env.Cl, node, env.Geo, env.BasePFS, snap),
	}
}

// shared is the pvfs-shared baseline (Section 5.2.3): base image and COW
// snapshot both live on the parallel file system, so migration moves memory
// only — and every guest I/O crosses the network.
type shared struct {
	env Env
	img *hv.SharedImage
}

var _ Instance = (*shared)(nil)

// MakeImage implements Instance: the image lives on the PFS; the local
// backing store is unused.
func (s *shared) MakeImage(vm.DiskImage) vm.DiskImage { return s.img }

// HostCache implements Instance: shared-storage migration mandates
// cache=none.
func (s *shared) HostCache() bool           { return false }
func (s *shared) AttachGuest(*guest.Guest) {}

// Migrate moves memory only; the shared data never moves.
func (s *shared) Migrate(m *Migration) Outcome {
	res := hv.MigrateAbortable(m.P, s.env.Cl, m.VM, m.Dst, s.env.HV, nil, nil, s.env.Bus, m.Abort)
	if res.Aborted {
		return Outcome{HV: res, Aborted: true}
	}
	s.img.MoveTo(m.Dst)
	return Outcome{HV: res, MigrationTime: res.ControlTransfer - m.Start}
}

// Abort implements Instance: the PFS is always coherent, so there is never
// storage state to veto on — the fault proceeds to the hypervisor abort.
func (s *shared) Abort(reason string) bool { return true }

func (s *shared) Stats() core.Stats { return core.Stats{} }
