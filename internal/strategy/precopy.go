package strategy

import (
	"github.com/hybridmig/hybridmig/internal/core"
	"github.com/hybridmig/hybridmig/internal/fabric"
	"github.com/hybridmig/hybridmig/internal/guest"
	"github.com/hybridmig/hybridmig/internal/hv"
	"github.com/hybridmig/hybridmig/internal/vm"
)

// precopyDescription is the Table 1 summary line of the precopy baseline.
const precopyDescription = "Push to dest before transfer of control"

// provisionPrecopy builds the precopy baseline instance.
func provisionPrecopy(env Env, vmName string, node *fabric.Node) Instance {
	return &precopy{env: env, node: node}
}

// precopy is the QEMU-style incremental block migration baseline (Section
// 5.2.2 case 1): a qcow2 COW snapshot on local disk over a PFS base image,
// dragged through the hypervisor's iterative rounds as a BlockMigrator.
type precopy struct {
	env  Env
	node *fabric.Node
	img  *hv.COWImage
	gst  *guest.Guest
}

var _ Instance = (*precopy)(nil)

func (s *precopy) MakeImage(backing vm.DiskImage) vm.DiskImage {
	s.img = hv.NewCOWImage(s.env.Cl, s.node, s.env.Geo, s.env.BasePFS, backing)
	return s.img
}

func (s *precopy) HostCache() bool            { return true }
func (s *precopy) AttachGuest(g *guest.Guest) { s.gst = g }

// Migrate runs memory and block migration together; migration time is the
// control transfer (by then every allocated block has been re-created at the
// destination).
func (s *precopy) Migrate(m *Migration) Outcome {
	res := hv.MigrateAbortable(m.P, s.env.Cl, m.VM, m.Dst, s.env.HV, s.img, nil, s.env.Bus, m.Abort)
	if res.Aborted {
		return Outcome{HV: res, Aborted: true}
	}
	s.img.MoveTo(m.Dst)
	s.gst.Cache.Invalidate()
	s.img.ForEachLocalRange(s.gst.Cache.MarkCachedRange)
	return Outcome{HV: res, MigrationTime: res.ControlTransfer - m.Start}
}

// Abort implements Instance: block migration has no storage point of no
// return before control transfer — the snapshot never leaves the source —
// so the fault always proceeds to the hypervisor abort.
func (s *precopy) Abort(reason string) bool { return true }

func (s *precopy) Stats() core.Stats { return core.Stats{} }
