package strategy

import (
	"github.com/hybridmig/hybridmig/internal/core"
	"github.com/hybridmig/hybridmig/internal/fabric"
	"github.com/hybridmig/hybridmig/internal/guest"
	"github.com/hybridmig/hybridmig/internal/hv"
	"github.com/hybridmig/hybridmig/internal/sim"
	"github.com/hybridmig/hybridmig/internal/vm"
)

// The Table 1 summary lines of the manager-backed approaches.
const (
	hybridDescription   = "As presented in Section 4.3 (hybrid push/prioritized prefetch)"
	mirrorDescription   = "Sync writes both at src and dest"
	postcopyDescription = "Pull from src after transfer of control"
)

func init() {
	// The five Table 1 strategies register here, in the paper's presentation
	// order, so Names() leads with them deterministically.
	Register(Definition{
		Name:        "our-approach",
		Description: hybridDescription,
		Provision:   provisionManaged(core.ModeHybrid),
	})
	Register(Definition{
		Name:        "mirror",
		Description: mirrorDescription,
		Provision:   provisionManaged(core.ModeMirror),
	})
	Register(Definition{
		Name:        "postcopy",
		Description: postcopyDescription,
		Provision:   provisionManaged(core.ModePostcopy),
	})
	Register(Definition{
		Name:        "precopy",
		Description: precopyDescription,
		Traits:      Traits{SharedStorage: true}, // COW snapshot over the PFS base
		Provision:   provisionPrecopy,
	})
	Register(Definition{
		Name:        "pvfs-shared",
		Description: sharedDescription,
		Traits:      Traits{SharedStorage: true}, // image lives on the PFS
		Provision:   provisionShared,
	})
}

// provisionManaged builds the Provision hook for one manager mode.
func provisionManaged(mode core.Mode) func(Env, string, *fabric.Node) Instance {
	return func(env Env, vmName string, node *fabric.Node) Instance {
		return NewManaged(env, mode, vmName, node)
	}
}

// Managed is the strategy family built on the migration manager (package
// core): the paper's hybrid scheme plus the mirror and postcopy baselines,
// selected by mode. It is exported so strategies layering a control loop on
// the managed base (e.g. the adaptive-threshold hybrid) can reuse the whole
// lifecycle through the public registration path.
type Managed struct {
	env  Env
	mode core.Mode
	name string
	node *fabric.Node
	img  *core.Image
	gst  *guest.Guest

	// OnMigrationStart, when set, runs right after the storage manager
	// accepts the MIGRATION REQUEST of an attempt — the hook where derived
	// strategies start per-attempt control loops (threshold adaptation).
	OnMigrationStart func(img *core.Image, m *Migration)
}

var _ Instance = (*Managed)(nil)

// NewManaged returns a manager-backed instance for the given mode.
func NewManaged(env Env, mode core.Mode, vmName string, node *fabric.Node) *Managed {
	return &Managed{env: env, mode: mode, name: vmName, node: node}
}

// Image returns the underlying migration-manager image (nil before the
// guest stack is assembled).
func (s *Managed) Image() *core.Image { return s.img }

// MakeImage implements Instance: the manager view over the guest's cache.
func (s *Managed) MakeImage(backing vm.DiskImage) vm.DiskImage {
	s.img = core.NewImage(s.env.Eng, s.env.Cl, s.node, s.env.Geo, s.env.Base,
		backing, s.env.ManagerOptions(s.mode), s.name)
	return s.img
}

// HostCache implements Instance: manager-backed guests run host-cached.
func (s *Managed) HostCache() bool { return true }

// AttachGuest implements Instance: chunks installed at the destination
// transit its host RAM and are therefore cache-warm there.
func (s *Managed) AttachGuest(g *guest.Guest) {
	s.gst = g
	s.img.OnDestInstall = g.Cache.MarkCachedRange
}

// Migrate implements Instance: MIGRATION REQUEST, hypervisor memory
// migration (mirror gates stop-and-copy on full synchronization), then the
// wait for the manager to release the source.
func (s *Managed) Migrate(m *Migration) Outcome {
	s.img.MigrationRequest(m.Dst)
	if s.OnMigrationStart != nil {
		s.OnMigrationStart(s.img, m)
	}
	var stopGate *sim.Gate
	if s.mode == core.ModeMirror {
		stopGate = s.img.BulkDoneGate()
	}
	res := hv.MigrateAbortable(m.P, s.env.Cl, m.VM, m.Dst, s.env.HV, nil, stopGate, s.env.Bus, m.Abort)
	if res.Aborted {
		// Fault before control transfer: the VM never left the source and
		// the manager (aborted by the same fault) already rolled its
		// storage state back.
		return Outcome{HV: res, Aborted: true, StorageWasted: s.img.Stats().WireBytes()}
	}
	// The destination host cache starts cold except for the content the
	// migration itself moved through its RAM.
	s.gst.Cache.Invalidate()
	s.img.ForEachLocalRange(s.gst.Cache.MarkCachedRange)
	s.img.WaitComplete(m.P)
	if !s.img.Complete() {
		// Fault during the pull phase: the destination crashed after going
		// live. Storage control fell back to the intact source replica; the
		// VM restarts there from its source-side state.
		m.VM.MoveTo(m.Src)
		s.gst.Cache.Invalidate()
		s.img.ForEachLocalRange(s.gst.Cache.MarkCachedRange)
		return Outcome{HV: res, Aborted: true, StorageWasted: s.img.Stats().WireBytes()}
	}
	st := s.img.Stats()
	out := Outcome{HV: res}
	if s.mode == core.ModeMirror {
		out.MigrationTime = res.ControlTransfer - m.Start
	} else {
		// Until every resource is available at the destination: the later
		// of source release (storage) and control transfer (memory), per
		// the Section 2 definition.
		end := st.ReleasedAt
		if res.ControlTransfer > end {
			end = res.ControlTransfer
		}
		out.MigrationTime = end - m.Start
	}
	return out
}

// Abort implements Instance: the manager decides abortability (a storage
// migration that already fully completed is past the point of no return).
func (s *Managed) Abort(reason string) bool { return s.img.Abort(reason) }

// Stats implements Instance.
func (s *Managed) Stats() core.Stats { return s.img.Stats() }
