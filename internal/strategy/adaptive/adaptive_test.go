package adaptive

import (
	"testing"

	"github.com/hybridmig/hybridmig/internal/strategy"
)

// TestRegistered checks the package's only integration point: init must have
// placed the strategy in the public registry with a description.
func TestRegistered(t *testing.T) {
	d, ok := strategy.Lookup(Name)
	if !ok {
		t.Fatalf("strategy %q not registered", Name)
	}
	if d.Description == "" || d.Provision == nil {
		t.Fatal("adaptive registered incompletely")
	}
}

// TestEstimateThreshold exercises the quantile estimator on hand-built
// write-heat distributions.
func TestEstimateThreshold(t *testing.T) {
	cases := []struct {
		name    string
		counts  []uint32
		hotFrac float64
		want    uint32
		ok      bool
	}{
		{
			// Nothing written yet: keep the current threshold.
			name: "empty", counts: make([]uint32, 64), hotFrac: 0.1, ok: false,
		},
		{
			// 90 cold chunks written once, 10 hot chunks written 20 times:
			// the 10% budget admits exactly the hot tail, so the cutoff
			// lands right above the cold mass.
			name: "bimodal", counts: heat(90, 1, 10, 20), hotFrac: 0.1, want: 2, ok: true,
		},
		{
			// Same distribution with a 5% budget: the 20-count tail (10% of
			// written chunks) no longer fits, so the cutoff moves above it.
			name: "tight budget", counts: heat(90, 1, 10, 20), hotFrac: 0.05, want: 21, ok: true,
		},
		{
			// Flat heat: no chunk is hotter than the rest, the cutoff lands
			// above every observed count and everything keeps streaming.
			name: "flat", counts: heat(100, 5, 0, 0), hotFrac: 0.1, want: 6, ok: true,
		},
		{
			// Counts past the cap collapse into one bucket.
			name: "capped", counts: heat(90, 1, 10, MaxThreshold+100), hotFrac: 0.1, want: 2, ok: true,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, ok := EstimateThreshold(tc.counts, tc.hotFrac)
			if ok != tc.ok || (ok && got != tc.want) {
				t.Fatalf("EstimateThreshold = %d, %v; want %d, %v", got, ok, tc.want, tc.ok)
			}
		})
	}
}

// TestEstimateKeepsHotShareWithinBudget property-checks the estimator's
// contract on a family of synthetic distributions: the chunks at or above
// the returned cutoff never exceed the budget, and the cutoff is minimal.
func TestEstimateKeepsHotShareWithinBudget(t *testing.T) {
	for _, dist := range [][]uint32{
		heat(50, 1, 50, 2),
		heat(10, 3, 90, 4),
		heat(500, 1, 3, 40),
		heat(1, 7, 0, 0),
	} {
		cut, ok := EstimateThreshold(dist, HotFraction)
		if !ok {
			t.Fatal("estimator gave up on a written distribution")
		}
		hotAt := func(c uint32) int {
			n := 0
			for _, v := range dist {
				if v >= c {
					n++
				}
			}
			return n
		}
		written := hotAt(1)
		budget := int(HotFraction * float64(written))
		if got := hotAt(cut); got > budget {
			t.Errorf("cutoff %d leaves %d hot chunks, budget %d", cut, got, budget)
		}
		if cut > 1 && hotAt(cut-1) <= budget {
			t.Errorf("cutoff %d is not minimal: %d would already fit", cut, cut-1)
		}
	}
}

// heat builds a write-count slice: na chunks written a times followed by nb
// chunks written b times (plus some never-written padding).
func heat(na int, a uint32, nb int, b uint32) []uint32 {
	out := make([]uint32, 0, na+nb+16)
	for i := 0; i < na; i++ {
		out = append(out, a)
	}
	for i := 0; i < nb; i++ {
		out = append(out, b)
	}
	return append(out, make([]uint32, 16)...)
}
