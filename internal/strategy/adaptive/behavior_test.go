package adaptive_test

import (
	"testing"

	"github.com/hybridmig/hybridmig/internal/cluster"
	"github.com/hybridmig/hybridmig/internal/params"
	"github.com/hybridmig/hybridmig/internal/sim"
	"github.com/hybridmig/hybridmig/internal/strategy"
	"github.com/hybridmig/hybridmig/internal/strategy/adaptive"
)

// TestControllerRetunesThresholdDuringPush drives an adaptive-strategy VM
// with a skewed write-heat workload (a wide cold write plus a small region
// rewritten continuously) through a live migration and checks that the
// controller actually moved the Algorithm 1 cutoff away from the static
// default while the push phase ran, and that the migration still completed.
// The instance is reached through the middleware exactly as any registered
// strategy is — nothing here is adaptive-specific except the assertions.
func TestControllerRetunesThresholdDuringPush(t *testing.T) {
	cfg := cluster.SmallConfig(4)
	tb := cluster.New(cfg)
	inst := tb.Launch("vm0", 0, cluster.Approach(adaptive.Name))

	managed, ok := inst.Strategy.(*strategy.Managed)
	if !ok {
		t.Fatalf("adaptive instance is %T, want *strategy.Managed", inst.Strategy)
	}

	tb.Eng.Go("workload", func(p *sim.Proc) {
		f := inst.Guest.FS.Create("data", 96*params.MB)
		inst.Guest.FS.Write(p, f, 0, 64*params.MB) // wide cold prefix
		for i := 0; i < 200; i++ {
			inst.Guest.FS.Write(p, f, 64*params.MB, 1*params.MB) // hot region
			p.Sleep(0.05)
		}
	})
	var thrBefore, thrAfter uint32
	tb.Eng.Go("middleware", func(p *sim.Proc) {
		p.Sleep(2)
		thrBefore = managed.Image().Threshold()
		tb.MigrateInstance(p, inst, 1)
		thrAfter = managed.Image().Threshold()
	})
	if err := tb.Eng.RunUntil(1e5); err != nil {
		t.Fatal(err)
	}
	tb.Eng.Shutdown()

	if !inst.Migrated {
		t.Fatal("adaptive migration never completed")
	}
	if thrBefore != cfg.Manager.Threshold {
		t.Fatalf("pre-migration threshold = %d, want the configured %d", thrBefore, cfg.Manager.Threshold)
	}
	if thrAfter == thrBefore {
		t.Fatalf("controller never moved the threshold off %d under a skewed write-heat workload", thrBefore)
	}
}

// TestStaleControllerDiesAcrossFastRetry pins the per-attempt contract of
// the resampling controller: when an abort lands while the controller is
// asleep and a retry re-enters the push phase before its next wake (retry
// backoff shorter than ResampleInterval), the stale controller must stand
// down at that wake instead of running alongside the retry's own controller.
// The timeline is built so the only process transition between the two
// probes is that one wake: abort at 2.6 (mid-sleep: controller wakes on the
// 0.25 s grid from the 2.0 s request), retry at 2.65, probes at 2.70 and
// 2.80 bracketing the stale wake at 2.75.
func TestStaleControllerDiesAcrossFastRetry(t *testing.T) {
	tb := cluster.New(cluster.SmallConfig(4))
	inst := tb.Launch("vm0", 0, cluster.Approach(adaptive.Name))

	tb.Eng.Go("workload", func(p *sim.Proc) {
		f := inst.Guest.FS.Create("data", 96*params.MB)
		inst.Guest.FS.Write(p, f, 0, 64*params.MB)
		for i := 0; i < 200; i++ {
			inst.Guest.FS.Write(p, f, 64*params.MB, 1*params.MB)
			p.Sleep(0.05)
		}
	})
	var firstErr, retryErr error
	tb.Eng.Go("middleware", func(p *sim.Proc) {
		p.Sleep(2)
		firstErr = tb.MigrateInstance(p, inst, 1)
		if firstErr != nil {
			p.Sleep(0.05) // fast retry: well inside ResampleInterval
			retryErr = tb.MigrateInstance(p, inst, 1)
		}
	})
	tb.Eng.At(2.6, func() {
		if !tb.AbortMigration(inst, "dest-crash") {
			t.Error("abort found nothing in flight")
		}
	})
	var beforeWake, afterWake int
	tb.Eng.At(2.70, func() { beforeWake = tb.Eng.LiveProcs() })
	tb.Eng.At(2.80, func() { afterWake = tb.Eng.LiveProcs() })
	if err := tb.Eng.RunUntil(1e5); err != nil {
		t.Fatal(err)
	}
	tb.Eng.Shutdown()

	if firstErr == nil {
		t.Fatal("first attempt survived the injected crash")
	}
	if retryErr != nil {
		t.Fatalf("retry failed: %v", retryErr)
	}
	if !inst.Migrated {
		t.Fatal("retry never completed")
	}
	if afterWake != beforeWake-1 {
		t.Fatalf("live processes %d -> %d across the stale controller's wake, want exactly one exit",
			beforeWake, afterWake)
	}
}
