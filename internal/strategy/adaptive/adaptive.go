// Package adaptive ships the sixth registered storage-transfer strategy: the
// paper's hybrid push/prioritized-prefetch scheme with the Algorithm 1
// write-count threshold re-estimated online instead of fixed up front.
//
// The paper leaves the threshold value unstated, and the best static choice
// depends on the workload's write-heat distribution: too low and warm chunks
// are deferred to the (per-request, higher-latency) pull phase; too high and
// hot chunks are pushed repeatedly, wasting wire bytes on data that will be
// overwritten again (the Section 4.1 pathology). Following the
// workload-adaptation direction of Baruchi et al. ("Exploiting Workload
// Cycles"), this strategy periodically resamples the per-chunk write counts
// the manager already tracks and moves the cutoff to the observed heat
// distribution: the hottest HotFraction of written chunks wait for the
// prioritized pull, everything cooler keeps streaming.
//
// The controller runs purely on the simulation clock (no wall-clock input),
// so adaptive runs are as deterministic as every other strategy. It is
// registered exclusively through the public strategy registry — no cluster
// or scenario code knows it exists — and the registry-driven conformance
// suite picks it up automatically.
package adaptive

import (
	"github.com/hybridmig/hybridmig/internal/core"
	"github.com/hybridmig/hybridmig/internal/fabric"
	"github.com/hybridmig/hybridmig/internal/sim"
	"github.com/hybridmig/hybridmig/internal/strategy"
)

// Name is the registry key of the adaptive-threshold hybrid.
const Name = "adaptive"

// Controller constants.
const (
	// ResampleInterval is the simulated-time period between threshold
	// re-estimations during a push phase.
	ResampleInterval = 0.25
	// HotFraction is the targeted share of written chunks left to the
	// prioritized pull phase: the estimator picks the smallest cutoff that
	// keeps the at-or-above-threshold set within this fraction.
	HotFraction = 0.10
	// MaxThreshold caps the estimate; write counts above it are treated as
	// one bucket (a chunk written that often is hot under any policy).
	MaxThreshold = 64
)

func init() {
	strategy.Register(strategy.Definition{
		Name:        Name,
		Description: "Hybrid with the Algorithm 1 threshold re-estimated online from the observed write-heat distribution",
		Provision: func(env strategy.Env, vmName string, node *fabric.Node) strategy.Instance {
			s := strategy.NewManaged(env, core.ModeHybrid, vmName, node)
			s.OnMigrationStart = func(img *core.Image, _ *strategy.Migration) {
				startController(env.Eng, vmName, img)
			}
			return s
		},
	})
}

// startController spawns the per-attempt resampling loop: every
// ResampleInterval it snapshots the push phase's write-heat distribution and
// retunes the manager's threshold, standing down as soon as the push phase
// ends (control transfer or abort). The captured migration epoch keeps the
// loop strictly per-attempt: a controller asleep across an abort must not
// survive into a fast retry's push phase — that attempt spawns its own —
// so it bails as soon as the epoch moves, exactly like the manager's own
// push and pull tasks.
func startController(eng *sim.Engine, vmName string, img *core.Image) {
	epoch := img.MigrationEpoch()
	eng.Go(vmName+"/adapt", func(p *sim.Proc) {
		// One histogram per controller, zeroed and refilled each tick, so
		// resampling allocates nothing however large the image is.
		var h histogram
		for {
			p.Sleep(ResampleInterval)
			if img.MigrationEpoch() != epoch {
				return
			}
			h = histogram{}
			if !img.PushHeat(h.add) {
				return
			}
			if t, ok := h.estimate(HotFraction); ok {
				img.SetThreshold(t)
			}
		}
	})
}

// histogram buckets positive write counts, capping at MaxThreshold.
type histogram struct {
	buckets [MaxThreshold + 1]int
	written int
}

// add folds one chunk's write count in (the core.Image.PushHeat callback).
func (h *histogram) add(c uint32) {
	if c == 0 {
		return
	}
	h.written++
	if c > MaxThreshold {
		c = MaxThreshold
	}
	h.buckets[c]++
}

// estimate picks the smallest write-count cutoff T such that the chunks
// written at least T times make up at most hotFrac of all written chunks —
// i.e. the (1-hotFrac) quantile of the positive write-heat distribution,
// shifted up by one so the quantile itself stays pushable. It reports false
// when nothing has been written yet (keep the current threshold). A
// distribution too flat to isolate a hot tail yields a cutoff above every
// observed count: with no chunk hotter than the rest, deferring any of them
// to the pull phase buys nothing.
func (h *histogram) estimate(hotFrac float64) (uint32, bool) {
	if h.written == 0 {
		return 0, false
	}
	budget := int(hotFrac * float64(h.written))
	hot := 0
	for t := MaxThreshold; t >= 1; t-- {
		hot += h.buckets[t]
		if hot > budget {
			return uint32(t) + 1, true
		}
	}
	// Unreachable: at t == 1, hot == written > budget for any hotFrac < 1.
	return 1, true
}

// EstimateThreshold runs the estimator over a write-count slice (the
// controller itself folds through core.Image.PushHeat without the slice).
func EstimateThreshold(counts []uint32, hotFrac float64) (uint32, bool) {
	var h histogram
	for _, c := range counts {
		h.add(c)
	}
	return h.estimate(hotFrac)
}
