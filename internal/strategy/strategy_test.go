package strategy

import (
	"strings"
	"testing"

	"github.com/hybridmig/hybridmig/internal/fabric"
)

// TestBuiltinsRegistered pins the five Table 1 strategies: present, in the
// paper's presentation order, each with a description and a Provision hook.
func TestBuiltinsRegistered(t *testing.T) {
	want := []string{"our-approach", "mirror", "postcopy", "precopy", "pvfs-shared"}
	names := Names()
	if len(names) < len(want) {
		t.Fatalf("registry has %d strategies, want at least the %d built-ins", len(names), len(want))
	}
	for i, w := range want {
		if names[i] != w {
			t.Fatalf("Names()[%d] = %q, want %q (Table 1 order)", i, names[i], w)
		}
		d, ok := Lookup(w)
		if !ok {
			t.Fatalf("Lookup(%q) missed", w)
		}
		if d.Provision == nil || d.Description == "" {
			t.Errorf("%q registered incompletely", w)
		}
		desc, ok := Describe(w)
		if !ok || desc != d.Description {
			t.Errorf("Describe(%q) = %q, %v", w, desc, ok)
		}
	}
}

// TestLookupUnknown checks the miss path and that Registered() names every
// strategy for error messages.
func TestLookupUnknown(t *testing.T) {
	if _, ok := Lookup("warp-drive"); ok {
		t.Fatal("Lookup invented a strategy")
	}
	if _, ok := Describe("warp-drive"); ok {
		t.Fatal("Describe invented a strategy")
	}
	reg := Registered()
	for _, n := range Names() {
		if !strings.Contains(reg, n) {
			t.Errorf("Registered() %q omits %q", reg, n)
		}
	}
}

// TestRegisterRejectsBadDefinitions pins the programmer-error panics:
// duplicates, empty names, and missing Provision hooks must fail loudly at
// init time rather than shadow an existing strategy.
func TestRegisterRejectsBadDefinitions(t *testing.T) {
	mustPanic := func(name string, d Definition) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: Register did not panic", name)
			}
		}()
		Register(d)
	}
	prov := func(Env, string, *fabric.Node) Instance { return nil }
	mustPanic("duplicate", Definition{Name: "our-approach", Description: "x", Provision: prov})
	mustPanic("empty name", Definition{Description: "x", Provision: prov})
	mustPanic("no provision", Definition{Name: "unprovisioned", Description: "x"})
}

// TestNamesIsACopy guards the registry against aliasing: mutating the
// returned slice must not corrupt registration order.
func TestNamesIsACopy(t *testing.T) {
	a := Names()
	a[0] = "scribbled"
	if Names()[0] != "our-approach" {
		t.Fatal("Names() exposed the registry's backing array")
	}
}
