package strategy

import (
	"github.com/hybridmig/hybridmig/internal/core"
	"github.com/hybridmig/hybridmig/internal/fabric"
	"github.com/hybridmig/hybridmig/internal/guest"
	"github.com/hybridmig/hybridmig/internal/hv"
	"github.com/hybridmig/hybridmig/internal/lease"
	"github.com/hybridmig/hybridmig/internal/sim"
	"github.com/hybridmig/hybridmig/internal/vm"
)

// multiattachDescription summarizes the RWX multi-attach strategy.
const multiattachDescription = "Shared volume dual-attached during switchover under lease fencing (RWX)"

// recoveryWriteBytes is the journal-recovery burst a failover writer replays
// when fencing is disabled and the manager activates the destination while
// the source may still be writing (the split-brain demonstrator).
const recoveryWriteBytes = 4 << 20

func init() {
	Register(Definition{
		Name:        "multiattach",
		Description: multiattachDescription,
		Traits:      Traits{SharedStorage: true},
		Provision:   provisionMultiattach,
	})
}

// provisionMultiattach builds the multi-attach instance: a shared PFS volume
// held under the attachment manager, write-guarded from the first byte.
func provisionMultiattach(env Env, vmName string, node *fabric.Node) Instance {
	snap := env.PFS.Create(vmName+".qcow2", env.Geo.ImageSize)
	s := &multiattach{
		env: env,
		vol: vmName,
		img: hv.NewSharedImage(env.Cl, node, env.Geo, env.BasePFS, snap),
	}
	if env.Leases != nil {
		att, err := env.Leases.Acquire(vmName, node.ID)
		if err != nil {
			panic("strategy: multiattach provision could not acquire lease: " + err.Error())
		}
		s.src = att
		s.img.Guard = leaseGuard{m: env.Leases, vol: vmName}
	}
	return s
}

// multiattach models shared-storage live migration over an RWX multi-attach
// volume (the KubeVirt block-volume migration shape): the destination
// acquires a second lease on the volume before the memory migration starts,
// source and destination are *both* attached for the span of the switchover,
// write authority transfers to the destination at control transfer, and the
// source lease is released afterwards. The window is safe only because the
// attachment manager monitors it: a holder partitioned past TTL+grace is
// fenced by the reconciler (the straggler detach), which aborts the attempt
// as a first-class Fenced outcome instead of risking two writers.
type multiattach struct {
	env Env
	vol string
	img *hv.SharedImage

	src *lease.Attachment // lease at the VM's current home
	dst *lease.Attachment // second lease during the dual-attach window

	fenced      bool // current attempt died to a fencing decision
	transferred bool // authority moved to the destination (point of no return)
	abortH      *hv.Abort
}

var _ Instance = (*multiattach)(nil)

// MakeImage implements Instance: the image lives on the PFS.
func (s *multiattach) MakeImage(vm.DiskImage) vm.DiskImage { return s.img }

// HostCache implements Instance: shared-storage migration mandates
// cache=none.
func (s *multiattach) HostCache() bool          { return false }
func (s *multiattach) AttachGuest(*guest.Guest) {}

// Migrate runs one attempt through the dual-attachment protocol:
//
//	acquire dest lease → both attached → memory migration → transfer write
//	authority → release source lease.
//
// A fencing decision against either side of the open window (or a refused
// destination lease) aborts the attempt as a Fenced outcome with the VM
// still live at the source.
func (s *multiattach) Migrate(m *Migration) Outcome {
	lm := s.env.Leases
	s.fenced, s.transferred = false, false
	s.abortH = m.Abort
	if lm != nil {
		// A previous attempt may have been fenced at the source; the retry
		// re-acquires once the source is reachable again.
		if s.src == nil || s.src.Fenced {
			att, err := lm.Acquire(s.vol, m.Src.ID)
			if err != nil {
				return Outcome{Aborted: true, Fenced: true}
			}
			s.src = att
		}
		// Lease negotiation with the attachment manager is a control round
		// trip; an unreachable destination refuses the dual-attach, which is
		// equivalent to being fenced before the window opens.
		s.env.Cl.ControlRTT(m.P)
		datt, err := lm.Acquire(s.vol, m.Dst.ID)
		if err != nil {
			return Outcome{Aborted: true, Fenced: true}
		}
		s.dst = datt
		lm.BeginWindow(s.vol, s.onFence, s.onFailover)
	}
	res := hv.MigrateAbortable(m.P, s.env.Cl, m.VM, m.Dst, s.env.HV, nil, nil, s.env.Bus, m.Abort)
	if res.Aborted {
		s.closeWindow(lm, false)
		return Outcome{HV: res, Aborted: true, Fenced: s.fenced}
	}
	if lm != nil {
		if !lm.TransferAuthority(s.dst) {
			// The destination lease died at the very instant of switchover;
			// treat it as a fence of the attempt. The hypervisor has already
			// resumed the guest at the destination, so move it back — the
			// source still holds the volume.
			s.fenced = true
			m.VM.MoveTo(m.Src)
			s.closeWindow(lm, false)
			return Outcome{HV: res, Aborted: true, Fenced: true}
		}
		s.transferred = true
	}
	s.img.MoveTo(m.Dst)
	s.closeWindow(lm, true)
	return Outcome{HV: res, MigrationTime: res.ControlTransfer - m.Start}
}

// closeWindow ends the monitoring window and resolves the dual attachment:
// on success the source lease is released and the destination becomes the
// new home lease; on an aborted attempt the destination lease is released
// (unless the reconciler already fenced it — the straggler detach).
func (s *multiattach) closeWindow(lm *lease.Manager, success bool) {
	if lm == nil {
		return
	}
	lm.EndWindow(s.vol)
	if success {
		lm.Release(s.src)
		s.src, s.dst = s.dst, nil
		return
	}
	if s.dst != nil && !s.dst.Fenced {
		lm.Release(s.dst)
	}
	s.dst = nil
}

// onFence aborts the in-flight attempt: the reconciler fenced one side of
// the dual-attach window, and completing the switchover without both leases
// valid risks split brain.
func (s *multiattach) onFence(*lease.Attachment) {
	s.fenced = true
	if s.abortH != nil {
		s.abortH.Trigger()
	}
}

// onFailover is the NoFencing path: the manager presumed the silent holder
// dead and handed write authority to the surviving attachment. The survivor
// "restarts" the VM from the shared disk — modeled as a journal-recovery
// write burst from its node while the presumed-dead holder may still be
// writing. The write-epoch detector turns the overlap into a hard error.
func (s *multiattach) onFailover(loser, winner *lease.Attachment) {
	node := s.env.Cl.Nodes[winner.Node]
	s.env.Eng.Go(s.vol+"/failover-recovery", func(p *sim.Proc) {
		s.img.WriteFrom(p, node, 0, recoveryWriteBytes)
	})
}

// Abort implements Instance, lease-aware: abortable until write authority
// has transferred to the destination; past that point the source lease is
// already doomed and the migration must complete.
func (s *multiattach) Abort(reason string) bool { return !s.transferred }

func (s *multiattach) Stats() core.Stats { return core.Stats{} }
