// Package strategy makes the paper's storage-transfer strategies first-class:
// each of the compared approaches (Table 1) is one registered Strategy with a
// uniform lifecycle, and the cloud middleware (package cluster) drives every
// migration through the interface instead of switching on approach names.
//
// Lifecycle of one strategy instance:
//
//  1. Provision (Definition.Provision): called once at VM launch, builds the
//     per-VM storage state. MakeImage wires the strategy's disk image into
//     the guest I/O stack; AttachGuest hands it the assembled guest for
//     cache-warming hooks.
//  2. Migrate: one full migration attempt — the storage-side MIGRATION
//     REQUEST (when the strategy has one), the hypervisor memory migration,
//     and the wait for completion per the approach's own Section 5.2
//     definition of migration time (control transfer for precopy, mirror and
//     pvfs-shared; the later of source release and control transfer for the
//     push/pull schemes).
//  3. Abort: the storage-side gate of a fault injection. It reports whether
//     the storage state can be torn down; wasted-byte accounting for the
//     attempt rides back on the Outcome.
//  4. Stats: the storage manager's transfer statistics (the zero value for
//     strategies without a manager).
//
// Strategies self-register by name in a process-wide registry; the scenario
// layer validates approaches against it, the middleware provisions from it,
// and the CLIs enumerate it, so adding a strategy requires zero edits to
// cluster or scenario code. The adaptive-threshold hybrid (package
// strategy/adaptive) ships exclusively through this registration path.
package strategy

import (
	"fmt"
	"sort"
	"strings"

	"github.com/hybridmig/hybridmig/internal/blob"
	"github.com/hybridmig/hybridmig/internal/chunk"
	"github.com/hybridmig/hybridmig/internal/core"
	"github.com/hybridmig/hybridmig/internal/fabric"
	"github.com/hybridmig/hybridmig/internal/guest"
	"github.com/hybridmig/hybridmig/internal/hv"
	"github.com/hybridmig/hybridmig/internal/lease"
	"github.com/hybridmig/hybridmig/internal/params"
	"github.com/hybridmig/hybridmig/internal/pfs"
	"github.com/hybridmig/hybridmig/internal/sim"
	"github.com/hybridmig/hybridmig/internal/trace"
	"github.com/hybridmig/hybridmig/internal/vm"
)

// Env is the testbed context a strategy provisions against: the simulation
// engine and fabric, the image geometry, the two base-image homes (striped
// repository and parallel FS), and the configuration knobs strategies read.
type Env struct {
	Eng     *sim.Engine
	Cl      *fabric.Cluster
	Geo     chunk.Geometry
	Base    *blob.Blob // base image in the striped repository
	BasePFS *pfs.File  // base image on the parallel file system
	PFS     *pfs.FS    // parallel file system (snapshot creation)
	Bus     *trace.Bus
	HV      params.Hypervisor
	Manager params.Manager
	// Leases is the testbed's shared-volume attachment manager; strategies
	// whose images live on shared storage route attach/detach and switchover
	// authority through it (nil only in stripped-down unit tests).
	Leases *lease.Manager
	// ManagerOverride, when non-nil, replaces the manager options derived
	// from Manager (the ablation hook; see cluster.Config).
	ManagerOverride *core.Options
}

// ManagerOptions derives the migration-manager options for a mode from the
// environment, honoring the ablation override.
func (e Env) ManagerOptions(mode core.Mode) core.Options {
	if e.ManagerOverride != nil {
		o := *e.ManagerOverride
		o.Mode = mode
		o.Trace = e.Bus
		return o
	}
	m := e.Manager
	return core.Options{
		Trace:              e.Bus,
		Mode:               mode,
		Threshold:          m.Threshold,
		PushBatch:          m.PushBatch,
		PullBatch:          m.PullBatch,
		PullPriority:       true,
		PullRequestLatency: m.PullRequestLatency,
		BasePrefetch:       m.BasePrefetch,
		BasePrefetchRate:   m.BasePrefetchRate,
		Preseeded:          m.Preseeded,
		DedupHashBytes:     1024,
	}
}

// Migration is the middleware-provided context of one migration attempt.
type Migration struct {
	P   *sim.Proc
	VM  *vm.VM
	Src *fabric.Node
	Dst *fabric.Node
	// Start is the virtual time the middleware accepted the request; every
	// approach's migration time is measured from it.
	Start sim.Time
	// Abort is the attempt's fault-injection handle, threaded into the
	// hypervisor transfer.
	Abort *hv.Abort
}

// Outcome is what one migration attempt produced.
type Outcome struct {
	HV hv.Result
	// MigrationTime is the attempt's duration per the strategy's own
	// Section 5.2 definition (meaningless when Aborted).
	MigrationTime float64
	// Aborted marks an attempt torn down by an injected fault; the VM is
	// live at (or back on) the source.
	Aborted bool
	// Fenced marks an aborted attempt whose abort was a fencing decision:
	// the attachment manager revoked a lease (or refused to grant one)
	// rather than risk two writers on a shared volume. Always implies
	// Aborted.
	Fenced bool
	// StorageWasted is the storage wire traffic an aborted attempt put on
	// the network (the hypervisor's own wasted bytes are in HV).
	StorageWasted float64
}

// Instance is the per-VM state of one strategy.
type Instance interface {
	// MakeImage builds the strategy's disk image over the guest's backing
	// store (the host-cached local file); called once during guest assembly.
	MakeImage(backing vm.DiskImage) vm.DiskImage
	// HostCache reports whether the guest may run its host page cache
	// (shared-storage migration mandates cache=none).
	HostCache() bool
	// AttachGuest hands the instance its assembled guest, after MakeImage.
	AttachGuest(g *guest.Guest)
	// Migrate runs one full migration attempt toward m.Dst and blocks until
	// it completes or aborts.
	Migrate(m *Migration) Outcome
	// Abort tears down the storage side of the in-flight attempt and
	// reports whether it was abortable; returning false vetoes the fault
	// (e.g. the storage migration is already past its point of no return).
	Abort(reason string) bool
	// Stats returns the storage manager's statistics for the current or
	// last attempt (the zero value for strategies without a manager).
	Stats() core.Stats
}

// Traits are static coupling properties of a strategy that the parallel
// scenario planner consults; they describe which shared substrates a
// strategy's instances touch, never how they behave.
type Traits struct {
	// SharedStorage marks strategies whose images live on (or are backed
	// by) the cluster-wide parallel file system at all times — precopy's
	// COW-over-PFS base and pvfs-shared. Every such VM couples to every
	// other through the PFS servers, so scenarios containing one cannot be
	// partitioned. Manager-backed strategies (zero value) touch only the
	// striped repository, and not even that when images are preseeded.
	SharedStorage bool
}

// Definition is one registered strategy.
type Definition struct {
	// Name keys the registry and is the approach string scenarios use.
	Name string
	// Description is the Table 1 summary line.
	Description string
	// Traits are the strategy's static coupling properties (the zero value
	// fits every manager-backed strategy).
	Traits Traits
	// Provision builds the per-VM instance at launch time. It runs before
	// the guest I/O stack is assembled and must not advance simulated time.
	Provision func(env Env, vmName string, node *fabric.Node) Instance
}

// registry is the process-wide strategy registry. Registration happens in
// package init functions (this package's five built-ins, then any importer
// such as strategy/adaptive), so the order is deterministic for a given
// binary and never mutates after init.
var registry struct {
	names  []string
	byName map[string]Definition
}

// Register adds a strategy to the registry. It panics on an empty name, a
// missing Provision, or a duplicate registration — all programmer errors.
func Register(d Definition) {
	if d.Name == "" {
		panic("strategy: Register with empty name")
	}
	if d.Provision == nil {
		panic(fmt.Sprintf("strategy: %q has no Provision", d.Name))
	}
	if registry.byName == nil {
		registry.byName = make(map[string]Definition)
	}
	if _, dup := registry.byName[d.Name]; dup {
		panic(fmt.Sprintf("strategy: %q registered twice", d.Name))
	}
	registry.byName[d.Name] = d
	registry.names = append(registry.names, d.Name)
}

// Lookup returns the definition registered under name.
func Lookup(name string) (Definition, bool) {
	d, ok := registry.byName[name]
	return d, ok
}

// Names lists every registered strategy in registration order: the five
// Table 1 approaches first, then any strategies linked in on top.
func Names() []string {
	out := make([]string, len(registry.names))
	copy(out, registry.names)
	return out
}

// Describe returns the registered description for name.
func Describe(name string) (string, bool) {
	d, ok := registry.byName[name]
	return d.Description, ok
}

// Registered formats the registry's names for error messages, sorted so the
// text is stable regardless of what extra strategies a binary links in.
func Registered() string {
	names := Names()
	sort.Strings(names)
	return strings.Join(names, ", ")
}
