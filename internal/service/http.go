package service

import (
	"encoding/json"
	"errors"
	"net/http"

	"github.com/hybridmig/hybridmig/internal/trace"
)

// Handler returns the daemon's HTTP API:
//
//	POST /v1/runs             submit a Spec -> 202 {id}, 400 invalid, 429 shed
//	GET  /v1/runs             list run snapshots
//	GET  /v1/runs/{id}        one run's snapshot
//	GET  /v1/runs/{id}/result typed JSON result (409 until terminal)
//	POST /v1/runs/{id}/cancel request cancellation
//	GET  /v1/runs/{id}/events NDJSON trace-event stream (replay + follow)
//	GET  /metrics             Prometheus text exposition
//	GET  /healthz, /readyz    liveness / readiness
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/runs", s.handleSubmit)
	mux.HandleFunc("GET /v1/runs", s.handleList)
	mux.HandleFunc("GET /v1/runs/{id}", s.handleStatus)
	mux.HandleFunc("GET /v1/runs/{id}/result", s.handleResult)
	mux.HandleFunc("POST /v1/runs/{id}/cancel", s.handleCancel)
	mux.HandleFunc("GET /v1/runs/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
		w.Write([]byte("ok\n"))
	})
	mux.HandleFunc("GET /readyz", s.handleReady)
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	enc.Encode(v)
}

type errorBody struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, errorBody{Error: err.Error()})
}

func (s *Server) handleSubmit(w http.ResponseWriter, req *http.Request) {
	sp, err := DecodeSpec(req.Body)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	r, err := s.Submit(sp)
	switch {
	case err == nil:
		writeJSON(w, http.StatusAccepted, r.snapshot())
	case errors.Is(err, ErrQueueFull):
		writeError(w, http.StatusTooManyRequests, err)
	case errors.Is(err, ErrShuttingDown):
		writeError(w, http.StatusServiceUnavailable, err)
	default: // ErrBadSpec or scenario.ErrInvalidScenario
		writeError(w, http.StatusBadRequest, err)
	}
}

func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		Runs []Snapshot `json:"runs"`
	}{Runs: s.List()})
}

func (s *Server) run(w http.ResponseWriter, req *http.Request) *Run {
	r, err := s.Get(req.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return nil
	}
	return r
}

func (s *Server) handleStatus(w http.ResponseWriter, req *http.Request) {
	if r := s.run(w, req); r != nil {
		writeJSON(w, http.StatusOK, r.snapshot())
	}
}

// resultBody wraps the typed result with its terminal context. The result
// field itself is EncodeResult's canonical bytes — the shape the identity
// tests compare against a library-API run.
type resultBody struct {
	ID     string          `json:"id"`
	State  State           `json:"state"`
	Reason string          `json:"reason,omitempty"`
	Result json.RawMessage `json:"result,omitempty"`
}

func (s *Server) handleResult(w http.ResponseWriter, req *http.Request) {
	r := s.run(w, req)
	if r == nil {
		return
	}
	res, reason, state := r.Result()
	if !state.Terminal() {
		writeError(w, http.StatusConflict, errors.New("service: run not finished"))
		return
	}
	body := resultBody{ID: r.ID, State: state, Reason: reason}
	if res != nil {
		raw, err := EncodeResult(res)
		if err != nil {
			writeError(w, http.StatusInternalServerError, err)
			return
		}
		body.Result = raw
	}
	writeJSON(w, http.StatusOK, body)
}

func (s *Server) handleCancel(w http.ResponseWriter, req *http.Request) {
	r, err := s.Cancel(req.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusAccepted, r.snapshot())
}

// eventJSON is one NDJSON stream record. Regular records carry a trace
// event; the final record has kind "run-finished" and the terminal state.
type eventJSON struct {
	TimeS  float64 `json:"t_s"`
	Kind   string  `json:"kind"`
	VM     string  `json:"vm,omitempty"`
	Detail string  `json:"detail,omitempty"`
	Round  int     `json:"round,omitempty"`
	Value  float64 `json:"value,omitempty"`
	State  State   `json:"state,omitempty"`
}

func toEventJSON(e trace.Event) eventJSON {
	return eventJSON{
		TimeS:  e.Time,
		Kind:   e.Kind.String(),
		VM:     e.VM,
		Detail: e.Detail,
		Round:  e.Round,
		Value:  e.Value,
	}
}

// handleEvents streams the run's trace events as NDJSON: full replay from
// event 0, then follow until the run is terminal (or the client goes away).
// The last record is a "run-finished" marker carrying the terminal state.
func (s *Server) handleEvents(w http.ResponseWriter, req *http.Request) {
	r := s.run(w, req)
	if r == nil {
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)

	from := 0
	for {
		evs, closed, changed := r.log.next(from)
		for _, e := range evs {
			if err := enc.Encode(toEventJSON(e)); err != nil {
				return // client gone
			}
		}
		from += len(evs)
		if len(evs) > 0 && flusher != nil {
			flusher.Flush()
		}
		if closed {
			break
		}
		if len(evs) > 0 {
			continue // drain everything available before blocking
		}
		select {
		case <-changed:
		case <-req.Context().Done():
			return
		}
	}
	enc.Encode(eventJSON{Kind: "run-finished", State: r.State()})
	if flusher != nil {
		flusher.Flush()
	}
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.metrics.write(w, s.QueueDepth())
}

func (s *Server) handleReady(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	if draining {
		writeError(w, http.StatusServiceUnavailable, ErrShuttingDown)
		return
	}
	w.WriteHeader(http.StatusOK)
	w.Write([]byte("ok\n"))
}
