package service

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"github.com/hybridmig/hybridmig/internal/scenario"
	"github.com/hybridmig/hybridmig/internal/trace"
)

// Sentinel causes threaded through run contexts so terminal states are
// classifiable with context.Cause.
var (
	// ErrWallBudget is the runaway-scenario breaker: the run exceeded its
	// wall-clock budget (on top of the virtual-time horizon) and was killed.
	ErrWallBudget = errors.New("service: run wall-clock budget exceeded")
	// ErrCanceledByClient marks a POST /v1/runs/{id}/cancel.
	ErrCanceledByClient = errors.New("service: run canceled by client")
	// ErrShuttingDown marks runs terminated by server shutdown, and is
	// returned by Submit once shutdown has begun.
	ErrShuttingDown = errors.New("service: shutting down")
	// ErrQueueFull is returned by Submit when the admission queue is full;
	// the HTTP layer maps it to 429 and the shed counter.
	ErrQueueFull = errors.New("service: admission queue full")
	// ErrUnknownRun is returned for lifecycle operations on unknown run IDs.
	ErrUnknownRun = errors.New("service: unknown run")
)

// Config sizes the service.
type Config struct {
	// Workers bounds concurrently executing runs; <= 0 uses GOMAXPROCS.
	Workers int
	// QueueDepth bounds the FIFO admission queue; <= 0 uses 16. A submission
	// that finds the queue full is shed, never blocked.
	QueueDepth int
	// MaxWall caps every run's wall-clock budget (breaker); <= 0 uses 5m.
	// A spec's wall_budget_s can lower it per run but never raise it.
	MaxWall time.Duration
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 16
	}
	if c.MaxWall <= 0 {
		c.MaxWall = 5 * time.Minute
	}
	return c
}

// State is a run's lifecycle phase.
type State string

// The run lifecycle: Queued -> Running -> one of the three terminal states.
// A queued run that is canceled (or caught by shutdown) goes terminal without
// ever running.
const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateSucceeded State = "succeeded"
	StateFailed    State = "failed"
	StateCanceled  State = "canceled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateSucceeded || s == StateFailed || s == StateCanceled
}

// Run is one submitted scenario's lifecycle record.
type Run struct {
	ID   string
	Spec *Spec

	ctx    context.Context
	cancel context.CancelCauseFunc
	log    *eventLog

	mu        sync.Mutex
	state     State
	reason    string // terminal detail: error text, cancel cause
	result    *scenario.Result
	submitted time.Time
	started   time.Time
	finished  time.Time

	done chan struct{} // closed when the run reaches a terminal state
}

// Snapshot is the wire shape of GET /v1/runs/{id}.
type Snapshot struct {
	ID          string  `json:"id"`
	State       State   `json:"state"`
	Reason      string  `json:"reason,omitempty"`
	SubmittedAt string  `json:"submitted_at"`
	StartedAt   string  `json:"started_at,omitempty"`
	FinishedAt  string  `json:"finished_at,omitempty"`
	WallS       float64 `json:"wall_s,omitempty"`
	Events      int     `json:"events"`
}

func (r *Run) snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Snapshot{
		ID:          r.ID,
		State:       r.state,
		Reason:      r.reason,
		SubmittedAt: r.submitted.UTC().Format(time.RFC3339Nano),
		Events:      r.log.len(),
	}
	if !r.started.IsZero() {
		s.StartedAt = r.started.UTC().Format(time.RFC3339Nano)
	}
	if !r.finished.IsZero() {
		s.FinishedAt = r.finished.UTC().Format(time.RFC3339Nano)
		if !r.started.IsZero() {
			s.WallS = r.finished.Sub(r.started).Seconds()
		}
	}
	return s
}

// State returns the run's current lifecycle phase.
func (r *Run) State() State {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.state
}

// Result returns the collected result once the run is terminal. A failed or
// canceled run may carry a partial result (horizon overrun, mid-run cancel).
func (r *Run) Result() (*scenario.Result, string, State) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.result, r.reason, r.state
}

// Done is closed when the run reaches a terminal state.
func (r *Run) Done() <-chan struct{} { return r.done }

// Server runs scenarios on a bounded worker pool behind a FIFO admission
// queue. Zero value is not usable; construct with New and call Start.
type Server struct {
	cfg     Config
	metrics *metricsSet

	baseCtx context.Context
	stop    context.CancelCauseFunc

	mu       sync.Mutex
	runs     map[string]*Run
	order    []string
	seq      int
	queue    chan *Run
	draining bool

	wg sync.WaitGroup

	// execute runs one admitted scenario; swapped by tests that need a
	// deterministically blocking executor to pin shed behavior.
	execute func(r *Run)
}

// New builds a stopped server; call Start to spawn the worker pool.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	ctx, cancel := context.WithCancelCause(context.Background())
	s := &Server{
		cfg:     cfg,
		metrics: &metricsSet{},
		baseCtx: ctx,
		stop:    cancel,
		runs:    make(map[string]*Run),
		queue:   make(chan *Run, cfg.QueueDepth),
	}
	s.execute = s.runScenario
	return s
}

// Start spawns the worker pool.
func (s *Server) Start() {
	for i := 0; i < s.cfg.Workers; i++ {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			for r := range s.queue {
				s.runOne(r)
			}
		}()
	}
}

// Shutdown stops admission, cancels every queued and running run, and waits
// for the workers to drain (or ctx to expire).
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		close(s.queue)
	}
	s.mu.Unlock()
	s.stop(ErrShuttingDown)
	done := make(chan struct{})
	go func() { s.wg.Wait(); close(done) }()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Submit validates the spec and enqueues a run. Spec/scenario validation
// failures return an error wrapping ErrBadSpec or scenario.ErrInvalidScenario
// (HTTP 400); a full queue returns ErrQueueFull (HTTP 429) and bumps the shed
// counter; a draining server returns ErrShuttingDown (HTTP 503).
func (s *Server) Submit(sp *Spec) (*Run, error) {
	sc, err := sp.ToScenario()
	if err != nil {
		return nil, err
	}
	// Reject malformed scenarios at the door: admission is cheap, a worker
	// slot is not.
	if err := sc.Validate(); err != nil {
		return nil, err
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return nil, ErrShuttingDown
	}
	s.seq++
	ctx, cancel := context.WithCancelCause(s.baseCtx)
	r := &Run{
		ID:        fmt.Sprintf("run-%06d", s.seq),
		Spec:      sp,
		ctx:       ctx,
		cancel:    cancel,
		log:       newEventLog(),
		state:     StateQueued,
		submitted: time.Now(),
		done:      make(chan struct{}),
	}
	select {
	case s.queue <- r:
	default:
		cancel(ErrQueueFull)
		s.metrics.shed.Add(1)
		return nil, ErrQueueFull
	}
	s.runs[r.ID] = r
	s.order = append(s.order, r.ID)
	s.metrics.started.Add(1)
	return r, nil
}

// Get returns a run by ID.
func (s *Server) Get(id string) (*Run, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok := s.runs[id]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownRun, id)
	}
	return r, nil
}

// List snapshots every run in submission order.
func (s *Server) List() []Snapshot {
	s.mu.Lock()
	ids := append([]string(nil), s.order...)
	runs := make([]*Run, len(ids))
	for i, id := range ids {
		runs[i] = s.runs[id]
	}
	s.mu.Unlock()
	out := make([]Snapshot, len(runs))
	for i, r := range runs {
		out[i] = r.snapshot()
	}
	return out
}

// Cancel requests cancellation of a queued or running run. Canceling a
// terminal run is a no-op.
func (s *Server) Cancel(id string) (*Run, error) {
	r, err := s.Get(id)
	if err != nil {
		return nil, err
	}
	r.cancel(ErrCanceledByClient)
	return r, nil
}

// QueueDepth samples the admission queue length (the /metrics gauge).
func (s *Server) QueueDepth() int { return len(s.queue) }

// runOne drives one admitted run through its lifecycle on a worker.
func (s *Server) runOne(r *Run) {
	// A cancel (client or shutdown) that landed while the run was queued
	// terminates it without burning the worker slot.
	if r.ctx.Err() != nil {
		r.mu.Lock()
		r.state = StateCanceled
		r.reason = causeText(r.ctx)
		r.finished = time.Now()
		r.mu.Unlock()
		s.metrics.canceled.Add(1)
		r.log.close()
		close(r.done)
		return
	}
	r.mu.Lock()
	r.state = StateRunning
	r.started = time.Now()
	r.mu.Unlock()
	s.metrics.running.Add(1)

	s.execute(r)

	r.mu.Lock()
	r.finished = time.Now()
	wall := r.finished.Sub(r.started).Seconds()
	state := r.state
	r.mu.Unlock()
	s.metrics.running.Add(-1)
	s.metrics.observeWall(wall)
	switch state {
	case StateSucceeded:
		s.metrics.completed.Add(1)
	case StateCanceled:
		s.metrics.canceled.Add(1)
	default:
		s.metrics.failed.Add(1)
	}
	r.log.close()
	close(r.done)
}

// runScenario is the real executor: build the scenario (again — cheap, and it
// keeps Run free of scenario state), arm the breaker, stream trace events
// into the run's log, classify the outcome.
func (s *Server) runScenario(r *Run) {
	budget := s.cfg.MaxWall
	if w := r.Spec.WallBudgetS; w > 0 {
		if d := time.Duration(w * float64(time.Second)); d < budget {
			budget = d
		}
	}
	ctx, cancel := context.WithTimeoutCause(r.ctx, budget, ErrWallBudget)
	defer cancel()

	sc, err := r.Spec.ToScenario(scenario.WithObserver(trace.ObserverFunc(r.log.append)))
	if err != nil { // unreachable: Submit already translated this spec
		r.setTerminal(StateFailed, nil, err.Error())
		return
	}
	res, err := sc.RunContext(ctx)
	switch {
	case err == nil:
		r.setTerminal(StateSucceeded, res, "")
	case errors.As(err, new(*scenario.CanceledError)):
		cause := context.Cause(ctx)
		if errors.Is(cause, ErrWallBudget) {
			s.metrics.breaker.Add(1)
			r.setTerminal(StateFailed, res, fmt.Sprintf("%v (budget %s)", ErrWallBudget, budget))
			return
		}
		r.setTerminal(StateCanceled, res, cause.Error())
	default:
		r.setTerminal(StateFailed, res, err.Error())
	}
}

func (r *Run) setTerminal(st State, res *scenario.Result, reason string) {
	r.mu.Lock()
	r.state = st
	r.result = res
	r.reason = reason
	r.mu.Unlock()
}

func causeText(ctx context.Context) string {
	if c := context.Cause(ctx); c != nil {
		return c.Error()
	}
	return context.Canceled.Error()
}

// eventLog is an append-only record of one run's trace events supporting
// replay-then-follow streaming: append wakes every waiter, close marks the
// log complete.
type eventLog struct {
	mu     sync.Mutex
	events []trace.Event
	closed bool
	wait   chan struct{} // closed and replaced on every append/close
}

func newEventLog() *eventLog {
	return &eventLog{wait: make(chan struct{})}
}

// append implements trace.ObserverFunc's shape; it runs synchronously inside
// the simulation's emitting layer, so it must stay cheap and must not touch
// simulation state.
func (l *eventLog) append(e trace.Event) {
	l.mu.Lock()
	l.events = append(l.events, e)
	ch := l.wait
	l.wait = make(chan struct{})
	l.mu.Unlock()
	close(ch)
}

func (l *eventLog) close() {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return
	}
	l.closed = true
	ch := l.wait
	l.wait = make(chan struct{})
	l.mu.Unlock()
	close(ch)
}

func (l *eventLog) len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.events)
}

// next returns events from index from on, whether the log is complete, and a
// channel that is closed on the next change (only meaningful when it returned
// no new events and the log is still open).
func (l *eventLog) next(from int) ([]trace.Event, bool, <-chan struct{}) {
	l.mu.Lock()
	defer l.mu.Unlock()
	var evs []trace.Event
	if from < len(l.events) {
		evs = l.events[from:len(l.events):len(l.events)]
	}
	return evs, l.closed, l.wait
}
