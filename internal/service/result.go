package service

import (
	"encoding/json"
	"math"

	"github.com/hybridmig/hybridmig/internal/core"
	"github.com/hybridmig/hybridmig/internal/metrics"
	"github.com/hybridmig/hybridmig/internal/scenario"
)

// ResultJSON is the typed wire shape of a finished run: stable snake_case
// keys over scenario.Result. The same encoder serves GET /v1/runs/{id}/result
// and the library-identity tests, so "bit-identical to the library API run"
// is checkable byte for byte — struct field order is fixed and encoding/json
// sorts the traffic map's keys.
type ResultJSON struct {
	ClockS            float64             `json:"clock_s"`
	VMs               []VMResultJSON      `json:"vms"`
	Campaigns         []*metrics.Campaign `json:"campaigns,omitempty"`
	Traffic           map[string]float64  `json:"traffic_bytes"`
	SplitBrainWindows int                 `json:"split_brain_windows,omitempty"`
	SeedCapture       string              `json:"seed_capture,omitempty"`
}

// VMResultJSON is one VM's outcome on the wire.
type VMResultJSON struct {
	Name         string             `json:"name"`
	Approach     string             `json:"approach"`
	Node         int                `json:"node"`
	Migrated     bool               `json:"migrated"`
	MigrationS   float64            `json:"migration_s"`
	DowntimeMS   float64            `json:"downtime_ms"`
	Rounds       int                `json:"rounds"`
	Converged    bool               `json:"converged"`
	MemoryBytes  float64            `json:"memory_bytes"`
	BlockBytes   float64            `json:"block_bytes"`
	Retries      int                `json:"retries,omitempty"`
	Aborts       int                `json:"aborts,omitempty"`
	AbortedBytes float64            `json:"aborted_bytes,omitempty"`
	Exhausted    bool               `json:"exhausted,omitempty"`
	Fenced       int                `json:"fenced,omitempty"`
	Core         core.Stats         `json:"core_stats"`
	Workload     WorkloadResultJSON `json:"workload_stats"`
}

// WorkloadResultJSON is the flattened workload report with its derived
// bandwidths (already divide-by-zero guarded in the library).
type WorkloadResultJSON struct {
	Kind       string  `json:"kind"`
	Iterations int     `json:"iterations"`
	Counter    int64   `json:"counter,omitempty"`
	ReadBytes  float64 `json:"read_bytes,omitempty"`
	ReadBW     float64 `json:"read_bw,omitempty"`
	WriteBytes float64 `json:"write_bytes,omitempty"`
	WriteBW    float64 `json:"write_bw,omitempty"`
	RuntimeS   float64 `json:"runtime_s"`
}

// jfinite clamps NaN/±Inf to 0 so a degenerate run can always serialize
// (encoding/json rejects non-finite floats); mirrors internal/metrics.
func jfinite(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return v
}

// NewResultJSON flattens a library Result into the wire shape.
func NewResultJSON(res *scenario.Result) *ResultJSON {
	out := &ResultJSON{
		ClockS:            jfinite(res.Clock),
		VMs:               make([]VMResultJSON, len(res.VMs)),
		Campaigns:         res.Campaigns,
		Traffic:           make(map[string]float64, len(res.Traffic)),
		SplitBrainWindows: res.SplitBrainWindows,
		SeedCapture:       res.SeedCapture,
	}
	for k, v := range res.Traffic {
		out.Traffic[k] = jfinite(v)
	}
	for i := range res.VMs {
		v := &res.VMs[i]
		out.VMs[i] = VMResultJSON{
			Name:         v.Name,
			Approach:     string(v.Approach),
			Node:         v.Node,
			Migrated:     v.Migrated,
			MigrationS:   jfinite(v.MigrationTime),
			DowntimeMS:   jfinite(v.Downtime * 1000),
			Rounds:       v.Rounds,
			Converged:    v.Converged,
			MemoryBytes:  jfinite(v.MemoryBytes),
			BlockBytes:   jfinite(v.BlockBytes),
			Retries:      v.Retries,
			Aborts:       v.Aborts,
			AbortedBytes: jfinite(v.AbortedBytes),
			Exhausted:    v.Exhausted,
			Fenced:       v.Fenced,
			Core:         v.Core,
			Workload: WorkloadResultJSON{
				Kind:       v.Workload.Kind.String(),
				Iterations: v.Workload.Iterations,
				Counter:    v.Workload.Counter,
				ReadBytes:  jfinite(v.Workload.ReadBytes),
				ReadBW:     jfinite(v.Workload.ReadBW()),
				WriteBytes: jfinite(v.Workload.WriteBytes),
				WriteBW:    jfinite(v.Workload.WriteBW()),
				RuntimeS:   jfinite(v.Workload.Runtime),
			},
		}
	}
	return out
}

// EncodeResult renders the canonical result bytes (no trailing newline).
func EncodeResult(res *scenario.Result) ([]byte, error) {
	return json.Marshal(NewResultJSON(res))
}
