package service

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"
)

// wallBuckets are the run wall-time histogram bounds in seconds: small-scale
// scenarios finish in milliseconds, paper-scale in minutes.
var wallBuckets = [...]float64{0.01, 0.05, 0.25, 1, 5, 15, 60, 300}

// metricsSet is the daemon's instrumentation: monotonic counters, two gauges
// and one histogram, hand-rolled (no client library dependency) and rendered
// in the Prometheus text exposition format. Exposition order is fixed so
// /metrics output is deterministic for a given state.
type metricsSet struct {
	started   atomic.Int64 // runs admitted to the queue
	completed atomic.Int64 // runs that finished successfully
	failed    atomic.Int64 // runs that finished with an error (breaker included)
	shed      atomic.Int64 // submissions rejected because the queue was full
	canceled  atomic.Int64 // runs canceled by the client or shutdown
	breaker   atomic.Int64 // runs killed by the wall-clock budget (subset of failed)
	running   atomic.Int64 // runs executing right now

	mu     sync.Mutex
	counts [len(wallBuckets) + 1]int64 // +1 for the +Inf bucket
	sum    float64
	n      int64
}

// observeWall records one finished run's wall time in the histogram.
func (m *metricsSet) observeWall(sec float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	i := 0
	for i < len(wallBuckets) && sec > wallBuckets[i] {
		i++
	}
	m.counts[i]++
	m.sum += sec
	m.n++
}

// write renders the exposition; queueDepth is sampled by the caller.
func (m *metricsSet) write(w io.Writer, queueDepth int) {
	counter := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP migsimd_%s %s\n# TYPE migsimd_%s counter\nmigsimd_%s %d\n",
			name, help, name, name, v)
	}
	gauge := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP migsimd_%s %s\n# TYPE migsimd_%s gauge\nmigsimd_%s %d\n",
			name, help, name, name, v)
	}
	counter("runs_started_total", "Runs admitted to the queue.", m.started.Load())
	counter("runs_completed_total", "Runs that finished successfully.", m.completed.Load())
	counter("runs_failed_total", "Runs that finished with an error.", m.failed.Load())
	counter("runs_shed_total", "Submissions rejected because the queue was full.", m.shed.Load())
	counter("runs_canceled_total", "Runs canceled by the client or by shutdown.", m.canceled.Load())
	counter("runs_breaker_total", "Runs killed by the per-run wall-clock budget.", m.breaker.Load())
	gauge("queue_depth", "Runs waiting in the admission queue.", int64(queueDepth))
	gauge("runs_running", "Runs executing right now.", m.running.Load())

	m.mu.Lock()
	defer m.mu.Unlock()
	fmt.Fprintf(w, "# HELP migsimd_run_wall_seconds Wall-clock duration of finished runs.\n")
	fmt.Fprintf(w, "# TYPE migsimd_run_wall_seconds histogram\n")
	var cum int64
	for i, le := range wallBuckets {
		cum += m.counts[i]
		fmt.Fprintf(w, "migsimd_run_wall_seconds_bucket{le=%q} %d\n", fmt.Sprintf("%g", le), cum)
	}
	cum += m.counts[len(wallBuckets)]
	fmt.Fprintf(w, "migsimd_run_wall_seconds_bucket{le=\"+Inf\"} %d\n", cum)
	fmt.Fprintf(w, "migsimd_run_wall_seconds_sum %g\n", m.sum)
	fmt.Fprintf(w, "migsimd_run_wall_seconds_count %d\n", m.n)
}
