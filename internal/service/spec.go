// Package service is the simulation-as-a-service layer behind cmd/migsimd:
// it accepts JSON scenario specs over HTTP, validates them with the same
// internal/scenario layer the library API uses, runs them on a bounded worker
// pool with FIFO admission and load shedding, and exposes per-run lifecycle
// endpoints (status, typed result, cancel, live NDJSON trace streaming) plus
// Prometheus-style text metrics.
//
// The package deliberately stays OUT of the determinism contract's package
// set (internal/analysis/lintutil): it needs the wall clock for the runaway
// breaker and the run-time histogram. Every simulation it runs is still
// bit-for-bit deterministic — the service only adds scheduling around
// scenario.RunContext, never inside it.
package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"strings"

	"github.com/hybridmig/hybridmig/internal/cluster"
	"github.com/hybridmig/hybridmig/internal/params"
	"github.com/hybridmig/hybridmig/internal/scenario"
	"github.com/hybridmig/hybridmig/internal/sched"
)

// ErrBadSpec is wrapped by every spec decode/translation failure; the HTTP
// layer maps it (and scenario.ErrInvalidScenario) to 400.
var ErrBadSpec = errors.New("service: bad scenario spec")

func badSpecf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrBadSpec, fmt.Sprintf(format, args...))
}

// Spec is the request schema of POST /v1/runs: a JSON rendering of the
// declarative scenario API. Everything it can express maps 1:1 onto
// scenario.New options and builder calls, so validation semantics are exactly
// the library's. Unknown fields are rejected.
type Spec struct {
	// Scale selects the testbed defaults: "small" (default) or "paper".
	Scale string `json:"scale,omitempty"`
	// Nodes fixes the node count; 0 allocates one past the highest index used.
	Nodes int `json:"nodes,omitempty"`
	// HorizonS bounds the run in virtual seconds (0 = library default).
	HorizonS float64 `json:"horizon_s,omitempty"`
	// Threshold overrides the Algorithm 1 write-count cutoff when non-nil.
	Threshold *uint32 `json:"threshold,omitempty"`
	// PreseededImages marks base images as pre-staged on every node.
	PreseededImages bool `json:"preseeded_images,omitempty"`
	// SampleIntervalS enables periodic degradation samples on the trace bus.
	SampleIntervalS float64 `json:"sample_interval_s,omitempty"`
	// Parallel > 0 runs on the component-parallel kernel with that many
	// workers (the planner still falls back to serial when it must).
	Parallel int `json:"parallel,omitempty"`
	// SeedCapture includes the hex-float determinism capture in the result.
	SeedCapture bool `json:"seed_capture,omitempty"`
	// WallBudgetS overrides the per-run wall-clock breaker, in seconds; it is
	// capped by the server's configured maximum.
	WallBudgetS float64 `json:"wall_budget_s,omitempty"`

	VMs        []VMSpec        `json:"vms"`
	Migrations []MigrationSpec `json:"migrations,omitempty"`
	Campaigns  []CampaignSpec  `json:"campaigns,omitempty"`
	Faults     []FaultSpec     `json:"faults,omitempty"`
	Traffic    []TrafficSpec   `json:"traffic,omitempty"`
	Retry      *RetrySpec      `json:"retry,omitempty"`
}

// VMSpec declares one VM.
type VMSpec struct {
	Name     string        `json:"name"`
	Node     int           `json:"node"`
	Approach string        `json:"approach"`
	Workload *WorkloadSpec `json:"workload,omitempty"`
}

// WorkloadSpec names the guest workload. Parameter objects use the library's
// field names (e.g. {"FileSize": 67108864}); nil parameters take the scale's
// defaults.
type WorkloadSpec struct {
	Kind      string          `json:"kind"`
	IOR       *params.IOR     `json:"ior,omitempty"`
	AsyncWR   *params.AsyncWR `json:"asyncwr,omitempty"`
	Rewrite   *params.Rewrite `json:"rewrite,omitempty"`
	DeadlineS float64         `json:"deadline_s,omitempty"`
}

// MigrationSpec is one timed entry of the migration plan.
type MigrationSpec struct {
	VM  string  `json:"vm"`
	Dst int     `json:"dst"`
	AtS float64 `json:"at_s"`
}

// CampaignSpec is an orchestrated batch of migrations under a policy:
// "all-at-once", "serial", "batched" (requires k >= 1), or "cycle-aware".
type CampaignSpec struct {
	AtS    float64    `json:"at_s"`
	Policy string     `json:"policy"`
	K      int        `json:"k,omitempty"`
	Steps  []StepSpec `json:"steps"`
}

// StepSpec is one migration of a campaign.
type StepSpec struct {
	VM  string `json:"vm"`
	Dst int    `json:"dst"`
}

// FaultSpec schedules one fault; kind uses the trace wire names:
// "dest-crash", "deadline-exceeded", "link-degrade", "fabric-degrade",
// "partition".
type FaultSpec struct {
	AtS       float64 `json:"at_s"`
	Kind      string  `json:"kind"`
	VM        string  `json:"vm,omitempty"`
	Node      int     `json:"node,omitempty"`
	Factor    float64 `json:"factor,omitempty"`
	DurationS float64 `json:"duration_s,omitempty"`
}

// TrafficSpec declares one background cross-traffic window.
type TrafficSpec struct {
	Src    int     `json:"src"`
	Dst    int     `json:"dst"`
	StartS float64 `json:"start_s"`
	StopS  float64 `json:"stop_s"`
	Rate   float64 `json:"rate,omitempty"`
	Burst  float64 `json:"burst,omitempty"`
}

// RetrySpec bounds re-admission of fault-aborted migrations.
type RetrySpec struct {
	MaxAttempts int     `json:"max_attempts"`
	BackoffS    float64 `json:"backoff_s,omitempty"`
	Factor      float64 `json:"factor,omitempty"`
}

// DecodeSpec parses a request body strictly: unknown fields, trailing data
// and malformed JSON all fail with ErrBadSpec.
func DecodeSpec(r io.Reader) (*Spec, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var sp Spec
	if err := dec.Decode(&sp); err != nil {
		return nil, badSpecf("decoding JSON: %v", err)
	}
	// A second document (or any trailing garbage) is a client bug; surface it
	// instead of silently running the first document.
	if err := dec.Decode(new(json.RawMessage)); err != io.EOF {
		return nil, badSpecf("trailing data after spec")
	}
	return &sp, nil
}

func parseFaultKind(s string) (scenario.FaultKind, error) {
	for _, k := range []scenario.FaultKind{
		scenario.FaultDestCrash, scenario.FaultDeadline, scenario.FaultLinkDegrade,
		scenario.FaultFabricDegrade, scenario.FaultPartition,
	} {
		if k.String() == s {
			return k, nil
		}
	}
	return 0, badSpecf("unknown fault kind %q (want dest-crash, deadline-exceeded, link-degrade, fabric-degrade or partition)", s)
}

func parsePolicy(c CampaignSpec, i int) (sched.Policy, error) {
	switch c.Policy {
	case "all-at-once":
		return sched.AllAtOnce{}, nil
	case "serial":
		return sched.Serial{}, nil
	case "batched":
		if c.K < 1 {
			return nil, badSpecf("campaign %d: policy \"batched\" needs k >= 1", i)
		}
		return sched.BatchedK{K: c.K}, nil
	case "cycle-aware":
		return sched.CycleAware{}, nil
	default:
		return nil, badSpecf("campaign %d: unknown policy %q (want all-at-once, serial, batched or cycle-aware)", i, c.Policy)
	}
}

func (w *WorkloadSpec) toScenario(vm string) (scenario.WorkloadSpec, error) {
	if w == nil {
		return scenario.WorkloadSpec{}, nil
	}
	switch strings.ToLower(w.Kind) {
	case "", "none":
		return scenario.WorkloadSpec{}, nil
	case "ior":
		return scenario.IOR(w.IOR), nil
	case "asyncwr":
		return scenario.AsyncWR(w.AsyncWR, w.DeadlineS), nil
	case "rewrite":
		return scenario.Rewrite(w.Rewrite), nil
	default:
		return scenario.WorkloadSpec{}, badSpecf("VM %q: unknown workload kind %q (want none, ior, asyncwr or rewrite)", vm, w.Kind)
	}
}

// ToScenario translates the spec into a ready-to-validate Scenario; extra
// options (the run's trace observer) are appended after the spec's own.
// Spec-level shape errors (unknown enum strings) wrap ErrBadSpec; everything
// semantic is left to scenario validation so the two run paths can never
// disagree.
func (sp *Spec) ToScenario(extra ...scenario.Option) (*scenario.Scenario, error) {
	var opts []scenario.Option
	switch strings.ToLower(sp.Scale) {
	case "", "small":
		opts = append(opts, scenario.WithScale(scenario.ScaleSmall))
	case "paper":
		opts = append(opts, scenario.WithScale(scenario.ScalePaper))
	default:
		return nil, badSpecf("unknown scale %q (want small or paper)", sp.Scale)
	}
	if sp.Nodes > 0 {
		opts = append(opts, scenario.WithNodes(sp.Nodes))
	}
	if sp.HorizonS > 0 {
		opts = append(opts, scenario.WithHorizon(sp.HorizonS))
	}
	if sp.Threshold != nil {
		opts = append(opts, scenario.WithThreshold(*sp.Threshold))
	}
	if sp.PreseededImages {
		opts = append(opts, scenario.WithPreseededImages())
	}
	if sp.SampleIntervalS > 0 {
		opts = append(opts, scenario.WithSampleInterval(sp.SampleIntervalS))
	}
	if sp.Parallel > 0 {
		opts = append(opts, scenario.WithParallel(sp.Parallel))
	}
	if sp.SeedCapture {
		opts = append(opts, scenario.WithSeedCapture())
	}
	for _, f := range sp.Faults {
		kind, err := parseFaultKind(f.Kind)
		if err != nil {
			return nil, err
		}
		opts = append(opts, scenario.WithFaults(scenario.FaultSpec{
			At: f.AtS, Kind: kind, VM: f.VM, Node: f.Node,
			Factor: f.Factor, Duration: f.DurationS,
		}))
	}
	for _, t := range sp.Traffic {
		opts = append(opts, scenario.WithBackgroundTraffic(scenario.TrafficSpec{
			Src: t.Src, Dst: t.Dst, Start: t.StartS, Stop: t.StopS,
			Rate: t.Rate, Burst: t.Burst,
		}))
	}
	if sp.Retry != nil {
		opts = append(opts, scenario.WithRetry(scenario.RetrySpec{
			MaxAttempts: sp.Retry.MaxAttempts,
			Backoff:     sp.Retry.BackoffS,
			Factor:      sp.Retry.Factor,
		}))
	}

	opts = append(opts, extra...)
	s := scenario.New(opts...)
	for _, v := range sp.VMs {
		w, err := v.Workload.toScenario(v.Name)
		if err != nil {
			return nil, err
		}
		s.AddVM(scenario.VMSpec{
			Name:     v.Name,
			Node:     v.Node,
			Approach: cluster.Approach(v.Approach),
			Workload: w,
		})
	}
	for _, m := range sp.Migrations {
		s.MigrateAt(m.VM, m.Dst, m.AtS)
	}
	for i, c := range sp.Campaigns {
		pol, err := parsePolicy(c, i)
		if err != nil {
			return nil, err
		}
		steps := make([]scenario.Step, len(c.Steps))
		for j, st := range c.Steps {
			steps[j] = scenario.Step{VM: st.VM, Dst: st.Dst}
		}
		s.Campaign(c.AtS, pol, steps...)
	}
	return s, nil
}
