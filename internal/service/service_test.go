package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"

	"github.com/hybridmig/hybridmig/internal/params"
	"github.com/hybridmig/hybridmig/internal/scenario"
	"github.com/hybridmig/hybridmig/internal/trace"
)

// quickSpec is a one-VM migration that finishes in milliseconds.
func quickSpec() *Spec {
	return &Spec{
		Nodes:       4,
		SeedCapture: true,
		VMs: []VMSpec{{
			Name: "vm0", Node: 0, Approach: "our-approach",
			Workload: &WorkloadSpec{Kind: "rewrite"},
		}},
		Migrations: []MigrationSpec{{VM: "vm0", Dst: 1, AtS: 3}},
	}
}

// longSpec is a serial campaign that keeps a worker busy long enough to
// cancel or break mid-flight.
func longSpec() *Spec {
	rw := params.DefaultRewrite()
	rw.Iterations = 4096
	rw.Interval = 0.1
	sp := &Spec{Nodes: 8, HorizonS: 600}
	var steps []StepSpec
	for _, name := range []string{"a", "b", "c", "d", "e", "f"} {
		sp.VMs = append(sp.VMs, VMSpec{
			Name: name, Node: 0, Approach: "our-approach",
			Workload: &WorkloadSpec{Kind: "rewrite", Rewrite: &rw},
		})
		steps = append(steps, StepSpec{VM: name, Dst: 1})
	}
	sp.Campaigns = []CampaignSpec{{AtS: 1, Policy: "serial", Steps: steps}}
	return sp
}

func startServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	s := New(cfg)
	s.Start()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})
	return s
}

func waitTerminal(t *testing.T, r *Run) {
	t.Helper()
	select {
	case <-r.Done():
	case <-time.After(60 * time.Second):
		t.Fatalf("run %s did not finish (state %s)", r.ID, r.State())
	}
}

// TestSubmitRunsAndMatchesLibrary is the end-to-end identity contract: a
// posted spec validates, runs on the pool, and its typed JSON result is
// bit-identical to the same spec run through the library API.
func TestSubmitRunsAndMatchesLibrary(t *testing.T) {
	s := startServer(t, Config{Workers: 2, QueueDepth: 4})
	r, err := s.Submit(quickSpec())
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, r)
	res, reason, state := r.Result()
	if state != StateSucceeded {
		t.Fatalf("state %s (%s), want succeeded", state, reason)
	}
	got, err := EncodeResult(res)
	if err != nil {
		t.Fatal(err)
	}

	sc, err := quickSpec().ToScenario()
	if err != nil {
		t.Fatal(err)
	}
	libRes, err := sc.Run()
	if err != nil {
		t.Fatal(err)
	}
	want, err := EncodeResult(libRes)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("service result differs from library run:\nservice: %s\nlibrary: %s", got, want)
	}
}

// TestDeterministicResults pins the serving determinism contract: two
// identical submissions return bit-identical result bytes.
func TestDeterministicResults(t *testing.T) {
	s := startServer(t, Config{Workers: 2, QueueDepth: 4})
	var raws [2][]byte
	for i := range raws {
		r, err := s.Submit(quickSpec())
		if err != nil {
			t.Fatal(err)
		}
		waitTerminal(t, r)
		res, reason, state := r.Result()
		if state != StateSucceeded {
			t.Fatalf("run %d: state %s (%s)", i, state, reason)
		}
		raws[i], err = EncodeResult(res)
		if err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(raws[0], raws[1]) {
		t.Fatalf("identical submissions diverge:\n%s\nvs\n%s", raws[0], raws[1])
	}
}

// TestShedWhenSaturated saturates the pool with a deterministically blocking
// executor: W running + Q queued, the next submission is shed with
// ErrQueueFull (HTTP 429 at the API layer) and counted.
func TestShedWhenSaturated(t *testing.T) {
	s := New(Config{Workers: 2, QueueDepth: 2})
	gate := make(chan struct{})
	running := make(chan string, 8)
	s.execute = func(r *Run) {
		running <- r.ID
		<-gate
		r.setTerminal(StateSucceeded, nil, "")
	}
	s.Start()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	}()

	var runs []*Run
	for i := 0; i < 2; i++ { // occupy both workers
		r, err := s.Submit(quickSpec())
		if err != nil {
			t.Fatal(err)
		}
		runs = append(runs, r)
	}
	for i := 0; i < 2; i++ {
		select {
		case <-running:
		case <-time.After(10 * time.Second):
			t.Fatal("workers did not pick up runs")
		}
	}
	for i := 0; i < 2; i++ { // fill the queue
		r, err := s.Submit(quickSpec())
		if err != nil {
			t.Fatal(err)
		}
		runs = append(runs, r)
	}

	// Saturated: the next submission must shed, both via the API...
	if _, err := s.Submit(quickSpec()); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("saturated submit: %v, want ErrQueueFull", err)
	}
	// ...and over HTTP with a 429.
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp := postSpec(t, ts, quickSpec())
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated POST = %d, want 429", resp.StatusCode)
	}
	if got := s.metrics.shed.Load(); got != 2 {
		t.Fatalf("shed counter = %d, want 2", got)
	}

	close(gate)
	for _, r := range runs {
		waitTerminal(t, r)
		if st := r.State(); st != StateSucceeded {
			t.Fatalf("run %s state %s after release", r.ID, st)
		}
	}
	if got := s.metrics.completed.Load(); got != 4 {
		t.Fatalf("completed counter = %d, want 4", got)
	}
}

// TestCancelWhileQueued: a cancel that lands before a worker picks the run up
// terminates it without running it.
func TestCancelWhileQueued(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 4})
	gate := make(chan struct{})
	running := make(chan string, 8)
	s.execute = func(r *Run) {
		running <- r.ID
		<-gate
		r.setTerminal(StateSucceeded, nil, "")
	}
	s.Start()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	}()

	blocker, err := s.Submit(quickSpec())
	if err != nil {
		t.Fatal(err)
	}
	<-running
	queued, err := s.Submit(quickSpec())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Cancel(queued.ID); err != nil {
		t.Fatal(err)
	}
	close(gate)
	waitTerminal(t, queued)
	if st := queued.State(); st != StateCanceled {
		t.Fatalf("queued-then-canceled run state %s, want canceled", st)
	}
	if _, reason, _ := queued.Result(); !strings.Contains(reason, "canceled by client") {
		t.Fatalf("reason %q does not name the client cancel", reason)
	}
	waitTerminal(t, blocker)
}

// TestCancelMidRunNoLeak cancels a real long-running scenario mid-flight:
// the run must land in state canceled with a typed reason, promptly, and the
// engine's process goroutines must all be released.
func TestCancelMidRunNoLeak(t *testing.T) {
	s := startServer(t, Config{Workers: 1, QueueDepth: 2})
	before := runtime.NumGoroutine()

	r, err := s.Submit(longSpec())
	if err != nil {
		t.Fatal(err)
	}
	// Wait for the first trace event — proof the scenario is executing.
	for {
		evs, closed, changed := r.log.next(0)
		if len(evs) > 0 {
			break
		}
		if closed {
			t.Fatalf("run finished before emitting events (state %s)", r.State())
		}
		select {
		case <-changed:
		case <-time.After(30 * time.Second):
			t.Fatal("no trace events")
		}
	}
	if _, err := s.Cancel(r.ID); err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, r)
	if st := r.State(); st != StateCanceled {
		_, reason, _ := r.Result()
		t.Fatalf("state %s (%s), want canceled", st, reason)
	}
	if _, reason, _ := r.Result(); !strings.Contains(reason, "canceled by client") {
		t.Fatalf("reason %q does not name the client cancel", reason)
	}

	// The worker goroutine persists (pool), but every simulation process
	// goroutine must be gone.
	for i := 0; ; i++ {
		runtime.GC()
		if runtime.NumGoroutine() <= before+2 {
			break
		}
		if i > 100 {
			t.Fatalf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestWallBudgetBreaker: a run whose wall budget is far below its real cost
// is killed by the breaker and lands in state failed with the typed reason.
func TestWallBudgetBreaker(t *testing.T) {
	s := startServer(t, Config{Workers: 1, QueueDepth: 2})
	sp := longSpec()
	sp.WallBudgetS = 0.001
	r, err := s.Submit(sp)
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, r)
	_, reason, state := r.Result()
	if state != StateFailed {
		t.Fatalf("state %s (%s), want failed", state, reason)
	}
	if !strings.Contains(reason, "wall-clock budget") {
		t.Fatalf("reason %q does not name the wall budget", reason)
	}
	if got := s.metrics.breaker.Load(); got != 1 {
		t.Fatalf("breaker counter = %d, want 1", got)
	}
}

// TestStreamOrderingMatchesBus compares the NDJSON stream against an
// in-process observer on the same spec: same seed, same synchronous bus,
// so the two event sequences must match record for record.
func TestStreamOrderingMatchesBus(t *testing.T) {
	s := startServer(t, Config{Workers: 1, QueueDepth: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp := postSpec(t, ts, quickSpec())
	var snap Snapshot
	decodeBody(t, resp, &snap)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /v1/runs = %d", resp.StatusCode)
	}

	// Stream events (replay + follow until terminal).
	eresp, err := http.Get(ts.URL + "/v1/runs/" + snap.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer eresp.Body.Close()
	var streamed []eventJSON
	var finished *eventJSON
	sc := bufio.NewScanner(eresp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		var e eventJSON
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		if e.Kind == "run-finished" {
			finished = &e
			continue
		}
		streamed = append(streamed, e)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if finished == nil || finished.State != StateSucceeded {
		t.Fatalf("stream did not end with a succeeded run-finished record: %+v", finished)
	}

	// The in-process reference: same spec through the library with a
	// recording observer.
	var want []eventJSON
	rec := trace.ObserverFunc(func(e trace.Event) { want = append(want, toEventJSON(e)) })
	lib, err := quickSpec().ToScenario(scenario.WithObserver(rec))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := lib.Run(); err != nil {
		t.Fatal(err)
	}
	if len(streamed) == 0 {
		t.Fatal("no events streamed")
	}
	if len(streamed) != len(want) {
		t.Fatalf("streamed %d events, library bus saw %d", len(streamed), len(want))
	}
	for i := range want {
		if streamed[i] != want[i] {
			t.Fatalf("event %d differs:\nstream: %+v\nbus:    %+v", i, streamed[i], want[i])
		}
	}
}

// TestHTTPLifecycle drives the remaining endpoints: status, result, list,
// metrics, healthz/readyz, bad-spec 400s and unknown-run 404s.
func TestHTTPLifecycle(t *testing.T) {
	s := startServer(t, Config{Workers: 1, QueueDepth: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Invalid specs are rejected at the door with 400.
	for name, body := range map[string]string{
		"malformed JSON":   `{`,
		"unknown field":    `{"bogus": 1}`,
		"unknown approach": `{"vms": [{"name": "a", "approach": "warp-drive"}]}`,
		"unknown workload": `{"vms": [{"name": "a", "approach": "our-approach", "workload": {"kind": "mine-bitcoin"}}]}`,
		"unknown fault":    `{"vms": [{"name": "a", "approach": "our-approach"}], "faults": [{"kind": "gremlin", "at_s": 1}]}`,
		"batched sans k":   `{"vms": [{"name": "a", "approach": "our-approach"}], "campaigns": [{"policy": "batched", "steps": [{"vm": "a", "dst": 1}]}]}`,
		"no VMs":           `{}`,
	} {
		resp, err := http.Post(ts.URL+"/v1/runs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, resp.StatusCode)
		}
	}

	// A good run: 202, then status/result/list agree.
	resp := postSpec(t, ts, quickSpec())
	var snap Snapshot
	decodeBody(t, resp, &snap)
	if resp.StatusCode != http.StatusAccepted || snap.ID == "" {
		t.Fatalf("POST = %d %+v", resp.StatusCode, snap)
	}
	r, err := s.Get(snap.ID)
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, r)

	sresp, err := http.Get(ts.URL + "/v1/runs/" + snap.ID)
	if err != nil {
		t.Fatal(err)
	}
	decodeBody(t, sresp, &snap)
	if snap.State != StateSucceeded || snap.Events == 0 || snap.WallS <= 0 {
		t.Fatalf("terminal snapshot %+v", snap)
	}

	rresp, err := http.Get(ts.URL + "/v1/runs/" + snap.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	var body resultBody
	decodeBody(t, rresp, &body)
	if rresp.StatusCode != http.StatusOK || body.State != StateSucceeded || len(body.Result) == 0 {
		t.Fatalf("result = %d %+v", rresp.StatusCode, body)
	}

	lresp, err := http.Get(ts.URL + "/v1/runs")
	if err != nil {
		t.Fatal(err)
	}
	var list struct {
		Runs []Snapshot `json:"runs"`
	}
	decodeBody(t, lresp, &list)
	if len(list.Runs) != 1 || list.Runs[0].ID != snap.ID {
		t.Fatalf("list = %+v", list)
	}

	// Unknown IDs are 404 on every per-run endpoint.
	for _, path := range []string{"/v1/runs/run-999999", "/v1/runs/run-999999/result", "/v1/runs/run-999999/events"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s = %d, want 404", path, resp.StatusCode)
		}
	}

	// Metrics exposition carries the counters and the histogram.
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mb := new(bytes.Buffer)
	mb.ReadFrom(mresp.Body)
	mresp.Body.Close()
	for _, want := range []string{
		"migsimd_runs_started_total 1",
		"migsimd_runs_completed_total 1",
		"migsimd_runs_shed_total 0",
		"migsimd_queue_depth 0",
		"migsimd_run_wall_seconds_count 1",
		`migsimd_run_wall_seconds_bucket{le="+Inf"} 1`,
	} {
		if !strings.Contains(mb.String(), want) {
			t.Errorf("metrics missing %q:\n%s", want, mb.String())
		}
	}

	for _, path := range []string{"/healthz", "/readyz"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s = %d, want 200", path, resp.StatusCode)
		}
	}
}

// TestShutdownCancelsQueuedRuns: Shutdown terminates queued runs as canceled
// and readyz flips to 503.
func TestShutdownCancelsQueuedRuns(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 4})
	running := make(chan string, 4)
	s.execute = func(r *Run) {
		running <- r.ID
		<-r.ctx.Done()
		r.setTerminal(StateCanceled, nil, causeText(r.ctx))
	}
	s.Start()

	blocker, err := s.Submit(quickSpec())
	if err != nil {
		t.Fatal(err)
	}
	<-running
	queued, err := s.Submit(quickSpec())
	if err != nil {
		t.Fatal(err)
	}

	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	done := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		done <- s.Shutdown(ctx)
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("shutdown: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("shutdown hung")
	}
	waitTerminal(t, blocker)
	waitTerminal(t, queued)
	if st := queued.State(); st != StateCanceled {
		t.Fatalf("queued run state %s after shutdown, want canceled", st)
	}
	if _, err := s.Submit(quickSpec()); !errors.Is(err, ErrShuttingDown) {
		t.Fatalf("post-shutdown submit: %v, want ErrShuttingDown", err)
	}
	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz after shutdown = %d, want 503", resp.StatusCode)
	}
}

func postSpec(t *testing.T, ts *httptest.Server, sp *Spec) *http.Response {
	t.Helper()
	raw, err := json.Marshal(sp)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/runs", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decodeBody(t *testing.T, resp *http.Response, v any) {
	t.Helper()
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
}
