package sim_test

import (
	"fmt"
	"testing"

	"github.com/hybridmig/hybridmig/internal/benchscen"
	"github.com/hybridmig/hybridmig/internal/sim"
)

// The event-path scenario bodies live in internal/benchscen so
// cmd/benchreport measures exactly what these benchmarks measure.

func BenchmarkAfterFire(b *testing.B) { benchscen.AfterFire(b) }

func BenchmarkEngineTimerChurn(b *testing.B) { benchscen.TimerChurn(b) }

func BenchmarkParallelComponents(b *testing.B) {
	for _, shards := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("shards-%d", shards), func(b *testing.B) {
			benchscen.ParallelComponents(b, shards)
		})
	}
}

// BenchmarkProcPingPong measures the process dispatch round trip: one
// sleeping process woken once per iteration.
func BenchmarkProcPingPong(b *testing.B) {
	e := sim.New()
	stop := false
	e.Go("pinger", func(p *sim.Proc) {
		for !stop {
			p.Sleep(1)
		}
	})
	// Let the process reach its first sleep.
	for e.Step() {
		if e.Now() >= 0.5 {
			break
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !e.Step() {
			b.Fatal("no event")
		}
	}
	b.StopTimer()
	stop = true
	e.Step()
	e.Shutdown()
}
