// Package sim implements a deterministic discrete-event simulation kernel.
//
// The kernel follows the classic process-interaction style (as popularized by
// SimPy): simulation logic is written as ordinary sequential Go code inside
// processes, and the engine interleaves processes on a virtual clock. Although
// processes run on goroutines, exactly one goroutine is runnable at any
// moment — the engine hands control to a process and does not proceed until
// the process parks again — so simulations are fully deterministic and need
// no locking.
//
// Time is measured in seconds as float64. Ties between events scheduled for
// the same instant are broken by scheduling order (a monotonically increasing
// sequence number), which keeps runs bit-reproducible.
//
// The event path is allocation-free in steady state: event records are pooled
// on a free list, canceled timers are removed from the heap eagerly (via the
// stored heap index) instead of leaving tombstones, and process wake-ups are
// scheduled as direct dispatch events rather than closures.
package sim

import (
	"errors"
	"fmt"
	"math"
)

// Time is a point on the virtual clock, in seconds.
type Time = float64

// Duration is a span of virtual time, in seconds.
type Duration = float64

// errKilled is panicked inside process goroutines when the engine shuts
// down; the process wrapper recovers it.
var errKilled = errors.New("sim: process killed")

// ErrStopped is returned by Run when the engine was stopped explicitly.
var ErrStopped = errors.New("sim: engine stopped")

// ErrInterrupted is returned (wrapped) by the run loops when the interrupt
// check installed with SetInterrupt reported true: the loop stopped between
// two events, with the queue and processes intact. Callers that abandon the
// run must still call Shutdown to release process goroutines. Detect it with
// errors.Is.
var ErrInterrupted = errors.New("sim: run interrupted")

// DeadlineError reports that a simulation reached its horizon with work
// still pending: the event queue was not empty when the clock hit the
// limit. Callers distinguish it from other failures with errors.As.
type DeadlineError struct {
	Horizon Time // the limit that was hit
	Next    Time // timestamp of the earliest unexecuted event
	Pending int  // events still queued beyond the horizon
	Live    int  // processes still alive (running or parked)
}

func (e *DeadlineError) Error() string {
	return fmt.Sprintf("sim: horizon %g s exceeded: %d events pending (next at %g s), %d live processes",
		e.Horizon, e.Pending, e.Next, e.Live)
}

// event is a scheduled callback. Records are recycled through Engine.free;
// gen distinguishes a live record from a recycled one so stale Timer handles
// can never cancel an unrelated event.
type event struct {
	t     Time
	seq   uint64
	fn    func() // callback; nil when p drives a direct dispatch
	p     *Proc  // dispatch fast path: wake this process without a closure
	gen   uint32 // bumped on recycle
	index int    // heap position, -1 while off the heap
}

// Timer is a handle to a scheduled event; it can be canceled before it fires.
// The zero Timer is valid and cancels nothing.
type Timer struct {
	eng *Engine
	ev  *event
	gen uint32
}

// Cancel prevents the timer's callback from running and removes the event
// from the queue immediately (no tombstone is left behind). It is safe to
// call after the timer has fired (it then has no effect). Reports whether
// the callback was still pending.
func (t Timer) Cancel() bool {
	ev := t.ev
	if ev == nil || ev.gen != t.gen || ev.index < 0 {
		return false
	}
	t.eng.removeEvent(ev.index)
	t.eng.recycle(ev)
	return true
}

// Engine is a discrete-event simulation engine. The zero value is not usable;
// call New.
type Engine struct {
	now     Time
	queue   []*event // binary min-heap ordered by (t, seq)
	free    []*event // recycled event records
	seq     uint64
	procs   map[*Proc]struct{}
	order   []*Proc // live processes in spawn order, for deterministic kill
	stopped bool
	running bool
	current *Proc // process currently executing, nil when in engine context

	// Interrupt hook (SetInterrupt): checked between events, every
	// intrEvery firings, by the run loops. The check must be safe to call
	// from whichever goroutine drives the engine; it must not mutate
	// simulation state, so a run that is never interrupted stays
	// bit-identical to one with no hook installed.
	intrCheck func() bool
	intrEvery int
	intrLeft  int
}

// New returns a fresh engine with the clock at zero.
func New() *Engine {
	return &Engine{procs: make(map[*Proc]struct{})}
}

// Now returns the current virtual time in seconds.
func (e *Engine) Now() Time { return e.now }

// newEvent takes a record off the free list (or allocates one) and stamps it
// with the next sequence number.
func (e *Engine) newEvent(t Time, fn func(), p *Proc) *event {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	if math.IsNaN(t) || math.IsInf(t, 0) {
		panic(fmt.Sprintf("sim: scheduling event at non-finite time %v", t))
	}
	var ev *event
	if n := len(e.free); n > 0 {
		ev = e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
	} else {
		ev = &event{}
	}
	ev.t, ev.seq, ev.fn, ev.p = t, e.seq, fn, p
	e.seq++
	return ev
}

// recycle returns a popped or canceled event record to the free list. The
// generation bump invalidates any Timer still pointing at the record.
func (e *Engine) recycle(ev *event) {
	ev.fn = nil
	ev.p = nil
	ev.gen++
	e.free = append(e.free, ev)
}

// heap primitives: a hand-rolled binary heap keyed by (t, seq) that keeps
// event.index current, so Cancel can remove an interior element in O(log n).

func (e *Engine) less(i, j int) bool {
	a, b := e.queue[i], e.queue[j]
	if a.t != b.t {
		return a.t < b.t
	}
	return a.seq < b.seq
}

func (e *Engine) swap(i, j int) {
	q := e.queue
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (e *Engine) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !e.less(i, parent) {
			break
		}
		e.swap(i, parent)
		i = parent
	}
}

func (e *Engine) siftDown(i int) {
	n := len(e.queue)
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		least := l
		if r := l + 1; r < n && e.less(r, l) {
			least = r
		}
		if !e.less(least, i) {
			return
		}
		e.swap(i, least)
		i = least
	}
}

func (e *Engine) pushEvent(ev *event) {
	ev.index = len(e.queue)
	e.queue = append(e.queue, ev)
	e.siftUp(ev.index)
}

// popEvent removes and returns the earliest event.
func (e *Engine) popEvent() *event {
	ev := e.queue[0]
	e.removeEvent(0)
	return ev
}

// removeEvent deletes the element at heap position i.
func (e *Engine) removeEvent(i int) {
	last := len(e.queue) - 1
	ev := e.queue[i]
	if i != last {
		e.swap(i, last)
	}
	e.queue[last] = nil
	e.queue = e.queue[:last]
	if i != last {
		e.siftDown(i)
		e.siftUp(i)
	}
	ev.index = -1
}

// At schedules fn to run at absolute time t. Scheduling in the past is an
// error and panics: it would break causality.
func (e *Engine) At(t Time, fn func()) Timer {
	ev := e.newEvent(t, fn, nil)
	e.pushEvent(ev)
	return Timer{eng: e, ev: ev, gen: ev.gen}
}

// After schedules fn to run d seconds from now. Negative d is clamped to 0.
func (e *Engine) After(d Duration, fn func()) Timer {
	if d < 0 {
		d = 0
	}
	return e.At(e.now+d, fn)
}

// scheduleProc schedules a direct dispatch of p at absolute time t. This is
// the wake-up fast path: no closure is built, so parking and waking processes
// does not allocate.
func (e *Engine) scheduleProc(t Time, p *Proc) {
	e.pushEvent(e.newEvent(t, nil, p))
}

// fire runs one popped event. The record is recycled first so the callback
// can immediately reuse it when scheduling follow-up events.
func (e *Engine) fire(ev *event) {
	e.now = ev.t
	fn, p := ev.fn, ev.p
	e.recycle(ev)
	if p != nil {
		e.dispatch(p)
		return
	}
	fn()
}

// SetInterrupt installs a cooperative interrupt: the run loops call check
// between events, once every `every` firings (values < 1 mean every event),
// and stop with ErrInterrupted when it reports true. The queue and processes
// are left intact — a caller abandoning the run calls Shutdown, exactly as
// for a horizon overrun. A nil check removes the hook. The hook never runs
// inside an event, so it cannot perturb simulation state, and a run whose
// check never fires is bit-identical to a run without one.
func (e *Engine) SetInterrupt(every int, check func() bool) {
	if every < 1 {
		every = 1
	}
	e.intrCheck = check
	e.intrEvery = every
	e.intrLeft = every
}

// interrupted polls the interrupt hook's countdown; it is called by the run
// loops between events.
func (e *Engine) interrupted() bool {
	if e.intrCheck == nil {
		return false
	}
	e.intrLeft--
	if e.intrLeft > 0 {
		return false
	}
	e.intrLeft = e.intrEvery
	return e.intrCheck()
}

// Run executes events until the queue drains or the engine is stopped.
// It returns ErrStopped if Stop was called, nil otherwise.
func (e *Engine) Run() error { return e.RunUntil(math.Inf(1)) }

// RunUntil executes events with timestamps <= limit. The clock is left at
// the time of the last executed event (or at limit if events remain beyond
// it... the clock never advances past the last executed event).
func (e *Engine) RunUntil(limit Time) error {
	if e.running {
		panic("sim: Run called reentrantly")
	}
	e.running = true
	defer func() { e.running = false }()
	for len(e.queue) > 0 && !e.stopped {
		if e.queue[0].t > limit {
			break
		}
		if e.interrupted() {
			return ErrInterrupted
		}
		e.fire(e.popEvent())
	}
	if e.stopped {
		return ErrStopped
	}
	return nil
}

// RunBefore executes events with timestamps strictly below limit, leaving
// every event at or past limit queued and the clock at the last executed
// event. It is the shard-stepping primitive of ShardSet: a shard running
// RunBefore(t) provably never observes (or causes) anything at or after a
// coupling scheduled at t, which is what makes conservative synchronization
// at known coupling timestamps sound.
func (e *Engine) RunBefore(limit Time) error {
	if e.running {
		panic("sim: Run called reentrantly")
	}
	e.running = true
	defer func() { e.running = false }()
	for len(e.queue) > 0 && !e.stopped {
		if e.queue[0].t >= limit {
			break
		}
		if e.interrupted() {
			return ErrInterrupted
		}
		e.fire(e.popEvent())
	}
	if e.stopped {
		return ErrStopped
	}
	return nil
}

// Drain executes events until the queue empties, like RunUntil, but treats
// reaching the limit with events still queued as an error: it returns a
// *DeadlineError describing the stuck work. This is the run primitive for
// scenarios that are structurally expected to complete — a horizon overrun
// means a workload or migration never finished, not a normal end.
func (e *Engine) Drain(limit Time) error {
	if err := e.RunUntil(limit); err != nil {
		return err
	}
	if len(e.queue) > 0 {
		return &DeadlineError{
			Horizon: limit,
			Next:    e.queue[0].t,
			Pending: len(e.queue),
			Live:    len(e.procs),
		}
	}
	return nil
}

// Step executes the single next pending event, if any, and reports whether
// an event ran. Used by tests that need fine-grained control.
func (e *Engine) Step() bool {
	if len(e.queue) == 0 {
		return false
	}
	e.fire(e.popEvent())
	return true
}

// Stop terminates the run loop after the current event and kills all live
// processes so their goroutines exit. The engine cannot be reused afterwards.
func (e *Engine) Stop() {
	if e.stopped {
		return
	}
	e.stopped = true
	// Kill parked processes in spawn order for determinism. Processes that
	// are currently running will observe stopped at their next park.
	for _, p := range e.order {
		if _, live := e.procs[p]; live && p != e.current && p.parked {
			p.kill()
		}
	}
}

// Shutdown kills all live processes without requiring Run to be active.
// Call it after Run returns to release goroutines from an abandoned
// simulation (e.g. one that ended with blocked processes).
func (e *Engine) Shutdown() {
	e.stopped = true
	for _, p := range e.order {
		if _, live := e.procs[p]; live && p.parked {
			p.kill()
		}
	}
}

// LiveProcs returns the number of processes that have started but not
// finished. A structurally complete simulation drains to zero.
func (e *Engine) LiveProcs() int { return len(e.procs) }

// PendingEvents returns the number of events still queued. Canceled timers
// are removed eagerly, so they are never counted.
func (e *Engine) PendingEvents() int { return len(e.queue) }

// resumeMsg tells a parked process why it is being woken.
type resumeMsg struct {
	kill bool
}

// Proc is a simulation process: sequential code that can sleep on the
// virtual clock and block on conditions. A Proc must only be used from its
// own process function.
type Proc struct {
	eng    *Engine
	name   string
	resume chan resumeMsg
	yield  chan struct{}
	parked bool
	dead   bool
}

// Engine returns the engine this process belongs to.
func (p *Proc) Engine() *Engine { return p.eng }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.eng.now }

// Name returns the process name given to Go.
func (p *Proc) Name() string { return p.name }

// Go spawns a new process. The function starts executing at the current
// virtual time, after the spawning context yields to the engine (i.e. it is
// scheduled, not run inline).
func (e *Engine) Go(name string, fn func(p *Proc)) *Proc {
	p := &Proc{
		eng:    e,
		name:   name,
		resume: make(chan resumeMsg),
		yield:  make(chan struct{}),
		parked: true, // a fresh process waits on resume like a parked one
	}
	e.procs[p] = struct{}{}
	e.order = append(e.order, p)
	go p.top(fn)
	e.scheduleProc(e.now, p)
	return p
}

// top is the goroutine entry wrapper: it waits for the first dispatch, runs
// fn, then announces termination to whoever is driving it.
func (p *Proc) top(fn func(p *Proc)) {
	defer func() {
		p.dead = true
		delete(p.eng.procs, p)
		if r := recover(); r != nil {
			if r == errKilled { //nolint:errorlint // sentinel identity is intended
				p.yield <- struct{}{}
				return
			}
			// Re-panic application errors on the engine side would lose the
			// stack; crash here with context instead.
			panic(fmt.Sprintf("sim: process %q panicked: %v", p.name, r))
		}
		p.yield <- struct{}{}
	}()
	msg := <-p.resume // first dispatch
	if msg.kill {
		panic(errKilled)
	}
	fn(p)
}

// dispatch hands control to p and returns once p parks or finishes.
func (e *Engine) dispatch(p *Proc) {
	if p.dead {
		return
	}
	prev := e.current
	e.current = p
	p.parked = false
	p.resume <- resumeMsg{}
	<-p.yield
	e.current = prev
}

// park yields control back to the engine and blocks until dispatched again.
func (p *Proc) park() {
	p.parked = true
	p.yield <- struct{}{}
	msg := <-p.resume
	if msg.kill {
		panic(errKilled)
	}
}

// kill wakes a parked process with a kill order; its goroutine unwinds.
func (p *Proc) kill() {
	if p.dead || !p.parked {
		return
	}
	p.parked = false
	p.resume <- resumeMsg{kill: true}
	<-p.yield
}

// Sleep suspends the process for d seconds of virtual time. Negative and
// zero durations yield to the scheduler (other events at the current time
// run first).
func (p *Proc) Sleep(d Duration) {
	if d < 0 {
		d = 0
	}
	e := p.eng
	e.scheduleProc(e.now+d, p)
	p.park()
}

// Yield lets every other event scheduled for the current instant run before
// the process continues.
func (p *Proc) Yield() { p.Sleep(0) }

// block parks the process until someone calls unblock(p). It is the
// low-level primitive behind Cond and other synchronization types.
func (p *Proc) block() { p.park() }

// unblock schedules p to resume at the current virtual time.
func (e *Engine) unblock(p *Proc) {
	e.scheduleProc(e.now, p)
}

// Cond is a FIFO condition variable for processes. The zero value is ready
// to use once bound to an engine via its first Wait.
//
// The waiter queue is a head-indexed ring over a slice: Signal pops the
// front in O(1) instead of shifting the remaining waiters down.
type Cond struct {
	waiters []*Proc
	head    int // first live waiter; everything before it has been woken
}

// condCompactAt bounds the dead prefix of the waiter slice: once head grows
// past it, live waiters are slid down so memory stays proportional to the
// number of actual waiters. Amortized O(1) per Signal.
const condCompactAt = 64

// Wait parks the calling process until Signal or Broadcast wakes it.
// As with sync.Cond, callers re-check their predicate in a loop.
func (c *Cond) Wait(p *Proc) {
	c.waiters = append(c.waiters, p)
	p.block()
}

// Signal wakes the longest-waiting process, if any.
func (c *Cond) Signal(e *Engine) {
	if c.head >= len(c.waiters) {
		return
	}
	p := c.waiters[c.head]
	c.waiters[c.head] = nil
	c.head++
	if c.head == len(c.waiters) {
		c.waiters = c.waiters[:0]
		c.head = 0
	} else if c.head >= condCompactAt {
		n := copy(c.waiters, c.waiters[c.head:])
		for i := n; i < len(c.waiters); i++ {
			c.waiters[i] = nil
		}
		c.waiters = c.waiters[:n]
		c.head = 0
	}
	e.unblock(p)
}

// Broadcast wakes all waiting processes in FIFO order.
func (c *Cond) Broadcast(e *Engine) {
	for i := c.head; i < len(c.waiters); i++ {
		e.unblock(c.waiters[i])
		c.waiters[i] = nil
	}
	c.waiters = c.waiters[:0]
	c.head = 0
}

// Waiting returns the number of processes parked on the condition.
func (c *Cond) Waiting() int { return len(c.waiters) - c.head }

// WaitFor parks p until pred() holds, re-checking after every wake-up.
// pred must be a pure function of simulation state.
func (c *Cond) WaitFor(p *Proc, pred func() bool) {
	for !pred() {
		c.Wait(p)
	}
}

// Gate blocks processes until it is opened; once open it never blocks again.
// It models one-shot readiness signals (e.g. "destination accepted control").
type Gate struct {
	open bool
	cond Cond
}

// Open releases all current and future waiters.
func (g *Gate) Open(e *Engine) {
	if g.open {
		return
	}
	g.open = true
	g.cond.Broadcast(e)
}

// IsOpen reports whether the gate has been opened.
func (g *Gate) IsOpen() bool { return g.open }

// Wait parks until the gate is open.
func (g *Gate) Wait(p *Proc) {
	for !g.open {
		g.cond.Wait(p)
	}
}

// WaitGroup counts outstanding work items; Wait blocks until zero.
type WaitGroup struct {
	n    int
	cond Cond
}

// Add increments the counter by delta (may be negative via Done).
func (w *WaitGroup) Add(delta int) {
	w.n += delta
	if w.n < 0 {
		panic("sim: negative WaitGroup counter")
	}
}

// Done decrements the counter and wakes waiters at zero.
func (w *WaitGroup) Done(e *Engine) {
	w.n--
	if w.n < 0 {
		panic("sim: negative WaitGroup counter")
	}
	if w.n == 0 {
		w.cond.Broadcast(e)
	}
}

// Count returns the current counter value.
func (w *WaitGroup) Count() int { return w.n }

// Wait parks until the counter reaches zero.
func (w *WaitGroup) Wait(p *Proc) {
	for w.n > 0 {
		w.cond.Wait(p)
	}
}

// Semaphore is a counting semaphore with FIFO wake-up.
type Semaphore struct {
	avail int
	cond  Cond
}

// NewSemaphore returns a semaphore with n initial permits.
func NewSemaphore(n int) *Semaphore { return &Semaphore{avail: n} }

// Acquire takes one permit, blocking while none are available.
func (s *Semaphore) Acquire(p *Proc) {
	for s.avail <= 0 {
		s.cond.Wait(p)
	}
	s.avail--
}

// TryAcquire takes a permit without blocking; reports success.
func (s *Semaphore) TryAcquire() bool {
	if s.avail <= 0 {
		return false
	}
	s.avail--
	return true
}

// Release returns one permit and wakes a waiter.
func (s *Semaphore) Release(e *Engine) {
	s.avail++
	s.cond.Signal(e)
}

// Available returns the number of free permits.
func (s *Semaphore) Available() int { return s.avail }
