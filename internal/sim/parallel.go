package sim

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
)

// This file is the component-parallel execution layer: a ShardSet runs a set
// of independent Engines — one per connected component of the simulated
// system — concurrently, with conservative synchronization only at known
// coupling timestamps.
//
// The model is conservative parallel DES in its simplest sound form. Each
// shard owns a disjoint slice of simulation state (its own event heap, clock,
// and processes), so between coupling points the shards cannot affect each
// other and may free-run. A Coupling is a virtual-time instant at which some
// globally coordinated change happens (a scripted fabric capacity step, for
// example, replicated into every shard). Before such an instant, every shard
// is advanced with Engine.RunBefore — which executes events strictly below
// the coupling time — and only once ALL shards have aligned does any shard
// process the coupling itself. No shard ever advances past a pending
// coupling's timestamp; Drain enforces that invariant and fails loudly if it
// is ever violated.
//
// Determinism: each shard's event order is exactly the serial engine's order
// for that shard's events (same heap, same (t, seq) tie-break), regardless of
// how the OS schedules the shard goroutines; results are collected by shard
// index. The only cross-shard nondeterminism is wall-clock interleaving,
// which no simulation state depends on.

// Coupling is one synchronization point of a sharded run: an instant of
// virtual time that every shard must reach (exclusively) before any shard
// may proceed through it. The coupled action itself is expected to be
// pre-scheduled on each affected shard's engine (an Engine.At timer at the
// coupling time); Apply is an optional hook run at the barrier.
type Coupling struct {
	// At is the coupling's virtual-time instant.
	At Time
	// Apply, when non-nil, is called once per shard (in shard-index order,
	// from the coordinating goroutine) after every shard has aligned
	// strictly before At and before any shard advances to it.
	Apply func(shard int)
}

// ShardSet drives a set of per-component engines through a horizon with
// conservative synchronization at coupling timestamps.
//
// Shard work is executed by a pool of persistent workers that live for the
// duration of one Drain: they are spawned once at the first parallel round
// and then parked at a reusable barrier between rounds, so a run with one
// coupling per fabric step pays goroutine creation once, not once per
// barrier. Error scratch is pooled on the set for the same reason.
type ShardSet struct {
	engines []*Engine
	workers int
	errs    []error // pooled per-drain scratch

	// Persistent worker pool. Guarded by mu; work parks workers between
	// rounds, idle parks the coordinator until the round completes.
	mu      sync.Mutex
	work    sync.Cond
	idle    sync.Cond
	round   uint64
	stopped bool
	fn      func(int)
	n       int
	next    atomic.Int64
	running int
	spawned int
	wg      sync.WaitGroup
}

// NewShardSet returns a shard set over the given engines. workers bounds the
// number of shards executing concurrently; values <= 0 use GOMAXPROCS.
func NewShardSet(engines []*Engine, workers int) *ShardSet {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	s := &ShardSet{engines: engines, workers: workers}
	s.work.L = &s.mu
	s.idle.L = &s.mu
	return s
}

// Shards returns the number of shards.
func (s *ShardSet) Shards() int { return len(s.engines) }

// each runs fn(i) for every shard index, at most s.workers concurrently, and
// returns when all have finished. Shard indices are claimed from a shared
// counter, so completion order is nondeterministic but coverage is total.
// Parallel rounds are dispatched to the persistent pool, started lazily.
func (s *ShardSet) each(fn func(i int)) {
	n := len(s.engines)
	w := s.workers
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	if s.spawned == 0 {
		s.startPool(w)
	}
	s.runRound(fn, n)
}

// startPool spawns w persistent workers parked at the round barrier.
func (s *ShardSet) startPool(w int) {
	s.stopped = false
	s.spawned = w
	s.wg.Add(w)
	for k := 0; k < w; k++ {
		go s.worker()
	}
}

// worker is the persistent pool loop: wait for a round (or stop), claim
// shard indices from the shared counter until exhausted, report completion.
func (s *ShardSet) worker() {
	defer s.wg.Done()
	var seen uint64
	for {
		s.mu.Lock()
		for !s.stopped && s.round == seen {
			s.work.Wait()
		}
		if s.stopped {
			s.mu.Unlock()
			return
		}
		seen = s.round
		fn, n := s.fn, s.n
		s.mu.Unlock()
		for {
			i := int(s.next.Add(1))
			if i >= n {
				break
			}
			fn(i)
		}
		s.mu.Lock()
		s.running--
		if s.running == 0 {
			s.idle.Signal()
		}
		s.mu.Unlock()
	}
}

// runRound publishes one round of work to the pool and waits for it to
// complete. The coordinator never mutates round state while workers run.
func (s *ShardSet) runRound(fn func(int), n int) {
	s.mu.Lock()
	s.fn, s.n = fn, n
	s.next.Store(-1)
	s.running = s.spawned
	s.round++
	s.work.Broadcast()
	for s.running > 0 {
		s.idle.Wait()
	}
	s.fn = nil
	s.mu.Unlock()
}

// stopPool retires the persistent workers and joins them.
func (s *ShardSet) stopPool() {
	if s.spawned == 0 {
		return
	}
	s.mu.Lock()
	s.stopped = true
	s.work.Broadcast()
	s.mu.Unlock()
	s.wg.Wait()
	s.spawned = 0
}

// Drain advances every shard to the horizon, synchronizing at each coupling:
// all shards run strictly up to the coupling time, the barrier is joined,
// Apply hooks run, and only then does any shard proceed. After the last
// coupling the shards drain independently to the horizon. Couplings must be
// sorted by ascending At.
//
// The error is the deterministic merge of the per-shard outcomes: ErrStopped
// if any shard was stopped, else a single *DeadlineError summing the stuck
// work across shards (Next is the earliest pending event anywhere), else nil.
func (s *ShardSet) Drain(couplings []Coupling, horizon Time) error {
	defer s.stopPool()
	if cap(s.errs) < len(s.engines) {
		s.errs = make([]error, len(s.engines))
	}
	errs := s.errs[:len(s.engines)]
	for i := range errs {
		errs[i] = nil
	}
	for _, c := range couplings {
		if c.At > horizon {
			break
		}
		at := c.At
		s.each(func(i int) { errs[i] = s.engines[i].RunBefore(at) })
		if err := firstError(errs); err != nil {
			return err
		}
		// Barrier invariant: no shard's clock may have reached the pending
		// coupling's timestamp. RunBefore makes this structurally true; the
		// check makes a future regression loud instead of silently racy.
		for i, e := range s.engines {
			if e.Now() >= at {
				return fmt.Errorf("sim: shard %d advanced to %v past pending coupling at %v", i, e.Now(), at)
			}
		}
		if c.Apply != nil {
			for i := range s.engines {
				c.Apply(i)
			}
		}
	}
	s.each(func(i int) { errs[i] = s.engines[i].Drain(horizon) })
	return s.mergeDrain(errs, horizon)
}

// firstError returns the first non-nil error by shard index.
func firstError(errs []error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// mergeDrain folds per-shard Drain outcomes into one deterministic error:
// any non-deadline error wins (lowest shard index), otherwise the deadline
// errors are merged with the earliest Next and summed Pending/Live.
func (s *ShardSet) mergeDrain(errs []error, horizon Time) error {
	merged := &DeadlineError{Horizon: horizon, Next: math.Inf(1)}
	hit := false
	for _, err := range errs {
		if err == nil {
			continue
		}
		de, ok := err.(*DeadlineError)
		if !ok {
			return err
		}
		hit = true
		if de.Next < merged.Next {
			merged.Next = de.Next
		}
		merged.Pending += de.Pending
		merged.Live += de.Live
	}
	if !hit {
		return nil
	}
	return merged
}

// Shutdown releases every shard's remaining process goroutines (engines are
// shut down in shard order; each engine's own kill order is its spawn order).
func (s *ShardSet) Shutdown() {
	for _, e := range s.engines {
		e.Shutdown()
	}
}
