package sim

import (
	"errors"
	"math"
	"math/rand"
	"runtime"
	"testing"
	"time"
)

// TestRunBeforeStrict pins the strictly-less-than window: events at the
// limit stay queued, events below it fire, and the clock never reaches the
// limit.
func TestRunBeforeStrict(t *testing.T) {
	e := New()
	var fired []Time
	for _, at := range []Time{1, 2, 3, 3, 4} {
		at := at
		e.At(at, func() { fired = append(fired, at) })
	}
	if err := e.RunBefore(3); err != nil {
		t.Fatal(err)
	}
	if len(fired) != 2 || fired[0] != 1 || fired[1] != 2 {
		t.Fatalf("RunBefore(3) fired %v, want [1 2]", fired)
	}
	if e.Now() >= 3 {
		t.Fatalf("clock %v advanced to the limit", e.Now())
	}
	if e.PendingEvents() != 3 {
		t.Fatalf("pending %d, want 3", e.PendingEvents())
	}
	if err := e.Drain(10); err != nil {
		t.Fatal(err)
	}
	if len(fired) != 5 {
		t.Fatalf("drain fired %d events, want 5", len(fired))
	}
}

// TestShardSetDeterministicMerge runs the same sharded workload serially and
// concurrently and requires identical per-shard event traces: the OS-level
// interleaving of shard goroutines must be invisible in simulation state.
func TestShardSetDeterministicMerge(t *testing.T) {
	build := func() ([]*Engine, [][]Time) {
		const shards = 8
		engines := make([]*Engine, shards)
		traces := make([][]Time, shards)
		for i := range engines {
			e := New()
			engines[i] = e
			idx := i
			// A chain of self-rescheduling events at shard-specific phase.
			var step func()
			n := 0
			step = func() {
				traces[idx] = append(traces[idx], e.Now())
				n++
				if n < 50 {
					e.After(0.1+float64(idx)*0.01, step)
				}
			}
			e.After(float64(idx)*0.001, step)
		}
		return engines, traces
	}

	e1, t1 := build()
	if err := NewShardSet(e1, 1).Drain(nil, 100); err != nil {
		t.Fatal(err)
	}
	e2, t2 := build()
	if err := NewShardSet(e2, 8).Drain(nil, 100); err != nil {
		t.Fatal(err)
	}
	for i := range t1 {
		if len(t1[i]) != len(t2[i]) {
			t.Fatalf("shard %d: %d vs %d events", i, len(t1[i]), len(t2[i]))
		}
		for j := range t1[i] {
			if t1[i][j] != t2[i][j] {
				t.Fatalf("shard %d event %d: %v vs %v", i, j, t1[i][j], t2[i][j])
			}
		}
	}
}

// TestShardSetCouplingBarrier is the conservative-synchronization property:
// across randomized shard workloads and coupling schedules, at every barrier
// every shard has executed exactly the events strictly before the coupling
// time and none at or after it — no shard ever advances past a pending
// coupling's timestamp.
func TestShardSetCouplingBarrier(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		shards := 2 + rng.Intn(6)
		engines := make([]*Engine, shards)
		// maxFired[i] tracks the latest event time shard i has executed;
		// written only from shard i's engine (single goroutine per shard).
		maxFired := make([]Time, shards)
		for i := range engines {
			e := New()
			engines[i] = e
			idx := i
			events := 20 + rng.Intn(100)
			for k := 0; k < events; k++ {
				at := rng.Float64() * 50
				e.At(at, func() { maxFired[idx] = e.Now() })
			}
		}
		var couplings []Coupling
		var violations []string
		last := 0.0
		for len(couplings) < 1+rng.Intn(5) {
			last += 1 + rng.Float64()*15
			at := last
			couplings = append(couplings, Coupling{At: at, Apply: func(shard int) {
				// At the barrier: the shard must have fired everything
				// strictly below the coupling and nothing at or past it.
				if maxFired[shard] >= at {
					violations = append(violations, "shard past coupling")
				}
				if next := engines[shard].nextEventTime(); next < at {
					violations = append(violations, "shard lagging unfired pre-coupling event")
				}
			}})
		}
		if err := NewShardSet(engines, 4).Drain(couplings, 60); err != nil {
			var de *DeadlineError
			if !errors.As(err, &de) {
				t.Fatalf("seed %d: %v", seed, err)
			}
		}
		if len(violations) > 0 {
			t.Fatalf("seed %d: coupling invariant violated: %v", seed, violations)
		}
	}
}

// nextEventTime returns the earliest queued event's time, +Inf when empty
// (test helper; the barrier hooks run with every shard quiescent).
func (e *Engine) nextEventTime() Time {
	if len(e.queue) == 0 {
		return math.Inf(1)
	}
	return e.queue[0].t
}

// TestShardSetMergedDeadline pins the deterministic merge of per-shard
// horizon overruns: earliest Next wins, Pending and Live sum.
func TestShardSetMergedDeadline(t *testing.T) {
	engines := []*Engine{New(), New(), New()}
	engines[0].At(5, func() {}) // completes before horizon
	engines[1].At(20, func() {})
	engines[1].At(30, func() {})
	engines[2].At(15, func() {})
	err := NewShardSet(engines, 2).Drain(nil, 10)
	var de *DeadlineError
	if !errors.As(err, &de) {
		t.Fatalf("want *DeadlineError, got %v", err)
	}
	if de.Next != 15 || de.Pending != 3 || de.Horizon != 10 {
		t.Fatalf("merged deadline %+v, want Next=15 Pending=3 Horizon=10", de)
	}
}

// TestShardSetPoolBarrierStress hammers the persistent worker pool: many
// shards, hundreds of couplings (each a pool round), and repeated Drain
// calls on the same set — under -race this exercises the reusable barrier's
// publication of fn/n/next across rounds and the stop/restart transition.
// It also pins the no-leak property: the pool's workers are joined before
// Drain returns, so goroutine count settles back to its pre-Drain baseline.
func TestShardSetPoolBarrierStress(t *testing.T) {
	const shards = 12
	engines := make([]*Engine, shards)
	counts := make([]int, shards)
	for i := range engines {
		e := New()
		engines[i] = e
		idx := i
		for k := 0; k < 400; k++ {
			e.At(Time(k)*0.25+Time(idx)*0.001, func() { counts[idx]++ })
		}
	}
	var couplings []Coupling
	applied := 0
	for k := 1; k <= 300; k++ {
		couplings = append(couplings, Coupling{At: Time(k) * 0.33, Apply: func(int) { applied++ }})
	}
	baseline := runtime.NumGoroutine()
	set := NewShardSet(engines, 8)
	// Two Drains on one set: the pool must restart cleanly after stopPool.
	// The first horizon lands mid-stream, so a merged DeadlineError (events
	// still pending) is the expected outcome; the second Drain finishes them.
	err := set.Drain(couplings[:150], 49.5)
	var de *DeadlineError
	if !errors.As(err, &de) {
		t.Fatalf("first Drain: want *DeadlineError, got %v", err)
	}
	if err := set.Drain(couplings[150:], 1000); err != nil {
		t.Fatal(err)
	}
	if applied != 300*shards {
		t.Fatalf("Apply ran %d times, want %d", applied, 300*shards)
	}
	for i, n := range counts {
		if n != 400 {
			t.Fatalf("shard %d fired %d events, want 400", i, n)
		}
	}
	// Workers are joined at Drain exit; allow brief settling for exiting
	// goroutines whose wg.Done has run but whose stacks haven't unwound.
	for try := 0; try < 100; try++ {
		if runtime.NumGoroutine() <= baseline {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if g := runtime.NumGoroutine(); g > baseline {
		t.Fatalf("goroutines %d > baseline %d after Drain: pool leaked", g, baseline)
	}
}

// TestShardSetProcs runs real processes (goroutine-backed) across shards
// concurrently under the race detector: per-shard Sleep chains must finish
// with the per-shard clocks at their own last event.
func TestShardSetProcs(t *testing.T) {
	const shards = 6
	engines := make([]*Engine, shards)
	ticks := make([]int, shards)
	for i := range engines {
		e := New()
		engines[i] = e
		idx := i
		e.Go("worker", func(p *Proc) {
			for k := 0; k < 30; k++ {
				p.Sleep(0.5 + float64(idx)*0.1)
				ticks[idx]++
			}
		})
	}
	set := NewShardSet(engines, shards)
	if err := set.Drain([]Coupling{{At: 3.14}, {At: 7.5}}, 1000); err != nil {
		t.Fatal(err)
	}
	set.Shutdown()
	for i, n := range ticks {
		if n != 30 {
			t.Fatalf("shard %d ran %d ticks, want 30", i, n)
		}
		want := (0.5 + float64(i)*0.1) * 30
		if math.Abs(engines[i].Now()-want) > 1e-9 {
			t.Fatalf("shard %d clock %v, want %v", i, engines[i].Now(), want)
		}
	}
}
