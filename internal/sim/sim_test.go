package sim

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEventOrdering(t *testing.T) {
	e := New()
	var got []int
	e.At(2, func() { got = append(got, 2) })
	e.At(1, func() { got = append(got, 1) })
	e.At(3, func() { got = append(got, 3) })
	e.At(1, func() { got = append(got, 10) }) // same time: scheduling order
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []int{1, 10, 2, 3}
	if len(got) != len(want) {
		t.Fatalf("got %v want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v want %v", got, want)
		}
	}
	if e.Now() != 3 {
		t.Fatalf("clock = %v, want 3", e.Now())
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	e := New()
	e.At(5, func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic scheduling in the past")
			}
		}()
		e.At(1, func() {})
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestTimerCancel(t *testing.T) {
	e := New()
	fired := false
	tm := e.At(1, func() { fired = true })
	if !tm.Cancel() {
		t.Error("first Cancel should report pending")
	}
	if tm.Cancel() {
		t.Error("second Cancel should report not pending")
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Error("canceled timer fired")
	}
}

func TestProcSleep(t *testing.T) {
	e := New()
	var times []Time
	e.Go("sleeper", func(p *Proc) {
		times = append(times, p.Now())
		p.Sleep(1.5)
		times = append(times, p.Now())
		p.Sleep(0.5)
		times = append(times, p.Now())
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []Time{0, 1.5, 2}
	for i := range want {
		if times[i] != want[i] {
			t.Fatalf("times = %v, want %v", times, want)
		}
	}
	if e.LiveProcs() != 0 {
		t.Fatalf("LiveProcs = %d, want 0", e.LiveProcs())
	}
}

func TestInterleavingDeterminism(t *testing.T) {
	run := func() []string {
		e := New()
		var log []string
		for _, name := range []string{"a", "b", "c"} {
			name := name
			e.Go(name, func(p *Proc) {
				for i := 0; i < 3; i++ {
					log = append(log, name)
					p.Sleep(1)
				}
			})
		}
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return log
	}
	first := run()
	for i := 0; i < 5; i++ {
		again := run()
		for j := range first {
			if first[j] != again[j] {
				t.Fatalf("run %d diverged at %d: %v vs %v", i, j, first, again)
			}
		}
	}
}

func TestCondFIFO(t *testing.T) {
	e := New()
	var c Cond
	var woke []string
	ready := 0
	for _, name := range []string{"w1", "w2", "w3"} {
		name := name
		e.Go(name, func(p *Proc) {
			ready++
			c.Wait(p)
			woke = append(woke, name)
		})
	}
	e.Go("signaler", func(p *Proc) {
		for ready < 3 {
			p.Yield()
		}
		c.Signal(e)
		p.Sleep(1)
		c.Broadcast(e)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(woke) != 3 || woke[0] != "w1" {
		t.Fatalf("wake order = %v", woke)
	}
}

func TestGate(t *testing.T) {
	e := New()
	var g Gate
	passed := 0
	for i := 0; i < 3; i++ {
		e.Go("waiter", func(p *Proc) {
			g.Wait(p)
			passed++
		})
	}
	e.Go("opener", func(p *Proc) {
		p.Sleep(2)
		g.Open(e)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if passed != 3 {
		t.Fatalf("passed = %d, want 3", passed)
	}
	// After opening, Wait must not block.
	e2 := New()
	var g2 Gate
	g2.Open(e2)
	done := false
	e2.Go("late", func(p *Proc) {
		g2.Wait(p)
		done = true
	})
	if err := e2.Run(); err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("late waiter blocked on open gate")
	}
}

func TestWaitGroup(t *testing.T) {
	e := New()
	var wg WaitGroup
	wg.Add(3)
	finished := Time(-1)
	for i := 1; i <= 3; i++ {
		d := Duration(i)
		e.Go("worker", func(p *Proc) {
			p.Sleep(d)
			wg.Done(e)
		})
	}
	e.Go("waiter", func(p *Proc) {
		wg.Wait(p)
		finished = p.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if finished != 3 {
		t.Fatalf("waiter finished at %v, want 3", finished)
	}
}

func TestSemaphore(t *testing.T) {
	e := New()
	s := NewSemaphore(2)
	concurrent, maxConcurrent := 0, 0
	for i := 0; i < 5; i++ {
		e.Go("user", func(p *Proc) {
			s.Acquire(p)
			concurrent++
			if concurrent > maxConcurrent {
				maxConcurrent = concurrent
			}
			p.Sleep(1)
			concurrent--
			s.Release(e)
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if maxConcurrent != 2 {
		t.Fatalf("maxConcurrent = %d, want 2", maxConcurrent)
	}
	if s.Available() != 2 {
		t.Fatalf("Available = %d, want 2", s.Available())
	}
}

func TestShutdownReleasesBlockedProcs(t *testing.T) {
	e := New()
	var c Cond
	e.Go("stuck", func(p *Proc) { c.Wait(p) })
	e.Go("stuck2", func(p *Proc) { p.Sleep(1); c.Wait(p) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if e.LiveProcs() != 2 {
		t.Fatalf("LiveProcs before shutdown = %d, want 2", e.LiveProcs())
	}
	e.Shutdown()
	if e.LiveProcs() != 0 {
		t.Fatalf("LiveProcs after shutdown = %d, want 0", e.LiveProcs())
	}
}

func TestStopFromProcess(t *testing.T) {
	e := New()
	reached := false
	e.Go("stopper", func(p *Proc) {
		p.Sleep(1)
		e.Stop()
	})
	e.Go("other", func(p *Proc) {
		p.Sleep(100)
		reached = true
	})
	err := e.Run()
	if err != ErrStopped {
		t.Fatalf("err = %v, want ErrStopped", err)
	}
	if reached {
		t.Error("event after Stop ran")
	}
	if e.Now() != 1 {
		t.Fatalf("clock = %v, want 1", e.Now())
	}
}

func TestRunUntil(t *testing.T) {
	e := New()
	count := 0
	for i := 1; i <= 10; i++ {
		e.At(Time(i), func() { count++ })
	}
	if err := e.RunUntil(5); err != nil {
		t.Fatal(err)
	}
	if count != 5 {
		t.Fatalf("count = %d, want 5", count)
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if count != 10 {
		t.Fatalf("count = %d, want 10", count)
	}
}

// TestClockMonotonic is a property test: for any random schedule of nested
// events and sleeps, observed time never decreases.
func TestClockMonotonic(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		e := New()
		last := Time(-1)
		ok := true
		var observe func()
		observe = func() {
			if e.Now() < last {
				ok = false
			}
			last = e.Now()
			if rng.Intn(3) == 0 {
				e.After(rng.Float64(), observe)
			}
		}
		for i := 0; i < int(n%20)+1; i++ {
			e.At(rng.Float64()*10, observe)
		}
		if err := e.Run(); err != nil {
			return false
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestManyProcs exercises the dispatcher with a large number of processes to
// catch goroutine handoff bugs.
func TestManyProcs(t *testing.T) {
	e := New()
	total := 0
	for i := 0; i < 500; i++ {
		e.Go("p", func(p *Proc) {
			for j := 0; j < 10; j++ {
				p.Sleep(0.1)
			}
			total++
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if total != 500 {
		t.Fatalf("total = %d, want 500", total)
	}
}

func TestCondWaitFor(t *testing.T) {
	e := New()
	var c Cond
	x := 0
	doneAt := Time(-1)
	e.Go("waiter", func(p *Proc) {
		c.WaitFor(p, func() bool { return x >= 3 })
		doneAt = p.Now()
	})
	e.Go("incr", func(p *Proc) {
		for i := 0; i < 3; i++ {
			p.Sleep(1)
			x++
			c.Broadcast(e)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if doneAt != 3 {
		t.Fatalf("doneAt = %v, want 3", doneAt)
	}
}
