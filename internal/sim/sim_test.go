package sim

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEventOrdering(t *testing.T) {
	e := New()
	var got []int
	e.At(2, func() { got = append(got, 2) })
	e.At(1, func() { got = append(got, 1) })
	e.At(3, func() { got = append(got, 3) })
	e.At(1, func() { got = append(got, 10) }) // same time: scheduling order
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []int{1, 10, 2, 3}
	if len(got) != len(want) {
		t.Fatalf("got %v want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v want %v", got, want)
		}
	}
	if e.Now() != 3 {
		t.Fatalf("clock = %v, want 3", e.Now())
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	e := New()
	e.At(5, func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic scheduling in the past")
			}
		}()
		e.At(1, func() {})
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestTimerCancel(t *testing.T) {
	e := New()
	fired := false
	tm := e.At(1, func() { fired = true })
	if !tm.Cancel() {
		t.Error("first Cancel should report pending")
	}
	if tm.Cancel() {
		t.Error("second Cancel should report not pending")
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Error("canceled timer fired")
	}
}

func TestProcSleep(t *testing.T) {
	e := New()
	var times []Time
	e.Go("sleeper", func(p *Proc) {
		times = append(times, p.Now())
		p.Sleep(1.5)
		times = append(times, p.Now())
		p.Sleep(0.5)
		times = append(times, p.Now())
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []Time{0, 1.5, 2}
	for i := range want {
		if times[i] != want[i] {
			t.Fatalf("times = %v, want %v", times, want)
		}
	}
	if e.LiveProcs() != 0 {
		t.Fatalf("LiveProcs = %d, want 0", e.LiveProcs())
	}
}

func TestInterleavingDeterminism(t *testing.T) {
	run := func() []string {
		e := New()
		var log []string
		for _, name := range []string{"a", "b", "c"} {
			name := name
			e.Go(name, func(p *Proc) {
				for i := 0; i < 3; i++ {
					log = append(log, name)
					p.Sleep(1)
				}
			})
		}
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return log
	}
	first := run()
	for i := 0; i < 5; i++ {
		again := run()
		for j := range first {
			if first[j] != again[j] {
				t.Fatalf("run %d diverged at %d: %v vs %v", i, j, first, again)
			}
		}
	}
}

func TestCondFIFO(t *testing.T) {
	e := New()
	var c Cond
	var woke []string
	ready := 0
	for _, name := range []string{"w1", "w2", "w3"} {
		name := name
		e.Go(name, func(p *Proc) {
			ready++
			c.Wait(p)
			woke = append(woke, name)
		})
	}
	e.Go("signaler", func(p *Proc) {
		for ready < 3 {
			p.Yield()
		}
		c.Signal(e)
		p.Sleep(1)
		c.Broadcast(e)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(woke) != 3 || woke[0] != "w1" {
		t.Fatalf("wake order = %v", woke)
	}
}

func TestGate(t *testing.T) {
	e := New()
	var g Gate
	passed := 0
	for i := 0; i < 3; i++ {
		e.Go("waiter", func(p *Proc) {
			g.Wait(p)
			passed++
		})
	}
	e.Go("opener", func(p *Proc) {
		p.Sleep(2)
		g.Open(e)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if passed != 3 {
		t.Fatalf("passed = %d, want 3", passed)
	}
	// After opening, Wait must not block.
	e2 := New()
	var g2 Gate
	g2.Open(e2)
	done := false
	e2.Go("late", func(p *Proc) {
		g2.Wait(p)
		done = true
	})
	if err := e2.Run(); err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("late waiter blocked on open gate")
	}
}

func TestWaitGroup(t *testing.T) {
	e := New()
	var wg WaitGroup
	wg.Add(3)
	finished := Time(-1)
	for i := 1; i <= 3; i++ {
		d := Duration(i)
		e.Go("worker", func(p *Proc) {
			p.Sleep(d)
			wg.Done(e)
		})
	}
	e.Go("waiter", func(p *Proc) {
		wg.Wait(p)
		finished = p.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if finished != 3 {
		t.Fatalf("waiter finished at %v, want 3", finished)
	}
}

func TestSemaphore(t *testing.T) {
	e := New()
	s := NewSemaphore(2)
	concurrent, maxConcurrent := 0, 0
	for i := 0; i < 5; i++ {
		e.Go("user", func(p *Proc) {
			s.Acquire(p)
			concurrent++
			if concurrent > maxConcurrent {
				maxConcurrent = concurrent
			}
			p.Sleep(1)
			concurrent--
			s.Release(e)
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if maxConcurrent != 2 {
		t.Fatalf("maxConcurrent = %d, want 2", maxConcurrent)
	}
	if s.Available() != 2 {
		t.Fatalf("Available = %d, want 2", s.Available())
	}
}

func TestShutdownReleasesBlockedProcs(t *testing.T) {
	e := New()
	var c Cond
	e.Go("stuck", func(p *Proc) { c.Wait(p) })
	e.Go("stuck2", func(p *Proc) { p.Sleep(1); c.Wait(p) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if e.LiveProcs() != 2 {
		t.Fatalf("LiveProcs before shutdown = %d, want 2", e.LiveProcs())
	}
	e.Shutdown()
	if e.LiveProcs() != 0 {
		t.Fatalf("LiveProcs after shutdown = %d, want 0", e.LiveProcs())
	}
}

func TestStopFromProcess(t *testing.T) {
	e := New()
	reached := false
	e.Go("stopper", func(p *Proc) {
		p.Sleep(1)
		e.Stop()
	})
	e.Go("other", func(p *Proc) {
		p.Sleep(100)
		reached = true
	})
	err := e.Run()
	if !errors.Is(err, ErrStopped) {
		t.Fatalf("err = %v, want ErrStopped", err)
	}
	if reached {
		t.Error("event after Stop ran")
	}
	if e.Now() != 1 {
		t.Fatalf("clock = %v, want 1", e.Now())
	}
}

func TestRunUntil(t *testing.T) {
	e := New()
	count := 0
	for i := 1; i <= 10; i++ {
		e.At(Time(i), func() { count++ })
	}
	if err := e.RunUntil(5); err != nil {
		t.Fatal(err)
	}
	if count != 5 {
		t.Fatalf("count = %d, want 5", count)
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if count != 10 {
		t.Fatalf("count = %d, want 10", count)
	}
}

// TestClockMonotonic is a property test: for any random schedule of nested
// events and sleeps, observed time never decreases.
func TestClockMonotonic(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		e := New()
		last := Time(-1)
		ok := true
		var observe func()
		observe = func() {
			if e.Now() < last {
				ok = false
			}
			last = e.Now()
			if rng.Intn(3) == 0 {
				e.After(rng.Float64(), observe)
			}
		}
		for i := 0; i < int(n%20)+1; i++ {
			e.At(rng.Float64()*10, observe)
		}
		if err := e.Run(); err != nil {
			return false
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestManyProcs exercises the dispatcher with a large number of processes to
// catch goroutine handoff bugs.
func TestManyProcs(t *testing.T) {
	e := New()
	total := 0
	for i := 0; i < 500; i++ {
		e.Go("p", func(p *Proc) {
			for j := 0; j < 10; j++ {
				p.Sleep(0.1)
			}
			total++
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if total != 500 {
		t.Fatalf("total = %d, want 500", total)
	}
}

func TestCondWaitFor(t *testing.T) {
	e := New()
	var c Cond
	x := 0
	doneAt := Time(-1)
	e.Go("waiter", func(p *Proc) {
		c.WaitFor(p, func() bool { return x >= 3 })
		doneAt = p.Now()
	})
	e.Go("incr", func(p *Proc) {
		for i := 0; i < 3; i++ {
			p.Sleep(1)
			x++
			c.Broadcast(e)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if doneAt != 3 {
		t.Fatalf("doneAt = %v, want 3", doneAt)
	}
}

// TestCancelRemovesEventEagerly pins the eager-removal contract: canceling a
// timer deletes its event from the queue immediately rather than leaving a
// tombstone until the heap pops it.
func TestCancelRemovesEventEagerly(t *testing.T) {
	e := New()
	var timers []Timer
	for i := 0; i < 10; i++ {
		d := Duration(i + 1)
		timers = append(timers, e.After(d, func() {}))
	}
	if e.PendingEvents() != 10 {
		t.Fatalf("PendingEvents = %d, want 10", e.PendingEvents())
	}
	// Cancel interior, first, and last elements; the count must drop at once.
	for i, idx := range []int{4, 0, 9, 7} {
		if !timers[idx].Cancel() {
			t.Fatalf("Cancel %d reported not pending", idx)
		}
		if got := e.PendingEvents(); got != 10-(i+1) {
			t.Fatalf("after cancel %d: PendingEvents = %d, want %d", idx, got, 10-(i+1))
		}
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if e.PendingEvents() != 0 {
		t.Fatalf("PendingEvents after run = %d, want 0", e.PendingEvents())
	}
}

// TestTimerStaleHandle: a Timer whose event already fired (and whose record
// may have been recycled into a new event) must never cancel anything.
func TestTimerStaleHandle(t *testing.T) {
	e := New()
	firstFired, secondFired := false, false
	tm := e.At(1, func() { firstFired = true })
	if err := e.RunUntil(1); err != nil {
		t.Fatal(err)
	}
	if !firstFired {
		t.Fatal("first timer did not fire")
	}
	// This reuses the pooled record of the fired event.
	e.At(2, func() { secondFired = true })
	if tm.Cancel() {
		t.Fatal("stale handle canceled a recycled event")
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !secondFired {
		t.Fatal("recycled event was suppressed by a stale handle")
	}
}

// TestZeroTimerCancel: the zero Timer is inert.
func TestZeroTimerCancel(t *testing.T) {
	var tm Timer
	if tm.Cancel() {
		t.Fatal("zero Timer reported pending")
	}
}

// TestAfterFireZeroAlloc asserts the headline property of the pooled event
// path: scheduling and firing a timer allocates nothing once the engine's
// buffers are warm.
func TestAfterFireZeroAlloc(t *testing.T) {
	e := New()
	fn := func() {}
	// Warm the event pool and heap slice.
	for i := 0; i < 64; i++ {
		e.After(1, fn)
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(1000, func() {
		e.After(1, fn)
		if !e.Step() {
			t.Fatal("no event to fire")
		}
	})
	if allocs != 0 {
		t.Fatalf("After+fire allocates %v/op, want 0", allocs)
	}
}

// TestCancelZeroAlloc: schedule+cancel must also be allocation-free.
func TestCancelZeroAlloc(t *testing.T) {
	e := New()
	fn := func() {}
	for i := 0; i < 64; i++ {
		e.After(1, fn)
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(1000, func() {
		tm := e.After(1, fn)
		if !tm.Cancel() {
			t.Fatal("cancel failed")
		}
	})
	if allocs != 0 {
		t.Fatalf("After+Cancel allocates %v/op, want 0", allocs)
	}
}

// TestCondInterleavedWaitSignal covers the head-indexed ring under
// interleaved Wait/Signal traffic: wake-ups must stay strictly FIFO even as
// the queue drains and refills across the compaction boundary.
func TestCondInterleavedWaitSignal(t *testing.T) {
	e := New()
	var c Cond
	var woke []int
	const n = 200 // several compaction windows
	for i := 0; i < n; i++ {
		i := i
		e.Go("w", func(p *Proc) {
			p.Sleep(Duration(i)) // arrive one at a time
			c.Wait(p)
			woke = append(woke, i)
		})
	}
	e.Go("signaler", func(p *Proc) {
		p.Sleep(0.5)
		for i := 0; i < n; i++ {
			// Alternate one and two signals per tick so the ring's head
			// chases a moving tail; extra signals on an empty queue no-op.
			c.Signal(e)
			if i%2 == 1 {
				c.Signal(e)
			}
			p.Sleep(1.5)
		}
		for i := 0; i < n; i++ {
			c.Signal(e)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(woke) != n {
		t.Fatalf("woke %d waiters, want %d", len(woke), n)
	}
	for i, v := range woke {
		if v != i {
			t.Fatalf("wake order broken at %d: got %v", i, woke[:i+1])
		}
	}
	if c.Waiting() != 0 {
		t.Fatalf("Waiting = %d, want 0", c.Waiting())
	}
}

// TestCondSignalBroadcastMix: Broadcast after partial Signal drains must wake
// the survivors in FIFO order with a clean ring reset.
func TestCondSignalBroadcastMix(t *testing.T) {
	e := New()
	var c Cond
	var woke []int
	for i := 0; i < 6; i++ {
		i := i
		e.Go("w", func(p *Proc) {
			c.Wait(p)
			woke = append(woke, i)
		})
	}
	e.Go("driver", func(p *Proc) {
		p.Sleep(1)
		c.Signal(e)
		c.Signal(e)
		p.Sleep(1)
		c.Broadcast(e)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range woke {
		if v != i {
			t.Fatalf("wake order = %v", woke)
		}
	}
	if len(woke) != 6 {
		t.Fatalf("woke = %v", woke)
	}
}
