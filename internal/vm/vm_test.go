package vm

import (
	"testing"

	"github.com/hybridmig/hybridmig/internal/fabric"
	"github.com/hybridmig/hybridmig/internal/params"
	"github.com/hybridmig/hybridmig/internal/sim"
)

func newTestVM(eng *sim.Engine) *VM {
	tb := params.DefaultTestbed()
	tb.NetLatency = 0
	tb.DiskLatency = 0
	c := fabric.NewCluster(eng, 1, tb)
	mem := NewMemory(1000, 10) // 100 groups
	return New(eng, "vm0", c.Nodes[0], mem, 1)
}

func TestAllocAndNonZero(t *testing.T) {
	m := NewMemory(1000, 10)
	r1 := m.Alloc(250, true)
	if r1.Groups() != 25 {
		t.Fatalf("groups = %d, want 25", r1.Groups())
	}
	if m.NonZeroBytes() != 250 {
		t.Fatalf("nonzero = %d, want 250", m.NonZeroBytes())
	}
	r2 := m.Alloc(100, false)
	if r2.First != 25 {
		t.Fatalf("second region starts at %d, want 25", r2.First)
	}
	if m.NonZeroBytes() != 250 {
		t.Fatal("untouched alloc marked non-zero")
	}
}

func TestAllocExhaustionPanics(t *testing.T) {
	m := NewMemory(100, 10)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m.Alloc(200, false)
}

func TestDirtySeqWraps(t *testing.T) {
	m := NewMemory(1000, 10)
	r := m.Alloc(50, false) // 5 groups
	cur := m.DirtySeq(r, 30, r.First)
	if cur != r.First+3 {
		t.Fatalf("cursor = %d, want %d", cur, r.First+3)
	}
	if m.DirtyBytes(0) != 30 {
		t.Fatalf("dirty = %d, want 30", m.DirtyBytes(0))
	}
	// Dirtying more than the region saturates it.
	m.DirtySeq(r, 1000, cur)
	if m.DirtyBytes(0) != 50 {
		t.Fatalf("dirty = %d, want region size 50", m.DirtyBytes(0))
	}
}

func TestDirtierRate(t *testing.T) {
	eng := sim.New()
	m := NewMemory(10000, 10)
	r := m.Alloc(5000, false) // 500 groups
	d := m.NewDirtier(r, 100) // 100 B/s
	d.SetActive(true, 0)
	eng.At(3, func() {
		if got := m.DirtyBytes(3); got != 300 {
			t.Errorf("dirty after 3s = %d, want 300", got)
		}
	})
	eng.At(5, func() {
		// CollectDirty drains the set.
		if got := m.CollectDirty(5); got != 500 {
			t.Errorf("collect = %d, want 500", got)
		}
		if got := m.DirtyBytes(5); got != 0 {
			t.Errorf("dirty after collect = %d, want 0", got)
		}
	})
	eng.At(6, func() {
		// One more second of dirtying after the collection.
		if got := m.DirtyBytes(6); got != 100 {
			t.Errorf("dirty = %d, want 100", got)
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestDirtierWorkingSetBound(t *testing.T) {
	eng := sim.New()
	m := NewMemory(10000, 10)
	r := m.Alloc(100, false)   // 10 groups = 100 bytes of working set
	d := m.NewDirtier(r, 1000) // much faster than the set size
	d.SetActive(true, 0)
	eng.At(10, func() {
		if got := m.DirtyBytes(10); got != 100 {
			t.Errorf("dirty = %d, want working-set bound 100", got)
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestDirtierInactiveNoDirty(t *testing.T) {
	eng := sim.New()
	m := NewMemory(1000, 10)
	r := m.Alloc(500, false)
	d := m.NewDirtier(r, 100)
	d.SetActive(true, 0)
	eng.At(2, func() { d.SetActive(false, 2) })
	eng.At(10, func() {
		if got := m.DirtyBytes(10); got != 200 {
			t.Errorf("dirty = %d, want 200 (only while active)", got)
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestPauseFreezesDirtying(t *testing.T) {
	eng := sim.New()
	v := newTestVM(eng)
	r := v.Mem.Alloc(500, false)
	d := v.Mem.NewDirtier(r, 100)
	d.SetActive(true, 0)
	eng.At(1, func() { v.Pause() })
	eng.At(3, func() { v.Resume() })
	eng.At(5, func() {
		// Active 0-1 and 3-5: 300 bytes.
		if got := v.Mem.DirtyBytes(5); got != 300 {
			t.Errorf("dirty = %d, want 300", got)
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if got := v.TotalDowntime(); got != 2 {
		t.Fatalf("downtime = %v, want 2", got)
	}
	if v.Downtimes() != 1 {
		t.Fatalf("downtimes = %d, want 1", v.Downtimes())
	}
}

func TestExecStretchesOverPause(t *testing.T) {
	eng := sim.New()
	v := newTestVM(eng)
	var doneAt sim.Time
	eng.Go("guest", func(p *sim.Proc) {
		v.Exec(p, 10)
		doneAt = p.Now()
	})
	eng.At(4, func() { v.Pause() })
	eng.At(6, func() { v.Resume() })
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if doneAt != 12 {
		t.Fatalf("Exec finished at %v, want 12 (10 cpu + 2 downtime)", doneAt)
	}
}

func TestExecMultiplePauses(t *testing.T) {
	eng := sim.New()
	v := newTestVM(eng)
	var doneAt sim.Time
	eng.Go("guest", func(p *sim.Proc) {
		v.Exec(p, 10)
		doneAt = p.Now()
	})
	for i := 0; i < 3; i++ {
		at := sim.Time(2 + 3*i)
		eng.At(at, func() { v.Pause() })
		eng.At(at+1, func() { v.Resume() })
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if doneAt != 13 {
		t.Fatalf("Exec finished at %v, want 13 (10 cpu + 3 downtime)", doneAt)
	}
}

func TestCheckPauseBlocksWhilePaused(t *testing.T) {
	eng := sim.New()
	v := newTestVM(eng)
	var passedAt sim.Time
	v.Pause()
	eng.Go("guest", func(p *sim.Proc) {
		v.CheckPause(p)
		passedAt = p.Now()
	})
	eng.At(5, func() { v.Resume() })
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if passedAt != 5 {
		t.Fatalf("passed at %v, want 5", passedAt)
	}
}

func TestMoveTo(t *testing.T) {
	eng := sim.New()
	tb := params.DefaultTestbed()
	c := fabric.NewCluster(eng, 2, tb)
	mem := NewMemory(1000, 10)
	v := New(eng, "vm", c.Nodes[0], mem, 2)
	v.MoveTo(c.Nodes[1])
	if v.Node != c.Nodes[1] {
		t.Fatal("MoveTo did not rehome the VM")
	}
}

func TestCollectDirtyAfterPauseDuringDowntime(t *testing.T) {
	// The hypervisor's final round: pause, then collect. Dirtying between
	// pause and collect must be zero.
	eng := sim.New()
	v := newTestVM(eng)
	r := v.Mem.Alloc(500, false)
	d := v.Mem.NewDirtier(r, 100)
	d.SetActive(true, 0)
	eng.At(2, func() {
		v.Pause()
		if got := v.Mem.CollectDirty(2); got != 200 {
			t.Errorf("collect at pause = %d, want 200", got)
		}
	})
	eng.At(4, func() {
		if got := v.Mem.CollectDirty(4); got != 0 {
			t.Errorf("collect during pause = %d, want 0", got)
		}
		v.Resume()
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
}
