// Package vm models a virtual machine instance: its RAM with dirty-page
// tracking (what pre-copy memory migration operates on), pause/resume
// semantics (downtime), and the attachment point for a virtual disk image.
//
// RAM is tracked at page-group granularity. Workloads register Dirtiers —
// analytic sources that dirty a working-set region at a byte rate while
// active — and the guest page cache marks the memory backing cached file
// data explicitly. The hypervisor snapshots and clears the dirty set once
// per pre-copy round, which is exactly the information QEMU's dirty-page
// log provides.
package vm

import (
	"fmt"

	"github.com/hybridmig/hybridmig/internal/chunk"
	"github.com/hybridmig/hybridmig/internal/fabric"
	"github.com/hybridmig/hybridmig/internal/sim"
)

// DiskImage is the virtual disk seen by the guest. Implementations trap
// reads and writes (the migration manager of package core, the shared-PFS
// image, the hypervisor-managed copy-on-write image of the precopy
// baseline) and charge the corresponding resource time.
type DiskImage interface {
	// Read makes [off, off+length) available to the guest, blocking for
	// disk/network time as needed.
	Read(p *sim.Proc, off, length int64)
	// Write stores [off, off+length), blocking for resource time.
	Write(p *sim.Proc, off, length int64)
	// Sync flushes and, during a migration, hands storage I/O control to
	// the destination (the hypervisor calls it right before transferring
	// control, as the paper's implementation intercepts the sync syscall).
	Sync(p *sim.Proc)
	// Geometry exposes the image chunking.
	Geometry() chunk.Geometry
}

// Region is a contiguous range of memory page groups.
type Region struct {
	First, Last chunk.Idx // inclusive
}

// Groups returns the number of page groups in the region.
func (r Region) Groups() int { return int(r.Last-r.First) + 1 }

// Memory is guest RAM with dirty tracking.
type Memory struct {
	Size      int64
	PageSize  int64
	groups    int
	nonZero   *chunk.Set
	dirty     *chunk.Set
	dirtiers  []*Dirtier
	allocNext chunk.Idx
	paused    bool
}

// NewMemory returns RAM of the given size tracked at pageSize granularity.
func NewMemory(size, pageSize int64) *Memory {
	if size <= 0 || pageSize <= 0 || pageSize > size {
		panic(fmt.Sprintf("vm: invalid memory geometry %d/%d", size, pageSize))
	}
	g := int((size + pageSize - 1) / pageSize)
	return &Memory{
		Size:     size,
		PageSize: pageSize,
		groups:   g,
		nonZero:  chunk.NewSet(g),
		dirty:    chunk.NewSet(g),
	}
}

// Groups returns the number of page groups.
func (m *Memory) Groups() int { return m.groups }

// Alloc reserves a region of the given byte size from the sequential
// allocator (used to lay out OS footprint, page cache, and app working
// sets). The region is marked non-zero immediately if touch is true.
func (m *Memory) Alloc(bytes int64, touch bool) Region {
	n := chunk.Idx((bytes + m.PageSize - 1) / m.PageSize)
	if int(m.allocNext+n) > m.groups {
		panic(fmt.Sprintf("vm: memory allocator exhausted (%d groups requested, %d free)",
			n, m.groups-int(m.allocNext)))
	}
	r := Region{First: m.allocNext, Last: m.allocNext + n - 1}
	m.allocNext += n
	if touch {
		for c := r.First; c <= r.Last; c++ {
			m.nonZero.Add(c)
		}
	}
	return r
}

// DirtySeq marks ceil(bytes/PageSize) groups dirty starting at cursor inside
// region, wrapping cyclically, and returns the advanced cursor. It models a
// writer moving through its working set. Marked pages become non-zero.
func (m *Memory) DirtySeq(r Region, bytes int64, cursor chunk.Idx) chunk.Idx {
	if m.paused || bytes <= 0 {
		return cursor
	}
	n := int((bytes + m.PageSize - 1) / m.PageSize)
	span := r.Groups()
	if n > span {
		n = span
	}
	if cursor < r.First || cursor > r.Last {
		cursor = r.First
	}
	for i := 0; i < n; i++ {
		m.dirty.Add(cursor)
		m.nonZero.Add(cursor)
		cursor++
		if cursor > r.Last {
			cursor = r.First
		}
	}
	return cursor
}

// DirtyMapped marks the memory backing a file-cache byte range dirty using
// a fixed modular mapping from cache offsets to groups within region:
// rewriting the same file bytes re-dirties the same memory, which is what
// lets pre-copy converge when a workload loops over one file.
func (m *Memory) DirtyMapped(r Region, off, length int64) {
	if m.paused || length <= 0 {
		return
	}
	span := chunk.Idx(r.Groups())
	first := chunk.Idx(off / m.PageSize)
	last := chunk.Idx((off + length - 1) / m.PageSize)
	for g := first; g <= last; g++ {
		c := r.First + g%span
		m.dirty.Add(c)
		m.nonZero.Add(c)
	}
}

// NonZeroBytes returns the bytes the hypervisor must move in the first
// pre-copy round (zero pages are elided, as QEMU's is_dup_page does).
func (m *Memory) NonZeroBytes() int64 {
	return int64(m.nonZero.Count()) * m.PageSize
}

// DirtyBytes returns the bytes currently marked dirty, settling dirtiers
// first.
func (m *Memory) DirtyBytes(now sim.Time) int64 {
	m.Settle(now)
	return int64(m.dirty.Count()) * m.PageSize
}

// CollectDirty settles all dirtiers, returns the dirty byte count, and
// clears the dirty set — one pre-copy round's worth of work.
func (m *Memory) CollectDirty(now sim.Time) int64 {
	m.Settle(now)
	b := int64(m.dirty.Count()) * m.PageSize
	m.dirty.Clear()
	return b
}

// Settle advances every dirtier to the given time.
func (m *Memory) Settle(now sim.Time) {
	for _, d := range m.dirtiers {
		d.settle(now)
	}
}

// setPaused freezes (true) or thaws (false) dirtying; thawing resets
// dirtier clocks so paused wall time contributes nothing.
func (m *Memory) setPaused(paused bool, now sim.Time) {
	if !paused {
		for _, d := range m.dirtiers {
			d.last = now
		}
	}
	m.paused = paused
}

// Dirtier dirties a region at Rate bytes/s while active.
type Dirtier struct {
	m      *Memory
	reg    Region
	rate   float64
	active bool
	last   sim.Time
	cursor chunk.Idx
	carry  float64
}

// NewDirtier registers an inactive dirtier over the region.
func (m *Memory) NewDirtier(reg Region, rate float64) *Dirtier {
	d := &Dirtier{m: m, reg: reg, rate: rate, cursor: reg.First}
	m.dirtiers = append(m.dirtiers, d)
	return d
}

// SetActive starts or stops the dirtier at time now.
func (d *Dirtier) SetActive(active bool, now sim.Time) {
	d.settle(now)
	d.active = active
	d.last = now
}

// SetRate changes the dirty rate at time now.
func (d *Dirtier) SetRate(rate float64, now sim.Time) {
	d.settle(now)
	d.rate = rate
}

// settle applies elapsed dirtying to the memory bitmap.
func (d *Dirtier) settle(now sim.Time) {
	dt := now - d.last
	d.last = now
	if !d.active || d.rate <= 0 || dt <= 0 || d.m.paused {
		return
	}
	d.carry += d.rate * dt
	whole := int64(d.carry)
	if whole <= 0 {
		return
	}
	d.carry -= float64(whole)
	d.cursor = d.m.DirtySeq(d.reg, whole, d.cursor)
}

// VM is one virtual machine instance.
type VM struct {
	Eng   *sim.Engine
	Name  string
	Node  *fabric.Node // current host; changes when control transfers
	Mem   *Memory
	Image DiskImage
	Cores int

	paused      bool
	pauseStart  sim.Time
	totalPaused float64
	pauseCond   sim.Cond
	downtimes   int
	steal       float64 // fraction of guest CPU consumed by host-side migration work
}

// New creates a VM on the given host node.
func New(eng *sim.Engine, name string, node *fabric.Node, mem *Memory, cores int) *VM {
	if cores <= 0 {
		cores = 1
	}
	return &VM{Eng: eng, Name: name, Node: node, Mem: mem, Cores: cores}
}

// Paused reports whether the VM is currently paused.
func (v *VM) Paused() bool { return v.paused }

// TotalDowntime returns the accumulated paused wall time in seconds.
func (v *VM) TotalDowntime() float64 {
	t := v.totalPaused
	if v.paused {
		t += v.Eng.Now() - v.pauseStart
	}
	return t
}

// Downtimes returns how many times the VM has been paused.
func (v *VM) Downtimes() int { return v.downtimes }

// Pause stops guest execution (stop-and-copy). Dirtying freezes.
func (v *VM) Pause() {
	if v.paused {
		return
	}
	v.Mem.Settle(v.Eng.Now())
	v.Mem.setPaused(true, v.Eng.Now())
	v.paused = true
	v.pauseStart = v.Eng.Now()
	v.downtimes++
}

// Resume restarts guest execution.
func (v *VM) Resume() {
	if !v.paused {
		return
	}
	v.totalPaused += v.Eng.Now() - v.pauseStart
	v.paused = false
	v.Mem.setPaused(false, v.Eng.Now())
	v.pauseCond.Broadcast(v.Eng)
}

// MoveTo rehomes the VM onto a new node (control transfer). The caller is
// responsible for pausing around the move.
func (v *VM) MoveTo(node *fabric.Node) { v.Node = node }

// CheckPause parks the calling guest process while the VM is paused.
func (v *VM) CheckPause(p *sim.Proc) {
	for v.paused {
		v.pauseCond.Wait(p)
	}
}

// SetCPUSteal sets the fraction (0..0.9) of guest CPU consumed by host-side
// migration activity (the migration thread and the storage manager's
// transfer work). The paper's "impact on application performance" metric is
// driven by this resource consumption plus downtime and I/O stalls.
func (v *VM) SetCPUSteal(f float64) {
	if f < 0 {
		f = 0
	}
	if f > 0.9 {
		f = 0.9
	}
	v.steal = f
}

// CPUSteal returns the current steal fraction.
func (v *VM) CPUSteal() float64 { return v.steal }

// stealQuantum bounds how much CPU time Exec consumes per slice so steal
// changes apply with sub-second resolution even to long compute phases.
const stealQuantum = 1.0

// Exec consumes d seconds of guest CPU time, stretching transparently over
// any pauses that occur meanwhile (the guest makes no progress while
// paused) and over CPU steal by migration activity.
func (v *VM) Exec(p *sim.Proc, d float64) {
	for d > 0 {
		v.CheckPause(p)
		slice := d
		if slice > stealQuantum {
			slice = stealQuantum
		}
		before := v.TotalDowntime()
		p.Sleep(slice / (1 - v.steal))
		d -= slice
		d += v.TotalDowntime() - before // re-run compute lost to a pause
	}
}
