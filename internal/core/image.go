// Package core implements the paper's contribution: the migration manager, a
// transparent interposition layer between the hypervisor and local storage
// that implements the hybrid active push / prioritized prefetch scheme for
// live storage migration (Sections 4.1–4.4 and Algorithms 1–4).
//
// Under normal operation the manager exposes the base disk image (stored in
// the striped repository of package blob) as a locally modifiable view:
// writes create chunks on the local disk, reads of untouched regions fetch
// chunks from the repository on demand and cache them locally.
//
// During a live migration the manager:
//
//  1. actively pushes locally modified chunks to the destination while the
//     VM still runs at the source, skipping chunks whose write count reaches
//     Threshold (they would likely be overwritten again — Algorithm 1);
//  2. intercepts the hypervisor's sync right before control transfer and
//     sends the destination the remaining set with its write counts
//     (TRANSFER IO CONTROL — Algorithm 3);
//  3. on the destination, prefetches the remaining chunks in decreasing
//     write-count order, serving on-demand reads with priority by suspending
//     the prefetcher (Algorithms 3 and 4), while writes cancel pending pulls
//     (Algorithm 2);
//  4. prefetches hot base-image content from the repository using hints
//     from the source, never from the source itself.
//
// The same type also implements the mirror baseline (synchronous write
// mirroring after a background bulk copy, per Haselhorst et al.) and the
// pure postcopy baseline (the hybrid scheme with the push phase disabled),
// which the paper evaluates against.
package core

import (
	"fmt"

	"github.com/hybridmig/hybridmig/internal/blob"
	"github.com/hybridmig/hybridmig/internal/chunk"
	"github.com/hybridmig/hybridmig/internal/fabric"
	"github.com/hybridmig/hybridmig/internal/flow"
	"github.com/hybridmig/hybridmig/internal/params"
	"github.com/hybridmig/hybridmig/internal/sim"
	"github.com/hybridmig/hybridmig/internal/trace"
	"github.com/hybridmig/hybridmig/internal/vm"
)

// Mode selects the storage transfer strategy.
type Mode int

// Strategies implemented by the manager.
const (
	// ModeHybrid is the paper's approach: active push with a write-count
	// threshold, then prioritized pull after control transfer.
	ModeHybrid Mode = iota
	// ModeMirror reproduces Haselhorst et al.: background bulk copy plus
	// synchronous mirroring of every write; control transfer waits for full
	// synchronization.
	ModeMirror
	// ModePostcopy stays passive until control transfer and then pulls
	// everything (the paper's postcopy baseline, built from our approach).
	ModePostcopy
)

func (m Mode) String() string {
	switch m {
	case ModeHybrid:
		return "our-approach"
	case ModeMirror:
		return "mirror"
	case ModePostcopy:
		return "postcopy"
	}
	return fmt.Sprintf("mode(%d)", int(m))
}

// Options tunes the migration manager. The zero value is not useful; start
// from DefaultOptions.
type Options struct {
	Mode Mode
	// Threshold is the write-count cutoff of Algorithm 1. Chunks written at
	// least this many times during migration stop being pushed.
	Threshold uint32
	// PushBatch and PullBatch bound how many chunks ride in one streamed
	// transfer.
	PushBatch int
	PullBatch int
	// PullPriority orders the destination prefetch by decreasing write
	// count; disabling it (ablation) pulls in ascending chunk order.
	PullPriority bool
	// PullRequestLatency is the per-request service overhead of a pull
	// (FUSE round trip plus source-side request handling): pulls are
	// request/response while pushes stream, which is what makes the push
	// phase cheaper per byte (Section 5.3's our-approach vs postcopy gap).
	PullRequestLatency float64
	// BasePrefetch enables hint-driven prefetch of hot base-image content
	// from the repository after control transfer.
	BasePrefetch bool
	// Preseeded starts every side with the full base image already on its
	// local disk (pre-staged image replicas): the source never fetches
	// from the repository, and a migration's destination only owes the
	// source the modified chunks. See params.Manager.Preseeded.
	Preseeded bool
	// BasePrefetchRate caps that prefetch in bytes/s (0 = uncapped).
	BasePrefetchRate float64
	// Dedup skips the body of pushed/pulled chunks whose content the
	// destination already holds (paper §6 future work).
	Dedup bool
	// DedupHashBytes is the wire cost of advertising a chunk hash.
	DedupHashBytes int64
	// CompressionRatio scales transferred storage bytes (0 or 1 disables;
	// e.g. 0.6 sends 60% of the payload). Paper §6 / [24].
	CompressionRatio float64
	// CompressBW is the CPU compression throughput charged when compression
	// is on.
	CompressBW float64
	// Trace, when non-nil, receives the manager's migration phase
	// transitions (trace.KindPhase events: "push"/"mirror"/"passive",
	// "control-transfer", "released").
	Trace *trace.Bus
}

// DefaultOptions returns the paper-default manager configuration for the
// given mode, taking tunables from params.
func DefaultOptions(mode Mode) Options {
	m := params.DefaultManager()
	return Options{
		Mode:               mode,
		Threshold:          m.Threshold,
		PushBatch:          m.PushBatch,
		PullBatch:          m.PullBatch,
		PullPriority:       true,
		PullRequestLatency: m.PullRequestLatency,
		BasePrefetch:       m.BasePrefetch,
		BasePrefetchRate:   m.BasePrefetchRate,
		DedupHashBytes:     1024,
	}
}

// Stats exposes what the experiments measure.
type Stats struct {
	RequestedAt sim.Time // MIGRATION REQUEST received
	ControlAt   sim.Time // TRANSFER IO CONTROL completed (destination live)
	ReleasedAt  sim.Time // source fully relinquished
	Complete    bool

	PushedBytes    float64 // wire bytes actively pushed
	PulledBytes    float64 // wire bytes background-pulled
	OnDemandBytes  float64 // wire bytes pulled on demand by reads/writes
	PrefetchBytes  float64 // base-image bytes prefetched from the repository
	MirroredBytes  float64 // wire bytes of synchronous mirroring + bulk copy
	RepoReadBytes  float64 // on-demand base image fetches (both sides)
	PushedChunks   int
	PulledChunks   int
	OnDemandPulls  int
	RMWStalls      int // partial-chunk writes that had to fetch first
	SkippedHot     int // chunks left to the pull phase by the threshold
	DedupHits      int
	CanceledPushes int // chunks whose in-flight push was aborted by sync
	// CanceledPushBytes is the wire traffic of the push batch that the
	// control transfer canceled mid-flight (its data is discarded and the
	// chunks return to the pull queue) — overhead inherent to the scheme.
	CanceledPushBytes float64

	// Fault-injection outcome of this attempt (see Image.Abort).
	Aborted          bool    // the attempt was torn down by a fault
	AbortedWireBytes float64 // bytes moved by transfers canceled at abort time
}

// WireBytes returns every storage byte this attempt put on the wire: the
// completed push/pull/mirror payloads, the sync-canceled push partials, and
// the settled part of transfers a fault canceled mid-flight. For an aborted
// attempt all of it is wasted traffic.
func (s Stats) WireBytes() float64 {
	return s.PushedBytes + s.PulledBytes + s.OnDemandBytes + s.MirroredBytes +
		s.CanceledPushBytes + s.AbortedWireBytes
}

// side is the manager state on one node.
type side struct {
	node     *fabric.Node
	local    *chunk.Set // chunks available on the local disk
	modified *chunk.Set // ModifiedSet of the paper
	content  []uint64   // per-chunk content IDs (0 = base content)
}

func newSide(node *fabric.Node, n int) *side {
	return &side{
		node:     node,
		local:    chunk.NewSet(n),
		modified: chunk.NewSet(n),
		content:  make([]uint64, n),
	}
}

// migState is the migration lifecycle.
type migState int

const (
	stIdle    migState = iota
	stPushing          // source active phase (hybrid/postcopy) or mirror phase
	stPulling          // destination active phase after control transfer
)

// Image is the migration manager's locally modifiable view of a base disk
// image, attached to a VM as its vm.DiskImage.
type Image struct {
	eng     *sim.Engine
	cl      *fabric.Cluster
	geo     chunk.Geometry
	base    *blob.Blob
	backing vm.DiskImage // the manager's backing store (host-cached local file)
	opts    Options
	name    string

	cur *side // side serving guest I/O
	dst *side // destination side while a migration is in progress
	old *side // relinquished source side after control transfer

	state   migState
	dstNode *fabric.Node

	// Source-phase state (Algorithm 1).
	remaining   *chunk.Set
	dstFresh    *chunk.Set // chunks whose latest content already reached the destination via a write (mirror or destination-local); transfers must not overwrite them
	writeCount  *chunk.Counter
	pushCond    sim.Cond
	pushAborted bool
	pushFlow    *flow.Flow
	pushBatch   []chunk.Idx
	syncSeen    bool

	// Destination-phase state (Algorithms 3 and 4).
	pullQueue   *chunk.PullQueue
	pullSuspend int
	pullResume  sim.Cond
	inFlight    *chunk.Set              // chunks being pulled right now
	pullGates   map[chunk.Idx]*sim.Gate // per-chunk arrival gates
	pullsActive int                     // pull flows in flight (background + on-demand)

	// Mirror-phase state.
	bulkDone     sim.Gate
	mirrorActive bool

	// Abort state. migEpoch is bumped by MigrationRequest and Abort; every
	// blocking migration step captures it first and bails out afterwards if
	// it moved, so processes of a torn-down attempt can never touch the state
	// of a later one. xferFlows tracks the in-flight pull/bulk/mirror
	// transfers (the push flow has its own handle) so Abort can cancel them
	// in registration order, deterministically.
	migEpoch  uint64
	xferFlows []*flow.Flow

	// Write draining for a clean sync.
	activeWrites sim.WaitGroup

	released sim.Gate
	seq      uint64
	known    map[uint64]bool // content at destination, for dedup
	stats    Stats

	// OnDestInstall, when set, observes every chunk range installed at the
	// destination by a push, pull, or base prefetch. The orchestrator uses
	// it to mark transferred content warm in the destination host's cache.
	OnDestInstall func(off, length int64)
}

var _ vm.DiskImage = (*Image)(nil)

// NewImage creates a manager view of base on the given node. backing is the
// manager's local store (typically the guest package's cache over a raw
// disk); if nil, a plain disk-time model is used directly.
func NewImage(eng *sim.Engine, cl *fabric.Cluster, node *fabric.Node, geo chunk.Geometry, base *blob.Blob, backing vm.DiskImage, opts Options, name string) *Image {
	if opts.PushBatch <= 0 || opts.PullBatch <= 0 {
		panic("core: batch sizes must be positive")
	}
	if base.Size < geo.ImageSize {
		panic("core: base blob smaller than image")
	}
	if geo.ChunkSize%base.Store.P.StripeSize != 0 && base.Store.P.StripeSize%geo.ChunkSize != 0 {
		panic("core: chunk size and repository stripe size must nest")
	}
	im := &Image{
		eng:     eng,
		cl:      cl,
		geo:     geo,
		base:    base,
		backing: backing,
		opts:    opts,
		name:    name,
		cur:     newSide(node, geo.Chunks()),
	}
	if opts.Preseeded {
		// The node holds a pre-staged base replica: every chunk is local
		// with base content (content ID 0), exactly the state fetchBase
		// would have left behind.
		im.cur.local.AddRange(0, chunk.Idx(geo.Chunks()-1))
	}
	return im
}

// store charges a write of the given range to the backing layer (or plain
// disk time when no backing store is attached).
func (im *Image) store(p *sim.Proc, off, length int64) {
	if im.backing != nil {
		im.backing.Write(p, off, length)
		return
	}
	im.cl.DiskIO(p, im.cur.node, float64(length), flow.TagOther)
}

// load charges a read of the given range from the backing layer.
func (im *Image) load(p *sim.Proc, off, length int64) {
	if im.backing != nil {
		im.backing.Read(p, off, length)
		return
	}
	im.cl.DiskIO(p, im.cur.node, float64(length), flow.TagOther)
}

// Geometry implements vm.DiskImage.
func (im *Image) Geometry() chunk.Geometry { return im.geo }

// Node returns the node currently serving guest I/O.
func (im *Image) Node() *fabric.Node { return im.cur.node }

// Stats returns a copy of the migration statistics.
func (im *Image) Stats() Stats { return im.stats }

// Mode returns the configured strategy.
func (im *Image) Mode() Mode { return im.opts.Mode }

// ContentSnapshot returns the active side's per-chunk content IDs (tests and
// consistency checks). Index 0 means base content.
func (im *Image) ContentSnapshot() []uint64 {
	out := make([]uint64, len(im.cur.content))
	copy(out, im.cur.content)
	return out
}

// ModifiedCount returns the number of locally modified chunks on the active
// side.
func (im *Image) ModifiedCount() int { return im.cur.modified.Count() }

// ForEachLocalRange calls fn for every maximal run of locally available
// chunks on the active side (byte offsets). The orchestrator uses it to
// warm the destination cache after control transfer.
func (im *Image) ForEachLocalRange(fn func(off, length int64)) {
	c := chunk.Idx(0)
	for {
		start, n := im.cur.local.NextRunFrom(c, 1<<30)
		if start < 0 {
			return
		}
		r1 := im.geo.ChunkRange(start)
		r2 := im.geo.ChunkRange(start + chunk.Idx(n-1))
		fn(r1.Off, r2.End()-r1.Off)
		c = start + chunk.Idx(n)
	}
}

// isDest reports whether guest I/O currently lands on a destination that is
// still pulling from the source.
func (im *Image) isDest() bool { return im.state == stPulling }

// isMigratingSource reports whether this side is a source with an active
// migration (before control transfer).
func (im *Image) isMigratingSource() bool { return im.state == stPushing }

// nextContent mints a content ID for a chunk write. When Dedup is enabled a
// slice of writes lands on a small shared pool, modelling blocks whose
// content recurs (zero pages, common patterns).
func (im *Image) nextContent() uint64 {
	im.seq++
	if im.opts.Dedup && im.seq%4 == 0 {
		return 1 + im.seq%16 // shared pool IDs: low values
	}
	return 16 + im.seq
}

// chunkBytes sums the byte lengths of the given chunks.
func (im *Image) chunkBytes(cs []chunk.Idx) float64 {
	var b int64
	for _, c := range cs {
		b += im.geo.ChunkLen(c)
	}
	return float64(b)
}

// Read implements vm.DiskImage (Algorithm 4 generalized to ranges).
func (im *Image) Read(p *sim.Proc, off, length int64) {
	if length <= 0 {
		return
	}
	first, last := im.geo.Span(chunk.Range{Off: off, Len: length})
	for c := first; c <= last; {
		cat := im.category(c)
		end := c
		for end+1 <= last && im.category(end+1) == cat {
			end++
		}
		r1 := im.geo.ChunkRange(c).Off
		bytes := int64(clipBytes(im.geo, off, length, c, end))
		switch cat {
		case catLocal:
			im.load(p, max64(off, r1), bytes)
		case catRemaining:
			im.onDemandPull(p, c, end)
			im.load(p, max64(off, r1), bytes)
		case catBase:
			im.fetchBase(p, c, end)
			im.load(p, max64(off, r1), bytes)
		}
		c = end + 1
	}
}

// category classifies a chunk for the active side.
type cat int

const (
	catLocal cat = iota
	catRemaining
	catBase
)

// staleBaseOwed reports that the active side's local copy of c is only the
// preseeded base replica (content ID 0) while the source still owes the
// chunk's modified content: the replica must not mask the pull. Outside
// preseeded runs a destination never holds a content-0 local copy of a
// remaining/in-flight chunk (base fetches and prefetch are restricted to
// chunks the source did not modify), so this is always false there.
func (im *Image) staleBaseOwed(c chunk.Idx) bool {
	return im.isDest() && im.cur.content[c] == 0 &&
		(im.remaining.Contains(c) || im.inFlight.Contains(c))
}

func (im *Image) category(c chunk.Idx) cat {
	switch {
	case im.cur.local.Contains(c) && !im.staleBaseOwed(c):
		return catLocal
	case im.isDest() && (im.remaining.Contains(c) || im.inFlight.Contains(c)):
		return catRemaining
	default:
		return catBase
	}
}

// fetchBase brings chunks [c..end] from the repository and caches them on
// the local disk ("copied locally", Section 4.2).
func (im *Image) fetchBase(p *sim.Proc, c, end chunk.Idx) {
	r1 := im.geo.ChunkRange(c)
	r2 := im.geo.ChunkRange(end)
	length := r2.End() - r1.Off
	im.base.ReadRange(p, im.cur.node, r1.Off, length)
	im.stats.RepoReadBytes += float64(length)
	side := im.cur
	for i := c; i <= end; i++ {
		side.local.Add(i)
	}
	// Cache the fetched content locally; writeback persists it to disk.
	im.store(p, r1.Off, length)
}

// Write implements vm.DiskImage (Algorithm 2 generalized: partial chunks,
// multi-chunk spans, both roles).
func (im *Image) Write(p *sim.Proc, off, length int64) {
	if length <= 0 {
		return
	}
	im.activeWrites.Add(1)
	defer im.activeWrites.Done(im.eng)

	wr := chunk.Range{Off: off, Len: length}
	first, last := im.geo.Span(wr)
	// Read-modify-write: partially covered chunks need their current
	// content available locally first.
	for c := first; c <= last; c++ {
		if im.geo.FullyCovers(wr, c) || (im.cur.local.Contains(c) && !im.staleBaseOwed(c)) {
			continue
		}
		im.stats.RMWStalls++
		if im.isDest() && (im.remaining.Contains(c) || im.inFlight.Contains(c)) {
			im.onDemandPull(p, c, c)
		} else {
			im.fetchBase(p, c, c)
		}
	}

	side := im.cur
	if im.isDest() {
		// Algorithm 2, destination role: cancel pending pulls.
		for c := first; c <= last; c++ {
			im.remaining.Remove(c)
		}
	}
	var mirrorFlow *flow.Flow
	epoch := im.migEpoch
	if im.mirrorActive && im.isMigratingSource() {
		// Synchronous mirroring: the write travels to the destination in
		// parallel with the local write and must complete there before we
		// acknowledge (Haselhorst et al.).
		mirrorFlow = im.cl.TransferFlowPath(
			im.cl.NetPath(side.node, im.dstNode),
			float64(length), flow.TagMirror, nil)
		im.registerFlow(mirrorFlow)
	}
	// The write lands in the manager's backing store (host-cached file).
	im.store(p, off, length)

	for c := first; c <= last; c++ {
		side.local.Add(c)
		side.modified.Add(c)
		side.content[c] = im.nextContent()
		if im.known != nil {
			im.known[side.content[c]] = true
		}
		if im.isDest() {
			im.dstFresh.Add(c)
		}
		if im.isMigratingSource() {
			// Algorithm 2, source role.
			im.writeCount.Inc(c)
			if !im.mirrorActive {
				im.remaining.Add(c)
			}
		}
	}
	if im.isMigratingSource() && !im.mirrorActive {
		im.pushCond.Broadcast(im.eng)
	}
	if mirrorFlow != nil {
		mirrorFlow.Wait(p)
		im.unregisterFlow(mirrorFlow)
		if im.migEpoch != epoch {
			return // aborted mid-mirror: the destination copy is gone
		}
		im.stats.MirroredBytes += float64(length)
		// Mirrored content is now identical at the destination.
		for c := first; c <= last; c++ {
			im.dst.local.Add(c)
			im.dst.modified.Add(c)
			im.dst.content[c] = side.content[c]
			im.dstFresh.Add(c)
		}
	}
	im.maybeComplete()
}

// max64 returns the larger of two int64s.
func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// clipBytes returns the bytes of [off,off+length) within chunks [c..end].
func clipBytes(geo chunk.Geometry, off, length int64, c, end chunk.Idx) float64 {
	lo := geo.ChunkRange(c).Off
	hi := geo.ChunkRange(end).End()
	if off > lo {
		lo = off
	}
	if off+length < hi {
		hi = off + length
	}
	if hi < lo {
		return 0
	}
	return float64(hi - lo)
}
