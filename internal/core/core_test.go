package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/hybridmig/hybridmig/internal/blob"
	"github.com/hybridmig/hybridmig/internal/chunk"
	"github.com/hybridmig/hybridmig/internal/fabric"
	"github.com/hybridmig/hybridmig/internal/flow"
	"github.com/hybridmig/hybridmig/internal/params"
	"github.com/hybridmig/hybridmig/internal/sim"
)

const (
	kb        = params.KB
	mb        = params.MB
	chunkSize = 256 * kb
	imageSize = 64 * mb // 256 chunks
)

type rig struct {
	eng   *sim.Engine
	cl    *fabric.Cluster
	store *blob.Store
	base  *blob.Blob
	geo   chunk.Geometry
}

// newRig builds: nodes 0..3 compute, nodes 4..7 repository servers.
func newRig() *rig {
	eng := sim.New()
	tb := params.DefaultTestbed()
	tb.NICBandwidth = 100 * mb
	tb.DiskBandwidth = 50 * mb
	tb.FabricBandwidth = 8000 * mb
	tb.NetLatency = 0.0001
	tb.DiskLatency = 0
	cl := fabric.NewCluster(eng, 8, tb)
	store := blob.NewStore(cl, cl.Nodes[4:8], params.Repository{StripeSize: chunkSize, MetadataLatency: 0})
	base := store.Create(imageSize)
	return &rig{eng: eng, cl: cl, store: store, base: base,
		geo: chunk.NewGeometry(imageSize, chunkSize)}
}

func (r *rig) image(mode Mode, node int) *Image {
	return NewImage(r.eng, r.cl, r.cl.Nodes[node], r.geo, r.base, nil, DefaultOptions(mode), "img")
}

func (r *rig) imageOpts(opts Options, node int) *Image {
	return NewImage(r.eng, r.cl, r.cl.Nodes[node], r.geo, r.base, nil, opts, "img")
}

func (r *rig) run(t *testing.T) {
	t.Helper()
	if err := r.eng.RunUntil(1e6); err != nil {
		t.Fatal(err)
	}
	r.eng.Shutdown()
}

func TestNormalOperationWriteThenRead(t *testing.T) {
	r := newRig()
	im := r.image(ModeHybrid, 0)
	r.eng.Go("io", func(p *sim.Proc) {
		im.Write(p, 0, 1*mb)
		if im.ModifiedCount() != 4 {
			t.Errorf("modified = %d, want 4", im.ModifiedCount())
		}
		before := r.store.ReadBytes()
		im.Read(p, 0, 1*mb) // local, no repo traffic
		if r.store.ReadBytes() != before {
			t.Error("local read hit the repository")
		}
		im.Read(p, 8*mb, 1*mb) // base content: repo fetch
		if r.store.ReadBytes() != before+1*mb {
			t.Errorf("repo bytes = %v, want +1 MB", r.store.ReadBytes()-before)
		}
		im.Read(p, 8*mb, 1*mb) // cached locally now
		if r.store.ReadBytes() != before+1*mb {
			t.Error("second read of cached base content hit the repository")
		}
	})
	r.run(t)
}

func TestPartialWriteToBaseChunkRMW(t *testing.T) {
	r := newRig()
	im := r.image(ModeHybrid, 0)
	r.eng.Go("io", func(p *sim.Proc) {
		im.Write(p, 100, 1000) // partial chunk, not local
	})
	r.run(t)
	if im.Stats().RMWStalls != 1 {
		t.Fatalf("RMW stalls = %d, want 1", im.Stats().RMWStalls)
	}
	if im.ModifiedCount() != 1 {
		t.Fatalf("modified = %d, want 1", im.ModifiedCount())
	}
}

// migrate drives the hypervisor-side protocol: request, let the push phase
// run for pushDur, then sync (control transfer).
func migrate(r *rig, im *Image, dstNode int, pushDur float64, after func(p *sim.Proc)) {
	r.eng.Go("hv", func(p *sim.Proc) {
		im.MigrationRequest(r.cl.Nodes[dstNode])
		p.Sleep(pushDur)
		im.Sync(p)
		if after != nil {
			after(p)
		}
	})
}

func TestHybridQuiescentMigration(t *testing.T) {
	r := newRig()
	im := r.image(ModeHybrid, 0)
	r.eng.Go("setup", func(p *sim.Proc) {
		im.Write(p, 0, 16*mb) // 64 modified chunks
		migrate(r, im, 1, 5, nil)
	})
	r.run(t)
	st := im.Stats()
	if !st.Complete {
		t.Fatal("migration incomplete")
	}
	// Quiescent source: everything should have been pushed before sync.
	if st.PushedChunks != 64 {
		t.Fatalf("pushed chunks = %d, want 64", st.PushedChunks)
	}
	if st.PulledChunks != 0 || st.OnDemandPulls != 0 {
		t.Fatalf("pulled = %d/%d, want 0 (all pushed)", st.PulledChunks, st.OnDemandPulls)
	}
	if st.ReleasedAt != st.ControlAt {
		t.Fatalf("release at %v != control at %v for fully pushed migration", st.ReleasedAt, st.ControlAt)
	}
	if im.Node() != r.cl.Nodes[1] {
		t.Fatal("active side not on destination")
	}
	// Content survived.
	snap := im.ContentSnapshot()
	for c := 0; c < 64; c++ {
		if snap[c] == 0 {
			t.Fatalf("chunk %d lost content", c)
		}
	}
}

func TestHybridShortPushPhasePullsRest(t *testing.T) {
	r := newRig()
	im := r.image(ModeHybrid, 0)
	r.eng.Go("setup", func(p *sim.Proc) {
		im.Write(p, 0, 32*mb)        // 128 chunks
		migrate(r, im, 1, 0.05, nil) // sync almost immediately
	})
	r.run(t)
	st := im.Stats()
	if !st.Complete {
		t.Fatal("migration incomplete")
	}
	if st.PulledChunks == 0 {
		t.Fatal("expected background pulls after early sync")
	}
	if st.ReleasedAt <= st.ControlAt {
		t.Fatal("release should come after control transfer when pulls remain")
	}
	// All 128 chunks accounted for exactly once: canceled push chunks were
	// re-queued and arrive via pull; no chunk was written twice here.
	total := st.PushedChunks + st.PulledChunks + st.OnDemandPulls
	if total != 128 {
		t.Fatalf("chunks moved = %d (pushed %d + pulled %d + ondemand %d, canceled %d), want 128",
			total, st.PushedChunks, st.PulledChunks, st.OnDemandPulls, st.CanceledPushes)
	}
}

func TestThresholdStopsPushingHotChunks(t *testing.T) {
	r := newRig()
	opts := DefaultOptions(ModeHybrid)
	opts.Threshold = 3
	im := r.imageOpts(opts, 0)
	hot := int64(0) // chunk 0 will be rewritten continuously
	r.eng.Go("setup", func(p *sim.Proc) {
		im.Write(p, 0, 8*mb)
		im.MigrationRequest(r.cl.Nodes[1])
		// Rewrite chunk 0 well past the threshold while pushing runs.
		for i := 0; i < 10; i++ {
			im.Write(p, hot, chunkSize)
			p.Sleep(0.01)
		}
		p.Sleep(2)
		im.Sync(p)
	})
	r.run(t)
	st := im.Stats()
	if !st.Complete {
		t.Fatal("migration incomplete")
	}
	if st.SkippedHot == 0 {
		t.Fatal("hot chunk was not excluded from the push phase")
	}
	// The hot chunk must arrive via pull, with its final content.
	if st.PulledChunks+st.OnDemandPulls == 0 {
		t.Fatal("hot chunk never pulled")
	}
}

func TestPushCountBoundedByThreshold(t *testing.T) {
	// A chunk is transferred at most Threshold times during the push phase:
	// with threshold 2 and many rewrites, push traffic for that chunk caps.
	r := newRig()
	opts := DefaultOptions(ModeHybrid)
	opts.Threshold = 2
	opts.PushBatch = 1
	im := r.imageOpts(opts, 0)
	r.eng.Go("setup", func(p *sim.Proc) {
		im.Write(p, 0, chunkSize) // exactly one chunk
		im.MigrationRequest(r.cl.Nodes[1])
		for i := 0; i < 20; i++ {
			im.Write(p, 0, chunkSize)
			p.Sleep(0.02)
		}
		p.Sleep(1)
		im.Sync(p)
	})
	r.run(t)
	st := im.Stats()
	// Chunk 0 was pushed at most Threshold times (plus it may be pulled once).
	if st.PushedChunks > 2 {
		t.Fatalf("pushed %d times, threshold 2 should bound it", st.PushedChunks)
	}
	if !st.Complete {
		t.Fatal("migration incomplete")
	}
}

func TestPostcopyPushesNothing(t *testing.T) {
	r := newRig()
	im := r.image(ModePostcopy, 0)
	r.eng.Go("setup", func(p *sim.Proc) {
		im.Write(p, 0, 16*mb)
		migrate(r, im, 1, 5, nil)
	})
	r.run(t)
	st := im.Stats()
	if st.PushedBytes != 0 || st.PushedChunks != 0 {
		t.Fatalf("postcopy pushed %v bytes", st.PushedBytes)
	}
	if st.PulledChunks == 0 {
		t.Fatal("postcopy pulled nothing")
	}
	if !st.Complete {
		t.Fatal("migration incomplete")
	}
	if got := r.cl.Net.BytesByTag(flow.TagStoragePush); got != 0 {
		t.Fatalf("push traffic = %v, want 0", got)
	}
}

func TestMirrorSynchronousWrites(t *testing.T) {
	r := newRig()
	// Make the network the slow path so the synchronous mirror wait is
	// observable against the local disk write.
	r.cl.Nodes[0].NICOut.Capacity = 10 * mb
	im := r.image(ModeMirror, 0)
	var durNormal, durMirror sim.Duration
	r.eng.Go("setup", func(p *sim.Proc) {
		start := p.Now()
		im.Write(p, 0, 4*mb)
		durNormal = p.Now() - start
		im.MigrationRequest(r.cl.Nodes[1])
		start = p.Now()
		im.Write(p, 8*mb, 4*mb)
		durMirror = p.Now() - start
		p.Sleep(3)
		im.Sync(p)
	})
	r.run(t)
	st := im.Stats()
	if !st.Complete {
		t.Fatal("migration incomplete")
	}
	if durMirror <= durNormal {
		t.Fatalf("mirrored write (%v) not slower than plain write (%v)", durMirror, durNormal)
	}
	if st.MirroredBytes == 0 {
		t.Fatal("no mirror traffic recorded")
	}
	if st.ReleasedAt != st.ControlAt {
		t.Fatal("mirror migration must finish at control transfer")
	}
	if st.PulledChunks != 0 {
		t.Fatal("mirror mode must not pull")
	}
}

func TestMirrorControlWaitsForBulk(t *testing.T) {
	r := newRig()
	im := r.image(ModeMirror, 0)
	r.eng.Go("setup", func(p *sim.Proc) {
		im.Write(p, 0, 32*mb) // bulk copy will need ~0.32s at the 100 MB/s NIC
		im.MigrationRequest(r.cl.Nodes[1])
		im.Sync(p) // immediate sync: must block until bulk done
	})
	r.run(t)
	st := im.Stats()
	if !st.Complete {
		t.Fatal("migration incomplete")
	}
	elapsed := st.ControlAt - st.RequestedAt
	if elapsed < 0.3 {
		t.Fatalf("control transfer after %v, want >= bulk copy time (~0.32s)", elapsed)
	}
}

func TestOnDemandReadPullsWithPriority(t *testing.T) {
	r := newRig()
	opts := DefaultOptions(ModeHybrid)
	opts.PullBatch = 2
	im := r.imageOpts(opts, 0)
	r.eng.Go("setup", func(p *sim.Proc) {
		im.Write(p, 0, 32*mb)
		im.MigrationRequest(r.cl.Nodes[1])
		im.Sync(p) // everything left for the pull phase
		// Immediately read the LAST chunk — far from the head of the queue.
		im.Read(p, 31*mb, chunkSize)
		if !im.Complete() {
			// Fine: background pull still running; the read itself must have
			// been served already (we got here).
			st := im.Stats()
			if st.OnDemandPulls == 0 {
				t.Error("read of a remaining chunk did not trigger an on-demand pull")
			}
		}
	})
	r.run(t)
	if !im.Complete() {
		t.Fatal("migration incomplete")
	}
}

func TestDestinationWriteCancelsPull(t *testing.T) {
	r := newRig()
	im := r.image(ModeHybrid, 0)
	r.eng.Go("setup", func(p *sim.Proc) {
		im.Write(p, 0, 32*mb)
		im.MigrationRequest(r.cl.Nodes[1])
		im.Sync(p)
		// Overwrite whole chunks at the destination right away: these must
		// not be pulled.
		im.Write(p, 16*mb, 8*mb)
	})
	r.run(t)
	st := im.Stats()
	if !st.Complete {
		t.Fatal("migration incomplete")
	}
	moved := st.PulledChunks + st.OnDemandPulls + st.PushedChunks
	if moved >= 128 {
		t.Fatalf("moved %d chunks despite 32 being overwritten at destination", moved)
	}
}

func TestDestinationPartialWriteRMWPullsFirst(t *testing.T) {
	r := newRig()
	im := r.image(ModeHybrid, 0)
	r.eng.Go("setup", func(p *sim.Proc) {
		im.Write(p, 0, 4*mb)
		im.MigrationRequest(r.cl.Nodes[1])
		im.Sync(p)
		before := im.Stats().RMWStalls
		im.Write(p, 100, 1000) // partial write into a remaining chunk
		if im.Stats().RMWStalls != before+1 {
			t.Error("partial write to remaining chunk did not RMW-pull")
		}
	})
	r.run(t)
	if !im.Complete() {
		t.Fatal("migration incomplete")
	}
}

func TestPullPriorityOrderByWriteCount(t *testing.T) {
	r := newRig()
	opts := DefaultOptions(ModeHybrid)
	opts.Threshold = 1 // nothing written during migration is pushed again
	opts.PullBatch = 1
	im := r.imageOpts(opts, 0)
	r.eng.Go("setup", func(p *sim.Proc) {
		im.Write(p, 0, 8*mb) // chunks 0..31
		im.MigrationRequest(r.cl.Nodes[1])
		// Make chunk 20 hottest, chunk 10 medium: they must arrive first.
		for i := 0; i < 5; i++ {
			im.Write(p, 20*chunkSize, chunkSize)
		}
		for i := 0; i < 3; i++ {
			im.Write(p, 10*chunkSize, chunkSize)
		}
		p.Sleep(0.001)
		im.Sync(p)
	})
	r.run(t)
	if !im.Complete() {
		t.Fatal("migration incomplete")
	}
	// We can't observe pull order directly, but with threshold=1 the two hot
	// chunks were excluded from push and must appear among pulls.
	st := im.Stats()
	if st.SkippedHot < 2 {
		t.Fatalf("skipped hot = %d, want >= 2", st.SkippedHot)
	}
}

func TestBasePrefetchFetchesHints(t *testing.T) {
	r := newRig()
	im := r.image(ModeHybrid, 0)
	r.eng.Go("setup", func(p *sim.Proc) {
		im.Read(p, 40*mb, 8*mb) // cache base content at the source (hints)
		im.Write(p, 0, 1*mb)
		migrate(r, im, 1, 2, func(p *sim.Proc) {
			im.WaitComplete(p)
			p.Sleep(10) // let the base prefetcher finish
			// The prefetched chunks are local at the destination: reading
			// them now must not touch the repository.
			before := r.store.ReadBytes()
			im.Read(p, 40*mb, 8*mb)
			if r.store.ReadBytes() != before {
				t.Error("prefetched base content re-fetched from repository")
			}
		})
	})
	r.run(t)
	st := im.Stats()
	if !st.Complete {
		t.Fatal("migration incomplete")
	}
	if st.PrefetchBytes < 8*mb {
		t.Fatalf("prefetch bytes = %v, want >= 8 MB of hinted base content", st.PrefetchBytes)
	}
}

func TestBasePrefetchDisabled(t *testing.T) {
	r := newRig()
	opts := DefaultOptions(ModeHybrid)
	opts.BasePrefetch = false
	im := r.imageOpts(opts, 0)
	r.eng.Go("setup", func(p *sim.Proc) {
		im.Read(p, 40*mb, 8*mb)
		im.Write(p, 0, 1*mb)
		migrate(r, im, 1, 2, nil)
	})
	r.run(t)
	if got := im.Stats().PrefetchBytes; got != 0 {
		t.Fatalf("prefetch bytes = %v, want 0 when disabled", got)
	}
}

func TestDedupReducesWireBytes(t *testing.T) {
	run := func(dedup bool) float64 {
		r := newRig()
		opts := DefaultOptions(ModeHybrid)
		opts.Dedup = dedup
		opts.PushBatch = 4 // small batches so later batches hit known content
		im := r.imageOpts(opts, 0)
		r.eng.Go("setup", func(p *sim.Proc) {
			// Many small writes -> recurring content IDs when dedup is on.
			for i := int64(0); i < 64; i++ {
				im.Write(p, i*chunkSize, chunkSize)
			}
			migrate(r, im, 1, 5, nil)
		})
		if err := r.eng.RunUntil(1e6); err != nil {
			panic(err)
		}
		r.eng.Shutdown()
		if !im.Complete() {
			panic("incomplete")
		}
		return im.Stats().PushedBytes + im.Stats().PulledBytes + im.Stats().OnDemandBytes
	}
	with, without := run(true), run(false)
	if with >= without {
		t.Fatalf("dedup did not reduce wire bytes: %v >= %v", with, without)
	}
}

func TestCompressionScalesWireBytes(t *testing.T) {
	r := newRig()
	opts := DefaultOptions(ModeHybrid)
	opts.CompressionRatio = 0.5
	opts.CompressBW = 1000 * mb
	im := r.imageOpts(opts, 0)
	r.eng.Go("setup", func(p *sim.Proc) {
		im.Write(p, 0, 16*mb)
		migrate(r, im, 1, 5, nil)
	})
	r.run(t)
	st := im.Stats()
	want := 8 * float64(mb) // 16 MB at ratio 0.5
	if st.PushedBytes < want*0.9 || st.PushedBytes > want*1.1 {
		t.Fatalf("pushed wire bytes = %v, want ~%v", st.PushedBytes, want)
	}
}

func TestRepeatedMigrationsChain(t *testing.T) {
	r := newRig()
	im := r.image(ModeHybrid, 0)
	r.eng.Go("setup", func(p *sim.Proc) {
		im.Write(p, 0, 8*mb)
		im.MigrationRequest(r.cl.Nodes[1])
		p.Sleep(2)
		im.Sync(p)
		im.WaitComplete(p)
		snap1 := im.ContentSnapshot()
		// Migrate again to a third node.
		im.Write(p, 8*mb, 4*mb)
		im.MigrationRequest(r.cl.Nodes[2])
		p.Sleep(2)
		im.Sync(p)
		im.WaitComplete(p)
		snap2 := im.ContentSnapshot()
		for c := 0; c < 32; c++ {
			if snap2[c] != snap1[c] {
				t.Errorf("chunk %d content changed across second migration", c)
			}
		}
	})
	r.run(t)
	if im.Node() != r.cl.Nodes[2] {
		t.Fatal("image did not end on node 2")
	}
}

// TestMigrationConsistencyProperty is the package's strongest check: for
// every mode, a randomized write workload runs before, during, and after a
// migration, and the destination's final content must exactly match a
// shadow model that replays the same writes.
func TestMigrationConsistencyProperty(t *testing.T) {
	for _, mode := range []Mode{ModeHybrid, ModeMirror, ModePostcopy} {
		mode := mode
		f := func(seed int64) bool {
			rng := rand.New(rand.NewSource(seed))
			r := newRig()
			im := r.image(mode, 0)
			nChunks := r.geo.Chunks()
			shadow := make([]uint64, nChunks)
			seq := uint64(0)
			writeAndShadow := func(p *sim.Proc, off, length int64) {
				im.Write(p, off, length)
				wr := chunk.Range{Off: off, Len: length}
				first, last := r.geo.Span(wr)
				for c := first; c <= last; c++ {
					seq++
					shadow[c] = 16 + seq
				}
			}
			r.eng.Go("workload", func(p *sim.Proc) {
				// Pre-migration writes.
				for i := 0; i < 10+rng.Intn(20); i++ {
					c := int64(rng.Intn(nChunks))
					writeAndShadow(p, c*chunkSize, chunkSize)
				}
				im.MigrationRequest(r.cl.Nodes[1])
				// Writes during the push phase.
				for i := 0; i < rng.Intn(30); i++ {
					c := int64(rng.Intn(nChunks))
					writeAndShadow(p, c*chunkSize, chunkSize)
					if rng.Intn(3) == 0 {
						p.Sleep(rng.Float64() * 0.05)
					}
				}
				p.Sleep(rng.Float64())
				im.Sync(p)
				// Writes and reads at the destination during the pull phase.
				for i := 0; i < rng.Intn(30); i++ {
					c := int64(rng.Intn(nChunks))
					if rng.Intn(2) == 0 {
						writeAndShadow(p, c*chunkSize, chunkSize)
					} else {
						im.Read(p, c*chunkSize, chunkSize)
					}
					if rng.Intn(3) == 0 {
						p.Sleep(rng.Float64() * 0.05)
					}
				}
				im.WaitComplete(p)
			})
			if err := r.eng.RunUntil(1e6); err != nil {
				return false
			}
			r.eng.Shutdown()
			if !im.Complete() {
				t.Logf("seed %d mode %v: migration incomplete", seed, mode)
				return false
			}
			got := im.ContentSnapshot()
			for c := 0; c < nChunks; c++ {
				if shadow[c] != 0 && got[c] != shadow[c] {
					t.Logf("seed %d mode %v: chunk %d content %d, want %d",
						seed, mode, c, got[c], shadow[c])
					return false
				}
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
			t.Fatalf("mode %v: %v", mode, err)
		}
	}
}

func TestTrafficTagsSeparated(t *testing.T) {
	r := newRig()
	im := r.image(ModeHybrid, 0)
	r.eng.Go("setup", func(p *sim.Proc) {
		im.Write(p, 0, 16*mb)
		im.MigrationRequest(r.cl.Nodes[1])
		p.Sleep(0.1) // partial push
		im.Sync(p)
	})
	r.run(t)
	push := r.cl.Net.BytesByTag(flow.TagStoragePush)
	pull := r.cl.Net.BytesByTag(flow.TagStoragePull)
	if push == 0 || pull == 0 {
		t.Fatalf("expected both push (%v) and pull (%v) traffic", push, pull)
	}
	if mirror := r.cl.Net.BytesByTag(flow.TagMirror); mirror != 0 {
		t.Fatalf("unexpected mirror traffic %v", mirror)
	}
}
