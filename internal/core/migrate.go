package core

import (
	"fmt"
	"slices"

	"github.com/hybridmig/hybridmig/internal/chunk"
	"github.com/hybridmig/hybridmig/internal/fabric"
	"github.com/hybridmig/hybridmig/internal/flow"
	"github.com/hybridmig/hybridmig/internal/sim"
	"github.com/hybridmig/hybridmig/internal/trace"
)

// emitPhase publishes a storage-migration phase transition to the observer
// bus, if one is attached.
func (im *Image) emitPhase(phase string) {
	if !im.opts.Trace.Active() {
		return
	}
	im.opts.Trace.Emit(trace.Event{
		Time: im.eng.Now(), Kind: trace.KindPhase, VM: im.name, Detail: phase,
	})
}

// MigrationRequest implements Algorithm 1: the manager assumes the source
// role, queues every locally modified chunk for transfer, resets write
// counts, and (hybrid mode) starts the BACKGROUND PUSH task. The caller then
// forwards the migration request to the hypervisor (hv.Migrate), whose sync
// triggers the transfer of I/O control.
func (im *Image) MigrationRequest(dstNode *fabric.Node) {
	if im.state != stIdle {
		panic(fmt.Sprintf("core: %s: migration requested while one is active", im.name))
	}
	n := im.geo.Chunks()
	im.migEpoch++
	im.dstNode = dstNode
	im.dst = newSide(dstNode, n)
	if im.opts.Preseeded {
		// The destination holds a pre-staged base replica; it only owes
		// the source the modified chunks (and base prefetch finds nothing
		// to do). category() keeps remaining/in-flight chunks authoritative
		// over the stale base replica.
		im.dst.local.AddRange(0, chunk.Idx(n-1))
	}
	im.remaining = im.cur.modified.Clone()
	im.writeCount = chunk.NewCounter(n)
	im.state = stPushing
	im.syncSeen = false
	im.pushAborted = false
	im.pushFlow = nil
	im.pushBatch = nil
	im.released = sim.Gate{}
	im.bulkDone = sim.Gate{}
	im.inFlight = chunk.NewSet(n)
	im.dstFresh = chunk.NewSet(n)
	im.known = make(map[uint64]bool)
	im.pullsActive = 0
	im.pullSuspend = 0
	im.xferFlows = im.xferFlows[:0]
	im.stats = Stats{RequestedAt: im.eng.Now()}

	switch im.opts.Mode {
	case ModeHybrid:
		im.mirrorActive = false
		im.emitPhase("push")
		im.startPush()
	case ModeMirror:
		im.mirrorActive = true
		im.emitPhase("mirror")
		im.startBulkCopy()
	case ModePostcopy:
		im.mirrorActive = false // passive push phase
		im.emitPhase("passive")
	}
}

// startPush launches the BACKGROUND PUSH task of Algorithm 1.
func (im *Image) startPush() {
	epoch := im.migEpoch
	im.eng.Go(im.name+"/push", func(p *sim.Proc) {
		src := im.cur
		cursor := chunk.Idx(0)
		for !im.syncSeen && im.migEpoch == epoch {
			batch := im.nextPushBatch(&cursor)
			if len(batch) == 0 {
				if im.eligiblePushExists() {
					continue // cursor wrapped; rescan
				}
				im.pushCond.Wait(p)
				continue
			}
			// Remove before sending (Algorithm 1 line 18); re-added by
			// WRITE if modified mid-flight.
			for _, c := range batch {
				im.remaining.Remove(c)
			}
			snapshot := make([]uint64, len(batch))
			for i, c := range batch {
				snapshot[i] = src.content[c]
			}
			wire := im.wireBytes(p, batch, snapshot)
			if im.migEpoch != epoch {
				return // aborted while charging compression time
			}
			im.pushBatch = batch
			im.pushFlow = im.cl.TransferFlowPath(
				im.streamPath(src.node, im.dstNode), wire, flow.TagStoragePush, nil)
			im.pushFlow.Wait(p)
			if im.migEpoch != epoch {
				// Aborted — and possibly already re-requested, in which case
				// the new attempt owns pushFlow/pushBatch/pushAborted and a
				// stale process must touch nothing (Abort charged the wire
				// bytes; installing the batch would corrupt the retry).
				return
			}
			aborted := im.pushAborted
			im.pushFlow = nil
			im.pushBatch = nil
			if aborted {
				return
			}
			im.stats.PushedBytes += wire
			im.stats.PushedChunks += len(batch)
			for i, c := range batch {
				im.installAtDest(c, snapshot[i])
			}
		}
	})
}

// nextPushBatch collects up to PushBatch eligible chunks scanning upward
// from the cursor (eligible: queued and written fewer than Threshold times).
func (im *Image) nextPushBatch(cursor *chunk.Idx) []chunk.Idx {
	var batch []chunk.Idx
	c := *cursor
	for len(batch) < im.opts.PushBatch {
		c = im.remaining.NextFrom(c)
		if c < 0 {
			break
		}
		if im.writeCount.Get(c) < im.opts.Threshold {
			batch = append(batch, c)
		}
		c++
	}
	if c < 0 {
		*cursor = 0 // wrapped
	} else {
		*cursor = c
	}
	return batch
}

// eligiblePushExists reports whether any queued chunk is still under the
// threshold.
func (im *Image) eligiblePushExists() bool {
	found := false
	im.remaining.ForEach(func(c chunk.Idx) bool {
		if im.writeCount.Get(c) < im.opts.Threshold {
			found = true
			return false
		}
		return true
	})
	return found
}

// startBulkCopy launches the mirror baseline's background full copy of the
// current modified set.
func (im *Image) startBulkCopy() {
	epoch := im.migEpoch
	im.eng.Go(im.name+"/bulk", func(p *sim.Proc) {
		src := im.cur
		todo := im.remaining // snapshot of modified chunks at request time
		cursor := chunk.Idx(0)
		for im.migEpoch == epoch {
			// The mirror baseline's bulk copy is a sequence of synchronous
			// remote writes (each acknowledged), not a stream: it pays the
			// same per-request overhead as pulls.
			start, n := todo.NextRunFrom(cursor, im.opts.PullBatch)
			if start < 0 {
				break
			}
			batch := make([]chunk.Idx, 0, n)
			snapshot := make([]uint64, 0, n)
			for i := 0; i < n; i++ {
				c := start + chunk.Idx(i)
				todo.Remove(c)
				batch = append(batch, c)
				snapshot = append(snapshot, src.content[c])
			}
			wire := im.wireBytes(p, batch, snapshot)
			p.Sleep(im.opts.PullRequestLatency + 2*im.cl.P.NetLatency)
			if im.migEpoch != epoch {
				return // aborted during the request round trip
			}
			if !im.trackedTransfer(p, epoch, im.streamPath(src.node, im.dstNode), wire, flow.TagMirror) {
				return // aborted mid-transfer: nothing installed
			}
			im.stats.MirroredBytes += wire
			for i, c := range batch {
				im.installAtDest(c, snapshot[i])
			}
			cursor = start + chunk.Idx(n)
		}
		im.bulkDone.Open(im.eng)
	})
}

// wireBytes returns the bytes to put on the wire for a batch, applying
// dedup and compression options, charging compression CPU time.
func (im *Image) wireBytes(p *sim.Proc, batch []chunk.Idx, snapshot []uint64) float64 {
	var payload float64
	for i, c := range batch {
		if im.opts.Dedup {
			if im.known[snapshot[i]] {
				im.stats.DedupHits++
				payload += float64(im.opts.DedupHashBytes)
				continue
			}
			im.known[snapshot[i]] = true // in transit: later duplicates dedup
		}
		payload += float64(im.geo.ChunkLen(c))
	}
	if r := im.opts.CompressionRatio; r > 0 && r < 1 {
		if im.opts.CompressBW > 0 {
			p.Sleep(payload / im.opts.CompressBW)
		}
		payload *= r
	}
	return payload
}

// installAtDest records that a chunk's content has landed on the
// destination's local disk. Content that reached the destination through a
// fresher path (mirrored or destination-local write) always wins.
func (im *Image) installAtDest(c chunk.Idx, content uint64) {
	if im.dst == nil || im.dstFresh.Contains(c) {
		return
	}
	im.dst.local.Add(c)
	im.dst.modified.Add(c) // differs from the base image on this side too
	im.dst.content[c] = content
	im.known[content] = true
	im.notifyInstall(c, c)
}

// notifyInstall reports a destination install to the orchestrator hook.
func (im *Image) notifyInstall(first, last chunk.Idx) {
	if im.OnDestInstall == nil {
		return
	}
	r1 := im.geo.ChunkRange(first)
	r2 := im.geo.ChunkRange(last)
	im.OnDestInstall(r1.Off, r2.End()-r1.Off)
}

// streamPath is the transfer path for migration streams. Chunk content is
// served from (and lands in) the hosts' page caches — the image is small
// relative to host RAM — so streams are network-bound; physical-disk drain
// is modeled separately by the cache writeback.
func (im *Image) streamPath(src, dst *fabric.Node) []*flow.Link {
	return im.cl.NetPath(src, dst)
}

// Sync implements vm.DiskImage. Outside a migration it is a plain flush.
// During one, it is the control-transfer hook (Section 4.4): the source
// stops pushing, waits for in-flight writes, and invokes TRANSFER IO CONTROL
// on the destination. When Sync returns, guest I/O lands on the destination.
func (im *Image) Sync(p *sim.Proc) {
	if im.state != stPushing {
		if im.backing != nil {
			im.backing.Sync(p)
		}
		return
	}
	epoch := im.migEpoch
	im.syncSeen = true
	// Drain guest writes already in flight (the VM is paused; no new ones).
	// The backing store is NOT flushed here: the manager tracks every write
	// itself and the source keeps serving pulls from its cache until
	// released, so the handoff does not wait on physical writeback (the
	// paper's manager likewise acknowledges the hypervisor's sync without
	// draining the disk).
	im.activeWrites.Wait(p)
	if im.migEpoch != epoch {
		return // aborted during the drain: no control transfer
	}

	if im.mirrorActive {
		// Mirror semantics: control transfer requires full synchronization.
		im.bulkDone.Wait(p)
		im.cl.ControlRTT(p)
		if im.migEpoch != epoch {
			return
		}
		im.finishMirror()
		return
	}

	// Abort the in-flight push batch, if any: its chunks go back to the
	// remaining set (partial batch data is discarded — correctness comes
	// from the pull phase; the bytes already on the wire are accounted as
	// canceled-push overhead).
	if im.pushFlow != nil {
		im.pushAborted = true
		var rem float64
		if !im.pushFlow.Done() {
			rem = im.cl.Net.Cancel(im.pushFlow)
		}
		im.stats.CanceledPushBytes += im.pushFlow.Size - rem
		for _, c := range im.pushBatch {
			im.remaining.Add(c)
			im.stats.CanceledPushes++
		}
	}
	im.pushCond.Broadcast(im.eng) // release a waiting push loop so it exits

	// Count the chunks the threshold kept away from the push phase.
	im.remaining.ForEach(func(c chunk.Idx) bool {
		if im.writeCount.Get(c) >= im.opts.Threshold {
			im.stats.SkippedHot++
		}
		return true
	})

	// TRANSFER IO CONTROL: ship the remaining set, write counts, and the
	// hot-base-content hints to the destination.
	im.cl.ControlRTT(p)
	if im.migEpoch != epoch {
		return // aborted during the control round trip
	}
	im.transferIOControl()
}

// finishMirror completes a mirror migration at control transfer: the
// destination holds everything, the source is released immediately.
func (im *Image) finishMirror() {
	now := im.eng.Now()
	im.stats.ControlAt = now
	im.stats.ReleasedAt = now
	im.stats.Complete = true
	im.emitPhase("control-transfer")
	im.emitPhase("released")
	im.promoteDest()
	im.state = stIdle
	im.mirrorActive = false
	im.released.Open(im.eng)
}

// transferIOControl implements Algorithm 3's destination activation.
func (im *Image) transferIOControl() {
	im.stats.ControlAt = im.eng.Now()
	im.emitPhase("control-transfer")
	// Hints: base-image content the source had cached (hot base content).
	var hints []chunk.Idx
	if im.opts.BasePrefetch {
		im.cur.local.ForEach(func(c chunk.Idx) bool {
			if !im.cur.modified.Contains(c) {
				hints = append(hints, c)
			}
			return true
		})
	}
	counts := im.writeCount.Snapshot()
	if !im.opts.PullPriority {
		counts = make([]uint32, len(counts)) // FIFO ablation: flat priority
	}
	im.promoteDest()
	im.state = stPulling
	im.pullGates = make(map[chunk.Idx]*sim.Gate)
	im.pullQueue = chunk.NewPullQueue(im.remaining, counts)
	im.startPull()
	if len(hints) > 0 {
		im.startBasePrefetch(hints)
	}
	im.maybeComplete()
}

// promoteDest makes the destination the active side.
func (im *Image) promoteDest() {
	im.old = im.cur
	im.cur = im.dst
	im.dst = nil
}

// startPull launches BACKGROUND PULL (Algorithm 3): prefetch remaining
// chunks in decreasing write-count order, batching for streaming.
func (im *Image) startPull() {
	epoch := im.migEpoch
	im.eng.Go(im.name+"/pull", func(p *sim.Proc) {
		for {
			for im.pullSuspend > 0 {
				im.pullResume.Wait(p)
				if im.migEpoch != epoch {
					return
				}
			}
			first := im.pullQueue.Pop()
			if first < 0 {
				break
			}
			batch := []chunk.Idx{first}
			for len(batch) < im.opts.PullBatch {
				c := im.pullQueue.Pop()
				if c < 0 {
					break
				}
				batch = append(batch, c)
			}
			im.pullChunks(p, batch, false)
			if im.migEpoch != epoch {
				return
			}
		}
		im.maybeComplete()
	})
}

// pullChunks transfers a set of remaining chunks from the relinquished
// source. onDemand marks priority pulls triggered by guest I/O. On abort it
// returns with the attempt's state untouched (the caller re-checks the
// migration epoch).
func (im *Image) pullChunks(p *sim.Proc, batch []chunk.Idx, onDemand bool) {
	epoch := im.migEpoch
	src := im.old
	gate := &sim.Gate{}
	for _, c := range batch {
		im.remaining.Remove(c)
		im.inFlight.Add(c)
		im.pullGates[c] = gate
	}
	snapshot := make([]uint64, len(batch))
	for i, c := range batch {
		snapshot[i] = src.content[c]
	}
	wire := im.wireBytes(p, batch, snapshot)
	im.pullsActive++
	// Pulls are request/response: each pays service latency at the source
	// in addition to the network round trip, unlike the streaming push.
	p.Sleep(im.opts.PullRequestLatency + 2*im.cl.P.NetLatency)
	if im.migEpoch != epoch {
		return // aborted during the request round trip
	}
	if !im.trackedTransfer(p, epoch, im.streamPath(src.node, im.cur.node), wire, flow.TagStoragePull) {
		return // aborted mid-transfer: nothing installed
	}
	im.pullsActive--
	if onDemand {
		im.stats.OnDemandBytes += wire
		im.stats.OnDemandPulls += len(batch)
	} else {
		im.stats.PulledBytes += wire
		im.stats.PulledChunks += len(batch)
	}
	for i, c := range batch {
		im.inFlight.Remove(c)
		delete(im.pullGates, c)
		if im.dstFresh.Contains(c) {
			continue // a destination write superseded the pull mid-flight
		}
		im.cur.local.Add(c)
		im.cur.modified.Add(c)
		im.cur.content[c] = snapshot[i]
		im.known[snapshot[i]] = true
		im.notifyInstall(c, c)
	}
	gate.Open(im.eng)
	im.maybeComplete()
}

// onDemandPull serves a guest access to chunks still owed by the source
// (Algorithm 4): suspend the background prefetcher, pull with priority,
// resume. Chunks already in flight are awaited instead of re-pulled.
func (im *Image) onDemandPull(p *sim.Proc, first, last chunk.Idx) {
	epoch := im.migEpoch
	for im.migEpoch == epoch && im.isDest() {
		var need []chunk.Idx
		var awaitGate *sim.Gate
		for c := first; c <= last; c++ {
			switch {
			case im.remaining.Contains(c):
				need = append(need, c)
			case im.inFlight.Contains(c):
				awaitGate = im.pullGates[c]
			}
		}
		if len(need) == 0 && awaitGate == nil {
			return
		}
		if len(need) > 0 {
			im.pullSuspend++
			im.pullChunks(p, need, true)
			if im.migEpoch != epoch {
				return // aborted: the fallback source serves the access
			}
			im.pullSuspend--
			im.pullResume.Broadcast(im.eng)
			continue // re-check: writes may have raced
		}
		awaitGate.Wait(p)
	}
}

// startBasePrefetch fetches hot base-image content from the repository in
// the background (never from the source), rate-capped so it does not starve
// the pulls.
func (im *Image) startBasePrefetch(hints []chunk.Idx) {
	epoch := im.migEpoch
	im.eng.Go(im.name+"/baseprefetch", func(p *sim.Proc) {
		dest := im.cur
		for i := 0; i < len(hints) && im.migEpoch == epoch; {
			// Coalesce a contiguous run of hinted chunks.
			j := i
			for j+1 < len(hints) && hints[j+1] == hints[j]+1 {
				j++
			}
			first, last := hints[i], hints[j]
			i = j + 1
			// Skip chunks that arrived some other way meanwhile.
			for first <= last && (dest.local.Contains(first) || dest.modified.Contains(first)) {
				first++
			}
			if first > last {
				continue
			}
			r1 := im.geo.ChunkRange(first)
			r2 := im.geo.ChunkRange(last)
			length := r2.End() - r1.Off
			done := &sim.Gate{}
			im.base.ReadRangeAsync(dest.node, r1.Off, length, im.opts.BasePrefetchRate,
				func() { done.Open(im.eng) })
			done.Wait(p)
			if im.migEpoch != epoch {
				return // aborted: the crashed destination discards the prefetch
			}
			im.stats.PrefetchBytes += float64(length)
			for c := first; c <= last; c++ {
				if !dest.modified.Contains(c) {
					dest.local.Add(c)
				}
			}
			im.notifyInstall(first, last)
		}
	})
}

// maybeComplete releases the source once the destination owes it nothing.
func (im *Image) maybeComplete() {
	if im.state != stPulling || im.stats.Complete {
		return
	}
	if !im.remaining.Empty() || !im.inFlight.Empty() || im.pullsActive > 0 {
		return
	}
	im.stats.ReleasedAt = im.eng.Now()
	im.stats.Complete = true
	im.state = stIdle
	im.old = nil
	im.emitPhase("released")
	im.released.Open(im.eng)
}

// registerFlow tracks an in-flight migration transfer so Abort can cancel
// it. Registration order is the deterministic cancel order.
func (im *Image) registerFlow(f *flow.Flow) {
	im.xferFlows = append(im.xferFlows, f)
}

// unregisterFlow drops a transfer from the abort set. Absent flows (already
// swept by an abort) are a no-op.
func (im *Image) unregisterFlow(f *flow.Flow) {
	for i, g := range im.xferFlows {
		if g == f {
			im.xferFlows = append(im.xferFlows[:i], im.xferFlows[i+1:]...)
			return
		}
	}
}

// trackedTransfer runs one abortable migration transfer: start the flow,
// register it for Abort, wait, unregister. It reports whether the attempt
// that issued it is still live — false means a fault tore the attempt down
// mid-transfer (the abort already charged the wire bytes) and the caller
// must touch no further attempt state.
func (im *Image) trackedTransfer(p *sim.Proc, epoch uint64, links []*flow.Link, size float64, tag flow.Tag) bool {
	f := &flow.Flow{Links: links, Size: size, Tag: tag}
	im.cl.Net.Start(f)
	im.registerFlow(f)
	f.Wait(p)
	im.unregisterFlow(f)
	return im.migEpoch == epoch
}

// cancelXfers cancels every registered in-flight transfer in registration
// order, charging the bytes each moved to the attempt's wasted counter. A
// registered flow is exactly one whose waiting process has not yet resumed
// and accounted it: flows still on the wire are canceled and charged for
// their settled part; flows that completed in this very instant (the process
// wake-up was queued behind the abort) are charged in full — the epoch guard
// will stop the process from installing or double-counting them.
func (im *Image) cancelXfers() {
	flows := im.xferFlows
	im.xferFlows = nil
	for _, f := range flows {
		var rem float64
		if !f.Done() {
			rem = im.cl.Net.Cancel(f)
		}
		im.stats.AbortedWireBytes += f.Size - rem
	}
}

// Abort tears down the in-flight migration after an injected fault (a
// destination-node crash, a link blackout that makes completion hopeless, an
// exceeded deadline). Every in-flight push/pull/bulk/mirror transfer is
// canceled, destination-side state is released, and I/O control stays at —
// or falls back to — the source replica, which a migration never gives up
// before full completion (the scheme's own safety property: the source holds
// everything until RELEASED). Destination writes made after control transfer
// are lost with the crashed destination, exactly as a real crash loses them.
// Stats for the attempt remain readable (Aborted, wasted wire bytes); a
// subsequent MigrationRequest starts a clean retry. Returns false when no
// migration is in flight.
//
// Abort runs synchronously (engine or process context): it schedules no
// work of its own, only cancels, so a retry can be requested immediately.
func (im *Image) Abort(reason string) bool {
	if im.state == stIdle {
		return false
	}
	fromState := im.state
	im.migEpoch++ // every parked attempt process bails at its next step
	im.stats.Aborted = true

	// Cancel the in-flight push batch, if any (hybrid source phase). A push
	// already canceled by a racing Sync was charged there; a flow that
	// completed but whose process has not resumed is charged in full.
	if im.pushFlow != nil && !im.pushAborted {
		im.pushAborted = true
		var rem float64
		if !im.pushFlow.Done() {
			rem = im.cl.Net.Cancel(im.pushFlow)
		}
		im.stats.AbortedWireBytes += im.pushFlow.Size - rem
		for range im.pushBatch {
			im.stats.CanceledPushes++
		}
	}
	im.pushCond.Broadcast(im.eng)
	im.cancelXfers()

	if fromState == stPulling {
		// Destination crash after control transfer: fall back to the source
		// side, which still holds every chunk the destination had not yet
		// pulled plus everything it ever pushed.
		im.cur = im.old
		// Release guest accesses parked on pull-arrival gates; they re-check
		// the (now idle) state and proceed against the source replica.
		gates := make([]*sim.Gate, 0, len(im.pullGates))
		idxs := make([]chunk.Idx, 0, len(im.pullGates))
		for c := range im.pullGates {
			idxs = append(idxs, c)
		}
		slices.Sort(idxs) // map order is not deterministic; wake in chunk order
		seen := map[*sim.Gate]bool{}
		for _, c := range idxs {
			if g := im.pullGates[c]; !seen[g] {
				seen[g] = true
				gates = append(gates, g)
			}
		}
		for _, g := range gates {
			g.Open(im.eng)
		}
	}
	im.pullSuspend = 0
	im.pullsActive = 0
	im.pullResume.Broadcast(im.eng)
	// A mirror-mode hypervisor may be parked on the bulk gate; open it so it
	// wakes and observes the abort.
	im.bulkDone.Open(im.eng)
	im.mirrorActive = false

	im.state = stIdle
	im.old = nil
	im.dst = nil
	im.dstNode = nil
	im.remaining = nil
	im.inFlight = nil
	im.pullQueue = nil
	im.pullGates = nil
	im.writeCount = nil
	im.dstFresh = nil

	// The manager-level view of the abort is a phase transition; the
	// middleware publishes the aggregate trace.KindMigrationAborted event.
	im.emitPhase("aborted:" + reason)
	// Wake WaitComplete callers; Complete() stays false for the attempt.
	im.released.Open(im.eng)
	return true
}

// BulkDoneGate returns the gate that opens when the mirror bulk copy has
// fully synchronized the destination (always open for other modes' callers
// after control transfer).
func (im *Image) BulkDoneGate() *sim.Gate { return &im.bulkDone }

// WaitComplete parks until the migration fully completes (source released).
func (im *Image) WaitComplete(p *sim.Proc) {
	im.released.Wait(p)
}

// Complete reports whether the last migration has fully finished.
func (im *Image) Complete() bool { return im.stats.Complete }
