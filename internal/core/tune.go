package core

import "github.com/hybridmig/hybridmig/internal/chunk"

// Runtime tuning and observability hooks of the migration manager. These are
// generic knobs: the ablation bench sweeps the threshold statically, and
// strategies layered on the manager (the adaptive-threshold hybrid) retune
// it while a push phase runs.

// Threshold returns the currently effective Algorithm 1 write-count cutoff.
func (im *Image) Threshold() uint32 { return im.opts.Threshold }

// SetThreshold replaces the Algorithm 1 write-count cutoff. Chunks are
// classified against the new value from the next batch scan on; raising it
// during an active push phase makes previously hot chunks eligible again, so
// a push loop parked on an empty eligible set is woken to rescan.
func (im *Image) SetThreshold(t uint32) {
	if t == im.opts.Threshold {
		return
	}
	im.opts.Threshold = t
	if im.state == stPushing && !im.mirrorActive && !im.syncSeen {
		im.pushCond.Broadcast(im.eng)
	}
}

// MigrationEpoch returns the image's attempt counter: MigrationRequest and
// Abort each advance it. Processes serving one attempt capture it first and
// stand down when it moves — the guard every manager task uses, exposed so
// controllers layered on the manager (threshold adaptation) can use the
// same discipline instead of surviving an abort into the next attempt.
func (im *Image) MigrationEpoch() uint64 { return im.migEpoch }

// PushHeat folds fn over the per-chunk write counts observed since the
// migration request — the write-heat distribution Algorithm 1's threshold
// cuts. A fold (rather than a snapshot copy) keeps periodic resamplers
// allocation-free at paper scale (~64Ki chunks per image). It reports false
// without calling fn when no push-phase source is live (idle, mirror, after
// control transfer, or aborted), which is the signal for adaptive samplers
// to stand down.
func (im *Image) PushHeat(fn func(count uint32)) bool {
	if im.state != stPushing || im.syncSeen || im.mirrorActive || im.writeCount == nil {
		return false
	}
	wc := im.writeCount
	for c := 0; c < wc.Len(); c++ {
		fn(wc.Get(chunk.Idx(c)))
	}
	return true
}
