package core

import (
	"testing"

	"github.com/hybridmig/hybridmig/internal/chunk"
	"github.com/hybridmig/hybridmig/internal/sim"
)

// TestSyncWithoutMigrationIsFlushOnly exercises the non-migrating Sync path.
func TestSyncWithoutMigrationIsFlushOnly(t *testing.T) {
	r := newRig()
	im := r.image(ModeHybrid, 0)
	r.eng.Go("io", func(p *sim.Proc) {
		im.Write(p, 0, 1*mb)
		im.Sync(p) // must be a no-op for migration state
	})
	r.run(t)
	if im.Stats().Complete {
		t.Fatal("sync without migration marked a migration complete")
	}
	if im.Node() != r.cl.Nodes[0] {
		t.Fatal("sync moved the image")
	}
}

// TestMigrationWithEmptyModifiedSet: a freshly deployed VM with no writes
// migrates storage instantly (nothing to transfer).
func TestMigrationWithEmptyModifiedSet(t *testing.T) {
	r := newRig()
	im := r.image(ModeHybrid, 0)
	r.eng.Go("hv", func(p *sim.Proc) {
		im.MigrationRequest(r.cl.Nodes[1])
		p.Sleep(0.5)
		im.Sync(p)
	})
	r.run(t)
	st := im.Stats()
	if !st.Complete {
		t.Fatal("empty migration incomplete")
	}
	if st.PushedChunks+st.PulledChunks+st.OnDemandPulls != 0 {
		t.Fatal("moved chunks despite empty modified set")
	}
	if st.ReleasedAt != st.ControlAt {
		t.Fatal("empty migration should release at control transfer")
	}
}

// TestWholeImageWrite covers span arithmetic at the image boundary.
func TestWholeImageWrite(t *testing.T) {
	r := newRig()
	im := r.image(ModeHybrid, 0)
	r.eng.Go("io", func(p *sim.Proc) {
		im.Write(p, 0, imageSize)
		im.Read(p, 0, imageSize)
	})
	r.run(t)
	if im.ModifiedCount() != r.geo.Chunks() {
		t.Fatalf("modified = %d, want all %d", im.ModifiedCount(), r.geo.Chunks())
	}
}

// TestReadDuringPushPhaseStaysLocal: reads at the source during the push
// phase never touch the destination or the repository for local chunks.
func TestReadDuringPushPhaseStaysLocal(t *testing.T) {
	r := newRig()
	im := r.image(ModeHybrid, 0)
	r.eng.Go("setup", func(p *sim.Proc) {
		im.Write(p, 0, 8*mb)
		im.MigrationRequest(r.cl.Nodes[1])
		before := r.store.ReadBytes()
		im.Read(p, 0, 8*mb)
		if r.store.ReadBytes() != before {
			t.Error("source read hit the repository during push phase")
		}
		p.Sleep(2)
		im.Sync(p)
	})
	r.run(t)
	if !im.Complete() {
		t.Fatal("incomplete")
	}
}

// TestOnDestInstallCallback observes installs for pushed and pulled chunks.
func TestOnDestInstallCallback(t *testing.T) {
	r := newRig()
	im := r.image(ModeHybrid, 0)
	var installed int64
	im.OnDestInstall = func(off, length int64) { installed += length }
	r.eng.Go("setup", func(p *sim.Proc) {
		im.Write(p, 0, 8*mb)
		im.MigrationRequest(r.cl.Nodes[1])
		p.Sleep(0.05) // partial push; rest pulls
		im.Sync(p)
	})
	r.run(t)
	if !im.Complete() {
		t.Fatal("incomplete")
	}
	if installed < 8*mb {
		t.Fatalf("install callback saw %d bytes, want >= 8 MB", installed)
	}
}

// TestForEachLocalRangeCoversLocalSet: ranges reported exactly tile the
// local chunk set.
func TestForEachLocalRangeCoversLocalSet(t *testing.T) {
	r := newRig()
	im := r.image(ModeHybrid, 0)
	r.eng.Go("io", func(p *sim.Proc) {
		im.Write(p, 0, 2*mb)
		im.Write(p, 10*mb, 1*mb)
	})
	r.run(t)
	var covered int64
	im.ForEachLocalRange(func(off, length int64) {
		first, last := r.geo.Span(chunk.Range{Off: off, Len: length})
		covered += int64(last-first+1) * r.geo.ChunkSize
	})
	want := int64(im.ModifiedCount()) * r.geo.ChunkSize
	if covered != want {
		t.Fatalf("ranges cover %d bytes, want %d", covered, want)
	}
}

// TestPostcopyWriteCountsStillTracked: the postcopy baseline tracks write
// counts during its passive phase so the pull phase can prioritize.
func TestPostcopyWriteCountsStillTracked(t *testing.T) {
	r := newRig()
	im := r.image(ModePostcopy, 0)
	r.eng.Go("setup", func(p *sim.Proc) {
		im.Write(p, 0, 4*mb)
		im.MigrationRequest(r.cl.Nodes[1])
		for i := 0; i < 5; i++ {
			im.Write(p, 0, chunkSize) // heat chunk 0
		}
		p.Sleep(0.01)
		im.Sync(p)
	})
	r.run(t)
	if !im.Complete() {
		t.Fatal("incomplete")
	}
	if im.Stats().PulledChunks+im.Stats().OnDemandPulls == 0 {
		t.Fatal("nothing pulled")
	}
}

// TestMirrorWriteBeforeBulkReachesDest: content mirrored synchronously must
// never be overwritten by a later (stale) bulk install.
func TestMirrorWriteBeforeBulkReachesDest(t *testing.T) {
	r := newRig()
	opts := DefaultOptions(ModeMirror)
	opts.PullBatch = 1
	im := r.imageOpts(opts, 0)
	r.eng.Go("setup", func(p *sim.Proc) {
		im.Write(p, 0, 16*mb) // bulk payload
		im.MigrationRequest(r.cl.Nodes[1])
		// Rewrite chunk 0 immediately: the mirror write races the bulk copy.
		im.Write(p, 0, chunkSize)
		p.Sleep(5)
		im.Sync(p)
	})
	r.run(t)
	if !im.Complete() {
		t.Fatal("incomplete")
	}
	// Chunk 0's content after migration must be the rewrite (the last write
	// has the highest content ID among chunk 0's writes).
	snap := im.ContentSnapshot()
	if snap[0] == 0 {
		t.Fatal("chunk 0 lost content")
	}
	// Rewrite was the 65th write overall (16 MB = 64 chunks, then chunk 0).
	// All content IDs are ordered by write sequence; chunk 0's final ID must
	// exceed chunk 63's.
	if snap[0] <= snap[63] {
		t.Fatalf("stale bulk content overwrote a mirrored write: chunk0=%d chunk63=%d", snap[0], snap[63])
	}
}
