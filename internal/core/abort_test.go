package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/hybridmig/hybridmig/internal/sim"
)

// runUntilQuiet drains the engine without shutting it down, so a test can
// keep scheduling work on the same rig afterwards.
func runUntilQuiet(t *testing.T, r *rig) {
	t.Helper()
	if err := r.eng.RunUntil(1e6); err != nil {
		t.Fatal(err)
	}
}

// TestAbortIdleIsNoop: aborting with no migration in flight reports false.
func TestAbortIdleIsNoop(t *testing.T) {
	r := newRig()
	im := r.image(ModeHybrid, 0)
	if im.Abort("noop") {
		t.Fatal("Abort on idle image reported true")
	}
}

// TestAbortPushPhaseCleanup: a fault during the push phase must cancel the
// in-flight push, leave zero active flows and no pending simulation work,
// keep I/O control at the source, and leave the image ready for a clean
// retry that converges to the same state as an undisturbed migration.
func TestAbortPushPhaseCleanup(t *testing.T) {
	r := newRig()
	im := r.image(ModeHybrid, 0)
	r.eng.Go("setup", func(p *sim.Proc) {
		im.Write(p, 0, 32*mb) // 128 chunks; the local write takes ~0.64 s
		im.MigrationRequest(r.cl.Nodes[1])
	})
	// The push (32 MB over a 100 MB/s NIC) runs from ~0.64 s to ~0.96 s;
	// abort in the middle of it.
	r.eng.At(0.8, func() {
		if !im.Abort("dest-crash") {
			t.Error("Abort found no migration in flight")
		}
		st := im.Stats()
		if !st.Aborted {
			t.Error("stats not marked aborted")
		}
		if st.WireBytes() <= 0 {
			t.Error("aborted attempt wasted no wire bytes")
		}
		if im.Node() != r.cl.Nodes[0] {
			t.Error("I/O control left the source")
		}
	})
	runUntilQuiet(t, r)
	// Cleanup: nothing may linger — no active flows, no timers, no live
	// processes.
	if n := r.cl.Net.ActiveFlows(); n != 0 {
		t.Fatalf("active flows after abort = %d, want 0", n)
	}
	if n := r.eng.PendingEvents(); n != 0 {
		t.Fatalf("pending events after abort = %d, want 0", n)
	}
	if n := r.eng.LiveProcs(); n != 0 {
		t.Fatalf("live processes after abort = %d, want 0", n)
	}

	// Reference: an undisturbed migration of the same content on a fresh rig.
	r2 := newRig()
	ref := r2.image(ModeHybrid, 0)
	r2.eng.Go("ref", func(p *sim.Proc) {
		ref.Write(p, 0, 32*mb)
		ref.MigrationRequest(r2.cl.Nodes[1])
		p.Sleep(5)
		ref.Sync(p)
		ref.WaitComplete(p)
	})
	r2.run(t)

	// Retry on the aborted rig: must converge to the reference state.
	r.eng.Go("retry", func(p *sim.Proc) {
		im.MigrationRequest(r.cl.Nodes[1])
		p.Sleep(5)
		im.Sync(p)
		im.WaitComplete(p)
	})
	runUntilQuiet(t, r)
	r.eng.Shutdown()
	if !im.Complete() {
		t.Fatal("retry did not complete")
	}
	if im.Node() != r.cl.Nodes[1] {
		t.Fatal("retry did not move I/O control to the destination")
	}
	got, want := im.ContentSnapshot(), ref.ContentSnapshot()
	for c := range got {
		if got[c] != want[c] {
			t.Fatalf("chunk %d content %d after retry, reference %d", c, got[c], want[c])
		}
	}
	if st := im.Stats(); st.Aborted {
		t.Fatal("retry attempt inherited the aborted flag")
	}
}

// TestAbortPullPhaseFallsBackToSource: a destination crash after control
// transfer must cancel pulls, return I/O control to the source replica, and
// release parked on-demand accesses.
func TestAbortPullPhaseFallsBackToSource(t *testing.T) {
	r := newRig()
	im := r.image(ModePostcopy, 0) // nothing pushed: everything pulls
	readDone := false
	r.eng.Go("setup", func(p *sim.Proc) {
		im.Write(p, 0, 32*mb) // done at ~0.64 s
		im.MigrationRequest(r.cl.Nodes[1])
		im.Sync(p) // immediate control transfer; the pull phase runs ~0.64-1.0 s
		// An on-demand read for a chunk the crash may strand.
		im.Read(p, 20*mb, chunkSize)
		readDone = true
	})
	r.eng.At(0.8, func() {
		if im.Node() != r.cl.Nodes[1] {
			t.Error("control transfer did not reach the destination before the fault")
		}
		if !im.Abort("dest-crash") {
			t.Error("Abort found no migration in flight")
		}
		if im.Node() != r.cl.Nodes[0] {
			t.Error("I/O control did not fall back to the source")
		}
	})
	runUntilQuiet(t, r)
	r.eng.Shutdown()
	if !readDone {
		t.Fatal("on-demand read stayed parked after the abort")
	}
	if n := r.cl.Net.ActiveFlows(); n != 0 {
		t.Fatalf("active flows after abort = %d, want 0", n)
	}
	if n := r.eng.LiveProcs(); n != 0 {
		t.Fatalf("live processes after abort = %d, want 0", n)
	}
	if im.Complete() {
		t.Fatal("aborted migration reported complete")
	}
	// Source content intact: every written chunk still has its content.
	snap := im.ContentSnapshot()
	for c := 0; c < 128; c++ {
		if snap[c] == 0 {
			t.Fatalf("chunk %d lost content in the fallback", c)
		}
	}
}

// TestAbortMirrorReleasesBulkGate: a fault during the mirror bulk copy must
// open the bulk gate (so a stop-gate waiter wakes) without completing.
func TestAbortMirrorReleasesBulkGate(t *testing.T) {
	r := newRig()
	im := r.image(ModeMirror, 0)
	r.eng.Go("setup", func(p *sim.Proc) {
		im.Write(p, 0, 32*mb) // done at ~0.64 s; bulk copy follows
		im.MigrationRequest(r.cl.Nodes[1])
	})
	r.eng.At(0.8, func() {
		if !im.Abort("dest-crash") {
			t.Error("Abort found no migration in flight")
		}
		if !im.BulkDoneGate().IsOpen() {
			t.Error("bulk gate still closed after abort")
		}
	})
	runUntilQuiet(t, r)
	r.eng.Shutdown()
	if im.Complete() {
		t.Fatal("aborted mirror migration reported complete")
	}
	if n := r.cl.Net.ActiveFlows(); n != 0 {
		t.Fatalf("active flows after abort = %d, want 0", n)
	}
}

// TestAbortRetryConsistencyProperty is the randomized abort/retry harness at
// the manager level: random writes race a migration that is aborted at a
// random instant and then retried; the retried migration must complete with
// every chunk holding exactly the content of its last write (each chunk
// installed exactly once on the surviving owner — nothing lost to the abort,
// nothing duplicated by the retry).
func TestAbortRetryConsistencyProperty(t *testing.T) {
	for _, mode := range []Mode{ModeHybrid, ModePostcopy, ModeMirror} {
		mode := mode
		f := func(seed int64) bool {
			rng := rand.New(rand.NewSource(seed))
			r := newRig()
			im := r.image(mode, 0)
			nChunks := r.geo.Chunks()
			shadow := make([]uint64, nChunks)
			seq := uint64(0)
			// The workload only writes while I/O control is at the source
			// (before control transfer, or after a fallback), so the shadow
			// is exact: destination-phase writes would be lost with the
			// crashed destination and are not modeled here.
			write := func(p *sim.Proc, c int64) {
				im.Write(p, c*chunkSize, chunkSize)
				seq++
				shadow[c] = 16 + seq
			}
			abortAt := 0.05 + rng.Float64()*1.5
			r.eng.At(abortAt, func() { im.Abort("fault") })
			r.eng.Go("workload", func(p *sim.Proc) {
				for i := 0; i < 10+rng.Intn(20); i++ {
					write(p, int64(rng.Intn(nChunks)))
				}
				// Attempt 1: may be aborted during push, sync, or pull.
				im.MigrationRequest(r.cl.Nodes[1])
				p.Sleep(rng.Float64() * 0.4)
				im.Sync(p)
				im.WaitComplete(p)
				if !im.Complete() {
					// Aborted: I/O control is back at (or still at) node 0.
					if im.Node() != r.cl.Nodes[0] {
						t.Errorf("seed %d mode %v: fallback landed on %v", seed, mode, im.Node())
					}
					for i := 0; i < rng.Intn(10); i++ {
						write(p, int64(rng.Intn(nChunks)))
					}
					// Retry after a backoff; no fault this time.
					p.Sleep(0.2)
					im.MigrationRequest(r.cl.Nodes[1])
					p.Sleep(rng.Float64() * 0.2)
					im.Sync(p)
					im.WaitComplete(p)
				}
			})
			if err := r.eng.RunUntil(1e6); err != nil {
				t.Logf("seed %d mode %v: %v", seed, mode, err)
				return false
			}
			r.eng.Shutdown()
			if !im.Complete() {
				t.Logf("seed %d mode %v: retry incomplete", seed, mode)
				return false
			}
			if im.Node() != r.cl.Nodes[1] {
				t.Logf("seed %d mode %v: final owner %v", seed, mode, im.Node())
				return false
			}
			got := im.ContentSnapshot()
			for c := 0; c < nChunks; c++ {
				if shadow[c] != 0 && got[c] != shadow[c] {
					t.Logf("seed %d mode %v: chunk %d content %d, want %d",
						seed, mode, c, got[c], shadow[c])
					return false
				}
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
			t.Fatalf("mode %v: %v", mode, err)
		}
	}
}

// TestAbortTwiceSecondIsNoop: only the first abort of an attempt acts.
func TestAbortTwiceSecondIsNoop(t *testing.T) {
	r := newRig()
	im := r.image(ModeHybrid, 0)
	r.eng.Go("setup", func(p *sim.Proc) {
		im.Write(p, 0, 8*mb) // done at ~0.16 s; the source then idles in push phase
		im.MigrationRequest(r.cl.Nodes[1])
	})
	r.eng.At(0.5, func() {
		if !im.Abort("first") {
			t.Error("first abort missed")
		}
		if im.Abort("second") {
			t.Error("second abort acted on an idle image")
		}
	})
	r.run(t)
}

// TestAbortThenImmediateRetrySameInstant: Abort promises "a retry can be
// requested immediately". The stale push process of the aborted attempt —
// woken by its canceled flow but scheduled BEHIND the abort+re-request —
// must touch nothing of the new attempt: no wire bytes credited, no chunks
// installed, no shared push state clobbered.
func TestAbortThenImmediateRetrySameInstant(t *testing.T) {
	r := newRig()
	im := r.image(ModeHybrid, 0)
	r.eng.Go("setup", func(p *sim.Proc) {
		im.Write(p, 0, 32*mb)
		im.MigrationRequest(r.cl.Nodes[1])
	})
	// Mid-push: abort and re-request in the same engine callback, before
	// the canceled push process gets to run.
	r.eng.At(0.8, func() {
		if !im.Abort("dest-crash") {
			t.Error("Abort found no migration in flight")
		}
		im.MigrationRequest(r.cl.Nodes[1])
		if st := im.Stats(); st.PushedBytes != 0 || st.PushedChunks != 0 {
			t.Errorf("fresh attempt born with pushed=%v/%d", st.PushedBytes, st.PushedChunks)
		}
	})
	r.eng.At(0.8001, func() {
		// The stale process has run by now; the new attempt's stats must
		// still be clean of the canceled batch, and the destination must
		// not hold chunks no live flow delivered.
		st := im.Stats()
		if st.PushedChunks >= 64 {
			t.Errorf("stale push credited its canceled batch: pushed=%v/%d",
				st.PushedBytes, st.PushedChunks)
		}
	})
	r.eng.Go("sync", func(p *sim.Proc) {
		p.Sleep(6)
		im.Sync(p)
		im.WaitComplete(p)
	})
	runUntilQuiet(t, r)
	r.eng.Shutdown()
	if !im.Complete() {
		t.Fatal("immediate retry did not complete")
	}
	// Content must be exactly the 128 written chunks, once each.
	snap := im.ContentSnapshot()
	for c := 0; c < 128; c++ {
		if snap[c] == 0 {
			t.Fatalf("chunk %d lost in immediate retry", c)
		}
	}
}
