package pfs

import (
	"math"
	"testing"

	"github.com/hybridmig/hybridmig/internal/fabric"
	"github.com/hybridmig/hybridmig/internal/params"
	"github.com/hybridmig/hybridmig/internal/sim"
)

func testFS(nServers int) (*sim.Engine, *fabric.Cluster, *FS) {
	eng := sim.New()
	tb := params.DefaultTestbed()
	tb.NICBandwidth = 100
	tb.DiskBandwidth = 50
	tb.FabricBandwidth = 10000
	tb.NetLatency = 0
	tb.DiskLatency = 0
	c := fabric.NewCluster(eng, nServers+2, tb)
	fs := NewFS(c, c.Nodes[:nServers], Params{StripeSize: 100})
	return eng, c, fs
}

func TestCreateOpen(t *testing.T) {
	_, _, fs := testFS(2)
	f := fs.Create("disk.qcow2", 950)
	if f.Stripes() != 10 {
		t.Fatalf("stripes = %d", f.Stripes())
	}
	if fs.Open("disk.qcow2") != f {
		t.Fatal("Open did not find file")
	}
	if fs.Open("missing") != nil {
		t.Fatal("Open invented a file")
	}
}

func TestWriteUpdatesContent(t *testing.T) {
	eng, c, fs := testFS(2)
	f := fs.Create("f", 1000)
	client := c.Nodes[3]
	eng.Go("w", func(p *sim.Proc) {
		f.Write(p, client, 150, 200, 42) // touches stripes 1,2,3
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	want := []ContentID{0, 42, 42, 42, 0, 0, 0, 0, 0, 0}
	for i, w := range want {
		if f.ContentAt(i) != w {
			t.Fatalf("content[%d] = %d, want %d", i, f.ContentAt(i), w)
		}
	}
	if fs.WriteBytes() != 200 {
		t.Fatalf("write bytes = %v, want 200", fs.WriteBytes())
	}
}

func TestReadTiming(t *testing.T) {
	// 400 bytes striped over 2 servers (200 each): each server flow is
	// disk-bound at 50 B/s -> both finish at 4s; client NIC 100 not limiting.
	eng, c, fs := testFS(2)
	f := fs.Create("f", 400)
	client := c.Nodes[3]
	var doneAt sim.Time
	eng.Go("r", func(p *sim.Proc) {
		f.Read(p, client, 0, 400)
		doneAt = p.Now()
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if math.Abs(doneAt-4) > 1e-6 {
		t.Fatalf("doneAt = %v, want 4", doneAt)
	}
	if fs.ReadBytes() != 400 {
		t.Fatalf("read bytes = %v", fs.ReadBytes())
	}
}

func TestPartialStripeAccounting(t *testing.T) {
	eng, c, fs := testFS(2)
	f := fs.Create("f", 1000)
	client := c.Nodes[3]
	eng.Go("w", func(p *sim.Proc) {
		f.Write(p, client, 150, 100, 7) // 50 bytes in stripe 1, 50 in stripe 2
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if fs.WriteBytes() != 100 {
		t.Fatalf("write bytes = %v, want exactly the addressed 100", fs.WriteBytes())
	}
}

func TestEveryIOCrossesNetwork(t *testing.T) {
	// The essence of pvfs-shared: even small writes generate network traffic.
	eng, c, fs := testFS(2)
	f := fs.Create("f", 1000)
	client := c.Nodes[3]
	eng.Go("w", func(p *sim.Proc) {
		for i := 0; i < 10; i++ {
			f.Write(p, client, int64(i*100), 100, ContentID(i))
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	fabricBytes := c.Fabric.Bytes()
	if math.Abs(fabricBytes-1000) > 1e-6 {
		t.Fatalf("fabric bytes = %v, want 1000", fabricBytes)
	}
}

func TestOutOfRangePanics(t *testing.T) {
	_, _, fs := testFS(1)
	f := fs.Create("f", 100)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	f.span(50, 100)
}
