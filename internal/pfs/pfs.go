// Package pfs implements the parallel file system substrate (a PVFS
// stand-in, Carns et al.) used by the pvfs-shared baseline: the traditional
// configuration in which VM disk state lives on shared storage so that live
// migration needs no storage transfer at all — at the price of sending every
// guest I/O over the network.
//
// Files are striped round-robin over I/O server nodes. Every read and write
// is synchronous: the client pays a metadata round trip plus data flows
// to/from the servers holding the addressed stripes. Content IDs mirror the
// convention of package blob.
package pfs

import (
	"fmt"

	"github.com/hybridmig/hybridmig/internal/fabric"
	"github.com/hybridmig/hybridmig/internal/flow"
	"github.com/hybridmig/hybridmig/internal/sim"
)

// ContentID identifies stripe content (zero = never written).
type ContentID uint64

// Params configures the file system.
type Params struct {
	StripeSize      int64
	MetadataLatency float64 // one metadata round trip (open/lookup)
}

// FS is the parallel file system service.
type FS struct {
	Cluster *fabric.Cluster
	Servers []*fabric.Node
	P       Params

	files      map[string]*File
	readBytes  float64
	writeBytes float64
	requests   uint64
}

// NewFS creates a file system over the given I/O server nodes.
func NewFS(c *fabric.Cluster, servers []*fabric.Node, p Params) *FS {
	if len(servers) == 0 {
		panic("pfs: need at least one server")
	}
	if p.StripeSize <= 0 {
		panic("pfs: stripe size must be positive")
	}
	return &FS{Cluster: c, Servers: servers, P: p, files: make(map[string]*File)}
}

// ReadBytes returns total bytes served to readers.
func (fs *FS) ReadBytes() float64 { return fs.readBytes }

// WriteBytes returns total bytes accepted from writers.
func (fs *FS) WriteBytes() float64 { return fs.writeBytes }

// Requests returns the number of I/O requests processed.
func (fs *FS) Requests() uint64 { return fs.requests }

// File is one striped file.
type File struct {
	fs      *FS
	Name    string
	Size    int64
	content []ContentID
}

// Create makes a file of fixed size (a preallocated virtual disk or
// snapshot file). Creating an existing name panics: the baselines never
// recreate files.
func (fs *FS) Create(name string, size int64) *File {
	if size <= 0 {
		panic("pfs: file size must be positive")
	}
	if _, ok := fs.files[name]; ok {
		panic(fmt.Sprintf("pfs: file %q already exists", name))
	}
	n := int((size + fs.P.StripeSize - 1) / fs.P.StripeSize)
	f := &File{fs: fs, Name: name, Size: size, content: make([]ContentID, n)}
	fs.files[name] = f
	return f
}

// Open returns an existing file or nil.
func (fs *FS) Open(name string) *File { return fs.files[name] }

// Stripes returns the stripe count.
func (f *File) Stripes() int { return len(f.content) }

// ContentAt returns the content ID of stripe i.
func (f *File) ContentAt(i int) ContentID { return f.content[i] }

// PutContent seeds file content without simulating the upload.
func (f *File) PutContent(ids []ContentID) {
	if len(ids) != len(f.content) {
		panic("pfs: PutContent stripe count mismatch")
	}
	copy(f.content, ids)
}

// server returns the node storing stripe i.
func (f *File) server(i int) *fabric.Node {
	return f.fs.Servers[i%len(f.fs.Servers)]
}

// stripeLen returns the byte length of stripe i.
func (f *File) stripeLen(i int) int64 {
	off := int64(i) * f.fs.P.StripeSize
	ln := f.fs.P.StripeSize
	if off+ln > f.Size {
		ln = f.Size - off
	}
	return ln
}

// span converts a byte range to a stripe interval [first, last].
func (f *File) span(off, length int64) (first, last int) {
	if off < 0 || length <= 0 || off+length > f.Size {
		panic(fmt.Sprintf("pfs: range [%d,%d) outside file %q of %d bytes", off, off+length, f.Name, f.Size))
	}
	return int(off / f.fs.P.StripeSize), int((off + length - 1) / f.fs.P.StripeSize)
}

// io performs the data movement common to Read and Write: one flow per
// server covering that server's share of the addressed bytes.
func (f *File) io(p *sim.Proc, client *fabric.Node, off, length int64, write bool) {
	fs := f.fs
	fs.requests++
	p.Sleep(fs.P.MetadataLatency)
	first, last := f.span(off, length)
	perServer := make(map[*fabric.Node]float64)
	order := make([]*fabric.Node, 0, len(fs.Servers))
	remaining := length
	for i := first; i <= last; i++ {
		// Bytes of this stripe actually addressed.
		sOff := int64(i) * fs.P.StripeSize
		b := f.stripeLen(i)
		if sOff < off {
			b -= off - sOff
		}
		if b > remaining {
			b = remaining
		}
		remaining -= b
		srv := f.server(i)
		if _, ok := perServer[srv]; !ok {
			order = append(order, srv)
		}
		perServer[srv] += float64(b)
	}
	var wg sim.WaitGroup
	eng := fs.Cluster.Eng
	for _, srv := range order {
		bytes := perServer[srv]
		var path []*flow.Link
		if write {
			path = fs.Cluster.RemoteWritePath(client, srv)
			fs.writeBytes += bytes
		} else {
			path = fs.Cluster.RemoteReadPath(srv, client)
			fs.readBytes += bytes
		}
		wg.Add(1)
		fs.Cluster.TransferFlowPath(path, bytes, flow.TagPFS, func() { wg.Done(eng) })
	}
	wg.Wait(p)
}

// Read fetches [off, off+length) to the client, blocking until complete.
func (f *File) Read(p *sim.Proc, client *fabric.Node, off, length int64) {
	f.io(p, client, off, length, false)
}

// Write stores [off, off+length) from the client, blocking until all
// servers acknowledge, and updates stripe content IDs. Stripes only
// partially covered keep a derived ID (read-modify-write on the server).
func (f *File) Write(p *sim.Proc, client *fabric.Node, off, length int64, id ContentID) {
	f.io(p, client, off, length, true)
	first, last := f.span(off, length)
	for i := first; i <= last; i++ {
		f.content[i] = id
	}
}
