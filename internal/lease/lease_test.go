package lease

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"github.com/hybridmig/hybridmig/internal/sim"
)

// run drains the engine and fails the test on a stuck simulation.
func run(t *testing.T, eng *sim.Engine, horizon float64) {
	t.Helper()
	if err := eng.Drain(horizon); err != nil {
		t.Fatalf("Drain: %v", err)
	}
}

func TestAcquireGrantsAuthorityToFirstHolder(t *testing.T) {
	eng := sim.New()
	m := NewManager(eng, nil, Options{}, nil)

	a, err := m.Acquire("vol", 0)
	if err != nil {
		t.Fatalf("Acquire: %v", err)
	}
	if !a.Authority || a.Epoch != 1 {
		t.Fatalf("first holder: authority=%t epoch=%d, want true/1", a.Authority, a.Epoch)
	}
	b, err := m.Acquire("vol", 1)
	if err != nil {
		t.Fatalf("second Acquire: %v", err)
	}
	if b.Authority {
		t.Fatal("second attachment must not receive write authority")
	}
	if got := m.Attachments("vol"); got != 2 {
		t.Fatalf("Attachments = %d, want 2 (dual-attach window)", got)
	}
	if got := m.Holders("vol"); got != 1 {
		t.Fatalf("Holders = %d, want 1", got)
	}
}

func TestAcquireRejectsDuplicatesAndThirdAttachment(t *testing.T) {
	eng := sim.New()
	m := NewManager(eng, nil, Options{}, nil)
	if _, err := m.Acquire("vol", 0); err != nil {
		t.Fatalf("Acquire node0: %v", err)
	}
	if _, err := m.Acquire("vol", 0); err == nil {
		t.Fatal("duplicate Acquire by the same node must fail")
	}
	if _, err := m.Acquire("vol", 1); err != nil {
		t.Fatalf("Acquire node1: %v", err)
	}
	if _, err := m.Acquire("vol", 2); err == nil {
		t.Fatal("third attachment must fail: volume already dual-attached")
	}
}

func TestAcquireFailsWhenUnreachable(t *testing.T) {
	eng := sim.New()
	dark := map[int]bool{1: true}
	m := NewManager(eng, nil, Options{}, func(n int) bool { return !dark[n] })
	if _, err := m.Acquire("vol", 1); err == nil {
		t.Fatal("Acquire by an unreachable node must fail")
	}
	if _, err := m.Acquire("vol", 0); err != nil {
		t.Fatalf("Acquire by a reachable node: %v", err)
	}
}

func TestTransferAuthorityBumpsEpoch(t *testing.T) {
	eng := sim.New()
	m := NewManager(eng, nil, Options{}, nil)
	src, _ := m.Acquire("vol", 0)
	dst, _ := m.Acquire("vol", 1)

	if !m.TransferAuthority(dst) {
		t.Fatal("TransferAuthority to a live attachment must succeed")
	}
	if src.Authority || !dst.Authority {
		t.Fatalf("authority: src=%t dst=%t, want false/true", src.Authority, dst.Authority)
	}
	if dst.Epoch != 2 {
		t.Fatalf("epoch after transfer = %d, want 2", dst.Epoch)
	}
	if got := m.Holders("vol"); got != 1 {
		t.Fatalf("Holders = %d, want 1", got)
	}

	m.Release(dst)
	if m.TransferAuthority(dst) {
		t.Fatal("TransferAuthority to a released attachment must fail")
	}
}

func TestMoveAttachmentRehomesLease(t *testing.T) {
	eng := sim.New()
	m := NewManager(eng, nil, Options{}, nil)
	a, _ := m.Acquire("vol", 0)
	if !m.MoveAttachment(a, 3) {
		t.Fatal("MoveAttachment must succeed on a live attachment")
	}
	if a.Node != 3 || !a.Authority || a.Epoch != 2 {
		t.Fatalf("after move: node=%d authority=%t epoch=%d, want 3/true/2", a.Node, a.Authority, a.Epoch)
	}
}

func TestReconcilerFencesSilentHolder(t *testing.T) {
	eng := sim.New()
	dark := map[int]bool{}
	m := NewManager(eng, nil, Options{TTL: 3, Grace: 2, Interval: 1}, func(n int) bool { return !dark[n] })
	src, _ := m.Acquire("vol", 0)
	dst, _ := m.Acquire("vol", 1)

	var fenced *Attachment
	m.BeginWindow("vol", func(a *Attachment) { fenced = a }, nil)
	// The destination goes dark at t=0.5 and never comes back.
	eng.At(0.5, func() { dark[1] = true })
	// The window stays open long enough for TTL+Grace to elapse.
	eng.At(10, func() { m.EndWindow("vol") })
	run(t, eng, 20)

	if fenced != dst {
		t.Fatalf("onFence got %+v, want the destination attachment", fenced)
	}
	if !dst.Fenced || dst.Authority {
		t.Fatalf("dst: fenced=%t authority=%t, want true/false", dst.Fenced, dst.Authority)
	}
	if !src.Authority {
		t.Fatal("source must keep write authority after the destination is fenced")
	}
	if m.Fences() != 1 {
		t.Fatalf("Fences = %d, want 1", m.Fences())
	}
	if m.SplitBrainWindows() != 0 {
		t.Fatalf("SplitBrainWindows = %d, want 0 with fencing enabled", m.SplitBrainWindows())
	}
}

func TestReconcilerRenewsReachableHolder(t *testing.T) {
	eng := sim.New()
	dark := map[int]bool{}
	m := NewManager(eng, nil, Options{TTL: 3, Grace: 2, Interval: 1}, func(n int) bool { return !dark[n] })
	a, _ := m.Acquire("vol", 0)

	m.BeginWindow("vol", nil, nil)
	// A blip shorter than TTL: dark from 1 to 3, then reachable again.
	eng.At(1.5, func() { dark[0] = true })
	eng.At(3.5, func() { dark[0] = false })
	eng.At(12, func() { m.EndWindow("vol") })
	run(t, eng, 20)

	if a.Fenced {
		t.Fatal("a holder that recovers within TTL must not be fenced")
	}
	if m.Fences() != 0 {
		t.Fatalf("Fences = %d, want 0", m.Fences())
	}
}

func TestNoFencingFailoverActivatesSurvivor(t *testing.T) {
	eng := sim.New()
	dark := map[int]bool{}
	m := NewManager(eng, nil, Options{TTL: 3, Grace: 2, Interval: 1, NoFencing: true},
		func(n int) bool { return !dark[n] })
	src, _ := m.Acquire("vol", 0)
	dst, _ := m.Acquire("vol", 1)

	var gotLoser, gotWinner *Attachment
	m.BeginWindow("vol", nil, func(l, w *Attachment) { gotLoser, gotWinner = l, w })
	// The authority holder (source) goes dark.
	eng.At(0.5, func() { dark[0] = true })
	eng.At(10, func() { m.EndWindow("vol") })
	run(t, eng, 20)

	if gotLoser != src || gotWinner != dst {
		t.Fatalf("failover callback got (%p, %p), want (src, dst)", gotLoser, gotWinner)
	}
	if src.Authority || !dst.Authority {
		t.Fatalf("authority after failover: src=%t dst=%t, want false/true", src.Authority, dst.Authority)
	}
	if src.Fenced {
		t.Fatal("NoFencing must never fence — that is the point of the demonstrator")
	}
	if m.SplitBrainWindows() != 1 {
		t.Fatalf("SplitBrainWindows = %d, want 1", m.SplitBrainWindows())
	}
}

func TestAuthorizeWriteDetectorAndErr(t *testing.T) {
	eng := sim.New()
	dark := map[int]bool{}
	m := NewManager(eng, nil, Options{TTL: 3, Grace: 2, Interval: 1}, func(n int) bool { return !dark[n] })
	src, _ := m.Acquire("vol", 0)
	dst, _ := m.Acquire("vol", 1)
	_ = dst

	if !m.AuthorizeWrite("vol", 0) {
		t.Fatal("authority holder's write must be authorized")
	}
	if m.Violations() != 0 || m.Err() != nil {
		t.Fatalf("no violation expected yet: %d, %v", m.Violations(), m.Err())
	}

	// A write from the non-authority attachment proceeds but is a violation.
	if !m.AuthorizeWrite("vol", 1) {
		t.Fatal("unauthorized write must proceed (the corruption happens) while being recorded")
	}
	if m.Violations() != 1 {
		t.Fatalf("Violations = %d, want 1", m.Violations())
	}
	if err := m.Err(); !errors.Is(err, ErrCorruption) {
		t.Fatalf("Err = %v, want ErrCorruption", err)
	}

	// Fence the source; its writes are blocked, not recorded as violations.
	m.BeginWindow("vol", nil, nil)
	eng.At(0.5, func() { dark[0] = true })
	eng.At(10, func() { m.EndWindow("vol") })
	run(t, eng, 20)
	if !src.Fenced {
		t.Fatal("source should be fenced by now")
	}
	before := m.Violations()
	if m.AuthorizeWrite("vol", 0) {
		t.Fatal("fenced holder's write must be blocked")
	}
	if m.Violations() != before {
		t.Fatal("a blocked fenced write is not a violation")
	}
}

func TestEndWindowCancelsTimer(t *testing.T) {
	eng := sim.New()
	m := NewManager(eng, nil, Options{}, nil)
	if _, err := m.Acquire("vol", 0); err != nil {
		t.Fatalf("Acquire: %v", err)
	}
	m.BeginWindow("vol", nil, nil)
	m.EndWindow("vol")
	// With the window closed, the engine must drain immediately: no perpetual
	// reconciler timer may survive.
	run(t, eng, 1)
	if eng.PendingEvents() != 0 {
		t.Fatalf("PendingEvents = %d after EndWindow, want 0", eng.PendingEvents())
	}
}

func TestFencedAttachmentSupersededByReacquire(t *testing.T) {
	eng := sim.New()
	dark := map[int]bool{}
	m := NewManager(eng, nil, Options{TTL: 3, Grace: 2, Interval: 1}, func(n int) bool { return !dark[n] })
	src, _ := m.Acquire("vol", 0)
	dst, _ := m.Acquire("vol", 1)
	m.BeginWindow("vol", nil, nil)
	eng.At(0.5, func() { dark[1] = true })
	eng.At(10, func() { m.EndWindow("vol") })
	run(t, eng, 20)
	if !dst.Fenced {
		t.Fatal("destination should be fenced")
	}

	// After the partition heals, the node re-acquires: the fenced attachment
	// is superseded by the fresh lease.
	dark[1] = false
	fresh, err := m.Acquire("vol", 1)
	if err != nil {
		t.Fatalf("re-Acquire after fence: %v", err)
	}
	if fresh.Fenced || fresh.Authority {
		t.Fatalf("fresh lease: fenced=%t authority=%t, want false/false (src still holds)", fresh.Fenced, fresh.Authority)
	}
	if !src.Authority {
		t.Fatal("source authority must survive the destination's fence/re-acquire cycle")
	}
	if got := m.Attachments("vol"); got != 2 {
		t.Fatalf("Attachments = %d, want 2", got)
	}
}

// TestRandomizedLeaseProtocolInvariants drives the manager through seeded
// random sequences of protocol operations and partition flips, checking after
// every event that the safety invariants hold:
//
//   - at most one attachment of a volume holds write authority,
//   - at most two attachments are active per volume (the dual-attach window),
//   - writes issued only by the current authority holder never count as
//     violations (with fencing enabled).
func TestRandomizedLeaseProtocolInvariants(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			eng := sim.New()
			dark := map[int]bool{}
			m := NewManager(eng, nil, Options{TTL: 3, Grace: 2, Interval: 1},
				func(n int) bool { return !dark[n] })

			const nodes = 4
			vols := []string{"volA", "volB"}
			atts := map[string]map[int]*Attachment{}
			for _, v := range vols {
				atts[v] = map[int]*Attachment{}
			}

			check := func(when string) {
				for _, v := range vols {
					if h := m.Holders(v); h > 1 {
						t.Fatalf("%s: %s has %d authority holders, want <= 1", when, v, h)
					}
					if a := m.Attachments(v); a > 2 {
						t.Fatalf("%s: %s has %d attachments, want <= 2", when, v, a)
					}
				}
			}

			// Random protocol events at jittered times over a 60 s run.
			now := 0.0
			for i := 0; i < 120; i++ {
				now += 0.1 + rng.Float64()
				vol := vols[rng.Intn(len(vols))]
				node := rng.Intn(nodes)
				switch op := rng.Intn(7); op {
				case 0: // acquire
					eng.At(now, func() {
						if a, err := m.Acquire(vol, node); err == nil {
							atts[vol][node] = a
						}
						check("acquire")
					})
				case 1: // release
					eng.At(now, func() {
						if a := atts[vol][node]; a != nil {
							m.Release(a)
							delete(atts[vol], node)
						}
						check("release")
					})
				case 2: // transfer authority
					eng.At(now, func() {
						if a := atts[vol][node]; a != nil {
							m.TransferAuthority(a)
						}
						check("transfer")
					})
				case 3: // partition flip
					eng.At(now, func() {
						dark[node] = !dark[node]
						check("flip")
					})
				case 4: // open window
					eng.At(now, func() {
						m.BeginWindow(vol, func(f *Attachment) {
							if f.Authority {
								t.Errorf("fenced attachment retained authority")
							}
						}, nil)
						check("begin")
					})
				case 5: // close window
					eng.At(now, func() {
						m.EndWindow(vol)
						check("end")
					})
				case 6: // authorized write: only the authority holder writes
					eng.At(now, func() {
						for n, a := range atts[vol] {
							if a.Authority && !a.Fenced && !a.released {
								m.AuthorizeWrite(vol, n)
								break
							}
						}
						check("write")
					})
				}
			}
			// Close every window at the end so the engine can drain.
			eng.At(now+30, func() {
				for _, v := range vols {
					m.EndWindow(v)
				}
			})
			run(t, eng, now+60)
			check("drained")

			if m.Violations() != 0 {
				t.Fatalf("authorized-only writes produced %d violations: %v", m.Violations(), m.Err())
			}
		})
	}
}
