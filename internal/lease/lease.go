// Package lease is the attachment manager for shared-storage volumes: the
// component that makes the RWX dual-attachment window of shared-storage live
// migration safe. Real multi-attach block volumes (KubeVirt RWX migration,
// CSI attachment managers) allow source and destination hypervisors to hold
// the same volume simultaneously during the switchover — a state that is
// only survivable because an external manager hands out time-limited leases,
// a reconciler watches holder liveness, and a holder that stays silent past
// its grace period is *fenced*: its attachment revoked and its I/O blocked
// before a second writer is activated. Without fencing, a network partition
// turns the same window into split brain and silent disk corruption.
//
// This package models that protocol on the simulation clock:
//
//   - Manager hands out per-volume Attachments (at most two — the
//     dual-attachment window), tracks a write-authority epoch per volume,
//     and transfers authority exactly once per switchover.
//   - While a migration window is open (BeginWindow/EndWindow), a reconciler
//     timer ticks every Options.Interval: reachable holders renew, holders
//     unreachable past Options.TTL expire, and holders expired past
//     Options.Grace are fenced (or, with Options.NoFencing, trigger the
//     unsafe failover the fencing exists to prevent).
//   - AuthorizeWrite is the write-epoch corruption detector: the shared
//     image path asks it before every write, fenced holders are blocked, and
//     a write from a node without current write authority is recorded as a
//     violation — silent split-brain becomes a hard simulation error
//     (Manager.Err).
//
// Monitoring is window-scoped: the reconciler timer only runs between
// BeginWindow and EndWindow, so a drained scenario never holds a live timer
// and lease bookkeeping outside migration windows is pure state (no
// simulated time passes), which keeps lease-managed strategies bit-identical
// to their pre-lease behavior in fault-free runs.
package lease

import (
	"errors"
	"fmt"

	"github.com/hybridmig/hybridmig/internal/sim"
	"github.com/hybridmig/hybridmig/internal/trace"
)

// Options are the attachment-manager knobs.
type Options struct {
	// TTL is how long a lease stays valid without a successful renewal, in
	// seconds (default 3).
	TTL float64
	// Grace is the extra window after expiry before the reconciler fences
	// the holder, in seconds (default 2).
	Grace float64
	// Interval is the reconciler tick period, in seconds (default 1).
	Interval float64
	// NoFencing disables fencing decisions: an expired holder is presumed
	// dead after the grace period and, if the volume is dual-attached, write
	// authority is handed to the surviving attachment while the silent
	// holder may still be writing. This is the split-brain demonstrator; the
	// corruption detector turns it into Manager.Err.
	NoFencing bool
}

// withDefaults fills unset fields with the production-shaped defaults.
func (o Options) withDefaults() Options {
	if o.TTL <= 0 {
		o.TTL = 3
	}
	if o.Grace <= 0 {
		o.Grace = 2
	}
	if o.Interval <= 0 {
		o.Interval = 1
	}
	return o
}

// ErrCorruption is wrapped by Manager.Err when the write-epoch detector
// observed at least one write outside a valid lease.
var ErrCorruption = errors.New("lease: write outside a valid lease (split brain)")

// Attachment is one node's lease on one volume.
type Attachment struct {
	vol  *volume
	Node int
	// Epoch is the write-authority epoch at which this attachment last held
	// (or was granted) authority.
	Epoch uint64
	// Authority marks the attachment currently allowed to write the volume.
	Authority bool
	// Fenced marks an attachment revoked by the reconciler; its writes are
	// blocked and it never regains authority.
	Fenced bool

	lastSeen   float64 // reconciler tick at which the holder was last reachable
	expired    bool    // lease lapsed past TTL (expiry event emitted)
	failedOver bool    // NoFencing failover already taken against this holder
	released   bool
}

// Volume returns the volume name the attachment holds.
func (a *Attachment) Volume() string { return a.vol.name }

// volume is the manager's per-volume state.
type volume struct {
	name  string
	atts  []*Attachment
	epoch uint64 // write-authority epoch, bumped on every authority change

	monitoring bool
	timer      sim.Timer
	timerArmed bool
	onFence    func(*Attachment)
	onFailover func(loser, winner *Attachment)
}

// holder returns the current write-authority attachment, or nil.
func (v *volume) holder() *Attachment {
	for _, a := range v.atts {
		if a.Authority {
			return a
		}
	}
	return nil
}

// Manager is the attachment manager: one per testbed, shared by every
// lease-managed volume.
type Manager struct {
	eng       *sim.Engine
	bus       *trace.Bus
	opt       Options
	reachable func(node int) bool

	vols  map[string]*volume
	names []string // volume creation order (deterministic iteration)

	violations     int
	firstViolation string
	splitBrain     int
	fenceCount     int
}

// NewManager builds a manager. reachable reports whether a node can renew
// its leases at the current instant (nil means always reachable); bus may be
// nil.
func NewManager(eng *sim.Engine, bus *trace.Bus, opt Options, reachable func(node int) bool) *Manager {
	if reachable == nil {
		reachable = func(int) bool { return true }
	}
	return &Manager{
		eng:       eng,
		bus:       bus,
		opt:       opt.withDefaults(),
		reachable: reachable,
		vols:      make(map[string]*volume),
	}
}

// Options returns the effective (defaulted) options.
func (m *Manager) Options() Options { return m.opt }

func (m *Manager) vol(name string) *volume {
	v := m.vols[name]
	if v == nil {
		v = &volume{name: name}
		m.vols[name] = v
		m.names = append(m.names, name)
	}
	return v
}

func (m *Manager) emit(kind trace.Kind, vol string, node int, value float64) {
	if m.bus.Active() {
		m.bus.Emit(trace.Event{Time: m.eng.Now(), Kind: kind, VM: vol,
			Detail: fmt.Sprintf("node%d", node), Value: value})
	}
}

// Acquire grants node a lease on the volume. The first active attachment of
// a volume receives write authority; the second shares the dual-attachment
// window without it. Acquisition fails when the node is unreachable (it
// could not complete the lease handshake) or when the volume is already
// dual-attached by other nodes. A fenced attachment held by the same node is
// replaced by the fresh lease.
func (m *Manager) Acquire(volName string, node int) (*Attachment, error) {
	v := m.vol(volName)
	if !m.reachable(node) {
		return nil, fmt.Errorf("lease: node%d unreachable, cannot acquire %s", node, volName)
	}
	active := 0
	for _, a := range v.atts {
		if a.Node == node && !a.Fenced {
			return nil, fmt.Errorf("lease: node%d already holds %s", node, volName)
		}
		if a.Node != node && !a.Fenced {
			active++
		}
	}
	if active >= 2 {
		return nil, fmt.Errorf("lease: %s already dual-attached", volName)
	}
	// A fenced attachment of the same node is superseded by the new lease.
	v.detachNode(node)
	a := &Attachment{vol: v, Node: node, lastSeen: m.eng.Now()}
	if v.holder() == nil {
		v.epoch++
		a.Epoch = v.epoch
		a.Authority = true
	}
	v.atts = append(v.atts, a)
	m.emit(trace.KindLeaseAcquired, volName, node, float64(v.epoch))
	return a, nil
}

// detachNode removes any attachment held by node from the volume.
func (v *volume) detachNode(node int) {
	out := v.atts[:0]
	for _, a := range v.atts {
		if a.Node == node {
			a.released = true
			continue
		}
		out = append(out, a)
	}
	v.atts = out
}

// Release returns the attachment to the manager. Releasing the authority
// holder leaves the volume without a writer until the next Acquire or
// TransferAuthority.
func (m *Manager) Release(a *Attachment) {
	if a == nil || a.released {
		return
	}
	a.released = true
	a.Authority = false
	out := a.vol.atts[:0]
	for _, b := range a.vol.atts {
		if b != a {
			out = append(out, b)
		}
	}
	a.vol.atts = out
}

// TransferAuthority moves the volume's write authority to the given
// attachment (the switchover step), bumping the write epoch. It reports
// false — and changes nothing — when the target has been fenced or released,
// in which case completing the switchover would be unsafe.
func (m *Manager) TransferAuthority(a *Attachment) bool {
	if a == nil || a.Fenced || a.released {
		return false
	}
	v := a.vol
	if h := v.holder(); h != nil && h != a {
		h.Authority = false
	}
	v.epoch++
	a.Epoch = v.epoch
	a.Authority = true
	a.lastSeen = m.eng.Now()
	m.emit(trace.KindLeaseAcquired, v.name, a.Node, float64(v.epoch))
	return true
}

// MoveAttachment rehomes a single-attachment lease to a new node atomically
// (the degenerate handover the pvfs-shared baseline uses: no dual-attach
// window, the lease and write authority move together at switchover).
func (m *Manager) MoveAttachment(a *Attachment, node int) bool {
	if a == nil || a.Fenced || a.released {
		return false
	}
	v := a.vol
	a.Node = node
	a.lastSeen = m.eng.Now()
	if !a.Authority {
		if h := v.holder(); h != nil {
			h.Authority = false
		}
		a.Authority = true
	}
	v.epoch++
	a.Epoch = v.epoch
	m.emit(trace.KindLeaseAcquired, v.name, node, float64(v.epoch))
	return true
}

// BeginWindow opens a migration window on the volume: the reconciler starts
// ticking every Options.Interval, renewing reachable holders and fencing
// holders silent past TTL+Grace. onFence (may be nil) runs at the instant of
// each fencing decision; onFailover (may be nil) runs instead when fencing
// is disabled and the manager activates the surviving attachment.
func (m *Manager) BeginWindow(volName string, onFence func(*Attachment), onFailover func(loser, winner *Attachment)) {
	v := m.vol(volName)
	v.onFence = onFence
	v.onFailover = onFailover
	if v.monitoring {
		return
	}
	v.monitoring = true
	now := m.eng.Now()
	for _, a := range v.atts {
		a.lastSeen = now
	}
	m.armTick(v)
}

// EndWindow closes the migration window: the reconciler timer is canceled,
// so a drained scenario holds no lease machinery.
func (m *Manager) EndWindow(volName string) {
	v := m.vols[volName]
	if v == nil || !v.monitoring {
		return
	}
	v.monitoring = false
	v.onFence = nil
	v.onFailover = nil
	if v.timerArmed {
		v.timer.Cancel()
		v.timerArmed = false
	}
}

// armTick schedules the volume's next reconcile tick.
func (m *Manager) armTick(v *volume) {
	v.timer = m.eng.At(m.eng.Now()+m.opt.Interval, func() {
		v.timerArmed = false
		if !v.monitoring {
			return
		}
		m.reconcile(v)
		if v.monitoring {
			m.armTick(v)
		}
	})
	v.timerArmed = true
}

// reconcile is one reconciler tick over the volume's attachments.
func (m *Manager) reconcile(v *volume) {
	now := m.eng.Now()
	// Snapshot: fencing callbacks may release attachments while we iterate.
	atts := append([]*Attachment(nil), v.atts...)
	for _, a := range atts {
		if a.released || a.Fenced {
			continue
		}
		if m.reachable(a.Node) {
			a.lastSeen = now
			a.expired = false
			m.emit(trace.KindLeaseRenewed, v.name, a.Node, float64(a.Epoch))
			continue
		}
		age := now - a.lastSeen
		if age > m.opt.TTL && !a.expired {
			a.expired = true
			m.emit(trace.KindLeaseExpired, v.name, a.Node, age)
		}
		if age <= m.opt.TTL+m.opt.Grace {
			continue
		}
		if !m.opt.NoFencing {
			m.fence(v, a)
			continue
		}
		// Fencing disabled: the manager presumes the silent holder dead. If
		// it held write authority and another attachment survives, activate
		// the survivor — the split-brain failover fencing exists to prevent.
		if a.Authority && !a.failedOver {
			if w := v.survivor(a); w != nil {
				a.failedOver = true
				a.Authority = false
				v.epoch++
				w.Epoch = v.epoch
				w.Authority = true
				m.splitBrain++
				m.emit(trace.KindSplitBrain, v.name, w.Node, float64(v.epoch))
				if v.onFailover != nil {
					v.onFailover(a, w)
				}
			}
		}
	}
}

// survivor returns an active attachment of the volume other than a, or nil.
func (v *volume) survivor(a *Attachment) *Attachment {
	for _, b := range v.atts {
		if b != a && !b.Fenced && !b.released {
			return b
		}
	}
	return nil
}

// fence revokes the attachment: the reconciler's straggler detach. The
// holder loses any write authority, its writes are blocked from this instant
// on, and the fence callback (typically aborting the in-flight migration)
// runs synchronously.
func (m *Manager) fence(v *volume, a *Attachment) {
	a.Fenced = true
	a.Authority = false
	m.fenceCount++
	m.emit(trace.KindLeaseFenced, v.name, a.Node, float64(a.Epoch))
	if v.onFence != nil {
		v.onFence(a)
	}
}

// AuthorizeWrite is the write-epoch corruption detector: the shared-image
// path consults it before charging a write from node to the volume. A fenced
// holder's write is blocked (returns false — fencing is exactly the blocking
// of that I/O). A write with current authority proceeds. Any other write —
// no attachment, or an attachment that lost authority — proceeds too (the
// corruption happens) but is recorded as a violation that Err surfaces.
func (m *Manager) AuthorizeWrite(volName string, node int) bool {
	v := m.vols[volName]
	var att *Attachment
	if v != nil {
		for _, a := range v.atts {
			if a.Node == node && !a.released {
				att = a
				break
			}
		}
	}
	if att != nil && att.Fenced {
		return false
	}
	if att != nil && att.Authority {
		return true
	}
	m.violations++
	if m.firstViolation == "" {
		m.firstViolation = fmt.Sprintf("node%d wrote %s at t=%.4f without write authority",
			node, volName, m.eng.Now())
	}
	return true
}

// Violations returns how many writes the detector observed outside a valid
// lease.
func (m *Manager) Violations() int { return m.violations }

// SplitBrainWindows returns how many unsafe failovers the manager took
// (only possible with Options.NoFencing).
func (m *Manager) SplitBrainWindows() int { return m.splitBrain }

// Fences returns how many fencing decisions the reconciler made.
func (m *Manager) Fences() int { return m.fenceCount }

// Attachments returns the volume's active attachment count (tests and
// invariant harnesses).
func (m *Manager) Attachments(volName string) int {
	v := m.vols[volName]
	if v == nil {
		return 0
	}
	n := 0
	for _, a := range v.atts {
		if !a.Fenced && !a.released {
			n++
		}
	}
	return n
}

// Holders returns how many attachments of the volume currently hold write
// authority (the invariant is ≤ 1 at all times).
func (m *Manager) Holders(volName string) int {
	v := m.vols[volName]
	if v == nil {
		return 0
	}
	n := 0
	for _, a := range v.atts {
		if a.Authority {
			n++
		}
	}
	return n
}

// Volumes returns the managed volume names in creation order.
func (m *Manager) Volumes() []string {
	out := make([]string, len(m.names))
	copy(out, m.names)
	return out
}

// Err returns a hard error wrapping ErrCorruption when the detector observed
// any write outside a valid lease, nil otherwise.
func (m *Manager) Err() error {
	if m.violations == 0 {
		return nil
	}
	return fmt.Errorf("%w: %d violation(s), first: %s", ErrCorruption, m.violations, m.firstViolation)
}
