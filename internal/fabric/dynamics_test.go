package fabric

import (
	"testing"

	"github.com/hybridmig/hybridmig/internal/flow"
	"github.com/hybridmig/hybridmig/internal/sim"
	"github.com/hybridmig/hybridmig/internal/trace"
)

func TestApplyScheduleDegradesTransfer(t *testing.T) {
	eng := sim.New()
	c := NewCluster(eng, 3, testbed())
	// 500 B at NIC 100 B/s would finish at t=5; halving the source NIC-out
	// at t=2 leaves 300 B at 50 B/s -> finish at t=8.
	c.ApplySchedule([]CapacityStep{{At: 2, Role: LinkNICOut, Node: 0, Factor: 0.5}}, nil)
	var doneAt sim.Time
	eng.Go("x", func(p *sim.Proc) {
		c.Transfer(p, c.Nodes[0], c.Nodes[1], 500, flow.TagMemory)
		doneAt = p.Now()
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if !near(doneAt, 8, 1e-9) {
		t.Fatalf("doneAt = %v, want 8", doneAt)
	}
}

func TestApplyScheduleRestoreAndTrace(t *testing.T) {
	eng := sim.New()
	c := NewCluster(eng, 2, testbed())
	bus := &trace.Bus{}
	var events []trace.Event
	bus.Subscribe(trace.ObserverFunc(func(e trace.Event) { events = append(events, e) }))
	c.ApplySchedule([]CapacityStep{
		{At: 1, Role: LinkDisk, Node: 1, Factor: 0.2},
		{At: 3, Role: LinkDisk, Node: 1, Factor: 1},
	}, bus)
	var doneAt sim.Time
	eng.Go("x", func(p *sim.Proc) {
		// 200 B on disk 50 B/s: 1 s at 50 (50 B), 2 s at 10 (20 B), then
		// 130 B at 50 -> 2.6 s more, done at 5.6.
		c.DiskIO(p, c.Nodes[1], 200, flow.TagOther)
		doneAt = p.Now()
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if !near(doneAt, 5.6, 1e-9) {
		t.Fatalf("doneAt = %v, want 5.6", doneAt)
	}
	if len(events) != 2 || events[0].Kind != trace.KindLinkCapacity {
		t.Fatalf("trace events = %v, want 2 link-capacity events", events)
	}
	if !near(events[0].Value, 10, 1e-9) || !near(events[1].Value, 50, 1e-9) {
		t.Fatalf("capacities = %v,%v, want 10,50", events[0].Value, events[1].Value)
	}
}

func TestBlackoutFloorKeepsCapacityPositive(t *testing.T) {
	eng := sim.New()
	c := NewCluster(eng, 2, testbed())
	c.ApplySchedule([]CapacityStep{{At: 0, Role: LinkFabric, Factor: 0}}, nil)
	if err := eng.RunUntil(1); err != nil {
		t.Fatal(err)
	}
	if c.Fabric.Capacity <= 0 {
		t.Fatalf("blackout left capacity %v, want positive floor", c.Fabric.Capacity)
	}
	if c.Fabric.Capacity > testbed().FabricBandwidth*blackoutFloor*1.001 {
		t.Fatalf("blackout capacity %v above floor", c.Fabric.Capacity)
	}
}

func TestCrossTrafficCompetesAndStops(t *testing.T) {
	eng := sim.New()
	c := NewCluster(eng, 3, testbed())
	// Background traffic 0->1 from t=0 to t=10 contends with a measured
	// transfer 2->1 for node 1's NIC-in (100 B/s): the transfer gets 50 B/s
	// while traffic is up.
	c.StartCrossTraffic(CrossTraffic{Src: 0, Dst: 1, Start: 0, Stop: 10, Burst: 1e6})
	var doneAt sim.Time
	eng.Go("x", func(p *sim.Proc) {
		c.Transfer(p, c.Nodes[2], c.Nodes[1], 300, flow.TagMemory)
		doneAt = p.Now()
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if !near(doneAt, 6, 1e-9) {
		t.Fatalf("doneAt = %v, want 6 (half share under cross traffic)", doneAt)
	}
	// Half share (50 B/s) while contended, full NIC rate (100 B/s) after.
	if got := c.Net.BytesByTag(flow.TagBackground); !near(got, 6*50+4*100, 1e-6) {
		t.Fatalf("background bytes = %v, want 700", got)
	}
	// The generator must terminate at Stop so the simulation drained.
	if eng.PendingEvents() != 0 || eng.LiveProcs() != 0 {
		t.Fatalf("generator leaked: %d events, %d procs", eng.PendingEvents(), eng.LiveProcs())
	}
}

func TestCrossTrafficPaced(t *testing.T) {
	eng := sim.New()
	c := NewCluster(eng, 2, testbed())
	c.StartCrossTraffic(CrossTraffic{Src: 0, Dst: 1, Start: 1, Stop: 5, Rate: 25, Burst: 1e6})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	// 4 s at the 25 B/s pacing cap.
	if got := c.Net.BytesByTag(flow.TagBackground); !near(got, 100, 1e-6) {
		t.Fatalf("background bytes = %v, want 100", got)
	}
}

func TestCrossTrafficValidation(t *testing.T) {
	eng := sim.New()
	c := NewCluster(eng, 2, testbed())
	for _, tr := range []CrossTraffic{
		{Src: 0, Dst: 5, Start: 0, Stop: 1},
		{Src: -1, Dst: 1, Start: 0, Stop: 1},
		{Src: 0, Dst: 0, Start: 0, Stop: 1},
		{Src: 0, Dst: 1, Start: 2, Stop: 2},
		{Src: 0, Dst: 1, Start: -1, Stop: 1},
	} {
		tr := tr
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("StartCrossTraffic(%+v) did not panic", tr)
				}
			}()
			c.StartCrossTraffic(tr)
		}()
	}
}
