package fabric

import (
	"math"
	"testing"

	"github.com/hybridmig/hybridmig/internal/flow"
	"github.com/hybridmig/hybridmig/internal/params"
	"github.com/hybridmig/hybridmig/internal/sim"
)

func near(a, b, rel float64) bool {
	return math.Abs(a-b) <= rel*math.Max(math.Abs(a), math.Abs(b))
}

func testbed() params.Testbed {
	p := params.DefaultTestbed()
	// Small round numbers for easy assertions.
	p.NICBandwidth = 100
	p.DiskBandwidth = 50
	p.FabricBandwidth = 1000
	p.NetLatency = 0
	p.DiskLatency = 0
	return p
}

func TestTransferBottleneckedByNIC(t *testing.T) {
	eng := sim.New()
	c := NewCluster(eng, 3, testbed())
	var doneAt sim.Time
	eng.Go("x", func(p *sim.Proc) {
		c.Transfer(p, c.Nodes[0], c.Nodes[1], 500, flow.TagMemory)
		doneAt = p.Now()
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if !near(doneAt, 5, 1e-9) {
		t.Fatalf("doneAt = %v, want 5 (NIC 100 B/s)", doneAt)
	}
}

func TestLoopbackIsFree(t *testing.T) {
	eng := sim.New()
	c := NewCluster(eng, 2, testbed())
	var doneAt sim.Time
	eng.Go("x", func(p *sim.Proc) {
		c.Transfer(p, c.Nodes[0], c.Nodes[0], 1e9, flow.TagControl)
		doneAt = p.Now()
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if doneAt != 0 {
		t.Fatalf("loopback took %v, want 0", doneAt)
	}
}

func TestRemoteReadDiskBottleneck(t *testing.T) {
	eng := sim.New()
	c := NewCluster(eng, 2, testbed())
	var doneAt sim.Time
	eng.Go("x", func(p *sim.Proc) {
		c.RemoteRead(p, c.Nodes[1], c.Nodes[0], 500, flow.TagRepo)
		doneAt = p.Now()
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	// Disk at 50 B/s is the bottleneck: 10s.
	if !near(doneAt, 10, 1e-9) {
		t.Fatalf("doneAt = %v, want 10 (disk-bound)", doneAt)
	}
}

func TestDiskContentionBetweenGuestAndMigration(t *testing.T) {
	// Guest I/O and a migration stream share one disk: each gets half.
	eng := sim.New()
	c := NewCluster(eng, 2, testbed())
	var tGuest, tStream sim.Time
	eng.Go("guest", func(p *sim.Proc) {
		c.DiskIO(p, c.Nodes[0], 100, flow.TagOther)
		tGuest = p.Now()
	})
	eng.Go("stream", func(p *sim.Proc) {
		c.Net.Transfer(p, c.StreamPath(c.Nodes[0], c.Nodes[1]), 100, flow.TagStoragePush)
		tStream = p.Now()
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	// Both flows share disk0 (50 B/s) -> 25 B/s each -> 4s.
	if !near(tGuest, 4, 1e-9) || !near(tStream, 4, 1e-9) {
		t.Fatalf("tGuest=%v tStream=%v, want 4,4", tGuest, tStream)
	}
}

func TestFabricAggregateLimit(t *testing.T) {
	p := testbed()
	p.FabricBandwidth = 150 // less than 2 NIC pairs
	eng := sim.New()
	c := NewCluster(eng, 4, p)
	var done [2]sim.Time
	for i := 0; i < 2; i++ {
		i := i
		eng.Go("x", func(pr *sim.Proc) {
			c.Transfer(pr, c.Nodes[i*2], c.Nodes[i*2+1], 150, flow.TagMemory)
			done[i] = pr.Now()
		})
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	// Fabric 150 shared by 2 flows -> 75 each -> 2s.
	for i, d := range done {
		if !near(d, 2, 1e-9) {
			t.Fatalf("flow %d done at %v, want 2", i, d)
		}
	}
}

func TestLatencyApplied(t *testing.T) {
	p := testbed()
	p.NetLatency = 0.5
	eng := sim.New()
	c := NewCluster(eng, 2, p)
	var doneAt sim.Time
	eng.Go("x", func(pr *sim.Proc) {
		c.Transfer(pr, c.Nodes[0], c.Nodes[1], 100, flow.TagControl)
		doneAt = pr.Now()
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if !near(doneAt, 1.5, 1e-9) {
		t.Fatalf("doneAt = %v, want 1.5 (0.5 latency + 1s transfer)", doneAt)
	}
}

func TestTrafficAccounting(t *testing.T) {
	eng := sim.New()
	c := NewCluster(eng, 2, testbed())
	eng.Go("x", func(p *sim.Proc) {
		c.Transfer(p, c.Nodes[0], c.Nodes[1], 300, flow.TagMemory)
		c.Transfer(p, c.Nodes[0], c.Nodes[1], 200, flow.TagStoragePush)
		c.DiskIO(p, c.Nodes[0], 999, flow.TagOther)
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if got := c.Net.BytesByTag(flow.TagMemory); !near(got, 300, 1e-9) {
		t.Fatalf("memory bytes = %v", got)
	}
	if got := c.Net.BytesByTag(flow.TagStoragePush); !near(got, 200, 1e-9) {
		t.Fatalf("push bytes = %v", got)
	}
	// Fabric carried only the network transfers, not the disk I/O.
	if got := c.Fabric.Bytes(); !near(got, 500, 1e-9) {
		t.Fatalf("fabric bytes = %v, want 500", got)
	}
}

func TestDefaultTestbedConstants(t *testing.T) {
	p := params.DefaultTestbed()
	if p.NICBandwidth != 117.5*params.MB {
		t.Fatal("NIC bandwidth is not the paper's 117.5 MB/s")
	}
	if p.DiskBandwidth != 55*params.MB {
		t.Fatal("disk bandwidth is not the paper's 55 MB/s")
	}
	if p.ChunkSize != 256*params.KB {
		t.Fatal("chunk size is not the paper's 256 KB")
	}
}
