// Dynamic fabric: time-varying link capacities and injected background
// traffic. Real clusters are not the quiescent testbed of the paper — links
// degrade (failing optics, rate-limiting, congestion outside the model) and
// other tenants' traffic competes with migration streams. This file adds
// both as first-class, scriptable inputs: a capacity schedule rescales links
// at given instants through flow.Net.SetCapacity (which reflows everyone
// affected incrementally), and cross-traffic generators keep persistent
// competing flows on the NIC/switch paths.
package fabric

import (
	"fmt"
	"math"

	"github.com/hybridmig/hybridmig/internal/flow"
	"github.com/hybridmig/hybridmig/internal/sim"
	"github.com/hybridmig/hybridmig/internal/trace"
)

// LinkRole names one resource of the cluster for scheduling purposes.
type LinkRole int

// The schedulable link roles.
const (
	// LinkFabric is the shared switch fabric (Node is ignored).
	LinkFabric LinkRole = iota
	// LinkNICIn and LinkNICOut are one node's NIC directions.
	LinkNICIn
	LinkNICOut
	// LinkDisk is one node's local disk.
	LinkDisk
)

func (r LinkRole) String() string {
	switch r {
	case LinkFabric:
		return "fabric"
	case LinkNICIn:
		return "nic-in"
	case LinkNICOut:
		return "nic-out"
	case LinkDisk:
		return "disk"
	}
	return fmt.Sprintf("role(%d)", int(r))
}

// LinkFor returns the link a role names on the given node (the node index is
// ignored for LinkFabric).
func (c *Cluster) LinkFor(role LinkRole, node int) *flow.Link {
	switch role {
	case LinkFabric:
		return c.Fabric
	case LinkNICIn:
		return c.Nodes[node].NICIn
	case LinkNICOut:
		return c.Nodes[node].NICOut
	case LinkDisk:
		return c.Nodes[node].Disk
	}
	panic(fmt.Sprintf("fabric: unknown link role %d", int(role)))
}

// baseCapacity returns the role's configured (undegraded) capacity from the
// testbed constants, so schedule factors compose against a fixed reference
// instead of compounding.
func (c *Cluster) baseCapacity(role LinkRole) float64 {
	switch role {
	case LinkFabric:
		return c.P.FabricBandwidth
	case LinkNICIn, LinkNICOut:
		return c.P.NICBandwidth
	case LinkDisk:
		return c.P.DiskBandwidth
	}
	panic(fmt.Sprintf("fabric: unknown link role %d", int(role)))
}

// blackoutFloor is the fraction of configured capacity a "blackout" leaves:
// flow requires strictly positive capacities, and a literal zero would also
// stall completions forever. 1e-6 of a NIC is a few hundred bytes/s — dead
// for any practical transfer, but still well-formed.
const blackoutFloor = 1e-6

// CapacityStep is one entry of a link-degradation schedule: at time At, the
// role's link (on Node, for per-node roles) is set to Factor times its
// configured capacity. Factor 1 restores the link; factors at or below
// blackoutFloor model a blackout.
type CapacityStep struct {
	At     float64
	Role   LinkRole
	Node   int
	Factor float64
}

// ApplySchedule installs the degradation schedule: each step becomes an
// engine timer that rescales its link and reflows the affected component.
// Steps scheduled in slice order at equal times keep slice order. The bus
// may be nil; each applied step is published as a trace.KindLinkCapacity
// event (Detail = link name, Value = new capacity).
func (c *Cluster) ApplySchedule(steps []CapacityStep, bus *trace.Bus) {
	for _, st := range steps {
		st := st
		l := c.LinkFor(st.Role, st.Node) // resolve now: panics surface at setup
		cap := c.baseCapacity(st.Role) * math.Max(st.Factor, blackoutFloor)
		c.Eng.At(st.At, func() {
			c.Net.SetCapacity(l, cap)
			if bus.Active() {
				bus.Emit(trace.Event{Time: c.Eng.Now(), Kind: trace.KindLinkCapacity,
					Detail: l.Name, Value: cap})
			}
		})
	}
}

// partitionWindow records one node's scheduled isolation span.
type partitionWindow struct {
	node     int
	from, to float64
}

// Partition isolates a node from the network for the window [at, at+duration):
// both NIC directions black out (the same epsilon-floored blackout as a
// factor-0 capacity step) and, for the span of the window, PartitionedNow
// reports the node unreachable — which is what lease reconcilers consult to
// decide renewals and fencing. The node's local disk keeps working: a
// partitioned host can still issue I/O, which is exactly why unfenced
// partitions are dangerous for shared volumes.
func (c *Cluster) Partition(node int, at, duration float64, bus *trace.Bus) {
	if node < 0 || node >= len(c.Nodes) {
		panic(fmt.Sprintf("fabric: partition node %d out of range", node))
	}
	if !(duration > 0) || at < 0 {
		panic(fmt.Sprintf("fabric: partition window [%g,%g) is not a positive span", at, at+duration))
	}
	c.partitions = append(c.partitions, partitionWindow{node: node, from: at, to: at + duration})
	c.ApplySchedule([]CapacityStep{
		{At: at, Role: LinkNICIn, Node: node, Factor: 0},
		{At: at, Role: LinkNICOut, Node: node, Factor: 0},
		{At: at + duration, Role: LinkNICIn, Node: node, Factor: 1},
		{At: at + duration, Role: LinkNICOut, Node: node, Factor: 1},
	}, bus)
}

// PartitionedNow reports whether the node is inside a scheduled partition
// window at the current simulated instant.
func (c *Cluster) PartitionedNow(node int) bool {
	now := c.Eng.Now()
	for _, w := range c.partitions {
		if w.node == node && now >= w.from && now < w.to {
			return true
		}
	}
	return false
}

// CrossTraffic describes one persistent background traffic source: from
// Start to Stop, back-to-back transfers of Burst bytes flow from Src to Dst
// over the normal NIC/fabric path, optionally paced at Rate bytes/s. The
// flows carry flow.TagBackground so reports can separate tenant noise from
// migration traffic.
type CrossTraffic struct {
	Src, Dst    int
	Start, Stop float64
	Rate        float64 // per-flow pacing cap in bytes/s; 0 = uncapped
	Burst       float64 // bytes per transfer; 0 picks 16 MB
}

// defaultBurst keeps individual background transfers short enough that
// pacing reacts to capacity changes, long enough that per-flow churn stays
// negligible.
const defaultBurst = 16 << 20

// StartCrossTraffic launches the generator process. Traffic ceases at Stop:
// the transfer in flight at that instant is canceled, so a finite scenario
// always drains. Invalid node indices or a non-positive window panic (the
// scenario layer validates first and reports real errors).
func (c *Cluster) StartCrossTraffic(tr CrossTraffic) {
	if tr.Src < 0 || tr.Src >= len(c.Nodes) || tr.Dst < 0 || tr.Dst >= len(c.Nodes) {
		panic(fmt.Sprintf("fabric: cross-traffic nodes %d->%d out of range", tr.Src, tr.Dst))
	}
	if tr.Src == tr.Dst {
		panic("fabric: cross-traffic needs distinct nodes")
	}
	if !(tr.Stop > tr.Start) || tr.Start < 0 {
		panic(fmt.Sprintf("fabric: cross-traffic window [%g,%g) is not a positive span", tr.Start, tr.Stop))
	}
	burst := tr.Burst
	if burst <= 0 {
		burst = defaultBurst
	}
	src, dst := c.Nodes[tr.Src], c.Nodes[tr.Dst]
	var cur *flow.Flow
	// The stop timer cancels whatever transfer is in flight at Stop; the
	// generator's loop condition then terminates it.
	c.Eng.At(tr.Stop, func() {
		if cur != nil && !cur.Done() {
			c.Net.Cancel(cur)
		}
	})
	c.Eng.Go(fmt.Sprintf("traffic/%d-%d", tr.Src, tr.Dst), func(p *sim.Proc) {
		if tr.Start > p.Now() {
			p.Sleep(tr.Start - p.Now())
		}
		for p.Now() < tr.Stop {
			f := &flow.Flow{Links: c.NetPath(src, dst), Size: burst,
				MaxRate: tr.Rate, Tag: flow.TagBackground}
			cur = f
			c.Net.Start(f)
			f.Wait(p)
		}
		cur = nil
	})
}
