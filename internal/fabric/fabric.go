// Package fabric models the datacenter: a set of compute nodes, each with a
// full-duplex NIC and a local disk, interconnected through a shared switch
// fabric of finite aggregate capacity.
//
// All resources are flow.Links; every transfer composes a path through them:
//
//	network transfer:   nicOut(src) -> fabric -> nicIn(dst)
//	local disk I/O:     disk(node)
//	remote disk read:   disk(server) -> nicOut(server) -> fabric -> nicIn(client)
//
// Composing disk and network links into a single flow makes the slowest
// resource the end-to-end bottleneck, which is how the paper's 55 MB/s disks
// throttle repository fetches even over a faster network.
package fabric

import (
	"fmt"

	"github.com/hybridmig/hybridmig/internal/flow"
	"github.com/hybridmig/hybridmig/internal/params"
	"github.com/hybridmig/hybridmig/internal/sim"
)

// Node is one compute node.
type Node struct {
	ID     int
	NICIn  *flow.Link
	NICOut *flow.Link
	Disk   *flow.Link
}

func (n *Node) String() string { return fmt.Sprintf("node%d", n.ID) }

// Cluster is the simulated datacenter.
type Cluster struct {
	Eng    *sim.Engine
	Net    *flow.Net
	Fabric *flow.Link
	Nodes  []*Node
	P      params.Testbed

	partitions []partitionWindow // scheduled isolation spans (see Partition)
}

// NewCluster builds a datacenter of n nodes with the given testbed constants.
func NewCluster(eng *sim.Engine, n int, p params.Testbed) *Cluster {
	if n <= 0 {
		panic("fabric: cluster needs at least one node")
	}
	c := &Cluster{
		Eng:    eng,
		Net:    flow.NewNet(eng),
		Fabric: flow.NewLink("fabric", p.FabricBandwidth),
		P:      p,
	}
	c.Nodes = make([]*Node, n)
	for i := range c.Nodes {
		c.Nodes[i] = &Node{
			ID:     i,
			NICIn:  flow.NewLink(fmt.Sprintf("node%d.in", i), p.NICBandwidth),
			NICOut: flow.NewLink(fmt.Sprintf("node%d.out", i), p.NICBandwidth),
			Disk:   flow.NewLink(fmt.Sprintf("node%d.disk", i), p.DiskBandwidth),
		}
	}
	return c
}

// NetPath returns the link path for a network transfer src -> dst.
// Transfers to self cross no links (loopback).
func (c *Cluster) NetPath(src, dst *Node) []*flow.Link {
	if src == dst {
		return nil
	}
	return []*flow.Link{src.NICOut, c.Fabric, dst.NICIn}
}

// RemoteReadPath returns the path for reading from server's disk into
// client's memory across the network.
func (c *Cluster) RemoteReadPath(server, client *Node) []*flow.Link {
	if server == client {
		return []*flow.Link{server.Disk}
	}
	return []*flow.Link{server.Disk, server.NICOut, c.Fabric, client.NICIn}
}

// RemoteWritePath returns the path for writing from client's memory to
// server's disk across the network.
func (c *Cluster) RemoteWritePath(client, server *Node) []*flow.Link {
	if server == client {
		return []*flow.Link{server.Disk}
	}
	return []*flow.Link{client.NICOut, c.Fabric, server.NICIn, server.Disk}
}

// Transfer performs a blocking network transfer of size bytes from src to
// dst, paying one network latency up front.
func (c *Cluster) Transfer(p *sim.Proc, src, dst *Node, size float64, tag flow.Tag) {
	if src != dst {
		p.Sleep(c.P.NetLatency)
	}
	c.Net.Transfer(p, c.NetPath(src, dst), size, tag)
}

// TransferFlow starts an asynchronous network transfer and returns its flow.
func (c *Cluster) TransferFlow(src, dst *Node, size float64, tag flow.Tag, onDone func()) *flow.Flow {
	f := &flow.Flow{Links: c.NetPath(src, dst), Size: size, Tag: tag, OnDone: onDone}
	c.Net.Start(f)
	return f
}

// TransferFlowPath starts an asynchronous flow over an explicit link path
// (e.g. a remote-read or stream path) and returns it.
func (c *Cluster) TransferFlowPath(path []*flow.Link, size float64, tag flow.Tag, onDone func()) *flow.Flow {
	f := &flow.Flow{Links: path, Size: size, Tag: tag, OnDone: onDone}
	c.Net.Start(f)
	return f
}

// TransferCapped performs a blocking network transfer with a per-flow rate
// cap (e.g. the hypervisor migration speed limit).
func (c *Cluster) TransferCapped(p *sim.Proc, src, dst *Node, size, maxRate float64, tag flow.Tag) {
	if src != dst {
		p.Sleep(c.P.NetLatency)
	}
	c.Net.TransferCapped(p, c.NetPath(src, dst), size, maxRate, tag)
}

// DiskIO performs a blocking local disk read or write of size bytes,
// paying one disk access latency up front.
func (c *Cluster) DiskIO(p *sim.Proc, node *Node, size float64, tag flow.Tag) {
	p.Sleep(c.P.DiskLatency)
	c.Net.Transfer(p, []*flow.Link{node.Disk}, size, tag)
}

// DiskFlow starts an asynchronous local disk I/O and returns its flow.
func (c *Cluster) DiskFlow(node *Node, size float64, tag flow.Tag, onDone func()) *flow.Flow {
	f := &flow.Flow{Links: []*flow.Link{node.Disk}, Size: size, Tag: tag, OnDone: onDone}
	c.Net.Start(f)
	return f
}

// RemoteRead performs a blocking read of size bytes from server's disk into
// client memory.
func (c *Cluster) RemoteRead(p *sim.Proc, server, client *Node, size float64, tag flow.Tag) {
	if server != client {
		p.Sleep(c.P.NetLatency)
	}
	p.Sleep(c.P.DiskLatency)
	c.Net.Transfer(p, c.RemoteReadPath(server, client), size, tag)
}

// RemoteWrite performs a blocking write of size bytes from client memory to
// server's disk.
func (c *Cluster) RemoteWrite(p *sim.Proc, client, server *Node, size float64, tag flow.Tag) {
	if server != client {
		p.Sleep(c.P.NetLatency)
	}
	p.Sleep(c.P.DiskLatency)
	c.Net.Transfer(p, c.RemoteWritePath(client, server), size, tag)
}

// ControlRTT models one small control-message round trip between nodes.
func (c *Cluster) ControlRTT(p *sim.Proc) {
	p.Sleep(2 * c.P.NetLatency)
}

// StreamPath returns the path for a pipelined disk-to-disk stream between
// nodes: the source disk read, the network hop, and the destination disk
// write all proceed concurrently, so the stream runs at the slowest stage.
// This models the migration manager's chunk streaming.
func (c *Cluster) StreamPath(src, dst *Node) []*flow.Link {
	if src == dst {
		return []*flow.Link{src.Disk}
	}
	return []*flow.Link{src.Disk, src.NICOut, c.Fabric, dst.NICIn, dst.Disk}
}
