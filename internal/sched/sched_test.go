package sched

import (
	"math"
	"strconv"
	"testing"

	"github.com/hybridmig/hybridmig/internal/flow"
	"github.com/hybridmig/hybridmig/internal/metrics"
	"github.com/hybridmig/hybridmig/internal/sim"
)

// runCampaign executes n unit-duration jobs under pol on a fresh engine and
// returns the campaign stats.
func runCampaign(t *testing.T, n int, pol Policy, dur float64) *metrics.Campaign {
	t.Helper()
	eng := sim.New()
	jobs := make([]Job, n)
	for i := range jobs {
		jobs[i] = Job{
			Name:     "j" + strconv.Itoa(i),
			Run:      func(p *sim.Proc) { p.Sleep(dur) },
			Downtime: func() float64 { return 0.01 },
		}
	}
	var c *metrics.Campaign
	eng.Go("campaign", func(p *sim.Proc) {
		c = New(eng, nil).Run(p, jobs, pol)
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if c == nil {
		t.Fatal("campaign did not complete")
	}
	return c
}

func near(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestPolicyWidths(t *testing.T) {
	cases := []struct {
		pol      Policy
		makespan float64
		peak     int
	}{
		{AllAtOnce{}, 1, 6},
		{Serial{}, 6, 1},
		{BatchedK{K: 2}, 3, 2},
		{BatchedK{K: 4}, 2, 4},
		{BatchedK{}, 1, 6}, // K<=0 means unlimited
	}
	for _, tc := range cases {
		c := runCampaign(t, 6, tc.pol, 1)
		if !near(c.Makespan(), tc.makespan) {
			t.Errorf("%s: makespan = %v, want %v", tc.pol.Name(), c.Makespan(), tc.makespan)
		}
		if c.PeakConcurrent != tc.peak {
			t.Errorf("%s: peak = %d, want %d", tc.pol.Name(), c.PeakConcurrent, tc.peak)
		}
		if c.Jobs != 6 || len(c.JobStats) != 6 {
			t.Errorf("%s: job accounting %d/%d", tc.pol.Name(), c.Jobs, len(c.JobStats))
		}
		if !near(c.TotalDowntime, 0.06) {
			t.Errorf("%s: downtime = %v", tc.pol.Name(), c.TotalDowntime)
		}
		if !near(c.TotalMigrationTime(), 6) || !near(c.AvgMigrationTime(), 1) {
			t.Errorf("%s: migration time sum %v avg %v", tc.pol.Name(),
				c.TotalMigrationTime(), c.AvgMigrationTime())
		}
	}
}

func TestSerialRunsInSubmissionOrder(t *testing.T) {
	c := runCampaign(t, 4, Serial{}, 2)
	for i, j := range c.JobStats {
		if !near(j.Started, float64(2*i)) || !near(j.Finished, float64(2*i+2)) {
			t.Errorf("job %d ran [%v,%v], want [%d,%d]", i, j.Started, j.Finished, 2*i, 2*i+2)
		}
		if !near(j.Wait(), float64(2*i)) {
			t.Errorf("job %d wait = %v", i, j.Wait())
		}
	}
}

func TestCycleAwareWaitsForWindow(t *testing.T) {
	eng := sim.New()
	jobs := []Job{{
		Name:  "cyclic",
		Run:   func(p *sim.Proc) { p.Sleep(1) },
		LowIO: func() bool { return eng.Now() >= 5 },
	}}
	var c *metrics.Campaign
	eng.Go("campaign", func(p *sim.Proc) {
		c = New(eng, nil).Run(p, jobs, CycleAware{Poll: 0.5})
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if c.JobStats[0].Started < 5 {
		t.Errorf("started at %v before the low-I/O window at 5", c.JobStats[0].Started)
	}
	if c.JobStats[0].Started > 5.6 {
		t.Errorf("started at %v, poll interval 0.5 should admit by 5.5", c.JobStats[0].Started)
	}
}

func TestCycleAwareDeferBudget(t *testing.T) {
	eng := sim.New()
	jobs := []Job{{
		Name:  "never-quiet",
		Run:   func(p *sim.Proc) { p.Sleep(1) },
		LowIO: func() bool { return false },
	}}
	var c *metrics.Campaign
	eng.Go("campaign", func(p *sim.Proc) {
		c = New(eng, nil).Run(p, jobs, CycleAware{Poll: 0.5, MaxDefer: 3})
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	got := c.JobStats[0].Started
	if got < 3 || got > 3.6 {
		t.Errorf("started at %v, defer budget 3 should force admission near 3", got)
	}
}

func TestCampaignTrafficAccounting(t *testing.T) {
	eng := sim.New()
	net := flow.NewNet(eng)
	link := flow.NewLink("wire", 100)
	jobs := make([]Job, 3)
	for i := range jobs {
		jobs[i] = Job{
			Name: "xfer" + strconv.Itoa(i),
			Run: func(p *sim.Proc) {
				net.Transfer(p, []*flow.Link{link}, 500, flow.TagMemory)
			},
		}
	}
	var c *metrics.Campaign
	eng.Go("campaign", func(p *sim.Proc) {
		c = New(eng, net).Run(p, jobs, AllAtOnce{})
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if !near(c.TransferredBytes, 1500) {
		t.Errorf("transferred = %v, want 1500", c.TransferredBytes)
	}
	if got := c.TagBytesFor(flow.TagMemory.String()); !near(got, 1500) {
		t.Errorf("memory tag bytes = %v", got)
	}
	if c.PeakFlows < 2 {
		t.Errorf("peak flows = %d, want >= 2 for three concurrent transfers", c.PeakFlows)
	}
	// The link is the bottleneck: three fair-shared 500-byte transfers over
	// 100 B/s finish together at t=15.
	if !near(c.Makespan(), 15) {
		t.Errorf("makespan = %v, want 15", c.Makespan())
	}
}

func TestCampaignDeterminism(t *testing.T) {
	for _, pol := range Policies(6) {
		a := runCampaign(t, 6, pol, 1.5)
		b := runCampaign(t, 6, pol, 1.5)
		if a.Makespan() != b.Makespan() || a.TotalDowntime != b.TotalDowntime ||
			a.PeakConcurrent != b.PeakConcurrent {
			t.Errorf("%s: repeated campaigns differ: %+v vs %+v", pol.Name(), a, b)
		}
		for i := range a.JobStats {
			if a.JobStats[i] != b.JobStats[i] {
				t.Errorf("%s: job %d stats differ", pol.Name(), i)
			}
		}
	}
}

func TestPoliciesSet(t *testing.T) {
	pols := Policies(8)
	if len(pols) != 4 {
		t.Fatalf("policy set size %d", len(pols))
	}
	names := map[string]bool{}
	for _, p := range pols {
		names[p.Name()] = true
	}
	for _, want := range []string{"all-at-once", "serial", "batched-2", "cycle-aware"} {
		if !names[want] {
			t.Errorf("policy set missing %s (have %v)", want, names)
		}
	}
	if w := (BatchedK{K: 5}).Width(3); w != 5 {
		t.Errorf("BatchedK width = %d", w) // Run clamps to n later
	}
}
