package sched

import (
	"math"
	"strconv"
	"testing"

	"github.com/hybridmig/hybridmig/internal/flow"
	"github.com/hybridmig/hybridmig/internal/metrics"
	"github.com/hybridmig/hybridmig/internal/sim"
)

// runCampaign executes n unit-duration jobs under pol on a fresh engine and
// returns the campaign stats.
func runCampaign(t *testing.T, n int, pol Policy, dur float64) *metrics.Campaign {
	t.Helper()
	eng := sim.New()
	jobs := make([]Job, n)
	for i := range jobs {
		jobs[i] = Job{
			Name:     "j" + strconv.Itoa(i),
			Run:      func(p *sim.Proc) error { p.Sleep(dur); return nil },
			Downtime: func() float64 { return 0.01 },
		}
	}
	var c *metrics.Campaign
	eng.Go("campaign", func(p *sim.Proc) {
		c = New(eng, nil).Run(p, jobs, pol)
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if c == nil {
		t.Fatal("campaign did not complete")
	}
	return c
}

func near(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestPolicyWidths(t *testing.T) {
	cases := []struct {
		pol      Policy
		makespan float64
		peak     int
	}{
		{AllAtOnce{}, 1, 6},
		{Serial{}, 6, 1},
		{BatchedK{K: 2}, 3, 2},
		{BatchedK{K: 4}, 2, 4},
		{BatchedK{}, 1, 6}, // K<=0 means unlimited
	}
	for _, tc := range cases {
		c := runCampaign(t, 6, tc.pol, 1)
		if !near(c.Makespan(), tc.makespan) {
			t.Errorf("%s: makespan = %v, want %v", tc.pol.Name(), c.Makespan(), tc.makespan)
		}
		if c.PeakConcurrent != tc.peak {
			t.Errorf("%s: peak = %d, want %d", tc.pol.Name(), c.PeakConcurrent, tc.peak)
		}
		if c.Jobs != 6 || len(c.JobStats) != 6 {
			t.Errorf("%s: job accounting %d/%d", tc.pol.Name(), c.Jobs, len(c.JobStats))
		}
		if !near(c.TotalDowntime, 0.06) {
			t.Errorf("%s: downtime = %v", tc.pol.Name(), c.TotalDowntime)
		}
		if !near(c.TotalMigrationTime(), 6) || !near(c.AvgMigrationTime(), 1) {
			t.Errorf("%s: migration time sum %v avg %v", tc.pol.Name(),
				c.TotalMigrationTime(), c.AvgMigrationTime())
		}
	}
}

func TestSerialRunsInSubmissionOrder(t *testing.T) {
	c := runCampaign(t, 4, Serial{}, 2)
	for i, j := range c.JobStats {
		if !near(j.Started, float64(2*i)) || !near(j.Finished, float64(2*i+2)) {
			t.Errorf("job %d ran [%v,%v], want [%d,%d]", i, j.Started, j.Finished, 2*i, 2*i+2)
		}
		if !near(j.Wait(), float64(2*i)) {
			t.Errorf("job %d wait = %v", i, j.Wait())
		}
	}
}

func TestCycleAwareWaitsForWindow(t *testing.T) {
	eng := sim.New()
	jobs := []Job{{
		Name:  "cyclic",
		Run:   func(p *sim.Proc) error { p.Sleep(1); return nil },
		LowIO: func() bool { return eng.Now() >= 5 },
	}}
	var c *metrics.Campaign
	eng.Go("campaign", func(p *sim.Proc) {
		c = New(eng, nil).Run(p, jobs, CycleAware{Poll: 0.5})
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if c.JobStats[0].Started < 5 {
		t.Errorf("started at %v before the low-I/O window at 5", c.JobStats[0].Started)
	}
	if c.JobStats[0].Started > 5.6 {
		t.Errorf("started at %v, poll interval 0.5 should admit by 5.5", c.JobStats[0].Started)
	}
}

func TestCycleAwareDeferBudget(t *testing.T) {
	eng := sim.New()
	jobs := []Job{{
		Name:  "never-quiet",
		Run:   func(p *sim.Proc) error { p.Sleep(1); return nil },
		LowIO: func() bool { return false },
	}}
	var c *metrics.Campaign
	eng.Go("campaign", func(p *sim.Proc) {
		c = New(eng, nil).Run(p, jobs, CycleAware{Poll: 0.5, MaxDefer: 3})
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	got := c.JobStats[0].Started
	if got < 3 || got > 3.6 {
		t.Errorf("started at %v, defer budget 3 should force admission near 3", got)
	}
}

func TestCampaignTrafficAccounting(t *testing.T) {
	eng := sim.New()
	net := flow.NewNet(eng)
	link := flow.NewLink("wire", 100)
	jobs := make([]Job, 3)
	for i := range jobs {
		jobs[i] = Job{
			Name: "xfer" + strconv.Itoa(i),
			Run: func(p *sim.Proc) error {
				net.Transfer(p, []*flow.Link{link}, 500, flow.TagMemory)
				return nil
			},
		}
	}
	var c *metrics.Campaign
	eng.Go("campaign", func(p *sim.Proc) {
		c = New(eng, net).Run(p, jobs, AllAtOnce{})
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if !near(c.TransferredBytes, 1500) {
		t.Errorf("transferred = %v, want 1500", c.TransferredBytes)
	}
	if got := c.TagBytesFor(flow.TagMemory.String()); !near(got, 1500) {
		t.Errorf("memory tag bytes = %v", got)
	}
	if c.PeakFlows < 2 {
		t.Errorf("peak flows = %d, want >= 2 for three concurrent transfers", c.PeakFlows)
	}
	// The link is the bottleneck: three fair-shared 500-byte transfers over
	// 100 B/s finish together at t=15.
	if !near(c.Makespan(), 15) {
		t.Errorf("makespan = %v, want 15", c.Makespan())
	}
}

func TestCampaignDeterminism(t *testing.T) {
	for _, pol := range Policies(6) {
		a := runCampaign(t, 6, pol, 1.5)
		b := runCampaign(t, 6, pol, 1.5)
		if a.Makespan() != b.Makespan() || a.TotalDowntime != b.TotalDowntime ||
			a.PeakConcurrent != b.PeakConcurrent {
			t.Errorf("%s: repeated campaigns differ: %+v vs %+v", pol.Name(), a, b)
		}
		for i := range a.JobStats {
			if a.JobStats[i] != b.JobStats[i] {
				t.Errorf("%s: job %d stats differ", pol.Name(), i)
			}
		}
	}
}

func TestPoliciesSet(t *testing.T) {
	pols := Policies(8)
	if len(pols) != 4 {
		t.Fatalf("policy set size %d", len(pols))
	}
	names := map[string]bool{}
	for _, p := range pols {
		names[p.Name()] = true
	}
	for _, want := range []string{"all-at-once", "serial", "batched-2", "cycle-aware"} {
		if !names[want] {
			t.Errorf("policy set missing %s (have %v)", want, names)
		}
	}
	if w := (BatchedK{K: 5}).Width(3); w != 5 {
		t.Errorf("BatchedK width = %d", w) // Run clamps to n later
	}
}

// flakyJob fails its first n attempts, then succeeds.
func flakyJob(name string, failures int, dur float64) Job {
	attempts := 0
	return Job{
		Name: name,
		Run: func(p *sim.Proc) error {
			attempts++
			p.Sleep(dur)
			if attempts <= failures {
				return errAborted
			}
			return nil
		},
	}
}

var errAborted = errTest("aborted")

type errTest string

func (e errTest) Error() string { return string(e) }

func TestRetryCompletesAfterFailures(t *testing.T) {
	eng := sim.New()
	jobs := []Job{flakyJob("flaky", 2, 1)}
	var c *metrics.Campaign
	eng.Go("campaign", func(p *sim.Proc) {
		c = New(eng, nil).RunRetry(p, jobs, Serial{}, Retry{MaxAttempts: 5, Backoff: 2, Factor: 2})
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	st := c.JobStats[0]
	if st.Attempts != 3 || st.Exhausted {
		t.Fatalf("attempts=%d exhausted=%v, want 3 attempts completed", st.Attempts, st.Exhausted)
	}
	if c.Retries != 2 || c.ExhaustedJobs != 0 {
		t.Fatalf("campaign retries=%d exhausted=%d, want 2,0", c.Retries, c.ExhaustedJobs)
	}
	// Attempt 1 [0,1], backoff 2, attempt 2 [3,4], backoff 4, attempt 3 [8,9].
	if !near(st.Finished, 9) {
		t.Fatalf("finished = %v, want 9 (exponential backoff)", st.Finished)
	}
}

func TestRetryExhaustsBudget(t *testing.T) {
	eng := sim.New()
	jobs := []Job{flakyJob("doomed", 99, 1), flakyJob("fine", 0, 1)}
	var c *metrics.Campaign
	eng.Go("campaign", func(p *sim.Proc) {
		c = New(eng, nil).RunRetry(p, jobs, AllAtOnce{}, Retry{MaxAttempts: 3, Backoff: 1})
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if !c.JobStats[0].Exhausted || c.JobStats[0].Attempts != 3 {
		t.Fatalf("doomed: attempts=%d exhausted=%v, want 3,true",
			c.JobStats[0].Attempts, c.JobStats[0].Exhausted)
	}
	if c.JobStats[1].Exhausted || c.JobStats[1].Attempts != 1 {
		t.Fatalf("fine: attempts=%d exhausted=%v, want 1,false",
			c.JobStats[1].Attempts, c.JobStats[1].Exhausted)
	}
	if c.Retries != 2 || c.ExhaustedJobs != 1 {
		t.Fatalf("campaign retries=%d exhausted=%d, want 2,1", c.Retries, c.ExhaustedJobs)
	}
}

func TestRetryReleasesSlotDuringBackoff(t *testing.T) {
	// Serial admission: while the flaky job backs off, the other job must
	// get the slot instead of the campaign deadlocking or serializing behind
	// the backoff.
	eng := sim.New()
	jobs := []Job{flakyJob("flaky", 1, 1), flakyJob("ready", 0, 1)}
	var c *metrics.Campaign
	eng.Go("campaign", func(p *sim.Proc) {
		c = New(eng, nil).RunRetry(p, jobs, Serial{}, Retry{MaxAttempts: 2, Backoff: 5})
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	// flaky attempt 1 [0,1]; ready runs [1,2]; flaky retries at 6, done 7.
	if !near(c.JobStats[1].Finished, 2) {
		t.Fatalf("ready finished = %v, want 2 (slot released during backoff)", c.JobStats[1].Finished)
	}
	if !near(c.JobStats[0].Finished, 7) {
		t.Fatalf("flaky finished = %v, want 7", c.JobStats[0].Finished)
	}
}

func TestRetryZeroBudgetIsTerminal(t *testing.T) {
	eng := sim.New()
	jobs := []Job{flakyJob("fail", 1, 1)}
	var c *metrics.Campaign
	eng.Go("campaign", func(p *sim.Proc) {
		c = New(eng, nil).Run(p, jobs, Serial{})
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if !c.JobStats[0].Exhausted || c.JobStats[0].Attempts != 1 {
		t.Fatalf("attempts=%d exhausted=%v, want 1,true", c.JobStats[0].Attempts, c.JobStats[0].Exhausted)
	}
}
