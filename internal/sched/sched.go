// Package sched is the migration orchestrator: it takes a campaign of live
// migrations and decides when each one runs. The paper migrates VMs one at a
// time or all at once (Section 5.4); follow-up work — Baruchi et al.'s
// cycle-aware orchestration, Voorsluys et al.'s migration cost studies —
// shows that *when* and *how many* migrations run concurrently dominates the
// total cost of a reconfiguration. This package supplies that layer on top
// of the hybrid push/prefetch core.
//
// A campaign is a set of Jobs (one per migration) executed under a Policy:
//
//   - AllAtOnce fires every migration immediately — the paper's Figure 4
//     concurrent scenario, and the worst case for interference.
//   - Serial admits one migration at a time, the other extreme: minimal
//     interference, maximal makespan.
//   - BatchedK caps simultaneous migrations at K (admission control).
//   - CycleAware defers each VM until its workload reports a low-I/O
//     window (or a defer budget expires), following Baruchi et al.'s
//     observation that migrating in a workload's quiet phase shrinks both
//     migration time and dirty-data retransmission.
//
// The orchestrator executes jobs as simulation processes in submission
// order (admission is FIFO, so runs are deterministic), and records a
// metrics.Campaign: makespan, cumulative downtime, peak concurrency, total
// bytes moved while the campaign ran, and a per-flow-tag traffic breakdown
// for interference analysis.
package sched

import (
	"strconv"

	"github.com/hybridmig/hybridmig/internal/flow"
	"github.com/hybridmig/hybridmig/internal/metrics"
	"github.com/hybridmig/hybridmig/internal/sim"
	"github.com/hybridmig/hybridmig/internal/trace"
)

// Job is one migration of a campaign. Run blocks until the migration fully
// completes. The optional probes let policies and stats see into the
// workload and the migration outcome without sched depending on the cluster
// layer.
type Job struct {
	Name string
	// Run executes the migration; it is called from a dedicated process. A
	// non-nil error means the attempt was torn down (fault-aborted) and the
	// job is eligible for re-admission under the campaign's Retry budget.
	Run func(p *sim.Proc) error
	// LowIO, when non-nil, reports whether the VM's workload is currently
	// in a low-I/O window (CycleAware consults it). Nil means unknown,
	// which policies treat as "always migratable".
	LowIO func() bool
	// Downtime, when non-nil, returns the migration's stop-and-copy
	// duration after Run has completed.
	Downtime func() float64
	// Wasted, when non-nil, returns the cumulative wire bytes this job's
	// instance has wasted on aborted attempts; the campaign records the
	// delta accrued while the job ran.
	Wasted func() float64
	// Fenced, when non-nil, returns the cumulative count of this job's
	// attempts aborted by fencing decisions; the campaign records the delta
	// accrued while the job ran.
	Fenced func() int
}

// Retry bounds re-admission of fault-aborted jobs. The zero value disables
// retries: an aborted job is terminal after its first attempt.
type Retry struct {
	// MaxAttempts is how many times one job may run, first try included;
	// values below 1 mean a single attempt.
	MaxAttempts int
	// Backoff is the delay before an aborted job requests re-admission.
	Backoff float64
	// Factor scales Backoff after each further failure (exponential
	// backoff); values at or below 0 mean 1 (constant backoff).
	Factor float64
}

// attempts returns the effective per-job attempt budget.
func (r Retry) attempts() int {
	if r.MaxAttempts < 1 {
		return 1
	}
	return r.MaxAttempts
}

// Policy decides how a campaign admits its jobs.
type Policy interface {
	// Name labels the policy in reports.
	Name() string
	// Width returns the maximum number of simultaneously running
	// migrations for a campaign of n jobs; values <= 0 mean unlimited.
	Width(n int) int
	// AwaitWindow blocks until the job may request admission. All
	// policies except CycleAware return immediately.
	AwaitWindow(p *sim.Proc, j Job)
}

// AllAtOnce starts every migration immediately.
type AllAtOnce struct{}

func (AllAtOnce) Name() string               { return "all-at-once" }
func (AllAtOnce) Width(n int) int            { return n }
func (AllAtOnce) AwaitWindow(*sim.Proc, Job) {}

// Serial runs the campaign one migration at a time, in submission order.
type Serial struct{}

func (Serial) Name() string               { return "serial" }
func (Serial) Width(int) int              { return 1 }
func (Serial) AwaitWindow(*sim.Proc, Job) {}

// BatchedK admits at most K simultaneous migrations.
type BatchedK struct{ K int }

func (b BatchedK) Name() string { return "batched-" + strconv.Itoa(b.K) }
func (b BatchedK) Width(n int) int {
	if b.K <= 0 {
		return n
	}
	return b.K
}
func (BatchedK) AwaitWindow(*sim.Proc, Job) {}

// CycleAware waits for each VM's low-I/O window before admitting it, up to
// a defer budget; an optional K additionally caps concurrency.
type CycleAware struct {
	// K caps simultaneous migrations; <= 0 means unlimited.
	K int
	// Poll is the window-probe interval in seconds (default 0.25).
	Poll float64
	// MaxDefer bounds how long one job may wait for its window before it
	// is migrated anyway (default 60 s); this keeps campaigns live even
	// for workloads that never quiesce.
	MaxDefer float64
}

func (c CycleAware) Name() string { return "cycle-aware" }
func (c CycleAware) Width(n int) int {
	if c.K <= 0 {
		return n
	}
	return c.K
}

func (c CycleAware) AwaitWindow(p *sim.Proc, j Job) {
	if j.LowIO == nil {
		return
	}
	poll := c.Poll
	if poll <= 0 {
		poll = 0.25
	}
	maxDefer := c.MaxDefer
	if maxDefer <= 0 {
		maxDefer = 60
	}
	deadline := p.Now() + maxDefer
	for !j.LowIO() && p.Now() < deadline {
		p.Sleep(poll)
	}
}

// Policies returns the four standard policies for a campaign of n jobs:
// all-at-once, serial, batched at roughly n/4 (at least 2), and cycle-aware.
func Policies(n int) []Policy {
	k := n / 4
	if k < 2 {
		k = 2
	}
	return []Policy{AllAtOnce{}, Serial{}, BatchedK{K: k}, CycleAware{}}
}

// Orchestrator executes migration campaigns on one testbed's engine.
type Orchestrator struct {
	eng *sim.Engine
	net *flow.Net // optional: enables traffic accounting
	// Trace, when non-nil, receives campaign admission events: job
	// queued/admitted/finished plus campaign start/finish brackets.
	Trace *trace.Bus
}

// New returns an orchestrator. net may be nil, in which case campaign
// traffic fields stay zero.
func New(eng *sim.Engine, net *flow.Net) *Orchestrator {
	return &Orchestrator{eng: eng, net: net}
}

// Run executes the campaign under the policy and blocks until every job has
// completed. Jobs are admitted in submission order (FIFO), so identical
// inputs produce identical campaigns. Aborted jobs are terminal (no
// retries); use RunRetry for a retry budget.
func (o *Orchestrator) Run(p *sim.Proc, jobs []Job, pol Policy) *metrics.Campaign {
	return o.RunRetry(p, jobs, pol, Retry{})
}

// RunRetry is Run with a retry budget: a job whose attempt returns an error
// releases its admission slot, backs off, and rejoins the admission queue at
// the back (re-admission is FIFO with everyone else, so campaigns stay
// deterministic), until it completes or exhausts retry.MaxAttempts. Every
// job therefore reaches a terminal state: completed, or exhausted with
// JobStat.Exhausted set.
func (o *Orchestrator) RunRetry(p *sim.Proc, jobs []Job, pol Policy, retry Retry) *metrics.Campaign {
	eng := o.eng
	c := &metrics.Campaign{
		Policy:   pol.Name(),
		Jobs:     len(jobs),
		Start:    eng.Now(),
		JobStats: make([]metrics.JobStat, len(jobs)),
	}
	emit := func(kind trace.Kind, vm, detail string, value float64) {
		if o.Trace.Active() {
			o.Trace.Emit(trace.Event{Time: eng.Now(), Kind: kind, VM: vm, Detail: detail, Value: value})
		}
	}
	emit(trace.KindCampaignStarted, "", pol.Name(), float64(len(jobs)))
	var before []float64
	if o.net != nil {
		for _, t := range flow.Tags() {
			before = append(before, o.net.BytesByTag(t))
		}
	}

	width := pol.Width(len(jobs))
	if width <= 0 || width > len(jobs) {
		width = len(jobs)
	}
	slots := sim.NewSemaphore(width)
	running := 0
	var wg sim.WaitGroup
	sampleFlows := func() {
		if o.net == nil {
			return
		}
		if n := o.net.ActiveFlows(); n > c.PeakFlows {
			c.PeakFlows = n
		}
	}
	for i := range jobs {
		j := jobs[i]
		st := &c.JobStats[i]
		st.Name = j.Name
		st.Queued = eng.Now()
		emit(trace.KindJobQueued, j.Name, pol.Name(), 0)
		wg.Add(1)
		eng.Go("sched/"+j.Name, func(jp *sim.Proc) {
			var wasted0 float64
			if j.Wasted != nil {
				wasted0 = j.Wasted()
			}
			var fenced0 int
			if j.Fenced != nil {
				fenced0 = j.Fenced()
			}
			backoff := retry.Backoff
			for {
				st.Attempts++
				pol.AwaitWindow(jp, j)
				slots.Acquire(jp)
				running++
				if running > c.PeakConcurrent {
					c.PeakConcurrent = running
				}
				if st.Attempts == 1 {
					st.Started = jp.Now() // first admission; retries extend Duration
				}
				emit(trace.KindJobAdmitted, j.Name, pol.Name(), float64(running))
				sampleFlows()
				err := j.Run(jp)
				if err == nil {
					st.Finished = jp.Now()
					if j.Downtime != nil {
						st.Downtime = j.Downtime()
						c.TotalDowntime += st.Downtime
					}
					emit(trace.KindJobFinished, j.Name, pol.Name(), st.Downtime)
					sampleFlows()
					running--
					slots.Release(eng)
					break
				}
				// The attempt was fault-aborted: give the slot back before
				// backing off so waiting jobs are not starved.
				sampleFlows()
				running--
				slots.Release(eng)
				if st.Attempts >= retry.attempts() {
					st.Exhausted = true
					st.Finished = jp.Now()
					c.ExhaustedJobs++
					emit(trace.KindJobFinished, j.Name, pol.Name(), st.Downtime)
					break
				}
				c.Retries++
				if o.Trace.Active() {
					o.Trace.Emit(trace.Event{Time: eng.Now(), Kind: trace.KindMigrationRetried,
						VM: j.Name, Detail: pol.Name(), Round: st.Attempts + 1})
				}
				if backoff > 0 {
					jp.Sleep(backoff)
				}
				if retry.Factor > 0 {
					backoff *= retry.Factor
				}
			}
			if j.Wasted != nil {
				st.WastedBytes = j.Wasted() - wasted0
				c.WastedBytes += st.WastedBytes
			}
			if j.Fenced != nil {
				st.Fenced = j.Fenced() - fenced0
				c.FencedMigrations += st.Fenced
			}
			wg.Done(eng)
		})
	}
	wg.Wait(p)
	c.End = eng.Now()
	emit(trace.KindCampaignFinished, "", pol.Name(), c.Makespan())
	if o.net != nil {
		for i, t := range flow.Tags() {
			d := o.net.BytesByTag(t) - before[i]
			c.TransferredBytes += d
			if d > 0 {
				c.Traffic = append(c.Traffic, metrics.TagBytes{Tag: t.String(), Bytes: d})
			}
		}
	}
	return c
}
