// Package flow implements a flow-level network/resource model with max-min
// fair bandwidth sharing.
//
// A Flow is a bulk transfer of a known size that traverses an ordered set of
// capacity Links (e.g. source NIC -> switch fabric -> destination NIC, or a
// single disk link for local I/O). Whenever the set of active flows changes,
// the package recomputes a max-min fair rate allocation by progressive
// filling: repeatedly find the most constrained link, give every unfrozen
// flow crossing it an equal share of that link's residual capacity, and
// freeze those flows. Flows may additionally carry an individual rate cap
// (application pacing, hypervisor migration speed limits), which is treated
// as a private link.
//
// This is the standard fluid approximation used by flow-level datacenter
// simulators: it captures who saturates which resource and when, without
// simulating individual packets.
//
// Allocation is incremental and component-scoped: max-min fairness is
// separable across connected components of the link-sharing graph, so a flow
// change only re-runs progressive filling over the flows and links reachable
// from the changed flow. Links that provably cannot saturate (see
// Link.transparent) do not couple their flows, so a non-blocking switch
// fabric never merges otherwise-disjoint migrations into one component.
// Byte accounting is settled lazily per flow (a flow's remaining count is
// integrated only when its rate changes, it completes, or it is queried),
// and completions are tracked in an indexed min-heap so the next completion
// needs no scan. Determinism is preserved: links are filled in
// first-occurrence (breadth-first discovery) order, completion ties break
// on activation order, and callbacks fire in activation-table order,
// exactly as the former global recompute did.
//
// Flows whose sole potentially-binding link is the same bottleneck (and that
// carry no individual cap) are aggregated into a rate group: max-min gives
// every such flow an identical rate, so the group carries one shared rate
// cell and a cumulative progress accumulator, each member records only the
// progress value at which it finishes, and a group-wide rate change is a
// single O(1) anchor advance plus one completion-heap fix for the group's
// earliest-finishing member (its representative) instead of a settle and a
// heap repair per member. This is what keeps churn on a saturated link
// shared by n flows at O(log n) instead of O(n).
package flow

import (
	"cmp"
	"fmt"
	"math"
	"slices"

	"github.com/hybridmig/hybridmig/internal/sim"
)

// Tag classifies a flow for traffic accounting; the experiment harness
// attributes bytes to migration phases using these.
type Tag uint8

// Traffic tags. TagOther is the zero value.
const (
	TagOther       Tag = iota
	TagMemory          // hypervisor memory pre-copy traffic
	TagStoragePush     // migration manager active push (source -> destination)
	TagStoragePull     // migration manager pull/prefetch (destination <- source)
	TagBlockMig        // hypervisor incremental block migration (precopy baseline)
	TagMirror          // synchronous write mirroring traffic
	TagRepo            // repository (base image) reads
	TagPFS             // parallel file system I/O
	TagApp             // application communication (e.g. CM1 halo exchange)
	TagControl         // small control messages
	TagBackground      // injected cross-tenant background traffic
	numTags
)

// NumTags is the number of defined tags; Tag(0) through Tag(NumTags-1) are
// all valid, so reporters can iterate by index without allocating.
const NumTags = int(numTags)

var tagNames = [numTags]string{
	"other", "memory", "push", "pull", "blockmig", "mirror", "repo", "pfs", "app", "control",
	"background",
}

func (t Tag) String() string {
	if int(t) < len(tagNames) {
		return tagNames[t]
	}
	return fmt.Sprintf("tag(%d)", uint8(t))
}

// allTags is the shared backing array for Tags.
var allTags = func() [numTags]Tag {
	var a [numTags]Tag
	for i := range a {
		a[i] = Tag(i)
	}
	return a
}()

// Tags returns all defined tags in order, for iteration by reporters. The
// returned slice is shared and immutable: callers must not modify it.
func Tags() []Tag { return allTags[:] }

// Link is a capacity-constrained resource (a NIC direction, a switch fabric,
// a disk). Bytes flowing through it are accumulated for utilization reports.
type Link struct {
	Name string
	// Capacity is the link rate in bytes per second. It must not be written
	// directly once flows are active; use Net.SetCapacity, which reflows the
	// affected component and keeps the saturability bounds consistent.
	Capacity float64

	// flows holds the active flows crossing this link EXCEPT members of this
	// link's own rate group, which live in group.members instead. A flow is
	// therefore listed on every transparent link it crosses and on every
	// opaque link it crosses loosely.
	flows []*Flow
	group *rateGroup // lazily created, retained while empty for reuse
	bytes float64    // total bytes carried (settled lazily; see Bytes)

	// Saturability bound: ubSum is the sum, over crossing flows, of each
	// flow's provable rate ceiling from its other constraints (cap or other
	// links); ubInf counts flows with no such ceiling. While ubSum stays
	// below capacity the link can never be a bottleneck ("transparent") and
	// does not glue its flows into one recompute component.
	ubSum float64
	ubInf int

	// scratch for rate computation
	frozenRate float64
	unfrozen   int
	mark       uint64 // epoch stamp for component collection
	snapMark   uint64 // epoch stamp for transparency-flip snapshots
}

// ubMarginFactor keeps a strict margin below capacity in the transparency
// test, so float drift in the incrementally maintained ubSum can never
// declare a genuinely saturable link transparent.
const ubMarginFactor = 1 - 1e-9

// transparent reports whether the link provably cannot be a bottleneck:
// even if every crossing flow ran at its ceiling, the link would not
// saturate. Progressive filling can then never pick it as the arg-min, so
// it neither constrains rates nor couples otherwise-disjoint flows. This is
// what makes a non-blocking switch fabric free: flows crossing it interact
// only through their NICs and disks.
func (l *Link) transparent() bool {
	return l.ubInf == 0 && l.ubSum <= l.Capacity*ubMarginFactor
}

// NewLink returns a link with the given name and capacity in bytes/second.
func NewLink(name string, capacity float64) *Link {
	if capacity <= 0 {
		panic("flow: link capacity must be positive")
	}
	return &Link{Name: name, Capacity: capacity}
}

// Bytes returns the total number of bytes that have crossed the link.
func (l *Link) Bytes() float64 {
	var n *Net
	if len(l.flows) > 0 {
		n = l.flows[0].net
	} else if l.group != nil && len(l.group.members) > 0 {
		n = l.group.members[0].net
	}
	if n != nil {
		for _, f := range l.flows {
			n.settle(f, n.lastEvent)
		}
		if g := l.group; g != nil {
			for _, f := range g.members {
				n.settle(f, n.lastEvent)
			}
		}
	}
	return l.bytes
}

// ActiveFlows returns the number of flows currently crossing the link.
func (l *Link) ActiveFlows() int {
	c := len(l.flows)
	if l.group != nil {
		c += len(l.group.members)
	}
	return c
}

// crossingCount and crossingAt iterate every flow crossing the link: the
// loose list plus the link's own group members.
func (l *Link) crossingCount() int { return l.ActiveFlows() }

func (l *Link) crossingAt(i int) *Flow {
	if i < len(l.flows) {
		return l.flows[i]
	}
	return l.group.members[i-len(l.flows)]
}

// addUB / subUB move a flow's saturability contribution onto / off the link;
// list and group membership are managed separately by the caller.
func (l *Link) addUB(f *Flow) {
	if u := f.ubFor(l); math.IsInf(u, 1) {
		l.ubInf++
	} else {
		l.ubSum += u
	}
}

func (l *Link) subUB(f *Flow) {
	if u := f.ubFor(l); math.IsInf(u, 1) {
		l.ubInf--
	} else {
		l.ubSum -= u
	}
}

func (l *Link) removeFromList(f *Flow) {
	for i, g := range l.flows {
		if g == f {
			last := len(l.flows) - 1
			l.flows[i] = l.flows[last]
			l.flows[last] = nil
			l.flows = l.flows[:last]
			return
		}
	}
}

// Flow is a bulk transfer in progress.
type Flow struct {
	Links   []*Link // resources traversed; may be empty for an infinitely fast local transfer
	Size    float64 // total bytes
	MaxRate float64 // per-flow cap in bytes/s; 0 means uncapped
	Tag     Tag
	OnDone  func() // optional completion callback, runs in engine context

	remaining float64
	rate      float64
	frozen    bool // scratch for progressive filling
	active    bool
	doneCond  sim.Cond
	net       *Net
	index     int // position in net.flows

	// incremental-allocation state. Byte integration is anchored at the
	// flow's last rate change: remaining at time t is always computed as
	// anchorRem - rate*(t - anchorT), never by accumulating rate*dt slices.
	// Settles triggered between rate changes (queries, or another
	// component's completion sweep peeking at the heap top) are therefore
	// pure reads — they cannot perturb the value the flow will have at its
	// next rate change, which keeps a component's trajectory bit-identical
	// no matter what unrelated flows share the Net.
	lastSettle sim.Time // when remaining/bytes were last integrated
	anchorT    sim.Time // time of the last rate change
	anchorRem  float64  // remaining bytes at the last rate change
	compT      sim.Time // projected completion time; +Inf while stalled
	heapIdx    int      // position in net.compHeap, -1 while inactive
	seq        uint64   // activation order, tie-break in the completion heap
	mark       uint64   // epoch stamp for component collection
	prevRate   float64  // rate before the current component recompute

	// Rate-group state. A grouped flow's remaining count is finishP minus the
	// group's cumulative progress; its rate is the group's shared rate cell;
	// only the group's earliest-finishing member sits in net.compHeap.
	group   *rateGroup // nil while loose
	gIdx    int        // position in group.members, -1 once removed
	finishP float64    // group progress value at which this flow completes

	// Two smallest link capacities on the path (for the saturability bound):
	// the flow's rate ceiling as seen from link l is the smallest capacity
	// among its OTHER links — minCap, or minCap2 when l is the unique
	// smallest — further clamped by MaxRate.
	minCap, minCap2 float64
	minCapLink      *Link
}

// ubFor returns the flow's provable rate ceiling as seen from link l: no
// allocation can ever run the flow faster than its cap or its narrowest
// other link.
func (f *Flow) ubFor(l *Link) float64 {
	c := f.minCap
	if l == f.minCapLink {
		c = f.minCap2
	}
	if f.MaxRate > 0 && f.MaxRate < c {
		c = f.MaxRate
	}
	return c
}

// Remaining returns the bytes left to transfer (settled lazily; accurate
// after any net activity at the current instant).
func (f *Flow) Remaining() float64 {
	if f.active {
		f.net.settle(f, f.net.lastEvent)
	}
	return f.remaining
}

// Rate returns the current allocated rate in bytes/s.
func (f *Flow) Rate() float64 {
	if f.group != nil {
		return f.group.rate
	}
	return f.rate
}

// Done reports whether the flow has completed or been canceled.
func (f *Flow) Done() bool { return !f.active && f.net != nil }

// Net manages the set of active flows and their fair-share rates.
type Net struct {
	eng   *sim.Engine
	flows []*Flow

	byTag     [numTags]float64
	completed uint64 // count of completed flows
	startSeq  uint64
	lastEvent sim.Time // time of the last flow start/cancel/completion

	// compHeap is an indexed min-heap of active flows ordered by projected
	// completion (compT, seq); its top is the next completion sweep.
	compHeap   []*Flow
	sweepTimer sim.Timer
	sweepFn    func() // cached closure so rescheduling never allocates

	// reusable scratch for component collection and the sweep batch
	epoch      uint64
	compFlows  []*Flow
	compLinks  []*Link
	compGroups []*rateGroup
	ordered    []*Link
	done       []*Flow

	// reusable scratch for transparency-flip handling
	flipped   []*Link
	reclass   []*Flow
	snapEpoch uint64
	snapLinks []*Link
	snapT     []bool

	// free list for AcquireFlow/ReleaseFlow
	free []*Flow
}

// NewNet returns a flow network bound to the engine.
func NewNet(eng *sim.Engine) *Net {
	n := &Net{eng: eng}
	n.sweepFn = n.completionSweep
	return n
}

// Engine returns the simulation engine.
func (n *Net) Engine() *sim.Engine { return n.eng }

// A rateGroup aggregates the active flows whose sole opaque (potentially
// binding) link is this group's link and which carry no per-flow cap. Every
// other link such a flow crosses is provably transparent, so progressive
// filling can only ever bind the whole group at its home link's equal share:
// all members always receive the same rate. The group therefore keeps one
// rate cell plus a cumulative progress accumulator
//
//	P(t) = pAnchor + rate*(t - anchorT)
//
// and each member stores only finishP, the progress value at which it
// drains: remaining(t) = finishP - P(t), a pure read. A group-wide rate
// change advances (pAnchor, anchorT, rate) in O(1); because P is shared,
// members' relative completion order is fixed by finishP alone, so only the
// minimum-finishP member (the representative, members[0]) needs a
// completion-heap entry, and a rate change costs one heap fix regardless of
// group size.
//
// Two invariants make this sound, both consequences of the saturability
// bound: (1) an uncapped active flow's narrowest link is always opaque (its
// ceiling seen from that link is the second-narrowest capacity, which is at
// least the narrowest), so every uncapped flow has at least one opaque link;
// (2) while a group has members, each member's ceiling seen from the home
// link is at least the link's capacity, so ubSum >= capacity and the home
// link cannot be transparent — membership can only end by reclassification
// or departure, never by the home link silently vanishing from the fill.
type rateGroup struct {
	link    *Link
	rate    float64 // shared rate cell, bytes/s
	pAnchor float64 // cumulative progress at anchorT, bytes
	anchorT sim.Time
	members []*Flow // indexed min-heap keyed (finishP, seq)

	// fill scratch
	fillRate float64
	frozen   bool
	mark     uint64 // epoch stamp for component collection
}

// groupRebaseP bounds the magnitude of the progress accumulator: once
// pAnchor exceeds it, member finishP values are rebased toward zero so the
// float resolution of finishP - P stays far below epsBytes over arbitrarily
// long simulations (at 1e12 the absolute error is ~2e-4 bytes).
const groupRebaseP = 1e12

func (g *rateGroup) progressAt(t sim.Time) float64 {
	if g.rate <= 0 || t <= g.anchorT {
		return g.pAnchor
	}
	return g.pAnchor + g.rate*(t-g.anchorT)
}

// timeFor returns the time at which group progress reaches finishP. The
// (finishP - pAnchor) form mirrors the loose-flow projection
// now + remaining/rate bit for bit when the anchor was advanced at the same
// instant.
func (g *rateGroup) timeFor(finishP float64) sim.Time {
	if g.rate <= 0 {
		return math.Inf(1)
	}
	base := finishP - g.pAnchor
	if base < 0 {
		base = 0
	}
	return g.anchorT + base/g.rate
}

// Member heap: an indexed binary min-heap keyed by (finishP, seq); the root
// is the group's representative in the net's completion heap.

func (g *rateGroup) gLess(i, j int) bool {
	a, b := g.members[i], g.members[j]
	if a.finishP != b.finishP {
		return a.finishP < b.finishP
	}
	return a.seq < b.seq
}

func (g *rateGroup) gSwap(i, j int) {
	m := g.members
	m[i], m[j] = m[j], m[i]
	m[i].gIdx = i
	m[j].gIdx = j
}

func (g *rateGroup) gUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !g.gLess(i, parent) {
			break
		}
		g.gSwap(i, parent)
		i = parent
	}
}

func (g *rateGroup) gDown(i int) {
	s := len(g.members)
	for {
		l := 2*i + 1
		if l >= s {
			return
		}
		least := l
		if r := l + 1; r < s && g.gLess(r, l) {
			least = r
		}
		if !g.gLess(least, i) {
			return
		}
		g.gSwap(i, least)
		i = least
	}
}

// insertMember adds an active flow to the group, computing its finish
// progress from its settled remaining count, and maintains the
// representative's completion-heap entry. The flow may or may not currently
// hold a heap entry (fresh start vs. reclassified loose flow); either way,
// exactly the group's new representative holds one afterwards.
func (n *Net) insertMember(g *rateGroup, f *Flow) {
	now := n.lastEvent
	if len(g.members) == 0 {
		// Empty group: reset the accumulator so finishP values start small
		// and the single-member case projects bit-identically to a loose
		// flow anchored at now.
		g.pAnchor, g.anchorT, g.rate = 0, now, 0
	}
	f.group = g
	f.finishP = f.remaining + g.progressAt(now)
	f.lastSettle = now
	var oldRep *Flow
	if len(g.members) > 0 {
		oldRep = g.members[0]
	}
	f.gIdx = len(g.members)
	g.members = append(g.members, f)
	g.gUp(f.gIdx)
	if g.members[0] == f {
		if oldRep != nil {
			n.heapRemove(oldRep)
		}
		f.compT = g.timeFor(f.finishP)
		if f.heapIdx >= 0 {
			n.heapFix(f)
		} else {
			n.heapPush(f)
		}
	} else if f.heapIdx >= 0 {
		n.heapRemove(f)
	}
}

// popMember removes a flow from the group's member heap and, if it was the
// representative, retires its completion-heap entry and promotes the next
// member. f.group is left set so callers can still identify the home link;
// they clear or reuse it.
func (n *Net) popMember(g *rateGroup, f *Flow) {
	wasRep := g.members[0] == f
	i := f.gIdx
	last := len(g.members) - 1
	if i != last {
		g.gSwap(i, last)
	}
	g.members[last] = nil
	g.members = g.members[:last]
	if i != last {
		g.gDown(i)
		g.gUp(i)
	}
	f.gIdx = -1
	if wasRep {
		if f.heapIdx >= 0 {
			n.heapRemove(f)
		}
		if len(g.members) > 0 {
			rep := g.members[0]
			rep.compT = g.timeFor(rep.finishP)
			n.heapPush(rep)
		}
	}
}

// groupLinkFor returns the link a flow would group on — its sole opaque
// link — or nil if the flow must stay loose (a per-flow cap, or more than
// one opaque link).
func (n *Net) groupLinkFor(f *Flow) *Link {
	if f.MaxRate > 0 {
		return nil
	}
	var L *Link
	for _, l := range f.Links {
		if !l.transparent() {
			if L != nil {
				return nil
			}
			L = l
		}
	}
	return L
}

// leaveToLoose converts a grouped flow back to loose allocation: settle its
// bytes through the group, anchor it at the group's current rate, rejoin the
// home link's loose list, and give it its own completion-heap entry.
func (n *Net) leaveToLoose(f *Flow) {
	g := f.group
	n.settle(f, n.lastEvent)
	n.popMember(g, f)
	f.group = nil
	f.rate = g.rate
	f.anchorT = n.lastEvent
	f.anchorRem = f.remaining
	if f.rate > 0 {
		f.compT = n.lastEvent + f.remaining/f.rate
	} else {
		f.compT = math.Inf(1)
	}
	g.link.flows = append(g.link.flows, f)
	n.heapPush(f)
	// If the group was already collected into the component under
	// construction, the expansion pass may have run past its link: enter the
	// now-loose flow (and its links) into the component directly. Outside a
	// collection the marks are stale and the scratch is reset before use, so
	// this is harmless.
	if g.mark == n.epoch {
		n.seedFlow(f)
		n.seedLinks(f.Links)
	}
}

// joinGroup moves a loose active flow into the group of link L (its sole
// opaque link), removing it from L's loose list; it stays listed on its
// transparent links.
func (n *Net) joinGroup(f *Flow, L *Link) {
	n.settle(f, n.lastEvent)
	g := L.group
	if g == nil {
		g = &rateGroup{link: L}
		L.group = g
	}
	L.removeFromList(f)
	n.insertMember(g, f)
	// Mirror of the leaveToLoose case: if the joining flow was already part
	// of the component under construction, its new group's rate must be
	// refilled too — pull the group and its home link in directly.
	if f.mark == n.epoch && g.mark != n.epoch {
		g.mark = n.epoch
		n.compGroups = append(n.compGroups, g)
	}
	if f.mark == n.epoch {
		n.seedLink(L)
	}
}

// reclassify re-derives one flow's grouping from the current transparency
// pattern of its links and moves it between loose and grouped allocation as
// needed. Idempotent; called for each flow crossing a link whose
// transparency flipped.
func (n *Net) reclassify(f *Flow) {
	L := n.groupLinkFor(f)
	switch {
	case f.group != nil && (L == nil || L != f.group.link):
		n.leaveToLoose(f)
		if L != nil {
			n.joinGroup(f, L)
		}
	case f.group == nil && L != nil:
		n.joinGroup(f, L)
	}
}

// reclassifyCrossing reclassifies every flow crossing a link whose
// transparency just flipped: the loose list, and — when a capacity raise
// flipped a populated home link transparent — the link's own group members,
// each of which now groups elsewhere or goes loose (an uncapped flow's
// narrowest link is always opaque, so they never strand). A snapshot is
// iterated because reclassification mutates the lists.
func (n *Net) reclassifyCrossing(l *Link) {
	n.reclass = append(n.reclass[:0], l.flows...)
	if g := l.group; g != nil {
		n.reclass = append(n.reclass, g.members...)
	}
	for _, f := range n.reclass {
		n.reclassify(f)
	}
}

// snapLink records a link's pre-mutation transparency for flip detection.
func (n *Net) snapLink(l *Link) {
	if l.snapMark == n.snapEpoch {
		return
	}
	l.snapMark = n.snapEpoch
	n.snapLinks = append(n.snapLinks, l)
	n.snapT = append(n.snapT, l.transparent())
}

// BytesByTag returns the total bytes transferred for the tag across all
// links (each flow's bytes are counted once, regardless of path length).
// Counters are accurate as of the last net activity at the current instant.
func (n *Net) BytesByTag(t Tag) float64 {
	n.settleAll()
	return n.byTag[t]
}

// TotalBytes returns bytes transferred across all tags, accurate as of the
// last net activity at the current instant.
func (n *Net) TotalBytes() float64 {
	n.settleAll()
	var s float64
	for _, v := range n.byTag {
		s += v
	}
	return s
}

// CompletedFlows returns the number of flows that ran to completion.
func (n *Net) CompletedFlows() uint64 { return n.completed }

// ActiveFlows returns the number of flows currently in progress.
func (n *Net) ActiveFlows() int { return len(n.flows) }

// Start activates a flow. Zero-size flows complete immediately (their OnDone
// fires before Start returns). A flow must not be started twice.
func (n *Net) Start(f *Flow) {
	if f.net != nil {
		panic("flow: flow started twice")
	}
	if f.Size < 0 || math.IsNaN(f.Size) || math.IsInf(f.Size, 0) {
		panic(fmt.Sprintf("flow: invalid size %v", f.Size))
	}
	f.net = n
	f.remaining = f.Size
	if f.Size <= epsBytes {
		n.finish(f)
		return
	}
	if len(f.Links) == 0 && f.MaxRate <= 0 {
		// Infinitely fast: complete instantly.
		n.finish(f)
		return
	}
	f.active = true
	f.lastSettle = n.eng.Now()
	f.anchorT = f.lastSettle
	f.anchorRem = f.remaining
	n.lastEvent = f.lastSettle
	f.compT = math.Inf(1)
	f.heapIdx = -1
	f.seq = n.startSeq
	n.startSeq++
	f.index = len(n.flows)
	n.flows = append(n.flows, f)
	f.minCap, f.minCap2, f.minCapLink = math.Inf(1), math.Inf(1), nil
	for _, l := range f.Links {
		if l.Capacity < f.minCap {
			f.minCap2 = f.minCap
			f.minCap, f.minCapLink = l.Capacity, l
		} else if l.Capacity < f.minCap2 {
			f.minCap2 = l.Capacity
		}
	}
	// Add the flow's saturability contributions; a link may flip opaque,
	// which can strip the sole-opaque-link property from flows grouped
	// elsewhere — reclassify them before placing the new flow.
	n.flipped = n.flipped[:0]
	for _, l := range f.Links {
		wasT := l.transparent()
		l.addUB(f)
		if l.transparent() != wasT {
			n.flipped = append(n.flipped, l)
		}
	}
	for _, l := range n.flipped {
		n.reclassifyCrossing(l)
	}
	f.group, f.gIdx = nil, -1
	if L := n.groupLinkFor(f); L != nil {
		for _, l := range f.Links {
			if l != L {
				l.flows = append(l.flows, f)
			}
		}
		g := L.group
		if g == nil {
			g = &rateGroup{link: L}
			L.group = g
		}
		n.insertMember(g, f)
	} else {
		for _, l := range f.Links {
			l.flows = append(l.flows, f)
		}
		n.heapPush(f)
	}
	n.resetComponent()
	if f.group == nil {
		n.seedFlow(f)
	}
	n.seedLinks(f.Links)
	n.expandComponent()
	n.recomputeComponent()
	n.reschedule()
}

// Cancel removes an active flow before completion and returns the bytes that
// were not transferred. OnDone does not fire for canceled flows. Canceling a
// finished flow returns 0.
func (n *Net) Cancel(f *Flow) float64 {
	if !f.active {
		return 0
	}
	n.lastEvent = n.eng.Now()
	n.settle(f, n.lastEvent)
	rem := f.remaining
	// Seed before deactivating: a link the departing flow kept opaque may
	// turn transparent once the flow leaves, but the flows it was
	// constraining still need their rates recomputed (and released).
	n.resetComponent()
	n.seedLinks(f.Links)
	n.deactivate(f)
	f.doneCond.Broadcast(n.eng)
	n.expandComponent()
	n.recomputeComponent()
	n.reschedule()
	return rem
}

// SetCapacity changes a link's capacity mid-run (time-varying fabrics:
// degradation, blackout recovery, tenant rate limits) and incrementally
// reflows everyone affected. The component reachable from the link under its
// PRE-change transparency is collected first — a link that turns transparent
// must still release the flows it was constraining — then the capacity and
// every crossing flow's saturability ceilings are updated, the closure is
// re-expanded under the POST-change transparency (a link that turns opaque
// pulls its flows in), and the component is refilled with the completion
// heap rescheduled. Flows whose allocated rate is unchanged keep their lazy
// accounting untouched, exactly as in Start and Cancel.
func (n *Net) SetCapacity(l *Link, c float64) {
	if c <= 0 || math.IsNaN(c) || math.IsInf(c, 0) {
		panic(fmt.Sprintf("flow: invalid capacity %v for link %s", c, l.Name))
	}
	if c == l.Capacity {
		return
	}
	n.lastEvent = n.eng.Now()
	n.resetComponent()
	// Force-seed the link itself: even a currently transparent link must have
	// its flows re-examined, since the new capacity may make it opaque.
	if l.mark != n.epoch {
		l.mark = n.epoch
		n.compLinks = append(n.compLinks, l)
	}
	n.expandComponent()
	// Snapshot the pre-change transparency of every link whose saturability
	// bound the change can move: the link itself plus every link crossed by
	// one of its crossing flows (loose and grouped alike).
	n.snapEpoch++
	n.snapLinks = n.snapLinks[:0]
	n.snapT = n.snapT[:0]
	n.snapLink(l)
	for i, cnt := 0, l.crossingCount(); i < cnt; i++ {
		for _, lk := range l.crossingAt(i).Links {
			n.snapLink(lk)
		}
	}
	l.Capacity = c
	// Every crossing flow's rate ceiling may have changed; re-derive its two
	// smallest path capacities and move its contribution on every link it
	// crosses (which may flip those links' transparency).
	for i, cnt := 0, l.crossingCount(); i < cnt; i++ {
		f := l.crossingAt(i)
		for _, lk := range f.Links {
			lk.subUB(f)
		}
		f.minCap, f.minCap2, f.minCapLink = math.Inf(1), math.Inf(1), nil
		for _, lk := range f.Links {
			if lk.Capacity < f.minCap {
				f.minCap2 = f.minCap
				f.minCap, f.minCapLink = lk.Capacity, lk
			} else if lk.Capacity < f.minCap2 {
				f.minCap2 = lk.Capacity
			}
		}
		for _, lk := range f.Links {
			lk.addUB(f)
		}
	}
	// Reclassify across transparency flips, then re-expand: links that just
	// turned opaque join the component and pull their flows in, and groups
	// that gained or lost members are refilled.
	for i, lk := range n.snapLinks {
		if lk.transparent() != n.snapT[i] {
			n.reclassifyCrossing(lk)
		}
	}
	for _, f := range n.compFlows {
		n.seedLinks(f.Links)
	}
	for _, g := range n.compGroups {
		if len(g.members) > 0 {
			n.seedLink(g.link)
		}
	}
	n.expandComponent()
	n.recomputeComponent()
	n.reschedule()
}

// seedLink adds one link to the component under collection if it is opaque.
func (n *Net) seedLink(l *Link) {
	if l.mark != n.epoch && !l.transparent() {
		l.mark = n.epoch
		n.compLinks = append(n.compLinks, l)
	}
}

// Wait parks the process until the flow completes or is canceled.
func (f *Flow) Wait(p *sim.Proc) {
	for f.net == nil || f.active {
		f.doneCond.Wait(p)
	}
}

// epsBytes is the completion tolerance: flows within this many bytes of done
// are finished, absorbing float round-off.
const epsBytes = 1e-3

// minStep is the smallest schedulable completion delay. Below it, adding
// the delay to the clock can round to no time advance at all (float64 has
// ~2e-16 relative precision), which would loop the completion event forever;
// flows that close to done are simply finished.
const minStep = 1e-9

// settle integrates elapsed time into the flow's remaining count and its
// per-link and per-tag byte counters, at the flow's current rate. For a
// grouped flow the remaining count is read off the group's shared progress
// accumulator — a pure read, like the loose anchored form.
func (n *Net) settle(f *Flow, now sim.Time) {
	if g := f.group; g != nil {
		if now <= f.lastSettle {
			return
		}
		f.lastSettle = now
		base := f.finishP - g.pAnchor
		if base < 0 {
			base = 0
		}
		rem := base
		if g.rate > 0 && now > g.anchorT {
			rem = base - g.rate*(now-g.anchorT)
			if rem < 0 {
				rem = 0
			}
		}
		d := f.remaining - rem
		if d <= 0 {
			return
		}
		f.remaining = rem
		n.byTag[f.Tag] += d
		for _, l := range f.Links {
			l.bytes += d
		}
		return
	}
	n.settleRate(f, now, f.rate)
}

// settleRate is settle with an explicit rate: during a component recompute
// the flow's new rate is already in place, so elapsed time since the last
// settle is charged at the rate that was in effect before the change. The
// remaining count is recomputed from the rate-change anchor, so the result
// at any instant is independent of how many intermediate settles happened.
func (n *Net) settleRate(f *Flow, now sim.Time, rate float64) {
	if now <= f.lastSettle {
		return
	}
	f.lastSettle = now
	if rate <= 0 {
		return
	}
	rem := f.anchorRem - rate*(now-f.anchorT)
	if rem < 0 {
		rem = 0
	}
	d := f.remaining - rem
	if d <= 0 {
		return
	}
	f.remaining = rem
	n.byTag[f.Tag] += d
	for _, l := range f.Links {
		l.bytes += d
	}
}

// settleAll brings every active flow's accounting up to the last net event,
// in activation-table order for determinism. Queries settle to lastEvent
// rather than the clock: rate allocations only change at net events, and the
// pre-incremental model accumulated bytes exactly there, so this keeps query
// results aligned with the original "accurate after any net activity at the
// current instant" contract.
func (n *Net) settleAll() {
	for _, f := range n.flows {
		n.settle(f, n.lastEvent)
	}
}

// deactivate unlinks a flow from the network, its links, its group, and the
// completion heap. The caller settles the flow first. Removing the flow's
// saturability contributions can flip links transparent, which makes some of
// the remaining flows groupable; those are reclassified here, before the
// caller re-expands the component.
func (n *Net) deactivate(f *Flow) {
	f.active = false
	last := len(n.flows) - 1
	n.flows[f.index] = n.flows[last]
	n.flows[f.index].index = f.index
	n.flows[last] = nil
	n.flows = n.flows[:last]
	g := f.group
	if g != nil && f.gIdx >= 0 {
		n.popMember(g, f)
	}
	n.flipped = n.flipped[:0]
	for _, l := range f.Links {
		if g == nil || l != g.link {
			l.removeFromList(f)
		}
		wasT := l.transparent()
		l.subUB(f)
		if l.ActiveFlows() == 0 {
			l.ubSum = 0 // exact reset: cancels accumulated float drift
		}
		if l.transparent() != wasT {
			n.flipped = append(n.flipped, l)
		}
	}
	f.group = nil
	n.heapRemove(f)
	f.rate = 0
	for _, l := range n.flipped {
		n.reclassifyCrossing(l)
	}
}

// finish marks a flow complete, accounting any remaining round-off sliver,
// and fires callbacks.
func (n *Net) finish(f *Flow) {
	if f.remaining > 0 {
		// Account the final sliver that settle() rounded off.
		n.byTag[f.Tag] += f.remaining
		for _, l := range f.Links {
			l.bytes += f.remaining
		}
		f.remaining = 0
	}
	n.completed++
	f.doneCond.Broadcast(n.eng)
	if f.OnDone != nil {
		f.OnDone()
	}
}

// Component collection: the connected component of links and active flows
// reachable from a seed (a just-started flow, or the link paths of removed
// flows) is gathered into the net's reusable scratch buffers. Epoch stamps
// on links and flows replace a per-call map.

// resetComponent starts a fresh collection epoch.
func (n *Net) resetComponent() {
	n.epoch++
	n.compFlows = n.compFlows[:0]
	n.compLinks = n.compLinks[:0]
	n.compGroups = n.compGroups[:0]
}

// seedFlow adds a flow to the component under collection.
func (n *Net) seedFlow(f *Flow) {
	if f.active && f.mark != n.epoch {
		f.mark = n.epoch
		n.compFlows = append(n.compFlows, f)
	}
}

// seedLinks adds links to the component under collection. Transparent links
// cannot constrain anyone, so they neither join the component nor pull in
// the flows crossing them.
func (n *Net) seedLinks(links []*Link) {
	for _, l := range links {
		if l.mark != n.epoch && !l.transparent() {
			l.mark = n.epoch
			n.compLinks = append(n.compLinks, l)
		}
	}
}

// expandComponent runs the breadth-first closure over the bipartite
// link/flow sharing graph; compLinks doubles as the work queue. Rate groups
// are collected as single units: a member's other links are all transparent,
// so walking into a group's members can never reach new links — the group
// joins compGroups and the members themselves stay out of compFlows.
func (n *Net) expandComponent() {
	for i := 0; i < len(n.compLinks); i++ {
		l := n.compLinks[i]
		if g := l.group; g != nil && len(g.members) > 0 && g.mark != n.epoch {
			g.mark = n.epoch
			n.compGroups = append(n.compGroups, g)
		}
		for _, f := range l.flows {
			if f.mark == n.epoch {
				continue
			}
			if g := f.group; g != nil {
				// Grouped on another link (this one is transparent for it,
				// but may sit on the removal path): pull its group in. The
				// member itself stays unmarked so that if reclassification
				// turns it loose mid-mutation, it can still join compFlows.
				if g.mark != n.epoch {
					g.mark = n.epoch
					n.compGroups = append(n.compGroups, g)
				}
				n.seedLink(g.link)
				continue
			}
			f.mark = n.epoch
			n.compFlows = append(n.compFlows, f)
			for _, lk := range f.Links {
				if lk.mark != n.epoch && !lk.transparent() {
					lk.mark = n.epoch
					n.compLinks = append(n.compLinks, lk)
				}
			}
		}
	}
}

// recomputeComponent performs progressive-filling max-min fair allocation
// over the collected component. Links are processed in first-occurrence
// order and flows in (deterministic) component-discovery order; the freeze
// SET per filling round is order-independent, so iteration order only
// re-associates float accumulation, never changes the allocation. Flows
// whose allocated rate is unchanged by the fill keep their lazy accounting
// state untouched: no settle, no completion-heap update.
func (n *Net) recomputeComponent() {
	if len(n.compFlows) == 0 && len(n.compGroups) == 0 {
		return
	}
	// Reset scratch state, remembering pre-fill rates. Flows that were
	// reclassified into a group after collection are filled as part of that
	// group; emptied groups are dead entries.
	anyCapped := false
	units := 0
	for _, f := range n.compFlows {
		if f.group != nil {
			continue
		}
		f.prevRate = f.rate
		f.frozen = false
		f.rate = 0
		anyCapped = anyCapped || f.MaxRate > 0
		units++
	}
	for _, g := range n.compGroups {
		if len(g.members) == 0 {
			continue
		}
		g.frozen = false
		g.fillRate = 0
		units++
	}
	// The involved links, in deterministic first-occurrence order, are the
	// BFS discovery list; only currently-opaque ones participate in the fill
	// (a transparent link can never bind, and on the removal path it may
	// carry flows of other components, which must not be frozen here).
	n.ordered = n.ordered[:0]
	for _, l := range n.compLinks {
		if !l.transparent() {
			n.ordered = append(n.ordered, l)
			l.frozenRate = 0
			l.unfrozen = len(l.flows)
			if g := l.group; g != nil {
				l.unfrozen += len(g.members)
			}
		}
	}
	remaining := units
	for remaining > 0 {
		// Candidate share: the smallest equal-share across constrained
		// links. Links with no unfrozen flows left are compacted away so
		// later rounds scan only live bottleneck candidates.
		share := math.Inf(1)
		live := n.ordered[:0]
		for _, l := range n.ordered {
			if l.unfrozen == 0 {
				continue
			}
			live = append(live, l)
			s := (l.Capacity - l.frozenRate) / float64(l.unfrozen)
			if s < share {
				share = s
			}
		}
		n.ordered = live
		if math.IsInf(share, 1) {
			// Only cap-limited loose flows remain (no shared links); groups
			// always sit on an opaque link, so none can be left here.
			for _, f := range n.compFlows {
				if f.group == nil && !f.frozen {
					f.freezeAt(f.MaxRate)
					remaining--
				}
			}
			break
		}
		if share < 0 {
			share = 0
		}
		if anyCapped {
			// Flows whose individual cap is below the share freeze at their
			// cap first; this releases capacity for the rest. Groups are
			// uncapped by construction and never participate.
			capped := false
			for _, f := range n.compFlows {
				if f.group != nil || f.frozen || f.MaxRate <= 0 || f.MaxRate > share {
					continue
				}
				f.freezeAt(f.MaxRate)
				remaining--
				capped = true
			}
			if capped {
				continue
			}
		}
		// Freeze flows on the bottleneck link(s) at the share rate. A whole
		// group freezes in O(1): one multiply charges the home link, one
		// decrement retires the unit.
		for _, l := range n.ordered {
			if l.unfrozen == 0 {
				continue
			}
			s := (l.Capacity - l.frozenRate) / float64(l.unfrozen)
			if s > share+1e-12 {
				continue
			}
			// All unfrozen flows on this link freeze at share.
			for _, f := range l.flows {
				if !f.frozen {
					f.freezeAt(share)
					remaining--
				}
			}
			if g := l.group; g != nil && len(g.members) > 0 && !g.frozen {
				g.frozen = true
				g.fillRate = share
				l.frozenRate += share * float64(len(g.members))
				l.unfrozen -= len(g.members)
				remaining--
			}
		}
	}
	// Apply the new allocation: settle elapsed time at the old rate and
	// reproject the completion for every flow whose rate actually changed.
	// Heap repair strategy: one O(n) heapify beats O(k log n) individual
	// fixes once a fill moves most of the heap (a saturated shared link
	// reshares every crossing flow at once); otherwise each flow is fixed
	// IMMEDIATELY after its key changes — sequential fixes are only sound
	// while at most one key is stale at a time. The pop order is a total
	// order on (compT, seq), so either repair yields identical sweeps.
	changed := 0
	for _, f := range n.compFlows {
		if f.group == nil && f.rate != f.prevRate {
			changed++
		}
	}
	for _, g := range n.compGroups {
		if len(g.members) > 0 && g.fillRate != g.rate {
			changed++ // one heap key per group: the representative's
		}
	}
	if changed == 0 {
		return
	}
	rebuild := changed*4 >= len(n.compHeap)
	now := n.eng.Now()
	for _, f := range n.compFlows {
		if f.group != nil || f.rate == f.prevRate {
			continue
		}
		n.settleRate(f, now, f.prevRate)
		f.anchorT = now
		f.anchorRem = f.remaining
		if f.rate > 0 {
			f.compT = now + f.remaining/f.rate
		} else {
			f.compT = math.Inf(1)
		}
		if !rebuild {
			n.heapFix(f)
		}
	}
	for _, g := range n.compGroups {
		if len(g.members) == 0 || g.fillRate == g.rate {
			continue
		}
		// Advance the progress accumulator to now at the old rate, then
		// switch rates: every member's settled state is preserved without
		// touching any member. Only the representative's projection moves.
		g.pAnchor = g.progressAt(now)
		g.anchorT = now
		g.rate = g.fillRate
		if g.pAnchor >= groupRebaseP {
			n.rebaseGroup(g)
		}
		rep := g.members[0]
		rep.compT = g.timeFor(rep.finishP)
		if !rebuild {
			n.heapFix(rep)
		}
	}
	if rebuild {
		for i := len(n.compHeap)/2 - 1; i >= 0; i-- {
			n.heapDown(i)
		}
	}
}

// rebaseGroup shifts a group's progress origin back to zero, subtracting
// pAnchor from every member's finishP. Uniform shifts can collapse
// nearly-equal keys, so the member heap is re-heapified and a representative
// change is reflected in the completion heap.
func (n *Net) rebaseGroup(g *rateGroup) {
	oldRep := g.members[0]
	for _, m := range g.members {
		m.finishP -= g.pAnchor
	}
	g.pAnchor = 0
	for i := len(g.members)/2 - 1; i >= 0; i-- {
		g.gDown(i)
	}
	if rep := g.members[0]; rep != oldRep {
		n.heapRemove(oldRep)
		rep.compT = g.timeFor(rep.finishP)
		n.heapPush(rep)
	}
}

// freezeAt fixes the flow's rate and charges it to each of its links.
func (f *Flow) freezeAt(rate float64) {
	f.frozen = true
	f.rate = rate
	for _, l := range f.Links {
		l.frozenRate += rate
		l.unfrozen--
	}
}

// reschedule (re)arms the sweep timer for the earliest projected completion.
func (n *Net) reschedule() {
	n.sweepTimer.Cancel()
	if len(n.compHeap) == 0 {
		return
	}
	at := n.compHeap[0].compT
	if math.IsInf(at, 1) {
		return // everything stalled (shouldn't happen with positive capacities)
	}
	if floor := n.eng.Now() + minStep; at < floor {
		at = floor
	}
	n.sweepTimer = n.eng.At(at, n.sweepFn)
}

// completionSweep retires every flow that has drained (or is so close that
// its completion delay would vanish under clock round-off), recomputes the
// affected components, and fires completion callbacks.
func (n *Net) completionSweep() {
	now := n.eng.Now()
	n.lastEvent = now
	n.done = n.done[:0]
	for len(n.compHeap) > 0 {
		f := n.compHeap[0]
		due := f.compT <= now+minStep
		if !due {
			// The projection says "not yet": settle and re-check against the
			// byte tolerance, which absorbs float round-off near the end.
			n.settle(f, now)
			due = f.remaining <= epsBytes
		}
		if !due {
			break
		}
		if g := f.group; g != nil {
			// Retiring a representative promotes the group's next member
			// into the heap, so co-due members drain in the same batch.
			// f.group stays set for deactivate's list bookkeeping.
			n.popMember(g, f)
		} else {
			n.heapRemove(f)
		}
		n.done = append(n.done, f)
	}
	if len(n.done) > 0 {
		// Finish in activation (seq) order. The flow table's index order is
		// perturbed by swap-removal of unrelated flows, so it is not stable
		// across Nets holding different flow populations; activation order
		// is, which keeps a component's completion callbacks in the same
		// relative order whether it shares the Net with other components
		// (serial kernel) or owns it alone (sharded kernel).
		slices.SortFunc(n.done, func(a, b *Flow) int { return cmp.Compare(a.seq, b.seq) })
		for _, f := range n.done {
			n.settle(f, now)
		}
		// Seed before deactivating (pre-removal transparency; see Cancel).
		n.resetComponent()
		for _, f := range n.done {
			n.seedLinks(f.Links)
		}
		for _, f := range n.done {
			n.deactivate(f)
		}
		n.expandComponent()
		// Recompute before firing callbacks so callbacks observe a consistent
		// allocation; callbacks may start new flows, which recompute again.
		n.recomputeComponent()
	}
	n.reschedule()
	for _, f := range n.done {
		n.finish(f)
	}
}

// Completion heap: an indexed binary min-heap of active flows keyed by
// (compT, seq), so the next completion is O(1) to find and a rate change
// repositions a flow in O(log n).

func (n *Net) heapLess(i, j int) bool {
	a, b := n.compHeap[i], n.compHeap[j]
	if a.compT != b.compT {
		return a.compT < b.compT
	}
	return a.seq < b.seq
}

func (n *Net) heapSwap(i, j int) {
	h := n.compHeap
	h[i], h[j] = h[j], h[i]
	h[i].heapIdx = i
	h[j].heapIdx = j
}

func (n *Net) heapUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !n.heapLess(i, parent) {
			break
		}
		n.heapSwap(i, parent)
		i = parent
	}
}

func (n *Net) heapDown(i int) {
	s := len(n.compHeap)
	for {
		l := 2*i + 1
		if l >= s {
			return
		}
		least := l
		if r := l + 1; r < s && n.heapLess(r, l) {
			least = r
		}
		if !n.heapLess(least, i) {
			return
		}
		n.heapSwap(i, least)
		i = least
	}
}

func (n *Net) heapPush(f *Flow) {
	f.heapIdx = len(n.compHeap)
	n.compHeap = append(n.compHeap, f)
	n.heapUp(f.heapIdx)
}

func (n *Net) heapFix(f *Flow) {
	n.heapDown(f.heapIdx)
	n.heapUp(f.heapIdx)
}

func (n *Net) heapRemove(f *Flow) {
	i := f.heapIdx
	if i < 0 {
		return
	}
	last := len(n.compHeap) - 1
	if i != last {
		n.heapSwap(i, last)
	}
	n.compHeap[last] = nil
	n.compHeap = n.compHeap[:last]
	if i != last {
		n.heapDown(i)
		n.heapUp(i)
	}
	f.heapIdx = -1
}

// AcquireFlow returns a zeroed Flow from the net's free list, or a new one
// if the list is empty. Pair with ReleaseFlow to run construct-and-forget
// transfers without a per-flow allocation.
func (n *Net) AcquireFlow() *Flow {
	if k := len(n.free); k > 0 {
		f := n.free[k-1]
		n.free[k-1] = nil
		n.free = n.free[:k-1]
		return f
	}
	return &Flow{}
}

// ReleaseFlow returns a finished (or never-started) flow to the net's free
// list for reuse by AcquireFlow. The caller must hold the only remaining
// reference: every Wait has returned and nothing will query the flow again.
// Releasing an active flow panics.
func (n *Net) ReleaseFlow(f *Flow) {
	if f.active {
		panic("flow: ReleaseFlow on an active flow")
	}
	*f = Flow{}
	n.free = append(n.free, f)
}

// Transfer runs a blocking transfer of size bytes across links and returns
// when it completes. The flow object is pooled: the blocking shape guarantees
// no reference outlives the call.
func (n *Net) Transfer(p *sim.Proc, links []*Link, size float64, tag Tag) {
	f := n.AcquireFlow()
	f.Links, f.Size, f.Tag = links, size, tag
	n.Start(f)
	f.Wait(p)
	n.ReleaseFlow(f)
}

// TransferCapped is Transfer with a per-flow rate cap.
func (n *Net) TransferCapped(p *sim.Proc, links []*Link, size float64, maxRate float64, tag Tag) {
	f := n.AcquireFlow()
	f.Links, f.Size, f.MaxRate, f.Tag = links, size, maxRate, tag
	n.Start(f)
	f.Wait(p)
	n.ReleaseFlow(f)
}
