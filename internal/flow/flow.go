// Package flow implements a flow-level network/resource model with max-min
// fair bandwidth sharing.
//
// A Flow is a bulk transfer of a known size that traverses an ordered set of
// capacity Links (e.g. source NIC -> switch fabric -> destination NIC, or a
// single disk link for local I/O). Whenever the set of active flows changes,
// the package recomputes a max-min fair rate allocation by progressive
// filling: repeatedly find the most constrained link, give every unfrozen
// flow crossing it an equal share of that link's residual capacity, and
// freeze those flows. Flows may additionally carry an individual rate cap
// (application pacing, hypervisor migration speed limits), which is treated
// as a private link.
//
// This is the standard fluid approximation used by flow-level datacenter
// simulators: it captures who saturates which resource and when, without
// simulating individual packets.
//
// Allocation is incremental and component-scoped: max-min fairness is
// separable across connected components of the link-sharing graph, so a flow
// change only re-runs progressive filling over the flows and links reachable
// from the changed flow. Links that provably cannot saturate (see
// Link.transparent) do not couple their flows, so a non-blocking switch
// fabric never merges otherwise-disjoint migrations into one component.
// Byte accounting is settled lazily per flow (a flow's remaining count is
// integrated only when its rate changes, it completes, or it is queried),
// and completions are tracked in an indexed min-heap so the next completion
// needs no scan. Determinism is preserved: links are filled in
// first-occurrence (breadth-first discovery) order, completion ties break
// on activation order, and callbacks fire in activation-table order,
// exactly as the former global recompute did.
package flow

import (
	"cmp"
	"fmt"
	"math"
	"slices"

	"github.com/hybridmig/hybridmig/internal/sim"
)

// Tag classifies a flow for traffic accounting; the experiment harness
// attributes bytes to migration phases using these.
type Tag uint8

// Traffic tags. TagOther is the zero value.
const (
	TagOther       Tag = iota
	TagMemory          // hypervisor memory pre-copy traffic
	TagStoragePush     // migration manager active push (source -> destination)
	TagStoragePull     // migration manager pull/prefetch (destination <- source)
	TagBlockMig        // hypervisor incremental block migration (precopy baseline)
	TagMirror          // synchronous write mirroring traffic
	TagRepo            // repository (base image) reads
	TagPFS             // parallel file system I/O
	TagApp             // application communication (e.g. CM1 halo exchange)
	TagControl         // small control messages
	TagBackground      // injected cross-tenant background traffic
	numTags
)

// NumTags is the number of defined tags; Tag(0) through Tag(NumTags-1) are
// all valid, so reporters can iterate by index without allocating.
const NumTags = int(numTags)

var tagNames = [numTags]string{
	"other", "memory", "push", "pull", "blockmig", "mirror", "repo", "pfs", "app", "control",
	"background",
}

func (t Tag) String() string {
	if int(t) < len(tagNames) {
		return tagNames[t]
	}
	return fmt.Sprintf("tag(%d)", uint8(t))
}

// allTags is the shared backing array for Tags.
var allTags = func() [numTags]Tag {
	var a [numTags]Tag
	for i := range a {
		a[i] = Tag(i)
	}
	return a
}()

// Tags returns all defined tags in order, for iteration by reporters. The
// returned slice is shared and immutable: callers must not modify it.
func Tags() []Tag { return allTags[:] }

// Link is a capacity-constrained resource (a NIC direction, a switch fabric,
// a disk). Bytes flowing through it are accumulated for utilization reports.
type Link struct {
	Name string
	// Capacity is the link rate in bytes per second. It must not be written
	// directly once flows are active; use Net.SetCapacity, which reflows the
	// affected component and keeps the saturability bounds consistent.
	Capacity float64

	flows []*Flow // active flows crossing this link
	bytes float64 // total bytes carried (settled lazily; see Bytes)

	// Saturability bound: ubSum is the sum, over crossing flows, of each
	// flow's provable rate ceiling from its other constraints (cap or other
	// links); ubInf counts flows with no such ceiling. While ubSum stays
	// below capacity the link can never be a bottleneck ("transparent") and
	// does not glue its flows into one recompute component.
	ubSum float64
	ubInf int

	// scratch for rate computation
	frozenRate float64
	unfrozen   int
	mark       uint64 // epoch stamp for component collection
}

// ubMarginFactor keeps a strict margin below capacity in the transparency
// test, so float drift in the incrementally maintained ubSum can never
// declare a genuinely saturable link transparent.
const ubMarginFactor = 1 - 1e-9

// transparent reports whether the link provably cannot be a bottleneck:
// even if every crossing flow ran at its ceiling, the link would not
// saturate. Progressive filling can then never pick it as the arg-min, so
// it neither constrains rates nor couples otherwise-disjoint flows. This is
// what makes a non-blocking switch fabric free: flows crossing it interact
// only through their NICs and disks.
func (l *Link) transparent() bool {
	return l.ubInf == 0 && l.ubSum <= l.Capacity*ubMarginFactor
}

// NewLink returns a link with the given name and capacity in bytes/second.
func NewLink(name string, capacity float64) *Link {
	if capacity <= 0 {
		panic("flow: link capacity must be positive")
	}
	return &Link{Name: name, Capacity: capacity}
}

// Bytes returns the total number of bytes that have crossed the link.
func (l *Link) Bytes() float64 {
	if len(l.flows) > 0 {
		n := l.flows[0].net
		for _, f := range l.flows {
			n.settle(f, n.lastEvent)
		}
	}
	return l.bytes
}

// ActiveFlows returns the number of flows currently crossing the link.
func (l *Link) ActiveFlows() int { return len(l.flows) }

func (l *Link) addFlow(f *Flow) {
	l.flows = append(l.flows, f)
	if u := f.ubFor(l); math.IsInf(u, 1) {
		l.ubInf++
	} else {
		l.ubSum += u
	}
}

func (l *Link) removeFlow(f *Flow) {
	for i, g := range l.flows {
		if g == f {
			last := len(l.flows) - 1
			l.flows[i] = l.flows[last]
			l.flows[last] = nil
			l.flows = l.flows[:last]
			if u := f.ubFor(l); math.IsInf(u, 1) {
				l.ubInf--
			} else {
				l.ubSum -= u
			}
			if last == 0 {
				l.ubSum = 0 // exact reset: cancels accumulated float drift
			}
			return
		}
	}
}

// Flow is a bulk transfer in progress.
type Flow struct {
	Links   []*Link // resources traversed; may be empty for an infinitely fast local transfer
	Size    float64 // total bytes
	MaxRate float64 // per-flow cap in bytes/s; 0 means uncapped
	Tag     Tag
	OnDone  func() // optional completion callback, runs in engine context

	remaining float64
	rate      float64
	frozen    bool // scratch for progressive filling
	active    bool
	doneCond  sim.Cond
	net       *Net
	index     int // position in net.flows

	// incremental-allocation state. Byte integration is anchored at the
	// flow's last rate change: remaining at time t is always computed as
	// anchorRem - rate*(t - anchorT), never by accumulating rate*dt slices.
	// Settles triggered between rate changes (queries, or another
	// component's completion sweep peeking at the heap top) are therefore
	// pure reads — they cannot perturb the value the flow will have at its
	// next rate change, which keeps a component's trajectory bit-identical
	// no matter what unrelated flows share the Net.
	lastSettle sim.Time // when remaining/bytes were last integrated
	anchorT    sim.Time // time of the last rate change
	anchorRem  float64  // remaining bytes at the last rate change
	compT      sim.Time // projected completion time; +Inf while stalled
	heapIdx    int      // position in net.compHeap, -1 while inactive
	seq        uint64   // activation order, tie-break in the completion heap
	mark       uint64   // epoch stamp for component collection
	prevRate   float64  // rate before the current component recompute

	// Two smallest link capacities on the path (for the saturability bound):
	// the flow's rate ceiling as seen from link l is the smallest capacity
	// among its OTHER links — minCap, or minCap2 when l is the unique
	// smallest — further clamped by MaxRate.
	minCap, minCap2 float64
	minCapLink      *Link
}

// ubFor returns the flow's provable rate ceiling as seen from link l: no
// allocation can ever run the flow faster than its cap or its narrowest
// other link.
func (f *Flow) ubFor(l *Link) float64 {
	c := f.minCap
	if l == f.minCapLink {
		c = f.minCap2
	}
	if f.MaxRate > 0 && f.MaxRate < c {
		c = f.MaxRate
	}
	return c
}

// Remaining returns the bytes left to transfer (settled lazily; accurate
// after any net activity at the current instant).
func (f *Flow) Remaining() float64 {
	if f.active {
		f.net.settle(f, f.net.lastEvent)
	}
	return f.remaining
}

// Rate returns the current allocated rate in bytes/s.
func (f *Flow) Rate() float64 { return f.rate }

// Done reports whether the flow has completed or been canceled.
func (f *Flow) Done() bool { return !f.active && f.net != nil }

// Net manages the set of active flows and their fair-share rates.
type Net struct {
	eng   *sim.Engine
	flows []*Flow

	byTag     [numTags]float64
	completed uint64 // count of completed flows
	startSeq  uint64
	lastEvent sim.Time // time of the last flow start/cancel/completion

	// compHeap is an indexed min-heap of active flows ordered by projected
	// completion (compT, seq); its top is the next completion sweep.
	compHeap   []*Flow
	sweepTimer sim.Timer
	sweepFn    func() // cached closure so rescheduling never allocates

	// reusable scratch for component collection and the sweep batch
	epoch     uint64
	compFlows []*Flow
	compLinks []*Link
	ordered   []*Link
	done      []*Flow
}

// NewNet returns a flow network bound to the engine.
func NewNet(eng *sim.Engine) *Net {
	n := &Net{eng: eng}
	n.sweepFn = n.completionSweep
	return n
}

// Engine returns the simulation engine.
func (n *Net) Engine() *sim.Engine { return n.eng }

// BytesByTag returns the total bytes transferred for the tag across all
// links (each flow's bytes are counted once, regardless of path length).
// Counters are accurate as of the last net activity at the current instant.
func (n *Net) BytesByTag(t Tag) float64 {
	n.settleAll()
	return n.byTag[t]
}

// TotalBytes returns bytes transferred across all tags, accurate as of the
// last net activity at the current instant.
func (n *Net) TotalBytes() float64 {
	n.settleAll()
	var s float64
	for _, v := range n.byTag {
		s += v
	}
	return s
}

// CompletedFlows returns the number of flows that ran to completion.
func (n *Net) CompletedFlows() uint64 { return n.completed }

// ActiveFlows returns the number of flows currently in progress.
func (n *Net) ActiveFlows() int { return len(n.flows) }

// Start activates a flow. Zero-size flows complete immediately (their OnDone
// fires before Start returns). A flow must not be started twice.
func (n *Net) Start(f *Flow) {
	if f.net != nil {
		panic("flow: flow started twice")
	}
	if f.Size < 0 || math.IsNaN(f.Size) || math.IsInf(f.Size, 0) {
		panic(fmt.Sprintf("flow: invalid size %v", f.Size))
	}
	f.net = n
	f.remaining = f.Size
	if f.Size <= epsBytes {
		n.finish(f)
		return
	}
	if len(f.Links) == 0 && f.MaxRate <= 0 {
		// Infinitely fast: complete instantly.
		n.finish(f)
		return
	}
	f.active = true
	f.lastSettle = n.eng.Now()
	f.anchorT = f.lastSettle
	f.anchorRem = f.remaining
	n.lastEvent = f.lastSettle
	f.compT = math.Inf(1)
	f.seq = n.startSeq
	n.startSeq++
	f.index = len(n.flows)
	n.flows = append(n.flows, f)
	f.minCap, f.minCap2, f.minCapLink = math.Inf(1), math.Inf(1), nil
	for _, l := range f.Links {
		if l.Capacity < f.minCap {
			f.minCap2 = f.minCap
			f.minCap, f.minCapLink = l.Capacity, l
		} else if l.Capacity < f.minCap2 {
			f.minCap2 = l.Capacity
		}
	}
	for _, l := range f.Links {
		l.addFlow(f)
	}
	n.heapPush(f)
	n.resetComponent()
	n.seedFlow(f)
	n.seedLinks(f.Links)
	n.expandComponent()
	n.recomputeComponent()
	n.reschedule()
}

// Cancel removes an active flow before completion and returns the bytes that
// were not transferred. OnDone does not fire for canceled flows. Canceling a
// finished flow returns 0.
func (n *Net) Cancel(f *Flow) float64 {
	if !f.active {
		return 0
	}
	n.lastEvent = n.eng.Now()
	n.settle(f, n.lastEvent)
	rem := f.remaining
	// Seed before deactivating: a link the departing flow kept opaque may
	// turn transparent once the flow leaves, but the flows it was
	// constraining still need their rates recomputed (and released).
	n.resetComponent()
	n.seedLinks(f.Links)
	n.deactivate(f)
	f.doneCond.Broadcast(n.eng)
	n.expandComponent()
	n.recomputeComponent()
	n.reschedule()
	return rem
}

// SetCapacity changes a link's capacity mid-run (time-varying fabrics:
// degradation, blackout recovery, tenant rate limits) and incrementally
// reflows everyone affected. The component reachable from the link under its
// PRE-change transparency is collected first — a link that turns transparent
// must still release the flows it was constraining — then the capacity and
// every crossing flow's saturability ceilings are updated, the closure is
// re-expanded under the POST-change transparency (a link that turns opaque
// pulls its flows in), and the component is refilled with the completion
// heap rescheduled. Flows whose allocated rate is unchanged keep their lazy
// accounting untouched, exactly as in Start and Cancel.
func (n *Net) SetCapacity(l *Link, c float64) {
	if c <= 0 || math.IsNaN(c) || math.IsInf(c, 0) {
		panic(fmt.Sprintf("flow: invalid capacity %v for link %s", c, l.Name))
	}
	if c == l.Capacity {
		return
	}
	n.lastEvent = n.eng.Now()
	n.resetComponent()
	// Force-seed the link itself: even a currently transparent link must have
	// its flows re-examined, since the new capacity may make it opaque.
	if l.mark != n.epoch {
		l.mark = n.epoch
		n.compLinks = append(n.compLinks, l)
	}
	n.expandComponent()
	l.Capacity = c
	// Every crossing flow's rate ceiling may have changed; re-derive its two
	// smallest path capacities and move its contribution on every link it
	// crosses (which may flip those links' transparency).
	for _, f := range l.flows {
		for _, lk := range f.Links {
			if u := f.ubFor(lk); math.IsInf(u, 1) {
				lk.ubInf--
			} else {
				lk.ubSum -= u
			}
		}
		f.minCap, f.minCap2, f.minCapLink = math.Inf(1), math.Inf(1), nil
		for _, lk := range f.Links {
			if lk.Capacity < f.minCap {
				f.minCap2 = f.minCap
				f.minCap, f.minCapLink = lk.Capacity, lk
			} else if lk.Capacity < f.minCap2 {
				f.minCap2 = lk.Capacity
			}
		}
		for _, lk := range f.Links {
			if u := f.ubFor(lk); math.IsInf(u, 1) {
				lk.ubInf++
			} else {
				lk.ubSum += u
			}
		}
	}
	// Post-change closure: links that just turned opaque join the component
	// and pull their flows in.
	for _, f := range n.compFlows {
		n.seedLinks(f.Links)
	}
	n.expandComponent()
	n.recomputeComponent()
	n.reschedule()
}

// Wait parks the process until the flow completes or is canceled.
func (f *Flow) Wait(p *sim.Proc) {
	for f.net == nil || f.active {
		f.doneCond.Wait(p)
	}
}

// epsBytes is the completion tolerance: flows within this many bytes of done
// are finished, absorbing float round-off.
const epsBytes = 1e-3

// minStep is the smallest schedulable completion delay. Below it, adding
// the delay to the clock can round to no time advance at all (float64 has
// ~2e-16 relative precision), which would loop the completion event forever;
// flows that close to done are simply finished.
const minStep = 1e-9

// settle integrates elapsed time into the flow's remaining count and its
// per-link and per-tag byte counters, at the flow's current rate.
func (n *Net) settle(f *Flow, now sim.Time) {
	n.settleRate(f, now, f.rate)
}

// settleRate is settle with an explicit rate: during a component recompute
// the flow's new rate is already in place, so elapsed time since the last
// settle is charged at the rate that was in effect before the change. The
// remaining count is recomputed from the rate-change anchor, so the result
// at any instant is independent of how many intermediate settles happened.
func (n *Net) settleRate(f *Flow, now sim.Time, rate float64) {
	if now <= f.lastSettle {
		return
	}
	f.lastSettle = now
	if rate <= 0 {
		return
	}
	rem := f.anchorRem - rate*(now-f.anchorT)
	if rem < 0 {
		rem = 0
	}
	d := f.remaining - rem
	if d <= 0 {
		return
	}
	f.remaining = rem
	n.byTag[f.Tag] += d
	for _, l := range f.Links {
		l.bytes += d
	}
}

// settleAll brings every active flow's accounting up to the last net event,
// in activation-table order for determinism. Queries settle to lastEvent
// rather than the clock: rate allocations only change at net events, and the
// pre-incremental model accumulated bytes exactly there, so this keeps query
// results aligned with the original "accurate after any net activity at the
// current instant" contract.
func (n *Net) settleAll() {
	for _, f := range n.flows {
		n.settle(f, n.lastEvent)
	}
}

// deactivate unlinks a flow from the network, its links, and the
// completion heap. The caller settles the flow first.
func (n *Net) deactivate(f *Flow) {
	f.active = false
	last := len(n.flows) - 1
	n.flows[f.index] = n.flows[last]
	n.flows[f.index].index = f.index
	n.flows[last] = nil
	n.flows = n.flows[:last]
	for _, l := range f.Links {
		l.removeFlow(f)
	}
	n.heapRemove(f)
	f.rate = 0
}

// finish marks a flow complete, accounting any remaining round-off sliver,
// and fires callbacks.
func (n *Net) finish(f *Flow) {
	if f.remaining > 0 {
		// Account the final sliver that settle() rounded off.
		n.byTag[f.Tag] += f.remaining
		for _, l := range f.Links {
			l.bytes += f.remaining
		}
		f.remaining = 0
	}
	n.completed++
	f.doneCond.Broadcast(n.eng)
	if f.OnDone != nil {
		f.OnDone()
	}
}

// Component collection: the connected component of links and active flows
// reachable from a seed (a just-started flow, or the link paths of removed
// flows) is gathered into the net's reusable scratch buffers. Epoch stamps
// on links and flows replace a per-call map.

// resetComponent starts a fresh collection epoch.
func (n *Net) resetComponent() {
	n.epoch++
	n.compFlows = n.compFlows[:0]
	n.compLinks = n.compLinks[:0]
}

// seedFlow adds a flow to the component under collection.
func (n *Net) seedFlow(f *Flow) {
	if f.active && f.mark != n.epoch {
		f.mark = n.epoch
		n.compFlows = append(n.compFlows, f)
	}
}

// seedLinks adds links to the component under collection. Transparent links
// cannot constrain anyone, so they neither join the component nor pull in
// the flows crossing them.
func (n *Net) seedLinks(links []*Link) {
	for _, l := range links {
		if l.mark != n.epoch && !l.transparent() {
			l.mark = n.epoch
			n.compLinks = append(n.compLinks, l)
		}
	}
}

// expandComponent runs the breadth-first closure over the bipartite
// link/flow sharing graph; compLinks doubles as the work queue.
func (n *Net) expandComponent() {
	for i := 0; i < len(n.compLinks); i++ {
		for _, g := range n.compLinks[i].flows {
			if g.mark == n.epoch {
				continue
			}
			g.mark = n.epoch
			n.compFlows = append(n.compFlows, g)
			for _, l := range g.Links {
				if l.mark != n.epoch && !l.transparent() {
					l.mark = n.epoch
					n.compLinks = append(n.compLinks, l)
				}
			}
		}
	}
}

// recomputeComponent performs progressive-filling max-min fair allocation
// over the collected component. Links are processed in first-occurrence
// order and flows in (deterministic) component-discovery order; the freeze
// SET per filling round is order-independent, so iteration order only
// re-associates float accumulation, never changes the allocation. Flows
// whose allocated rate is unchanged by the fill keep their lazy accounting
// state untouched: no settle, no completion-heap update.
func (n *Net) recomputeComponent() {
	if len(n.compFlows) == 0 {
		return
	}
	// Reset scratch state, remembering pre-fill rates.
	anyCapped := false
	for _, f := range n.compFlows {
		f.prevRate = f.rate
		f.frozen = false
		f.rate = 0
		anyCapped = anyCapped || f.MaxRate > 0
	}
	// The involved links, in deterministic first-occurrence order, are the
	// BFS discovery list; only currently-opaque ones participate in the fill
	// (a transparent link can never bind, and on the removal path it may
	// carry flows of other components, which must not be frozen here).
	n.ordered = n.ordered[:0]
	for _, l := range n.compLinks {
		if !l.transparent() {
			n.ordered = append(n.ordered, l)
			l.frozenRate = 0
			l.unfrozen = len(l.flows)
		}
	}
	remaining := len(n.compFlows)
	for remaining > 0 {
		// Candidate share: the smallest equal-share across constrained
		// links. Links with no unfrozen flows left are compacted away so
		// later rounds scan only live bottleneck candidates.
		share := math.Inf(1)
		live := n.ordered[:0]
		for _, l := range n.ordered {
			if l.unfrozen == 0 {
				continue
			}
			live = append(live, l)
			s := (l.Capacity - l.frozenRate) / float64(l.unfrozen)
			if s < share {
				share = s
			}
		}
		n.ordered = live
		if math.IsInf(share, 1) {
			// Only cap-limited flows remain (no shared links).
			for _, f := range n.compFlows {
				if !f.frozen {
					f.freezeAt(f.MaxRate)
					remaining--
				}
			}
			break
		}
		if share < 0 {
			share = 0
		}
		if anyCapped {
			// Flows whose individual cap is below the share freeze at their
			// cap first; this releases capacity for the rest.
			capped := false
			for _, f := range n.compFlows {
				if f.frozen || f.MaxRate <= 0 || f.MaxRate > share {
					continue
				}
				f.freezeAt(f.MaxRate)
				remaining--
				capped = true
			}
			if capped {
				continue
			}
		}
		// Freeze flows on the bottleneck link(s) at the share rate.
		for _, l := range n.ordered {
			if l.unfrozen == 0 {
				continue
			}
			s := (l.Capacity - l.frozenRate) / float64(l.unfrozen)
			if s > share+1e-12 {
				continue
			}
			// All unfrozen flows on this link freeze at share.
			for _, f := range l.flows {
				if !f.frozen {
					f.freezeAt(share)
					remaining--
				}
			}
		}
	}
	// Apply the new allocation: settle elapsed time at the old rate and
	// reproject the completion for every flow whose rate actually changed.
	// Heap repair strategy: one O(n) heapify beats O(k log n) individual
	// fixes once a fill moves most of the heap (a saturated shared link
	// reshares every crossing flow at once); otherwise each flow is fixed
	// IMMEDIATELY after its key changes — sequential fixes are only sound
	// while at most one key is stale at a time. The pop order is a total
	// order on (compT, seq), so either repair yields identical sweeps.
	changed := 0
	for _, f := range n.compFlows {
		if f.rate != f.prevRate {
			changed++
		}
	}
	if changed == 0 {
		return
	}
	rebuild := changed*4 >= len(n.compHeap)
	now := n.eng.Now()
	for _, f := range n.compFlows {
		if f.rate == f.prevRate {
			continue
		}
		n.settleRate(f, now, f.prevRate)
		f.anchorT = now
		f.anchorRem = f.remaining
		if f.rate > 0 {
			f.compT = now + f.remaining/f.rate
		} else {
			f.compT = math.Inf(1)
		}
		if !rebuild {
			n.heapFix(f)
		}
	}
	if rebuild {
		for i := len(n.compHeap)/2 - 1; i >= 0; i-- {
			n.heapDown(i)
		}
	}
}

// freezeAt fixes the flow's rate and charges it to each of its links.
func (f *Flow) freezeAt(rate float64) {
	f.frozen = true
	f.rate = rate
	for _, l := range f.Links {
		l.frozenRate += rate
		l.unfrozen--
	}
}

// reschedule (re)arms the sweep timer for the earliest projected completion.
func (n *Net) reschedule() {
	n.sweepTimer.Cancel()
	if len(n.compHeap) == 0 {
		return
	}
	at := n.compHeap[0].compT
	if math.IsInf(at, 1) {
		return // everything stalled (shouldn't happen with positive capacities)
	}
	if floor := n.eng.Now() + minStep; at < floor {
		at = floor
	}
	n.sweepTimer = n.eng.At(at, n.sweepFn)
}

// completionSweep retires every flow that has drained (or is so close that
// its completion delay would vanish under clock round-off), recomputes the
// affected components, and fires completion callbacks.
func (n *Net) completionSweep() {
	now := n.eng.Now()
	n.lastEvent = now
	n.done = n.done[:0]
	for len(n.compHeap) > 0 {
		f := n.compHeap[0]
		if f.compT <= now+minStep {
			n.heapRemove(f)
			n.done = append(n.done, f)
			continue
		}
		// The projection says "not yet": settle and re-check against the
		// byte tolerance, which absorbs float round-off near the end.
		n.settle(f, now)
		if f.remaining <= epsBytes {
			n.heapRemove(f)
			n.done = append(n.done, f)
			continue
		}
		break
	}
	if len(n.done) > 0 {
		// Finish in activation (seq) order. The flow table's index order is
		// perturbed by swap-removal of unrelated flows, so it is not stable
		// across Nets holding different flow populations; activation order
		// is, which keeps a component's completion callbacks in the same
		// relative order whether it shares the Net with other components
		// (serial kernel) or owns it alone (sharded kernel).
		slices.SortFunc(n.done, func(a, b *Flow) int { return cmp.Compare(a.seq, b.seq) })
		for _, f := range n.done {
			n.settle(f, now)
		}
		// Seed before deactivating (pre-removal transparency; see Cancel).
		n.resetComponent()
		for _, f := range n.done {
			n.seedLinks(f.Links)
		}
		for _, f := range n.done {
			n.deactivate(f)
		}
		n.expandComponent()
		// Recompute before firing callbacks so callbacks observe a consistent
		// allocation; callbacks may start new flows, which recompute again.
		n.recomputeComponent()
	}
	n.reschedule()
	for _, f := range n.done {
		n.finish(f)
	}
}

// Completion heap: an indexed binary min-heap of active flows keyed by
// (compT, seq), so the next completion is O(1) to find and a rate change
// repositions a flow in O(log n).

func (n *Net) heapLess(i, j int) bool {
	a, b := n.compHeap[i], n.compHeap[j]
	if a.compT != b.compT {
		return a.compT < b.compT
	}
	return a.seq < b.seq
}

func (n *Net) heapSwap(i, j int) {
	h := n.compHeap
	h[i], h[j] = h[j], h[i]
	h[i].heapIdx = i
	h[j].heapIdx = j
}

func (n *Net) heapUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !n.heapLess(i, parent) {
			break
		}
		n.heapSwap(i, parent)
		i = parent
	}
}

func (n *Net) heapDown(i int) {
	s := len(n.compHeap)
	for {
		l := 2*i + 1
		if l >= s {
			return
		}
		least := l
		if r := l + 1; r < s && n.heapLess(r, l) {
			least = r
		}
		if !n.heapLess(least, i) {
			return
		}
		n.heapSwap(i, least)
		i = least
	}
}

func (n *Net) heapPush(f *Flow) {
	f.heapIdx = len(n.compHeap)
	n.compHeap = append(n.compHeap, f)
	n.heapUp(f.heapIdx)
}

func (n *Net) heapFix(f *Flow) {
	n.heapDown(f.heapIdx)
	n.heapUp(f.heapIdx)
}

func (n *Net) heapRemove(f *Flow) {
	i := f.heapIdx
	if i < 0 {
		return
	}
	last := len(n.compHeap) - 1
	if i != last {
		n.heapSwap(i, last)
	}
	n.compHeap[last] = nil
	n.compHeap = n.compHeap[:last]
	if i != last {
		n.heapDown(i)
		n.heapUp(i)
	}
	f.heapIdx = -1
}

// Transfer runs a blocking transfer of size bytes across links and returns
// when it completes.
func (n *Net) Transfer(p *sim.Proc, links []*Link, size float64, tag Tag) {
	f := &Flow{Links: links, Size: size, Tag: tag}
	n.Start(f)
	f.Wait(p)
}

// TransferCapped is Transfer with a per-flow rate cap.
func (n *Net) TransferCapped(p *sim.Proc, links []*Link, size float64, maxRate float64, tag Tag) {
	f := &Flow{Links: links, Size: size, MaxRate: maxRate, Tag: tag}
	n.Start(f)
	f.Wait(p)
}
