// Package flow implements a flow-level network/resource model with max-min
// fair bandwidth sharing.
//
// A Flow is a bulk transfer of a known size that traverses an ordered set of
// capacity Links (e.g. source NIC -> switch fabric -> destination NIC, or a
// single disk link for local I/O). Whenever the set of active flows changes,
// the package recomputes a max-min fair rate allocation by progressive
// filling: repeatedly find the most constrained link, give every unfrozen
// flow crossing it an equal share of that link's residual capacity, and
// freeze those flows. Flows may additionally carry an individual rate cap
// (application pacing, hypervisor migration speed limits), which is treated
// as a private link.
//
// This is the standard fluid approximation used by flow-level datacenter
// simulators: it captures who saturates which resource and when, without
// simulating individual packets.
package flow

import (
	"fmt"
	"math"

	"github.com/hybridmig/hybridmig/internal/sim"
)

// Tag classifies a flow for traffic accounting; the experiment harness
// attributes bytes to migration phases using these.
type Tag uint8

// Traffic tags. TagOther is the zero value.
const (
	TagOther       Tag = iota
	TagMemory          // hypervisor memory pre-copy traffic
	TagStoragePush     // migration manager active push (source -> destination)
	TagStoragePull     // migration manager pull/prefetch (destination <- source)
	TagBlockMig        // hypervisor incremental block migration (precopy baseline)
	TagMirror          // synchronous write mirroring traffic
	TagRepo            // repository (base image) reads
	TagPFS             // parallel file system I/O
	TagApp             // application communication (e.g. CM1 halo exchange)
	TagControl         // small control messages
	numTags
)

var tagNames = [numTags]string{
	"other", "memory", "push", "pull", "blockmig", "mirror", "repo", "pfs", "app", "control",
}

func (t Tag) String() string {
	if int(t) < len(tagNames) {
		return tagNames[t]
	}
	return fmt.Sprintf("tag(%d)", uint8(t))
}

// Tags returns all defined tags in order, for iteration by reporters.
func Tags() []Tag {
	out := make([]Tag, numTags)
	for i := range out {
		out[i] = Tag(i)
	}
	return out
}

// Link is a capacity-constrained resource (a NIC direction, a switch fabric,
// a disk). Bytes flowing through it are accumulated for utilization reports.
type Link struct {
	Name     string
	Capacity float64 // bytes per second

	flows []*Flow // active flows crossing this link
	bytes float64 // total bytes carried

	// scratch for rate computation
	frozenRate float64
	unfrozen   int
}

// NewLink returns a link with the given name and capacity in bytes/second.
func NewLink(name string, capacity float64) *Link {
	if capacity <= 0 {
		panic("flow: link capacity must be positive")
	}
	return &Link{Name: name, Capacity: capacity}
}

// Bytes returns the total number of bytes that have crossed the link.
func (l *Link) Bytes() float64 { return l.bytes }

// ActiveFlows returns the number of flows currently crossing the link.
func (l *Link) ActiveFlows() int { return len(l.flows) }

func (l *Link) addFlow(f *Flow) { l.flows = append(l.flows, f) }
func (l *Link) removeFlow(f *Flow) {
	for i, g := range l.flows {
		if g == f {
			last := len(l.flows) - 1
			l.flows[i] = l.flows[last]
			l.flows[last] = nil
			l.flows = l.flows[:last]
			return
		}
	}
}

// Flow is a bulk transfer in progress.
type Flow struct {
	Links   []*Link // resources traversed; may be empty for an infinitely fast local transfer
	Size    float64 // total bytes
	MaxRate float64 // per-flow cap in bytes/s; 0 means uncapped
	Tag     Tag
	OnDone  func() // optional completion callback, runs in engine context

	remaining float64
	rate      float64
	frozen    bool // scratch for progressive filling
	active    bool
	doneCond  sim.Cond
	net       *Net
	index     int // position in net.flows
}

// Remaining returns the bytes left to transfer (advanced lazily; accurate
// after any net activity at the current instant).
func (f *Flow) Remaining() float64 { return f.remaining }

// Rate returns the current allocated rate in bytes/s.
func (f *Flow) Rate() float64 { return f.rate }

// Done reports whether the flow has completed or been canceled.
func (f *Flow) Done() bool { return !f.active && f.net != nil }

// Net manages the set of active flows and their fair-share rates.
type Net struct {
	eng   *sim.Engine
	flows []*Flow

	lastAdvance sim.Time
	gen         uint64 // completion event generation; stale events no-op
	byTag       [numTags]float64
	completed   uint64 // count of completed flows
}

// NewNet returns a flow network bound to the engine.
func NewNet(eng *sim.Engine) *Net {
	return &Net{eng: eng}
}

// Engine returns the simulation engine.
func (n *Net) Engine() *sim.Engine { return n.eng }

// BytesByTag returns the total bytes transferred for the tag across all
// links (each flow's bytes are counted once, regardless of path length).
func (n *Net) BytesByTag(t Tag) float64 { return n.byTag[t] }

// TotalBytes returns bytes transferred across all tags.
func (n *Net) TotalBytes() float64 {
	var s float64
	for _, v := range n.byTag {
		s += v
	}
	return s
}

// CompletedFlows returns the number of flows that ran to completion.
func (n *Net) CompletedFlows() uint64 { return n.completed }

// ActiveFlows returns the number of flows currently in progress.
func (n *Net) ActiveFlows() int { return len(n.flows) }

// Start activates a flow. Zero-size flows complete immediately (their OnDone
// fires before Start returns). A flow must not be started twice.
func (n *Net) Start(f *Flow) {
	if f.net != nil {
		panic("flow: flow started twice")
	}
	if f.Size < 0 || math.IsNaN(f.Size) || math.IsInf(f.Size, 0) {
		panic(fmt.Sprintf("flow: invalid size %v", f.Size))
	}
	f.net = n
	f.remaining = f.Size
	if f.Size <= epsBytes {
		n.finish(f)
		return
	}
	if len(f.Links) == 0 && f.MaxRate <= 0 {
		// Infinitely fast: complete instantly.
		n.finish(f)
		return
	}
	n.advance()
	f.active = true
	f.index = len(n.flows)
	n.flows = append(n.flows, f)
	for _, l := range f.Links {
		l.addFlow(f)
	}
	n.recompute()
	n.schedule()
}

// Cancel removes an active flow before completion and returns the bytes that
// were not transferred. OnDone does not fire for canceled flows. Canceling a
// finished flow returns 0.
func (n *Net) Cancel(f *Flow) float64 {
	if !f.active {
		return 0
	}
	n.advance()
	rem := f.remaining
	n.deactivate(f)
	f.doneCond.Broadcast(n.eng)
	n.recompute()
	n.schedule()
	return rem
}

// Wait parks the process until the flow completes or is canceled.
func (f *Flow) Wait(p *sim.Proc) {
	for f.net == nil || f.active {
		f.doneCond.Wait(p)
	}
}

// epsBytes is the completion tolerance: flows within this many bytes of done
// are finished, absorbing float round-off.
const epsBytes = 1e-3

// minStep is the smallest schedulable completion delay. Below it, adding
// the delay to the clock can round to no time advance at all (float64 has
// ~2e-16 relative precision), which would loop the completion event forever;
// flows that close to done are simply finished.
const minStep = 1e-9

// advance applies elapsed time to every active flow's remaining count and
// accumulates per-link and per-tag byte counters.
func (n *Net) advance() {
	now := n.eng.Now()
	dt := now - n.lastAdvance
	n.lastAdvance = now
	if dt <= 0 {
		return
	}
	for _, f := range n.flows {
		if f.rate <= 0 {
			continue
		}
		d := f.rate * dt
		if d > f.remaining {
			d = f.remaining
		}
		f.remaining -= d
		n.byTag[f.Tag] += d
		for _, l := range f.Links {
			l.bytes += d
		}
	}
}

// deactivate unlinks a flow from the network and its links.
func (n *Net) deactivate(f *Flow) {
	f.active = false
	last := len(n.flows) - 1
	n.flows[f.index] = n.flows[last]
	n.flows[f.index].index = f.index
	n.flows[last] = nil
	n.flows = n.flows[:last]
	for _, l := range f.Links {
		l.removeFlow(f)
	}
	f.rate = 0
}

// finish marks a flow complete, accounting any remaining round-off sliver,
// and fires callbacks.
func (n *Net) finish(f *Flow) {
	if f.remaining > 0 {
		// Account the final sliver that advance() rounded off.
		n.byTag[f.Tag] += f.remaining
		for _, l := range f.Links {
			l.bytes += f.remaining
		}
		f.remaining = 0
	}
	n.completed++
	f.doneCond.Broadcast(n.eng)
	if f.OnDone != nil {
		f.OnDone()
	}
}

// recompute performs progressive-filling max-min fair allocation over all
// active flows.
func (n *Net) recompute() {
	if len(n.flows) == 0 {
		return
	}
	// Reset scratch state.
	for _, f := range n.flows {
		f.frozen = false
		f.rate = 0
	}
	// Collect involved links deterministically: order by first occurrence.
	ordered := make([]*Link, 0, 8)
	seen := make(map[*Link]bool, 8)
	for _, f := range n.flows {
		for _, l := range f.Links {
			if !seen[l] {
				seen[l] = true
				ordered = append(ordered, l)
			}
		}
	}
	for _, l := range ordered {
		l.frozenRate = 0
		l.unfrozen = 0
		for _, f := range l.flows {
			if f.active {
				l.unfrozen++
			}
		}
	}
	remaining := len(n.flows)
	for remaining > 0 {
		// Candidate share: the smallest equal-share across constrained links.
		share := math.Inf(1)
		for _, l := range ordered {
			if l.unfrozen == 0 {
				continue
			}
			s := (l.Capacity - l.frozenRate) / float64(l.unfrozen)
			if s < share {
				share = s
			}
		}
		if math.IsInf(share, 1) {
			// Only cap-limited flows remain (no shared links).
			for _, f := range n.flows {
				if !f.frozen {
					f.freezeAt(f.MaxRate)
					remaining--
				}
			}
			break
		}
		if share < 0 {
			share = 0
		}
		// Flows whose individual cap is below the share freeze at their cap
		// first; this releases capacity for the rest.
		capped := false
		for _, f := range n.flows {
			if f.frozen || f.MaxRate <= 0 || f.MaxRate > share {
				continue
			}
			f.freezeAt(f.MaxRate)
			remaining--
			capped = true
		}
		if capped {
			continue
		}
		// Freeze flows on the bottleneck link(s) at the share rate.
		for _, l := range ordered {
			if l.unfrozen == 0 {
				continue
			}
			s := (l.Capacity - l.frozenRate) / float64(l.unfrozen)
			if s > share+1e-12 {
				continue
			}
			// All unfrozen flows on this link freeze at share.
			for _, f := range l.flows {
				if f.active && !f.frozen {
					f.freezeAt(share)
					remaining--
				}
			}
		}
	}
}

// freezeAt fixes the flow's rate and charges it to each of its links.
func (f *Flow) freezeAt(rate float64) {
	f.frozen = true
	f.rate = rate
	for _, l := range f.Links {
		l.frozenRate += rate
		l.unfrozen--
	}
}

// schedule arranges the next completion event.
func (n *Net) schedule() {
	n.gen++
	if len(n.flows) == 0 {
		return
	}
	next := math.Inf(1)
	for _, f := range n.flows {
		if f.rate <= 0 {
			continue
		}
		t := f.remaining / f.rate
		if t < next {
			next = t
		}
	}
	if math.IsInf(next, 1) {
		return // everything stalled (shouldn't happen with positive capacities)
	}
	if next < minStep {
		next = minStep
	}
	gen := n.gen
	n.eng.After(next, func() {
		if gen != n.gen {
			return
		}
		n.completionSweep()
	})
}

// completionSweep advances flows and finishes all that have drained.
func (n *Net) completionSweep() {
	n.advance()
	var done []*Flow
	for _, f := range n.flows {
		// A flow is done when drained, or so close that its completion
		// delay would vanish under clock round-off.
		if f.remaining <= epsBytes || (f.rate > 0 && f.remaining <= f.rate*minStep) {
			done = append(done, f)
		}
	}
	for _, f := range done {
		n.deactivate(f)
	}
	// Recompute before firing callbacks so callbacks observe a consistent
	// allocation; callbacks may start new flows, which recompute again.
	n.recompute()
	n.schedule()
	for _, f := range done {
		n.finish(f)
	}
}

// Transfer runs a blocking transfer of size bytes across links and returns
// when it completes.
func (n *Net) Transfer(p *sim.Proc, links []*Link, size float64, tag Tag) {
	f := &Flow{Links: links, Size: size, Tag: tag}
	n.Start(f)
	f.Wait(p)
}

// TransferCapped is Transfer with a per-flow rate cap.
func (n *Net) TransferCapped(p *sim.Proc, links []*Link, size float64, maxRate float64, tag Tag) {
	f := &Flow{Links: links, Size: size, MaxRate: maxRate, Tag: tag}
	n.Start(f)
	f.Wait(p)
}
