package flow

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"github.com/hybridmig/hybridmig/internal/sim"
)

// This file is the allocation property suite for the rate-group fill: after
// every operation of a randomized schedule, the incremental component-scoped
// recompute (with its rate-group aggregation and transparency shortcuts) is
// compared flow-by-flow against a from-scratch global max-min waterfilling
// that knows nothing about components, groups, or transparency. Max-min fair
// allocations are unique, so any divergence beyond float tolerance means the
// incremental machinery dropped a constraint or resharing step.

// referenceMaxMin computes the global max-min fair allocation from scratch by
// classic waterfilling: repeatedly find the tightest constraint — the
// smallest per-link fair share or the smallest unfrozen rate cap — and freeze
// the flows it binds. O(flows·links) per round, O(rounds) ≤ flows; fine for a
// test oracle.
func referenceMaxMin(n *Net) map[*Flow]float64 {
	rates := make(map[*Flow]float64, len(n.flows))
	frozen := make(map[*Flow]bool, len(n.flows))
	links := make(map[*Link]bool)
	for _, f := range n.flows {
		for _, l := range f.Links {
			links[l] = true
		}
	}
	// share returns l's fair share among its unfrozen flows and their count.
	share := func(l *Link) (float64, int) {
		avail := l.Capacity
		cnt := 0
		for i, c := 0, l.crossingCount(); i < c; i++ {
			f := l.crossingAt(i)
			if frozen[f] {
				avail -= rates[f]
			} else {
				cnt++
			}
		}
		if avail < 0 {
			avail = 0
		}
		return avail / float64(cnt), cnt
	}
	remaining := len(n.flows)
	for remaining > 0 {
		minShare := math.Inf(1)
		for l := range links {
			if s, cnt := share(l); cnt > 0 && s < minShare {
				minShare = s
			}
		}
		minCap := math.Inf(1)
		for _, f := range n.flows {
			if !frozen[f] && f.MaxRate > 0 && f.MaxRate < minCap {
				minCap = f.MaxRate
			}
		}
		progress := false
		if minCap <= minShare {
			// Rate caps bind first: freeze every flow at the tightest cap.
			for _, f := range n.flows {
				if !frozen[f] && f.MaxRate > 0 && f.MaxRate <= minCap*(1+1e-12) {
					rates[f] = f.MaxRate
					frozen[f] = true
					remaining--
					progress = true
				}
			}
		} else if math.IsInf(minShare, 1) {
			// No binding constraint left: only linkless capped flows could
			// remain, and those were frozen above — nothing should reach here.
			break
		} else {
			// Saturate every bottleneck link at its own share.
			for l := range links {
				s, cnt := share(l)
				if cnt == 0 || s > minShare*(1+1e-9) {
					continue
				}
				for i, c := 0, l.crossingCount(); i < c; i++ {
					f := l.crossingAt(i)
					if !frozen[f] {
						rates[f] = s
						frozen[f] = true
						remaining--
						progress = true
					}
				}
			}
		}
		if !progress {
			panic("referenceMaxMin: no progress")
		}
	}
	return rates
}

// checkRates compares every active flow's production rate against the
// waterfilling oracle within relative tolerance.
func checkRates(t *testing.T, n *Net, op string) {
	t.Helper()
	want := referenceMaxMin(n)
	for _, f := range n.flows {
		got := f.Rate()
		w := want[f]
		tol := 1e-6 * math.Max(math.Abs(w), 1)
		if math.Abs(got-w) > tol {
			grouped := f.group != nil
			t.Fatalf("after %s: flow seq%d rate %v, waterfilling oracle %v (grouped=%t)",
				op, f.seq, got, w, grouped)
		}
	}
}

// TestGroupFillMatchesWaterfilling drives randomized shared/capped/
// transparent/SetCapacity schedules and pins the group-based incremental
// allocation to the from-scratch oracle after every operation.
func TestGroupFillMatchesWaterfilling(t *testing.T) {
	for seed := int64(1); seed <= 12; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			e := sim.New()
			n := NewNet(e)

			nLinks := 3 + rng.Intn(6)
			links := make([]*Link, nLinks)
			for i := range links {
				links[i] = NewLink(fmt.Sprintf("l%d", i), (50+150*rng.Float64())*1e6)
			}
			// hub concentrates flows so rate groups actually form: most
			// single-link flows land on it and share one bottleneck.
			hub := links[0]

			ops := 150
			for op := 0; op < ops; op++ {
				var desc string
				switch k := rng.Intn(12); {
				case k < 4: // start a single-link hub flow (group candidate)
					f := &Flow{Tag: TagStoragePush, Links: []*Link{hub}, Size: 1e6 + rng.Float64()*1e11}
					n.Start(f)
					desc = fmt.Sprintf("op%d start-hub seq%d", op, f.seq)
				case k < 7: // start a multi-link and/or capped flow
					f := &Flow{Tag: TagStoragePull}
					for _, i := range rng.Perm(nLinks)[:1+rng.Intn(3)] {
						f.Links = append(f.Links, links[i])
					}
					if rng.Intn(2) == 0 {
						f.MaxRate = (5 + 90*rng.Float64()) * 1e6
					}
					f.Size = 1e6 + rng.Float64()*1e11
					n.Start(f)
					desc = fmt.Sprintf("op%d start seq%d", op, f.seq)
				case k < 9: // cancel a random active flow
					if len(n.flows) == 0 {
						continue
					}
					f := n.flows[rng.Intn(len(n.flows))]
					desc = fmt.Sprintf("op%d cancel seq%d", op, f.seq)
					n.Cancel(f)
				case k < 11: // change a link capacity (both directions)
					l := links[rng.Intn(nLinks)]
					c := (20 + 280*rng.Float64()) * 1e6
					desc = fmt.Sprintf("op%d setcap %s %.0f", op, l.Name, c)
					n.SetCapacity(l, c)
				default: // advance time; completions fire and reshare
					fired := false
					e.After(0.2+rng.Float64()*3, func() { fired = true })
					for !fired && e.Step() {
					}
					desc = fmt.Sprintf("op%d advance to %.3f", op, e.Now())
				}
				checkRates(t, n, desc)
			}
			e.Stop()
		})
	}
}
