package flow_test

import (
	"fmt"
	"testing"

	"github.com/hybridmig/hybridmig/internal/benchscen"
	"github.com/hybridmig/hybridmig/internal/flow"
	"github.com/hybridmig/hybridmig/internal/sim"
)

// The churn scenario bodies live in internal/benchscen so cmd/benchreport
// measures exactly what these benchmarks measure.

func BenchmarkRecomputeDisjoint(b *testing.B) {
	for _, flows := range []int{10, 100, 1000} {
		b.Run(fmt.Sprintf("flows=%d", flows), func(b *testing.B) {
			benchscen.FlowChurn(b, flows, false)
		})
	}
}

func BenchmarkRecomputeShared(b *testing.B) {
	for _, flows := range []int{10, 100, 1000} {
		b.Run(fmt.Sprintf("flows=%d", flows), func(b *testing.B) {
			benchscen.FlowChurn(b, flows, true)
		})
	}
}

// BenchmarkTransferComplete runs full flow lifecycles (start, completion
// sweep, callback) on a private link pair with a standing disjoint
// population, covering the settle/heap/reschedule path end to end.
func BenchmarkTransferComplete(b *testing.B) {
	e := sim.New()
	n := flow.NewNet(e)
	for i := 0; i < 100; i++ {
		l := flow.NewLink(fmt.Sprintf("bg%d", i), 1e9)
		n.Start(&flow.Flow{Links: []*flow.Link{l}, Size: 1e15})
	}
	out := flow.NewLink("out", 1e8)
	in := flow.NewLink("in", 1e8)
	path := []*flow.Link{out, in}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		done := false
		n.Start(&flow.Flow{Links: path, Size: 1e6, OnDone: func() { done = true }})
		if err := e.RunUntil(e.Now() + 1); err != nil {
			b.Fatal(err)
		}
		if !done {
			b.Fatal("flow did not complete")
		}
	}
	b.StopTimer()
	e.Stop()
}
