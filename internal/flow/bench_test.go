package flow_test

import (
	"fmt"
	"testing"

	"github.com/hybridmig/hybridmig/internal/benchscen"
	"github.com/hybridmig/hybridmig/internal/flow"
	"github.com/hybridmig/hybridmig/internal/sim"
)

// The churn scenario bodies live in internal/benchscen so cmd/benchreport
// measures exactly what these benchmarks measure.

func BenchmarkRecomputeDisjoint(b *testing.B) {
	for _, flows := range []int{10, 100, 1000} {
		b.Run(fmt.Sprintf("flows=%d", flows), func(b *testing.B) {
			benchscen.FlowChurn(b, flows, false)
		})
	}
}

func BenchmarkRecomputeShared(b *testing.B) {
	for _, flows := range []int{10, 100, 1000} {
		b.Run(fmt.Sprintf("flows=%d", flows), func(b *testing.B) {
			benchscen.FlowChurn(b, flows, true)
		})
	}
}

// TestFlowChurnZeroAllocs is the allocation guard for the churn hot path:
// with the Net's flow free list in play, a start+cancel cycle against a
// standing population must not allocate — in either link regime. A nonzero
// AllocsPerOp here means something on the Start/Cancel/timer path regressed.
func TestFlowChurnZeroAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark-backed guard skipped in -short")
	}
	for _, tc := range []struct {
		name   string
		shared bool
	}{{"disjoint", false}, {"shared", true}} {
		r := testing.Benchmark(func(b *testing.B) { benchscen.FlowChurn(b, 100, tc.shared) })
		if a := r.AllocsPerOp(); a != 0 {
			t.Errorf("%s churn: %d allocs/op (%d B/op), want 0", tc.name, a, r.AllocedBytesPerOp())
		}
	}
}

// BenchmarkTransferComplete runs full flow lifecycles (start, completion
// sweep, callback) on a private link pair with a standing disjoint
// population, covering the settle/heap/reschedule path end to end.
func BenchmarkTransferComplete(b *testing.B) {
	e := sim.New()
	n := flow.NewNet(e)
	for i := 0; i < 100; i++ {
		l := flow.NewLink(fmt.Sprintf("bg%d", i), 1e9)
		n.Start(&flow.Flow{Links: []*flow.Link{l}, Size: 1e15})
	}
	out := flow.NewLink("out", 1e8)
	in := flow.NewLink("in", 1e8)
	path := []*flow.Link{out, in}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		done := false
		n.Start(&flow.Flow{Links: path, Size: 1e6, OnDone: func() { done = true }})
		if err := e.RunUntil(e.Now() + 1); err != nil {
			b.Fatal(err)
		}
		if !done {
			b.Fatal("flow did not complete")
		}
	}
	b.StopTimer()
	e.Stop()
}
