package flow

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"github.com/hybridmig/hybridmig/internal/sim"
)

func TestSetCapacitySpeedsUpFlow(t *testing.T) {
	e := sim.New()
	n := NewNet(e)
	l := NewLink("l", 100)
	var doneAt sim.Time
	f := &Flow{Links: []*Link{l}, Size: 1000, OnDone: func() { doneAt = e.Now() }}
	n.Start(f)
	// 500 B move in the first 5 s; then the link doubles and the remaining
	// 500 B take 2.5 s.
	e.At(5, func() { n.SetCapacity(l, 200) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !near(doneAt, 7.5) {
		t.Fatalf("doneAt = %v, want 7.5", doneAt)
	}
	if !near(l.Bytes(), 1000) {
		t.Fatalf("link bytes = %v, want 1000", l.Bytes())
	}
}

func TestSetCapacityDegradesFlow(t *testing.T) {
	e := sim.New()
	n := NewNet(e)
	l := NewLink("l", 100)
	var doneAt sim.Time
	f := &Flow{Links: []*Link{l}, Size: 1000, OnDone: func() { doneAt = e.Now() }}
	n.Start(f)
	// 500 B by t=5, then a 10x degradation: 500 B at 10 B/s -> 50 s more.
	e.At(5, func() {
		n.SetCapacity(l, 10)
		if !near(f.Rate(), 10) {
			t.Errorf("rate after degrade = %v, want 10", f.Rate())
		}
		if !near(f.Remaining(), 500) {
			t.Errorf("remaining after degrade = %v, want 500", f.Remaining())
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !near(doneAt, 55) {
		t.Fatalf("doneAt = %v, want 55", doneAt)
	}
}

func TestSetCapacityRebalancesComponent(t *testing.T) {
	// Max-min scenario from TestBottleneckMaxMin, then B degrades further:
	// flow2 drops to the new B capacity and flow1 picks up A's residual.
	e := sim.New()
	n := NewNet(e)
	la := NewLink("A", 100)
	lb := NewLink("B", 30)
	f1 := &Flow{Links: []*Link{la}, Size: 1e9}
	f2 := &Flow{Links: []*Link{la, lb}, Size: 1e9}
	n.Start(f1)
	n.Start(f2)
	n.SetCapacity(lb, 10)
	if !near(f2.Rate(), 10) {
		t.Fatalf("f2 rate = %v, want 10", f2.Rate())
	}
	if !near(f1.Rate(), 90) {
		t.Fatalf("f1 rate = %v, want 90", f1.Rate())
	}
	// Recovery above A's share point: both split A evenly.
	n.SetCapacity(lb, 80)
	if !near(f1.Rate(), 50) || !near(f2.Rate(), 50) {
		t.Fatalf("rates = %v,%v, want 50,50", f1.Rate(), f2.Rate())
	}
}

func TestSetCapacityTransparentTurnsOpaque(t *testing.T) {
	// A wide shared fabric is transparent and does not couple two flows;
	// degrading it below their summed ceilings must make it the shared
	// bottleneck.
	e := sim.New()
	n := NewNet(e)
	fab := NewLink("fabric", 1000)
	a := NewLink("a", 100)
	b := NewLink("b", 100)
	fa := &Flow{Links: []*Link{a, fab}, Size: 1e9}
	fb := &Flow{Links: []*Link{b, fab}, Size: 1e9}
	n.Start(fa)
	n.Start(fb)
	if !near(fa.Rate(), 100) || !near(fb.Rate(), 100) {
		t.Fatalf("pre-degrade rates = %v,%v, want 100,100", fa.Rate(), fb.Rate())
	}
	n.SetCapacity(fab, 120)
	if !near(fa.Rate(), 60) || !near(fb.Rate(), 60) {
		t.Fatalf("post-degrade rates = %v,%v, want 60,60", fa.Rate(), fb.Rate())
	}
	// Recovery: the fabric turns transparent again and decouples the flows.
	n.SetCapacity(fab, 1000)
	if !near(fa.Rate(), 100) || !near(fb.Rate(), 100) {
		t.Fatalf("post-recovery rates = %v,%v, want 100,100", fa.Rate(), fb.Rate())
	}
}

func TestSetCapacityOpaqueTurnsTransparent(t *testing.T) {
	// Raising a bottleneck's capacity above the flows' other ceilings must
	// release them to those ceilings (opaque -> transparent flip).
	e := sim.New()
	n := NewNet(e)
	shared := NewLink("shared", 50)
	a := NewLink("a", 100)
	b := NewLink("b", 100)
	fa := &Flow{Links: []*Link{a, shared}, Size: 1e9}
	fb := &Flow{Links: []*Link{b, shared}, Size: 1e9}
	n.Start(fa)
	n.Start(fb)
	if !near(fa.Rate(), 25) || !near(fb.Rate(), 25) {
		t.Fatalf("pre rates = %v,%v, want 25,25", fa.Rate(), fb.Rate())
	}
	n.SetCapacity(shared, 1000)
	if !near(fa.Rate(), 100) || !near(fb.Rate(), 100) {
		t.Fatalf("post rates = %v,%v, want 100,100", fa.Rate(), fb.Rate())
	}
}

func TestSetCapacityReschedulesCompletion(t *testing.T) {
	// Two flows on disjoint links; degrading one must reorder completions.
	e := sim.New()
	n := NewNet(e)
	la := NewLink("a", 100)
	lb := NewLink("b", 100)
	var order []string
	n.Start(&Flow{Links: []*Link{la}, Size: 100, OnDone: func() { order = append(order, "a") }})
	n.Start(&Flow{Links: []*Link{lb}, Size: 200, OnDone: func() { order = append(order, "b") }})
	// Without the change: a at t=1, b at t=2. Degrading a at t=0.5 to 10 B/s
	// pushes a's completion to 0.5 + 50/10 = 5.5, after b's t=2.
	e.At(0.5, func() { n.SetCapacity(la, 10) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != "b" || order[1] != "a" {
		t.Fatalf("completion order = %v, want [b a]", order)
	}
	if !near(e.Now(), 5.5) {
		t.Fatalf("clock = %v, want 5.5", e.Now())
	}
}

func TestSetCapacityIdleLink(t *testing.T) {
	e := sim.New()
	n := NewNet(e)
	l := NewLink("l", 100)
	n.SetCapacity(l, 42)
	if l.Capacity != 42 {
		t.Fatalf("capacity = %v, want 42", l.Capacity)
	}
	var doneAt sim.Time
	n.Start(&Flow{Links: []*Link{l}, Size: 84, OnDone: func() { doneAt = e.Now() }})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !near(doneAt, 2) {
		t.Fatalf("doneAt = %v, want 2", doneAt)
	}
}

func TestSetCapacityInvalidPanics(t *testing.T) {
	e := sim.New()
	n := NewNet(e)
	l := NewLink("l", 100)
	for _, c := range []float64{0, -1, math.NaN(), math.Inf(1)} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("SetCapacity(%v) did not panic", c)
				}
			}()
			n.SetCapacity(l, c)
		}()
	}
}

// dynNet is the randomized-op harness state: a small fabric of links plus
// the set of live flows and a shadow account of every byte outcome.
type dynNet struct {
	eng   *sim.Engine
	net   *Net
	links []*Link
	base  []float64 // configured capacities (degradations scale these)
	live  []*Flow
	sizes map[*Flow]float64

	completedBytes float64
	canceledMoved  float64 // bytes moved by flows that were later canceled
}

// checkRates asserts the allocation invariants that must hold after every
// operation: no negative rate, no negative capacity, and no link carrying
// more than its capacity.
func (d *dynNet) checkRates(t *testing.T) {
	t.Helper()
	for _, f := range d.live {
		if f.Done() {
			continue
		}
		if f.Rate() < 0 {
			t.Fatalf("negative rate %v", f.Rate())
		}
		if f.MaxRate > 0 && f.Rate() > f.MaxRate*(1+tol) {
			t.Fatalf("rate %v above cap %v", f.Rate(), f.MaxRate)
		}
	}
	for _, l := range d.links {
		if l.Capacity <= 0 {
			t.Fatalf("non-positive capacity %v on %s", l.Capacity, l.Name)
		}
		var sum float64
		for _, f := range d.live {
			if f.Done() {
				continue
			}
			for _, lk := range f.Links {
				if lk == l {
					sum += f.Rate()
				}
			}
		}
		if sum > l.Capacity*(1+tol)+tol {
			t.Fatalf("link %s oversubscribed: %v > %v", l.Name, sum, l.Capacity)
		}
	}
}

// TestRandomDynamicInvariants drives a seeded random schedule of flow
// starts, cancels, capacity changes and time advances, checking after every
// step that rates and capacities stay sane, and at the end that every byte
// is conserved: sizes of completed flows plus the moved part of canceled
// flows equals the per-tag totals.
func TestRandomDynamicInvariants(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			trace1 := runRandomDynamic(t, seed)
			trace2 := runRandomDynamic(t, seed)
			if trace1 != trace2 {
				t.Fatalf("same seed diverged:\n%s\nvs\n%s", trace1, trace2)
			}
		})
	}
}

// runRandomDynamic executes one seeded schedule and returns a determinism
// fingerprint (hex-float clock and byte totals).
func runRandomDynamic(t *testing.T, seed int64) string {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	e := sim.New()
	d := &dynNet{eng: e, net: NewNet(e), sizes: map[*Flow]float64{}}
	for i := 0; i < 6; i++ {
		cap := 50 + rng.Float64()*200
		d.links = append(d.links, NewLink(fmt.Sprintf("l%d", i), cap))
		d.base = append(d.base, cap)
	}
	for step := 0; step < 400; step++ {
		switch op := rng.Intn(10); {
		case op < 4: // start a flow over 1-3 random links
			nl := 1 + rng.Intn(3)
			links := make([]*Link, 0, nl)
			for _, idx := range rng.Perm(len(d.links))[:nl] {
				links = append(links, d.links[idx])
			}
			f := &Flow{
				Links: links,
				Size:  10 + rng.Float64()*500,
				Tag:   Tag(rng.Intn(NumTags)),
			}
			if rng.Intn(3) == 0 {
				f.MaxRate = 20 + rng.Float64()*100
			}
			sz := f.Size
			f.OnDone = func() { d.completedBytes += sz }
			d.sizes[f] = sz
			d.net.Start(f)
			d.live = append(d.live, f)
		case op < 6: // cancel a random live flow
			if len(d.live) == 0 {
				continue
			}
			f := d.live[rng.Intn(len(d.live))]
			if f.Done() {
				continue
			}
			rem := d.net.Cancel(f)
			d.canceledMoved += d.sizes[f] - rem
		case op < 9: // change a random link's capacity (0.05x .. 2x base)
			i := rng.Intn(len(d.links))
			factor := 0.05 + rng.Float64()*1.95
			d.net.SetCapacity(d.links[i], d.base[i]*factor)
		default: // advance the clock
			limit := e.Now() + rng.Float64()*2
			if err := e.RunUntil(limit); err != nil {
				t.Fatal(err)
			}
		}
		d.checkRates(t)
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	d.checkRates(t)
	var tagTotal float64
	for _, tag := range Tags() {
		b := d.net.BytesByTag(tag)
		if b < 0 {
			t.Fatalf("negative tag bytes %v for %s", b, tag)
		}
		tagTotal += b
	}
	want := d.completedBytes + d.canceledMoved
	// Completion absorbs up to epsBytes of round-off per flow.
	slack := float64(len(d.sizes))*epsBytes + tol*math.Max(1, want)
	if math.Abs(tagTotal-want) > slack {
		t.Fatalf("byte conservation violated: tags carry %v, outcomes say %v (slack %v)",
			tagTotal, want, slack)
	}
	return fmt.Sprintf("clock=%x completed=%x canceled=%x total=%x",
		e.Now(), d.completedBytes, d.canceledMoved, tagTotal)
}
