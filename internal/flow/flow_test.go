package flow

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/hybridmig/hybridmig/internal/sim"
)

const tol = 1e-6

func near(a, b float64) bool {
	return math.Abs(a-b) <= tol*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

func TestSingleFlowSingleLink(t *testing.T) {
	e := sim.New()
	n := NewNet(e)
	l := NewLink("l", 100) // 100 B/s
	var doneAt sim.Time
	f := &Flow{Links: []*Link{l}, Size: 500, Tag: TagMemory, OnDone: func() { doneAt = e.Now() }}
	n.Start(f)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !near(doneAt, 5) {
		t.Fatalf("doneAt = %v, want 5", doneAt)
	}
	if !near(l.Bytes(), 500) {
		t.Fatalf("link bytes = %v, want 500", l.Bytes())
	}
	if !near(n.BytesByTag(TagMemory), 500) {
		t.Fatalf("tag bytes = %v, want 500", n.BytesByTag(TagMemory))
	}
}

func TestFairShareTwoFlows(t *testing.T) {
	e := sim.New()
	n := NewNet(e)
	l := NewLink("l", 100)
	var t1, t2 sim.Time
	n.Start(&Flow{Links: []*Link{l}, Size: 100, OnDone: func() { t1 = e.Now() }})
	n.Start(&Flow{Links: []*Link{l}, Size: 100, OnDone: func() { t2 = e.Now() }})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// Both share 50 B/s, finish together at t=2.
	if !near(t1, 2) || !near(t2, 2) {
		t.Fatalf("t1=%v t2=%v, want 2,2", t1, t2)
	}
}

func TestFairShareStaggered(t *testing.T) {
	e := sim.New()
	n := NewNet(e)
	l := NewLink("l", 100)
	var t1, t2 sim.Time
	n.Start(&Flow{Links: []*Link{l}, Size: 100, OnDone: func() { t1 = e.Now() }})
	e.At(0.5, func() {
		n.Start(&Flow{Links: []*Link{l}, Size: 100, OnDone: func() { t2 = e.Now() }})
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// Flow1: 50B alone in 0.5s, then 50B at 50B/s -> done at 1.5.
	// Flow2: 50B at 50B/s until 1.5 (50 left... it has 100, transfers 50 by 1.5),
	// then alone at 100B/s for remaining 50B -> done at 2.0.
	if !near(t1, 1.5) {
		t.Fatalf("t1 = %v, want 1.5", t1)
	}
	if !near(t2, 2.0) {
		t.Fatalf("t2 = %v, want 2.0", t2)
	}
}

func TestBottleneckMaxMin(t *testing.T) {
	// Classic max-min scenario: links A(cap 100) and B(cap 30).
	// Flow1 crosses A only; Flow2 crosses A and B.
	// Max-min: flow2 limited by B at 30, flow1 gets A's residual 70.
	e := sim.New()
	n := NewNet(e)
	la := NewLink("A", 100)
	lb := NewLink("B", 30)
	f1 := &Flow{Links: []*Link{la}, Size: 1e9}
	f2 := &Flow{Links: []*Link{la, lb}, Size: 1e9}
	n.Start(f1)
	n.Start(f2)
	if !near(f2.Rate(), 30) {
		t.Fatalf("f2 rate = %v, want 30", f2.Rate())
	}
	if !near(f1.Rate(), 70) {
		t.Fatalf("f1 rate = %v, want 70", f1.Rate())
	}
	e.Stop()
	e.Shutdown()
}

func TestPerFlowCap(t *testing.T) {
	e := sim.New()
	n := NewNet(e)
	l := NewLink("l", 100)
	f1 := &Flow{Links: []*Link{l}, Size: 1e9, MaxRate: 10}
	f2 := &Flow{Links: []*Link{l}, Size: 1e9}
	n.Start(f1)
	n.Start(f2)
	if !near(f1.Rate(), 10) {
		t.Fatalf("capped flow rate = %v, want 10", f1.Rate())
	}
	if !near(f2.Rate(), 90) {
		t.Fatalf("uncapped flow rate = %v, want 90 (residual)", f2.Rate())
	}
	e.Stop()
}

func TestCapOnlyFlowNoLinks(t *testing.T) {
	e := sim.New()
	n := NewNet(e)
	var doneAt sim.Time
	n.Start(&Flow{Size: 100, MaxRate: 10, OnDone: func() { doneAt = e.Now() }})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !near(doneAt, 10) {
		t.Fatalf("doneAt = %v, want 10", doneAt)
	}
}

func TestZeroSizeCompletesImmediately(t *testing.T) {
	e := sim.New()
	n := NewNet(e)
	l := NewLink("l", 100)
	done := false
	n.Start(&Flow{Links: []*Link{l}, Size: 0, OnDone: func() { done = true }})
	if !done {
		t.Fatal("zero-size flow did not complete synchronously")
	}
}

func TestNoLinksNoCapInstant(t *testing.T) {
	e := sim.New()
	n := NewNet(e)
	done := false
	n.Start(&Flow{Size: 1e6, OnDone: func() { done = true }})
	if !done {
		t.Fatal("unconstrained flow did not complete instantly")
	}
	if !near(n.BytesByTag(TagOther), 1e6) {
		t.Fatalf("bytes = %v", n.BytesByTag(TagOther))
	}
}

func TestCancelReturnsRemaining(t *testing.T) {
	e := sim.New()
	n := NewNet(e)
	l := NewLink("l", 100)
	f := &Flow{Links: []*Link{l}, Size: 1000}
	n.Start(f)
	var rem float64
	e.At(2, func() { rem = n.Cancel(f) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !near(rem, 800) {
		t.Fatalf("remaining = %v, want 800", rem)
	}
	if !near(l.Bytes(), 200) {
		t.Fatalf("link bytes = %v, want 200", l.Bytes())
	}
	if n.CompletedFlows() != 0 {
		t.Fatal("canceled flow counted as completed")
	}
}

func TestCancelSpeedsUpOthers(t *testing.T) {
	e := sim.New()
	n := NewNet(e)
	l := NewLink("l", 100)
	f1 := &Flow{Links: []*Link{l}, Size: 200}
	var t2 sim.Time
	f2 := &Flow{Links: []*Link{l}, Size: 200, OnDone: func() { t2 = e.Now() }}
	n.Start(f1)
	n.Start(f2)
	e.At(1, func() { n.Cancel(f1) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// f2: 50B in first second, then 150B at 100B/s -> done at 2.5.
	if !near(t2, 2.5) {
		t.Fatalf("t2 = %v, want 2.5", t2)
	}
}

func TestBlockingTransfer(t *testing.T) {
	e := sim.New()
	n := NewNet(e)
	l := NewLink("l", 50)
	var doneAt sim.Time
	e.Go("xfer", func(p *sim.Proc) {
		n.Transfer(p, []*Link{l}, 100, TagPFS)
		doneAt = p.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !near(doneAt, 2) {
		t.Fatalf("doneAt = %v, want 2", doneAt)
	}
}

func TestWaitOnCanceledFlowReturns(t *testing.T) {
	e := sim.New()
	n := NewNet(e)
	l := NewLink("l", 1)
	f := &Flow{Links: []*Link{l}, Size: 1e9}
	n.Start(f)
	returned := false
	e.Go("waiter", func(p *sim.Proc) {
		f.Wait(p)
		returned = true
	})
	e.At(1, func() { n.Cancel(f) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !returned {
		t.Fatal("Wait did not return after cancel")
	}
}

func TestMultiPathSeriesBottleneck(t *testing.T) {
	// A flow crossing disk(55) -> nicOut(117) -> fabric(8000) -> nicIn(117)
	// runs at the disk rate.
	e := sim.New()
	n := NewNet(e)
	disk := NewLink("disk", 55)
	out := NewLink("out", 117.5)
	fab := NewLink("fab", 8000)
	in := NewLink("in", 117.5)
	f := &Flow{Links: []*Link{disk, out, fab, in}, Size: 550}
	var doneAt sim.Time
	f.OnDone = func() { doneAt = e.Now() }
	n.Start(f)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !near(doneAt, 10) {
		t.Fatalf("doneAt = %v, want 10", doneAt)
	}
	// Each link carried the full byte count (series path).
	for _, l := range []*Link{disk, out, fab, in} {
		if !near(l.Bytes(), 550) {
			t.Fatalf("link %s bytes = %v, want 550", l.Name, l.Bytes())
		}
	}
	// Tag accounting counts the flow once.
	if !near(n.TotalBytes(), 550) {
		t.Fatalf("total = %v, want 550", n.TotalBytes())
	}
}

func TestFabricContention(t *testing.T) {
	// 4 node-pairs, each NIC 100, fabric capacity 250: fabric is the
	// bottleneck; each of 4 flows gets 62.5.
	e := sim.New()
	n := NewNet(e)
	fab := NewLink("fab", 250)
	var flows []*Flow
	for i := 0; i < 4; i++ {
		out := NewLink("out", 100)
		in := NewLink("in", 100)
		f := &Flow{Links: []*Link{out, fab, in}, Size: 1e9}
		flows = append(flows, f)
		n.Start(f)
	}
	for i, f := range flows {
		if !near(f.Rate(), 62.5) {
			t.Fatalf("flow %d rate = %v, want 62.5", i, f.Rate())
		}
	}
	e.Stop()
}

// TestConservationProperty: for random flow sets, total accounted bytes
// equal the sum of completed sizes plus transferred parts of canceled flows.
func TestConservationProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e := sim.New()
		n := NewNet(e)
		links := make([]*Link, 5)
		for i := range links {
			links[i] = NewLink("l", 10+rng.Float64()*100)
		}
		var expected float64
		var canceled []*Flow
		nf := 3 + rng.Intn(8)
		for i := 0; i < nf; i++ {
			path := []*Link{links[rng.Intn(5)]}
			if rng.Intn(2) == 0 {
				path = append(path, links[rng.Intn(5)])
			}
			fl := &Flow{Links: path, Size: 1 + rng.Float64()*1000}
			if rng.Intn(4) == 0 {
				fl.MaxRate = 1 + rng.Float64()*50
			}
			start := rng.Float64() * 5
			e.At(start, func() { n.Start(fl) })
			if rng.Intn(5) == 0 {
				canceled = append(canceled, fl)
				e.At(start+rng.Float64()*2, func() { n.Cancel(fl) })
			} else {
				expected += fl.Size
			}
		}
		if err := e.Run(); err != nil {
			return false
		}
		var canceledTransferred float64
		for _, fl := range canceled {
			canceledTransferred += fl.Size - fl.Remaining()
		}
		return near(n.TotalBytes(), expected+canceledTransferred)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestMaxMinInvariants: after any allocation, (1) no link exceeds capacity,
// (2) no flow exceeds its cap, (3) every flow is bottlenecked somewhere
// (saturated link or own cap) — the defining property of max-min fairness.
func TestMaxMinInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e := sim.New()
		n := NewNet(e)
		links := make([]*Link, 4)
		for i := range links {
			links[i] = NewLink("l", 10+rng.Float64()*100)
		}
		var flows []*Flow
		for i := 0; i < 3+rng.Intn(10); i++ {
			// Random non-empty subset of links.
			var path []*Link
			for _, l := range links {
				if rng.Intn(2) == 0 {
					path = append(path, l)
				}
			}
			if len(path) == 0 {
				path = []*Link{links[0]}
			}
			fl := &Flow{Links: path, Size: 1e12}
			if rng.Intn(3) == 0 {
				fl.MaxRate = 1 + rng.Float64()*40
			}
			flows = append(flows, fl)
			n.Start(fl)
		}
		defer e.Stop()
		// (1) capacity respected
		for _, l := range links {
			var sum float64
			for _, fl := range flows {
				for _, fl2 := range fl.Links {
					if fl2 == l {
						sum += fl.Rate()
					}
				}
			}
			if sum > l.Capacity*(1+1e-9) {
				return false
			}
		}
		for _, fl := range flows {
			// (2) cap respected
			if fl.MaxRate > 0 && fl.Rate() > fl.MaxRate*(1+1e-9) {
				return false
			}
			if fl.Rate() <= 0 {
				return false
			}
			// (3) bottlenecked somewhere
			bottled := fl.MaxRate > 0 && near(fl.Rate(), fl.MaxRate)
			for _, l := range fl.Links {
				var sum float64
				maxOnLink := 0.0
				for _, other := range flows {
					for _, l2 := range other.Links {
						if l2 == l {
							sum += other.Rate()
							if other.Rate() > maxOnLink {
								maxOnLink = other.Rate()
							}
						}
					}
				}
				// Saturated link where this flow has a maximal rate.
				if near(sum, l.Capacity) && fl.Rate() >= maxOnLink-tol {
					bottled = true
				}
			}
			if !bottled {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestTagString(t *testing.T) {
	if TagMemory.String() != "memory" || TagPFS.String() != "pfs" {
		t.Fatal("tag names wrong")
	}
	if len(Tags()) != int(numTags) {
		t.Fatal("Tags() length mismatch")
	}
}
