package flow

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/hybridmig/hybridmig/internal/sim"
)

const tol = 1e-6

func near(a, b float64) bool {
	return math.Abs(a-b) <= tol*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

func TestSingleFlowSingleLink(t *testing.T) {
	e := sim.New()
	n := NewNet(e)
	l := NewLink("l", 100) // 100 B/s
	var doneAt sim.Time
	f := &Flow{Links: []*Link{l}, Size: 500, Tag: TagMemory, OnDone: func() { doneAt = e.Now() }}
	n.Start(f)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !near(doneAt, 5) {
		t.Fatalf("doneAt = %v, want 5", doneAt)
	}
	if !near(l.Bytes(), 500) {
		t.Fatalf("link bytes = %v, want 500", l.Bytes())
	}
	if !near(n.BytesByTag(TagMemory), 500) {
		t.Fatalf("tag bytes = %v, want 500", n.BytesByTag(TagMemory))
	}
}

func TestFairShareTwoFlows(t *testing.T) {
	e := sim.New()
	n := NewNet(e)
	l := NewLink("l", 100)
	var t1, t2 sim.Time
	n.Start(&Flow{Links: []*Link{l}, Size: 100, OnDone: func() { t1 = e.Now() }})
	n.Start(&Flow{Links: []*Link{l}, Size: 100, OnDone: func() { t2 = e.Now() }})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// Both share 50 B/s, finish together at t=2.
	if !near(t1, 2) || !near(t2, 2) {
		t.Fatalf("t1=%v t2=%v, want 2,2", t1, t2)
	}
}

func TestFairShareStaggered(t *testing.T) {
	e := sim.New()
	n := NewNet(e)
	l := NewLink("l", 100)
	var t1, t2 sim.Time
	n.Start(&Flow{Links: []*Link{l}, Size: 100, OnDone: func() { t1 = e.Now() }})
	e.At(0.5, func() {
		n.Start(&Flow{Links: []*Link{l}, Size: 100, OnDone: func() { t2 = e.Now() }})
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// Flow1: 50B alone in 0.5s, then 50B at 50B/s -> done at 1.5.
	// Flow2: 50B at 50B/s until 1.5 (50 left... it has 100, transfers 50 by 1.5),
	// then alone at 100B/s for remaining 50B -> done at 2.0.
	if !near(t1, 1.5) {
		t.Fatalf("t1 = %v, want 1.5", t1)
	}
	if !near(t2, 2.0) {
		t.Fatalf("t2 = %v, want 2.0", t2)
	}
}

func TestBottleneckMaxMin(t *testing.T) {
	// Classic max-min scenario: links A(cap 100) and B(cap 30).
	// Flow1 crosses A only; Flow2 crosses A and B.
	// Max-min: flow2 limited by B at 30, flow1 gets A's residual 70.
	e := sim.New()
	n := NewNet(e)
	la := NewLink("A", 100)
	lb := NewLink("B", 30)
	f1 := &Flow{Links: []*Link{la}, Size: 1e9}
	f2 := &Flow{Links: []*Link{la, lb}, Size: 1e9}
	n.Start(f1)
	n.Start(f2)
	if !near(f2.Rate(), 30) {
		t.Fatalf("f2 rate = %v, want 30", f2.Rate())
	}
	if !near(f1.Rate(), 70) {
		t.Fatalf("f1 rate = %v, want 70", f1.Rate())
	}
	e.Stop()
	e.Shutdown()
}

func TestPerFlowCap(t *testing.T) {
	e := sim.New()
	n := NewNet(e)
	l := NewLink("l", 100)
	f1 := &Flow{Links: []*Link{l}, Size: 1e9, MaxRate: 10}
	f2 := &Flow{Links: []*Link{l}, Size: 1e9}
	n.Start(f1)
	n.Start(f2)
	if !near(f1.Rate(), 10) {
		t.Fatalf("capped flow rate = %v, want 10", f1.Rate())
	}
	if !near(f2.Rate(), 90) {
		t.Fatalf("uncapped flow rate = %v, want 90 (residual)", f2.Rate())
	}
	e.Stop()
}

func TestCapOnlyFlowNoLinks(t *testing.T) {
	e := sim.New()
	n := NewNet(e)
	var doneAt sim.Time
	n.Start(&Flow{Size: 100, MaxRate: 10, OnDone: func() { doneAt = e.Now() }})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !near(doneAt, 10) {
		t.Fatalf("doneAt = %v, want 10", doneAt)
	}
}

func TestZeroSizeCompletesImmediately(t *testing.T) {
	e := sim.New()
	n := NewNet(e)
	l := NewLink("l", 100)
	done := false
	n.Start(&Flow{Links: []*Link{l}, Size: 0, OnDone: func() { done = true }})
	if !done {
		t.Fatal("zero-size flow did not complete synchronously")
	}
}

func TestNoLinksNoCapInstant(t *testing.T) {
	e := sim.New()
	n := NewNet(e)
	done := false
	n.Start(&Flow{Size: 1e6, OnDone: func() { done = true }})
	if !done {
		t.Fatal("unconstrained flow did not complete instantly")
	}
	if !near(n.BytesByTag(TagOther), 1e6) {
		t.Fatalf("bytes = %v", n.BytesByTag(TagOther))
	}
}

func TestCancelReturnsRemaining(t *testing.T) {
	e := sim.New()
	n := NewNet(e)
	l := NewLink("l", 100)
	f := &Flow{Links: []*Link{l}, Size: 1000}
	n.Start(f)
	var rem float64
	e.At(2, func() { rem = n.Cancel(f) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !near(rem, 800) {
		t.Fatalf("remaining = %v, want 800", rem)
	}
	if !near(l.Bytes(), 200) {
		t.Fatalf("link bytes = %v, want 200", l.Bytes())
	}
	if n.CompletedFlows() != 0 {
		t.Fatal("canceled flow counted as completed")
	}
}

func TestCancelSpeedsUpOthers(t *testing.T) {
	e := sim.New()
	n := NewNet(e)
	l := NewLink("l", 100)
	f1 := &Flow{Links: []*Link{l}, Size: 200}
	var t2 sim.Time
	f2 := &Flow{Links: []*Link{l}, Size: 200, OnDone: func() { t2 = e.Now() }}
	n.Start(f1)
	n.Start(f2)
	e.At(1, func() { n.Cancel(f1) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// f2: 50B in first second, then 150B at 100B/s -> done at 2.5.
	if !near(t2, 2.5) {
		t.Fatalf("t2 = %v, want 2.5", t2)
	}
}

func TestBlockingTransfer(t *testing.T) {
	e := sim.New()
	n := NewNet(e)
	l := NewLink("l", 50)
	var doneAt sim.Time
	e.Go("xfer", func(p *sim.Proc) {
		n.Transfer(p, []*Link{l}, 100, TagPFS)
		doneAt = p.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !near(doneAt, 2) {
		t.Fatalf("doneAt = %v, want 2", doneAt)
	}
}

func TestWaitOnCanceledFlowReturns(t *testing.T) {
	e := sim.New()
	n := NewNet(e)
	l := NewLink("l", 1)
	f := &Flow{Links: []*Link{l}, Size: 1e9}
	n.Start(f)
	returned := false
	e.Go("waiter", func(p *sim.Proc) {
		f.Wait(p)
		returned = true
	})
	e.At(1, func() { n.Cancel(f) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !returned {
		t.Fatal("Wait did not return after cancel")
	}
}

func TestMultiPathSeriesBottleneck(t *testing.T) {
	// A flow crossing disk(55) -> nicOut(117) -> fabric(8000) -> nicIn(117)
	// runs at the disk rate.
	e := sim.New()
	n := NewNet(e)
	disk := NewLink("disk", 55)
	out := NewLink("out", 117.5)
	fab := NewLink("fab", 8000)
	in := NewLink("in", 117.5)
	f := &Flow{Links: []*Link{disk, out, fab, in}, Size: 550}
	var doneAt sim.Time
	f.OnDone = func() { doneAt = e.Now() }
	n.Start(f)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !near(doneAt, 10) {
		t.Fatalf("doneAt = %v, want 10", doneAt)
	}
	// Each link carried the full byte count (series path).
	for _, l := range []*Link{disk, out, fab, in} {
		if !near(l.Bytes(), 550) {
			t.Fatalf("link %s bytes = %v, want 550", l.Name, l.Bytes())
		}
	}
	// Tag accounting counts the flow once.
	if !near(n.TotalBytes(), 550) {
		t.Fatalf("total = %v, want 550", n.TotalBytes())
	}
}

func TestFabricContention(t *testing.T) {
	// 4 node-pairs, each NIC 100, fabric capacity 250: fabric is the
	// bottleneck; each of 4 flows gets 62.5.
	e := sim.New()
	n := NewNet(e)
	fab := NewLink("fab", 250)
	var flows []*Flow
	for i := 0; i < 4; i++ {
		out := NewLink("out", 100)
		in := NewLink("in", 100)
		f := &Flow{Links: []*Link{out, fab, in}, Size: 1e9}
		flows = append(flows, f)
		n.Start(f)
	}
	for i, f := range flows {
		if !near(f.Rate(), 62.5) {
			t.Fatalf("flow %d rate = %v, want 62.5", i, f.Rate())
		}
	}
	e.Stop()
}

// TestConservationProperty: for random flow sets, total accounted bytes
// equal the sum of completed sizes plus transferred parts of canceled flows.
func TestConservationProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e := sim.New()
		n := NewNet(e)
		links := make([]*Link, 5)
		for i := range links {
			links[i] = NewLink("l", 10+rng.Float64()*100)
		}
		var expected float64
		var canceled []*Flow
		nf := 3 + rng.Intn(8)
		for i := 0; i < nf; i++ {
			path := []*Link{links[rng.Intn(5)]}
			if rng.Intn(2) == 0 {
				path = append(path, links[rng.Intn(5)])
			}
			fl := &Flow{Links: path, Size: 1 + rng.Float64()*1000}
			if rng.Intn(4) == 0 {
				fl.MaxRate = 1 + rng.Float64()*50
			}
			start := rng.Float64() * 5
			e.At(start, func() { n.Start(fl) })
			if rng.Intn(5) == 0 {
				canceled = append(canceled, fl)
				e.At(start+rng.Float64()*2, func() { n.Cancel(fl) })
			} else {
				expected += fl.Size
			}
		}
		if err := e.Run(); err != nil {
			return false
		}
		var canceledTransferred float64
		for _, fl := range canceled {
			canceledTransferred += fl.Size - fl.Remaining()
		}
		return near(n.TotalBytes(), expected+canceledTransferred)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestMaxMinInvariants: after any allocation, (1) no link exceeds capacity,
// (2) no flow exceeds its cap, (3) every flow is bottlenecked somewhere
// (saturated link or own cap) — the defining property of max-min fairness.
func TestMaxMinInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e := sim.New()
		n := NewNet(e)
		links := make([]*Link, 4)
		for i := range links {
			links[i] = NewLink("l", 10+rng.Float64()*100)
		}
		var flows []*Flow
		for i := 0; i < 3+rng.Intn(10); i++ {
			// Random non-empty subset of links.
			var path []*Link
			for _, l := range links {
				if rng.Intn(2) == 0 {
					path = append(path, l)
				}
			}
			if len(path) == 0 {
				path = []*Link{links[0]}
			}
			fl := &Flow{Links: path, Size: 1e12}
			if rng.Intn(3) == 0 {
				fl.MaxRate = 1 + rng.Float64()*40
			}
			flows = append(flows, fl)
			n.Start(fl)
		}
		defer e.Stop()
		// (1) capacity respected
		for _, l := range links {
			var sum float64
			for _, fl := range flows {
				for _, fl2 := range fl.Links {
					if fl2 == l {
						sum += fl.Rate()
					}
				}
			}
			if sum > l.Capacity*(1+1e-9) {
				return false
			}
		}
		for _, fl := range flows {
			// (2) cap respected
			if fl.MaxRate > 0 && fl.Rate() > fl.MaxRate*(1+1e-9) {
				return false
			}
			if fl.Rate() <= 0 {
				return false
			}
			// (3) bottlenecked somewhere
			bottled := fl.MaxRate > 0 && near(fl.Rate(), fl.MaxRate)
			for _, l := range fl.Links {
				var sum float64
				maxOnLink := 0.0
				for _, other := range flows {
					for _, l2 := range other.Links {
						if l2 == l {
							sum += other.Rate()
							if other.Rate() > maxOnLink {
								maxOnLink = other.Rate()
							}
						}
					}
				}
				// Saturated link where this flow has a maximal rate.
				if near(sum, l.Capacity) && fl.Rate() >= maxOnLink-tol {
					bottled = true
				}
			}
			if !bottled {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestTagString(t *testing.T) {
	if TagMemory.String() != "memory" || TagPFS.String() != "pfs" {
		t.Fatal("tag names wrong")
	}
	if len(Tags()) != int(numTags) {
		t.Fatal("Tags() length mismatch")
	}
}

// TestTagsNoAlloc pins the satellite contract: Tags() returns the shared
// package-level slice, so metrics aggregation loops can call it freely.
func TestTagsNoAlloc(t *testing.T) {
	if allocs := testing.AllocsPerRun(100, func() {
		if len(Tags()) != NumTags {
			t.Fatal("Tags() length mismatch")
		}
	}); allocs != 0 {
		t.Fatalf("Tags() allocates %v/op, want 0", allocs)
	}
}

// TestTransparentFabricDecouples: a fabric that cannot saturate must not
// constrain anyone — each flow is bottlenecked by its own NIC pair exactly
// as if the fabric were absent.
func TestTransparentFabricDecouples(t *testing.T) {
	e := sim.New()
	n := NewNet(e)
	fab := NewLink("fab", 8000)
	var flows []*Flow
	for i := 0; i < 4; i++ {
		out := NewLink("out", 100)
		in := NewLink("in", 100)
		f := &Flow{Links: []*Link{out, fab, in}, Size: 1e9}
		flows = append(flows, f)
		n.Start(f)
	}
	for i, f := range flows {
		if !near(f.Rate(), 100) {
			t.Fatalf("flow %d rate = %v, want 100 (fabric must be transparent)", i, f.Rate())
		}
	}
	e.Stop()
}

// TestTransparentFlipRelease: when the flow departing a shared link turns
// the link transparent, the flows it was constraining must still be
// recomputed and released to their own bottlenecks.
func TestTransparentFlipRelease(t *testing.T) {
	e := sim.New()
	n := NewNet(e)
	shared := NewLink("shared", 100)
	nicA := NewLink("nicA", 60)
	nicB := NewLink("nicB", 60)
	fa := &Flow{Links: []*Link{nicA, shared}, Size: 1e9}
	fb := &Flow{Links: []*Link{nicB, shared}, Size: 1e9}
	n.Start(fa)
	n.Start(fb)
	// ubSum on shared = 60+60 = 120 > 100: opaque, classic 50/50 split.
	if !near(fa.Rate(), 50) || !near(fb.Rate(), 50) {
		t.Fatalf("rates = %v, %v, want 50, 50", fa.Rate(), fb.Rate())
	}
	n.Cancel(fa)
	// shared now has ubSum = 60 <= 100: transparent — and fb must have been
	// released to its NIC rate, not left frozen at the stale 50.
	if !near(fb.Rate(), 60) {
		t.Fatalf("rate after departure = %v, want 60", fb.Rate())
	}
	e.Stop()
}

// TestTransparentFlipConstrain is the reverse: a link that turns opaque as
// flows join must start constraining the flows already crossing it.
func TestTransparentFlipConstrain(t *testing.T) {
	e := sim.New()
	n := NewNet(e)
	shared := NewLink("shared", 100)
	var flows []*Flow
	for i := 0; i < 3; i++ {
		nic := NewLink("nic", 60)
		f := &Flow{Links: []*Link{nic, shared}, Size: 1e9}
		flows = append(flows, f)
		n.Start(f)
	}
	// 3 x 60 = 180 > 100: the shared link binds at an equal share.
	for i, f := range flows {
		if !near(f.Rate(), 100.0/3) {
			t.Fatalf("flow %d rate = %v, want %v", i, f.Rate(), 100.0/3)
		}
	}
	e.Stop()
}

// TestCappedSingletonComponent: a capped flow whose links are all
// transparent forms a component of one and runs at its cap.
func TestCappedSingletonComponent(t *testing.T) {
	e := sim.New()
	n := NewNet(e)
	fab := NewLink("fab", 8000)
	f := &Flow{Links: []*Link{fab}, Size: 1e9, MaxRate: 10}
	g := &Flow{Links: []*Link{fab}, Size: 1e9, MaxRate: 25}
	n.Start(f)
	n.Start(g)
	if !near(f.Rate(), 10) || !near(g.Rate(), 25) {
		t.Fatalf("rates = %v, %v, want 10, 25", f.Rate(), g.Rate())
	}
	e.Stop()
}

// TestRemainingSettlesToLastEvent pins the lazy-settlement query contract:
// Remaining is accurate as of the last net activity at the current instant.
func TestRemainingSettlesToLastEvent(t *testing.T) {
	e := sim.New()
	n := NewNet(e)
	l := NewLink("l", 100)
	f := &Flow{Links: []*Link{l}, Size: 1000}
	n.Start(f)
	other := NewLink("other", 100)
	e.At(2, func() {
		n.Start(&Flow{Links: []*Link{other}, Size: 1e9}) // net event at t=2
		if !near(f.Remaining(), 800) {
			t.Fatalf("Remaining = %v, want 800", f.Remaining())
		}
		if !near(l.Bytes(), 200) {
			t.Fatalf("link bytes = %v, want 200", l.Bytes())
		}
		if !near(n.BytesByTag(TagOther), 200) {
			t.Fatalf("tag bytes = %v, want 200", n.BytesByTag(TagOther))
		}
	})
	if err := e.RunUntil(5); err != nil {
		t.Fatal(err)
	}
	e.Stop()
	e.Shutdown()
}

// checkCompletionHeap verifies the completion-heap invariant and index
// bookkeeping after an operation.
func checkCompletionHeap(t *testing.T, n *Net) {
	t.Helper()
	h := n.compHeap
	for i, f := range h {
		if f.heapIdx != i {
			t.Fatalf("heapIdx mismatch at %d: %d", i, f.heapIdx)
		}
		if i > 0 {
			p := h[(i-1)/2]
			if f.compT < p.compT || (f.compT == p.compT && f.seq < p.seq) {
				t.Fatalf("heap invariant broken at %d: child (%v,%d) < parent (%v,%d)",
					i, f.compT, f.seq, p.compT, p.seq)
			}
		}
	}
}

// TestCompletionHeapInvariantProperty drives random churn — clumps of flows
// sharing links (so one recompute changes many completion keys at once)
// against a disjoint background population (so the partial-repair path runs)
// — and asserts the heap invariant after every operation. This pins the
// repair strategy in recomputeComponent: repositioning flows one at a time
// is only sound if each key is fixed before the next one changes.
func TestCompletionHeapInvariantProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e := sim.New()
		n := NewNet(e)
		// Disjoint background flows padding the heap.
		for i := 0; i < 12; i++ {
			l := NewLink("bg", 50+rng.Float64()*100)
			n.Start(&Flow{Links: []*Link{l}, Size: 1e7 + rng.Float64()*1e9})
		}
		shared := []*Link{NewLink("s1", 120), NewLink("s2", 80)}
		var live []*Flow
		for op := 0; op < 60; op++ {
			if err := e.RunUntil(e.Now() + rng.Float64()*0.5); err != nil {
				t.Fatal(err)
			}
			if rng.Intn(3) > 0 || len(live) == 0 {
				fl := &Flow{
					Links: []*Link{shared[rng.Intn(2)]},
					Size:  1e5 + rng.Float64()*1e8,
				}
				if rng.Intn(4) == 0 {
					fl.Links = append(fl.Links, shared[rng.Intn(2)])
				}
				n.Start(fl)
				live = append(live, fl)
			} else {
				i := rng.Intn(len(live))
				n.Cancel(live[i])
				live[i] = live[len(live)-1]
				live = live[:len(live)-1]
			}
			checkCompletionHeap(t, n)
		}
		e.Stop()
		e.Shutdown()
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
