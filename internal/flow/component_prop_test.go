package flow

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"testing"

	"github.com/hybridmig/hybridmig/internal/sim"
)

// This file is the property suite for the component partition detector — the
// machinery the parallel kernel's planner trusts to decide which flows can
// never interact. Randomized link/flow graphs are driven through scripted
// starts, cancels, completions, and capacity changes; after every operation
// the epoch/BFS detector (resetComponent/seedFlow/seedLinks/expandComponent,
// with its incrementally maintained transparency bounds) is compared against
// a brute-force union-find over ceilings recomputed from scratch.

// detectorComponent probes the production detector: the BFS closure from f
// over non-transparent shared links, exactly as Start/Cancel/SetCapacity
// collect it. The probe only bumps the collection epoch; it never refills.
func detectorComponent(n *Net, f *Flow) map[*Flow]bool {
	n.resetComponent()
	n.seedFlow(f)
	n.seedLinks(f.Links)
	n.expandComponent()
	set := make(map[*Flow]bool, len(n.compFlows))
	for _, g := range n.compFlows {
		set[g] = true
	}
	// Rate groups are collected as units; their members are component flows.
	for _, g := range n.compGroups {
		for _, m := range g.members {
			set[m] = true
		}
	}
	return set
}

// bruteCeiling recomputes from scratch the flow's provable rate ceiling as
// seen from link l (the mirror of Flow.ubFor, without the cached
// minCap/minCap2 state).
func bruteCeiling(f *Flow, l *Link) float64 {
	c := math.Inf(1)
	for _, o := range f.Links {
		if o != l && o.Capacity < c {
			c = o.Capacity
		}
	}
	if f.MaxRate > 0 && f.MaxRate < c {
		c = f.MaxRate
	}
	return c
}

// bruteOpaque recomputes link transparency from scratch: the link can bind
// only if the crossing flows could jointly saturate it.
func bruteOpaque(l *Link) bool {
	sum := 0.0
	for i, cnt := 0, l.crossingCount(); i < cnt; i++ {
		u := bruteCeiling(l.crossingAt(i), l)
		if math.IsInf(u, 1) {
			return true
		}
		sum += u
	}
	return sum > l.Capacity*ubMarginFactor
}

// bruteComponents partitions the active flows by union-find: two flows are
// united iff they share a link that bruteOpaque says could bind.
func bruteComponents(n *Net) map[*Flow]*Flow {
	parent := make(map[*Flow]*Flow, len(n.flows))
	for _, f := range n.flows {
		parent[f] = f
	}
	var find func(f *Flow) *Flow
	find = func(f *Flow) *Flow {
		if parent[f] != f {
			parent[f] = find(parent[f])
		}
		return parent[f]
	}
	seen := make(map[*Link]bool)
	for _, f := range n.flows {
		for _, l := range f.Links {
			if seen[l] {
				continue
			}
			seen[l] = true
			if !bruteOpaque(l) {
				continue
			}
			for i, cnt := 0, l.crossingCount(); i < cnt; i++ {
				parent[find(l.crossingAt(i))] = find(f)
			}
		}
	}
	class := make(map[*Flow]*Flow, len(parent))
	for f := range parent {
		class[f] = find(f)
	}
	return class
}

// flowNames renders a flow set for failure messages, sorted by seq.
func flowNames(set map[*Flow]bool) string {
	var fs []*Flow
	for f := range set {
		fs = append(fs, f)
	}
	sort.Slice(fs, func(i, j int) bool { return fs[i].seq < fs[j].seq })
	s := ""
	for _, f := range fs {
		s += fmt.Sprintf(" seq%d", f.seq)
	}
	return s
}

// checkPartition compares, for every active flow, the detector's BFS
// component against the brute-force union-find class.
func checkPartition(t *testing.T, n *Net, op string) {
	t.Helper()
	class := bruteComponents(n)
	for _, f := range n.flows {
		got := detectorComponent(n, f)
		want := make(map[*Flow]bool)
		for g, c := range class {
			if c == class[f] {
				want[g] = true
			}
		}
		if !got[f] {
			t.Fatalf("after %s: detector component of seq%d omits the seed flow", op, f.seq)
		}
		if len(got) != len(want) {
			t.Fatalf("after %s: component of seq%d: detector {%s } vs union-find {%s }",
				op, f.seq, flowNames(got), flowNames(want))
		}
		for g := range want {
			if !got[g] {
				t.Fatalf("after %s: component of seq%d: detector {%s } vs union-find {%s }",
					op, f.seq, flowNames(got), flowNames(want))
			}
		}
	}
	// The incrementally maintained transparency bound must agree with the
	// from-scratch one; ubMarginFactor absorbs the incremental float drift.
	seen := make(map[*Link]bool)
	for _, f := range n.flows {
		for _, l := range f.Links {
			if seen[l] {
				continue
			}
			seen[l] = true
			if got, want := !l.transparent(), bruteOpaque(l); got != want {
				t.Fatalf("after %s: link %s opaque=%t, from-scratch %t (ubSum=%v ubInf=%d cap=%v)",
					op, l.Name, got, want, l.ubSum, l.ubInf, l.Capacity)
			}
		}
	}
}

// TestComponentDetectorMatchesBruteForce drives randomized graphs through
// starts, cancels, capacity changes, and time advances (completions), and
// checks the partition after every operation.
func TestComponentDetectorMatchesBruteForce(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			e := sim.New()
			n := NewNet(e)

			nLinks := 4 + rng.Intn(7)
			links := make([]*Link, nLinks)
			for i := range links {
				links[i] = NewLink(fmt.Sprintf("l%d", i), (50+150*rng.Float64())*1e6)
			}

			ops := 120
			for op := 0; op < ops; op++ {
				var desc string
				switch k := rng.Intn(10); {
				case k < 5: // start a flow
					f := &Flow{Tag: TagStoragePush}
					if rng.Intn(8) == 0 {
						// Linkless but rate-capped: a component of one.
						f.MaxRate = (10 + 40*rng.Float64()) * 1e6
					} else {
						for _, i := range rng.Perm(nLinks)[:1+rng.Intn(3)] {
							f.Links = append(f.Links, links[i])
						}
						if rng.Intn(3) == 0 {
							f.MaxRate = (10 + 90*rng.Float64()) * 1e6
						}
					}
					if rng.Intn(3) == 0 {
						f.Size = 1e6 + rng.Float64()*1e9 // completes during advances
					} else {
						f.Size = 1e12 // effectively long-lived
					}
					n.Start(f)
					desc = fmt.Sprintf("op%d start seq%d", op, f.seq)
				case k < 7: // cancel a random active flow
					if len(n.flows) == 0 {
						continue
					}
					f := n.flows[rng.Intn(len(n.flows))]
					desc = fmt.Sprintf("op%d cancel seq%d", op, f.seq)
					n.Cancel(f)
				case k < 9: // change a link capacity
					l := links[rng.Intn(nLinks)]
					c := (50 + 150*rng.Float64()) * 1e6
					desc = fmt.Sprintf("op%d setcap %s %.0f", op, l.Name, c)
					n.SetCapacity(l, c)
				default: // advance simulated time; completions fire
					fired := false
					e.After(0.5+rng.Float64()*5, func() { fired = true })
					for !fired && e.Step() {
					}
					desc = fmt.Sprintf("op%d advance to %.3f", op, e.Now())
				}
				checkPartition(t, n, desc)
			}
			e.Stop()
		})
	}
}
