package scenario

import (
	"github.com/hybridmig/hybridmig/internal/cluster"
	"github.com/hybridmig/hybridmig/internal/params"
)

// Scale selects the run size of a scenario or experiment.
type Scale int

// Available scales.
const (
	// ScaleSmall preserves every ratio of the paper's testbed at roughly
	// 1/16 size, so full scenario suites double as fast regression tests.
	ScaleSmall Scale = iota
	// ScalePaper reproduces the paper's Section 5 parameters (4 GB images
	// and RAM, 100-second warm-up, up to 30 concurrent migrations).
	ScalePaper
)

func (s Scale) String() string {
	if s == ScalePaper {
		return "paper"
	}
	return "small"
}

// Setup bundles the per-scale defaults one scenario or experiment run needs:
// the cluster configuration plus the paper's workload parameters and timing
// constants at that scale.
type Setup struct {
	Scale   Scale
	Cluster cluster.Config
	IOR     params.IOR
	AsyncWR params.AsyncWR
	CM1     params.CM1
	Warmup  float64
	Gap     float64 // delay between successive migrations (Fig. 5)
	// Horizon is the fixed wall-clock window for degradation measurements
	// (Fig. 4c): computational potential is compared at this absolute time.
	Horizon float64
}

// NewSetup returns the configuration for a scale and node count.
func NewSetup(s Scale, nodes int) Setup {
	if s == ScalePaper {
		cfg := cluster.DefaultConfig(nodes)
		return Setup{
			Scale:   s,
			Cluster: cfg,
			IOR:     params.DefaultIOR(),
			AsyncWR: params.DefaultAsyncWR(),
			CM1:     defaultCM1(),
			Warmup:  cfg.Experiment.WarmupDelay,
			Gap:     cfg.Experiment.SuccessiveGap,
			Horizon: 180,
		}
	}
	cfg := cluster.SmallConfig(nodes)
	return Setup{
		Scale:   s,
		Cluster: cfg,
		IOR:     params.IOR{Iterations: 40, FileSize: 64 * params.MB, BlockSize: 256 * params.KB},
		AsyncWR: params.AsyncWR{
			Iterations:      90,
			DataPerIter:     2 * params.MB,
			ComputeTime:     0.35,
			MemoryDirtyRate: 8 * params.MB,
			WorkingSet:      16 * params.MB,
		},
		CM1: params.CM1{
			Procs: 16, GridX: 4, GridY: 4,
			Intervals:       8,
			ComputePerIntvl: 6,
			OutputSize:      12 * params.MB,
			HaloBytes:       1 * params.MB,
			MemoryDirtyRate: 10 * params.MB,
			WorkingSet:      48 * params.MB,
		},
		Warmup:  8,
		Gap:     8,
		Horizon: 20,
	}
}

// defaultCM1 adapts params.DefaultCM1 for convergence realism (see
// DESIGN.md: the stencil dirty rate must sit below the NIC rate or no
// pre-copy implementation can ever converge).
func defaultCM1() params.CM1 {
	p := params.DefaultCM1()
	p.Intervals = 12
	p.MemoryDirtyRate = 60 * params.MB
	return p
}
