package scenario

import (
	"errors"
	"strings"
	"testing"

	"github.com/hybridmig/hybridmig/internal/cluster"
	"github.com/hybridmig/hybridmig/internal/sched"
	"github.com/hybridmig/hybridmig/internal/trace"
)

// faulty builds the canonical degraded-mode scenario: one IOR VM whose
// migration is killed by a destination crash mid-flight, with a retry
// budget that lets it complete on the second attempt.
func faulty(crashAt float64, opts ...Option) *Scenario {
	set := NewSetup(ScaleSmall, 4)
	base := []Option{WithConfig(set.Cluster),
		WithRetry(RetrySpec{MaxAttempts: 3, Backoff: 1}),
		WithFaults(FaultSpec{Kind: FaultDestCrash, VM: "vm0", At: crashAt}),
	}
	return New(append(base, opts...)...).
		AddVM(VMSpec{Name: "vm0", Node: 0, Approach: cluster.OurApproach,
			Workload: IOR(&set.IOR)}).
		MigrateAt("vm0", 1, set.Warmup)
}

// TestDestCrashMidMigrationCompletesViaRetry is the acceptance scenario: an
// injected destination crash mid-migration aborts the first attempt, the
// retry completes, and the Result reports retries > 0 and aborted bytes > 0.
func TestDestCrashMidMigrationCompletesViaRetry(t *testing.T) {
	// Warm-up is 8 s at small scale; the migration takes several seconds, so
	// a crash at 9 s lands mid-flight.
	res, err := faulty(9).Run()
	if err != nil {
		t.Fatal(err)
	}
	vm := res.VM("vm0")
	if !vm.Migrated {
		t.Fatal("VM never completed its migration")
	}
	if vm.Node != 1 {
		t.Fatalf("VM ended on node %d, want 1", vm.Node)
	}
	if vm.Retries == 0 {
		t.Fatal("Result reports zero retries")
	}
	if vm.Aborts == 0 || vm.AbortedBytes <= 0 {
		t.Fatalf("aborts=%d abortedBytes=%v, want both positive", vm.Aborts, vm.AbortedBytes)
	}
	if res.TotalRetries() != vm.Retries || res.TotalAbortedBytes() != vm.AbortedBytes {
		t.Fatal("result aggregates disagree with the per-VM record")
	}
}

// TestFaultObserverEvents checks the fault-path trace contract: the injected
// fault, the abort, and the retry all reach observers in time order.
func TestFaultObserverEvents(t *testing.T) {
	var events []trace.Event
	rec := trace.ObserverFunc(func(e trace.Event) { events = append(events, e) })
	res, err := faulty(9, WithObserver(rec)).Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.VM("vm0").Retries == 0 {
		t.Fatal("scenario did not exercise the retry path")
	}
	var sawFault, sawAbort, sawRetry bool
	last := -1.0
	for _, e := range events {
		if e.Time < last {
			t.Fatalf("event %v out of time order", e)
		}
		last = e.Time
		switch e.Kind {
		case trace.KindFaultInjected:
			sawFault = true
			if e.Detail != "dest-crash" || e.VM != "vm0" {
				t.Fatalf("fault event %+v malformed", e)
			}
			if sawAbort || sawRetry {
				t.Fatal("fault event after its own consequences")
			}
		case trace.KindMigrationAborted:
			sawAbort = true
			if !sawFault {
				t.Fatal("abort before the fault fired")
			}
			if e.Value <= 0 {
				t.Fatalf("abort event carries no wasted bytes: %+v", e)
			}
		case trace.KindMigrationRetried:
			sawRetry = true
			if !sawAbort {
				t.Fatal("retry before any abort")
			}
			if e.Round != 2 {
				t.Fatalf("retry attempt = %d, want 2", e.Round)
			}
		}
	}
	if !sawFault || !sawAbort || !sawRetry {
		t.Fatalf("missing fault events: fault=%v abort=%v retry=%v", sawFault, sawAbort, sawRetry)
	}
}

// TestExhaustedRetriesAreTerminal: a crash on every attempt exhausts the
// budget and the VM stays at the source, reported as Exhausted.
func TestExhaustedRetriesAreTerminal(t *testing.T) {
	set := NewSetup(ScaleSmall, 4)
	// Attempt 1 runs from the 8 s warm-up and is crashed at 9; the retry
	// starts at 10 after the 1 s backoff and is crashed at 11, exhausting
	// the two-attempt budget.
	s := New(WithConfig(set.Cluster),
		WithRetry(RetrySpec{MaxAttempts: 2, Backoff: 1}),
		WithFaults(
			FaultSpec{Kind: FaultDestCrash, VM: "vm0", At: 9},
			FaultSpec{Kind: FaultDeadline, VM: "vm0", At: 11},
		)).
		AddVM(VMSpec{Name: "vm0", Node: 0, Approach: cluster.OurApproach,
			Workload: IOR(&set.IOR)}).
		MigrateAt("vm0", 1, set.Warmup)
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	vm := res.VM("vm0")
	if vm.Migrated {
		t.Fatal("VM migrated despite a crash on every attempt")
	}
	if !vm.Exhausted {
		t.Fatal("exhausted retry budget not reported")
	}
	if vm.Node != 0 {
		t.Fatalf("VM ended on node %d, want source 0", vm.Node)
	}
	if vm.Aborts != 2 {
		t.Fatalf("aborts = %d, want 2 (both attempts)", vm.Aborts)
	}
}

// TestBackgroundTrafficSlowsMigration: cross traffic on the migration path
// must show up as background bytes and a longer migration.
func TestBackgroundTrafficSlowsMigration(t *testing.T) {
	set := NewSetup(ScaleSmall, 4)
	base := New(WithConfig(set.Cluster)).
		AddVM(VMSpec{Name: "vm0", Node: 0, Approach: cluster.OurApproach,
			Workload: IOR(&set.IOR)}).
		MigrateAt("vm0", 1, set.Warmup)
	clean, err := base.Run()
	if err != nil {
		t.Fatal(err)
	}

	noisy := New(WithConfig(set.Cluster),
		WithBackgroundTraffic(TrafficSpec{Src: 2, Dst: 1, Start: 0, Stop: 60})).
		AddVM(VMSpec{Name: "vm0", Node: 0, Approach: cluster.OurApproach,
			Workload: IOR(&set.IOR)}).
		MigrateAt("vm0", 1, set.Warmup)
	res, err := noisy.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Traffic["background"] <= 0 {
		t.Fatal("no background traffic accounted")
	}
	if res.VM("vm0").MigrationTime <= clean.VM("vm0").MigrationTime {
		t.Fatalf("migration under cross traffic (%.2f s) not slower than clean (%.2f s)",
			res.VM("vm0").MigrationTime, clean.VM("vm0").MigrationTime)
	}
}

// TestLinkDegradeSlowsMigration: halving the destination NIC during the
// migration window must lengthen the migration, and the link must recover.
func TestLinkDegradeSlowsMigration(t *testing.T) {
	set := NewSetup(ScaleSmall, 4)
	clean, err := New(WithConfig(set.Cluster)).
		AddVM(VMSpec{Name: "vm0", Node: 0, Approach: cluster.OurApproach,
			Workload: IOR(&set.IOR)}).
		MigrateAt("vm0", 1, set.Warmup).Run()
	if err != nil {
		t.Fatal(err)
	}
	res, err := New(WithConfig(set.Cluster),
		WithFaults(FaultSpec{Kind: FaultLinkDegrade, Node: 1, At: 8, Factor: 0.25, Duration: 20})).
		AddVM(VMSpec{Name: "vm0", Node: 0, Approach: cluster.OurApproach,
			Workload: IOR(&set.IOR)}).
		MigrateAt("vm0", 1, set.Warmup).Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.VM("vm0").MigrationTime <= clean.VM("vm0").MigrationTime {
		t.Fatalf("migration over degraded link (%.2f s) not slower than clean (%.2f s)",
			res.VM("vm0").MigrationTime, clean.VM("vm0").MigrationTime)
	}
}

// TestFaultValidation exercises every new validation error path.
func TestFaultValidation(t *testing.T) {
	set := NewSetup(ScaleSmall, 4)
	vm := VMSpec{Name: "a", Node: 0, Approach: cluster.OurApproach}
	cases := []struct {
		name string
		s    *Scenario
		want string
	}{
		{"migration past horizon", New(WithConfig(set.Cluster), WithHorizon(2)).
			AddVM(vm).MigrateAt("a", 1, 5), "past the horizon"},
		{"campaign past horizon", New(WithConfig(set.Cluster), WithHorizon(2)).
			AddVM(vm).Campaign(5, sched.Serial{}, Step{VM: "a", Dst: 1}), "past the horizon"},
		{"fault past horizon", New(WithConfig(set.Cluster), WithHorizon(2),
			WithFaults(FaultSpec{Kind: FaultDestCrash, VM: "a", At: 5})).
			AddVM(vm).MigrateAt("a", 1, 1), "past the horizon"},
		{"fault unknown VM", New(WithConfig(set.Cluster),
			WithFaults(FaultSpec{Kind: FaultDestCrash, VM: "ghost", At: 1})).
			AddVM(vm).MigrateAt("a", 1, 1), "unknown VM"},
		{"degrade restore past horizon", New(WithConfig(set.Cluster), WithHorizon(10),
			WithFaults(FaultSpec{Kind: FaultLinkDegrade, Node: 1, At: 5, Factor: 0.5, Duration: 100})).
			AddVM(vm).MigrateAt("a", 1, 1), "past the horizon"},
		{"degrade bad factor", New(WithConfig(set.Cluster),
			WithFaults(FaultSpec{Kind: FaultLinkDegrade, Node: 1, At: 1, Factor: 2, Duration: 1})).
			AddVM(vm).MigrateAt("a", 1, 1), "outside [0,1]"},
		{"degrade no duration", New(WithConfig(set.Cluster),
			WithFaults(FaultSpec{Kind: FaultLinkDegrade, Node: 1, At: 1, Factor: 0.5})).
			AddVM(vm).MigrateAt("a", 1, 1), "positive duration"},
		{"degrade node out of range", New(WithConfig(set.Cluster),
			WithFaults(FaultSpec{Kind: FaultLinkDegrade, Node: 99, At: 1, Factor: 0.5, Duration: 1})).
			AddVM(vm).MigrateAt("a", 1, 1), "out of range"},
		{"fault negative time", New(WithConfig(set.Cluster),
			WithFaults(FaultSpec{Kind: FaultDestCrash, VM: "a", At: -1})).
			AddVM(vm).MigrateAt("a", 1, 1), "negative time"},
		{"fault unknown kind", New(WithConfig(set.Cluster),
			WithFaults(FaultSpec{Kind: FaultKind(99), At: 1})).
			AddVM(vm).MigrateAt("a", 1, 1), "unknown kind"},
		{"traffic same node", New(WithConfig(set.Cluster),
			WithBackgroundTraffic(TrafficSpec{Src: 1, Dst: 1, Start: 0, Stop: 5})).
			AddVM(vm).MigrateAt("a", 1, 1), "distinct nodes"},
		{"traffic empty window", New(WithConfig(set.Cluster),
			WithBackgroundTraffic(TrafficSpec{Src: 0, Dst: 1, Start: 5, Stop: 5})).
			AddVM(vm).MigrateAt("a", 1, 1), "positive span"},
		{"traffic stop past horizon", New(WithConfig(set.Cluster), WithHorizon(10),
			WithBackgroundTraffic(TrafficSpec{Src: 0, Dst: 1, Start: 0, Stop: 50})).
			AddVM(vm).MigrateAt("a", 1, 1), "past the horizon"},
		{"traffic node out of range", New(WithConfig(set.Cluster),
			WithBackgroundTraffic(TrafficSpec{Src: 0, Dst: 42, Start: 0, Stop: 5})).
			AddVM(vm).MigrateAt("a", 1, 1), "out of range"},
		{"traffic negative rate", New(WithConfig(set.Cluster),
			WithBackgroundTraffic(TrafficSpec{Src: 0, Dst: 1, Start: 0, Stop: 5, Rate: -1})).
			AddVM(vm).MigrateAt("a", 1, 1), "negative rate"},
		{"negative retry", New(WithConfig(set.Cluster), WithRetry(RetrySpec{MaxAttempts: -1})).
			AddVM(vm).MigrateAt("a", 1, 1), "negative"},
	}
	for _, c := range cases {
		res, err := c.s.Run()
		if err == nil {
			t.Errorf("%s: no error", c.name)
			continue
		}
		if !errors.Is(err, ErrInvalidScenario) {
			t.Errorf("%s: error %v does not wrap ErrInvalidScenario", c.name, err)
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
		if res != nil {
			t.Errorf("%s: validation failure returned a result", c.name)
		}
	}
}

// TestCampaignWithFaultsRetries: a campaign under a crash fault records the
// retry in the campaign aggregates too.
func TestCampaignWithFaultsRetries(t *testing.T) {
	set := NewSetup(ScaleSmall, 6)
	s := New(WithConfig(set.Cluster),
		WithRetry(RetrySpec{MaxAttempts: 3, Backoff: 1}),
		WithFaults(FaultSpec{Kind: FaultDestCrash, VM: "vm0", At: 9}))
	for i, name := range []string{"vm0", "vm1"} {
		s.AddVM(VMSpec{Name: name, Node: i, Approach: cluster.OurApproach,
			Workload: IOR(&set.IOR)})
	}
	s.Campaign(set.Warmup, sched.AllAtOnce{}, Step{VM: "vm0", Dst: 2}, Step{VM: "vm1", Dst: 3})
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	c := res.Campaigns[0]
	if c.Retries != 1 {
		t.Fatalf("campaign retries = %d, want 1", c.Retries)
	}
	if c.WastedBytes <= 0 {
		t.Fatal("campaign wasted bytes not recorded")
	}
	if !res.VM("vm0").Migrated || !res.VM("vm1").Migrated {
		t.Fatal("campaign left a VM unmigrated")
	}
}

// TestOverlappingDegradeWindowsRejected: an inner degradation window would
// restore the link mid-way through an outer one; the scenario must refuse.
func TestOverlappingDegradeWindowsRejected(t *testing.T) {
	set := NewSetup(ScaleSmall, 4)
	vm := VMSpec{Name: "a", Node: 0, Approach: cluster.OurApproach}
	_, err := New(WithConfig(set.Cluster),
		WithFaults(
			FaultSpec{Kind: FaultLinkDegrade, Node: 1, At: 10, Factor: 0.5, Duration: 20},
			FaultSpec{Kind: FaultLinkDegrade, Node: 1, At: 15, Factor: 0.1, Duration: 5},
		)).
		AddVM(vm).MigrateAt("a", 1, 1).Run()
	if !errors.Is(err, ErrInvalidScenario) || !strings.Contains(err.Error(), "overlapping") {
		t.Fatalf("overlapping degrade windows not rejected: %v", err)
	}
	// Same windows on different links are fine.
	_, err = New(WithConfig(set.Cluster),
		WithFaults(
			FaultSpec{Kind: FaultLinkDegrade, Node: 1, At: 10, Factor: 0.5, Duration: 5},
			FaultSpec{Kind: FaultLinkDegrade, Node: 2, At: 10, Factor: 0.5, Duration: 5},
			FaultSpec{Kind: FaultFabricDegrade, At: 10, Factor: 0.5, Duration: 5},
		)).
		AddVM(vm).MigrateAt("a", 1, 1).Run()
	if err != nil {
		t.Fatalf("non-overlapping windows rejected: %v", err)
	}
}
