package scenario

import (
	"fmt"
	"math"
	"math/rand"
	"os"
	"reflect"
	"testing"

	"github.com/hybridmig/hybridmig/internal/cluster"
	"github.com/hybridmig/hybridmig/internal/params"
	"github.com/hybridmig/hybridmig/internal/sched"
)

// This file is the differential serial/parallel equivalence suite: every
// scenario family the repo exercises — handcrafted multi-component runs with
// faults, traffic and retries; the randomized invariant harness; fallback
// scenarios — is run through both kernels and the Results are compared field
// by field. The tolerance is relative 1e-6; in practice per-VM measurements
// are bit-identical and only summed traffic counters differ by association.

// equivTol is the relative tolerance of the field-wise comparison.
const equivTol = 1e-6

// envParallel appends WithParallel when HYBRIDMIG_PARALLEL is set, so CI can
// re-run the existing seeded suites (random invariants, strategy
// conformance) against the parallel kernel without duplicating them.
func envParallel(opts []Option) []Option {
	if os.Getenv("HYBRIDMIG_PARALLEL") != "" {
		opts = append(opts, WithParallel(4))
	}
	return opts
}

// floatsEquivalent reports a ≈ b within relative tolerance equivTol.
func floatsEquivalent(a, b float64) bool {
	if a == b {
		return true
	}
	return math.Abs(a-b) <= equivTol*math.Max(math.Abs(a), math.Abs(b))
}

// diffStructs walks two values of the same type and reports every leaf field
// where they diverge: floats compared at equivTol, everything else exactly.
func diffStructs(t *testing.T, path string, a, b reflect.Value) {
	t.Helper()
	switch a.Kind() {
	case reflect.Float64, reflect.Float32:
		if !floatsEquivalent(a.Float(), b.Float()) {
			t.Errorf("%s: serial %x parallel %x", path, a.Float(), b.Float())
		}
	case reflect.Struct:
		for i := 0; i < a.NumField(); i++ {
			diffStructs(t, path+"."+a.Type().Field(i).Name, a.Field(i), b.Field(i))
		}
	case reflect.Slice, reflect.Array:
		if a.Len() != b.Len() {
			t.Errorf("%s: length %d vs %d", path, a.Len(), b.Len())
			return
		}
		for i := 0; i < a.Len(); i++ {
			diffStructs(t, fmt.Sprintf("%s[%d]", path, i), a.Index(i), b.Index(i))
		}
	default:
		if !reflect.DeepEqual(a.Interface(), b.Interface()) {
			t.Errorf("%s: serial %v parallel %v", path, a.Interface(), b.Interface())
		}
	}
}

// compareResults asserts the parallel Result matches the serial one field by
// field. SeedCapture and Config are compared structurally elsewhere; the
// capture is a hex rendering of exactly the fields compared here.
func compareResults(t *testing.T, serial, parallel *Result) {
	t.Helper()
	if !floatsEquivalent(serial.Clock, parallel.Clock) {
		t.Errorf("Clock: serial %x parallel %x", serial.Clock, parallel.Clock)
	}
	diffStructs(t, "VMs", reflect.ValueOf(serial.VMs), reflect.ValueOf(parallel.VMs))
	if len(serial.Campaigns) != len(parallel.Campaigns) {
		t.Errorf("Campaigns: %d vs %d", len(serial.Campaigns), len(parallel.Campaigns))
	}
	if (serial.CM1 == nil) != (parallel.CM1 == nil) {
		t.Errorf("CM1 presence: %v vs %v", serial.CM1 != nil, parallel.CM1 != nil)
	}
	for tag, sv := range serial.Traffic {
		if pv, ok := parallel.Traffic[tag]; !ok || !floatsEquivalent(sv, pv) {
			t.Errorf("Traffic[%s]: serial %x parallel %x (present=%t)", tag, sv, pv, ok)
		}
	}
	for tag := range parallel.Traffic {
		if _, ok := serial.Traffic[tag]; !ok {
			t.Errorf("Traffic[%s]: parallel-only tag", tag)
		}
	}
}

// parallelRandomScenario builds one preseeded, component-decomposable
// scenario from the seed: several disjoint node pairs, each with VMs, a
// timed migration plan, intra-pair cross traffic, and link/crash faults;
// with probability ~1/2 a global fabric-degrade fault exercises the coupled
// (barrier) path of the sharded runner. The same seed always builds the same
// scenario; parallel selects the kernel.
func parallelRandomScenario(seed int64, parallel bool) *Scenario {
	rng := rand.New(rand.NewSource(seed))
	pairs := 3 + rng.Intn(3)
	nodes := 2 * pairs
	set := NewSetup(ScaleSmall, nodes)
	// Keep the switch fabric transparent even under a factor-0.5 degrade, so
	// the planner's headroom test admits the decomposition.
	set.Cluster.Testbed.FabricBandwidth = 4 * float64(nodes) * set.Cluster.Testbed.NICBandwidth

	retry := RetrySpec{MaxAttempts: 2 + rng.Intn(2), Backoff: 0.5 + rng.Float64()}
	opts := []Option{
		WithConfig(set.Cluster), WithPreseededImages(), WithSeedCapture(), WithRetry(retry),
	}
	if parallel {
		opts = append(opts, WithParallel(4))
	}

	approaches := []cluster.Approach{cluster.OurApproach, cluster.Mirror, cluster.Postcopy}
	warmup := 2 + rng.Float64()*2
	type mig struct {
		vm  string
		dst int
		at  float64
	}
	var vms []VMSpec
	var migs []mig
	var faults []FaultSpec
	var traffic []TrafficSpec
	for p := 0; p < pairs; p++ {
		src, dst := 2*p, 2*p+1
		nVMs := 1 + rng.Intn(2)
		for v := 0; v < nVMs; v++ {
			name := fmt.Sprintf("vm%d-%d", p, v)
			var wl WorkloadSpec
			switch rng.Intn(3) {
			case 0:
				wl = Rewrite(nil)
			case 1:
				p := set.IOR
				p.Iterations = 6 + rng.Intn(8)
				wl = IOR(&p)
			}
			vms = append(vms, VMSpec{
				Name: name, Node: src,
				Approach: approaches[rng.Intn(len(approaches))],
				Workload: wl,
			})
			migs = append(migs, mig{vm: name, dst: dst, at: warmup + rng.Float64()*4})
			if rng.Intn(3) == 0 {
				faults = append(faults, FaultSpec{Kind: FaultDestCrash, VM: name,
					At: warmup + rng.Float64()*5})
			}
		}
		if rng.Intn(2) == 0 {
			traffic = append(traffic, TrafficSpec{
				Src: src, Dst: dst, Start: rng.Float64() * 2,
				Stop: 8 + rng.Float64()*10, Rate: float64(10+rng.Intn(30)) * 1e6,
			})
		}
		if rng.Intn(3) == 0 {
			faults = append(faults, FaultSpec{Kind: FaultLinkDegrade, Node: dst,
				At: warmup + rng.Float64()*2, Factor: 0.3 + rng.Float64()*0.5,
				Duration: 1 + rng.Float64()*3})
		}
	}
	if rng.Intn(2) == 0 {
		faults = append(faults, FaultSpec{Kind: FaultFabricDegrade,
			At: warmup + rng.Float64()*2, Factor: 0.5, Duration: 2 + rng.Float64()*3})
	}
	if len(faults) > 0 {
		opts = append(opts, WithFaults(faults...))
	}
	if len(traffic) > 0 {
		opts = append(opts, WithBackgroundTraffic(traffic...))
	}
	s := New(opts...)
	for _, v := range vms {
		s.AddVM(v)
	}
	for _, m := range migs {
		s.MigrateAt(m.vm, m.dst, m.at)
	}
	return s
}

// TestParallelEquivalenceRandom is the core differential harness: seeded
// multi-component scenarios run through both kernels, Results compared field
// by field, and the plan inspected to prove the parallel run actually
// sharded (no vacuous passes through the serial fallback).
func TestParallelEquivalenceRandom(t *testing.T) {
	for seed := int64(1); seed <= 12; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			serial := parallelRandomScenario(seed, false)
			sres, serr := serial.Run()
			if serr != nil {
				t.Fatalf("serial: %v", serr)
			}

			par := parallelRandomScenario(seed, true)
			cfg, _, _, err := par.resolve()
			if err != nil {
				t.Fatalf("resolve: %v", err)
			}
			plan := par.planPartition(cfg)
			if plan == nil {
				t.Fatalf("seed %d: planner fell back to serial on a decomposable scenario", seed)
			}
			if len(plan.shards) < 2 {
				t.Fatalf("seed %d: plan has %d shards, want >= 2", seed, len(plan.shards))
			}
			pres, perr := par.Run()
			if perr != nil {
				t.Fatalf("parallel: %v", perr)
			}
			compareResults(t, sres, pres)
		})
	}
}

// TestParallelEquivalenceInvariantHarness runs the existing randomized
// invariant scenarios (campaigns, overlapping node use, every registered
// strategy) under WithParallel: these scenarios are not decomposable, so the
// planner must fall back and the runs must stay bit-identical to serial —
// the "-parallel on a non-shardable scenario changes nothing" contract.
func TestParallelEquivalenceInvariantHarness(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			serial, _ := randomScenario(seed)
			sres, serr := serial.Run()
			if serr != nil {
				t.Fatalf("serial: %v", serr)
			}
			par, _ := randomScenario(seed)
			par.opt.parallel = true
			par.opt.workers = 4
			pres, perr := par.Run()
			if perr != nil {
				t.Fatalf("parallel: %v", perr)
			}
			if sres.SeedCapture != pres.SeedCapture {
				t.Fatalf("fallback not bit-identical:\n--- serial\n%s\n--- parallel\n%s",
					sres.SeedCapture, pres.SeedCapture)
			}
		})
	}
}

// TestParallelPreseededSemantics pins what preseeding itself changes: a
// preseeded migration never touches the repository (no repo traffic, no
// prefetch) yet still completes with the full modified set transferred.
func TestParallelPreseededSemantics(t *testing.T) {
	build := func(pre bool) *Result {
		opts := []Option{WithNodes(4)}
		if pre {
			opts = append(opts, WithPreseededImages())
		}
		s := New(opts...).
			AddVM(VMSpec{Name: "vm0", Node: 0, Approach: cluster.OurApproach, Workload: Rewrite(nil)}).
			MigrateAt("vm0", 1, 3)
		res, err := s.Run()
		if err != nil {
			t.Fatalf("pre=%t: %v", pre, err)
		}
		return res
	}
	pre := build(true)
	if !pre.VMs[0].Migrated {
		t.Fatal("preseeded VM did not migrate")
	}
	if got := pre.Traffic["repo"]; got != 0 {
		t.Errorf("preseeded run moved %v repo bytes, want 0", got)
	}
	if got := pre.VMs[0].Core.PrefetchBytes; got != 0 {
		t.Errorf("preseeded run prefetched %v bytes, want 0", got)
	}
	if pre.VMs[0].Core.PushedBytes+pre.VMs[0].Core.PulledBytes+pre.VMs[0].Core.OnDemandBytes <= 0 {
		t.Error("preseeded migration transferred no modified data")
	}
	plain := build(false)
	if plain.Traffic["repo"] <= 0 {
		t.Error("non-preseeded run touched no repo bytes; preseed comparison is vacuous")
	}
}

// TestParallelPlannerFallbacks pins each planner veto: campaigns, CM1,
// shared-storage strategies, non-preseeded images, a saturable fabric, and
// single-component scenarios all return a nil plan.
func TestParallelPlannerFallbacks(t *testing.T) {
	base := func(extra ...Option) *Scenario {
		opts := append([]Option{WithNodes(4), WithPreseededImages(), WithParallel(2)}, extra...)
		return New(opts...).
			AddVM(VMSpec{Name: "a", Node: 0, Approach: cluster.OurApproach}).
			AddVM(VMSpec{Name: "b", Node: 2, Approach: cluster.OurApproach}).
			MigrateAt("a", 1, 1).MigrateAt("b", 3, 1)
	}
	expectPlan := func(t *testing.T, s *Scenario, want bool) {
		t.Helper()
		cfg, _, _, err := s.resolve()
		if err != nil {
			t.Fatalf("resolve: %v", err)
		}
		if got := s.planPartition(cfg) != nil; got != want {
			t.Errorf("planPartition = %t, want %t", got, want)
		}
	}

	t.Run("decomposable", func(t *testing.T) { expectPlan(t, base(), true) })
	t.Run("shared-storage", func(t *testing.T) {
		s := New(WithNodes(4), WithPreseededImages(), WithParallel(2)).
			AddVM(VMSpec{Name: "a", Node: 0, Approach: cluster.Precopy}).
			AddVM(VMSpec{Name: "b", Node: 2, Approach: cluster.OurApproach}).
			MigrateAt("a", 1, 1).MigrateAt("b", 3, 1)
		expectPlan(t, s, false)
	})
	t.Run("not-preseeded", func(t *testing.T) {
		s := New(WithNodes(4), WithParallel(2)).
			AddVM(VMSpec{Name: "a", Node: 0, Approach: cluster.OurApproach}).
			AddVM(VMSpec{Name: "b", Node: 2, Approach: cluster.OurApproach}).
			MigrateAt("a", 1, 1).MigrateAt("b", 3, 1)
		expectPlan(t, s, false)
	})
	t.Run("campaign", func(t *testing.T) {
		s := base()
		s.Campaign(2, sched.AllAtOnce{}, Step{VM: "a", Dst: 1})
		expectPlan(t, s, false)
	})
	t.Run("saturable-fabric", func(t *testing.T) {
		set := NewSetup(ScaleSmall, 4)
		set.Cluster.Testbed.FabricBandwidth = 2 * set.Cluster.Testbed.NICBandwidth
		expectPlan(t, base(WithConfig(set.Cluster)), false)
	})
	t.Run("fabric-blackout", func(t *testing.T) {
		// Factor 0 zeroes the headroom bound, so any fabric-degrade blackout
		// forces the serial kernel.
		expectPlan(t, base(WithFaults(FaultSpec{
			Kind: FaultFabricDegrade, At: 1, Factor: 0, Duration: 1})), false)
	})
	t.Run("single-component", func(t *testing.T) {
		s := New(WithNodes(4), WithPreseededImages(), WithParallel(2)).
			AddVM(VMSpec{Name: "a", Node: 0, Approach: cluster.OurApproach}).
			AddVM(VMSpec{Name: "b", Node: 2, Approach: cluster.OurApproach}).
			MigrateAt("a", 1, 1).MigrateAt("b", 1, 2) // shared destination couples the pairs
		expectPlan(t, s, false)
	})
}

// fabricHeadroom recomputes the planner's transparency bound for the
// scenario's scale, for use in test setup sanity checks.
func fabricHeadroom(cfg cluster.Config) float64 {
	return cfg.Testbed.FabricBandwidth / (float64(cfg.Nodes) * cfg.Testbed.NICBandwidth)
}

var _ = fabricHeadroom
var _ params.Testbed
