package scenario

import (
	"fmt"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"github.com/hybridmig/hybridmig/internal/cluster"
	"github.com/hybridmig/hybridmig/internal/fabric"
	"github.com/hybridmig/hybridmig/internal/flow"
	"github.com/hybridmig/hybridmig/internal/metrics"
	"github.com/hybridmig/hybridmig/internal/sim"
	"github.com/hybridmig/hybridmig/internal/strategy"
	"github.com/hybridmig/hybridmig/internal/trace"
)

// This file is the scenario half of the component-parallel kernel
// (WithParallel): a partition planner that proves — conservatively — that a
// scenario decomposes into independent fabric components, a sharded runner
// that simulates each component on its own sim.Engine via sim.ShardSet, and
// a deterministic merge of the per-shard Results.
//
// The planner's contract is soundness, not completeness: whenever it returns
// a plan, the sharded run's Result agrees with the serial kernel field by
// field; whenever it cannot prove independence it returns nil and Run falls
// back to the serial kernel. The differential equivalence suite
// (parallel_equiv_test.go) pins the first half of that contract.

// shardPlan is one connected component of the scenario: the global node ids
// it owns (ascending; the position is the component-local node index) and
// the VMs, migrations, faults and traffic assigned to it, pre-remapped to
// local node indices.
type shardPlan struct {
	nodes      []int
	local      map[int]int // global node id -> local index
	vms        []int       // global VM indices, ascending declaration order
	migrations []Migration
	faults     []FaultSpec
	traffic    []TrafficSpec
}

// partitionPlan is the full decomposition. Fabric-degrade faults couple all
// shards (every shard's switch link rescales at the same instants); they are
// owned by shard 0 for trace emission, silently replicated into the others,
// and their step times become the ShardSet's conservative coupling points.
type partitionPlan struct {
	shards        []shardPlan
	fabricFaults  []FaultSpec
	couplingTimes []float64
}

// planPartition decides whether the scenario decomposes into ≥ 2 independent
// components and builds the plan. It returns nil — serial fallback — when any
// coupling channel between node groups could exist:
//
//   - campaigns and CM1 observe global state (admission control samples the
//     cluster-wide network; CM1 ranks exchange halos across all VMs);
//   - shared-storage strategies (precopy, pvfs-shared) route every VM's I/O
//     through the cluster-wide PFS servers;
//   - without preseeded images, boot reads and base fetches hit the striped
//     repository spanning all nodes;
//   - a switch fabric that could saturate arbitrates bandwidth globally. The
//     headroom test nodes*NIC <= fabric*minDegradeFactor is sufficient: if the
//     fabric ever bound under progressive filling, every flow's fabric share
//     would undercut its NIC share, so the fabric's full capacity would be
//     both allocated and strictly less than itself — a contradiction.
//
// Within the surviving scenarios, two nodes couple only when a migration or
// a traffic stream connects them; union-find over those edges yields the
// components.
func (s *Scenario) planPartition(cfg cluster.Config) *partitionPlan {
	if s.opt.cm1 != nil || len(s.campaigns) > 0 {
		return nil
	}
	for _, v := range s.vms {
		if def, ok := strategy.Lookup(string(v.Approach)); !ok || def.Traits.SharedStorage {
			return nil
		}
	}
	preseeded := cfg.Manager.Preseeded
	if cfg.ManagerOverride != nil {
		preseeded = cfg.ManagerOverride.Preseeded
	}
	if !preseeded {
		return nil
	}
	// Partition faults couple every shard through the attachment manager:
	// the lease reconciler's reachability probe is global state, so such
	// scenarios stay serial.
	for _, f := range s.opt.faults {
		if f.Kind == FaultPartition {
			return nil
		}
	}
	minFactor := 1.0
	var fabricFaults []FaultSpec
	for _, f := range s.opt.faults {
		if f.Kind == FaultFabricDegrade {
			fabricFaults = append(fabricFaults, f)
			if f.Factor < minFactor {
				minFactor = f.Factor
			}
		}
	}
	if float64(cfg.Nodes)*cfg.Testbed.NICBandwidth > cfg.Testbed.FabricBandwidth*minFactor {
		return nil
	}

	byName := make(map[string]int, len(s.vms))
	for i, v := range s.vms {
		byName[v.Name] = i
	}
	uf := newUnionFind(cfg.Nodes)
	for _, m := range s.migrations {
		uf.union(s.vms[byName[m.VM]].Node, m.Dst)
	}
	for _, t := range s.opt.traffic {
		uf.union(t.Src, t.Dst)
	}

	// Raw components over all nodes, ordered by smallest member node.
	groupOf := make(map[int]int)
	var raw []shardPlan
	for n := 0; n < cfg.Nodes; n++ {
		r := uf.find(n)
		gi, ok := groupOf[r]
		if !ok {
			gi = len(raw)
			groupOf[r] = gi
			raw = append(raw, shardPlan{local: make(map[int]int)})
		}
		raw[gi].local[n] = len(raw[gi].nodes)
		raw[gi].nodes = append(raw[gi].nodes, n)
	}
	shardOf := func(node int) int { return groupOf[uf.find(node)] }

	for i, v := range s.vms {
		gi := shardOf(v.Node)
		raw[gi].vms = append(raw[gi].vms, i)
	}
	for _, m := range s.migrations {
		gi := shardOf(s.vms[byName[m.VM]].Node)
		m.Dst = raw[gi].local[m.Dst]
		raw[gi].migrations = append(raw[gi].migrations, m)
	}
	// Fault owners: a raw shard index, or -1 for the fabric-degrade faults
	// that couple everyone.
	owner := make([]int, len(s.opt.faults))
	for fi, f := range s.opt.faults {
		switch f.Kind {
		case FaultDestCrash, FaultDeadline:
			owner[fi] = shardOf(s.vms[byName[f.VM]].Node)
		case FaultLinkDegrade:
			owner[fi] = shardOf(f.Node)
		default:
			owner[fi] = -1
		}
	}
	trafficOwner := make([]int, len(s.opt.traffic))
	for ti, t := range s.opt.traffic {
		trafficOwner[ti] = shardOf(t.Src)
	}

	// Keep only components with VMs; a component carrying faults or traffic
	// but no VM would lose its trace events in a sharded run, so such
	// scenarios stay serial.
	kept := make([]int, 0, len(raw)) // raw indices of surviving shards
	keptIdx := make([]int, len(raw)) // raw index -> plan shard index
	for gi := range raw {
		keptIdx[gi] = -1
		if len(raw[gi].vms) > 0 {
			keptIdx[gi] = len(kept)
			kept = append(kept, gi)
		}
	}
	for _, gi := range owner {
		if gi >= 0 && keptIdx[gi] < 0 {
			return nil
		}
	}
	for _, gi := range trafficOwner {
		if keptIdx[gi] < 0 {
			return nil
		}
	}
	if len(kept) < 2 {
		return nil
	}

	plan := &partitionPlan{shards: make([]shardPlan, len(kept)), fabricFaults: fabricFaults}
	for pi, gi := range kept {
		plan.shards[pi] = raw[gi]
	}
	// Fault lists preserve declaration order per shard (faults at equal times
	// fire in declaration order, a documented contract); the fabric-degrade
	// faults join shard 0, which owns their trace emission.
	for fi, f := range s.opt.faults {
		gi := owner[fi]
		if gi < 0 {
			plan.shards[0].faults = append(plan.shards[0].faults, f)
			continue
		}
		pi := keptIdx[gi]
		if f.Kind == FaultLinkDegrade {
			f.Node = plan.shards[pi].local[f.Node]
		}
		plan.shards[pi].faults = append(plan.shards[pi].faults, f)
	}
	for ti, t := range s.opt.traffic {
		pi := keptIdx[trafficOwner[ti]]
		sp := &plan.shards[pi]
		t.Src, t.Dst = sp.local[t.Src], sp.local[t.Dst]
		sp.traffic = append(sp.traffic, t)
	}
	// Conservative coupling instants: every fabric capacity step (degrade and
	// restore), deduplicated and ascending.
	times := make(map[float64]bool)
	for _, f := range fabricFaults {
		times[f.At] = true
		times[f.At+f.Duration] = true
	}
	for t := range times {
		plan.couplingTimes = append(plan.couplingTimes, t)
	}
	sort.Float64s(plan.couplingTimes)
	return plan
}

// subScenario builds the component-local scenario for plan shard i: the
// shard's VMs on renumbered nodes, its slice of the migration plan, faults
// and traffic, and the parent's run options minus parallelism (a shard never
// re-shards) and seed capture (regenerated on the merged Result). shared,
// when non-nil, is the mutex-serialized adapter over the caller's observers.
func (s *Scenario) subScenario(cfg cluster.Config, plan *partitionPlan, i int, shared trace.Observer) *Scenario {
	sp := &plan.shards[i]
	subCfg := cfg
	subCfg.Nodes = len(sp.nodes)
	opts := []Option{
		WithScale(s.opt.scale),
		WithConfig(subCfg),
		WithHorizon(s.opt.horizon),
		WithRetry(s.opt.retry),
	}
	if shared != nil {
		opts = append(opts, WithObserver(&shardObserver{nodes: sp.nodes, shared: shared}))
		if s.opt.sampleEvery > 0 {
			opts = append(opts, WithSampleInterval(s.opt.sampleEvery))
		}
	}
	if len(sp.faults) > 0 {
		opts = append(opts, WithFaults(sp.faults...))
	}
	if len(sp.traffic) > 0 {
		opts = append(opts, WithBackgroundTraffic(sp.traffic...))
	}
	sub := New(opts...)
	for _, vi := range sp.vms {
		v := s.vms[vi]
		v.Node = sp.local[v.Node]
		sub.AddVM(v)
	}
	for _, m := range sp.migrations {
		sub.migrations = append(sub.migrations, m)
	}
	return sub
}

// runSharded executes the plan: one session per component, drained
// concurrently, merged deterministically. Without coupling instants each
// shard's whole lifecycle (build, drain, collect, release) runs inside its
// worker, so peak memory is bounded by the worker count rather than the
// shard count — what keeps 10,000-VM campaigns at paper fidelity feasible.
// With coupling instants (fabric-degrade faults) every session must exist at
// once and a sim.ShardSet aligns them at each capacity step.
// check, when non-nil, is RunContext's cancellation poll; it is installed on
// every shard engine so a cancel interrupts all shards promptly.
func (s *Scenario) runSharded(cfg cluster.Config, plan *partitionPlan, check func() bool) (*Result, error) {
	workers := s.opt.workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	var shared trace.Observer
	if len(s.opt.observers) > 0 {
		shared = &lockedObservers{obs: s.opt.observers}
	}
	n := len(plan.shards)
	results := make([]*Result, n)
	var runErr error

	if len(plan.couplingTimes) == 0 {
		errs := make([]error, n)
		parallelFor(n, workers, func(i int) {
			results[i], errs[i] = s.runShard(cfg, plan, i, shared, check)
		})
		runErr = mergeShardErrors(errs, s.opt.horizon)
	} else {
		subs := make([]*Scenario, n)
		sessions := make([]*session, n)
		engines := make([]*sim.Engine, n)
		for i := 0; i < n; i++ {
			subs[i] = s.subScenario(cfg, plan, i, shared)
			c2, set2, byName2, err := subs[i].resolve()
			if err != nil {
				return nil, err
			}
			sessions[i] = subs[i].build(c2, set2, byName2)
			engines[i] = sessions[i].tb.Eng
			if check != nil {
				engines[i].SetInterrupt(interruptStride, check)
			}
			if i > 0 {
				// Silent replicas of the global fabric schedule: the capacity
				// steps fire at the same virtual instants on every shard's
				// switch link, but only shard 0 (whose armFaults installed
				// them with the bus) emits the fault and capacity events.
				for _, f := range plan.fabricFaults {
					sessions[i].tb.Cl.ApplySchedule([]fabric.CapacityStep{
						{At: f.At, Role: fabric.LinkFabric, Factor: f.Factor},
						{At: f.At + f.Duration, Role: fabric.LinkFabric, Factor: 1},
					}, nil)
				}
			}
		}
		couplings := make([]sim.Coupling, len(plan.couplingTimes))
		for k, t := range plan.couplingTimes {
			couplings[k] = sim.Coupling{At: sim.Time(t)}
		}
		set := sim.NewShardSet(engines, workers)
		runErr = set.Drain(couplings, sim.Time(s.opt.horizon))
		set.Shutdown()
		for i := 0; i < n; i++ {
			ss := sessions[i]
			results[i] = subs[i].collect(ss.tb, ss.insts, ss.runners, ss.cm1, ss.campaigns)
		}
	}
	res := s.mergeShardResults(cfg, plan, results)
	return res, runErr
}

// runShard runs one component start to finish in isolation (the
// no-couplings path).
func (s *Scenario) runShard(cfg cluster.Config, plan *partitionPlan, i int, shared trace.Observer, check func() bool) (*Result, error) {
	sub := s.subScenario(cfg, plan, i, shared)
	c2, set2, byName2, err := sub.resolve()
	if err != nil {
		return nil, err
	}
	ss := sub.build(c2, set2, byName2)
	if check != nil {
		ss.tb.Eng.SetInterrupt(interruptStride, check)
	}
	runErr := ss.tb.Eng.Drain(sub.opt.horizon)
	ss.tb.Eng.Shutdown()
	return sub.collect(ss.tb, ss.insts, ss.runners, ss.cm1, ss.campaigns), runErr
}

// mergeShardResults folds the per-shard Results into one global Result:
// VMs return to declaration order with node indices mapped back to global
// ids, per-tag traffic is summed in shard order (the one place parallel
// results can differ from serial, by float association — far below the
// equivalence suite's 1e-6 tolerance), and the clock is the latest shard
// clock, which equals the serial drain time since the last event of the run
// happens in some shard.
func (s *Scenario) mergeShardResults(cfg cluster.Config, plan *partitionPlan, results []*Result) *Result {
	res := &Result{
		VMs:       make([]VMResult, len(s.vms)),
		Campaigns: make([]*metrics.Campaign, 0),
		Traffic:   make(map[string]float64, flow.NumTags),
		Config:    cfg,
	}
	for i, r := range results {
		if r == nil {
			continue
		}
		if r.Clock > res.Clock {
			res.Clock = r.Clock
		}
		sp := &plan.shards[i]
		for j := range r.VMs {
			vr := r.VMs[j]
			vr.Node = sp.nodes[vr.Node]
			res.VMs[sp.vms[j]] = vr
		}
	}
	for _, t := range flow.Tags() {
		var sum float64
		for _, r := range results {
			if r != nil {
				sum += r.Traffic[t.String()]
			}
		}
		res.Traffic[t.String()] = sum
	}
	if s.opt.seedCapture {
		res.SeedCapture = res.capture()
	}
	return res
}

// mergeShardErrors folds per-shard drain errors deterministically, mirroring
// sim.ShardSet: the first non-deadline error by shard index wins; deadline
// errors merge into one (earliest stuck event, summed pending work).
func mergeShardErrors(errs []error, horizon float64) error {
	var merged *sim.DeadlineError
	for _, err := range errs {
		if err == nil {
			continue
		}
		de, ok := err.(*sim.DeadlineError)
		if !ok {
			return err
		}
		if merged == nil {
			merged = &sim.DeadlineError{Horizon: sim.Time(horizon), Next: de.Next}
		} else if de.Next < merged.Next {
			merged.Next = de.Next
		}
		merged.Pending += de.Pending
		merged.Live += de.Live
	}
	if merged == nil {
		return nil
	}
	return merged
}

// shardObserver translates shard-local node identifiers in emitted events
// back to the scenario's global node ids before forwarding to the shared
// serialized observer, so a sharded run's trace reads identically to the
// serial one: migration-requested destinations (Value) and NIC/disk link
// names ("node<i>.in" etc. in Detail) are the two places node ids surface.
type shardObserver struct {
	nodes  []int // local node index -> global node id
	shared trace.Observer
}

// OnEvent implements trace.Observer.
func (s *shardObserver) OnEvent(e trace.Event) {
	switch e.Kind {
	case trace.KindMigrationRequested:
		if i := int(e.Value); i >= 0 && i < len(s.nodes) {
			e.Value = float64(s.nodes[i])
		}
	case trace.KindLinkCapacity:
		e.Detail = s.globalLinkName(e.Detail)
	}
	s.shared.OnEvent(e)
}

// globalLinkName rewrites a fabric link name's node index to the global id;
// names without one (the switch fabric) pass through untouched.
func (s *shardObserver) globalLinkName(name string) string {
	rest, ok := strings.CutPrefix(name, "node")
	if !ok {
		return name
	}
	dot := strings.IndexByte(rest, '.')
	if dot < 0 {
		return name
	}
	i, err := strconv.Atoi(rest[:dot])
	if err != nil || i < 0 || i >= len(s.nodes) {
		return name
	}
	return fmt.Sprintf("node%d%s", s.nodes[i], rest[dot:])
}

// lockedObservers serializes event delivery from concurrently draining
// shards into the caller's observers: OnEvent callbacks are never invoked
// concurrently, and each observer sees every shard's events in that shard's
// virtual-time order. The global interleaving across shards is merge-ordered
// — not sorted by virtual time — which is the documented observer contract
// under WithParallel (DESIGN.md §16).
type lockedObservers struct {
	mu  sync.Mutex
	obs []trace.Observer
}

// OnEvent implements trace.Observer.
func (l *lockedObservers) OnEvent(e trace.Event) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, o := range l.obs {
		o.OnEvent(e)
	}
}

// parallelFor runs fn(i) for i in [0, n), at most workers at a time.
func parallelFor(n, workers int, fn func(i int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	next.Store(-1)
	var wg sync.WaitGroup
	for k := 0; k < workers; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1))
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// unionFind is a plain disjoint-set forest over node indices.
type unionFind struct{ parent []int }

func newUnionFind(n int) *unionFind {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	return &unionFind{parent: p}
}

func (u *unionFind) find(x int) int {
	for u.parent[x] != x {
		u.parent[x] = u.parent[u.parent[x]] // path halving
		x = u.parent[x]
	}
	return x
}

func (u *unionFind) union(a, b int) {
	ra, rb := u.find(a), u.find(b)
	if ra != rb {
		if rb < ra {
			ra, rb = rb, ra
		}
		u.parent[rb] = ra // smaller root wins: component ids are stable
	}
}
