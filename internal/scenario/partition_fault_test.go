package scenario

import (
	"errors"
	"strings"
	"testing"

	"github.com/hybridmig/hybridmig/internal/cluster"
	"github.com/hybridmig/hybridmig/internal/lease"
	"github.com/hybridmig/hybridmig/internal/trace"
)

// partitioned builds the canonical fencing scenario: one multiattach VM whose
// destination node is partitioned away mid-switchover, long enough for the
// lease TTL+grace to elapse, with a retry budget that converges after heal.
func partitioned(opts ...Option) *Scenario {
	set := NewSetup(ScaleSmall, 4)
	base := []Option{WithConfig(set.Cluster),
		WithRetry(RetrySpec{MaxAttempts: 6, Backoff: 1}),
		// The migration window opens at the 8 s warm-up and a shared-storage
		// switchover completes in under a second, so the partition must land
		// at 8.2 to starve the destination lease mid-window.
		WithFaults(FaultSpec{Kind: FaultPartition, Node: 1, At: 8.2, Duration: 8}),
	}
	return New(append(base, opts...)...).
		AddVM(VMSpec{Name: "vm0", Node: 0, Approach: cluster.MultiAttach,
			Workload: IOR(&set.IOR)}).
		MigrateAt("vm0", 1, set.Warmup)
}

// TestPartitionFencesMultiattachMigration is the tentpole acceptance
// scenario: a partition of the destination mid-dual-attach window starves the
// destination lease past TTL+grace, the reconciler fences it, the attempt
// aborts with a first-class Fenced outcome, and retries converge once the
// partition heals — with zero write-authority violations throughout.
func TestPartitionFencesMultiattachMigration(t *testing.T) {
	res, err := partitioned().Run()
	if err != nil {
		t.Fatal(err)
	}
	vm := res.VM("vm0")
	if !vm.Migrated {
		t.Fatal("VM never completed its migration after the partition healed")
	}
	if vm.Node != 1 {
		t.Fatalf("VM ended on node %d, want 1", vm.Node)
	}
	if vm.Fenced == 0 {
		t.Fatal("partition mid-switchover did not produce a Fenced outcome")
	}
	if vm.Aborts < vm.Fenced {
		t.Fatalf("fenced=%d exceeds aborts=%d: Fenced must be a subset of Aborts", vm.Fenced, vm.Aborts)
	}
	if vm.Retries == 0 {
		t.Fatal("fenced attempt was never re-admitted")
	}
	if res.TotalFenced() != vm.Fenced {
		t.Fatal("result aggregate disagrees with the per-VM fenced count")
	}
	if res.SplitBrainWindows != 0 {
		t.Fatalf("SplitBrainWindows = %d, want 0 with fencing enabled", res.SplitBrainWindows)
	}
}

// TestPartitionFencedDeterminism: the fenced scenario is bit-for-bit
// reproducible, and its capture carries the fenced line.
func TestPartitionFencedDeterminism(t *testing.T) {
	a, err := partitioned(WithSeedCapture()).Run()
	if err != nil {
		t.Fatal(err)
	}
	b, err := partitioned(WithSeedCapture()).Run()
	if err != nil {
		t.Fatal(err)
	}
	if a.SeedCapture != b.SeedCapture {
		t.Fatal("fenced scenario re-run diverged from the seed capture")
	}
	if !strings.Contains(a.SeedCapture, "fenced=") {
		t.Fatalf("capture of a fenced run carries no fenced line:\n%s", a.SeedCapture)
	}
}

// TestPartitionLeaseObserverEvents checks the lease-protocol trace contract:
// acquisition, expiry, and the fencing decision reach observers in time
// order, and the fenced abort is labeled as such.
func TestPartitionLeaseObserverEvents(t *testing.T) {
	var events []trace.Event
	rec := trace.ObserverFunc(func(e trace.Event) { events = append(events, e) })
	res, err := partitioned(WithObserver(rec)).Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.VM("vm0").Fenced == 0 {
		t.Fatal("scenario did not exercise the fencing path")
	}
	var sawAcquire, sawExpire, sawFence, sawFencedAbort bool
	last := -1.0
	for _, e := range events {
		if e.Time < last {
			t.Fatalf("event %v out of time order", e)
		}
		last = e.Time
		switch e.Kind {
		case trace.KindLeaseAcquired:
			sawAcquire = true
		case trace.KindLeaseExpired:
			sawExpire = true
			if !sawAcquire {
				t.Fatal("lease expired before any acquisition")
			}
		case trace.KindLeaseFenced:
			sawFence = true
			if !sawExpire {
				t.Fatal("fence before the lease expired")
			}
		case trace.KindMigrationAborted:
			if e.Detail == "fenced" {
				sawFencedAbort = true
				if !sawFence {
					t.Fatal("fenced abort before the fencing decision")
				}
			}
		case trace.KindSplitBrain:
			t.Fatal("split-brain event with fencing enabled")
		}
	}
	if !sawAcquire || !sawExpire || !sawFence || !sawFencedAbort {
		t.Fatalf("missing lease events: acquire=%v expire=%v fence=%v fencedAbort=%v",
			sawAcquire, sawExpire, sawFence, sawFencedAbort)
	}
}

// TestPVFSSharedFencedOnSourcePartition: the degenerate single-lease mode —
// a pvfs-shared source partitioned away mid-migration is fenced, the attempt
// aborts Fenced, and the heal lets a retry complete.
func TestPVFSSharedFencedOnSourcePartition(t *testing.T) {
	set := NewSetup(ScaleSmall, 4)
	s := New(WithConfig(set.Cluster),
		WithRetry(RetrySpec{MaxAttempts: 6, Backoff: 1}),
		WithFaults(FaultSpec{Kind: FaultPartition, Node: 0, At: 8.2, Duration: 8})).
		AddVM(VMSpec{Name: "vm0", Node: 0, Approach: cluster.PVFSShared,
			Workload: IOR(&set.IOR)}).
		MigrateAt("vm0", 1, set.Warmup)
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	vm := res.VM("vm0")
	if vm.Fenced == 0 {
		t.Fatal("source partition did not fence the pvfs-shared lease")
	}
	if !vm.Migrated {
		t.Fatal("pvfs-shared migration did not converge after heal")
	}
}

// TestNoFencingSplitBrainDetected is the teeth test: with fencing disabled,
// the same destination-window partition of the *source* (the authority
// holder) triggers the unsafe failover, both sides write, and the write-epoch
// detector turns the silent corruption into a hard simulation error.
func TestNoFencingSplitBrainDetected(t *testing.T) {
	set := NewSetup(ScaleSmall, 4)
	cfg := set.Cluster
	cfg.Lease.NoFencing = true
	s := New(WithConfig(cfg),
		WithRetry(RetrySpec{MaxAttempts: 2, Backoff: 1}),
		WithFaults(FaultSpec{Kind: FaultPartition, Node: 0, At: 8.2, Duration: 8})).
		AddVM(VMSpec{Name: "vm0", Node: 0, Approach: cluster.MultiAttach,
			Workload: IOR(&set.IOR)}).
		MigrateAt("vm0", 1, set.Warmup)
	res, err := s.Run()
	if err == nil {
		t.Fatal("split brain went undetected: Run returned no error")
	}
	if !errors.Is(err, lease.ErrCorruption) {
		t.Fatalf("error %v does not wrap lease.ErrCorruption", err)
	}
	if res == nil {
		t.Fatal("corruption error must still carry the partial result")
	}
	if res.SplitBrainWindows == 0 {
		t.Fatal("no split-brain window recorded despite the corruption error")
	}
}

// TestPartitionFaultValidation exercises the FaultPartition validation error
// paths, mirroring TestFaultValidation.
func TestPartitionFaultValidation(t *testing.T) {
	set := NewSetup(ScaleSmall, 4)
	vm := VMSpec{Name: "a", Node: 0, Approach: cluster.OurApproach}
	cases := []struct {
		name string
		s    *Scenario
		want string
	}{
		{"partition negative node", New(WithConfig(set.Cluster),
			WithFaults(FaultSpec{Kind: FaultPartition, Node: -1, At: 1, Duration: 2})).
			AddVM(vm).MigrateAt("a", 1, 1), "negative node"},
		{"partition node out of range", New(WithConfig(set.Cluster),
			WithFaults(FaultSpec{Kind: FaultPartition, Node: 99, At: 1, Duration: 2})).
			AddVM(vm).MigrateAt("a", 1, 1), "out of range"},
		{"partition no duration", New(WithConfig(set.Cluster),
			WithFaults(FaultSpec{Kind: FaultPartition, Node: 1, At: 1})).
			AddVM(vm).MigrateAt("a", 1, 1), "positive duration"},
		{"partition negative duration", New(WithConfig(set.Cluster),
			WithFaults(FaultSpec{Kind: FaultPartition, Node: 1, At: 1, Duration: -3})).
			AddVM(vm).MigrateAt("a", 1, 1), "positive duration"},
		{"partition heal past horizon", New(WithConfig(set.Cluster), WithHorizon(10),
			WithFaults(FaultSpec{Kind: FaultPartition, Node: 1, At: 5, Duration: 100})).
			AddVM(vm).MigrateAt("a", 1, 1), "past the horizon"},
		{"partition negative time", New(WithConfig(set.Cluster),
			WithFaults(FaultSpec{Kind: FaultPartition, Node: 1, At: -1, Duration: 2})).
			AddVM(vm).MigrateAt("a", 1, 1), "negative time"},
		{"overlapping partitions", New(WithConfig(set.Cluster),
			WithFaults(
				FaultSpec{Kind: FaultPartition, Node: 1, At: 10, Duration: 20},
				FaultSpec{Kind: FaultPartition, Node: 1, At: 15, Duration: 5},
			)).
			AddVM(vm).MigrateAt("a", 1, 1), "overlapping"},
		{"partition overlapping link degrade", New(WithConfig(set.Cluster),
			WithFaults(
				FaultSpec{Kind: FaultLinkDegrade, Node: 1, At: 10, Factor: 0.5, Duration: 20},
				FaultSpec{Kind: FaultPartition, Node: 1, At: 15, Duration: 5},
			)).
			AddVM(vm).MigrateAt("a", 1, 1), "overlapping"},
	}
	for _, c := range cases {
		res, err := c.s.Run()
		if err == nil {
			t.Errorf("%s: no error", c.name)
			continue
		}
		if !errors.Is(err, ErrInvalidScenario) {
			t.Errorf("%s: error %v does not wrap ErrInvalidScenario", c.name, err)
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
		if res != nil {
			t.Errorf("%s: validation failure returned a result", c.name)
		}
	}
	// Partitions of different nodes may overlap in time.
	_, err := New(WithConfig(set.Cluster),
		WithFaults(
			FaultSpec{Kind: FaultPartition, Node: 1, At: 30, Duration: 5},
			FaultSpec{Kind: FaultPartition, Node: 2, At: 30, Duration: 5},
		)).
		AddVM(vm).MigrateAt("a", 1, 1).Run()
	if err != nil {
		t.Fatalf("partitions of distinct nodes rejected: %v", err)
	}
}
