package scenario

import (
	"errors"
	"fmt"
	"testing"

	"github.com/hybridmig/hybridmig/internal/cluster"
	"github.com/hybridmig/hybridmig/internal/sched"
	"github.com/hybridmig/hybridmig/internal/sim"
	"github.com/hybridmig/hybridmig/internal/trace"
)

// quick returns a one-VM rewrite scenario ready to run.
func quick(opts ...Option) *Scenario {
	return New(opts...).
		AddVM(VMSpec{Name: "vm0", Node: 0, Approach: cluster.OurApproach, Workload: Rewrite(nil)}).
		MigrateAt("vm0", 1, 3)
}

func TestQuickstartScenario(t *testing.T) {
	res, err := quick(WithNodes(4), WithSeedCapture()).Run()
	if err != nil {
		t.Fatal(err)
	}
	vm := res.VM("vm0")
	if vm == nil || !vm.Migrated {
		t.Fatal("vm0 did not migrate")
	}
	if vm.Node != 1 {
		t.Fatalf("vm0 on node %d, want 1", vm.Node)
	}
	if vm.MigrationTime <= 0 || vm.Downtime <= 0 || vm.Rounds < 1 {
		t.Fatalf("degenerate migration stats %+v", vm)
	}
	if vm.Workload.Kind != WorkloadRewrite || vm.Workload.Iterations == 0 {
		t.Fatalf("workload did not run: %+v", vm.Workload)
	}
	if res.Traffic["memory"] <= 0 || res.MigrationTraffic(cluster.OurApproach) <= 0 {
		t.Fatalf("no traffic recorded: %v", res.Traffic)
	}
	if res.SeedCapture == "" {
		t.Fatal("WithSeedCapture produced no capture")
	}
}

// TestScenarioDeterminism runs the same scenario twice and requires the
// hex-float seed captures to match bit for bit.
func TestScenarioDeterminism(t *testing.T) {
	a, err := quick(WithNodes(4), WithSeedCapture()).Run()
	if err != nil {
		t.Fatal(err)
	}
	b, err := quick(WithNodes(4), WithSeedCapture()).Run()
	if err != nil {
		t.Fatal(err)
	}
	if a.SeedCapture != b.SeedCapture {
		t.Fatalf("repeated runs diverge:\n%s\nvs\n%s", a.SeedCapture, b.SeedCapture)
	}
}

func TestValidationErrors(t *testing.T) {
	cases := []struct {
		name string
		s    *Scenario
	}{
		{"no VMs", New()},
		{"duplicate name", New().
			AddVM(VMSpec{Name: "a", Approach: cluster.OurApproach}).
			AddVM(VMSpec{Name: "a", Approach: cluster.OurApproach})},
		{"unknown approach", New().AddVM(VMSpec{Name: "a", Approach: "warp-drive"})},
		{"unknown migration VM", New().
			AddVM(VMSpec{Name: "a", Approach: cluster.OurApproach}).
			MigrateAt("ghost", 1, 1)},
		{"node out of range", New(WithNodes(2)).
			AddVM(VMSpec{Name: "a", Node: 0, Approach: cluster.OurApproach}).
			MigrateAt("a", 7, 1)},
		{"campaign without policy", New().
			AddVM(VMSpec{Name: "a", Approach: cluster.OurApproach}).
			Campaign(1, nil, Step{VM: "a", Dst: 1})},
		{"cm1 rank mismatch", func() *Scenario {
			set := NewSetup(ScaleSmall, 4)
			p := set.CM1
			p.Procs, p.GridX, p.GridY = 4, 2, 2
			s := New(WithNodes(4), WithCM1(p))
			s.AddVM(VMSpec{Name: "a", Approach: cluster.OurApproach})
			return s
		}()},
	}
	for _, c := range cases {
		res, err := c.s.Run()
		if err == nil {
			t.Errorf("%s: no error", c.name)
			continue
		}
		if !errors.Is(err, ErrInvalidScenario) {
			t.Errorf("%s: error %v does not wrap ErrInvalidScenario", c.name, err)
		}
		if res != nil {
			t.Errorf("%s: validation failure returned a result", c.name)
		}
	}
}

// TestHorizonOverrunIsTyped pins the deadline contract: a scenario that
// cannot finish by the horizon fails with a *sim.DeadlineError carrying the
// stuck-work diagnosis, and still returns the partial result.
func TestHorizonOverrunIsTyped(t *testing.T) {
	// The migration triggers inside the horizon but cannot finish by it
	// (a trigger past the horizon is rejected as invalid instead).
	res, err := New(WithNodes(4), WithHorizon(1)).
		AddVM(VMSpec{Name: "vm0", Node: 0, Approach: cluster.OurApproach, Workload: Rewrite(nil)}).
		MigrateAt("vm0", 1, 0.5).
		Run()
	if err == nil {
		t.Fatal("horizon overrun not reported")
	}
	var de *sim.DeadlineError
	if !errors.As(err, &de) {
		t.Fatalf("error %T is not a *sim.DeadlineError: %v", err, err)
	}
	if de.Horizon != 1 || de.Pending <= 0 {
		t.Fatalf("deadline error not descriptive: %+v", de)
	}
	if res == nil {
		t.Fatal("no partial result alongside the deadline error")
	}
}

// TestObserverOrdering subscribes a recording observer to a two-VM campaign
// and checks the full event contract: nondecreasing virtual time, per-VM
// phase progression (requested -> phase transitions -> completed), campaign
// admission bracketing, pre-copy rounds, and degradation samples.
func TestObserverOrdering(t *testing.T) {
	var events []trace.Event
	rec := trace.ObserverFunc(func(e trace.Event) { events = append(events, e) })

	s := New(WithNodes(6), WithObserver(rec), WithSampleInterval(0.5))
	for i := 0; i < 2; i++ {
		s.AddVM(VMSpec{Name: fmt.Sprintf("vm%d", i), Node: i,
			Approach: cluster.OurApproach, Workload: Rewrite(nil)})
	}
	s.Campaign(2, sched.Serial{}, Step{VM: "vm0", Dst: 2}, Step{VM: "vm1", Dst: 3})
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Fatal("observer saw nothing")
	}

	last := -1.0
	counts := map[trace.Kind]int{}
	phaseIdx := map[string]int{} // per-VM position in the expected phase order
	phaseOrder := map[string]int{"push": 0, "control-transfer": 1, "released": 2}
	admitted := map[string]bool{}
	for _, e := range events {
		if e.Time < last {
			t.Fatalf("event time went backwards: %v after %v", e, last)
		}
		last = e.Time
		counts[e.Kind]++
		switch e.Kind {
		case trace.KindPhase:
			want, ok := phaseOrder[e.Detail]
			if !ok {
				t.Fatalf("unknown phase %q", e.Detail)
			}
			if want != phaseIdx[e.VM] {
				t.Fatalf("%s: phase %q out of order (position %d)", e.VM, e.Detail, phaseIdx[e.VM])
			}
			phaseIdx[e.VM]++
		case trace.KindJobAdmitted:
			admitted[e.VM] = true
		case trace.KindMigrationRequested:
			if !admitted[e.VM] {
				t.Fatalf("%s migration requested before campaign admission", e.VM)
			}
		}
	}
	for _, k := range []trace.Kind{
		trace.KindMigrationRequested, trace.KindPhase, trace.KindRound,
		trace.KindMigrationCompleted, trace.KindJobQueued, trace.KindJobAdmitted,
		trace.KindJobFinished, trace.KindCampaignStarted, trace.KindCampaignFinished,
		trace.KindSample,
	} {
		if counts[k] == 0 {
			t.Errorf("no %v events observed", k)
		}
	}
	if counts[trace.KindMigrationCompleted] != 2 {
		t.Errorf("completed events = %d, want 2", counts[trace.KindMigrationCompleted])
	}
	// Serial policy: vm1's admission must come after vm0's finish.
	var vm0Done, vm1Adm float64 = -1, -1
	for _, e := range events {
		if e.Kind == trace.KindJobFinished && e.VM == "vm0" {
			vm0Done = e.Time
		}
		if e.Kind == trace.KindJobAdmitted && e.VM == "vm1" {
			vm1Adm = e.Time
		}
	}
	if vm1Adm < vm0Done {
		t.Errorf("serial policy admitted vm1 at %v before vm0 finished at %v", vm1Adm, vm0Done)
	}
	if res.Campaigns[0].Jobs != 2 {
		t.Errorf("campaign jobs = %d", res.Campaigns[0].Jobs)
	}
}

// TestObserverDoesNotPerturb pins that subscribing an observer (with
// sampling enabled) leaves the simulation outcome bit-identical.
func TestObserverDoesNotPerturb(t *testing.T) {
	plain, err := quick(WithNodes(4), WithSeedCapture()).Run()
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	obs := trace.ObserverFunc(func(trace.Event) { n++ })
	observed, err := quick(WithNodes(4), WithSeedCapture(),
		WithObserver(obs), WithSampleInterval(0.25)).Run()
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("observer saw nothing")
	}
	if plain.SeedCapture != observed.SeedCapture {
		t.Fatalf("observing changed the simulation:\n%s\nvs\n%s",
			plain.SeedCapture, observed.SeedCapture)
	}
}

// TestCM1Scenario runs a small CM1 grid with one migration through the
// declarative path.
func TestCM1Scenario(t *testing.T) {
	set := NewSetup(ScaleSmall, 6)
	p := set.CM1
	p.Procs, p.GridX, p.GridY = 4, 2, 2
	p.Intervals = 3
	s := New(WithNodes(6), WithCM1(p))
	for i := 0; i < 4; i++ {
		s.AddVM(VMSpec{Name: fmt.Sprintf("rank%d", i), Node: i, Approach: cluster.OurApproach})
	}
	s.MigrateAt("rank0", 4, 1)
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.CM1 == nil || res.CM1.Intervals != 3 {
		t.Fatalf("CM1 report %+v", res.CM1)
	}
	if !res.VMs[0].Migrated || res.VMs[0].Node != 4 {
		t.Fatalf("rank0 result %+v", res.VMs[0])
	}
}
