// Package scenario is the declarative session layer of the reproduction:
// callers describe a testbed, a set of VMs with workloads, and a migration
// plan — per-VM trigger times or an orchestrated campaign under an admission
// policy — then call Run, which assembles everything, drives the simulation
// until it drains, and returns a typed Result (per-VM migration and downtime
// stats, campaign aggregates, workload counters, per-tag traffic) and a real
// error instead of panicking.
//
// The package exists so the public facade (package hybridmig) and the
// experiment harness (internal/experiments) share one execution path: every
// table and figure of the paper is itself just a scenario, and the golden
// determinism suite pins that the declarative path reproduces the original
// hand-wired runs bit for bit.
//
// Determinism contract: Run spawns simulation processes in a fixed order —
// per VM its boot process then its workload (CM1 ranks are started after all
// launches, as the barrier requires every rank), then the timed migrations in
// declaration order, then the campaigns in declaration order. Two runs of an
// identical scenario produce identical Results.
package scenario

import (
	"context"
	"errors"
	"fmt"

	"github.com/hybridmig/hybridmig/internal/cluster"
	"github.com/hybridmig/hybridmig/internal/fabric"
	"github.com/hybridmig/hybridmig/internal/guest"
	"github.com/hybridmig/hybridmig/internal/metrics"
	"github.com/hybridmig/hybridmig/internal/params"
	"github.com/hybridmig/hybridmig/internal/sched"
	"github.com/hybridmig/hybridmig/internal/sim"
	"github.com/hybridmig/hybridmig/internal/strategy"
	"github.com/hybridmig/hybridmig/internal/trace"
	"github.com/hybridmig/hybridmig/internal/workload"
)

// ErrInvalidScenario is wrapped by every scenario validation failure.
var ErrInvalidScenario = errors.New("invalid scenario")

// CanceledError is returned by RunContext when its context was canceled (or
// its deadline exceeded) before the simulation drained. The partial Result
// accompanying it reflects the state at the interruption instant. Detect it
// with errors.As; Unwrap exposes the context's cancellation cause, so
// errors.Is(err, context.Canceled) works through the wrapper too.
type CanceledError struct {
	Clock float64 // virtual time reached when the run stopped
	Cause error   // the context's cancellation cause
}

func (e *CanceledError) Error() string {
	return fmt.Sprintf("scenario: run canceled at t=%g s: %v", e.Clock, e.Cause)
}

// Unwrap exposes the cancellation cause.
func (e *CanceledError) Unwrap() error { return e.Cause }

// invalidf builds a validation error wrapping ErrInvalidScenario.
func invalidf(format string, args ...any) error {
	return fmt.Errorf("scenario: "+format+": %w", append(args, ErrInvalidScenario)...)
}

// WorkloadKind names a guest workload family.
type WorkloadKind int

// The declarative workload families.
const (
	WorkloadNone WorkloadKind = iota
	WorkloadIOR
	WorkloadAsyncWR
	WorkloadRewrite
)

func (k WorkloadKind) String() string {
	switch k {
	case WorkloadNone:
		return "none"
	case WorkloadIOR:
		return "ior"
	case WorkloadAsyncWR:
		return "asyncwr"
	case WorkloadRewrite:
		return "rewrite"
	}
	return fmt.Sprintf("workload(%d)", int(k))
}

// WorkloadSpec declares the workload one VM runs. Nil parameter pointers
// select the run scale's defaults (Setup values for IOR/AsyncWR,
// params.DefaultRewrite for the rewrite workload).
type WorkloadSpec struct {
	Kind    WorkloadKind
	IOR     *params.IOR
	AsyncWR *params.AsyncWR
	Rewrite *params.Rewrite
	// Deadline, when positive, stops an AsyncWR workload at that absolute
	// virtual time even if iterations remain (fixed-horizon degradation
	// measurements compare counters at a common instant).
	Deadline float64
}

// IOR declares the IOR benchmark; p == nil uses the scale's defaults. IOR
// guests run O_DIRECT (the instance is marked unbuffered), as in the paper.
func IOR(p *params.IOR) WorkloadSpec { return WorkloadSpec{Kind: WorkloadIOR, IOR: p} }

// AsyncWR declares the AsyncWR benchmark; p == nil uses the scale's
// defaults. deadline > 0 bounds the run at that absolute virtual time.
func AsyncWR(p *params.AsyncWR, deadline float64) WorkloadSpec {
	return WorkloadSpec{Kind: WorkloadAsyncWR, AsyncWR: p, Deadline: deadline}
}

// Rewrite declares the hot/cold rewrite workload; p == nil uses
// params.DefaultRewrite.
func Rewrite(p *params.Rewrite) WorkloadSpec { return WorkloadSpec{Kind: WorkloadRewrite, Rewrite: p} }

// VMSpec declares one VM: where it starts, which storage transfer approach
// backs it, and what it runs.
type VMSpec struct {
	Name     string
	Node     int
	Approach cluster.Approach
	Workload WorkloadSpec
}

// Migration is one timed entry of the migration plan: VM (by name) moves to
// the node at Dst, triggered At seconds into the run.
type Migration struct {
	VM  string
	Dst int
	At  float64
}

// Step is one migration of a campaign (trigger timing is the campaign's).
type Step struct {
	VM  string
	Dst int
}

// CampaignSpec is an orchestrated batch of migrations admitted under a
// policy, triggered At seconds into the run.
type CampaignSpec struct {
	At     float64
	Policy sched.Policy
	Steps  []Step
}

// FaultKind names an injectable fault family.
type FaultKind int

// The injectable faults.
const (
	// FaultDestCrash crashes the destination of the named VM's in-flight
	// migration at time At: every migration transfer is canceled, the
	// destination state is discarded, and the VM keeps running at (or falls
	// back to) the source. A fault that finds no migration in flight is a
	// no-op (observers still see it fire).
	FaultDestCrash FaultKind = iota
	// FaultDeadline aborts the named VM's migration at time At if it is
	// still in flight — the operator-imposed "this migration took too long"
	// cutoff. Mechanically identical to FaultDestCrash, separately named so
	// traces distinguish crashes from policy aborts.
	FaultDeadline
	// FaultLinkDegrade scales the NIC (both directions) of node Node to
	// Factor times its configured bandwidth at time At, restoring it at
	// At+Duration. Factor 0 is a blackout (an epsilon floor keeps the
	// simulation well-formed).
	FaultLinkDegrade
	// FaultFabricDegrade scales the shared switch fabric the same way.
	FaultFabricDegrade
	// FaultPartition isolates node Node from the network for
	// [At, At+Duration): both NIC directions black out AND the node counts
	// as unreachable to the shared-volume attachment manager, so leases held
	// there stop renewing — which is what forces the lease protocol to
	// fence. Factor and VM are ignored.
	FaultPartition
)

func (k FaultKind) String() string {
	switch k {
	case FaultDestCrash:
		return "dest-crash"
	case FaultDeadline:
		return "deadline-exceeded"
	case FaultLinkDegrade:
		return "link-degrade"
	case FaultFabricDegrade:
		return "fabric-degrade"
	case FaultPartition:
		return "partition"
	}
	return fmt.Sprintf("fault(%d)", int(k))
}

// FaultSpec schedules one fault. Which fields matter depends on Kind: VM for
// the migration-abort faults, Node/Factor/Duration for the degradations.
type FaultSpec struct {
	At       float64
	Kind     FaultKind
	VM       string
	Node     int
	Factor   float64
	Duration float64
}

// TrafficSpec declares one background cross-traffic source: from Start to
// Stop, back-to-back bursts flow from node Src to node Dst over the normal
// NIC/fabric path, optionally paced at Rate bytes/s, competing with every
// migration stream that shares those links.
type TrafficSpec struct {
	Src, Dst    int
	Start, Stop float64
	Rate        float64 // bytes/s per-flow pacing cap; 0 = uncapped
	Burst       float64 // bytes per transfer; 0 = the fabric default (16 MB)
}

// RetrySpec bounds re-admission of fault-aborted migrations (timed plans and
// campaigns alike); see sched.Retry. The zero value disables retries.
type RetrySpec = sched.Retry

// options collects the functional run options.
type options struct {
	scale       Scale
	nodes       int
	config      *cluster.Config
	cm1         *params.CM1
	horizon     float64
	observers   []trace.Observer
	sampleEvery float64
	seedCapture bool
	faults      []FaultSpec
	traffic     []TrafficSpec
	retry       RetrySpec
	threshold   *uint32
	preseed     bool
	parallel    bool
	workers     int
}

// Option configures a Scenario.
type Option func(*options)

// WithScale selects the run scale (default ScaleSmall): the testbed
// configuration (unless WithConfig overrides it) and the defaults used for
// nil workload parameters both come from it.
func WithScale(s Scale) Option { return func(o *options) { o.scale = s } }

// WithNodes fixes the number of compute nodes. Without it the scenario
// allocates one node past the highest node index any VM or migration uses.
func WithNodes(n int) Option { return func(o *options) { o.nodes = n } }

// WithConfig supplies a complete cluster configuration, overriding the
// testbed WithScale/WithNodes would build. This is the ablation hook:
// everything down to the manager options override is reachable through it.
// Nil workload parameters still resolve from WithScale — pass a matching
// scale (or explicit parameters) alongside a non-default configuration.
func WithConfig(cfg cluster.Config) Option { return func(o *options) { o.config = &cfg } }

// WithCM1 runs the CM1 BSP application across all declared VMs, one rank per
// VM in declaration order; p.Procs must equal the VM count. VMs' own
// Workload specs must be WorkloadNone in this mode.
func WithCM1(p params.CM1) Option { return func(o *options) { o.cm1 = &p } }

// WithHorizon bounds the run at the given virtual time in seconds (default
// 1e6). A scenario that still has pending simulation work at the horizon
// fails with a *sim.DeadlineError instead of being truncated silently.
func WithHorizon(t float64) Option { return func(o *options) { o.horizon = t } }

// WithObserver subscribes an observer to the run's trace bus (migration
// phases, pre-copy rounds, campaign admissions, degradation samples).
// Observers see events synchronously in virtual-time order.
func WithObserver(obs trace.Observer) Option {
	return func(o *options) { o.observers = append(o.observers, obs) }
}

// WithSampleInterval enables periodic degradation samples (trace.KindSample,
// one per VM every d seconds) while the migration plan is in flight. It only
// takes effect when an observer is subscribed.
func WithSampleInterval(d float64) Option { return func(o *options) { o.sampleEvery = d } }

// WithSeedCapture records a hex-float determinism capture of the run into
// Result.SeedCapture: every measured float64 is rendered with %x so the full
// mantissa is visible, which is what golden tests diff.
func WithSeedCapture() Option { return func(o *options) { o.seedCapture = true } }

// WithFaults schedules injected faults: destination crashes and migration
// deadlines that abort in-flight migrations, and link/fabric degradations
// that rescale capacities mid-run. Faults fire in declaration order at equal
// times. Fault times (and degradation windows) must fit inside the horizon.
func WithFaults(fs ...FaultSpec) Option {
	return func(o *options) { o.faults = append(o.faults, fs...) }
}

// WithBackgroundTraffic adds persistent cross-traffic generators that
// compete with migrations for NIC and fabric bandwidth, tagged "background"
// in traffic reports. Each window must fit inside the horizon so the run can
// drain.
func WithBackgroundTraffic(ts ...TrafficSpec) Option {
	return func(o *options) { o.traffic = append(o.traffic, ts...) }
}

// WithRetry gives fault-aborted migrations a retry budget: an aborted timed
// migration (or campaign job) backs off and re-runs until it completes or
// exhausts r.MaxAttempts. Without it every abort is terminal.
func WithRetry(r RetrySpec) Option { return func(o *options) { o.retry = r } }

// WithThreshold overrides the Algorithm 1 write-count cutoff for every
// push-based strategy in the run (the paper's threshold ablation): chunks
// written at least t times during migration stop being pushed and wait for
// the prioritized pull phase; t = 0 disables pushing outright (the whole
// remaining set — chunks modified before the request included — waits for
// the pull phase). Strategies that retune the cutoff online start from the
// override; it has no effect on strategies without a push phase.
func WithThreshold(t uint32) Option { return func(o *options) { o.threshold = &t } }

// WithPreseededImages marks the base image as already replicated on every
// compute node's local storage (a deployment with pre-staged images): VMs
// boot from their local replica, migrations preseed the destination replica
// too, and neither ever touches the shared repository. Besides modeling
// pre-staged deployments, preseeding is what makes migrations between
// disjoint node pairs fully independent — the condition the parallel
// scenario kernel (WithParallel) shards on.
func WithPreseededImages() Option { return func(o *options) { o.preseed = true } }

// WithParallel runs the scenario on the component-parallel simulation
// kernel: the planner partitions the declared VMs, migrations, traffic and
// faults into connected components of the fabric, each component simulates
// on its own event heap and clock (internal/sim.ShardSet), and the per-shard
// results are merged deterministically. workers bounds the shards executing
// concurrently; values <= 0 use GOMAXPROCS.
//
// Parallel execution is conservative: a scenario the planner cannot prove
// decomposable (campaigns or CM1 — their orchestration observes global
// state; shared-storage strategies; images not preseeded; a switch fabric
// that could saturate) falls back to the serial kernel, so WithParallel
// never changes which scenarios are runnable. Merged results agree with the
// serial kernel field by field (the differential equivalence suite pins
// this at 1e-6 relative tolerance; in practice per-VM measurements are
// bit-identical and only summed traffic counters differ by float
// association). Without WithParallel runs are serial and bit-for-bit
// reproducible, which is what the golden suite pins.
func WithParallel(workers int) Option {
	return func(o *options) {
		o.parallel = true
		o.workers = workers
	}
}

// Scenario is a declarative description of one simulated session. Build it
// with New, AddVM, MigrateAt and Campaign, then call Run.
type Scenario struct {
	opt        options
	vms        []VMSpec
	migrations []Migration
	campaigns  []CampaignSpec
}

// New returns an empty scenario with the given run options applied.
func New(opts ...Option) *Scenario {
	s := &Scenario{opt: options{horizon: 1e6}}
	for _, o := range opts {
		o(&s.opt)
	}
	return s
}

// AddVM declares a VM. Returns the scenario for chaining.
func (s *Scenario) AddVM(v VMSpec) *Scenario {
	s.vms = append(s.vms, v)
	return s
}

// MigrateAt adds a timed migration of the named VM to node dst at time at.
func (s *Scenario) MigrateAt(vm string, dst int, at float64) *Scenario {
	s.migrations = append(s.migrations, Migration{VM: vm, Dst: dst, At: at})
	return s
}

// Campaign adds an orchestrated batch of migrations admitted under pol,
// triggered at time at.
func (s *Scenario) Campaign(at float64, pol sched.Policy, steps ...Step) *Scenario {
	s.campaigns = append(s.campaigns, CampaignSpec{At: at, Policy: pol, Steps: steps})
	return s
}

// maxNodeIndex returns the highest node index the scenario references.
func (s *Scenario) maxNodeIndex() int {
	max := 0
	for _, v := range s.vms {
		if v.Node > max {
			max = v.Node
		}
	}
	for _, m := range s.migrations {
		if m.Dst > max {
			max = m.Dst
		}
	}
	for _, c := range s.campaigns {
		for _, st := range c.Steps {
			if st.Dst > max {
				max = st.Dst
			}
		}
	}
	for _, f := range s.opt.faults {
		if (f.Kind == FaultLinkDegrade || f.Kind == FaultPartition) && f.Node > max {
			max = f.Node
		}
	}
	for _, t := range s.opt.traffic {
		if t.Src > max {
			max = t.Src
		}
		if t.Dst > max {
			max = t.Dst
		}
	}
	return max
}

// resolve validates the scenario and returns the cluster configuration, the
// per-scale defaults, and the name→index map.
func (s *Scenario) resolve() (cluster.Config, Setup, map[string]int, error) {
	var zero cluster.Config
	byName := make(map[string]int, len(s.vms))
	if len(s.vms) == 0 {
		return zero, Setup{}, nil, invalidf("no VMs declared")
	}
	for i, v := range s.vms {
		if v.Name == "" {
			return zero, Setup{}, nil, invalidf("VM %d has no name", i)
		}
		if _, dup := byName[v.Name]; dup {
			return zero, Setup{}, nil, invalidf("duplicate VM name %q", v.Name)
		}
		if v.Node < 0 {
			return zero, Setup{}, nil, invalidf("VM %q on negative node %d", v.Name, v.Node)
		}
		if _, ok := strategy.Lookup(string(v.Approach)); !ok {
			return zero, Setup{}, nil, invalidf("VM %q uses unregistered strategy %q (registered: %s)",
				v.Name, v.Approach, strategy.Registered())
		}
		switch v.Workload.Kind {
		case WorkloadNone, WorkloadIOR, WorkloadAsyncWR, WorkloadRewrite:
		default:
			// Rejecting unknown kinds here keeps startWorkload panic-free: a
			// malformed request surfaces as a validation error, never a crash.
			return zero, Setup{}, nil, invalidf("VM %q has unknown workload kind %d", v.Name, int(v.Workload.Kind))
		}
		if s.opt.cm1 != nil && v.Workload.Kind != WorkloadNone {
			return zero, Setup{}, nil, invalidf("VM %q declares a workload but WithCM1 runs one rank per VM", v.Name)
		}
		byName[v.Name] = i
	}
	checkStep := func(where, vm string, dst int) error {
		if _, ok := byName[vm]; !ok {
			return invalidf("%s references unknown VM %q", where, vm)
		}
		if dst < 0 {
			return invalidf("%s of VM %q targets negative node %d", where, vm, dst)
		}
		return nil
	}
	// Trigger and fault times must lie inside the horizon: work scheduled
	// past it could never run, and a degradation that restores after the
	// horizon would leave the run undrainable.
	checkTime := func(what string, at float64) error {
		if at < 0 {
			return invalidf("%s at negative time %g", what, at)
		}
		if at > s.opt.horizon {
			return invalidf("%s at %g s is past the horizon (%g s)", what, at, s.opt.horizon)
		}
		return nil
	}
	for _, m := range s.migrations {
		if err := checkStep("migration", m.VM, m.Dst); err != nil {
			return zero, Setup{}, nil, err
		}
		if err := checkTime(fmt.Sprintf("migration of VM %q", m.VM), m.At); err != nil {
			return zero, Setup{}, nil, err
		}
	}
	for ci, c := range s.campaigns {
		if c.Policy == nil {
			return zero, Setup{}, nil, invalidf("campaign %d has no policy", ci)
		}
		if len(c.Steps) == 0 {
			return zero, Setup{}, nil, invalidf("campaign %d has no migrations", ci)
		}
		if err := checkTime(fmt.Sprintf("campaign %d", ci), c.At); err != nil {
			return zero, Setup{}, nil, err
		}
		for _, st := range c.Steps {
			if err := checkStep("campaign migration", st.VM, st.Dst); err != nil {
				return zero, Setup{}, nil, err
			}
		}
	}
	for fi, f := range s.opt.faults {
		if err := checkTime(fmt.Sprintf("fault %d (%s)", fi, f.Kind), f.At); err != nil {
			return zero, Setup{}, nil, err
		}
		switch f.Kind {
		case FaultDestCrash, FaultDeadline:
			if _, ok := byName[f.VM]; !ok {
				return zero, Setup{}, nil, invalidf("fault %d (%s) targets unknown VM %q", fi, f.Kind, f.VM)
			}
		case FaultLinkDegrade, FaultFabricDegrade:
			if f.Kind == FaultLinkDegrade && f.Node < 0 {
				return zero, Setup{}, nil, invalidf("fault %d (%s) targets negative node %d", fi, f.Kind, f.Node)
			}
			if f.Factor < 0 || f.Factor > 1 {
				return zero, Setup{}, nil, invalidf("fault %d (%s) factor %g outside [0,1]", fi, f.Kind, f.Factor)
			}
			if f.Duration <= 0 {
				return zero, Setup{}, nil, invalidf("fault %d (%s) needs a positive duration", fi, f.Kind)
			}
			if err := checkTime(fmt.Sprintf("fault %d (%s) restore", fi, f.Kind), f.At+f.Duration); err != nil {
				return zero, Setup{}, nil, err
			}
		case FaultPartition:
			if f.Node < 0 {
				return zero, Setup{}, nil, invalidf("fault %d (%s) targets negative node %d", fi, f.Kind, f.Node)
			}
			if f.Duration <= 0 {
				return zero, Setup{}, nil, invalidf("fault %d (%s) needs a positive duration", fi, f.Kind)
			}
			if err := checkTime(fmt.Sprintf("fault %d (%s) heal", fi, f.Kind), f.At+f.Duration); err != nil {
				return zero, Setup{}, nil, err
			}
		default:
			return zero, Setup{}, nil, invalidf("fault %d has unknown kind %d", fi, int(f.Kind))
		}
	}
	// Degradation and partition windows on the same link must not overlap:
	// each window's restore step sets the link back to full capacity, so an
	// inner window would silently cancel the tail of an outer one. Partition
	// and link-degrade faults share a node's NIC links, so windows of the
	// two kinds conflict with each other too.
	nicNode := func(f FaultSpec) (int, bool) {
		if f.Kind == FaultLinkDegrade || f.Kind == FaultPartition {
			return f.Node, true
		}
		return 0, false
	}
	for i, a := range s.opt.faults {
		an, aNIC := nicNode(a)
		if !aNIC && a.Kind != FaultFabricDegrade {
			continue
		}
		for j := i + 1; j < len(s.opt.faults); j++ {
			b := s.opt.faults[j]
			bn, bNIC := nicNode(b)
			sameLink := (aNIC && bNIC && an == bn) ||
				(a.Kind == FaultFabricDegrade && b.Kind == FaultFabricDegrade)
			if !sameLink {
				continue
			}
			if a.At < b.At+b.Duration && b.At < a.At+a.Duration {
				return zero, Setup{}, nil, invalidf(
					"faults %d and %d (%s) have overlapping windows on the same link", i, j, a.Kind)
			}
		}
	}
	for ti, tr := range s.opt.traffic {
		if tr.Src < 0 || tr.Dst < 0 {
			return zero, Setup{}, nil, invalidf("traffic %d uses negative node", ti)
		}
		if tr.Src == tr.Dst {
			return zero, Setup{}, nil, invalidf("traffic %d needs distinct nodes (got %d->%d)", ti, tr.Src, tr.Dst)
		}
		if tr.Rate < 0 || tr.Burst < 0 {
			return zero, Setup{}, nil, invalidf("traffic %d has negative rate or burst", ti)
		}
		if err := checkTime(fmt.Sprintf("traffic %d start", ti), tr.Start); err != nil {
			return zero, Setup{}, nil, err
		}
		if !(tr.Stop > tr.Start) {
			return zero, Setup{}, nil, invalidf("traffic %d window [%g,%g) is not a positive span", ti, tr.Start, tr.Stop)
		}
		if err := checkTime(fmt.Sprintf("traffic %d stop", ti), tr.Stop); err != nil {
			return zero, Setup{}, nil, err
		}
	}
	if r := s.opt.retry; r.MaxAttempts < 0 || r.Backoff < 0 || r.Factor < 0 {
		return zero, Setup{}, nil, invalidf("retry spec has negative fields")
	}
	if s.opt.cm1 != nil {
		if s.opt.cm1.GridX*s.opt.cm1.GridY != s.opt.cm1.Procs {
			return zero, Setup{}, nil, invalidf("CM1 grid %dx%d does not match %d ranks",
				s.opt.cm1.GridX, s.opt.cm1.GridY, s.opt.cm1.Procs)
		}
		if s.opt.cm1.Procs != len(s.vms) {
			return zero, Setup{}, nil, invalidf("CM1 declares %d ranks but the scenario has %d VMs",
				s.opt.cm1.Procs, len(s.vms))
		}
	}

	nodes := s.opt.nodes
	if nodes <= 0 {
		nodes = s.maxNodeIndex() + 1
	}
	set := NewSetup(s.opt.scale, nodes)
	cfg := set.Cluster
	if s.opt.config != nil {
		cfg = *s.opt.config
	}
	if s.opt.threshold != nil {
		cfg.Manager.Threshold = *s.opt.threshold
		if cfg.ManagerOverride != nil {
			o := *cfg.ManagerOverride
			o.Threshold = *s.opt.threshold
			cfg.ManagerOverride = &o
		}
	}
	if s.opt.preseed {
		cfg.Manager.Preseeded = true
		if cfg.ManagerOverride != nil {
			o := *cfg.ManagerOverride
			o.Preseeded = true
			cfg.ManagerOverride = &o
		}
	}
	if top := s.maxNodeIndex(); top >= cfg.Nodes {
		return zero, Setup{}, nil, invalidf("node index %d out of range (testbed has %d nodes)", top, cfg.Nodes)
	}
	return cfg, set, byName, nil
}

// runner holds one VM's live workload instance for result collection.
type runner struct {
	kind WorkloadKind
	ior  *workload.IOR
	awr  *workload.AsyncWR
	rw   *workload.Rewriter
}

// session is one assembled, not-yet-drained simulation of a scenario: the
// testbed plus every handle result collection needs. The serial and sharded
// run paths share it — a sharded run is just one session per component.
type session struct {
	tb        *cluster.Testbed
	insts     []*cluster.Instance
	runners   []runner
	cm1       *workload.CM1
	campaigns []*metrics.Campaign
}

// interruptStride is how many events the engine fires between cancellation
// polls when RunContext installs one. Large enough that the atomic load in
// ctx.Err is invisible next to event dispatch, small enough that a cancel
// lands within microseconds of wall time.
const interruptStride = 1024

// Run assembles the testbed, executes the scenario until the simulation
// drains, and collects the Result. On a horizon overrun it returns the
// partial Result together with a *sim.DeadlineError; on a validation failure
// it returns a nil Result and an error wrapping ErrInvalidScenario.
func (s *Scenario) Run() (*Result, error) {
	return s.RunContext(context.Background())
}

// Validate resolves the scenario without running it, returning the same
// error Run would. A service front end uses it to reject a malformed spec at
// submission time instead of burning a worker slot on it.
func (s *Scenario) Validate() error {
	_, _, _, err := s.resolve()
	return err
}

// RunContext is Run with cooperative cancellation: when ctx is canceled (or
// its deadline passes) the engine stops between two events, every process
// goroutine is shut down, and the partial Result is returned together with a
// *CanceledError. A context that can never be canceled adds no overhead and
// runs bit-identically to Run.
func (s *Scenario) RunContext(ctx context.Context) (*Result, error) {
	cfg, set, byName, err := s.resolve()
	if err != nil {
		return nil, err
	}
	var check func() bool
	if ctx.Done() != nil {
		if ctx.Err() != nil {
			return nil, &CanceledError{Cause: context.Cause(ctx)}
		}
		check = func() bool { return ctx.Err() != nil }
	}
	if s.opt.parallel {
		if plan := s.planPartition(cfg); plan != nil {
			res, err := s.runSharded(cfg, plan, check)
			if errors.Is(err, sim.ErrInterrupted) {
				cerr := &CanceledError{Cause: context.Cause(ctx)}
				if res != nil {
					cerr.Clock = res.Clock
				}
				return res, cerr
			}
			return res, err
		}
	}
	ss := s.build(cfg, set, byName)
	if check != nil {
		ss.tb.Eng.SetInterrupt(interruptStride, check)
	}
	runErr := ss.tb.Eng.Drain(s.opt.horizon)
	ss.tb.Eng.Shutdown()
	res := s.collect(ss.tb, ss.insts, ss.runners, ss.cm1, ss.campaigns)
	if runErr != nil {
		if errors.Is(runErr, sim.ErrInterrupted) {
			return res, &CanceledError{Clock: res.Clock, Cause: context.Cause(ctx)}
		}
		return res, runErr
	}
	// Silent split brain is a hard simulation error: any write the attachment
	// manager could not attribute to a valid lease corrupted the shared image.
	if err := ss.tb.Leases().Err(); err != nil {
		return res, err
	}
	for ci, c := range ss.campaigns {
		if c == nil {
			return res, fmt.Errorf("scenario: campaign %d (%s) did not complete", ci, s.campaigns[ci].Policy.Name())
		}
	}
	return res, nil
}

// build assembles the testbed and spawns every declared process (VM stacks,
// workloads, the migration plan, traffic, faults, the sampler) without
// advancing simulated time.
func (s *Scenario) build(cfg cluster.Config, set Setup, byName map[string]int) *session {
	tb := cluster.New(cfg)
	for _, o := range s.opt.observers {
		tb.Observe(o)
	}
	eng := tb.Eng

	var cm1 *workload.CM1
	if s.opt.cm1 != nil {
		cm1 = workload.NewCM1(*s.opt.cm1, tb.Cl)
	}

	insts := make([]*cluster.Instance, len(s.vms))
	runners := make([]runner, len(s.vms))
	launch := func(i int) {
		v := s.vms[i]
		insts[i] = tb.Launch(v.Name, v.Node, v.Approach)
		if v.Workload.Kind == WorkloadIOR {
			// IOR is a storage benchmark: it runs O_DIRECT in the guest.
			insts[i].Guest.Buffered = false
		}
	}
	if cm1 == nil {
		// Launch and workload interleave per VM, preserving the original
		// hand-wired spawn order of the experiment harness.
		for i := range s.vms {
			launch(i)
			s.startWorkload(tb, insts[i], &runners[i], s.vms[i], set)
		}
	} else {
		// CM1 ranks exchange halos with every peer, so all guests must
		// exist before any rank starts.
		for i := range s.vms {
			launch(i)
		}
		guests := make([]*guest.Guest, len(insts))
		for i, inst := range insts {
			guests[i] = inst.Guest
		}
		for i := range s.vms {
			i := i
			eng.Go(s.vms[i].Name+"/cm1", func(p *sim.Proc) {
				cm1.Rank(p, i, guests[i], guests)
			})
		}
	}

	for _, m := range s.migrations {
		m := m
		idx := byName[m.VM]
		eng.Go("middleware/"+m.VM, func(p *sim.Proc) {
			p.Sleep(m.At)
			s.migrateWithRetry(p, tb, insts[idx], m.Dst)
		})
	}
	campaigns := make([]*metrics.Campaign, len(s.campaigns))
	for ci, c := range s.campaigns {
		ci, c := ci, c
		reqs := make([]cluster.MigrationRequest, len(c.Steps))
		for k, st := range c.Steps {
			reqs[k] = cluster.MigrationRequest{Inst: insts[byName[st.VM]], DstIdx: st.Dst}
		}
		eng.Go("orchestrator", func(p *sim.Proc) {
			p.Sleep(c.At)
			campaigns[ci] = tb.MigrateAllRetry(p, reqs, c.Policy, s.opt.retry)
		})
	}

	for _, tr := range s.opt.traffic {
		tb.Cl.StartCrossTraffic(fabric.CrossTraffic{
			Src: tr.Src, Dst: tr.Dst, Start: tr.Start, Stop: tr.Stop,
			Rate: tr.Rate, Burst: tr.Burst,
		})
	}
	s.armFaults(tb, insts, byName)

	if len(s.opt.observers) > 0 && s.opt.sampleEvery > 0 && s.planSize() > 0 {
		s.startSampler(tb, insts, byName)
	}
	return &session{tb: tb, insts: insts, runners: runners, cm1: cm1, campaigns: campaigns}
}

// migrateWithRetry runs one timed migration under the scenario's retry
// budget: a fault-aborted attempt backs off and re-runs until it completes
// or exhausts the budget, mirroring the campaign path's semantics.
func (s *Scenario) migrateWithRetry(p *sim.Proc, tb *cluster.Testbed, inst *cluster.Instance, dst int) {
	maxAttempts := s.opt.retry.MaxAttempts
	if maxAttempts < 1 {
		maxAttempts = 1
	}
	backoff := s.opt.retry.Backoff
	bus := tb.Bus()
	for attempt := 1; ; attempt++ {
		if tb.MigrateInstance(p, inst, dst) == nil {
			return
		}
		if attempt >= maxAttempts {
			inst.Exhausted = true
			return
		}
		if bus.Active() {
			bus.Emit(trace.Event{Time: p.Now(), Kind: trace.KindMigrationRetried,
				VM: inst.Name, Round: attempt + 1})
		}
		if backoff > 0 {
			p.Sleep(backoff)
		}
		if s.opt.retry.Factor > 0 {
			backoff *= s.opt.retry.Factor
		}
	}
}

// armFaults installs the scenario's fault schedule: abort faults become
// engine timers calling the middleware's AbortMigration; degradations become
// capacity schedules with a restore step. Every firing is published as a
// trace.KindFaultInjected event before its effect.
func (s *Scenario) armFaults(tb *cluster.Testbed, insts []*cluster.Instance, byName map[string]int) {
	bus := tb.Bus()
	emit := func(f FaultSpec, value float64) {
		if bus.Active() {
			bus.Emit(trace.Event{Time: tb.Eng.Now(), Kind: trace.KindFaultInjected,
				VM: f.VM, Detail: f.Kind.String(), Value: value})
		}
	}
	for _, f := range s.opt.faults {
		f := f
		switch f.Kind {
		case FaultDestCrash, FaultDeadline:
			inst := insts[byName[f.VM]]
			tb.Eng.At(f.At, func() {
				emit(f, 0)
				tb.AbortMigration(inst, f.Kind.String())
			})
		case FaultLinkDegrade:
			tb.Eng.At(f.At, func() { emit(f, f.Factor) })
			tb.Cl.ApplySchedule([]fabric.CapacityStep{
				{At: f.At, Role: fabric.LinkNICIn, Node: f.Node, Factor: f.Factor},
				{At: f.At, Role: fabric.LinkNICOut, Node: f.Node, Factor: f.Factor},
				{At: f.At + f.Duration, Role: fabric.LinkNICIn, Node: f.Node, Factor: 1},
				{At: f.At + f.Duration, Role: fabric.LinkNICOut, Node: f.Node, Factor: 1},
			}, bus)
		case FaultFabricDegrade:
			tb.Eng.At(f.At, func() { emit(f, f.Factor) })
			tb.Cl.ApplySchedule([]fabric.CapacityStep{
				{At: f.At, Role: fabric.LinkFabric, Factor: f.Factor},
				{At: f.At + f.Duration, Role: fabric.LinkFabric, Factor: 1},
			}, bus)
		case FaultPartition:
			tb.Eng.At(f.At, func() { emit(f, float64(f.Node)) })
			tb.Cl.Partition(f.Node, f.At, f.Duration, bus)
		}
	}
}

// planSize returns the total number of planned migrations.
func (s *Scenario) planSize() int {
	n := len(s.migrations)
	for _, c := range s.campaigns {
		n += len(c.Steps)
	}
	return n
}

// startWorkload spawns the VM's workload process and records its handle.
func (s *Scenario) startWorkload(tb *cluster.Testbed, inst *cluster.Instance, r *runner, v VMSpec, set Setup) {
	r.kind = v.Workload.Kind
	switch v.Workload.Kind {
	case WorkloadNone:
	case WorkloadIOR:
		p := set.IOR
		if v.Workload.IOR != nil {
			p = *v.Workload.IOR
		}
		r.ior = workload.NewIOR(p)
		tb.Eng.Go(v.Name+"/ior", func(pr *sim.Proc) { r.ior.Run(pr, inst.Guest) })
	case WorkloadAsyncWR:
		p := set.AsyncWR
		if v.Workload.AsyncWR != nil {
			p = *v.Workload.AsyncWR
		}
		r.awr = workload.NewAsyncWR(p)
		r.awr.Deadline = v.Workload.Deadline
		tb.Eng.Go(v.Name+"/asyncwr", func(pr *sim.Proc) { r.awr.Run(pr, inst.Guest) })
	case WorkloadRewrite:
		p := params.DefaultRewrite()
		if v.Workload.Rewrite != nil {
			p = *v.Workload.Rewrite
		}
		r.rw = workload.NewRewriter(p)
		tb.Eng.Go(v.Name+"/rewrite", func(pr *sim.Proc) { r.rw.Run(pr, inst.Guest) })
	default:
		// Unreachable: resolve rejects unknown kinds before build runs. A new
		// WorkloadKind must be wired both there and here; leaving it a no-op
		// (no workload process) keeps a long-lived server crash-free even if
		// that wiring is missed.
	}
}

// startSampler emits periodic degradation samples (per-VM dirty cache bytes)
// until every planned migration has completed. byName is resolve()'s
// validated name→index map.
func (s *Scenario) startSampler(tb *cluster.Testbed, insts []*cluster.Instance, byName map[string]int) {
	planned := make([]*cluster.Instance, 0, s.planSize())
	seen := map[*cluster.Instance]bool{}
	mark := func(name string) {
		inst := insts[byName[name]]
		if !seen[inst] {
			seen[inst] = true
			planned = append(planned, inst)
		}
	}
	for _, m := range s.migrations {
		mark(m.VM)
	}
	for _, c := range s.campaigns {
		for _, st := range c.Steps {
			mark(st.VM)
		}
	}
	bus := tb.Bus()
	tb.Eng.Go("observer/sampler", func(p *sim.Proc) {
		for {
			done := true
			for _, inst := range planned {
				if !inst.Migrated {
					done = false
					break
				}
			}
			if done {
				return
			}
			for _, inst := range insts {
				bus.Emit(trace.Event{
					Time: p.Now(), Kind: trace.KindSample, VM: inst.Name,
					Detail: "dirty-bytes", Value: float64(inst.Guest.Cache.DirtyBytes()),
				})
			}
			p.Sleep(s.opt.sampleEvery)
		}
	})
}
