package scenario

import (
	"fmt"
	"reflect"
	"sort"
	"sync"
	"sync/atomic"
	"testing"

	"github.com/hybridmig/hybridmig/internal/cluster"
	"github.com/hybridmig/hybridmig/internal/trace"
)

// This file pins the trace-bus contract under WithParallel (DESIGN.md §16):
// observer callbacks are never invoked concurrently, every shard's events
// arrive in that shard's virtual-time order (so any single VM's event stream
// is time-sorted), and the per-VM event sequences are exactly the serial
// run's — only the cross-shard interleaving is merge-ordered.

// recordingObserver captures every event and detects overlapping deliveries:
// the CAS flag trips if two OnEvent calls are ever in flight at once, which
// the lockedObservers adapter must prevent.
type recordingObserver struct {
	in      atomic.Bool
	overlap atomic.Bool
	mu      sync.Mutex
	events  []trace.Event
}

func (r *recordingObserver) OnEvent(e trace.Event) {
	if !r.in.CompareAndSwap(false, true) {
		r.overlap.Store(true)
	}
	r.mu.Lock()
	r.events = append(r.events, e)
	r.mu.Unlock()
	r.in.Store(false)
}

// observedScenario is a deterministic four-component scenario with sampling,
// per-pair cross traffic, and a global fabric-degrade fault, so the sharded
// run exercises the coupled (ShardSet) path with observers attached.
func observedScenario(obs trace.Observer, parallel bool) *Scenario {
	const pairs = 4
	nodes := 2 * pairs
	set := NewSetup(ScaleSmall, nodes)
	set.Cluster.Testbed.FabricBandwidth = 4 * float64(nodes) * set.Cluster.Testbed.NICBandwidth
	opts := []Option{
		WithConfig(set.Cluster), WithPreseededImages(),
		WithObserver(obs), WithSampleInterval(0.5),
		WithFaults(
			FaultSpec{Kind: FaultFabricDegrade, At: 3, Factor: 0.5, Duration: 2},
			// Node 5 is shard-local index 1 in its component: its capacity
			// events exercise the link-name translation back to global ids.
			FaultSpec{Kind: FaultLinkDegrade, Node: 5, At: 2.5, Factor: 0.6, Duration: 1.5},
		),
	}
	if parallel {
		opts = append(opts, WithParallel(4))
	}
	s := New(opts...)
	for p := 0; p < pairs; p++ {
		name := fmt.Sprintf("vm%d", p)
		s.AddVM(VMSpec{Name: name, Node: 2 * p, Approach: cluster.OurApproach, Workload: Rewrite(nil)})
		s.MigrateAt(name, 2*p+1, 2+0.3*float64(p))
	}
	return s
}

// TestParallelObserverOrdering runs the sharded scenario and checks the
// delivery contract directly: no concurrent callbacks (run it under -race for
// the memory-model half of that claim), and a time-sorted stream per VM.
func TestParallelObserverOrdering(t *testing.T) {
	rec := &recordingObserver{}
	s := observedScenario(rec, true)
	cfg, _, _, err := s.resolve()
	if err != nil {
		t.Fatalf("resolve: %v", err)
	}
	plan := s.planPartition(cfg)
	if plan == nil || len(plan.shards) != 4 {
		t.Fatalf("scenario did not shard into 4 components (plan=%v)", plan)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if rec.overlap.Load() {
		t.Fatal("observer callbacks overlapped: lockedObservers failed to serialize delivery")
	}
	if len(rec.events) == 0 {
		t.Fatal("no events observed")
	}
	last := make(map[string]float64)
	for _, e := range rec.events {
		if e.Time > res.Clock {
			t.Fatalf("event at %v after final clock %v", e.Time, res.Clock)
		}
		if e.VM == "" {
			continue
		}
		if prev, ok := last[e.VM]; ok && e.Time < prev {
			t.Fatalf("vm %s: event time went backwards (%v after %v) — shard order not preserved",
				e.VM, e.Time, prev)
		}
		last[e.VM] = e.Time
	}
	if len(last) != 4 {
		t.Fatalf("events cover %d VMs, want 4", len(last))
	}
}

// TestParallelObserverEquivalence compares the event streams of the serial
// and sharded runs: per-VM lifecycle sequences must be identical event for
// event, and the VM-less events (fault injections, fabric capacity steps —
// emitted once, by shard 0) must form the same multiset. Degradation samples
// are the one shard-scoped stream: the serial sampler keeps sampling every VM
// until the last migration anywhere completes, while a shard stops when its
// own component is done — so a VM's parallel sample stream must be a
// non-empty prefix of its serial one (documented in DESIGN.md §16).
func TestParallelObserverEquivalence(t *testing.T) {
	run := func(parallel bool) *recordingObserver {
		rec := &recordingObserver{}
		if _, err := observedScenario(rec, parallel).Run(); err != nil {
			t.Fatalf("parallel=%t: %v", parallel, err)
		}
		return rec
	}
	serial, parallel := run(false), run(true)

	split := func(events []trace.Event) (map[string][]trace.Event, map[string][]trace.Event, []trace.Event) {
		byVM := make(map[string][]trace.Event)
		samples := make(map[string][]trace.Event)
		var global []trace.Event
		for _, e := range events {
			switch {
			case e.VM == "":
				global = append(global, e)
			case e.Kind == trace.KindSample:
				samples[e.VM] = append(samples[e.VM], e)
			default:
				byVM[e.VM] = append(byVM[e.VM], e)
			}
		}
		sort.Slice(global, func(i, j int) bool {
			a, b := global[i], global[j]
			if a.Time != b.Time {
				return a.Time < b.Time
			}
			if a.Kind != b.Kind {
				return a.Kind < b.Kind
			}
			return a.Value < b.Value
		})
		return byVM, samples, global
	}
	sVM, sSamples, sGlobal := split(serial.events)
	pVM, pSamples, pGlobal := split(parallel.events)

	if len(sVM) != len(pVM) {
		t.Fatalf("VM coverage differs: serial %d parallel %d", len(sVM), len(pVM))
	}
	for vm, se := range sVM {
		pe := pVM[vm]
		if !reflect.DeepEqual(se, pe) {
			n := len(se)
			if len(pe) < n {
				n = len(pe)
			}
			for i := 0; i < n; i++ {
				if se[i] != pe[i] {
					t.Fatalf("vm %s event %d differs:\nserial   %v\nparallel %v", vm, i, se[i], pe[i])
				}
			}
			t.Fatalf("vm %s: %d serial events vs %d parallel", vm, len(se), len(pe))
		}
	}
	for vm, pe := range pSamples {
		se := sSamples[vm]
		if len(pe) == 0 || len(pe) > len(se) {
			t.Fatalf("vm %s: %d parallel samples vs %d serial, want non-empty prefix", vm, len(pe), len(se))
		}
		if !reflect.DeepEqual(pe, se[:len(pe)]) {
			t.Fatalf("vm %s: parallel samples are not a prefix of the serial stream", vm)
		}
	}
	if !reflect.DeepEqual(sGlobal, pGlobal) {
		t.Fatalf("VM-less event multisets differ:\nserial   %v\nparallel %v", sGlobal, pGlobal)
	}
}
