package scenario

import (
	"fmt"
	"strings"

	"github.com/hybridmig/hybridmig/internal/cluster"
	"github.com/hybridmig/hybridmig/internal/core"
	"github.com/hybridmig/hybridmig/internal/flow"
	"github.com/hybridmig/hybridmig/internal/metrics"
	"github.com/hybridmig/hybridmig/internal/workload"
)

// WorkloadResult carries a VM workload's counters in one flat record.
// Kind-specific quantities are zero for workloads that do not measure them.
type WorkloadResult struct {
	Kind       WorkloadKind
	Iterations int
	Counter    int64 // AsyncWR computational potential
	ReadBytes  float64
	ReadTime   float64
	WriteBytes float64
	WriteTime  float64
	Runtime    float64
}

// ReadBW returns the average achieved read bandwidth in bytes/s.
func (w WorkloadResult) ReadBW() float64 {
	if w.ReadTime <= 0 {
		return 0
	}
	return w.ReadBytes / w.ReadTime
}

// WriteBW returns the average achieved write bandwidth in bytes/s: over the
// measured write time when the workload tracks it (IOR), else over the whole
// run (AsyncWR's sustained write pressure).
func (w WorkloadResult) WriteBW() float64 {
	if w.WriteTime > 0 {
		return w.WriteBytes / w.WriteTime
	}
	if w.Runtime > 0 {
		return w.WriteBytes / w.Runtime
	}
	return 0
}

// VMResult is one VM's outcome: where it ended up, what its migration cost,
// and what its workload achieved.
type VMResult struct {
	Name     string
	Approach cluster.Approach
	Node     int // final node index
	Migrated bool

	// Migration measurements (zero when the VM never migrated).
	MigrationTime float64
	Downtime      float64 // stop-and-copy duration
	Rounds        int     // hypervisor pre-copy rounds
	Converged     bool
	MemoryBytes   float64 // memory payload moved
	BlockBytes    float64 // block-migration payload (precopy baseline)
	Core          core.Stats

	// Fault/retry outcome, cumulative across attempts. Retries counts
	// re-admissions after aborted attempts; AbortedBytes is the wire traffic
	// those attempts wasted; Exhausted marks a VM whose retry budget ran out
	// without a completed migration (it keeps running at the source).
	Retries      int
	Aborts       int
	AbortedBytes float64
	Exhausted    bool
	// Fenced counts attempts aborted by fencing decisions of the
	// shared-volume attachment manager (a subset of Aborts).
	Fenced int

	Workload WorkloadResult
}

// Result is what Scenario.Run returns: per-VM outcomes, campaign aggregates,
// the CM1 application report when WithCM1 was used, and per-tag network byte
// totals at drain time.
type Result struct {
	// Clock is the virtual time at which the simulation drained.
	Clock float64
	VMs   []VMResult
	// Campaigns holds one aggregate per Campaign declaration, in order.
	Campaigns []*metrics.Campaign
	// CM1 is the application report when the scenario ran under WithCM1.
	CM1 *workload.CM1Report
	// Traffic maps flow tag names (see internal/flow) to total bytes moved
	// over the run.
	Traffic map[string]float64
	// SeedCapture is the hex-float determinism capture (WithSeedCapture).
	SeedCapture string
	// Config is the resolved cluster configuration the run used.
	Config cluster.Config
	// SplitBrainWindows counts the unsafe failovers the attachment manager
	// took over the whole run (possible only with lease fencing disabled).
	SplitBrainWindows int
}

// VM returns the named VM's result, or nil.
func (r *Result) VM(name string) *VMResult {
	for i := range r.VMs {
		if r.VMs[i].Name == name {
			return &r.VMs[i]
		}
	}
	return nil
}

// MigrationTraffic implements the paper's Section 5.2 traffic attribution
// for the given approach: for local-storage approaches, all memory and
// storage transfer bytes plus repository prefetch; for pvfs-shared, memory
// plus every byte of PFS I/O over the VM lifetime.
func (r *Result) MigrationTraffic(a cluster.Approach) float64 {
	if a == cluster.PVFSShared {
		return r.Traffic[flow.TagMemory.String()] + r.Traffic[flow.TagPFS.String()]
	}
	t := r.Traffic[flow.TagMemory.String()] +
		r.Traffic[flow.TagStoragePush.String()] +
		r.Traffic[flow.TagStoragePull.String()] +
		r.Traffic[flow.TagBlockMig.String()] +
		r.Traffic[flow.TagMirror.String()]
	for i := range r.VMs {
		t += r.VMs[i].Core.PrefetchBytes
	}
	return t
}

// TotalRetries sums every VM's migration retries.
func (r *Result) TotalRetries() int {
	var n int
	for i := range r.VMs {
		n += r.VMs[i].Retries
	}
	return n
}

// TotalAbortedBytes sums the wire traffic wasted by every aborted attempt.
func (r *Result) TotalAbortedBytes() float64 {
	var b float64
	for i := range r.VMs {
		b += r.VMs[i].AbortedBytes
	}
	return b
}

// TotalFenced sums every VM's fenced migration attempts.
func (r *Result) TotalFenced() int {
	var n int
	for i := range r.VMs {
		n += r.VMs[i].Fenced
	}
	return n
}

// TotalCounter sums every VM's computational-potential counter (Fig. 4's
// degradation numerator).
func (r *Result) TotalCounter() float64 {
	var c float64
	for i := range r.VMs {
		c += float64(r.VMs[i].Workload.Counter)
	}
	return c
}

// collect assembles the Result after the simulation has drained.
func (s *Scenario) collect(tb *cluster.Testbed, insts []*cluster.Instance, runners []runner, cm1 *workload.CM1, campaigns []*metrics.Campaign) *Result {
	res := &Result{
		Clock:     tb.Eng.Now(),
		VMs:       make([]VMResult, len(insts)),
		Campaigns: campaigns,
		Traffic:   make(map[string]float64, flow.NumTags),
		Config:    tb.Cfg,
	}
	for _, t := range flow.Tags() {
		res.Traffic[t.String()] = tb.Cl.Net.BytesByTag(t)
	}
	if cm1 != nil {
		rep := cm1.Report
		res.CM1 = &rep
	}
	res.SplitBrainWindows = tb.Leases().SplitBrainWindows()
	for i, inst := range insts {
		vr := &res.VMs[i]
		vr.Name = inst.Name
		vr.Approach = inst.Approach
		vr.Node = inst.VM.Node.ID
		vr.Migrated = inst.Migrated
		vr.MigrationTime = inst.MigrationTime
		vr.Downtime = inst.HVResult.Downtime
		vr.Rounds = inst.HVResult.Rounds
		vr.Converged = inst.HVResult.Converged
		vr.MemoryBytes = inst.HVResult.MemoryBytes
		vr.BlockBytes = inst.HVResult.BlockBytes
		vr.Core = inst.CoreStats
		if inst.Attempts > 1 {
			vr.Retries = inst.Attempts - 1
		}
		vr.Aborts = inst.Aborts
		vr.AbortedBytes = inst.AbortedBytes
		vr.Exhausted = inst.Exhausted
		vr.Fenced = inst.Fenced
		vr.Workload = runners[i].result()
	}
	if s.opt.seedCapture {
		res.SeedCapture = res.capture()
	}
	return res
}

// result flattens the live workload's report.
func (r runner) result() WorkloadResult {
	w := WorkloadResult{Kind: r.kind}
	switch {
	case r.ior != nil:
		rep := r.ior.Report
		w.Iterations = rep.Iterations
		w.ReadBytes, w.ReadTime = rep.ReadBytes, rep.ReadTime
		w.WriteBytes, w.WriteTime = rep.WriteBytes, rep.WriteTime
		w.Runtime = rep.Runtime
	case r.awr != nil:
		rep := r.awr.Report
		w.Iterations = rep.Iterations
		w.Counter = rep.Counter
		w.WriteBytes = rep.WriteBytes
		w.Runtime = rep.Runtime
	case r.rw != nil:
		rep := r.rw.Report
		w.Iterations = rep.Iterations
		w.WriteBytes = rep.WriteBytes
		w.Runtime = rep.Runtime
	}
	return w
}

// capture renders the hex-float determinism capture: every float64 with %x
// so any change to event ordering, rate allocation, or byte accounting is
// visible down to the last mantissa bit.
func (r *Result) capture() string {
	var b strings.Builder
	fmt.Fprintf(&b, "scenario clock=%x vms=%d\n", r.Clock, len(r.VMs))
	for i := range r.VMs {
		v := &r.VMs[i]
		fmt.Fprintf(&b, "vm %s approach=%s node=%d migrated=%t mig=%x down=%x rounds=%d mem=%x blk=%x\n",
			v.Name, v.Approach, v.Node, v.Migrated, v.MigrationTime, v.Downtime, v.Rounds, v.MemoryBytes, v.BlockBytes)
		fmt.Fprintf(&b, "vm %s core pushed=%x pulled=%x ondemand=%x prefetch=%x mirrored=%x repo=%x hot=%d\n",
			v.Name, v.Core.PushedBytes, v.Core.PulledBytes, v.Core.OnDemandBytes,
			v.Core.PrefetchBytes, v.Core.MirroredBytes, v.Core.RepoReadBytes, v.Core.SkippedHot)
		fmt.Fprintf(&b, "vm %s workload kind=%s iters=%d counter=%d read=%x write=%x runtime=%x\n",
			v.Name, v.Workload.Kind, v.Workload.Iterations, v.Workload.Counter,
			v.Workload.ReadBytes, v.Workload.WriteBytes, v.Workload.Runtime)
		// Fault lines appear only for VMs a fault actually touched, so
		// fault-free captures stay byte-identical to pre-fault ones.
		if v.Aborts > 0 || v.Retries > 0 || v.Exhausted {
			fmt.Fprintf(&b, "vm %s faults retries=%d aborts=%d exhausted=%t wasted=%x\n",
				v.Name, v.Retries, v.Aborts, v.Exhausted, v.AbortedBytes)
		}
		// A separate conditional line keeps fence-free captures (including
		// the pre-lease goldens) byte-identical.
		if v.Fenced > 0 {
			fmt.Fprintf(&b, "vm %s fenced=%d\n", v.Name, v.Fenced)
		}
	}
	for ci, c := range r.Campaigns {
		if c == nil {
			continue
		}
		fmt.Fprintf(&b, "campaign %d policy=%s jobs=%d makespan=%x downtime=%x moved=%x peak=%d\n",
			ci, c.Policy, c.Jobs, c.Makespan(), c.TotalDowntime, c.TransferredBytes, c.PeakConcurrent)
		if c.Retries > 0 || c.ExhaustedJobs > 0 {
			fmt.Fprintf(&b, "campaign %d faults retries=%d exhausted=%d wasted=%x\n",
				ci, c.Retries, c.ExhaustedJobs, c.WastedBytes)
		}
		if c.FencedMigrations > 0 || c.SplitBrainWindows > 0 {
			fmt.Fprintf(&b, "campaign %d fenced=%d splitbrain=%d\n",
				ci, c.FencedMigrations, c.SplitBrainWindows)
		}
	}
	if r.SplitBrainWindows > 0 {
		fmt.Fprintf(&b, "splitbrain windows=%d\n", r.SplitBrainWindows)
	}
	for _, t := range flow.Tags() {
		if v := r.Traffic[t.String()]; v > 0 {
			fmt.Fprintf(&b, "traffic %s bytes=%x\n", t, v)
		}
	}
	if r.CM1 != nil {
		fmt.Fprintf(&b, "cm1 runtime=%x intervals=%d\n", r.CM1.Runtime, r.CM1.Intervals)
	}
	return b.String()
}
