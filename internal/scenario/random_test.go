package scenario

import (
	"fmt"
	"math"
	"math/rand"
	"os"
	"strconv"
	"testing"

	"github.com/hybridmig/hybridmig/internal/cluster"
	"github.com/hybridmig/hybridmig/internal/flow"
	"github.com/hybridmig/hybridmig/internal/sched"
	"github.com/hybridmig/hybridmig/internal/strategy"
)

// TestRandomScenarioInvariants is the randomized invariant harness: a
// seeded generator builds random scenarios — VM mixes, timed plans and
// campaigns, fault and traffic schedules, retry budgets — and every run is
// checked against the properties that must hold for ANY scenario:
//
//   - determinism: the same seed re-runs to a bit-identical SeedCapture;
//   - terminality: every planned migration ends terminal — completed, or
//     exhausted retries with the VM still at its source;
//   - byte conservation per migration tag: the wire bytes the network
//     accounted equal what the final attempts installed plus what the
//     aborted attempts wasted;
//   - sanity: no negative traffic, wasted bytes only where aborts happened,
//     retries within budget.
//
// CI runs the fixed seed matrix 1..8 under -race; HYBRIDMIG_SEEDS raises
// the count for soak runs.
func TestRandomScenarioInvariants(t *testing.T) {
	seeds := 8
	if s := os.Getenv("HYBRIDMIG_SEEDS"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			seeds = n
		}
	}
	for seed := int64(1); seed <= int64(seeds); seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			s1, plan := randomScenario(seed)
			res1, err := s1.Run()
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			checkScenarioInvariants(t, res1, plan)

			s2, _ := randomScenario(seed)
			res2, err := s2.Run()
			if err != nil {
				t.Fatalf("seed %d rerun: %v", seed, err)
			}
			if res1.SeedCapture != res2.SeedCapture {
				t.Fatalf("seed %d not deterministic:\n--- run1\n%s\n--- run2\n%s",
					seed, res1.SeedCapture, res2.SeedCapture)
			}
		})
	}
}

// planInfo records what the generator scheduled, for the terminality check.
type planInfo struct {
	migrated map[string]bool // VM -> has a planned migration
	maxTries int
}

// randomScenario builds one scenario from the seed. All randomness is drawn
// from the seeded source, so the same seed always builds the same scenario.
func randomScenario(seed int64) (*Scenario, planInfo) {
	rng := rand.New(rand.NewSource(seed))
	nodes := 4 + rng.Intn(3)
	set := NewSetup(ScaleSmall, nodes)
	nVMs := 2 + rng.Intn(3)

	retry := RetrySpec{MaxAttempts: 2 + rng.Intn(2), Backoff: 0.5 + rng.Float64()}
	opts := envParallel([]Option{WithConfig(set.Cluster), WithSeedCapture(), WithRetry(retry)})

	// Sample across the full strategy registry (not a hard-coded list), so
	// every registered strategy — including ones linked in purely through
	// the registration path, like adaptive — faces the randomized invariants.
	var approaches []cluster.Approach
	for _, n := range strategy.Names() {
		approaches = append(approaches, cluster.Approach(n))
	}
	names := make([]string, nVMs)
	specs := make([]VMSpec, nVMs)
	for i := range specs {
		names[i] = fmt.Sprintf("vm%d", i)
		var wl WorkloadSpec
		switch rng.Intn(3) {
		case 0:
			wl = Rewrite(nil)
		case 1:
			p := set.IOR
			p.Iterations = 8 + rng.Intn(12)
			wl = IOR(&p)
		default:
			// idle guest
		}
		specs[i] = VMSpec{
			Name:     names[i],
			Node:     i % nodes,
			Approach: approaches[rng.Intn(len(approaches))],
			Workload: wl,
		}
	}

	// Faults: up to two, always inside the horizon. Degradation windows on
	// the same link must not overlap (validation rejects that), so the
	// generator drops a colliding window instead of scheduling it.
	warmup := 2 + rng.Float64()*3
	var faults []FaultSpec
	overlaps := func(f FaultSpec) bool {
		for _, g := range faults {
			if g.Kind != f.Kind || (f.Kind == FaultLinkDegrade && g.Node != f.Node) {
				continue
			}
			if f.At < g.At+g.Duration && g.At < f.At+f.Duration {
				return true
			}
		}
		return false
	}
	for i, n := 0, rng.Intn(3); i < n; i++ {
		switch rng.Intn(4) {
		case 0:
			faults = append(faults, FaultSpec{Kind: FaultDestCrash,
				VM: names[rng.Intn(nVMs)], At: warmup + rng.Float64()*5})
		case 1:
			faults = append(faults, FaultSpec{Kind: FaultDeadline,
				VM: names[rng.Intn(nVMs)], At: warmup + rng.Float64()*8})
		case 2:
			f := FaultSpec{Kind: FaultLinkDegrade,
				Node: rng.Intn(nodes), At: warmup + rng.Float64()*3,
				Factor: 0.2 + rng.Float64()*0.6, Duration: 1 + rng.Float64()*4}
			if !overlaps(f) {
				faults = append(faults, f)
			}
		default:
			f := FaultSpec{Kind: FaultFabricDegrade,
				At:     warmup + rng.Float64()*3,
				Factor: 0.3 + rng.Float64()*0.5, Duration: 1 + rng.Float64()*4}
			if !overlaps(f) {
				faults = append(faults, f)
			}
		}
	}
	if len(faults) > 0 {
		opts = append(opts, WithFaults(faults...))
	}

	// Background traffic: up to two generators.
	var traffic []TrafficSpec
	for i, n := 0, rng.Intn(3); i < n; i++ {
		src := rng.Intn(nodes)
		dst := (src + 1 + rng.Intn(nodes-1)) % nodes
		start := rng.Float64() * 3
		traffic = append(traffic, TrafficSpec{
			Src: src, Dst: dst, Start: start, Stop: start + 5 + rng.Float64()*15,
			Rate: float64(10+rng.Intn(40)) * 1e6,
		})
	}
	if len(traffic) > 0 {
		opts = append(opts, WithBackgroundTraffic(traffic...))
	}

	s := New(opts...)
	for _, v := range specs {
		s.AddVM(v)
	}

	plan := planInfo{migrated: map[string]bool{}, maxTries: retry.MaxAttempts}
	if rng.Intn(2) == 0 {
		// Timed plan: each VM migrates once, staggered.
		for i, v := range specs {
			dst := (v.Node + 1 + rng.Intn(nodes-1)) % nodes
			s.MigrateAt(v.Name, dst, warmup+float64(i)*rng.Float64()*2)
			plan.migrated[v.Name] = true
		}
	} else {
		// One campaign over a random subset (at least one VM).
		pols := []sched.Policy{sched.AllAtOnce{}, sched.Serial{}, sched.BatchedK{K: 2}}
		var steps []Step
		for _, v := range specs {
			if rng.Intn(3) != 0 {
				dst := (v.Node + 1 + rng.Intn(nodes-1)) % nodes
				steps = append(steps, Step{VM: v.Name, Dst: dst})
				plan.migrated[v.Name] = true
			}
		}
		if len(steps) == 0 {
			dst := (specs[0].Node + 1) % nodes
			steps = append(steps, Step{VM: specs[0].Name, Dst: dst})
			plan.migrated[specs[0].Name] = true
		}
		s.Campaign(warmup, pols[rng.Intn(len(pols))], steps...)
	}
	return s, plan
}

// checkScenarioInvariants asserts the cross-scenario properties on one run.
func checkScenarioInvariants(t *testing.T, res *Result, plan planInfo) {
	t.Helper()
	// Sanity: traffic counters are non-negative (a negative rate or
	// capacity anywhere would eventually show up here or hang the run).
	for tag, b := range res.Traffic {
		if b < 0 {
			t.Errorf("negative traffic %v for tag %s", b, tag)
		}
	}

	// Terminality: every planned migration is terminal, and only fault
	// victims report waste.
	for i := range res.VMs {
		v := &res.VMs[i]
		if plan.migrated[v.Name] {
			if !v.Migrated && !v.Exhausted {
				t.Errorf("VM %s neither migrated nor exhausted", v.Name)
			}
		} else if v.Migrated {
			t.Errorf("VM %s migrated without a plan entry", v.Name)
		}
		if v.Migrated && v.Exhausted {
			t.Errorf("VM %s both migrated and exhausted", v.Name)
		}
		if v.Retries > plan.maxTries-1 {
			t.Errorf("VM %s retries %d exceed budget %d", v.Name, v.Retries, plan.maxTries-1)
		}
		if v.Aborts == 0 && v.AbortedBytes != 0 {
			t.Errorf("VM %s wasted %v bytes without an abort", v.Name, v.AbortedBytes)
		}
		// Fenced aborts can be zero-byte: a lease re-acquisition that fails
		// before any data moves still counts as an aborted attempt.
		if v.Aborts > 0 && v.AbortedBytes <= 0 && v.Fenced == 0 {
			t.Errorf("VM %s aborted %d times but wasted nothing", v.Name, v.Aborts)
		}
	}

	// Byte conservation over the migration tags: what the network accounted
	// must equal what final attempts moved plus what aborted attempts
	// wasted. Exhausted VMs contribute only waste (their last attempt's
	// bytes are inside AbortedBytes).
	tagged := res.Traffic[flow.TagMemory.String()] +
		res.Traffic[flow.TagBlockMig.String()] +
		res.Traffic[flow.TagStoragePush.String()] +
		res.Traffic[flow.TagStoragePull.String()] +
		res.Traffic[flow.TagMirror.String()]
	var want float64
	for i := range res.VMs {
		v := &res.VMs[i]
		if v.Migrated {
			want += v.MemoryBytes + v.BlockBytes + v.Core.WireBytes()
		}
		want += v.AbortedBytes
	}
	slack := 1e-6*math.Max(tagged, want) + 4096
	if math.Abs(tagged-want) > slack {
		t.Errorf("byte conservation violated: tags carry %.1f, attempts account %.1f (diff %.1f)",
			tagged, want, tagged-want)
	}
}
