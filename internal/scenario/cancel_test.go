package scenario

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"github.com/hybridmig/hybridmig/internal/cluster"
	"github.com/hybridmig/hybridmig/internal/params"
	"github.com/hybridmig/hybridmig/internal/sched"
	"github.com/hybridmig/hybridmig/internal/trace"
)

// TestUnknownWorkloadKindRejected is the de-panic regression: an out-of-range
// WorkloadKind must surface as a validation error wrapping
// ErrInvalidScenario, never reach startWorkload's dispatch, and never panic.
func TestUnknownWorkloadKindRejected(t *testing.T) {
	for _, kind := range []WorkloadKind{WorkloadKind(99), WorkloadKind(-1)} {
		s := New(WithNodes(4)).
			AddVM(VMSpec{Name: "vm0", Node: 0, Approach: cluster.OurApproach,
				Workload: WorkloadSpec{Kind: kind}}).
			MigrateAt("vm0", 1, 3)
		res, err := s.Run()
		if err == nil {
			t.Fatalf("kind %d: accepted", int(kind))
		}
		if !errors.Is(err, ErrInvalidScenario) {
			t.Fatalf("kind %d: error %v does not wrap ErrInvalidScenario", int(kind), err)
		}
		if res != nil {
			t.Fatalf("kind %d: validation failure returned a result", int(kind))
		}
	}
}

// TestRunContextBackgroundIdentity pins that the cancellation plumbing is
// invisible when unused: Run and RunContext(Background) produce bit-identical
// seed captures (Background has no Done channel, so no interrupt hook is
// installed and the event loop is untouched).
func TestRunContextBackgroundIdentity(t *testing.T) {
	a, err := quick(WithNodes(4), WithSeedCapture()).Run()
	if err != nil {
		t.Fatal(err)
	}
	b, err := quick(WithNodes(4), WithSeedCapture()).RunContext(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if a.SeedCapture != b.SeedCapture {
		t.Fatalf("Run and RunContext(Background) diverge:\n%s\nvs\n%s", a.SeedCapture, b.SeedCapture)
	}
}

// TestRunContextPreCanceled: a context canceled before RunContext is called
// must fail fast with a *CanceledError and run nothing.
func TestRunContextPreCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := quick(WithNodes(4)).RunContext(ctx)
	if res != nil {
		t.Fatal("pre-canceled run returned a result")
	}
	var ce *CanceledError
	if !errors.As(err, &ce) {
		t.Fatalf("error %T is not a *CanceledError: %v", err, err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("CanceledError does not unwrap to context.Canceled: %v", err)
	}
}

// campaignScenario builds a long-running serial campaign so a mid-run cancel
// has plenty of events left to interrupt.
func campaignScenario(opts ...Option) *Scenario {
	s := New(append([]Option{WithNodes(8), WithHorizon(600)}, opts...)...)
	steps := make([]Step, 0, 6)
	for _, name := range []string{"a", "b", "c", "d", "e", "f"} {
		s.AddVM(VMSpec{Name: name, Node: 0, Approach: cluster.OurApproach, Workload: Rewrite(nil)})
		steps = append(steps, Step{VM: name, Dst: 1})
	}
	return s.Campaign(1, sched.Serial{}, steps...)
}

// TestRunContextCancelMidRun cancels from inside an observer callback (a
// deterministic mid-run instant), and requires: a typed *CanceledError that
// unwraps to the cancellation cause, a partial Result frozen at the
// interruption clock, and no leaked process goroutines.
func TestRunContextCancelMidRun(t *testing.T) {
	before := runtime.NumGoroutine()

	errBoom := errors.New("boom")
	ctx, cancel := context.WithCancelCause(context.Background())
	defer cancel(nil)
	events := 0
	obs := trace.ObserverFunc(func(e trace.Event) {
		events++
		if events == 20 {
			cancel(errBoom)
		}
	})
	res, err := campaignScenario(WithObserver(obs)).RunContext(ctx)
	if err == nil {
		t.Fatal("canceled run reported success")
	}
	var ce *CanceledError
	if !errors.As(err, &ce) {
		t.Fatalf("error %T is not a *CanceledError: %v", err, err)
	}
	if !errors.Is(err, errBoom) {
		t.Fatalf("CanceledError does not unwrap to the cancel cause: %v", err)
	}
	if res == nil {
		t.Fatal("no partial result alongside the cancellation error")
	}
	if res.Clock <= 0 || res.Clock != ce.Clock {
		t.Fatalf("partial result clock %g does not match error clock %g", res.Clock, ce.Clock)
	}
	// The full campaign runs for hundreds of simulated seconds; an interrupt
	// at the 20th trace event must have stopped it far earlier.
	if res.Clock > 100 {
		t.Fatalf("run was not interrupted promptly (clock %g s)", res.Clock)
	}

	// Shutdown must have released every parked process goroutine. The runtime
	// reclaims them asynchronously, so poll briefly.
	for i := 0; ; i++ {
		runtime.GC()
		if runtime.NumGoroutine() <= before+2 {
			break
		}
		if i > 100 {
			t.Fatalf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestRunContextCancelParallel drives the sharded kernel through the same
// observer-triggered cancel: every shard engine carries the interrupt hook,
// so the cancel lands regardless of which shard is running.
func TestRunContextCancelParallel(t *testing.T) {
	// Independent per-VM migrations (no campaign, distinct node pairs) so the
	// component planner actually shards; preseeded to avoid the shared-origin
	// veto.
	// A long rewrite (many short iterations) keeps each shard's engine busy
	// for thousands of events, so the interrupt poll (every 1024 events)
	// fires well before the shard drains.
	long := params.DefaultRewrite()
	long.Iterations = 4096
	long.Interval = 0.1
	build := func(opts ...Option) *Scenario {
		s := New(append([]Option{WithNodes(8), WithHorizon(600), WithPreseededImages(), WithParallel(2)}, opts...)...)
		s.AddVM(VMSpec{Name: "a", Node: 0, Approach: cluster.OurApproach, Workload: Rewrite(&long)}).
			MigrateAt("a", 1, 2)
		s.AddVM(VMSpec{Name: "b", Node: 2, Approach: cluster.OurApproach, Workload: Rewrite(&long)}).
			MigrateAt("b", 3, 2)
		s.AddVM(VMSpec{Name: "c", Node: 4, Approach: cluster.OurApproach, Workload: Rewrite(&long)}).
			MigrateAt("c", 5, 2)
		return s
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	events := 0
	obs := trace.ObserverFunc(func(e trace.Event) {
		events++
		if events == 5 {
			cancel()
		}
	})
	res, err := build(WithObserver(obs)).RunContext(ctx)
	if err == nil {
		t.Fatal("canceled parallel run reported success")
	}
	var ce *CanceledError
	if !errors.As(err, &ce) {
		t.Fatalf("error %T is not a *CanceledError: %v", err, err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("CanceledError does not unwrap to context.Canceled: %v", err)
	}
	if res == nil {
		t.Fatal("no partial result alongside the cancellation error")
	}
}
