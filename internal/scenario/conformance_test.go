package scenario

import (
	"testing"

	"github.com/hybridmig/hybridmig/internal/cluster"
	"github.com/hybridmig/hybridmig/internal/strategy"
	// The adaptive-threshold hybrid registers itself through the public
	// strategy registry; linking it here is all the conformance suite needs
	// to pick it up — there is no adaptive case anywhere below.
	_ "github.com/hybridmig/hybridmig/internal/strategy/adaptive"
)

// TestStrategyConformance runs every *registered* storage-transfer strategy
// — the paper's five plus anything registered on top, today the adaptive
// hybrid — through one shared seeded scenario and asserts the strategy-layer
// contract:
//
//   - termination: the run drains inside the horizon with the migration
//     completed;
//   - determinism: a re-run produces a bit-identical SeedCapture;
//   - per-tag byte conservation: the network's migration-tagged bytes equal
//     what completed attempts installed plus what aborted attempts wasted;
//   - abort→retry convergence: a destination crash injected mid-flight
//     aborts the attempt and the retry budget still converges to a
//     completed migration.
//
// A newly registered strategy is picked up automatically; if it cannot pass
// this suite it does not belong in the registry.
func TestStrategyConformance(t *testing.T) {
	names := strategy.Names()
	if len(names) < 7 {
		t.Fatalf("registry lists %d strategies, want the five Table 1 approaches plus multiattach and adaptive", len(names))
	}
	for _, name := range names {
		name := name
		t.Run(name, func(t *testing.T) {
			res := runConformance(t, name, nil)
			// Probe the attempt span so the fault lands mid-flight for every
			// strategy, however long its migration takes.
			span := res.VM("vm0").MigrationTime
			if span <= 0 {
				t.Fatalf("fault-free migration time = %v", span)
			}
			faults := []FaultSpec{{
				Kind: FaultDestCrash, VM: "vm0", At: conformanceWarmup + span/2,
			}}
			faulted := runConformance(t, name, faults)
			fv := faulted.VM("vm0")
			if fv.Aborts == 0 {
				t.Errorf("mid-flight destination crash at %g never aborted the attempt",
					conformanceWarmup+span/2)
			}
			if fv.Retries == 0 && fv.Aborts > 0 {
				t.Errorf("aborted attempt was never re-admitted")
			}
		})
	}
}

// conformanceWarmup is the shared migration trigger time of the suite.
const conformanceWarmup = 3.0

// runConformance executes the suite's seeded scenario for one strategy —
// two VMs with write-heavy workloads, a timed migration of the first — and
// checks termination, determinism, and byte conservation. It returns the
// first run's result for probing.
func runConformance(t *testing.T, name string, faults []FaultSpec) *Result {
	t.Helper()
	build := func() *Scenario {
		opts := envParallel([]Option{
			WithNodes(4),
			WithSeedCapture(),
			WithRetry(RetrySpec{MaxAttempts: 3, Backoff: 0.5}),
		})
		if len(faults) > 0 {
			opts = append(opts, WithFaults(faults...))
		}
		s := New(opts...).
			AddVM(VMSpec{Name: "vm0", Node: 0, Approach: cluster.Approach(name),
				Workload: Rewrite(nil)}).
			AddVM(VMSpec{Name: "vm1", Node: 1, Approach: cluster.Approach(name),
				Workload: Rewrite(nil)}).
			MigrateAt("vm0", 2, conformanceWarmup)
		return s
	}
	res, err := build().Run()
	if err != nil {
		t.Fatalf("%s: %v", name, err) // termination: no deadline, no validation error
	}
	checkScenarioInvariants(t, res, planInfo{
		migrated: map[string]bool{"vm0": true},
		maxTries: 3,
	})
	v := res.VM("vm0")
	if !v.Migrated && !v.Exhausted {
		t.Fatalf("%s: migration is not terminal", name)
	}
	if len(faults) == 0 && !v.Migrated {
		t.Fatalf("%s: fault-free migration did not complete", name)
	}
	rerun, err := build().Run()
	if err != nil {
		t.Fatalf("%s rerun: %v", name, err)
	}
	if rerun.SeedCapture != res.SeedCapture {
		t.Fatalf("%s: re-run diverged from the seed capture", name)
	}
	return res
}

// TestStrategyPartitionConformance runs every registered strategy through a
// destination partition that opens mid-migration and outlives the lease
// TTL+grace. The contract: the run stays terminal and deterministic for all
// strategies (non-lease strategies stall through the blackout and finish
// after heal; lease-managed ones abort and retry), byte conservation holds,
// and the multiattach dual-attach window resolves the partition through a
// fencing decision — never through a second writer.
func TestStrategyPartitionConformance(t *testing.T) {
	for _, name := range strategy.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			probe := runConformance(t, name, nil)
			span := probe.VM("vm0").MigrationTime
			if span <= 0 {
				t.Fatalf("fault-free migration time = %v", span)
			}
			// The partition must outlive TTL+grace+one reconcile tick (6 s at
			// the defaults) so silent holders are actually fenced, and the
			// retry budget must reach past the heal.
			fault := FaultSpec{Kind: FaultPartition, Node: 2,
				At: conformanceWarmup + span/2, Duration: 8}
			build := func() *Scenario {
				return New(envParallel([]Option{
					WithNodes(4),
					WithSeedCapture(),
					WithRetry(RetrySpec{MaxAttempts: 6, Backoff: 1}),
					WithFaults(fault),
				})...).
					AddVM(VMSpec{Name: "vm0", Node: 0, Approach: cluster.Approach(name),
						Workload: Rewrite(nil)}).
					AddVM(VMSpec{Name: "vm1", Node: 1, Approach: cluster.Approach(name),
						Workload: Rewrite(nil)}).
					MigrateAt("vm0", 2, conformanceWarmup)
			}
			res, err := build().Run()
			if err != nil {
				t.Fatalf("%s under partition: %v", name, err)
			}
			checkScenarioInvariants(t, res, planInfo{
				migrated: map[string]bool{"vm0": true},
				maxTries: 6,
			})
			v := res.VM("vm0")
			if !v.Migrated && !v.Exhausted {
				t.Fatalf("%s: migration under partition is not terminal", name)
			}
			if res.SplitBrainWindows != 0 {
				t.Fatalf("%s: %d split-brain windows with fencing enabled", name, res.SplitBrainWindows)
			}
			if name == string(cluster.MultiAttach) && v.Fenced == 0 {
				t.Errorf("multiattach resolved a mid-window destination partition without a fencing decision")
			}
			rerun, err := build().Run()
			if err != nil {
				t.Fatalf("%s rerun: %v", name, err)
			}
			if rerun.SeedCapture != res.SeedCapture {
				t.Fatalf("%s: partition re-run diverged from the seed capture", name)
			}
		})
	}
}
