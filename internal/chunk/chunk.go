// Package chunk provides chunk-granularity building blocks for the
// migration manager: index arithmetic between byte ranges and chunk indices,
// dense bitmap sets, per-chunk write counters, and a lazy-deletion priority
// queue used by the prioritized prefetcher.
//
// A virtual disk image of S bytes with chunk size C has ceil(S/C) chunks,
// numbered from zero. All sets in this package are dense (bitmap-backed)
// because the image is small relative to memory and most operations touch
// large contiguous runs.
package chunk

import (
	"container/heap"
	"fmt"
	"math/bits"
)

// Idx identifies a chunk within an image.
type Idx int32

// Range is a byte range [Off, Off+Len) within an image.
type Range struct {
	Off int64
	Len int64
}

// End returns the exclusive end offset.
func (r Range) End() int64 { return r.Off + r.Len }

// Empty reports whether the range has zero length.
func (r Range) Empty() bool { return r.Len <= 0 }

// Geometry describes the chunking of an image.
type Geometry struct {
	ImageSize int64 // bytes
	ChunkSize int64 // bytes per chunk
}

// NewGeometry validates and returns a Geometry.
func NewGeometry(imageSize, chunkSize int64) Geometry {
	if imageSize <= 0 || chunkSize <= 0 {
		panic(fmt.Sprintf("chunk: invalid geometry (image %d, chunk %d)", imageSize, chunkSize))
	}
	return Geometry{ImageSize: imageSize, ChunkSize: chunkSize}
}

// Chunks returns the number of chunks in the image.
func (g Geometry) Chunks() int {
	return int((g.ImageSize + g.ChunkSize - 1) / g.ChunkSize)
}

// ChunkOf returns the chunk containing byte offset off.
func (g Geometry) ChunkOf(off int64) Idx {
	if off < 0 || off >= g.ImageSize {
		panic(fmt.Sprintf("chunk: offset %d outside image of %d bytes", off, g.ImageSize))
	}
	return Idx(off / g.ChunkSize)
}

// Span returns the half-open chunk interval [first, last] covering r.
func (g Geometry) Span(r Range) (first, last Idx) {
	if r.Empty() {
		panic("chunk: empty range has no span")
	}
	if r.Off < 0 || r.End() > g.ImageSize {
		panic(fmt.Sprintf("chunk: range [%d,%d) outside image of %d bytes", r.Off, r.End(), g.ImageSize))
	}
	return Idx(r.Off / g.ChunkSize), Idx((r.End() - 1) / g.ChunkSize)
}

// ChunkRange returns the byte range of chunk c (the final chunk may be
// shorter than ChunkSize).
func (g Geometry) ChunkRange(c Idx) Range {
	off := int64(c) * g.ChunkSize
	if off < 0 || off >= g.ImageSize {
		panic(fmt.Sprintf("chunk: index %d out of image", c))
	}
	ln := g.ChunkSize
	if off+ln > g.ImageSize {
		ln = g.ImageSize - off
	}
	return Range{Off: off, Len: ln}
}

// ChunkLen returns the byte length of chunk c.
func (g Geometry) ChunkLen(c Idx) int64 { return g.ChunkRange(c).Len }

// FullyCovers reports whether r covers the whole of chunk c: a write that
// fully covers a chunk can proceed without read-modify-write.
func (g Geometry) FullyCovers(r Range, c Idx) bool {
	cr := g.ChunkRange(c)
	return r.Off <= cr.Off && r.End() >= cr.End()
}

// Set is a dense bitmap of chunk indices with a cached population count.
type Set struct {
	bits []uint64
	n    int // chunks representable
	pop  int
}

// NewSet returns an empty set sized for n chunks.
func NewSet(n int) *Set {
	if n < 0 {
		panic("chunk: negative set size")
	}
	return &Set{bits: make([]uint64, (n+63)/64), n: n}
}

// Len returns the number of chunks the set can hold.
func (s *Set) Len() int { return s.n }

// Count returns the number of chunks present.
func (s *Set) Count() int { return s.pop }

// Empty reports whether the set has no members.
func (s *Set) Empty() bool { return s.pop == 0 }

func (s *Set) check(c Idx) {
	if c < 0 || int(c) >= s.n {
		panic(fmt.Sprintf("chunk: index %d out of set of %d", c, s.n))
	}
}

// Contains reports membership.
func (s *Set) Contains(c Idx) bool {
	s.check(c)
	return s.bits[c>>6]&(1<<(uint(c)&63)) != 0
}

// Add inserts c; reports whether it was newly added.
func (s *Set) Add(c Idx) bool {
	s.check(c)
	w, b := c>>6, uint64(1)<<(uint(c)&63)
	if s.bits[w]&b != 0 {
		return false
	}
	s.bits[w] |= b
	s.pop++
	return true
}

// Remove deletes c; reports whether it was present.
func (s *Set) Remove(c Idx) bool {
	s.check(c)
	w, b := c>>6, uint64(1)<<(uint(c)&63)
	if s.bits[w]&b == 0 {
		return false
	}
	s.bits[w] &^= b
	s.pop--
	return true
}

// AddRange inserts all chunks in [first, last].
func (s *Set) AddRange(first, last Idx) {
	for c := first; c <= last; c++ {
		s.Add(c)
	}
}

// Clone returns a deep copy.
func (s *Set) Clone() *Set {
	out := &Set{bits: make([]uint64, len(s.bits)), n: s.n, pop: s.pop}
	copy(out.bits, s.bits)
	return out
}

// Clear removes all members.
func (s *Set) Clear() {
	for i := range s.bits {
		s.bits[i] = 0
	}
	s.pop = 0
}

// UnionWith adds every member of other (sets must be the same size).
func (s *Set) UnionWith(other *Set) {
	if other.n != s.n {
		panic("chunk: union of different-sized sets")
	}
	pop := 0
	for i := range s.bits {
		s.bits[i] |= other.bits[i]
		pop += bits.OnesCount64(s.bits[i])
	}
	s.pop = pop
}

// ForEach calls fn for each member in ascending order; fn returning false
// stops iteration early.
func (s *Set) ForEach(fn func(Idx) bool) {
	for w, word := range s.bits {
		for word != 0 {
			b := bits.TrailingZeros64(word)
			if !fn(Idx(w*64 + b)) {
				return
			}
			word &^= 1 << uint(b)
		}
	}
}

// Members returns all members in ascending order.
func (s *Set) Members() []Idx {
	out := make([]Idx, 0, s.pop)
	s.ForEach(func(c Idx) bool {
		out = append(out, c)
		return true
	})
	return out
}

// NextFrom returns the smallest member >= c, or -1 if none.
func (s *Set) NextFrom(c Idx) Idx {
	if c < 0 {
		c = 0
	}
	if int(c) >= s.n {
		return -1
	}
	w := int(c >> 6)
	word := s.bits[w] >> (uint(c) & 63) << (uint(c) & 63)
	for {
		if word != 0 {
			return Idx(w*64 + bits.TrailingZeros64(word))
		}
		w++
		if w >= len(s.bits) {
			return -1
		}
		word = s.bits[w]
	}
}

// NextRunFrom returns the first contiguous run of members starting at or
// after c, up to maxLen chunks long. Returns (-1, 0) when no member remains.
// The migration manager uses runs to batch contiguous chunks into single
// streamed transfers.
func (s *Set) NextRunFrom(c Idx, maxLen int) (start Idx, length int) {
	start = s.NextFrom(c)
	if start < 0 {
		return -1, 0
	}
	length = 1
	for length < maxLen && int(start)+length < s.n && s.Contains(start+Idx(length)) {
		length++
	}
	return start, length
}

// Counter tracks per-chunk write counts. Counts saturate at the maximum
// uint32 rather than wrapping.
type Counter struct {
	counts []uint32
}

// NewCounter returns a zeroed counter for n chunks.
func NewCounter(n int) *Counter { return &Counter{counts: make([]uint32, n)} }

// Len returns the number of chunks covered.
func (wc *Counter) Len() int { return len(wc.counts) }

// Get returns the count for chunk c.
func (wc *Counter) Get(c Idx) uint32 { return wc.counts[c] }

// Inc increments the count for chunk c and returns the new value.
func (wc *Counter) Inc(c Idx) uint32 {
	if wc.counts[c] != ^uint32(0) {
		wc.counts[c]++
	}
	return wc.counts[c]
}

// Reset zeroes all counts.
func (wc *Counter) Reset() {
	for i := range wc.counts {
		wc.counts[i] = 0
	}
}

// Snapshot returns a copy of the counts slice.
func (wc *Counter) Snapshot() []uint32 {
	out := make([]uint32, len(wc.counts))
	copy(out, wc.counts)
	return out
}

// prioItem is a queue entry: chunk c with priority (count, then lower index
// first for determinism).
type prioItem struct {
	c     Idx
	count uint32
}

type prioHeap []prioItem

func (h prioHeap) Len() int { return len(h) }
func (h prioHeap) Less(i, j int) bool {
	if h[i].count != h[j].count {
		return h[i].count > h[j].count // max-heap on count
	}
	return h[i].c < h[j].c
}
func (h prioHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *prioHeap) Push(x any)   { *h = append(*h, x.(prioItem)) }
func (h *prioHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// PullQueue orders chunks by decreasing write count, implementing the
// paper's BACKGROUND PULL priority ("frequently modified chunks will also be
// modified in the future"). Entries are removed lazily: a membership set is
// consulted at pop time, so cancellations (writes at the destination) are
// O(1).
type PullQueue struct {
	h       prioHeap
	members *Set
}

// NewPullQueue builds a queue over every member of remaining, prioritized by
// counts. The queue holds a reference to remaining: removing a chunk from
// the set cancels its queue entry.
func NewPullQueue(remaining *Set, counts []uint32) *PullQueue {
	q := &PullQueue{members: remaining}
	q.h = make(prioHeap, 0, remaining.Count())
	remaining.ForEach(func(c Idx) bool {
		q.h = append(q.h, prioItem{c: c, count: counts[c]})
		return true
	})
	heap.Init(&q.h)
	return q
}

// Pop returns the highest-priority chunk still in the remaining set, or -1
// when the queue is exhausted.
func (q *PullQueue) Pop() Idx {
	for len(q.h) > 0 {
		it := heap.Pop(&q.h).(prioItem)
		if q.members.Contains(it.c) {
			return it.c
		}
	}
	return -1
}

// Peek returns the next chunk Pop would return without removing it, or -1.
func (q *PullQueue) Peek() Idx {
	for len(q.h) > 0 {
		if q.members.Contains(q.h[0].c) {
			return q.h[0].c
		}
		heap.Pop(&q.h)
	}
	return -1
}

// Empty reports whether no live entries remain.
func (q *PullQueue) Empty() bool { return q.Peek() < 0 }
