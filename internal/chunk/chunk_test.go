package chunk

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestGeometryBasics(t *testing.T) {
	g := NewGeometry(1000, 256)
	if g.Chunks() != 4 {
		t.Fatalf("Chunks = %d, want 4", g.Chunks())
	}
	if g.ChunkOf(0) != 0 || g.ChunkOf(255) != 0 || g.ChunkOf(256) != 1 || g.ChunkOf(999) != 3 {
		t.Fatal("ChunkOf wrong")
	}
	// Final chunk is short.
	if got := g.ChunkLen(3); got != 1000-3*256 {
		t.Fatalf("final chunk len = %d", got)
	}
}

func TestGeometrySpan(t *testing.T) {
	g := NewGeometry(1024, 256)
	first, last := g.Span(Range{Off: 100, Len: 300})
	if first != 0 || last != 1 {
		t.Fatalf("span = [%d,%d], want [0,1]", first, last)
	}
	first, last = g.Span(Range{Off: 256, Len: 256})
	if first != 1 || last != 1 {
		t.Fatalf("span = [%d,%d], want [1,1]", first, last)
	}
	first, last = g.Span(Range{Off: 0, Len: 1024})
	if first != 0 || last != 3 {
		t.Fatalf("span = [%d,%d], want [0,3]", first, last)
	}
}

func TestFullyCovers(t *testing.T) {
	g := NewGeometry(1024, 256)
	if !g.FullyCovers(Range{Off: 0, Len: 512}, 0) || !g.FullyCovers(Range{Off: 0, Len: 512}, 1) {
		t.Fatal("full coverage not detected")
	}
	if g.FullyCovers(Range{Off: 1, Len: 511}, 0) {
		t.Fatal("partial head coverage treated as full")
	}
	if g.FullyCovers(Range{Off: 0, Len: 511}, 1) {
		t.Fatal("partial tail coverage treated as full")
	}
	// Short final chunk: covering its actual bytes counts as full.
	g2 := NewGeometry(1000, 256)
	if !g2.FullyCovers(Range{Off: 768, Len: 232}, 3) {
		t.Fatal("short final chunk full coverage not detected")
	}
}

// TestSpanRoundTrip: every chunk in a range's span overlaps the range, and
// chunks outside do not.
func TestSpanRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		size := int64(1 + rng.Intn(100000))
		cs := int64(1 + rng.Intn(1000))
		g := NewGeometry(size, cs)
		off := rng.Int63n(size)
		ln := 1 + rng.Int63n(size-off)
		r := Range{Off: off, Len: ln}
		first, last := g.Span(r)
		for c := Idx(0); int(c) < g.Chunks(); c++ {
			cr := g.ChunkRange(c)
			overlaps := cr.Off < r.End() && r.Off < cr.End()
			inSpan := c >= first && c <= last
			if overlaps != inSpan {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSetBasics(t *testing.T) {
	s := NewSet(200)
	if !s.Empty() || s.Count() != 0 {
		t.Fatal("new set not empty")
	}
	if !s.Add(5) || s.Add(5) {
		t.Fatal("Add return values wrong")
	}
	if !s.Contains(5) || s.Contains(6) {
		t.Fatal("Contains wrong")
	}
	s.Add(64)
	s.Add(199)
	if s.Count() != 3 {
		t.Fatalf("Count = %d, want 3", s.Count())
	}
	if !s.Remove(64) || s.Remove(64) {
		t.Fatal("Remove return values wrong")
	}
	got := s.Members()
	if len(got) != 2 || got[0] != 5 || got[1] != 199 {
		t.Fatalf("Members = %v", got)
	}
}

func TestSetNextFrom(t *testing.T) {
	s := NewSet(300)
	for _, c := range []Idx{3, 70, 71, 128, 299} {
		s.Add(c)
	}
	cases := []struct{ from, want Idx }{
		{0, 3}, {3, 3}, {4, 70}, {70, 70}, {72, 128}, {129, 299}, {299, 299},
	}
	for _, tc := range cases {
		if got := s.NextFrom(tc.from); got != tc.want {
			t.Fatalf("NextFrom(%d) = %d, want %d", tc.from, got, tc.want)
		}
	}
	s.Remove(299)
	if got := s.NextFrom(129); got != -1 {
		t.Fatalf("NextFrom(129) = %d, want -1", got)
	}
}

func TestSetNextRunFrom(t *testing.T) {
	s := NewSet(100)
	for _, c := range []Idx{10, 11, 12, 13, 40} {
		s.Add(c)
	}
	start, n := s.NextRunFrom(0, 8)
	if start != 10 || n != 4 {
		t.Fatalf("run = (%d,%d), want (10,4)", start, n)
	}
	start, n = s.NextRunFrom(0, 2)
	if start != 10 || n != 2 {
		t.Fatalf("capped run = (%d,%d), want (10,2)", start, n)
	}
	start, n = s.NextRunFrom(14, 8)
	if start != 40 || n != 1 {
		t.Fatalf("run = (%d,%d), want (40,1)", start, n)
	}
	start, n = s.NextRunFrom(41, 8)
	if start != -1 || n != 0 {
		t.Fatalf("run = (%d,%d), want (-1,0)", start, n)
	}
}

func TestSetCloneClearUnion(t *testing.T) {
	a := NewSet(128)
	a.AddRange(0, 9)
	b := a.Clone()
	b.Add(100)
	if a.Contains(100) {
		t.Fatal("clone aliases parent")
	}
	a.UnionWith(b)
	if a.Count() != 11 {
		t.Fatalf("union count = %d, want 11", a.Count())
	}
	a.Clear()
	if !a.Empty() {
		t.Fatal("clear failed")
	}
}

// TestSetMatchesMap: bitmap semantics match a reference map implementation
// under random operations.
func TestSetMatchesMap(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(500)
		s := NewSet(n)
		ref := make(map[Idx]bool)
		for i := 0; i < 300; i++ {
			c := Idx(rng.Intn(n))
			switch rng.Intn(3) {
			case 0:
				if s.Add(c) == ref[c] {
					return false
				}
				ref[c] = true
			case 1:
				if s.Remove(c) != ref[c] {
					return false
				}
				delete(ref, c)
			case 2:
				if s.Contains(c) != ref[c] {
					return false
				}
			}
		}
		if s.Count() != len(ref) {
			return false
		}
		for _, c := range s.Members() {
			if !ref[c] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestCounter(t *testing.T) {
	wc := NewCounter(10)
	if wc.Get(3) != 0 {
		t.Fatal("fresh counter nonzero")
	}
	if wc.Inc(3) != 1 || wc.Inc(3) != 2 {
		t.Fatal("Inc wrong")
	}
	snap := wc.Snapshot()
	wc.Inc(3)
	if snap[3] != 2 {
		t.Fatal("snapshot aliases counter")
	}
	wc.Reset()
	if wc.Get(3) != 0 {
		t.Fatal("reset failed")
	}
}

func TestPullQueueOrder(t *testing.T) {
	remaining := NewSet(10)
	counts := make([]uint32, 10)
	for c, n := range map[Idx]uint32{1: 5, 2: 1, 3: 9, 7: 5, 9: 0} {
		remaining.Add(c)
		counts[c] = n
	}
	q := NewPullQueue(remaining, counts)
	var got []Idx
	for {
		c := q.Pop()
		if c < 0 {
			break
		}
		remaining.Remove(c)
		got = append(got, c)
	}
	// Decreasing count; ties by ascending index: 3(9), 1(5), 7(5), 2(1), 9(0).
	want := []Idx{3, 1, 7, 2, 9}
	if len(got) != len(want) {
		t.Fatalf("got %v want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v want %v", got, want)
		}
	}
}

func TestPullQueueLazyCancel(t *testing.T) {
	remaining := NewSet(5)
	counts := []uint32{0, 10, 20, 30, 40}
	remaining.AddRange(0, 4)
	q := NewPullQueue(remaining, counts)
	// A destination write removes chunk 4 before it is pulled.
	remaining.Remove(4)
	if got := q.Pop(); got != 3 {
		t.Fatalf("Pop = %d, want 3 (4 canceled)", got)
	}
	remaining.Remove(3) // popped chunks are removed by the caller
	remaining.Remove(2)
	if got := q.Peek(); got != 1 {
		t.Fatalf("Peek = %d, want 1", got)
	}
	if q.Empty() {
		t.Fatal("queue empty with live entries")
	}
	remaining.Remove(1)
	remaining.Remove(0)
	if !q.Empty() {
		t.Fatal("queue not empty after all canceled")
	}
}

// TestPullQueueProperty: popped sequence is always non-increasing in count
// and covers exactly the non-canceled members.
func TestPullQueueProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(200)
		remaining := NewSet(n)
		counts := make([]uint32, n)
		for c := 0; c < n; c++ {
			if rng.Intn(2) == 0 {
				remaining.Add(Idx(c))
				counts[c] = uint32(rng.Intn(8))
			}
		}
		q := NewPullQueue(remaining, counts)
		// Cancel a random subset.
		canceled := make(map[Idx]bool)
		remaining.ForEach(func(c Idx) bool {
			if rng.Intn(4) == 0 {
				canceled[c] = true
			}
			return true
		})
		for c := range canceled {
			remaining.Remove(c)
		}
		expect := remaining.Count()
		last := uint32(1 << 31)
		popped := 0
		for {
			c := q.Pop()
			if c < 0 {
				break
			}
			if canceled[c] {
				return false
			}
			if counts[c] > last {
				return false
			}
			last = counts[c]
			remaining.Remove(c)
			popped++
		}
		return popped == expect
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
