// Package guest models the I/O stack between a workload inside a VM and its
// virtual disk image: a buffered cache layer with dirty throttling and
// background writeback (the backing store of the migration manager), a raw
// physical disk at the bottom, and a journaling filesystem that maps file
// I/O onto virtual-disk offsets.
//
// The stack mirrors the paper's deployment: guest writes reach the
// FUSE-based migration manager synchronously (FUSE was write-through), and
// the manager's backing file is what the host page cache absorbs. So the
// manager interposes at guest-write granularity while its backing store
// behaves like a cached local file:
//
//	workload -> FS -> manager (package core / hv) -> Cache -> raw disk
//
// The cache layer stands for the combined guest+host page-cache path that
// makes the paper's no-migration IOR maxima possible (reads of resident data
// at ~1 GB/s, buffered writes absorbed at ~266 MB/s against a 55 MB/s disk),
// with writeback continuously draining to the image. Approaches backed by
// local storage run with the cache enabled; the pvfs-shared baseline runs in
// passthrough mode, reflecting that shared-storage live migration mandates
// cache=none and that PVFS does no client-side caching — which is exactly
// why the paper measures its throughput at a few percent of the local case.
//
// The filesystem contributes the paper's "hot chunk" behaviour: every
// MetadataEvery bytes of data, a journal commit and an inode-table update
// rewrite a small set of chunks, which therefore accumulate write counts far
// above the Threshold — precisely the chunks the hybrid strategy stops
// pushing and the prioritized prefetcher pulls first.
//
// For buffered workloads, writes also dirty the VM's memory (the guest's own
// page-cache copy lives in guest RAM), which is what couples heavy buffered
// I/O to memory pre-copy convergence.
package guest

import (
	"fmt"

	"github.com/hybridmig/hybridmig/internal/chunk"
	"github.com/hybridmig/hybridmig/internal/fabric"
	"github.com/hybridmig/hybridmig/internal/flow"
	"github.com/hybridmig/hybridmig/internal/params"
	"github.com/hybridmig/hybridmig/internal/sim"
	"github.com/hybridmig/hybridmig/internal/vm"
)

// Guest bundles the I/O stack for one VM.
type Guest struct {
	VM *vm.VM
	P  params.Guest
	// Buffered marks workloads whose writes transit the guest page cache
	// and therefore dirty guest memory.
	Buffered bool
	Cache    *Cache
	FS       *FS
}

// Options configures the I/O stack assembly.
type Options struct {
	// HostCache false puts the cache in passthrough mode (cache=none
	// semantics, mandatory for the pvfs-shared baseline).
	HostCache bool
	// Buffered controls guest-memory dirtying by writes (the guest's own
	// page-cache copy); storage benchmarks running O_DIRECT set it false.
	Buffered bool
	// Inner is the backing device below the cache, typically a RawDisk on
	// the VM's current node.
	Inner vm.DiskImage
	// MakeImage builds the manager layer on top of the cache (its backing
	// store); nil attaches the cache itself as the VM's image.
	MakeImage func(backing vm.DiskImage) vm.DiskImage
}

// New assembles the I/O stack and attaches the top image to the VM.
func New(eng *sim.Engine, v *vm.VM, p params.Guest, opts Options) *Guest {
	if opts.Inner == nil {
		panic("guest: Options.Inner is required")
	}
	g := &Guest{VM: v, P: p, Buffered: opts.Buffered}
	g.Cache = newCache(eng, g, opts.Inner, opts.HostCache)
	if opts.MakeImage != nil {
		v.Image = opts.MakeImage(g.Cache)
	} else {
		v.Image = g.Cache
	}
	g.FS = newFS(g)
	return g
}

// RawDisk is the physical local disk below the cache: reads and writes pay
// disk time on whichever node currently hosts the VM.
type RawDisk struct {
	Cl   *fabric.Cluster
	Node func() *fabric.Node
	Geo  chunk.Geometry
}

var _ vm.DiskImage = (*RawDisk)(nil)

// Read implements vm.DiskImage.
func (d *RawDisk) Read(p *sim.Proc, off, length int64) {
	d.Cl.DiskIO(p, d.Node(), float64(length), flow.TagOther)
}

// Write implements vm.DiskImage.
func (d *RawDisk) Write(p *sim.Proc, off, length int64) {
	d.Cl.DiskIO(p, d.Node(), float64(length), flow.TagOther)
}

// Sync implements vm.DiskImage (the platter is always durable here).
func (d *RawDisk) Sync(p *sim.Proc) {}

// Geometry implements vm.DiskImage.
func (d *RawDisk) Geometry() chunk.Geometry { return d.Geo }

// Inner returns the device below the cache layer.
func (g *Guest) Inner() vm.DiskImage { return g.Cache.inner }

// Cache is the buffered I/O layer at cache-page granularity over the image's
// address space. It implements vm.DiskImage so it can interpose on the VM's
// image. In passthrough mode it forwards everything to the inner image.
type Cache struct {
	eng   *sim.Engine
	g     *Guest
	inner vm.DiskImage
	on    bool // false = passthrough (cache=none semantics)

	pageSize int64
	pages    int
	cached   *chunk.Set // pages whose content is resident
	dirty    *chunk.Set // pages not yet written back
	memReg   vm.Region  // guest RAM standing in for cached file data

	throttle  sim.Cond // writers blocked on the dirty limit
	wbKick    sim.Cond // wakes the writeback worker
	idle      sim.Cond // broadcast when dirty drains to zero
	wbFlights int      // writeback batches in flight

	// Stats.
	HitBytes       float64
	MissBytes      float64
	AbsorbedBytes  float64
	WritebackBytes float64
}

var _ vm.DiskImage = (*Cache)(nil)

func newCache(eng *sim.Engine, g *Guest, inner vm.DiskImage, on bool) *Cache {
	geo := inner.Geometry()
	ps := g.P.CachePage
	if ps <= 0 {
		panic("guest: CachePage must be positive")
	}
	n := int((geo.ImageSize + ps - 1) / ps)
	region := g.P.CacheRegion
	if region > g.VM.Mem.Size/2 {
		region = g.VM.Mem.Size / 2
	}
	c := &Cache{
		eng:      eng,
		g:        g,
		inner:    inner,
		on:       on,
		pageSize: ps,
		pages:    n,
		cached:   chunk.NewSet(n),
		dirty:    chunk.NewSet(n),
		memReg:   g.VM.Mem.Alloc(region, false),
	}
	if on {
		eng.Go(fmt.Sprintf("%s/writeback", g.VM.Name), c.writebackLoop)
	}
	return c
}

// Geometry implements vm.DiskImage.
func (c *Cache) Geometry() chunk.Geometry { return c.inner.Geometry() }

// DirtyBytes returns the bytes awaiting writeback.
func (c *Cache) DirtyBytes() int64 { return int64(c.dirty.Count()) * c.pageSize }

// CachedBytes returns the bytes resident in the cache.
func (c *Cache) CachedBytes() int64 { return int64(c.cached.Count()) * c.pageSize }

// span converts a byte range to cache-page interval [first, last].
func (c *Cache) span(off, length int64) (chunk.Idx, chunk.Idx) {
	return chunk.Idx(off / c.pageSize), chunk.Idx((off + length - 1) / c.pageSize)
}

// dirtyGuestMem charges the guest's own page-cache copy for buffered I/O.
func (c *Cache) dirtyGuestMem(off, length int64) {
	if c.g.Buffered {
		c.g.VM.Mem.DirtyMapped(c.memReg, off, length)
	}
}

// Write implements vm.DiskImage: it buffers [off, off+length), absorbing at
// cache write speed after blocking while the cache is over its dirty limit.
// In passthrough mode the write goes straight to the image.
func (c *Cache) Write(p *sim.Proc, off, length int64) {
	if length <= 0 {
		return
	}
	// Host-side path: a write already submitted completes even if the VM
	// pauses meanwhile (DMA drain); new I/O is gated at the FS boundary.
	c.dirtyGuestMem(off, length)
	if !c.on {
		c.inner.Write(p, off, length)
		return
	}
	for c.DirtyBytes() >= c.g.P.DirtyLimit {
		c.throttle.Wait(p)
	}
	p.Sleep(float64(length) / c.g.P.CacheWriteBandwidth)
	first, last := c.span(off, length)
	for pg := first; pg <= last; pg++ {
		c.cached.Add(pg)
		c.dirty.Add(pg)
	}
	c.AbsorbedBytes += float64(length)
	c.wbKick.Broadcast(c.eng)
}

// Read implements vm.DiskImage: resident runs at cache speed, the rest from
// the image (after which they are cached clean).
func (c *Cache) Read(p *sim.Proc, off, length int64) {
	if length <= 0 {
		return
	}
	if !c.on {
		c.inner.Read(p, off, length)
		return
	}
	first, last := c.span(off, length)
	run := first
	for run <= last {
		inCache := c.cached.Contains(run)
		end := run
		for end+1 <= last && c.cached.Contains(end+1) == inCache {
			end++
		}
		runOff := int64(run) * c.pageSize
		runLen := int64(end-run+1) * c.pageSize
		if rem := off + length - runOff; rem < runLen {
			runLen = rem
		}
		if runOff < off {
			runLen -= off - runOff
			runOff = off
		}
		if inCache {
			p.Sleep(float64(runLen) / c.g.P.CacheReadBandwidth)
			c.HitBytes += float64(runLen)
		} else {
			c.inner.Read(p, runOff, runLen)
			for pg := run; pg <= end; pg++ {
				c.cached.Add(pg)
			}
			c.MissBytes += float64(runLen)
			c.dirtyGuestMem(runOff, runLen)
		}
		run = end + 1
	}
}

// Sync implements vm.DiskImage: every dirty page reaches the image, then the
// image itself syncs. During a migration this is the control-transfer hook,
// so the flush rides inside the hypervisor's stop-and-copy window.
func (c *Cache) Sync(p *sim.Proc) {
	if c.on {
		c.wbKick.Broadcast(c.eng)
		for c.dirty.Count() > 0 || c.wbFlights > 0 {
			c.idle.Wait(p)
		}
	}
	c.inner.Sync(p)
}

// Invalidate resets the cache to cold. The orchestrator calls it right
// after a live migration's control transfer: the cache belongs to the
// source host and does not travel with the VM. Dirty pages still queued on
// the source keep draining there (the source stays up until released); from
// this object's point of view they are simply dropped, and any blocked
// writers are released.
func (c *Cache) Invalidate() {
	c.cached.Clear()
	c.dirty.Clear()
	c.throttle.Broadcast(c.eng)
}

// MarkCachedRange records that [off, off+length) is resident and clean.
// Migration transfers land in the destination host's RAM, so the
// orchestrator marks transferred chunks warm after a control transfer and
// as late pulls install.
func (c *Cache) MarkCachedRange(off, length int64) {
	if !c.on || length <= 0 {
		return
	}
	first, last := c.span(off, length)
	for pg := first; pg <= last; pg++ {
		c.cached.Add(pg)
	}
}

// writebackLoop is the flusher thread: whenever dirty pages exist it writes
// them back in offset order (rotating cursor), at most WritebackBatch bytes
// per submission.
func (c *Cache) writebackLoop(p *sim.Proc) {
	batchPages := int(c.g.P.WritebackBatch / c.pageSize)
	if batchPages < 1 {
		batchPages = 1
	}
	cursor := chunk.Idx(0)
	for {
		for c.dirty.Count() == 0 {
			if c.wbFlights == 0 {
				c.idle.Broadcast(c.eng)
			}
			c.wbKick.Wait(p)
		}
		start, n := c.dirty.NextRunFrom(cursor, batchPages)
		if start < 0 {
			start, n = c.dirty.NextRunFrom(0, batchPages)
		}
		if start < 0 {
			continue
		}
		for i := 0; i < n; i++ {
			c.dirty.Remove(start + chunk.Idx(i))
		}
		c.throttle.Broadcast(c.eng)
		off := int64(start) * c.pageSize
		length := int64(n) * c.pageSize
		if geo := c.Geometry(); off+length > geo.ImageSize {
			length = geo.ImageSize - off
		}
		c.wbFlights++
		c.inner.Write(p, off, length)
		c.wbFlights--
		c.WritebackBytes += float64(length)
		cursor = start + chunk.Idx(n)
		if int(cursor) >= c.pages {
			cursor = 0
		}
	}
}

// FS is a minimal journaling filesystem over the virtual disk: contiguous
// extents for file data, a cyclic journal, and a hot inode-table chunk.
type FS struct {
	g *Guest

	journalOff int64
	journalLen int64
	journalCur int64
	inodeOff   int64
	dataOff    int64
	dataEnd    int64
	nextAlloc  int64
	sinceMeta  int64

	files map[string]*File
}

// File is an open file backed by a contiguous extent.
type File struct {
	Name string
	Off  int64 // extent base within the image
	Size int64 // extent length
}

// Image layout fractions: the base OS occupies the head of the image, the
// journal and inode table sit behind it, file data fills the tail.
const (
	osFraction    = 8  // OS base = imageSize/8 (512 MB of a 4 GB image)
	journalMB     = 8  // cyclic journal length
	dataStartFrac = 16 // data area starts at 3/16 of the image
)

func newFS(g *Guest) *FS {
	size := g.VM.Image.Geometry().ImageSize
	osEnd := size / osFraction
	jlen := int64(journalMB * params.MB)
	if jlen > size/64 {
		jlen = size / 64 // small test images get proportionally small journals
	}
	fs := &FS{
		g:          g,
		journalOff: osEnd,
		journalLen: jlen,
		inodeOff:   osEnd + jlen,
		dataOff:    size * 3 / dataStartFrac,
		dataEnd:    size,
		files:      make(map[string]*File),
	}
	fs.nextAlloc = fs.dataOff
	if fs.dataOff <= fs.inodeOff+params.MB {
		panic("guest: image too small for filesystem layout")
	}
	return fs
}

// DataArea returns the extent of the file-data region.
func (fs *FS) DataArea() (off, end int64) { return fs.dataOff, fs.dataEnd }

// OSArea returns the extent holding base OS content.
func (fs *FS) OSArea() (off, end int64) {
	size := fs.g.VM.Image.Geometry().ImageSize
	return 0, size / osFraction
}

// Create allocates a contiguous extent for a new file. Creating over an
// existing name returns the existing file (IOR reuses its test file).
func (fs *FS) Create(name string, size int64) *File {
	if f, ok := fs.files[name]; ok {
		if f.Size < size {
			panic(fmt.Sprintf("guest: file %q recreated larger (%d -> %d)", name, f.Size, size))
		}
		return f
	}
	if fs.nextAlloc+size > fs.dataEnd {
		panic(fmt.Sprintf("guest: filesystem full allocating %q (%d bytes)", name, size))
	}
	f := &File{Name: name, Off: fs.nextAlloc, Size: size}
	fs.nextAlloc += size
	fs.files[name] = f
	return f
}

func (fs *FS) checkRange(f *File, off, length int64, op string) {
	if off < 0 || off+length > f.Size {
		panic(fmt.Sprintf("guest: %s [%d,%d) outside file %q of %d bytes", op, off, off+length, f.Name, f.Size))
	}
}

// Write writes file data through the cache and emits journal/inode metadata
// writes every MetadataEvery bytes. Metadata lands on few chunks that
// therefore become write-hot.
func (fs *FS) Write(p *sim.Proc, f *File, off, length int64) {
	fs.checkRange(f, off, length, "write")
	fs.g.VM.CheckPause(p) // the guest issues no I/O while paused
	fs.g.VM.Image.Write(p, f.Off+off, length)
	fs.metadata(p, length)
}

// metadata accrues written bytes and issues commits.
func (fs *FS) metadata(p *sim.Proc, length int64) {
	fs.sinceMeta += length
	for fs.sinceMeta >= fs.g.P.MetadataEvery {
		fs.sinceMeta -= fs.g.P.MetadataEvery
		fs.commit(p)
	}
}

// commit models one journal commit: a journal record plus an inode-table
// update (a deliberately partial chunk write).
func (fs *FS) commit(p *sim.Proc) {
	jw := fs.g.P.JournalWrite
	if fs.journalCur+jw > fs.journalLen {
		fs.journalCur = 0
	}
	fs.g.VM.Image.Write(p, fs.journalOff+fs.journalCur, jw)
	fs.journalCur += jw
	fs.g.VM.Image.Write(p, fs.inodeOff, 4*params.KB)
}

// Read reads file data through the cache.
func (fs *FS) Read(p *sim.Proc, f *File, off, length int64) {
	fs.checkRange(f, off, length, "read")
	fs.g.VM.CheckPause(p)
	fs.g.VM.Image.Read(p, f.Off+off, length)
}

// ReadRaw reads an arbitrary image range through the cache (boot traffic).
func (fs *FS) ReadRaw(p *sim.Proc, off, length int64) {
	fs.g.VM.CheckPause(p)
	fs.g.VM.Image.Read(p, off, length)
}

// Fsync flushes the whole stack.
func (fs *FS) Fsync(p *sim.Proc) { fs.g.VM.Image.Sync(p) }
