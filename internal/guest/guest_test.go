package guest

import (
	"math"
	"testing"

	"github.com/hybridmig/hybridmig/internal/chunk"
	"github.com/hybridmig/hybridmig/internal/fabric"
	"github.com/hybridmig/hybridmig/internal/flow"
	"github.com/hybridmig/hybridmig/internal/params"
	"github.com/hybridmig/hybridmig/internal/sim"
	"github.com/hybridmig/hybridmig/internal/vm"
)

// stubImage records guest I/O and charges local-disk time.
type stubImage struct {
	geo        chunk.Geometry
	cl         *fabric.Cluster
	node       *fabric.Node
	readBytes  int64
	writeBytes int64
	writes     []chunk.Range
	syncs      int
}

func (s *stubImage) Read(p *sim.Proc, off, length int64) {
	s.readBytes += length
	s.cl.DiskIO(p, s.node, float64(length), flow.TagOther)
}

func (s *stubImage) Write(p *sim.Proc, off, length int64) {
	s.writeBytes += length
	s.writes = append(s.writes, chunk.Range{Off: off, Len: length})
	s.cl.DiskIO(p, s.node, float64(length), flow.TagOther)
}

func (s *stubImage) Sync(p *sim.Proc)         { s.syncs++ }
func (s *stubImage) Geometry() chunk.Geometry { return s.geo }

const (
	testImageSize = 64 * params.MB
	testRAM       = 64 * params.MB
)

func newTestGuest(eng *sim.Engine) (*Guest, *stubImage) {
	tb := params.DefaultTestbed()
	tb.DiskBandwidth = 10 * params.MB // slow disk: cache effects visible
	tb.NetLatency = 0
	tb.DiskLatency = 0
	cl := fabric.NewCluster(eng, 1, tb)
	mem := vm.NewMemory(testRAM, 256*params.KB)
	v := vm.New(eng, "vm0", cl.Nodes[0], mem, 1)
	img := &stubImage{
		geo:  chunk.NewGeometry(testImageSize, 256*params.KB),
		cl:   cl,
		node: cl.Nodes[0],
	}
	v.Image = img
	gp := params.DefaultGuest()
	gp.CacheWriteBandwidth = 100 * params.MB
	gp.CacheReadBandwidth = 1000 * params.MB
	gp.DirtyLimit = 8 * params.MB
	gp.WritebackBatch = 1 * params.MB
	gp.CachePage = 16 * params.KB
	gp.CacheRegion = 32 * params.MB
	gp.MetadataEvery = 4 * params.MB
	gp.JournalWrite = 256 * params.KB
	return New(eng, v, gp, Options{HostCache: true, Buffered: true, Inner: img}), img
}

func TestPassthroughModeBypassesCache(t *testing.T) {
	eng := sim.New()
	tb := params.DefaultTestbed()
	tb.DiskBandwidth = 10 * params.MB
	tb.NetLatency = 0
	tb.DiskLatency = 0
	cl := fabric.NewCluster(eng, 1, tb)
	mem := vm.NewMemory(testRAM, 256*params.KB)
	v := vm.New(eng, "vm0", cl.Nodes[0], mem, 1)
	img := &stubImage{geo: chunk.NewGeometry(testImageSize, 256*params.KB), cl: cl, node: cl.Nodes[0]}
	v.Image = img
	g := New(eng, v, params.DefaultGuest(), Options{HostCache: false, Buffered: true, Inner: img}) // passthrough
	f := g.FS.Create("f", 4*params.MB)
	var wTime sim.Time
	eng.Go("app", func(p *sim.Proc) {
		start := p.Now()
		g.FS.Write(p, f, 0, 2*params.MB)
		wTime = p.Now() - start
		g.FS.Read(p, f, 0, 2*params.MB)
	})
	if err := eng.RunUntil(100); err != nil {
		t.Fatal(err)
	}
	// Disk at 10 MB/s: the 2 MB write takes ~0.2s (no absorb), and the read
	// goes to the image (no cache hit).
	if wTime < 0.15 {
		t.Fatalf("passthrough write took %v, want >= 0.2 (disk-bound)", wTime)
	}
	if img.readBytes != 2*params.MB {
		t.Fatalf("image reads = %d, want 2 MB (no caching)", img.readBytes)
	}
	eng.Shutdown()
}

func TestSyncIsVMImageSync(t *testing.T) {
	// The hypervisor calls VM.Image.Sync; with the cache interposed this
	// must flush dirty data before reaching the inner image.
	eng := sim.New()
	g, img := newTestGuest(eng)
	f := g.FS.Create("f", 4*params.MB)
	eng.Go("app", func(p *sim.Proc) {
		g.FS.Write(p, f, 0, 4*params.MB)
		g.VM.Image.Sync(p) // as the hypervisor would
	})
	if err := eng.RunUntil(100); err != nil {
		t.Fatal(err)
	}
	if img.syncs != 1 {
		t.Fatalf("inner syncs = %d, want 1", img.syncs)
	}
	if img.writeBytes < 4*params.MB {
		t.Fatalf("sync returned before flush: image saw %d bytes", img.writeBytes)
	}
	eng.Shutdown()
}

func TestWriteAbsorbedAtCacheSpeed(t *testing.T) {
	eng := sim.New()
	g, _ := newTestGuest(eng)
	f := g.FS.Create("f", 4*params.MB)
	var doneAt sim.Time
	eng.Go("app", func(p *sim.Proc) {
		g.FS.Write(p, f, 0, 2*params.MB)
		doneAt = p.Now()
	})
	if err := eng.RunUntil(1); err != nil {
		t.Fatal(err)
	}
	// 2 MB at 100 MB/s cache speed = 0.02s; disk (10 MB/s) would need 0.2s.
	if doneAt == 0 || doneAt > 0.05 {
		t.Fatalf("write absorbed in %v, want ~0.02 (cache speed)", doneAt)
	}
	eng.Shutdown()
}

func TestWritebackDrainsToImage(t *testing.T) {
	eng := sim.New()
	g, img := newTestGuest(eng)
	f := g.FS.Create("f", 4*params.MB)
	eng.Go("app", func(p *sim.Proc) {
		g.FS.Write(p, f, 0, 4*params.MB)
		g.FS.Fsync(p)
	})
	if err := eng.RunUntil(100); err != nil {
		t.Fatal(err)
	}
	// Data (4 MB) + one metadata commit (journal 256K + inode page rounded
	// to one 16K cache page).
	if img.writeBytes < 4*params.MB {
		t.Fatalf("image saw %d bytes, want >= 4 MB", img.writeBytes)
	}
	if g.Cache.DirtyBytes() != 0 {
		t.Fatalf("dirty after fsync = %d", g.Cache.DirtyBytes())
	}
	if img.syncs != 1 {
		t.Fatalf("syncs = %d, want 1", img.syncs)
	}
	eng.Shutdown()
}

func TestDirtyThrottling(t *testing.T) {
	eng := sim.New()
	g, _ := newTestGuest(eng)
	f := g.FS.Create("f", 32*params.MB)
	var doneAt sim.Time
	eng.Go("app", func(p *sim.Proc) {
		g.FS.Write(p, f, 0, 32*params.MB)
		doneAt = p.Now()
	})
	if err := eng.RunUntil(100); err != nil {
		t.Fatal(err)
	}
	// 32 MB with an 8 MB dirty limit and 10 MB/s writeback: the writer must
	// wait for drain, so total time approaches (32-8)/10 = 2.4s rather than
	// the 0.32s pure cache speed.
	if doneAt < 2.0 {
		t.Fatalf("write finished in %v — dirty throttling not applied", doneAt)
	}
	eng.Shutdown()
}

func TestRewriteDirtyPagesCreatesNoExtraWriteback(t *testing.T) {
	eng := sim.New()
	g, img := newTestGuest(eng)
	gp := g.P
	f := g.FS.Create("f", 2*params.MB)
	eng.Go("app", func(p *sim.Proc) {
		// Rewrite the same 2 MB five times quickly; pages stay dirty between
		// rewrites so writeback sees each page roughly once per drain.
		for i := 0; i < 5; i++ {
			g.FS.Write(p, f, 0, 2*params.MB)
		}
		g.FS.Fsync(p)
	})
	if err := eng.RunUntil(100); err != nil {
		t.Fatal(err)
	}
	_ = gp
	// 10 MB of app writes; image should see far less (2 MB data + metadata,
	// possibly one redirtied drain more).
	if img.writeBytes > 6*params.MB {
		t.Fatalf("image saw %d bytes for 10 MB of rewrites — bitmap dirty semantics broken", img.writeBytes)
	}
	eng.Shutdown()
}

func TestReadHitVsMiss(t *testing.T) {
	eng := sim.New()
	g, img := newTestGuest(eng)
	f := g.FS.Create("f", 4*params.MB)
	var missTime, hitTime sim.Time
	eng.Go("app", func(p *sim.Proc) {
		start := p.Now()
		g.FS.Read(p, f, 0, 4*params.MB) // cold: from image
		missTime = p.Now() - start
		start = p.Now()
		g.FS.Read(p, f, 0, 4*params.MB) // warm: from cache
		hitTime = p.Now() - start
	})
	if err := eng.RunUntil(100); err != nil {
		t.Fatal(err)
	}
	if img.readBytes != 4*params.MB {
		t.Fatalf("image reads = %d, want 4 MB (one cold read)", img.readBytes)
	}
	if hitTime >= missTime/10 {
		t.Fatalf("hit %v vs miss %v: cache not faster", hitTime, missTime)
	}
	if g.Cache.HitBytes != 4*params.MB || g.Cache.MissBytes != 4*params.MB {
		t.Fatalf("hit/miss accounting: %v/%v", g.Cache.HitBytes, g.Cache.MissBytes)
	}
	eng.Shutdown()
}

func TestReadAfterWriteHitsCache(t *testing.T) {
	eng := sim.New()
	g, img := newTestGuest(eng)
	f := g.FS.Create("f", 2*params.MB)
	eng.Go("app", func(p *sim.Proc) {
		g.FS.Write(p, f, 0, 2*params.MB)
		g.FS.Read(p, f, 0, 2*params.MB)
	})
	if err := eng.RunUntil(100); err != nil {
		t.Fatal(err)
	}
	if img.readBytes != 0 {
		t.Fatalf("image reads = %d, want 0 (write-allocated cache)", img.readBytes)
	}
	eng.Shutdown()
}

func TestMetadataCommitsHitHotChunks(t *testing.T) {
	eng := sim.New()
	g, img := newTestGuest(eng)
	f := g.FS.Create("f", 32*params.MB)
	eng.Go("app", func(p *sim.Proc) {
		g.FS.Write(p, f, 0, 32*params.MB) // 8 commits at MetadataEvery=4MB
		g.FS.Fsync(p)
	})
	if err := eng.RunUntil(100); err != nil {
		t.Fatal(err)
	}
	// The inode offset must have been written back repeatedly... at least
	// once; journal area too. Count writeback ranges touching the inode.
	geo := g.VM.Image.Geometry()
	inodeChunk := geo.ChunkOf(g.FS.inodeOff)
	touches := 0
	for _, w := range img.writes {
		first, last := geo.Span(w)
		if inodeChunk >= first && inodeChunk <= last {
			touches++
		}
	}
	if touches == 0 {
		t.Fatal("inode chunk never written back")
	}
	eng.Shutdown()
}

func TestWriteDirtiesVMMemory(t *testing.T) {
	eng := sim.New()
	g, _ := newTestGuest(eng)
	f := g.FS.Create("f", 4*params.MB)
	before := g.VM.Mem.DirtyBytes(0)
	eng.Go("app", func(p *sim.Proc) {
		g.FS.Write(p, f, 0, 4*params.MB)
	})
	if err := eng.RunUntil(10); err != nil {
		t.Fatal(err)
	}
	after := g.VM.Mem.DirtyBytes(eng.Now())
	if after-before < 4*params.MB {
		t.Fatalf("memory dirtied by %d, want >= 4 MB (cache pages live in RAM)", after-before)
	}
	eng.Shutdown()
}

func TestRewriteDirtiesSameMemory(t *testing.T) {
	// Rewriting one file must not grow the dirty footprint unboundedly:
	// the cache maps file offsets to fixed memory groups.
	eng := sim.New()
	g, _ := newTestGuest(eng)
	f := g.FS.Create("f", 4*params.MB)
	eng.Go("app", func(p *sim.Proc) {
		for i := 0; i < 4; i++ {
			g.FS.Write(p, f, 0, 4*params.MB)
		}
	})
	if err := eng.RunUntil(100); err != nil {
		t.Fatal(err)
	}
	dirty := g.VM.Mem.DirtyBytes(eng.Now())
	// 16 MB written, but only ~4 MB (+ metadata) of distinct memory.
	if dirty > 6*params.MB {
		t.Fatalf("dirty memory = %d after rewrites, want ~4 MB", dirty)
	}
	eng.Shutdown()
}

func TestFileExtentsDisjoint(t *testing.T) {
	eng := sim.New()
	g, _ := newTestGuest(eng)
	a := g.FS.Create("a", 1*params.MB)
	b := g.FS.Create("b", 1*params.MB)
	if a.Off+a.Size > b.Off {
		t.Fatal("extents overlap")
	}
	dataOff, dataEnd := g.FS.DataArea()
	if a.Off < dataOff || b.Off+b.Size > dataEnd {
		t.Fatal("extents outside data area")
	}
	if g.FS.Create("a", 1*params.MB) != a {
		t.Fatal("recreating a file did not return the same extent")
	}
	eng.Shutdown()
}

func TestCachePausesWithVM(t *testing.T) {
	eng := sim.New()
	g, _ := newTestGuest(eng)
	f := g.FS.Create("f", 8*params.MB)
	var writeDone sim.Time
	eng.Go("app", func(p *sim.Proc) {
		g.FS.Write(p, f, 0, 1*params.MB)
		writeDone = p.Now()
	})
	g.VM.Pause()
	eng.At(5, func() { g.VM.Resume() })
	if err := eng.RunUntil(100); err != nil {
		t.Fatal(err)
	}
	if writeDone < 5 {
		t.Fatalf("write completed at %v during pause", writeDone)
	}
	eng.Shutdown()
}

func TestThroughputNumbersRealistic(t *testing.T) {
	// Sanity-check the calibration story at miniature scale: write
	// throughput sits between disk and cache speed, read hits at cache speed.
	eng := sim.New()
	g, _ := newTestGuest(eng)
	f := g.FS.Create("f", 16*params.MB)
	var wTime, rTime sim.Time
	eng.Go("app", func(p *sim.Proc) {
		start := p.Now()
		g.FS.Write(p, f, 0, 16*params.MB)
		wTime = p.Now() - start
		start = p.Now()
		g.FS.Read(p, f, 0, 16*params.MB)
		rTime = p.Now() - start
	})
	if err := eng.RunUntil(1000); err != nil {
		t.Fatal(err)
	}
	wMBs := 16.0 / wTime * 1
	if wMBs < 10 || wMBs > 100 {
		t.Fatalf("write throughput %.1f MB/s, want between disk (10) and cache (100)", wMBs)
	}
	rMBs := 16.0 / rTime
	if math.Abs(rMBs-1000)/1000 > 0.3 {
		t.Fatalf("read throughput %.1f MB/s, want ~cache speed 1000", rMBs)
	}
	eng.Shutdown()
}
