package workload

import (
	"github.com/hybridmig/hybridmig/internal/guest"
	"github.com/hybridmig/hybridmig/internal/params"
	"github.com/hybridmig/hybridmig/internal/sim"
)

// RewriteReport carries the rewrite workload's measurements.
type RewriteReport struct {
	WriteBytes float64
	Runtime    float64
	Iterations int
}

// Rewriter is the hot/cold rewrite workload (see params.Rewrite): every
// iteration rewrites the file's hot leading region and then the cold
// remainder, so a live migration sees both chunks that stay under the
// write-count threshold and chunks that exceed it.
type Rewriter struct {
	P      params.Rewrite
	Report RewriteReport
	done   sim.Gate
}

// NewRewriter returns a rewrite workload with the given configuration.
func NewRewriter(p params.Rewrite) *Rewriter { return &Rewriter{P: p} }

// Run executes the workload to completion.
func (w *Rewriter) Run(p *sim.Proc, g *guest.Guest) {
	start := p.Now()
	f := g.FS.Create("rewrite.dat", w.P.FileSize)
	hot := w.P.HotBytes
	if hot > w.P.FileSize {
		hot = w.P.FileSize
	}
	for it := 0; it < w.P.Iterations; it++ {
		if hot > 0 {
			g.FS.Write(p, f, 0, hot)
			w.Report.WriteBytes += float64(hot)
		}
		if rest := w.P.FileSize - hot; rest > 0 {
			g.FS.Write(p, f, hot, rest)
			w.Report.WriteBytes += float64(rest)
		}
		w.Report.Iterations++
		p.Sleep(w.P.Interval)
	}
	w.Report.Runtime = p.Now() - start
	w.done.Open(p.Engine())
}

// Wait parks until the workload finishes.
func (w *Rewriter) Wait(p *sim.Proc) { w.done.Wait(p) }
