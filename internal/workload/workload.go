// Package workload implements the three workloads of the paper's
// evaluation: the IOR storage benchmark (Section 5.3), the AsyncWR
// compute+asynchronous-write benchmark the authors built (Sections 5.3–5.4),
// and a CM1-like BSP stencil application (Section 5.5).
//
// Every workload runs as a guest process, drives the guest I/O stack, and
// instruments itself with the quantities the paper's figures report:
// achieved read/write throughput, computational potential (AsyncWR's
// counter), and total execution time.
package workload

import (
	"fmt"

	"github.com/hybridmig/hybridmig/internal/fabric"
	"github.com/hybridmig/hybridmig/internal/flow"
	"github.com/hybridmig/hybridmig/internal/guest"
	"github.com/hybridmig/hybridmig/internal/params"
	"github.com/hybridmig/hybridmig/internal/sim"
)

// IORReport carries IOR's measured throughput.
type IORReport struct {
	WriteBytes float64
	WriteTime  float64
	ReadBytes  float64
	ReadTime   float64
	Runtime    float64
	Iterations int
}

// WriteBW returns the average achieved write bandwidth (bytes/s).
func (r IORReport) WriteBW() float64 {
	if r.WriteTime <= 0 {
		return 0
	}
	return r.WriteBytes / r.WriteTime
}

// ReadBW returns the average achieved read bandwidth (bytes/s).
func (r IORReport) ReadBW() float64 {
	if r.ReadTime <= 0 {
		return 0
	}
	return r.ReadBytes / r.ReadTime
}

// IOR is the HPC I/O benchmark: each iteration writes and then reads one
// file sequentially in fixed-size blocks through the POSIX interface. I/O
// transits the host-side cache (which is what allows the paper's 1 GB/s
// read and 266 MB/s write maxima over a 55 MB/s disk) but, as a storage
// benchmark, it runs O_DIRECT inside the guest: set the instance's
// Guest.Buffered to false so guest memory is not charged for cached file
// data.
type IOR struct {
	P      params.IOR
	Report IORReport
	done   sim.Gate
}

// NewIOR returns an IOR instance with the given configuration.
func NewIOR(p params.IOR) *IOR { return &IOR{P: p} }

// Run executes the benchmark to completion.
func (w *IOR) Run(p *sim.Proc, g *guest.Guest) {
	start := p.Now()
	f := g.FS.Create("ior.dat", w.P.FileSize)
	for it := 0; it < w.P.Iterations; it++ {
		t0 := p.Now()
		for off := int64(0); off < w.P.FileSize; off += w.P.BlockSize {
			n := w.P.BlockSize
			if off+n > w.P.FileSize {
				n = w.P.FileSize - off
			}
			g.FS.Write(p, f, off, n)
		}
		w.Report.WriteTime += p.Now() - t0
		w.Report.WriteBytes += float64(w.P.FileSize)

		t0 = p.Now()
		for off := int64(0); off < w.P.FileSize; off += w.P.BlockSize {
			n := w.P.BlockSize
			if off+n > w.P.FileSize {
				n = w.P.FileSize - off
			}
			g.FS.Read(p, f, off, n)
		}
		w.Report.ReadTime += p.Now() - t0
		w.Report.ReadBytes += float64(w.P.FileSize)
		w.Report.Iterations++
	}
	w.Report.Runtime = p.Now() - start
	w.done.Open(p.Engine())
}

// Wait parks until the benchmark finishes.
func (w *IOR) Wait(p *sim.Proc) { w.done.Wait(p) }

// AsyncWRReport carries AsyncWR's measurements.
type AsyncWRReport struct {
	Counter    int64 // computational potential: completed compute units
	WriteBytes float64
	Runtime    float64
	Iterations int
}

// WriteBW returns the average write pressure over the whole run.
func (r AsyncWRReport) WriteBW() float64 {
	if r.Runtime <= 0 {
		return 0
	}
	return r.WriteBytes / r.Runtime
}

// AsyncWR mixes computation with buffered asynchronous writes: each
// iteration runs a CPU-bound task that fills a memory buffer, then hands the
// previous buffer to an asynchronous writer (double buffering). The counter
// incremented by the compute task is the paper's measure of computational
// potential (Section 5.4).
type AsyncWR struct {
	P params.AsyncWR
	// Deadline, when positive, stops the run at that absolute simulation
	// time even if iterations remain (degradation measurements compare
	// counters over a fixed horizon).
	Deadline sim.Time
	Report   AsyncWRReport
	done     sim.Gate
}

// NewAsyncWR returns an AsyncWR instance with the given configuration.
func NewAsyncWR(p params.AsyncWR) *AsyncWR { return &AsyncWR{P: p} }

// Run executes the benchmark.
func (w *AsyncWR) Run(p *sim.Proc, g *guest.Guest) {
	start := p.Now()
	eng := p.Engine()
	total := int64(w.P.Iterations) * w.P.DataPerIter
	f := g.FS.Create("asyncwr.dat", total)

	// The compute phase dirties the double buffers and scratch state.
	reg := g.VM.Mem.Alloc(w.P.WorkingSet, true)
	dirt := g.VM.Mem.NewDirtier(reg, w.P.MemoryDirtyRate)

	writer := sim.NewSemaphore(1) // double buffering: one write in flight
	for it := 0; it < w.P.Iterations; it++ {
		if w.Deadline > 0 && p.Now() >= w.Deadline {
			break
		}
		// Compute: keep the CPU busy incrementing the counter while
		// generating the next buffer.
		dirt.SetActive(true, p.Now())
		g.VM.Exec(p, w.P.ComputeTime)
		dirt.SetActive(false, p.Now())
		w.Report.Counter++
		w.Report.Iterations++

		// Hand the buffer to the asynchronous writer; block only if the
		// previous write has not finished (backpressure).
		writer.Acquire(p)
		off := int64(it) * w.P.DataPerIter
		eng.Go(fmt.Sprintf("%s/asyncwr-io", g.VM.Name), func(wp *sim.Proc) {
			g.FS.Write(wp, f, off, w.P.DataPerIter)
			w.Report.WriteBytes += float64(w.P.DataPerIter)
			writer.Release(eng)
		})
	}
	writer.Acquire(p) // drain the last write
	writer.Release(eng)
	w.Report.Runtime = p.Now() - start
	w.done.Open(eng)
}

// Wait parks until the benchmark finishes.
func (w *AsyncWR) Wait(p *sim.Proc) { w.done.Wait(p) }

// Barrier synchronizes the BSP supersteps of CM1 ranks.
type Barrier struct {
	n       int
	arrived int
	gen     uint64
	cond    sim.Cond
}

// NewBarrier returns a barrier for n parties.
func NewBarrier(n int) *Barrier { return &Barrier{n: n} }

// Wait blocks until all parties arrive.
func (b *Barrier) Wait(p *sim.Proc) {
	gen := b.gen
	b.arrived++
	if b.arrived == b.n {
		b.arrived = 0
		b.gen++
		b.cond.Broadcast(p.Engine())
		return
	}
	for b.gen == gen {
		b.cond.Wait(p)
	}
}

// CM1Report carries the application-level measurements of one CM1 run.
type CM1Report struct {
	Runtime   float64 // start of superstep 0 to last rank finishing
	Intervals int
}

// CM1 models the paper's atmospheric simulation: ranks on an x-by-y grid
// iterate supersteps of compute, halo exchange with the four neighbours, and
// a buffered output dump to local storage (Section 5.5). One CM1 value
// coordinates all ranks; each rank runs via Rank on its own instance.
type CM1 struct {
	P       params.CM1
	cl      *fabric.Cluster
	barrier *Barrier
	Report  CM1Report
	started sim.Time
	begun   bool
	left    int
	done    sim.Gate
}

// NewCM1 returns a coordinator for the configured grid; halo exchanges run
// over the given datacenter fabric.
func NewCM1(p params.CM1, cl *fabric.Cluster) *CM1 {
	if p.GridX*p.GridY != p.Procs {
		panic("workload: CM1 grid does not match process count")
	}
	return &CM1{P: p, cl: cl, barrier: NewBarrier(p.Procs), left: p.Procs}
}

// neighbors returns the grid neighbours of rank r (4-connectivity).
func (w *CM1) neighbors(r int) []int {
	x, y := r%w.P.GridX, r/w.P.GridX
	var out []int
	if x > 0 {
		out = append(out, r-1)
	}
	if x < w.P.GridX-1 {
		out = append(out, r+1)
	}
	if y > 0 {
		out = append(out, r-w.P.GridX)
	}
	if y < w.P.GridY-1 {
		out = append(out, r+w.P.GridX)
	}
	return out
}

// Rank runs MPI rank r of the application on the given guest. All ranks
// must be started for the barriers to release. peers exposes every rank's
// guest so halo exchanges follow VMs as they migrate.
func (w *CM1) Rank(p *sim.Proc, r int, g *guest.Guest, peers []*guest.Guest) {
	if !w.begun {
		w.begun = true
		w.started = p.Now()
	}
	eng := p.Engine()
	f := g.FS.Create(fmt.Sprintf("cm1.out.%d", r), int64(w.P.Intervals)*w.P.OutputSize)

	reg := g.VM.Mem.Alloc(w.P.WorkingSet, true)
	dirt := g.VM.Mem.NewDirtier(reg, w.P.MemoryDirtyRate)

	for interval := 0; interval < w.P.Intervals; interval++ {
		// Compute phase: the stencil sweeps dirty the state arrays.
		dirt.SetActive(true, p.Now())
		g.VM.Exec(p, w.P.ComputePerIntvl)
		dirt.SetActive(false, p.Now())

		// Halo exchange with the grid neighbours (tagged app traffic so the
		// Fig. 5(b) accounting can exclude it), then a BSP barrier: one slow
		// rank drags everyone, the effect Figure 5(c) hinges on.
		var wg sim.WaitGroup
		here := g.VM.Node // migrations move the VM between intervals
		for _, nb := range w.neighbors(r) {
			peer := peers[nb].VM.Node
			wg.Add(1)
			w.cl.TransferFlow(here, peer, float64(w.P.HaloBytes), flow.TagApp,
				func() { wg.Done(eng) })
		}
		wg.Wait(p)
		w.barrier.Wait(p)

		// Output dump: buffered write of the subdomain snapshot.
		g.FS.Write(p, f, int64(interval)*w.P.OutputSize, w.P.OutputSize)
	}
	w.left--
	if w.left == 0 {
		w.Report.Runtime = p.Now() - w.started
		w.Report.Intervals = w.P.Intervals
		w.done.Open(eng)
	}
}

// Wait parks until every rank has finished.
func (w *CM1) Wait(p *sim.Proc) { w.done.Wait(p) }
