package workload

import (
	"testing"

	"github.com/hybridmig/hybridmig/internal/cluster"
	"github.com/hybridmig/hybridmig/internal/guest"
	"github.com/hybridmig/hybridmig/internal/params"
	"github.com/hybridmig/hybridmig/internal/sim"
)

const mb = params.MB

func smallIOR() params.IOR {
	return params.IOR{Iterations: 3, FileSize: 16 * mb, BlockSize: 256 * params.KB}
}

func smallAsyncWR() params.AsyncWR {
	return params.AsyncWR{
		Iterations:      20,
		DataPerIter:     1 * mb,
		ComputeTime:     0.2,
		MemoryDirtyRate: 4 * mb,
		WorkingSet:      8 * mb,
	}
}

func TestIORReportsThroughput(t *testing.T) {
	tb := cluster.New(cluster.SmallConfig(4))
	inst := tb.Launch("vm0", 0, cluster.OurApproach)
	w := NewIOR(smallIOR())
	tb.Eng.Go("ior", func(p *sim.Proc) { w.Run(p, inst.Guest) })
	if err := tb.Eng.RunUntil(1e5); err != nil {
		t.Fatal(err)
	}
	tb.Eng.Shutdown()
	r := w.Report
	if r.Iterations != 3 {
		t.Fatalf("iterations = %d", r.Iterations)
	}
	if r.WriteBytes != 3*16*mb || r.ReadBytes != 3*16*mb {
		t.Fatalf("bytes = %v/%v", r.WriteBytes, r.ReadBytes)
	}
	// Writes absorb at cache speed (266 MB/s) for this small file; reads of
	// just-written data hit the cache at ~1 GB/s.
	if bw := r.WriteBW(); bw < 50*mb || bw > 300*mb {
		t.Fatalf("write BW = %.1f MB/s, want between disk and cache speed", bw/mb)
	}
	if bw := r.ReadBW(); bw < 300*mb {
		t.Fatalf("read BW = %.1f MB/s, want near cache speed", bw/mb)
	}
	if r.Runtime <= 0 {
		t.Fatal("no runtime")
	}
}

func TestAsyncWRCompletesAllIterations(t *testing.T) {
	tb := cluster.New(cluster.SmallConfig(4))
	inst := tb.Launch("vm0", 0, cluster.OurApproach)
	w := NewAsyncWR(smallAsyncWR())
	tb.Eng.Go("awr", func(p *sim.Proc) { w.Run(p, inst.Guest) })
	if err := tb.Eng.RunUntil(1e5); err != nil {
		t.Fatal(err)
	}
	tb.Eng.Shutdown()
	if w.Report.Counter != 20 || w.Report.Iterations != 20 {
		t.Fatalf("counter = %d, iterations = %d, want 20", w.Report.Counter, w.Report.Iterations)
	}
	if w.Report.WriteBytes != 20*mb {
		t.Fatalf("write bytes = %v", w.Report.WriteBytes)
	}
	// 20 iterations x 0.2s compute = 4s minimum; writes are async so the
	// runtime should be close to compute-bound.
	if w.Report.Runtime < 4 || w.Report.Runtime > 8 {
		t.Fatalf("runtime = %v, want ~4s (compute-bound)", w.Report.Runtime)
	}
	// ~1 MB / 0.2s = 5 MB/s steady I/O pressure.
	if bw := w.Report.WriteBW(); bw < 2*mb || bw > 6*mb {
		t.Fatalf("write pressure = %.1f MB/s, want ~5", bw/mb)
	}
}

func TestAsyncWRDeadlineStopsEarly(t *testing.T) {
	tb := cluster.New(cluster.SmallConfig(4))
	inst := tb.Launch("vm0", 0, cluster.OurApproach)
	w := NewAsyncWR(smallAsyncWR())
	w.Deadline = 2.0
	tb.Eng.Go("awr", func(p *sim.Proc) { w.Run(p, inst.Guest) })
	if err := tb.Eng.RunUntil(1e5); err != nil {
		t.Fatal(err)
	}
	tb.Eng.Shutdown()
	if w.Report.Counter >= 20 {
		t.Fatalf("counter = %d, deadline did not stop the run", w.Report.Counter)
	}
	if w.Report.Counter < 5 {
		t.Fatalf("counter = %d, stopped far too early", w.Report.Counter)
	}
}

func TestAsyncWRDirtiesMemory(t *testing.T) {
	tb := cluster.New(cluster.SmallConfig(4))
	inst := tb.Launch("vm0", 0, cluster.OurApproach)
	w := NewAsyncWR(smallAsyncWR())
	tb.Eng.Go("awr", func(p *sim.Proc) { w.Run(p, inst.Guest) })
	var midDirty int64
	tb.Eng.At(2, func() { midDirty = inst.VM.Mem.DirtyBytes(2) })
	if err := tb.Eng.RunUntil(1e5); err != nil {
		t.Fatal(err)
	}
	tb.Eng.Shutdown()
	if midDirty == 0 {
		t.Fatal("compute phase dirtied no memory")
	}
}

func TestBarrier(t *testing.T) {
	eng := sim.New()
	b := NewBarrier(3)
	var releases []sim.Time
	for i := 0; i < 3; i++ {
		d := float64(i)
		eng.Go("rank", func(p *sim.Proc) {
			p.Sleep(d)
			b.Wait(p)
			releases = append(releases, p.Now())
		})
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if len(releases) != 3 {
		t.Fatalf("releases = %v", releases)
	}
	for _, r := range releases {
		if r != 2 {
			t.Fatalf("rank released at %v, want 2 (slowest arrival)", r)
		}
	}
}

func TestBarrierReusableAcrossSupersteps(t *testing.T) {
	eng := sim.New()
	b := NewBarrier(2)
	steps := [2]int{}
	for i := 0; i < 2; i++ {
		i := i
		eng.Go("rank", func(p *sim.Proc) {
			for s := 0; s < 5; s++ {
				p.Sleep(float64(i) * 0.1)
				b.Wait(p)
				steps[i]++
			}
		})
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if steps[0] != 5 || steps[1] != 5 {
		t.Fatalf("steps = %v", steps)
	}
}

func smallCM1() params.CM1 {
	return params.CM1{
		Procs: 4, GridX: 2, GridY: 2,
		Intervals:       3,
		ComputePerIntvl: 1.0,
		OutputSize:      4 * mb,
		HaloBytes:       256 * params.KB,
		MemoryDirtyRate: 8 * mb,
		WorkingSet:      16 * mb,
	}
}

func TestCM1RunsToCompletion(t *testing.T) {
	tb := cluster.New(cluster.SmallConfig(8))
	cm1 := NewCM1(smallCM1(), tb.Cl)
	insts := make([]*cluster.Instance, 4)
	for i := 0; i < 4; i++ {
		insts[i] = tb.Launch("vm", i, cluster.OurApproach)
	}
	peers := peersOf(insts)
	for i := 0; i < 4; i++ {
		i := i
		tb.Eng.Go("rank", func(p *sim.Proc) { cm1.Rank(p, i, insts[i].Guest, peers) })
	}
	if err := tb.Eng.RunUntil(1e5); err != nil {
		t.Fatal(err)
	}
	tb.Eng.Shutdown()
	if cm1.Report.Intervals != 3 {
		t.Fatalf("intervals = %d", cm1.Report.Intervals)
	}
	// 3 supersteps x ~1s compute plus exchange/dump overhead.
	if cm1.Report.Runtime < 3 || cm1.Report.Runtime > 10 {
		t.Fatalf("runtime = %v, want a bit over 3s", cm1.Report.Runtime)
	}
}

func TestCM1SlowRankDragsAll(t *testing.T) {
	// Pausing one rank's VM for 2s must delay the whole application by ~2s:
	// the BSP coupling of Figure 5(c).
	runtime := func(pause bool) float64 {
		tb := cluster.New(cluster.SmallConfig(8))
		cm1 := NewCM1(smallCM1(), tb.Cl)
		insts := make([]*cluster.Instance, 4)
		for i := 0; i < 4; i++ {
			insts[i] = tb.Launch("vm", i, cluster.OurApproach)
		}
		peers := peersOf(insts)
		for i := 0; i < 4; i++ {
			i := i
			tb.Eng.Go("rank", func(p *sim.Proc) { cm1.Rank(p, i, insts[i].Guest, peers) })
		}
		if pause {
			tb.Eng.At(0.5, func() { insts[2].VM.Pause() })
			tb.Eng.At(2.5, func() { insts[2].VM.Resume() })
		}
		if err := tb.Eng.RunUntil(1e5); err != nil {
			t.Fatal(err)
		}
		tb.Eng.Shutdown()
		return cm1.Report.Runtime
	}
	base := runtime(false)
	slow := runtime(true)
	if slow < base+1.5 {
		t.Fatalf("pausing one rank added only %v, want ~2s (barrier coupling)", slow-base)
	}
}

// peersOf adapts instances to the guest slice CM1 expects.
func peersOf(insts []*cluster.Instance) []*guest.Guest {
	out := make([]*guest.Guest, len(insts))
	for i, in := range insts {
		out[i] = in.Guest
	}
	return out
}
