package experiments

import (
	"fmt"

	"github.com/hybridmig/hybridmig/internal/cluster"
	"github.com/hybridmig/hybridmig/internal/core"
	"github.com/hybridmig/hybridmig/internal/metrics"
	"github.com/hybridmig/hybridmig/internal/params"
	"github.com/hybridmig/hybridmig/internal/scenario"
)

// AblationRow reports one configuration of a design-choice sweep, measured
// on the Figure 3 IOR scenario with our approach.
type AblationRow struct {
	Label         string  `json:"label"`
	MigrationTime float64 `json:"migration_s"`
	TrafficMB     float64 `json:"traffic_mb"`
	PushedChunks  int     `json:"pushed_chunks"`
	PulledChunks  int     `json:"pulled_chunks"`
	SkippedHot    int     `json:"skipped_hot"`
	DedupHits     int     `json:"dedup_hits"`
}

// runAblation runs the IOR migration scenario with modified manager options.
func runAblation(s Scale, label string, mutate func(*core.Options), mutateSetup func(*Setup)) AblationRow {
	set := NewSetup(s, 10)
	opts := core.DefaultOptions(core.ModeHybrid)
	opts.Threshold = set.Cluster.Manager.Threshold
	mutate(&opts)
	set.Cluster.ManagerOverride = &opts
	if mutateSetup != nil {
		mutateSetup(&set)
	}
	sc := scenario.New(scenario.WithConfig(set.Cluster)).
		AddVM(scenario.VMSpec{Name: "vm0", Node: 0, Approach: cluster.OurApproach,
			Workload: scenario.IOR(&set.IOR)}).
		MigrateAt("vm0", 1, set.Warmup)
	res, err := sc.Run()
	if err != nil {
		panic("experiments: ablation failed: " + label + ": " + err.Error())
	}
	vm := res.VMs[0]
	if !vm.Migrated {
		panic("experiments: ablation migration incomplete: " + label)
	}
	st := vm.Core
	return AblationRow{
		Label:         label,
		MigrationTime: vm.MigrationTime,
		TrafficMB:     metrics.MB(res.MigrationTraffic(cluster.OurApproach)),
		PushedChunks:  st.PushedChunks,
		PulledChunks:  st.PulledChunks + st.OnDemandPulls,
		SkippedHot:    st.SkippedHot,
		DedupHits:     st.DedupHits,
	}
}

// AblateThreshold sweeps the write-count threshold of Algorithm 1.
// Threshold 1 pushes each chunk at most once; a huge threshold never stops
// pushing hot chunks (pure-precopy-like push behaviour).
func AblateThreshold(s Scale) []AblationRow {
	rows := make([]AblationRow, 0, 5)
	for _, th := range []uint32{1, 2, 3, 5, 1 << 30} {
		label := fmt.Sprintf("threshold=%d", th)
		if th == 1<<30 {
			label = "threshold=inf"
		}
		th := th
		rows = append(rows, runAblation(s, label, func(o *core.Options) { o.Threshold = th }, nil))
	}
	return rows
}

// AblatePullPriority compares write-count-prioritized prefetch against plain
// ascending-order pull.
func AblatePullPriority(s Scale) []AblationRow {
	return []AblationRow{
		runAblation(s, "priority=write-count", func(o *core.Options) { o.PullPriority = true }, nil),
		runAblation(s, "priority=fifo", func(o *core.Options) { o.PullPriority = false }, nil),
	}
}

// AblateBasePrefetch compares hint-driven base-image prefetch on and off.
func AblateBasePrefetch(s Scale) []AblationRow {
	return []AblationRow{
		runAblation(s, "base-prefetch=on", func(o *core.Options) { o.BasePrefetch = true }, nil),
		runAblation(s, "base-prefetch=off", func(o *core.Options) { o.BasePrefetch = false }, nil),
	}
}

// AblateStripeSize sweeps the repository stripe size (Section 5.2.1 picks
// 256 KB as the fragmentation/contention sweet spot).
func AblateStripeSize(s Scale) []AblationRow {
	rows := make([]AblationRow, 0, 3)
	for _, ss := range []int64{64 * params.KB, 256 * params.KB, 1 * params.MB} {
		ss := ss
		rows = append(rows, runAblation(s, fmt.Sprintf("stripe=%dKB", ss/params.KB),
			func(o *core.Options) {},
			func(set *Setup) {
				set.Cluster.Repo.StripeSize = ss
				// Chunk size tracks stripe size: the manager requires them
				// to nest.
				set.Cluster.Testbed.ChunkSize = ss
			}))
	}
	return rows
}

// AblateDedup compares content-deduplicated transfers (paper §6 future
// work) against plain transfers.
func AblateDedup(s Scale) []AblationRow {
	return []AblationRow{
		runAblation(s, "dedup=off", func(o *core.Options) { o.Dedup = false }, nil),
		runAblation(s, "dedup=on", func(o *core.Options) { o.Dedup = true }, nil),
	}
}

// AblateCompression compares online compression ratios (paper §6 / [24]).
func AblateCompression(s Scale) []AblationRow {
	rows := make([]AblationRow, 0, 3)
	for _, ratio := range []float64{0, 0.6, 0.3} {
		ratio := ratio
		label := "compression=off"
		if ratio > 0 {
			label = fmt.Sprintf("compression=%.0f%%", ratio*100)
		}
		rows = append(rows, runAblation(s, label, func(o *core.Options) {
			o.CompressionRatio = ratio
			o.CompressBW = 400 * params.MB
		}, nil))
	}
	return rows
}

// AblationTable renders ablation rows.
func AblationTable(title string, rows []AblationRow) *metrics.Table {
	t := metrics.NewTable(title, "config", "mig time (s)", "traffic (MB)", "pushed", "pulled", "hot", "dedup hits")
	for _, r := range rows {
		t.AddRow(r.Label, r.MigrationTime, r.TrafficMB, r.PushedChunks, r.PulledChunks, r.SkippedHot, r.DedupHits)
	}
	return t
}
