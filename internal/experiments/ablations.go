package experiments

import (
	"fmt"

	"github.com/hybridmig/hybridmig/internal/cluster"
	"github.com/hybridmig/hybridmig/internal/core"
	"github.com/hybridmig/hybridmig/internal/metrics"
	"github.com/hybridmig/hybridmig/internal/params"
	"github.com/hybridmig/hybridmig/internal/sim"
	"github.com/hybridmig/hybridmig/internal/workload"
)

// AblationRow reports one configuration of a design-choice sweep, measured
// on the Figure 3 IOR scenario with our approach.
type AblationRow struct {
	Label         string
	MigrationTime float64
	TrafficMB     float64
	PushedChunks  int
	PulledChunks  int
	SkippedHot    int
	DedupHits     int
}

// runAblation runs the IOR migration scenario with modified manager options.
func runAblation(s Scale, label string, mutate func(*core.Options), mutateSetup func(*Setup)) AblationRow {
	set := NewSetup(s, 10)
	opts := core.DefaultOptions(core.ModeHybrid)
	opts.Threshold = set.Cluster.Manager.Threshold
	mutate(&opts)
	set.Cluster.ManagerOverride = &opts
	if mutateSetup != nil {
		mutateSetup(&set)
	}
	tb := cluster.New(set.Cluster)
	inst := launchWorkloadVM(tb, "vm0", 0, cluster.OurApproach, true)
	w := workload.NewIOR(set.IOR)
	tb.Eng.Go("ior", func(p *sim.Proc) { w.Run(p, inst.Guest) })
	migrateAt(tb, inst, set.Warmup, 1)
	run(tb, 1e6)
	if !inst.Migrated {
		panic("experiments: ablation migration incomplete: " + label)
	}
	st := inst.CoreStats
	return AblationRow{
		Label:         label,
		MigrationTime: inst.MigrationTime,
		TrafficMB:     metrics.MB(migrationTraffic(tb, cluster.OurApproach)),
		PushedChunks:  st.PushedChunks,
		PulledChunks:  st.PulledChunks + st.OnDemandPulls,
		SkippedHot:    st.SkippedHot,
		DedupHits:     st.DedupHits,
	}
}

// AblateThreshold sweeps the write-count threshold of Algorithm 1.
// Threshold 1 pushes each chunk at most once; a huge threshold never stops
// pushing hot chunks (pure-precopy-like push behaviour).
func AblateThreshold(s Scale) []AblationRow {
	rows := make([]AblationRow, 0, 5)
	for _, th := range []uint32{1, 2, 3, 5, 1 << 30} {
		label := fmt.Sprintf("threshold=%d", th)
		if th == 1<<30 {
			label = "threshold=inf"
		}
		th := th
		rows = append(rows, runAblation(s, label, func(o *core.Options) { o.Threshold = th }, nil))
	}
	return rows
}

// AblatePullPriority compares write-count-prioritized prefetch against plain
// ascending-order pull.
func AblatePullPriority(s Scale) []AblationRow {
	return []AblationRow{
		runAblation(s, "priority=write-count", func(o *core.Options) { o.PullPriority = true }, nil),
		runAblation(s, "priority=fifo", func(o *core.Options) { o.PullPriority = false }, nil),
	}
}

// AblateBasePrefetch compares hint-driven base-image prefetch on and off.
func AblateBasePrefetch(s Scale) []AblationRow {
	return []AblationRow{
		runAblation(s, "base-prefetch=on", func(o *core.Options) { o.BasePrefetch = true }, nil),
		runAblation(s, "base-prefetch=off", func(o *core.Options) { o.BasePrefetch = false }, nil),
	}
}

// AblateStripeSize sweeps the repository stripe size (Section 5.2.1 picks
// 256 KB as the fragmentation/contention sweet spot).
func AblateStripeSize(s Scale) []AblationRow {
	rows := make([]AblationRow, 0, 3)
	for _, ss := range []int64{64 * params.KB, 256 * params.KB, 1 * params.MB} {
		ss := ss
		rows = append(rows, runAblation(s, fmt.Sprintf("stripe=%dKB", ss/params.KB),
			func(o *core.Options) {},
			func(set *Setup) {
				set.Cluster.Repo.StripeSize = ss
				// Chunk size tracks stripe size: the manager requires them
				// to nest.
				set.Cluster.Testbed.ChunkSize = ss
			}))
	}
	return rows
}

// AblateDedup compares content-deduplicated transfers (paper §6 future
// work) against plain transfers.
func AblateDedup(s Scale) []AblationRow {
	return []AblationRow{
		runAblation(s, "dedup=off", func(o *core.Options) { o.Dedup = false }, nil),
		runAblation(s, "dedup=on", func(o *core.Options) { o.Dedup = true }, nil),
	}
}

// AblateCompression compares online compression ratios (paper §6 / [24]).
func AblateCompression(s Scale) []AblationRow {
	rows := make([]AblationRow, 0, 3)
	for _, ratio := range []float64{0, 0.6, 0.3} {
		ratio := ratio
		label := "compression=off"
		if ratio > 0 {
			label = fmt.Sprintf("compression=%.0f%%", ratio*100)
		}
		rows = append(rows, runAblation(s, label, func(o *core.Options) {
			o.CompressionRatio = ratio
			o.CompressBW = 400 * params.MB
		}, nil))
	}
	return rows
}

// AblationTable renders ablation rows.
func AblationTable(title string, rows []AblationRow) *metrics.Table {
	t := metrics.NewTable(title, "config", "mig time (s)", "traffic (MB)", "pushed", "pulled", "hot", "dedup hits")
	for _, r := range rows {
		t.AddRow(r.Label, r.MigrationTime, r.TrafficMB, r.PushedChunks, r.PulledChunks, r.SkippedHot, r.DedupHits)
	}
	return t
}
