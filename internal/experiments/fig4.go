package experiments

import (
	"fmt"

	"github.com/hybridmig/hybridmig/internal/cluster"
	"github.com/hybridmig/hybridmig/internal/metrics"
	"github.com/hybridmig/hybridmig/internal/scenario"
)

// Fig4Row is one point of Figures 4(a)-(c): one approach at one concurrency
// level.
type Fig4Row struct {
	Approach    cluster.Approach `json:"approach"`
	Concurrency int              `json:"concurrency"`

	AvgMigrationTime float64 `json:"avg_migration_s"` // Fig. 4(a), seconds per instance
	TrafficGB        float64 `json:"traffic_gb"`      // Fig. 4(b)
	DegradationPct   float64 `json:"degradation_pct"` // Fig. 4(c), % of migration-free potential
}

// Fig4Concurrencies returns the x-axis of Figure 4 for the scale.
func Fig4Concurrencies(s Scale) []int {
	if s == ScalePaper {
		return []int{1, 10, 20, 30}
	}
	return []int{1, 3, 6}
}

// fig4Sources returns the number of AsyncWR source VMs.
func fig4Sources(s Scale) int {
	if s == ScalePaper {
		return 30
	}
	return 6
}

// RunFig4 reproduces Figure 4: a fixed population of AsyncWR VMs, of which
// the first K migrate simultaneously after the warm-up delay. Degradation
// follows the paper's definition — computation lost as a percent of "the
// maximum computational potential achieved in a migration-free scenario" —
// so every approach is normalized against the best migration-free run
// (local storage): pvfs-shared pays for its remote I/O even before any
// migration starts, exactly as in Figure 4(c).
func RunFig4(s Scale) []Fig4Row {
	// Phase 1 — baselines: migration-free runs per approach fan out over the
	// SetParallel budget; the reference is the best of them. The barrier
	// between phases is inherent: every cell's degradation normalizes
	// against the best baseline.
	approaches := cluster.Approaches()
	bases := make([]fig4Result, len(approaches))
	forEach(len(approaches), func(i int) {
		bases[i] = runFig4One(s, approaches[i], 0)
	})
	var bestBase float64
	for _, base := range bases {
		if base.counter > bestBase {
			bestBase = base.counter
		}
	}
	// Phase 2 — the approach x concurrency grid, rows by cell index.
	type cell struct {
		a cluster.Approach
		k int
	}
	var cells []cell
	for _, a := range approaches {
		for _, k := range Fig4Concurrencies(s) {
			cells = append(cells, cell{a, k})
		}
	}
	rows := make([]Fig4Row, len(cells))
	forEach(len(cells), func(i int) {
		r := runFig4One(s, cells[i].a, cells[i].k)
		r.DegradationPct = metrics.Pct(1 - metrics.Ratio(r.counter, bestBase))
		if r.DegradationPct < 0 {
			r.DegradationPct = 0
		}
		rows[i] = r.Fig4Row
	})
	return rows
}

// fig4Result carries the row plus the raw counter for degradation math.
type fig4Result struct {
	Fig4Row
	counter float64
}

func runFig4One(s Scale, a cluster.Approach, concurrent int) fig4Result {
	sources := fig4Sources(s)
	set := NewSetup(s, 2*sources)
	sc := scenario.New(scenario.WithConfig(set.Cluster))
	for i := 0; i < sources; i++ {
		sc.AddVM(scenario.VMSpec{
			Name: fmt.Sprintf("vm%02d", i), Node: i, Approach: a,
			Workload: scenario.AsyncWR(&set.AsyncWR, set.Warmup+set.Horizon),
		})
	}
	// Simultaneous migrations of the first K instances to distinct targets.
	for k := 0; k < concurrent; k++ {
		sc.MigrateAt(fmt.Sprintf("vm%02d", k), sources+k, set.Warmup)
	}
	r, err := sc.Run()
	if err != nil {
		panic(fmt.Sprintf("experiments: fig4 %s n=%d: %v", a, concurrent, err))
	}

	res := fig4Result{Fig4Row: Fig4Row{Approach: a, Concurrency: concurrent}}
	var sumMig float64
	for k := 0; k < concurrent; k++ {
		if !r.VMs[k].Migrated {
			panic(fmt.Sprintf("experiments: fig4 migration %d incomplete for %s", k, a))
		}
		sumMig += r.VMs[k].MigrationTime
	}
	if concurrent > 0 {
		res.AvgMigrationTime = sumMig / float64(concurrent)
	}
	res.TrafficGB = metrics.GB(r.MigrationTraffic(a))
	res.counter = r.TotalCounter()
	return res
}

// Fig4Tables renders the three panels.
func Fig4Tables(s Scale, rows []Fig4Row) []*metrics.Table {
	concs := Fig4Concurrencies(s)
	head := make([]string, 0, len(concs)+1)
	head = append(head, "approach")
	for _, k := range concs {
		head = append(head, fmt.Sprintf("n=%d", k))
	}
	ta := metrics.NewTable("Figure 4(a): avg migration time per instance (s, lower is better)", head...)
	tbt := metrics.NewTable("Figure 4(b): total network traffic (GB, lower is better)", head...)
	tc := metrics.NewTable("Figure 4(c): performance degradation (% of max, lower is better)", head...)
	byKey := map[string]Fig4Row{}
	for _, r := range rows {
		byKey[fmt.Sprintf("%s/%d", r.Approach, r.Concurrency)] = r
	}
	for _, a := range cluster.Approaches() {
		ra := []any{string(a)}
		rb := []any{string(a)}
		rc := []any{string(a)}
		for _, k := range concs {
			r := byKey[fmt.Sprintf("%s/%d", a, k)]
			ra = append(ra, r.AvgMigrationTime)
			rb = append(rb, r.TrafficGB)
			rc = append(rc, r.DegradationPct)
		}
		ta.AddRow(ra...)
		tbt.AddRow(rb...)
		tc.AddRow(rc...)
	}
	return []*metrics.Table{ta, tbt, tc}
}
