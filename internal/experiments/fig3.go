package experiments

import (
	"github.com/hybridmig/hybridmig/internal/cluster"
	"github.com/hybridmig/hybridmig/internal/metrics"
	"github.com/hybridmig/hybridmig/internal/scenario"
)

// Fig3Row is one bar group of Figures 3(a)-(c): one approach under one
// benchmark.
type Fig3Row struct {
	Approach cluster.Approach `json:"approach"`
	Bench    string           `json:"bench"` // "IOR" or "AsyncWR"

	MigrationTime float64 `json:"migration_s"` // Fig. 3(a), seconds
	TrafficMB     float64 `json:"traffic_mb"`  // Fig. 3(b)

	// Fig. 3(c): average achieved throughput normalized to the maximal
	// no-migration values (1 GB/s read, 266 MB/s write, 6 MB/s AsyncWR).
	NormReadPct  float64 `json:"norm_read_pct"` // IOR only
	NormWritePct float64 `json:"norm_write_pct"`
}

// Fig3Benches lists the benchmarks of Section 5.3.
var Fig3Benches = []string{"IOR", "AsyncWR"}

// RunFig3 reproduces Figure 3: a single VM (4 GB RAM, 4 GB image) runs the
// benchmark, and a live migration is initiated after the warm-up delay.
// Cells are independent runs and fan out over the SetParallel budget; rows
// land by cell index, so the row order never depends on scheduling.
func RunFig3(s Scale) []Fig3Row {
	type cell struct {
		bench string
		a     cluster.Approach
	}
	var cells []cell
	for _, bench := range Fig3Benches {
		for _, a := range cluster.Approaches() {
			cells = append(cells, cell{bench, a})
		}
	}
	rows := make([]Fig3Row, len(cells))
	forEach(len(cells), func(i int) {
		rows[i] = runFig3One(s, cells[i].a, cells[i].bench)
	})
	return rows
}

// RunFig3One runs a single (approach, benchmark) cell of Figure 3.
func RunFig3One(s Scale, a cluster.Approach, bench string) Fig3Row {
	return runFig3One(s, a, bench)
}

func runFig3One(s Scale, a cluster.Approach, bench string) Fig3Row {
	set := NewSetup(s, 10)
	var wl scenario.WorkloadSpec
	switch bench {
	case "IOR":
		wl = scenario.IOR(&set.IOR)
	case "AsyncWR":
		wl = scenario.AsyncWR(&set.AsyncWR, 0)
	default:
		panic("experiments: unknown benchmark " + bench)
	}
	sc := scenario.New(scenario.WithConfig(set.Cluster)).
		AddVM(scenario.VMSpec{Name: "vm0", Node: 0, Approach: a, Workload: wl}).
		MigrateAt("vm0", 1, set.Warmup)
	res, err := sc.Run()
	if err != nil {
		panic("experiments: fig3 " + string(a) + "/" + bench + ": " + err.Error())
	}
	vm := res.VMs[0]
	if !vm.Migrated {
		panic("experiments: fig3 migration did not complete for " + string(a))
	}
	row := Fig3Row{
		Approach:      a,
		Bench:         bench,
		MigrationTime: vm.MigrationTime,
		TrafficMB:     metrics.MB(res.MigrationTraffic(a)),
	}
	g := set.Cluster.Guest
	switch bench {
	case "IOR":
		row.NormReadPct = metrics.Pct(metrics.Ratio(vm.Workload.ReadBW(), g.CacheReadBandwidth))
		row.NormWritePct = metrics.Pct(metrics.Ratio(vm.Workload.WriteBW(), g.CacheWriteBandwidth))
	case "AsyncWR":
		nominal := float64(set.AsyncWR.DataPerIter) / set.AsyncWR.ComputeTime
		row.NormWritePct = metrics.Pct(metrics.Ratio(vm.Workload.WriteBW(), nominal))
	}
	return row
}

// Fig3Tables renders the three panels as text tables.
func Fig3Tables(rows []Fig3Row) []*metrics.Table {
	ta := metrics.NewTable("Figure 3(a): migration time (s, lower is better)",
		"approach", "IOR", "AsyncWR")
	tbt := metrics.NewTable("Figure 3(b): total network traffic (MB, lower is better)",
		"approach", "IOR", "AsyncWR")
	tc := metrics.NewTable("Figure 3(c): normalized avg throughput (% of max, higher is better)",
		"approach", "IOR-Read", "IOR-Write", "AsyncWR")
	byKey := map[string]Fig3Row{}
	for _, r := range rows {
		byKey[string(r.Approach)+"/"+r.Bench] = r
	}
	for _, a := range cluster.Approaches() {
		i := byKey[string(a)+"/IOR"]
		w := byKey[string(a)+"/AsyncWR"]
		ta.AddRow(string(a), i.MigrationTime, w.MigrationTime)
		tbt.AddRow(string(a), i.TrafficMB, w.TrafficMB)
		tc.AddRow(string(a), i.NormReadPct, i.NormWritePct, w.NormWritePct)
	}
	return []*metrics.Table{ta, tbt, tc}
}
