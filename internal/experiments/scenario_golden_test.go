package experiments

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"github.com/hybridmig/hybridmig/internal/cluster"
	"github.com/hybridmig/hybridmig/internal/metrics"
	"github.com/hybridmig/hybridmig/internal/scenario"
)

// TestScenarioReproducesGoldenFig3Cells proves the declarative scenario path
// reproduces the captured hex-float seed values BIT FOR BIT: for every
// (approach, IOR) cell of Figure 3, a scenario assembled directly through
// the public-facing API (no experiment harness involved) must yield exactly
// the mig= and traffic= hex floats recorded in testdata/golden_small.txt —
// a capture that predates the scenario layer entirely.
func TestScenarioReproducesGoldenFig3Cells(t *testing.T) {
	want := goldenFig3Cells(t, "IOR")
	for _, a := range cluster.Approaches() {
		cell, ok := want[string(a)]
		if !ok {
			t.Fatalf("golden file has no fig3 %s/IOR cell", a)
		}
		set := scenario.NewSetup(scenario.ScaleSmall, 10)
		sc := scenario.New(scenario.WithConfig(set.Cluster)).
			AddVM(scenario.VMSpec{Name: "vm0", Node: 0, Approach: a,
				Workload: scenario.IOR(&set.IOR)}).
			MigrateAt("vm0", 1, set.Warmup)
		res, err := sc.Run()
		if err != nil {
			t.Fatalf("%s: %v", a, err)
		}
		gotMig := fmt.Sprintf("%x", res.VMs[0].MigrationTime)
		gotTraffic := fmt.Sprintf("%x", metrics.MB(res.MigrationTraffic(a)))
		if gotMig != cell.mig {
			t.Errorf("%s: migration time %s != golden %s (bit-for-bit)", a, gotMig, cell.mig)
		}
		if gotTraffic != cell.traffic {
			t.Errorf("%s: traffic %s != golden %s (bit-for-bit)", a, gotTraffic, cell.traffic)
		}
	}
}

type fig3Cell struct{ mig, traffic string }

// goldenFig3Cells parses the "== fig3 ==" section of the small-scale golden
// capture into approach -> hex-float cell values for the given bench.
func goldenFig3Cells(t *testing.T, bench string) map[string]fig3Cell {
	t.Helper()
	raw, err := os.ReadFile(filepath.Join("testdata", "golden_small.txt"))
	if err != nil {
		t.Fatalf("golden capture missing: %v", err)
	}
	cells := map[string]fig3Cell{}
	in := false
	for _, line := range strings.Split(string(raw), "\n") {
		if strings.HasPrefix(line, "== ") {
			in = line == "== fig3 =="
			continue
		}
		if !in || line == "" {
			continue
		}
		fields := strings.Fields(line)
		name, wantBench, ok := strings.Cut(fields[0], "/")
		if !ok || wantBench != bench {
			continue
		}
		var cell fig3Cell
		for _, f := range fields[1:] {
			if v, found := strings.CutPrefix(f, "mig="); found {
				cell.mig = v
			}
			if v, found := strings.CutPrefix(f, "traffic="); found {
				cell.traffic = v
			}
		}
		// Sanity: the captured values must be parseable hex floats.
		if _, err := strconv.ParseFloat(cell.mig, 64); err != nil {
			t.Fatalf("unparseable golden mig %q: %v", cell.mig, err)
		}
		cells[name] = cell
	}
	return cells
}
