package experiments

import (
	"fmt"

	"github.com/hybridmig/hybridmig/internal/cluster"
	"github.com/hybridmig/hybridmig/internal/metrics"
	"github.com/hybridmig/hybridmig/internal/scenario"
)

// Fig5Row is one point of Figures 5(a)-(c): one approach at one number of
// successive migrations under the CM1 application.
type Fig5Row struct {
	Approach   cluster.Approach `json:"approach"`
	Migrations int              `json:"migrations"`

	CumulMigrationTime float64 `json:"cumul_migration_s"`  // Fig. 5(a), summed over all migrations (s)
	TrafficGB          float64 `json:"traffic_gb"`         // Fig. 5(b), CM1 communication excluded
	RuntimeIncrease    float64 `json:"runtime_increase_s"` // Fig. 5(c), vs the migration-free run (s)
}

// Fig5Migrations returns the x-axis of Figure 5 for the scale.
func Fig5Migrations(s Scale) []int {
	if s == ScalePaper {
		return []int{1, 2, 3, 4, 5, 6, 7}
	}
	return []int{1, 2, 3}
}

// RunFig5 reproduces Figure 5: CM1 ranks (one per source node) run the
// stencil; migrations of sources 0..M-1 start Gap seconds apart. Runtime
// increase compares against a migration-free run of the same approach.
func RunFig5(s Scale) []Fig5Row {
	// Phase 1 — the migration-free base run per approach (the Fig. 5(c)
	// reference); phase 2 — the approach x migrations grid. Both fan out
	// over the SetParallel budget with rows landing by cell index.
	approaches := cluster.Approaches()
	bases := make([]fig5Result, len(approaches))
	forEach(len(approaches), func(i int) {
		bases[i] = runFig5One(s, approaches[i], 0)
	})
	baseBy := make(map[cluster.Approach]float64, len(approaches))
	for i, a := range approaches {
		baseBy[a] = bases[i].runtime
	}
	type cell struct {
		a cluster.Approach
		m int
	}
	var cells []cell
	for _, a := range approaches {
		for _, m := range Fig5Migrations(s) {
			cells = append(cells, cell{a, m})
		}
	}
	rows := make([]Fig5Row, len(cells))
	forEach(len(cells), func(i int) {
		r := runFig5One(s, cells[i].a, cells[i].m)
		r.RuntimeIncrease = r.runtime - baseBy[cells[i].a]
		if r.RuntimeIncrease < 0 {
			r.RuntimeIncrease = 0
		}
		rows[i] = r.Fig5Row
	})
	return rows
}

type fig5Result struct {
	Fig5Row
	runtime float64
}

func runFig5One(s Scale, a cluster.Approach, migrations int) fig5Result {
	set := NewSetup(s, 0)
	ranks := set.CM1.Procs
	maxMig := Fig5Migrations(s)[len(Fig5Migrations(s))-1]
	set.Cluster.Nodes = ranks + maxMig

	sc := scenario.New(scenario.WithConfig(set.Cluster),
		scenario.WithCM1(set.CM1), scenario.WithHorizon(1e7))
	for i := 0; i < ranks; i++ {
		sc.AddVM(scenario.VMSpec{Name: fmt.Sprintf("rank%02d", i), Node: i, Approach: a})
	}
	// Successive migrations: source k moves after (k+1) gaps.
	for k := 0; k < migrations; k++ {
		sc.MigrateAt(fmt.Sprintf("rank%02d", k), ranks+k, set.Gap*float64(k+1))
	}
	r, err := sc.Run()
	if err != nil {
		panic(fmt.Sprintf("experiments: fig5 %s m=%d: %v", a, migrations, err))
	}

	res := fig5Result{Fig5Row: Fig5Row{Approach: a, Migrations: migrations}}
	for k := 0; k < migrations; k++ {
		if !r.VMs[k].Migrated {
			panic(fmt.Sprintf("experiments: fig5 migration %d incomplete for %s", k, a))
		}
		res.CumulMigrationTime += r.VMs[k].MigrationTime
	}
	res.runtime = r.CM1.Runtime
	if r.CM1.Intervals != set.CM1.Intervals {
		panic("experiments: CM1 did not finish")
	}
	// Fig. 5(b) excludes application communication: MigrationTraffic never
	// counts flow.TagApp, which is exactly the paper's subtraction.
	res.TrafficGB = metrics.GB(r.MigrationTraffic(a))
	return res
}

// Fig5Tables renders the three panels.
func Fig5Tables(s Scale, rows []Fig5Row) []*metrics.Table {
	migs := Fig5Migrations(s)
	head := make([]string, 0, len(migs)+1)
	head = append(head, "approach")
	for _, m := range migs {
		head = append(head, fmt.Sprintf("m=%d", m))
	}
	ta := metrics.NewTable("Figure 5(a): cumulated migration time (s, lower is better)", head...)
	tbt := metrics.NewTable("Figure 5(b): network traffic excluding CM1 communication (GB, lower is better)", head...)
	tc := metrics.NewTable("Figure 5(c): increase in app execution time (s, lower is better)", head...)
	byKey := map[string]Fig5Row{}
	for _, r := range rows {
		byKey[fmt.Sprintf("%s/%d", r.Approach, r.Migrations)] = r
	}
	for _, a := range cluster.Approaches() {
		ra := []any{string(a)}
		rb := []any{string(a)}
		rc := []any{string(a)}
		for _, m := range migs {
			r := byKey[fmt.Sprintf("%s/%d", a, m)]
			ra = append(ra, r.CumulMigrationTime)
			rb = append(rb, r.TrafficGB)
			rc = append(rc, r.RuntimeIncrease)
		}
		ta.AddRow(ra...)
		tbt.AddRow(rb...)
		tc.AddRow(rc...)
	}
	return []*metrics.Table{ta, tbt, tc}
}
