package experiments

import (
	"fmt"

	"github.com/hybridmig/hybridmig/internal/cluster"
	"github.com/hybridmig/hybridmig/internal/metrics"
	"github.com/hybridmig/hybridmig/internal/scenario"
	"github.com/hybridmig/hybridmig/internal/sched"
)

// CampaignRow is one cell of the campaign experiment: one approach migrating
// a fleet of IOR VMs under one orchestration policy.
type CampaignRow struct {
	Approach cluster.Approach `json:"approach"`
	Policy   string           `json:"policy"`
	VMs      int              `json:"vms"`

	Makespan         float64 `json:"makespan_s"`        // first submission to last completion, seconds
	AvgMigrationTime float64 `json:"avg_migration_s"`   // mean per-VM migration time, seconds
	TotalDowntimeMS  float64 `json:"total_downtime_ms"` // cumulative stop-and-copy across the fleet
	TrafficGB        float64 `json:"traffic_gb"`        // bytes moved while the campaign ran
	PeakConcurrent   int     `json:"peak_concurrent"`   // most migrations in flight at once
}

// CampaignVMs returns the fleet size for the scale: 8 at small scale (the
// determinism test migrates all of them concurrently), 16 at paper scale.
func CampaignVMs(s Scale) int {
	if s == ScalePaper {
		return 16
	}
	return 8
}

// CampaignPolicies returns the four policies the experiment compares, sized
// for an n-VM fleet. The cycle-aware defer budget is a couple of IOR
// write/read cycles so deferred VMs still migrate promptly.
func CampaignPolicies(s Scale, n int) []sched.Policy {
	k := n / 4
	if k < 2 {
		k = 2
	}
	maxDefer := 10.0
	if s == ScalePaper {
		maxDefer = 120
	}
	return []sched.Policy{
		sched.AllAtOnce{},
		sched.Serial{},
		sched.BatchedK{K: k},
		sched.CycleAware{MaxDefer: maxDefer},
	}
}

// RunCampaign runs the full campaign experiment: every approach under every
// policy, a fleet of IOR VMs migrating together after the warm-up. The
// approach x policy cells are independent runs and fan out over the
// SetParallel budget, rows landing by cell index.
func RunCampaign(s Scale) []CampaignRow {
	type cell struct {
		a   cluster.Approach
		pol sched.Policy
	}
	n := CampaignVMs(s)
	var cells []cell
	for _, a := range cluster.Approaches() {
		for _, pol := range CampaignPolicies(s, n) {
			cells = append(cells, cell{a, pol})
		}
	}
	rows := make([]CampaignRow, len(cells))
	forEach(len(cells), func(i int) {
		rows[i] = campaignRow(cells[i].a, RunCampaignOne(s, cells[i].a, cells[i].pol))
	})
	return rows
}

// RunCampaignApproach runs the four policies for one approach.
func RunCampaignApproach(s Scale, a cluster.Approach) []CampaignRow {
	n := CampaignVMs(s)
	pols := CampaignPolicies(s, n)
	rows := make([]CampaignRow, len(pols))
	forEach(len(pols), func(i int) {
		rows[i] = campaignRow(a, RunCampaignOne(s, a, pols[i]))
	})
	return rows
}

// campaignRow summarizes one finished campaign as a report row.
func campaignRow(a cluster.Approach, c *metrics.Campaign) CampaignRow {
	return CampaignRow{
		Approach:         a,
		Policy:           c.Policy,
		VMs:              c.Jobs,
		Makespan:         c.Makespan(),
		AvgMigrationTime: c.AvgMigrationTime(),
		TotalDowntimeMS:  c.TotalDowntime * 1000,
		TrafficGB:        metrics.GB(c.TransferredBytes),
		PeakConcurrent:   c.PeakConcurrent,
	}
}

// RunCampaignOne executes one campaign: CampaignVMs IOR VMs on distinct
// source nodes, all migrating after the warm-up under the policy. The
// destinations deliberately pack two migrations per target node, so
// concurrent admission contends on destination NICs and disks — the
// interference that admission control exists to manage.
func RunCampaignOne(s Scale, a cluster.Approach, pol sched.Policy) *metrics.Campaign {
	n := CampaignVMs(s)
	set := NewSetup(s, n+(n+1)/2)
	ior := set.IOR
	if s == ScaleSmall {
		// Enough iterations to keep I/O active through a serial campaign
		// without dragging the drain-out phase.
		ior.Iterations = 30
	}
	sc := scenario.New(scenario.WithConfig(set.Cluster))
	steps := make([]scenario.Step, n)
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("vm%02d", i)
		sc.AddVM(scenario.VMSpec{Name: name, Node: i, Approach: a, Workload: scenario.IOR(&ior)})
		steps[i] = scenario.Step{VM: name, Dst: n + i/2}
	}
	sc.Campaign(set.Warmup, pol, steps...)
	r, err := sc.Run()
	if err != nil {
		panic("experiments: campaign did not complete for " + string(a) + "/" + pol.Name() + ": " + err.Error())
	}
	for i := range r.VMs {
		if !r.VMs[i].Migrated {
			panic(fmt.Sprintf("experiments: campaign migration %d incomplete for %s/%s", i, a, pol.Name()))
		}
	}
	return r.Campaigns[0]
}

// CampaignTables renders the campaign comparison, one table per metric,
// approaches as rows and policies as columns.
func CampaignTables(s Scale, rows []CampaignRow) []*metrics.Table {
	pols := CampaignPolicies(s, CampaignVMs(s))
	head := make([]string, 0, len(pols)+1)
	head = append(head, "approach")
	for _, p := range pols {
		head = append(head, p.Name())
	}
	n := CampaignVMs(s)
	tm := metrics.NewTable(fmt.Sprintf("Campaign (%d IOR VMs): makespan (s, lower is better)", n), head...)
	ta := metrics.NewTable("Campaign: avg migration time per VM (s)", head...)
	td := metrics.NewTable("Campaign: total downtime (ms)", head...)
	tt := metrics.NewTable("Campaign: traffic while migrating (GB)", head...)
	byKey := map[string]CampaignRow{}
	for _, r := range rows {
		byKey[string(r.Approach)+"/"+r.Policy] = r
	}
	for _, a := range cluster.Approaches() {
		rm := []any{string(a)}
		ra := []any{string(a)}
		rd := []any{string(a)}
		rt := []any{string(a)}
		for _, p := range pols {
			r := byKey[string(a)+"/"+p.Name()]
			rm = append(rm, r.Makespan)
			ra = append(ra, r.AvgMigrationTime)
			rd = append(rd, r.TotalDowntimeMS)
			rt = append(rt, r.TrafficGB)
		}
		tm.AddRow(rm...)
		ta.AddRow(ra...)
		td.AddRow(rd...)
		tt.AddRow(rt...)
	}
	return []*metrics.Table{tm, ta, td, tt}
}
