package experiments

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// The experiment drivers are embarrassingly parallel at the cell level:
// every figure point and campaign cell is one self-contained Scenario.Run
// with its own engine, cluster, and flow network, sharing nothing mutable
// with its neighbors. Running cells concurrently therefore changes nothing
// about any cell's result — each run is bit-for-bit the run the serial
// driver would have produced — and the drivers assemble rows by cell index,
// so report output is byte-identical too. This run-level parallelism
// composes with the scenario-level component sharding (scenario.WithParallel)
// one layer down.

// parallelWorkers is the worker budget for cell fan-out; 0 (the default)
// runs every driver serially.
var parallelWorkers atomic.Int32

// SetParallel sets how many experiment cells may run concurrently: 0 restores
// the serial driver, negative uses GOMAXPROCS. It applies to all subsequent
// Run* calls (process-wide, like the drivers themselves).
func SetParallel(workers int) {
	if workers < 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	parallelWorkers.Store(int32(workers))
}

// ParallelWorkers returns the current cell-level worker budget.
func ParallelWorkers() int { return int(parallelWorkers.Load()) }

// forEach runs fn(0..n-1), fanning out over the configured worker budget.
// Cells are claimed from an atomic counter, so completion order is
// arbitrary — callers must write results into index-addressed slots, never
// append. A panicking cell stops its worker; the first panic (by worker
// index) is re-raised in the caller after the remaining workers drain, so
// driver error reporting behaves as in the serial path.
func forEach(n int, fn func(i int)) {
	workers := ParallelWorkers()
	if workers > n {
		workers = n
	}
	if workers <= 1 || n <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	panics := make([]any, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			defer func() { panics[w] = recover() }()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}(w)
	}
	wg.Wait()
	for _, p := range panics {
		if p != nil {
			panic(p)
		}
	}
}
