package experiments

import (
	"flag"
	"math"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden testdata from the current code")

// TestGoldenDeterminismSmall pins every experiment output at small scale to
// the values captured from the PRE-rewrite allocator (the global-recompute
// seed): the incremental component-scoped allocator and the
// zero-allocation sim kernel reproduce the seed's outputs within float
// accumulation drift (see goldenRelTol).
func TestGoldenDeterminismSmall(t *testing.T) {
	checkGolden(t, ScaleSmall, "golden_small.txt")
}

// TestGoldenDeterminismPaper is the same contract at the paper's Section 5
// parameters — the capture is likewise from the pre-rewrite seed, and every
// row matches. (This test earned its keep before the PR even merged: an
// unsound partial heap repair fired only at paper scale and showed up here
// as a 0.9 ms makespan shift in one campaign cell.) The run is ~2 minutes
// of simulated fleet time, so it is gated for explicit/CI use.
func TestGoldenDeterminismPaper(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale golden skipped in -short mode")
	}
	if os.Getenv("HYBRIDMIG_GOLDEN_PAPER") == "" && !*updateGolden {
		t.Skip("set HYBRIDMIG_GOLDEN_PAPER=1 (or -update) to run the paper-scale golden")
	}
	checkGolden(t, ScalePaper, "golden_paper.txt")
}

func checkGolden(t *testing.T, s Scale, file string) {
	t.Helper()
	path := filepath.Join("testdata", file)
	got := GoldenReport(s)
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d bytes)", path, len(got))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("golden file missing (run with -update to capture): %v", err)
	}
	if msg := compareGolden(string(want), got); msg != "" {
		t.Fatalf("experiment outputs diverged from golden %s\n%s", path, msg)
	}
}

// goldenRelTol is the numeric tolerance of the golden comparison. Structure,
// event ordering, tie-breaking, and integer outputs must match exactly;
// float values may differ by re-associated accumulation order (the lazy
// settlement of the incremental allocator integrates a flow's bytes over
// different interval partitions than the seed's eager global advance, which
// perturbs the last bits of the mantissa, ~1e-13 relative per operation;
// serial campaigns chain thousands of dependent completions, compounding to
// ~1e-8). Any genuine determinism break — a reordered completion, a swapped
// job, a changed allocation — shifts values by 1e-3 relative or more, so
// 1e-6 separates the two regimes by orders of magnitude on either side.
const goldenRelTol = 1e-6

// compareGolden diffs two reports line by line and field by field, applying
// goldenRelTol to `key=value` fields whose values parse as floats and exact
// comparison to everything else. Returns "" when equivalent.
func compareGolden(want, got string) string {
	wl := splitLines(want)
	gl := splitLines(got)
	var b strings.Builder
	n := 0
	report := func(i int, w, g string) bool {
		b.WriteString("line " + strconv.Itoa(i+1) + ":\n  want: " + w + "\n  got:  " + g + "\n")
		if n++; n >= 10 {
			b.WriteString("  ... (further diffs elided)\n")
			return true
		}
		return false
	}
	for i := 0; i < len(wl) || i < len(gl); i++ {
		var w, g string
		if i < len(wl) {
			w = wl[i]
		}
		if i < len(gl) {
			g = gl[i]
		}
		if w == g || lineEquivalent(w, g) {
			continue
		}
		if report(i, w, g) {
			break
		}
	}
	return b.String()
}

func splitLines(s string) []string {
	return strings.Split(strings.TrimSuffix(s, "\n"), "\n")
}

// lineEquivalent compares one report line field-wise under goldenRelTol.
func lineEquivalent(w, g string) bool {
	wf := strings.Fields(w)
	gf := strings.Fields(g)
	if len(wf) != len(gf) {
		return false
	}
	for i := range wf {
		if wf[i] == gf[i] {
			continue
		}
		wk, wv, wok := strings.Cut(wf[i], "=")
		gk, gv, gok := strings.Cut(gf[i], "=")
		if !wok || !gok || wk != gk {
			return false
		}
		a, errA := strconv.ParseFloat(wv, 64)
		c, errC := strconv.ParseFloat(gv, 64)
		if errA != nil || errC != nil {
			return false
		}
		scale := math.Max(1, math.Max(math.Abs(a), math.Abs(c)))
		if math.Abs(a-c) > goldenRelTol*scale {
			return false
		}
	}
	return true
}
