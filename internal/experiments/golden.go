package experiments

import (
	"fmt"
	"strings"
)

// GoldenReport renders every experiment artifact at full float64 precision
// (hex float formatting, so every bit of the mantissa is visible). It is the
// determinism contract of the simulator: any change to event ordering, rate
// allocation, or byte accounting shows up as a diff against the captured
// testdata, even when the human-readable %.2f tables would round it away.
func GoldenReport(s Scale) string {
	var b strings.Builder
	fmt.Fprintf(&b, "golden report scale=%s\n", s)

	b.WriteString("== table1 ==\n")
	for _, r := range RunTable1() {
		fmt.Fprintf(&b, "%s | %s\n", r.Approach, r.Strategy)
	}

	b.WriteString("== fig3 ==\n")
	for _, r := range RunFig3(s) {
		fmt.Fprintf(&b, "%s/%s mig=%x traffic=%x read=%x write=%x\n",
			r.Approach, r.Bench, r.MigrationTime, r.TrafficMB, r.NormReadPct, r.NormWritePct)
	}

	b.WriteString("== fig4 ==\n")
	for _, r := range RunFig4(s) {
		fmt.Fprintf(&b, "%s/n=%d mig=%x traffic=%x degr=%x\n",
			r.Approach, r.Concurrency, r.AvgMigrationTime, r.TrafficGB, r.DegradationPct)
	}

	b.WriteString("== fig5 ==\n")
	for _, r := range RunFig5(s) {
		fmt.Fprintf(&b, "%s/m=%d mig=%x traffic=%x slowdown=%x\n",
			r.Approach, r.Migrations, r.CumulMigrationTime, r.TrafficGB, r.RuntimeIncrease)
	}

	b.WriteString("== campaign ==\n")
	for _, r := range RunCampaign(s) {
		fmt.Fprintf(&b, "%s/%s vms=%d makespan=%x avgmig=%x downtime=%x traffic=%x peak=%d\n",
			r.Approach, r.Policy, r.VMs, r.Makespan, r.AvgMigrationTime,
			r.TotalDowntimeMS, r.TrafficGB, r.PeakConcurrent)
	}
	return b.String()
}
