package experiments

import (
	"os"
	"path/filepath"
	"runtime"
	"testing"
)

// TestParallelDriverGoldenSmall runs the full small-scale golden report with
// the cell-parallel driver and requires it BYTE-IDENTICAL to the serial
// capture: every cell is an isolated engine, so concurrency must not move a
// single bit, not merely stay within tolerance.
func TestParallelDriverGoldenSmall(t *testing.T) {
	SetParallel(runtime.GOMAXPROCS(0) + 2) // oversubscribe: exercise cell queuing
	defer SetParallel(0)
	got := GoldenReport(ScaleSmall)
	want, err := os.ReadFile(filepath.Join("testdata", "golden_small.txt"))
	if err != nil {
		t.Fatalf("golden file missing: %v", err)
	}
	if got != string(want) {
		msg := compareGolden(string(want), got)
		if msg == "" {
			msg = "(differences below field tolerance, but the parallel driver must be bit-identical)"
		}
		t.Fatalf("parallel driver diverged from serial golden:\n%s", msg)
	}
}

// TestParallelDriverGoldenPaper is the same byte-identity contract at paper
// scale, gated like the serial paper golden.
func TestParallelDriverGoldenPaper(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale golden skipped in -short mode")
	}
	if os.Getenv("HYBRIDMIG_GOLDEN_PAPER") == "" {
		t.Skip("set HYBRIDMIG_GOLDEN_PAPER=1 to run the paper-scale parallel golden")
	}
	SetParallel(-1)
	defer SetParallel(0)
	got := GoldenReport(ScalePaper)
	want, err := os.ReadFile(filepath.Join("testdata", "golden_paper.txt"))
	if err != nil {
		t.Fatalf("golden file missing: %v", err)
	}
	if got != string(want) {
		t.Fatalf("parallel driver diverged from serial paper golden:\n%s",
			compareGolden(string(want), got))
	}
}
