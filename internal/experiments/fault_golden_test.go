package experiments

import (
	"os"
	"path/filepath"
	"testing"

	"github.com/hybridmig/hybridmig/internal/scenario"
)

// faultGoldenScenario is the pinned degraded-mode run: one IOR VM at small
// scale whose migration is killed by a destination crash mid-flight under a
// fabric degradation and background cross traffic, then completed by a
// retry. Every float of its Result is captured in hex, so any refactor of
// the reflow/abort/retry paths that shifts a single event or byte shows up
// as a bit-level diff — the same contract the PR 2 goldens pin for the
// fault-free kernel.
func faultGoldenScenario() *scenario.Scenario {
	set := scenario.NewSetup(scenario.ScaleSmall, 4)
	return scenario.New(
		scenario.WithConfig(set.Cluster),
		scenario.WithSeedCapture(),
		scenario.WithRetry(scenario.RetrySpec{MaxAttempts: 3, Backoff: 1, Factor: 2}),
		scenario.WithBackgroundTraffic(scenario.TrafficSpec{
			Src: 2, Dst: 1, Start: 0, Stop: 40, Rate: 30e6,
		}),
		scenario.WithFaults(
			scenario.FaultSpec{Kind: scenario.FaultLinkDegrade,
				Node: 1, At: set.Warmup, Factor: 0.4, Duration: 6},
			scenario.FaultSpec{Kind: scenario.FaultDestCrash,
				VM: "vm0", At: set.Warmup + 1.5},
		),
	).
		AddVM(scenario.VMSpec{Name: "vm0", Node: 0,
			Approach: "our-approach", Workload: scenario.IOR(&set.IOR)}).
		MigrateAt("vm0", 1, set.Warmup)
}

// TestGoldenDeterminismFault pins the fault scenario's hex-float capture
// bit for bit (regenerate with -update after intentional changes).
func TestGoldenDeterminismFault(t *testing.T) {
	res, err := faultGoldenScenario().Run()
	if err != nil {
		t.Fatal(err)
	}
	// The capture only pins what it prints; assert the scenario actually
	// exercised the fault path before trusting it as a fault golden.
	if res.TotalRetries() == 0 || res.TotalAbortedBytes() <= 0 {
		t.Fatalf("fault golden scenario did not abort+retry (retries=%d wasted=%g)",
			res.TotalRetries(), res.TotalAbortedBytes())
	}
	if !res.VM("vm0").Migrated {
		t.Fatal("fault golden scenario did not complete via retry")
	}

	path := filepath.Join("testdata", "golden_fault.txt")
	if *updateGolden {
		if err := os.WriteFile(path, []byte(res.SeedCapture), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d bytes)", path, len(res.SeedCapture))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("fault golden missing (run with -update to capture): %v", err)
	}
	if string(want) != res.SeedCapture {
		t.Fatalf("fault capture diverged from golden (bit-for-bit)\n--- want\n%s\n--- got\n%s",
			want, res.SeedCapture)
	}

	// Re-run: the capture must be bit-identical within one build too.
	res2, err := faultGoldenScenario().Run()
	if err != nil {
		t.Fatal(err)
	}
	if res2.SeedCapture != res.SeedCapture {
		t.Fatal("fault scenario not deterministic across runs")
	}
}
