package experiments

import (
	"math"
	"testing"

	"github.com/hybridmig/hybridmig/internal/cluster"
	"github.com/hybridmig/hybridmig/internal/metrics"
	"github.com/hybridmig/hybridmig/internal/sched"
)

// measurably reports a relative difference of at least 5% between two
// aggregates — the bar for "the policy changed the outcome".
func measurably(a, b float64) bool {
	if a == 0 && b == 0 {
		return false
	}
	return math.Abs(a-b) > 0.05*math.Max(math.Abs(a), math.Abs(b))
}

// TestCampaignPoliciesDiffer is the acceptance experiment: a fleet of 8 IOR
// VMs migrates under all-at-once, batched-2 and serial, for both our
// approach and the precopy baseline. Admission control must change the
// campaign shape: all-at-once runs all 8 at once, serial exactly 1, and the
// makespan/downtime aggregates must measurably differ from all-at-once.
func TestCampaignPoliciesDiffer(t *testing.T) {
	n := CampaignVMs(ScaleSmall)
	if n < 8 {
		t.Fatalf("campaign fleet %d, want >= 8", n)
	}
	for _, a := range []cluster.Approach{cluster.OurApproach, cluster.Precopy} {
		all := RunCampaignOne(ScaleSmall, a, sched.AllAtOnce{})
		ser := RunCampaignOne(ScaleSmall, a, sched.Serial{})
		bat := RunCampaignOne(ScaleSmall, a, sched.BatchedK{K: 2})

		if all.PeakConcurrent != n {
			t.Errorf("%s: all-at-once peak = %d, want %d simultaneous migrations", a, all.PeakConcurrent, n)
		}
		if ser.PeakConcurrent != 1 {
			t.Errorf("%s: serial peak = %d, want 1", a, ser.PeakConcurrent)
		}
		if bat.PeakConcurrent != 2 {
			t.Errorf("%s: batched-2 peak = %d, want 2", a, bat.PeakConcurrent)
		}
		for _, c := range []*metrics.Campaign{all, ser, bat} {
			if c.Jobs != n || len(c.JobStats) != n {
				t.Fatalf("%s/%s: job accounting %d/%d", a, c.Policy, c.Jobs, len(c.JobStats))
			}
			if c.Makespan() <= 0 || c.TotalDowntime <= 0 || c.TransferredBytes <= 0 {
				t.Errorf("%s/%s: degenerate aggregates %+v", a, c.Policy, c)
			}
		}
		if !measurably(ser.Makespan(), all.Makespan()) && !measurably(ser.TotalDowntime, all.TotalDowntime) {
			t.Errorf("%s: serial (makespan %.2f, downtime %.3f) indistinguishable from all-at-once (%.2f, %.3f)",
				a, ser.Makespan(), ser.TotalDowntime, all.Makespan(), all.TotalDowntime)
		}
		if !measurably(bat.Makespan(), all.Makespan()) && !measurably(bat.TotalDowntime, all.TotalDowntime) {
			t.Errorf("%s: batched-2 (makespan %.2f, downtime %.3f) indistinguishable from all-at-once (%.2f, %.3f)",
				a, bat.Makespan(), bat.TotalDowntime, all.Makespan(), all.TotalDowntime)
		}
	}
}

// TestCampaignDeterminism repeats one campaign and requires bit-identical
// aggregate and per-job stats: orchestration must not break the simulation's
// determinism.
func TestCampaignDeterminism(t *testing.T) {
	for _, a := range []cluster.Approach{cluster.OurApproach, cluster.Precopy} {
		x := RunCampaignOne(ScaleSmall, a, sched.BatchedK{K: 2})
		y := RunCampaignOne(ScaleSmall, a, sched.BatchedK{K: 2})
		if x.Makespan() != y.Makespan() || x.TotalDowntime != y.TotalDowntime ||
			x.TransferredBytes != y.TransferredBytes || x.PeakConcurrent != y.PeakConcurrent ||
			x.PeakFlows != y.PeakFlows {
			t.Errorf("%s: repeated campaign aggregates differ:\n%+v\n%+v", a, x, y)
		}
		for i := range x.JobStats {
			if x.JobStats[i] != y.JobStats[i] {
				t.Errorf("%s: job %d stats differ: %+v vs %+v", a, i, x.JobStats[i], y.JobStats[i])
			}
		}
	}
}

// TestCampaignCycleAwareDefers checks that the cycle-aware policy actually
// defers at least one VM beyond immediate admission (the fleet's caches are
// dirty right after the warm-up's write phases), while still completing the
// whole campaign within the defer budget.
func TestCampaignCycleAwareDefers(t *testing.T) {
	c := RunCampaignOne(ScaleSmall, cluster.OurApproach, sched.CycleAware{MaxDefer: 10})
	deferred := 0
	for _, j := range c.JobStats {
		if j.Wait() > 0.2 {
			deferred++
		}
		if j.Wait() > 10.6 {
			t.Errorf("job %s waited %.2f s, beyond the 10 s defer budget", j.Name, j.Wait())
		}
	}
	if deferred == 0 {
		t.Error("cycle-aware campaign deferred no VM at all; window probe is dead")
	}
}

// TestCampaignTablesRender exercises the full runner and its rendering for
// one approach (keeping test time bounded) plus the table assembly for all.
func TestCampaignTablesRender(t *testing.T) {
	rows := RunCampaignApproach(ScaleSmall, cluster.PVFSShared)
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want 4 policies", len(rows))
	}
	for _, r := range rows {
		if r.Makespan <= 0 || r.VMs != CampaignVMs(ScaleSmall) {
			t.Errorf("bad row %+v", r)
		}
	}
	tables := CampaignTables(ScaleSmall, rows)
	if len(tables) != 4 {
		t.Fatalf("tables = %d", len(tables))
	}
	for _, tb := range tables {
		if s := tb.String(); len(s) == 0 {
			t.Error("empty table rendering")
		}
	}
}
