// Package experiments regenerates every table and figure of the paper's
// evaluation (Section 5): Table 1 (approach summary), Figure 3 (single-VM
// IOR/AsyncWR migration performance), Figure 4 (concurrent migrations of
// AsyncWR VMs), Figure 5 (successive migrations under CM1), plus ablations
// of the design choices called out in Sections 4.1 and 6.
//
// Runs come in two scales: ScalePaper reproduces the paper's parameters
// (4 GB images and RAM, 100-second warm-up, 30 concurrent migrations, 64
// CM1 ranks); ScaleSmall preserves every ratio at roughly 1/16 size so the
// whole suite doubles as a fast regression test.
package experiments

import (
	"github.com/hybridmig/hybridmig/internal/cluster"
	"github.com/hybridmig/hybridmig/internal/flow"
	"github.com/hybridmig/hybridmig/internal/params"
	"github.com/hybridmig/hybridmig/internal/sim"
)

// Scale selects the run size.
type Scale int

// Available scales.
const (
	ScaleSmall Scale = iota
	ScalePaper
)

func (s Scale) String() string {
	if s == ScalePaper {
		return "paper"
	}
	return "small"
}

// Setup bundles everything one experiment run needs.
type Setup struct {
	Scale   Scale
	Cluster cluster.Config
	IOR     params.IOR
	AsyncWR params.AsyncWR
	CM1     params.CM1
	Warmup  float64
	Gap     float64 // delay between successive migrations (Fig. 5)
	// Horizon is the fixed wall-clock window for degradation measurements
	// (Fig. 4c): computational potential is compared at this absolute time.
	Horizon float64
}

// NewSetup returns the configuration for a scale and node count.
func NewSetup(s Scale, nodes int) Setup {
	if s == ScalePaper {
		cfg := cluster.DefaultConfig(nodes)
		return Setup{
			Scale:   s,
			Cluster: cfg,
			IOR:     params.DefaultIOR(),
			AsyncWR: params.DefaultAsyncWR(),
			CM1:     defaultCM1(),
			Warmup:  cfg.Experiment.WarmupDelay,
			Gap:     cfg.Experiment.SuccessiveGap,
			Horizon: 180,
		}
	}
	cfg := cluster.SmallConfig(nodes)
	return Setup{
		Scale:   s,
		Cluster: cfg,
		IOR:     params.IOR{Iterations: 40, FileSize: 64 * params.MB, BlockSize: 256 * params.KB},
		AsyncWR: params.AsyncWR{
			Iterations:      90,
			DataPerIter:     2 * params.MB,
			ComputeTime:     0.35,
			MemoryDirtyRate: 8 * params.MB,
			WorkingSet:      16 * params.MB,
		},
		CM1: params.CM1{
			Procs: 16, GridX: 4, GridY: 4,
			Intervals:       8,
			ComputePerIntvl: 6,
			OutputSize:      12 * params.MB,
			HaloBytes:       1 * params.MB,
			MemoryDirtyRate: 10 * params.MB,
			WorkingSet:      48 * params.MB,
		},
		Warmup:  8,
		Gap:     8,
		Horizon: 20,
	}
}

// defaultCM1 adapts params.DefaultCM1 for convergence realism (see
// DESIGN.md: the stencil dirty rate must sit below the NIC rate or no
// pre-copy implementation can ever converge).
func defaultCM1() params.CM1 {
	p := params.DefaultCM1()
	p.Intervals = 12
	p.MemoryDirtyRate = 60 * params.MB
	return p
}

// run drives an assembled testbed until the event queue drains or the
// hard cap is hit, then releases all processes.
func run(tb *cluster.Testbed, until float64) {
	if err := tb.Eng.RunUntil(until); err != nil {
		panic(err)
	}
	tb.Eng.Shutdown()
}

// migrationTraffic implements the paper's Section 5.2 traffic attribution:
// for local-storage approaches, all memory and storage transfer bytes (plus
// repository prefetch); for pvfs-shared, memory plus every byte of PFS I/O
// over the VM lifetime.
func migrationTraffic(tb *cluster.Testbed, approach cluster.Approach) float64 {
	net := tb.Cl.Net
	if approach == cluster.PVFSShared {
		return net.BytesByTag(flow.TagMemory) + net.BytesByTag(flow.TagPFS)
	}
	t := net.BytesByTag(flow.TagMemory) +
		net.BytesByTag(flow.TagStoragePush) +
		net.BytesByTag(flow.TagStoragePull) +
		net.BytesByTag(flow.TagBlockMig) +
		net.BytesByTag(flow.TagMirror)
	for _, inst := range tb.Instances() {
		t += inst.CoreStats.PrefetchBytes
	}
	return t
}

// Table1Row is one line of the paper's Table 1.
type Table1Row struct {
	Approach cluster.Approach
	Strategy string
}

// RunTable1 reproduces Table 1 (a static summary, kept as a runner so every
// artifact of the paper has one).
func RunTable1() []Table1Row {
	rows := make([]Table1Row, 0, 5)
	for _, a := range cluster.Approaches() {
		rows = append(rows, Table1Row{Approach: a, Strategy: a.Description()})
	}
	return rows
}

// launchWorkloadVM deploys one instance and marks IOR guests unbuffered
// (IOR runs O_DIRECT in the guest; see workload.IOR).
func launchWorkloadVM(tb *cluster.Testbed, name string, node int, a cluster.Approach, ior bool) *cluster.Instance {
	inst := tb.Launch(name, node, a)
	if ior {
		inst.Guest.Buffered = false
	}
	return inst
}

// migrateAt schedules a migration of inst at the given time.
func migrateAt(tb *cluster.Testbed, inst *cluster.Instance, at float64, dstIdx int) {
	tb.Eng.Go("middleware/"+inst.Name, func(p *sim.Proc) {
		p.Sleep(at)
		tb.MigrateInstance(p, inst, dstIdx)
	})
}
