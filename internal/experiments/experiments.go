// Package experiments regenerates every table and figure of the paper's
// evaluation (Section 5): Table 1 (approach summary), Figure 3 (single-VM
// IOR/AsyncWR migration performance), Figure 4 (concurrent migrations of
// AsyncWR VMs), Figure 5 (successive migrations under CM1), plus ablations
// of the design choices called out in Sections 4.1 and 6.
//
// Every runner is a declarative scenario executed through
// internal/scenario — the same path the public facade exposes — so the
// golden determinism suite simultaneously pins the experiment outputs and
// the scenario engine that produces them.
//
// Runs come in two scales: ScalePaper reproduces the paper's parameters
// (4 GB images and RAM, 100-second warm-up, 30 concurrent migrations, 64
// CM1 ranks); ScaleSmall preserves every ratio at roughly 1/16 size so the
// whole suite doubles as a fast regression test.
package experiments

import (
	"github.com/hybridmig/hybridmig/internal/cluster"
	"github.com/hybridmig/hybridmig/internal/scenario"
)

// Scale selects the run size (re-exported from internal/scenario, where the
// per-scale defaults now live).
type Scale = scenario.Scale

// Available scales.
const (
	ScaleSmall = scenario.ScaleSmall
	ScalePaper = scenario.ScalePaper
)

// Setup bundles everything one experiment run needs.
type Setup = scenario.Setup

// NewSetup returns the configuration for a scale and node count.
func NewSetup(s Scale, nodes int) Setup { return scenario.NewSetup(s, nodes) }

// Table1Row is one line of the paper's Table 1. Row structs carry stable
// snake_case JSON tags: cmd/paperrepro -json emits them verbatim.
type Table1Row struct {
	Approach cluster.Approach `json:"approach"`
	Strategy string           `json:"strategy"`
}

// RunTable1 reproduces Table 1 (a static summary, kept as a runner so every
// artifact of the paper has one).
func RunTable1() []Table1Row {
	rows := make([]Table1Row, 0, 5)
	for _, a := range cluster.Approaches() {
		rows = append(rows, Table1Row{Approach: a, Strategy: a.Description()})
	}
	return rows
}
