package experiments

import (
	"os"
	"testing"
	"time"

	"github.com/hybridmig/hybridmig/internal/cluster"
)

// Profiling hooks, not tests: each runs one paper-scale hot workload when
// HYBRIDMIG_PROFILE=1 so `go test -run TestProfile... -cpuprofile` has a
// single subject to measure. Kept checked in because every perf PR needs
// them again.

func TestProfileCampaignPaper(t *testing.T) {
	if os.Getenv("HYBRIDMIG_PROFILE") == "" {
		t.Skip("set HYBRIDMIG_PROFILE=1 to run the profiling workload")
	}
	RunCampaignApproach(ScalePaper, cluster.OurApproach)
}

func TestProfileFig4PerApproach(t *testing.T) {
	if os.Getenv("HYBRIDMIG_PROFILE") == "" {
		t.Skip("set HYBRIDMIG_PROFILE=1 to run the profiling workload")
	}
	for _, a := range cluster.Approaches() {
		start := time.Now()
		runFig4One(ScalePaper, a, 30)
		t.Logf("%s n=30: %.1fs", a, time.Since(start).Seconds())
	}
}
