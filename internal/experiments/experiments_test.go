package experiments

import (
	"testing"

	"github.com/hybridmig/hybridmig/internal/cluster"
)

// fig3At finds one row.
func fig3At(rows []Fig3Row, a cluster.Approach, bench string) Fig3Row {
	for _, r := range rows {
		if r.Approach == a && r.Bench == bench {
			return r
		}
	}
	panic("row not found")
}

// TestFig3SmallShape asserts the paper's robust qualitative claims at small
// scale: pvfs migrates fastest (memory only) but costs by far the most
// traffic under IOR; precopy is the slowest migration; our approach beats
// precopy on both time and traffic.
func TestFig3SmallShape(t *testing.T) {
	rows := RunFig3(ScaleSmall)
	if len(rows) != 10 {
		t.Fatalf("rows = %d, want 10 (5 approaches x 2 benches)", len(rows))
	}
	our := fig3At(rows, cluster.OurApproach, "IOR")
	pre := fig3At(rows, cluster.Precopy, "IOR")
	pvfs := fig3At(rows, cluster.PVFSShared, "IOR")
	mir := fig3At(rows, cluster.Mirror, "IOR")

	if pvfs.MigrationTime >= our.MigrationTime {
		t.Errorf("pvfs migration (%v) should be fastest (vs our %v)", pvfs.MigrationTime, our.MigrationTime)
	}
	if pre.MigrationTime <= our.MigrationTime {
		t.Errorf("precopy migration (%v) should exceed our approach (%v)", pre.MigrationTime, our.MigrationTime)
	}
	if pvfs.TrafficMB <= 2*our.TrafficMB {
		t.Errorf("pvfs traffic (%v MB) should dwarf our approach (%v MB)", pvfs.TrafficMB, our.TrafficMB)
	}
	if pre.TrafficMB <= our.TrafficMB {
		t.Errorf("precopy traffic (%v) should exceed our approach (%v): repeated retransfers", pre.TrafficMB, our.TrafficMB)
	}
	// Fig 3(c): pvfs I/O throughput far below the local-storage approaches.
	if pvfs.NormReadPct >= our.NormReadPct/2 {
		t.Errorf("pvfs read throughput (%v%%) should be far below ours (%v%%)", pvfs.NormReadPct, our.NormReadPct)
	}
	if mir.NormWritePct > our.NormWritePct+20 {
		t.Errorf("mirror write throughput (%v%%) implausibly above ours (%v%%)", mir.NormWritePct, our.NormWritePct)
	}
	// All migrations completed with plausible positive values.
	for _, r := range rows {
		if r.MigrationTime <= 0 || r.TrafficMB <= 0 {
			t.Errorf("%s/%s: non-positive measurements %+v", r.Approach, r.Bench, r)
		}
	}
}

func TestFig3Tables(t *testing.T) {
	rows := RunFig3(ScaleSmall)
	tables := Fig3Tables(rows)
	if len(tables) != 3 {
		t.Fatalf("tables = %d, want 3 panels", len(tables))
	}
	for _, tab := range tables {
		s := tab.String()
		if len(s) == 0 {
			t.Fatal("empty table")
		}
	}
}

func TestFig4SmallShape(t *testing.T) {
	rows := RunFig4(ScaleSmall)
	want := len(cluster.Approaches()) * len(Fig4Concurrencies(ScaleSmall))
	if len(rows) != want {
		t.Fatalf("rows = %d, want %d", len(rows), want)
	}
	byKey := map[string]Fig4Row{}
	for _, r := range rows {
		byKey[string(r.Approach)+string(rune('0'+r.Concurrency))] = r
	}
	maxC := Fig4Concurrencies(ScaleSmall)[len(Fig4Concurrencies(ScaleSmall))-1]
	for _, a := range cluster.Approaches() {
		for _, k := range Fig4Concurrencies(ScaleSmall) {
			r := byKey[string(a)+string(rune('0'+k))]
			if r.AvgMigrationTime <= 0 {
				t.Errorf("%s n=%d: no migration time", a, k)
			}
			if r.TrafficGB <= 0 {
				t.Errorf("%s n=%d: no traffic", a, k)
			}
			if r.DegradationPct < 0 || r.DegradationPct > 60 {
				t.Errorf("%s n=%d: degradation %v%% out of range", a, k, r.DegradationPct)
			}
		}
		// Traffic grows with concurrency for migrating approaches.
		lo := byKey[string(a)+string(rune('0'+1))]
		hi := byKey[string(a)+string(rune('0'+maxC))]
		if a != cluster.PVFSShared && hi.TrafficGB <= lo.TrafficGB {
			t.Errorf("%s: traffic did not grow with concurrency (%v -> %v)", a, lo.TrafficGB, hi.TrafficGB)
		}
	}
	// postcopy's long pull phases steal CPU the longest: its degradation
	// must be at least our approach's (the paper's 3-4x gap in direction).
	// Note: pvfs degradation under-reproduces in this model (EXPERIMENTS.md
	// Deviation 4), so no ordering is asserted for it.
	our := byKey[string(cluster.OurApproach)+string(rune('0'+maxC))]
	post := byKey[string(cluster.Postcopy)+string(rune('0'+maxC))]
	if post.DegradationPct < our.DegradationPct {
		t.Errorf("postcopy degradation (%v%%) below our approach (%v%%)", post.DegradationPct, our.DegradationPct)
	}
	if our.DegradationPct <= 0 {
		t.Error("our approach shows zero degradation; CPU steal and downtime should cost something")
	}
}

func TestFig5SmallShape(t *testing.T) {
	rows := RunFig5(ScaleSmall)
	want := len(cluster.Approaches()) * len(Fig5Migrations(ScaleSmall))
	if len(rows) != want {
		t.Fatalf("rows = %d, want %d", len(rows), want)
	}
	get := func(a cluster.Approach, m int) Fig5Row {
		for _, r := range rows {
			if r.Approach == a && r.Migrations == m {
				return r
			}
		}
		panic("row missing")
	}
	migs := Fig5Migrations(ScaleSmall)
	last := migs[len(migs)-1]
	for _, a := range cluster.Approaches() {
		// Cumulative migration time grows with the number of migrations.
		prev := 0.0
		for _, m := range migs {
			r := get(a, m)
			if r.CumulMigrationTime <= prev {
				t.Errorf("%s m=%d: cumulative time %v did not grow (prev %v)", a, m, r.CumulMigrationTime, prev)
			}
			prev = r.CumulMigrationTime
		}
	}
	// pvfs traffic dwarfs local-storage approaches (Fig. 5b's huge gap).
	if get(cluster.PVFSShared, last).TrafficGB < 2*get(cluster.OurApproach, last).TrafficGB {
		t.Errorf("pvfs traffic should dwarf local approaches")
	}
}

func TestTable1(t *testing.T) {
	rows := RunTable1()
	if len(rows) != 5 {
		t.Fatalf("Table 1 has %d rows, want 5", len(rows))
	}
}

func TestAblateThresholdShape(t *testing.T) {
	rows := AblateThreshold(ScaleSmall)
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	// An infinite threshold never skips hot chunks; threshold 1 skips the
	// most (every rewritten chunk).
	inf := rows[len(rows)-1]
	one := rows[0]
	if inf.SkippedHot != 0 {
		t.Errorf("threshold=inf skipped %d chunks, want 0", inf.SkippedHot)
	}
	if one.SkippedHot < inf.SkippedHot {
		t.Errorf("threshold=1 should skip at least as many hot chunks")
	}
	for _, r := range rows {
		if !ratePositive(r) {
			t.Errorf("%s: bad row %+v", r.Label, r)
		}
	}
}

func TestAblateDedupReducesTraffic(t *testing.T) {
	rows := AblateDedup(ScaleSmall)
	off, on := rows[0], rows[1]
	if on.DedupHits == 0 {
		t.Fatal("dedup produced no hits")
	}
	if on.TrafficMB >= off.TrafficMB {
		t.Errorf("dedup traffic %v MB >= plain %v MB", on.TrafficMB, off.TrafficMB)
	}
}

func TestAblateCompressionReducesTraffic(t *testing.T) {
	rows := AblateCompression(ScaleSmall)
	off, mid := rows[0], rows[1]
	if mid.TrafficMB >= off.TrafficMB {
		t.Errorf("compression traffic %v MB >= plain %v MB", mid.TrafficMB, off.TrafficMB)
	}
}

func TestAblatePullPriorityRuns(t *testing.T) {
	rows := AblatePullPriority(ScaleSmall)
	for _, r := range rows {
		if !ratePositive(r) {
			t.Errorf("%s: bad row %+v", r.Label, r)
		}
	}
}

func TestAblateBasePrefetchRuns(t *testing.T) {
	rows := AblateBasePrefetch(ScaleSmall)
	for _, r := range rows {
		if !ratePositive(r) {
			t.Errorf("%s: bad row %+v", r.Label, r)
		}
	}
}

func TestAblateStripeSizeRuns(t *testing.T) {
	rows := AblateStripeSize(ScaleSmall)
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if !ratePositive(r) {
			t.Errorf("%s: bad row %+v", r.Label, r)
		}
	}
}

func ratePositive(r AblationRow) bool {
	return r.MigrationTime > 0 && r.TrafficMB > 0
}
