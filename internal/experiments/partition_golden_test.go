package experiments

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/hybridmig/hybridmig/internal/scenario"
)

// partitionGoldenScenario is the pinned fencing run: one multiattach VM at
// small scale whose destination node is partitioned off the network
// mid-dual-attach window, long enough for the lease TTL+grace to elapse. The
// reconciler fences the destination, the attempt aborts Fenced, re-acquisition
// fails while the partition lasts, and the retry budget converges after heal.
// Every float of its Result is captured in hex, so any change to the lease
// protocol, the partition blackout, or the fenced accounting shows up as a
// bit-level diff.
func partitionGoldenScenario() *scenario.Scenario {
	set := scenario.NewSetup(scenario.ScaleSmall, 4)
	return scenario.New(
		scenario.WithConfig(set.Cluster),
		scenario.WithSeedCapture(),
		scenario.WithRetry(scenario.RetrySpec{MaxAttempts: 6, Backoff: 1}),
		scenario.WithFaults(scenario.FaultSpec{
			Kind: scenario.FaultPartition, Node: 1, At: set.Warmup + 0.2, Duration: 8,
		}),
	).
		AddVM(scenario.VMSpec{Name: "vm0", Node: 0,
			Approach: "multiattach", Workload: scenario.IOR(&set.IOR)}).
		MigrateAt("vm0", 1, set.Warmup)
}

// TestGoldenDeterminismPartition pins the fencing scenario's hex-float
// capture bit for bit (regenerate with -update after intentional changes).
func TestGoldenDeterminismPartition(t *testing.T) {
	res, err := partitionGoldenScenario().Run()
	if err != nil {
		t.Fatal(err)
	}
	// Assert the scenario actually exercised the fencing path before
	// trusting it as a golden.
	if res.TotalFenced() == 0 {
		t.Fatal("partition golden scenario never fenced an attempt")
	}
	if !res.VM("vm0").Migrated {
		t.Fatal("partition golden scenario did not converge after heal")
	}
	if res.SplitBrainWindows != 0 {
		t.Fatalf("partition golden took %d split-brain windows with fencing enabled",
			res.SplitBrainWindows)
	}
	if !strings.Contains(res.SeedCapture, "fenced=") {
		t.Fatal("capture carries no fenced line; the golden would not pin the fencing outcome")
	}

	path := filepath.Join("testdata", "golden_partition.txt")
	if *updateGolden {
		if err := os.WriteFile(path, []byte(res.SeedCapture), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d bytes)", path, len(res.SeedCapture))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("partition golden missing (run with -update to capture): %v", err)
	}
	if string(want) != res.SeedCapture {
		t.Fatalf("partition capture diverged from golden (bit-for-bit)\n--- want\n%s\n--- got\n%s",
			want, res.SeedCapture)
	}

	// Re-run: the capture must be bit-identical within one build too.
	res2, err := partitionGoldenScenario().Run()
	if err != nil {
		t.Fatal(err)
	}
	if res2.SeedCapture != res.SeedCapture {
		t.Fatal("partition scenario not deterministic across runs")
	}
}
