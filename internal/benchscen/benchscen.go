// Package benchscen holds the benchmark scenario bodies shared by the
// package benchmarks (internal/flow, internal/sim) and cmd/benchreport, so
// `go test -bench` and BENCH.json always measure the same thing.
package benchscen

import (
	"fmt"
	"testing"

	"github.com/hybridmig/hybridmig/internal/flow"
	"github.com/hybridmig/hybridmig/internal/sim"
)

// FlowChurn measures one flow start+cancel against a standing population:
// the allocator's reaction to churn. With disjoint links the churned flow's
// component has one member, so the cost must stay flat as the population
// grows; with one shared link every flow is in the component and linear
// cost is expected and allowed.
func FlowChurn(b *testing.B, flows int, shared bool) {
	e := sim.New()
	n := flow.NewNet(e)
	var churnPath []*flow.Link
	if shared {
		l := flow.NewLink("shared", 1e9)
		for i := 0; i < flows; i++ {
			n.Start(&flow.Flow{Links: []*flow.Link{l}, Size: 1e15})
		}
		churnPath = []*flow.Link{l}
	} else {
		for i := 0; i < flows; i++ {
			l := flow.NewLink(fmt.Sprintf("l%d", i), 1e9)
			n.Start(&flow.Flow{Links: []*flow.Link{l}, Size: 1e15})
		}
		churnPath = []*flow.Link{flow.NewLink("churn", 1e9)}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f := n.AcquireFlow()
		f.Links = churnPath
		f.Size = 1e15
		n.Start(f)
		n.Cancel(f)
		n.ReleaseFlow(f)
	}
	b.StopTimer()
	e.Stop()
}

// AfterFire is the headline event-path scenario: schedule one timer and
// fire it. Must run at 0 allocs/op (pooled event records, value Timer
// handles).
func AfterFire(b *testing.B) {
	e := sim.New()
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.After(1, fn)
		if !e.Step() {
			b.Fatal("no event fired")
		}
	}
}

// ParallelComponents measures a ShardSet drain over `shards` independent
// engines, each working through a self-rescheduling event chain, with three
// coupling barriers along the way — the sharded kernel's per-event overhead
// plus its conservative synchronization cost. shards=1 is the degenerate
// single-component case and isolates the ShardSet bookkeeping itself.
func ParallelComponents(b *testing.B, shards int) {
	const (
		events  = 2000
		horizon = sim.Time(1000)
	)
	couplings := []sim.Coupling{{At: 250}, {At: 500}, {At: 750}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		engines := make([]*sim.Engine, shards)
		for s := range engines {
			e := sim.New()
			remaining := events
			var tick func()
			tick = func() {
				if remaining--; remaining > 0 {
					e.After(0.4, tick)
				}
			}
			e.After(0.4, tick)
			engines[s] = e
		}
		set := sim.NewShardSet(engines, shards)
		if err := set.Drain(couplings, horizon); err != nil {
			b.Fatal(err)
		}
		set.Shutdown()
	}
}

// TimerChurn mixes scheduling, eager cancellation, and firing against a
// standing population of pending timers — the pattern the flow layer's
// completion rescheduling produces.
func TimerChurn(b *testing.B) {
	e := sim.New()
	fn := func() {}
	for i := 0; i < 1000; i++ {
		e.After(1e9+float64(i), fn) // standing population, never fires
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t1 := e.After(1, fn)
		t2 := e.After(2, fn)
		e.After(0.5, fn)
		if !t1.Cancel() || !t2.Cancel() {
			b.Fatal("cancel failed")
		}
		if !e.Step() {
			b.Fatal("no event fired")
		}
	}
}
