package lintutil

import (
	"reflect"
	"testing"
)

func TestParseFormat(t *testing.T) {
	cases := []struct {
		format string
		want   []FormatVerb
	}{
		{"plain", nil},
		{"%d", []FormatVerb{{'d', 0}}},
		{"a=%x b=%v", []FormatVerb{{'x', 0}, {'v', 1}}},
		{"100%% done %s", []FormatVerb{{'s', 0}}},
		{"%.3f", []FormatVerb{{'f', 0}}},
		{"%-10s|%+d", []FormatVerb{{'s', 0}, {'d', 1}}},
		{"%*.*f", []FormatVerb{{'*', 0}, {'*', 1}, {'f', 2}}},
		{"%[2]v %[1]v", []FormatVerb{{'v', 1}, {'v', 0}}},
		{"%w: detail %d", []FormatVerb{{'w', 0}, {'d', 1}}},
	}
	for _, c := range cases {
		got := ParseFormat(c.format)
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("ParseFormat(%q) = %v, want %v", c.format, got, c.want)
		}
	}
}

func TestDeterministic(t *testing.T) {
	cases := []struct {
		path string
		want bool
	}{
		{"github.com/hybridmig/hybridmig/internal/sim", true},
		{"github.com/hybridmig/hybridmig/internal/strategy/adaptive", true},
		{"github.com/hybridmig/hybridmig/internal/fabric", false},
		{"github.com/hybridmig/hybridmig/cmd/migsim", false},
		{"internal/lease", true},
		{"example.com/other/internal/trace", true},
		{"strategy", false},
	}
	for _, c := range cases {
		if got := Deterministic(c.path); got != c.want {
			t.Errorf("Deterministic(%q) = %v, want %v", c.path, got, c.want)
		}
	}
}

func TestParseAnnotation(t *testing.T) {
	if ann, ok := parseAnnotation("//migsim:unordered keys sorted below"); !ok ||
		ann.Directive != "unordered" || ann.Reason != "keys sorted below" {
		t.Errorf("parseAnnotation: got %+v ok=%v", ann, ok)
	}
	if ann, ok := parseAnnotation("//migsim:wallclock"); !ok || ann.Reason != "" {
		t.Errorf("bare annotation: got %+v ok=%v", ann, ok)
	}
	if _, ok := parseAnnotation("// migsim:unordered spaced out"); ok {
		t.Error("a spaced comment is not a directive")
	}
	if _, ok := parseAnnotation("//migsim:"); ok {
		t.Error("empty directive should not parse")
	}
}
