// Package lintutil holds the helpers shared by the migsim analyzers:
// the deterministic-package set, the //migsim: annotation escape hatch,
// and a small fmt verb scanner for format-string checks.
package lintutil

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"

	"github.com/hybridmig/hybridmig/internal/analysis"
)

// detPackages is the set of packages covered by the determinism contract:
// everything that executes under the sim clock or renders results that the
// golden suites pin. A package is "deterministic" when an `internal` path
// segment is immediately followed by one of these names, so subpackages
// (internal/strategy/adaptive) inherit the contract.
var detPackages = map[string]bool{
	"sim":      true,
	"flow":     true,
	"core":     true,
	"cluster":  true,
	"hv":       true,
	"lease":    true,
	"sched":    true,
	"strategy": true,
	"scenario": true,
	"metrics":  true,
	"trace":    true,
}

// Deterministic reports whether the package path is covered by the
// determinism contract (see DESIGN.md §18).
func Deterministic(pkgPath string) bool {
	segs := strings.Split(pkgPath, "/")
	for i, s := range segs {
		if s == "internal" && i+1 < len(segs) && detPackages[segs[i+1]] {
			return true
		}
	}
	return false
}

// IsTestFile reports whether pos sits in a _test.go file.
func IsTestFile(fset *token.FileSet, pos token.Pos) bool {
	return strings.HasSuffix(fset.Position(pos).Filename, "_test.go")
}

// An Annotation is a parsed //migsim:<directive> <reason> comment.
type Annotation struct {
	Directive string // e.g. "unordered"
	Reason    string // justification text after the directive; may be empty
	Pos       token.Pos
}

// Directive looks for a //migsim:<name> annotation that suppresses a
// diagnostic at pos: either trailing on the same line, or a comment whose
// last line sits on the line immediately above. It returns the annotation
// and whether one was found. Callers must still reject an empty Reason —
// the escape hatch requires a justification (Suppressed does both).
func Directive(pass *analysis.Pass, pos token.Pos, name string) (Annotation, bool) {
	file := fileFor(pass, pos)
	if file == nil {
		return Annotation{}, false
	}
	line := pass.Fset.Position(pos).Line
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			ann, ok := parseAnnotation(c.Text)
			if !ok || ann.Directive != name {
				continue
			}
			cline := pass.Fset.Position(c.End()).Line
			if cline == line || cline == line-1 {
				ann.Pos = c.Pos()
				return ann, true
			}
		}
	}
	return Annotation{}, false
}

// Suppressed reports whether a diagnostic at pos is suppressed by a
// well-formed //migsim:<name> <reason> annotation. An annotation without a
// reason does not suppress; instead it draws its own diagnostic, so the
// escape hatch can never silently decay into a bare mute.
func Suppressed(pass *analysis.Pass, pos token.Pos, name string) bool {
	ann, ok := Directive(pass, pos, name)
	if !ok {
		return false
	}
	if ann.Reason == "" {
		pass.Reportf(pos, "//migsim:%s annotation requires a justification: //migsim:%s <reason>", name, name)
		return false
	}
	return true
}

// parseAnnotation parses the raw text of one comment ("//migsim:unordered
// keys are sorted downstream") into an Annotation. Directive comments are
// deliberately matched on the raw token: ast.CommentGroup.Text strips
// //-directives, which is exactly why we cannot use it here.
func parseAnnotation(raw string) (Annotation, bool) {
	rest, ok := strings.CutPrefix(raw, "//migsim:")
	if !ok {
		return Annotation{}, false
	}
	directive, reason, _ := strings.Cut(rest, " ")
	return Annotation{Directive: directive, Reason: strings.TrimSpace(reason)}, directive != ""
}

func fileFor(pass *analysis.Pass, pos token.Pos) *ast.File {
	for _, f := range pass.Files {
		if f.FileStart <= pos && pos < f.FileEnd {
			return f
		}
	}
	return nil
}

// FuncFor returns the innermost function declaration or literal enclosing
// pos, preferring the literal. The bool distinguishes "top-level code"
// (false) from "inside some function" (true).
func FuncFor(file *ast.File, pos token.Pos) (decl *ast.FuncDecl, lit *ast.FuncLit, found bool) {
	ast.Inspect(file, func(n ast.Node) bool {
		if n == nil || pos < n.Pos() || pos >= n.End() {
			return false
		}
		switch fn := n.(type) {
		case *ast.FuncDecl:
			decl, lit, found = fn, nil, true
		case *ast.FuncLit:
			lit, found = fn, true
		}
		return true
	})
	return decl, lit, found
}

// FileOf exposes fileFor for analyzers that need comment access.
func FileOf(pass *analysis.Pass, pos token.Pos) *ast.File { return fileFor(pass, pos) }

// CalleeFunc resolves a call expression to the package-level *types.Func it
// invokes (through a plain identifier or a pkg.Sel selector), or nil.
func CalleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// A FormatVerb is one conversion in a fmt format string, bound to the index
// of the operand it consumes (relative to the first variadic argument).
type FormatVerb struct {
	Verb   rune
	ArgIdx int
}

// ParseFormat scans a fmt format string and returns its verbs in order with
// operand indices. `*` width/precision arguments advance the operand index
// like real fmt does; %% consumes nothing. Explicit argument indexes
// (%[1]d) are followed. The scanner is deliberately tolerant: on malformed
// input it returns what it has seen so far, leaving error reporting to vet's
// stock printf checker.
func ParseFormat(format string) []FormatVerb {
	var verbs []FormatVerb
	arg := 0
	i := 0
	for i < len(format) {
		if format[i] != '%' {
			i++
			continue
		}
		i++ // past '%'
		// flags
		for i < len(format) && strings.ContainsRune("#+- 0", rune(format[i])) {
			i++
		}
		// width
		i, arg = scanNum(format, i, &verbs, arg)
		// precision
		if i < len(format) && format[i] == '.' {
			i++
			i, arg = scanNum(format, i, &verbs, arg)
		}
		// explicit argument index
		if i < len(format) && format[i] == '[' {
			j := strings.IndexByte(format[i:], ']')
			if j < 0 {
				return verbs
			}
			n := 0
			for _, r := range format[i+1 : i+j] {
				if r < '0' || r > '9' {
					n = 0
					break
				}
				n = n*10 + int(r-'0')
			}
			if n > 0 {
				arg = n - 1
			}
			i += j + 1
		}
		if i >= len(format) {
			return verbs
		}
		v := rune(format[i])
		i++
		if v == '%' {
			continue
		}
		verbs = append(verbs, FormatVerb{Verb: v, ArgIdx: arg})
		arg++
	}
	return verbs
}

// scanNum consumes a width/precision: either digits (no operand) or a `*`
// (consumes one operand, recorded as a '*' pseudo-verb so arg indexing
// stays aligned).
func scanNum(format string, i int, verbs *[]FormatVerb, arg int) (int, int) {
	if i < len(format) && format[i] == '*' {
		*verbs = append(*verbs, FormatVerb{Verb: '*', ArgIdx: arg})
		return i + 1, arg + 1
	}
	for i < len(format) && format[i] >= '0' && format[i] <= '9' {
		i++
	}
	return i, arg
}

// FormatArg returns the format string literal of a fmt-style call and the
// index of the first variadic operand, if the callee is one of the known
// fmt formatting functions. ok is false otherwise, or when the format is
// not a compile-time constant.
func FormatArg(info *types.Info, call *ast.CallExpr) (format string, argsFrom int, ok bool) {
	fn := CalleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "fmt" {
		return "", 0, false
	}
	var fmtIdx int
	switch fn.Name() {
	case "Printf", "Sprintf", "Errorf":
		fmtIdx = 0
	case "Fprintf", "Appendf":
		fmtIdx = 1
	default:
		return "", 0, false
	}
	if len(call.Args) <= fmtIdx {
		return "", 0, false
	}
	tv, found := info.Types[call.Args[fmtIdx]]
	if !found || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", 0, false
	}
	return constant.StringVal(tv.Value), fmtIdx + 1, true
}
