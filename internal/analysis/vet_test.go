package analysis_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildTool compiles cmd/migsimvet into t.TempDir and returns its path.
func buildTool(t *testing.T) string {
	t.Helper()
	tool := filepath.Join(t.TempDir(), "migsimvet")
	cmd := exec.Command("go", "build", "-o", tool, "github.com/hybridmig/hybridmig/cmd/migsimvet")
	cmd.Dir = repoRoot(t)
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building migsimvet: %v\n%s", err, out)
	}
	return tool
}

func repoRoot(t *testing.T) string {
	t.Helper()
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	return root
}

// TestRepoWideClean is the acceptance gate: the whole module passes the
// determinism-contract suite through the real `go vet -vettool` protocol.
func TestRepoWideClean(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the tool and vets the whole module")
	}
	tool := buildTool(t)
	cmd := exec.Command("go", "vet", "-vettool="+tool, "./...")
	cmd.Dir = repoRoot(t)
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("migsimvet reported diagnostics on the tree:\n%s", out)
	}
}

// TestSeededViolations proves the vet protocol end to end: a scratch module
// seeded with one violation per analyzer must fail `go vet -vettool` with
// each analyzer's diagnostic on stderr.
func TestSeededViolations(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the tool and vets a scratch module")
	}
	tool := buildTool(t)
	dir := t.TempDir()

	write := func(rel, content string) {
		t.Helper()
		path := filepath.Join(dir, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	write("go.mod", "module example.com/seeded\n\ngo 1.24\n")
	write("internal/sim/bad.go", `package sim

import (
	"errors"
	"fmt"
	"time"
)

var ErrBoom = errors.New("boom")

func Bad(m map[string]int) ([]string, error) {
	var keys []string
	for k := range m { // detmaprange
		keys = append(keys, k)
	}
	_ = time.Now() // simclock
	err := fmt.Errorf("wrapping wrong: %v", ErrBoom) // errsentinel (%v)
	if err == ErrBoom { // errsentinel (==)
		return keys, nil
	}
	return keys, err
}

func capture(v float64) string {
	return fmt.Sprintf("v=%g", v) // goldenfloat
}
`)
	write("internal/strategy/strategy.go", `package strategy

func Register(name string) {}
`)
	write("main.go", `package main

import "example.com/seeded/internal/strategy"

func main() {
	strategy.Register("rogue") // registerinit
}
`)

	cmd := exec.Command("go", "vet", "-vettool="+tool, "./...")
	cmd.Dir = dir
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("go vet passed on the seeded module; want diagnostics\n%s", out)
	}
	for _, wanted := range []string{
		"order-sensitive range over map m",
		"wall-clock time.Now",
		"embeds sentinel ErrBoom with %v",
		"direct == comparison against sentinel ErrBoom",
		"capture path formats float v with %g",
		"strategy.Register called from package example.com/seeded",
	} {
		if !strings.Contains(string(out), wanted) {
			t.Errorf("seeded vet output missing %q\noutput:\n%s", wanted, out)
		}
	}
}
