// Package simclock defines an Analyzer that keeps wall-clock time and
// ambient randomness out of the simulation packages.
//
// Everything under the sim clock must get time from sim.Engine.Now and
// randomness from an injected, seeded *rand.Rand; reaching for time.Now or
// the global math/rand functions makes a run irreproducible and silently
// breaks the golden suites. Command-line drivers (cmd/...) measure real
// wall time legitimately and are out of scope, as are _test.go files.
package simclock

import (
	"go/ast"
	"go/types"

	"github.com/hybridmig/hybridmig/internal/analysis"
	"github.com/hybridmig/hybridmig/internal/analysis/lintutil"
)

const doc = `forbid wall-clock time and global math/rand in simulation code

In the deterministic packages, non-test code must not call time.Now, Since,
Until, Sleep, After, Tick, AfterFunc, NewTimer or NewTicker — simulated time
comes from the sim clock — and must not call package-level math/rand or
math/rand/v2 functions (an unseeded process-global source): randomness is
injected as a seeded *rand.Rand. Constructors (rand.New, rand.NewSource,
rand.NewPCG, rand.NewZipf) are allowed; they are how the seeded source is
built. Escape hatch: //migsim:wallclock <reason>.`

var Analyzer = &analysis.Analyzer{
	Name: "simclock",
	Doc:  doc,
	Run:  run,
}

// forbiddenTime is the wall-clock surface of package time. Pure arithmetic
// (time.Duration, time.Unix, ParseDuration...) stays legal.
var forbiddenTime = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"After":     true,
	"Tick":      true,
	"AfterFunc": true,
	"NewTimer":  true,
	"NewTicker": true,
}

func run(pass *analysis.Pass) (interface{}, error) {
	if !lintutil.Deterministic(pass.Pkg.Path()) {
		return nil, nil
	}
	for _, file := range pass.Files {
		if lintutil.IsTestFile(pass.Fset, file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := lintutil.CalleeFunc(pass.TypesInfo, call)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			switch fn.Pkg().Path() {
			case "time":
				if forbiddenTime[fn.Name()] {
					if !lintutil.Suppressed(pass, call.Pos(), "wallclock") {
						pass.Reportf(call.Pos(), "wall-clock time.%s in deterministic package %s: use the sim clock (or annotate //migsim:wallclock <reason>)",
							fn.Name(), pass.Pkg.Name())
					}
				}
			case "math/rand", "math/rand/v2":
				// Package-level functions draw from the shared global
				// source; only the New* constructors are deterministic
				// building blocks. Methods on *rand.Rand have a receiver
				// and are not package-level, so they never match here.
				if fn.Type().(*types.Signature).Recv() == nil && !isConstructor(fn.Name()) {
					if !lintutil.Suppressed(pass, call.Pos(), "wallclock") {
						pass.Reportf(call.Pos(), "global %s.%s in deterministic package %s: draw from an injected seeded *rand.Rand (or annotate //migsim:wallclock <reason>)",
							fn.Pkg().Name(), fn.Name(), pass.Pkg.Name())
					}
				}
			}
			return true
		})
	}
	return nil, nil
}

func isConstructor(name string) bool {
	return len(name) >= 3 && name[:3] == "New"
}
