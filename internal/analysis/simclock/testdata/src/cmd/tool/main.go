// Package main is a CLI driver: measuring real wall time here is
// legitimate and out of the analyzer's scope.
package main

import (
	"fmt"
	"time"
)

func main() {
	start := time.Now()
	fmt.Println(time.Since(start).Seconds())
}
