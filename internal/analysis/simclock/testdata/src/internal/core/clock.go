package core

import (
	"math/rand"
	"time"
)

// flagged: wall-clock reads and the process-global rand source.
func flagged() time.Duration {
	t0 := time.Now()             // want `wall-clock time.Now in deterministic package core`
	time.Sleep(time.Millisecond) // want `wall-clock time.Sleep`
	_ = rand.Intn(4)             // want `global rand.Intn in deterministic package core`
	_ = rand.Float64()           // want `global rand.Float64`
	return time.Since(t0) // want `wall-clock time.Since`
}

// clean: duration arithmetic, injected sources, and the seeded
// constructors are all deterministic building blocks.
func clean(r *rand.Rand) float64 {
	r2 := rand.New(rand.NewSource(42))
	d := 3 * time.Second
	_ = d.Seconds()
	return r.Float64() + r2.Float64()
}

// suppressed: a justified annotation keeps a deliberate wall-clock read.
func suppressed() time.Time {
	//migsim:wallclock profiling hook, measures host time outside the sim clock
	return time.Now()
}
