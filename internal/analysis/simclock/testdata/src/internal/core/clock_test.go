package core

import (
	"testing"
	"time"
)

// Test files are exempt: benchmarks and timeouts legitimately read the
// wall clock.
func TestWallClockAllowed(t *testing.T) {
	if time.Since(time.Now()) > time.Second {
		t.Fatal("impossible")
	}
}
