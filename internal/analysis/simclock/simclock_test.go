package simclock_test

import (
	"testing"

	"github.com/hybridmig/hybridmig/internal/analysis/atest"
	"github.com/hybridmig/hybridmig/internal/analysis/simclock"
)

func TestSimClock(t *testing.T) {
	atest.Run(t, "testdata", simclock.Analyzer, "internal/core", "cmd/tool")
}
