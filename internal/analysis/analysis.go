package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"reflect"
	"unicode"
)

// An Analyzer describes one analysis pass: a named check with documentation
// and a Run function that inspects a single package and reports diagnostics.
//
// The field set mirrors golang.org/x/tools/go/analysis.Analyzer (minus the
// facts machinery, which no migsim analyzer needs).
type Analyzer struct {
	// Name identifies the analyzer on the command line ("detmaprange").
	// It must be a valid Go identifier.
	Name string

	// Doc is the analyzer's documentation. The first line is the summary
	// printed by `migsimvet -list`.
	Doc string

	// URL points at longer-form documentation, if any.
	URL string

	// Run applies the analyzer to a package. It may call pass.Report (or
	// the Reportf helpers) any number of times, and returns the result
	// made available to dependent analyzers via Pass.ResultOf.
	Run func(*Pass) (interface{}, error)

	// Requires lists analyzers whose results this one consumes. All
	// migsim analyzers are currently leaf passes, but the driver honors
	// the DAG so a shared inspector pass can be added later without
	// touching it.
	Requires []*Analyzer

	// ResultType is the dynamic type of the value returned by Run, when
	// dependents consume it.
	ResultType reflect.Type
}

func (a *Analyzer) String() string { return a.Name }

// A Pass carries one package's syntax and type information to an analyzer's
// Run function, plus the Report sink for its diagnostics.
type Pass struct {
	Analyzer *Analyzer

	Fset         *token.FileSet
	Files        []*ast.File
	OtherFiles   []string
	IgnoredFiles []string
	Pkg          *types.Package
	TypesInfo    *types.Info
	TypesSizes   types.Sizes
	Module       *Module

	// ResultOf maps each analyzer in Analyzer.Requires to its result.
	ResultOf map[*Analyzer]interface{}

	// Report emits one diagnostic. The driver supplies it.
	Report func(Diagnostic)
}

func (p *Pass) String() string { return fmt.Sprintf("%s@%s", p.Analyzer.Name, p.Pkg.Path()) }

// Reportf reports a diagnostic at pos with a Sprintf-formatted message.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Range is the positional extent of a syntax node (satisfied by ast.Node).
type Range interface {
	Pos() token.Pos
	End() token.Pos
}

// ReportRangef reports a diagnostic over rng's full extent.
func (p *Pass) ReportRangef(rng Range, format string, args ...interface{}) {
	p.Report(Diagnostic{Pos: rng.Pos(), End: rng.End(), Message: fmt.Sprintf(format, args...)})
}

// A Diagnostic is one finding: a position plus a message. Category defaults
// to the analyzer name in driver output.
type Diagnostic struct {
	Pos      token.Pos
	End      token.Pos // optional
	Category string    // optional
	Message  string
}

// A Module describes the module containing the analyzed package.
type Module struct {
	Path      string
	Version   string
	GoVersion string
}

// Validate checks that the analyzers are well formed: valid distinct names,
// documented, runnable, and an acyclic Requires graph. The driver calls it
// once at startup so a malformed registration fails loudly rather than
// silently dropping a check.
func Validate(analyzers []*Analyzer) error {
	names := make(map[string]bool)

	const (
		white = iota // unvisited
		grey         // on stack
		black        // done
	)
	color := make(map[*Analyzer]int)

	var visit func(a *Analyzer) error
	visit = func(a *Analyzer) error {
		if a == nil {
			return fmt.Errorf("nil *Analyzer")
		}
		switch color[a] {
		case grey:
			return fmt.Errorf("cycle detected involving analysis %q", a.Name)
		case black:
			return nil
		}
		color[a] = grey
		if !validIdent(a.Name) {
			return fmt.Errorf("invalid analysis name %q", a.Name)
		}
		if a.Doc == "" {
			return fmt.Errorf("analysis %q is undocumented", a.Name)
		}
		if a.Run == nil {
			return fmt.Errorf("analysis %q has no Run function", a.Name)
		}
		for _, req := range a.Requires {
			if err := visit(req); err != nil {
				return err
			}
		}
		color[a] = black
		return nil
	}

	for _, a := range analyzers {
		if err := visit(a); err != nil {
			return err
		}
		if names[a.Name] {
			return fmt.Errorf("duplicate analysis name %q", a.Name)
		}
		names[a.Name] = true
	}
	return nil
}

func validIdent(name string) bool {
	for i, r := range name {
		if !(r == '_' || unicode.IsLetter(r) || i > 0 && unicode.IsDigit(r)) {
			return false
		}
	}
	return name != ""
}
