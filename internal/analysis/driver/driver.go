// Package driver implements the `go vet -vettool` command-line protocol
// for the migsim analyzer suite, plus the human-facing -list/help modes.
//
// The protocol (identical to x/tools' unitchecker, which go vet was built
// around) has three entry points:
//
//	-V=full    print a fingerprint of the executable for build caching
//	-flags     describe the tool's flags as JSON, so go vet can forward
//	           user-specified ones
//	unit.cfg   analyze the single compilation unit described by the JSON
//	           config file, written by the go command per package
//
// For each unit, the go command hands us file lists, the import map, and
// export-data paths for every dependency; we parse, typecheck against that
// export data, run the analyzers, print diagnostics as "pos: message" lines
// on stderr, and exit nonzero if anything was reported. An (empty) facts
// file is written to cfg.VetxOutput so the build system can cache and
// thread per-package facts exactly as it does for stock vet — the migsim
// analyzers are factless, so the file only keeps the protocol honest.
package driver

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"log"
	"os"
	"sort"
	"strings"

	"github.com/hybridmig/hybridmig/internal/analysis"
)

// A Config mirrors the JSON schema of the go command's vet config files.
type Config struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ModulePath                string
	ModuleVersion             string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// Main is the entry point of cmd/migsimvet. It never returns.
func Main(analyzers ...*analysis.Analyzer) {
	progname := "migsimvet"
	log.SetFlags(0)
	log.SetPrefix(progname + ": ")

	if err := analysis.Validate(analyzers); err != nil {
		log.Fatal(err)
	}

	printflags := flag.Bool("flags", false, "print flags as JSON and exit (used by go vet)")
	list := flag.Bool("list", false, "list the analyzers with their one-line docs and exit")
	printPath := flag.Bool("print-path", false, "print this executable's path and exit")
	jsonOut := flag.Bool("json", false, "emit diagnostics as JSON instead of text")
	context := flag.Int("c", -1, "display offending line with this many lines of context")
	flag.Var(versionFlag{}, "V", "print version and exit (used by go vet; only -V=full is supported)")

	enabled := make(map[*analysis.Analyzer]*triState)
	for _, a := range analyzers {
		ts := new(triState)
		flag.Var(ts, a.Name, "enable only the named analyses")
		enabled[a] = ts
	}

	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, `%[1]s enforces the simulator's determinism contract (DESIGN.md §18).

Usage:
	%[1]s -list               # what the suite checks
	%[1]s unit.cfg            # analyze one unit (invoked by go vet)
	%[1]s help [name]         # full doc for one analyzer

Run it over the tree with:
	go build -o bin/%[1]s ./cmd/%[1]s
	go vet -vettool=$(pwd)/bin/%[1]s ./...
`, progname)
		os.Exit(1)
	}
	flag.Parse()

	if *printflags {
		printFlags()
		os.Exit(0)
	}
	if *printPath {
		exe, err := os.Executable()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(exe)
		os.Exit(0)
	}
	if *list {
		printList(analyzers)
		os.Exit(0)
	}

	// Honor -<name> selections the way vet does: any explicit true runs
	// only those; otherwise explicit falses subtract.
	var hasTrue, hasFalse bool
	for _, ts := range enabled {
		hasTrue = hasTrue || *ts == setTrue
		hasFalse = hasFalse || *ts == setFalse
	}
	if hasTrue || hasFalse {
		var keep []*analysis.Analyzer
		for _, a := range analyzers {
			if hasTrue && *enabled[a] == setTrue || !hasTrue && *enabled[a] != setFalse {
				keep = append(keep, a)
			}
		}
		analyzers = keep
	}

	args := flag.Args()
	if len(args) == 0 {
		flag.Usage()
	}
	if args[0] == "help" {
		help(analyzers, args[1:])
		os.Exit(0)
	}
	if len(args) != 1 || !strings.HasSuffix(args[0], ".cfg") {
		log.Fatalf(`invoked without a unit config; run via "go vet -vettool" (or see -list / help)`)
	}
	run(args[0], analyzers, *jsonOut, *context)
}

// run analyzes one unit config and exits with the appropriate status.
func run(configFile string, analyzers []*analysis.Analyzer, jsonOut bool, context int) {
	cfg, err := readConfig(configFile)
	if err != nil {
		log.Fatal(err)
	}
	fset := token.NewFileSet()
	diags, err := analyze(fset, cfg, analyzers)
	if err != nil {
		log.Fatal(err)
	}
	if cfg.VetxOnly {
		os.Exit(0)
	}
	if jsonOut {
		printJSON(os.Stdout, fset, cfg.ID, diags)
		os.Exit(0)
	}
	exit := 0
	for _, ad := range diags {
		for _, d := range ad.diagnostics {
			printPlain(os.Stderr, fset, context, d)
			exit = 1
		}
	}
	os.Exit(exit)
}

type analyzerDiags struct {
	name        string
	diagnostics []analysis.Diagnostic
}

// analyze loads and typechecks the unit, runs the analyzer DAG, writes the
// (empty) facts output, and returns per-analyzer diagnostics.
func analyze(fset *token.FileSet, cfg *Config, analyzers []*analysis.Analyzer) ([]analyzerDiags, error) {
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				os.Exit(0) // the compiler will report it better
			}
			return nil, err
		}
		files = append(files, f)
	}

	compilerImporter := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no package file for %q", path)
		}
		return os.Open(file)
	})
	tc := &types.Config{
		Importer: importerFunc(func(importPath string) (*types.Package, error) {
			path, ok := cfg.ImportMap[importPath]
			if !ok {
				return nil, fmt.Errorf("can't resolve import %q", importPath)
			}
			return compilerImporter.Import(path)
		}),
		Sizes:     types.SizesFor("gc", build.Default.GOARCH),
		GoVersion: cfg.GoVersion,
	}
	info := &types.Info{
		Types:        make(map[ast.Expr]types.TypeAndValue),
		Defs:         make(map[*ast.Ident]types.Object),
		Uses:         make(map[*ast.Ident]types.Object),
		Implicits:    make(map[ast.Node]types.Object),
		Instances:    make(map[*ast.Ident]types.Instance),
		Scopes:       make(map[ast.Node]*types.Scope),
		Selections:   make(map[*ast.SelectorExpr]*types.Selection),
		FileVersions: make(map[*ast.File]string),
	}
	pkg, err := tc.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			os.Exit(0)
		}
		return nil, err
	}

	module := &analysis.Module{Path: cfg.ModulePath, Version: cfg.ModuleVersion, GoVersion: cfg.GoVersion}
	results := RunAnalyzers(analyzers, &analysis.Pass{
		Fset:         fset,
		Files:        files,
		OtherFiles:   cfg.NonGoFiles,
		IgnoredFiles: cfg.IgnoredFiles,
		Pkg:          pkg,
		TypesInfo:    info,
		TypesSizes:   tc.Sizes,
		Module:       module,
	})

	// Keep the facts leg of the protocol honest even though no migsim
	// analyzer produces facts: go vet caches this file and feeds it to
	// dependent units via PackageVetx.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			return nil, fmt.Errorf("failed to export facts: %v", err)
		}
	}

	var out []analyzerDiags
	var errs []string
	for _, res := range results {
		if res.Err != nil {
			errs = append(errs, fmt.Sprintf("%s: %v", res.Analyzer.Name, res.Err))
			continue
		}
		out = append(out, analyzerDiags{res.Analyzer.Name, res.Diagnostics})
	}
	if errs != nil {
		return nil, fmt.Errorf("%s", strings.Join(errs, "; "))
	}
	return out, nil
}

// A Result pairs an analyzer with what it reported on one package.
type Result struct {
	Analyzer    *analysis.Analyzer
	Diagnostics []analysis.Diagnostic
	Err         error
}

// RunAnalyzers executes the analyzers (and their Requires prerequisites,
// memoized) against the package captured in proto, which supplies every
// Pass field except Analyzer, ResultOf, and Report. It is shared by the
// vet path and the in-process test harness so both exercise the same
// scheduling.
func RunAnalyzers(analyzers []*analysis.Analyzer, proto *analysis.Pass) []Result {
	type action struct {
		result interface{}
		err    error
		diags  []analysis.Diagnostic
		done   bool
	}
	actions := make(map[*analysis.Analyzer]*action)

	var exec func(a *analysis.Analyzer) *action
	exec = func(a *analysis.Analyzer) *action {
		act, ok := actions[a]
		if !ok {
			act = new(action)
			actions[a] = act
		}
		if act.done {
			return act
		}
		act.done = true

		inputs := make(map[*analysis.Analyzer]interface{})
		var failed []string
		for _, req := range a.Requires {
			reqact := exec(req)
			if reqact.err != nil {
				failed = append(failed, req.Name)
				continue
			}
			inputs[req] = reqact.result
		}
		if failed != nil {
			sort.Strings(failed)
			act.err = fmt.Errorf("failed prerequisites: %s", strings.Join(failed, ", "))
			return act
		}

		pass := *proto
		pass.Analyzer = a
		pass.ResultOf = inputs
		pass.Report = func(d analysis.Diagnostic) {
			if d.Category == "" {
				d.Category = a.Name
			}
			act.diags = append(act.diags, d)
		}
		act.result, act.err = a.Run(&pass)
		return act
	}

	results := make([]Result, len(analyzers))
	for i, a := range analyzers {
		act := exec(a)
		results[i] = Result{a, act.diags, act.err}
	}
	return results
}

func readConfig(filename string) (*Config, error) {
	data, err := os.ReadFile(filename)
	if err != nil {
		return nil, err
	}
	cfg := new(Config)
	if err := json.Unmarshal(data, cfg); err != nil {
		return nil, fmt.Errorf("cannot decode JSON config file %s: %v", filename, err)
	}
	if len(cfg.GoFiles) == 0 {
		return nil, fmt.Errorf("package has no files: %s", cfg.ImportPath)
	}
	return cfg, nil
}

// printPlain renders one diagnostic as "file:line:col: message", optionally
// followed by the offending source lines.
func printPlain(w io.Writer, fset *token.FileSet, contextLines int, d analysis.Diagnostic) {
	posn := fset.Position(d.Pos)
	fmt.Fprintf(w, "%s: %s\n", posn, d.Message)
	if contextLines >= 0 {
		end := fset.Position(d.End)
		if !end.IsValid() {
			end = posn
		}
		data, _ := os.ReadFile(posn.Filename)
		lines := strings.Split(string(data), "\n")
		for i := posn.Line - contextLines; i <= end.Line+contextLines; i++ {
			if 1 <= i && i <= len(lines) {
				fmt.Fprintf(w, "%d\t%s\n", i, lines[i-1])
			}
		}
	}
}

// printJSON renders diagnostics in the same package-id → analyzer → list
// shape that go vet -json consumers expect from vet tools.
func printJSON(w io.Writer, fset *token.FileSet, id string, diags []analyzerDiags) {
	type jsonDiag struct {
		Category string `json:"category,omitempty"`
		Posn     string `json:"posn"`
		Message  string `json:"message"`
	}
	tree := map[string]map[string][]jsonDiag{}
	for _, ad := range diags {
		if len(ad.diagnostics) == 0 {
			continue
		}
		inner, ok := tree[id]
		if !ok {
			inner = map[string][]jsonDiag{}
			tree[id] = inner
		}
		for _, d := range ad.diagnostics {
			inner[ad.name] = append(inner[ad.name], jsonDiag{
				Category: d.Category,
				Posn:     fset.Position(d.Pos).String(),
				Message:  d.Message,
			})
		}
	}
	data, err := json.MarshalIndent(tree, "", "\t")
	if err != nil {
		log.Fatal(err)
	}
	w.Write(data)
	fmt.Fprintln(w)
}

// printFlags emits the JSON flag description go vet reads to learn which
// flags it may forward to the tool.
func printFlags() {
	type jsonFlag struct {
		Name  string
		Bool  bool
		Usage string
	}
	var flags []jsonFlag
	flag.VisitAll(func(f *flag.Flag) {
		b, ok := f.Value.(interface{ IsBoolFlag() bool })
		flags = append(flags, jsonFlag{f.Name, ok && b.IsBoolFlag(), f.Usage})
	})
	data, err := json.MarshalIndent(flags, "", "\t")
	if err != nil {
		log.Fatal(err)
	}
	os.Stdout.Write(data)
}

// printList mirrors `migsim -list`: one aligned "name  summary" line per
// analyzer, in suite order.
func printList(analyzers []*analysis.Analyzer) {
	for _, a := range analyzers {
		fmt.Printf("%-14s %s\n", a.Name, firstLine(a.Doc))
	}
}

func help(analyzers []*analysis.Analyzer, names []string) {
	if len(names) == 0 {
		printList(analyzers)
		return
	}
	for _, name := range names {
		found := false
		for _, a := range analyzers {
			if a.Name == name {
				fmt.Printf("%s: %s\n", a.Name, a.Doc)
				found = true
			}
		}
		if !found {
			log.Fatalf("no such analyzer %q (see -list)", name)
		}
	}
}

func firstLine(doc string) string {
	if i := strings.IndexByte(doc, '\n'); i >= 0 {
		return doc[:i]
	}
	return doc
}

// versionFlag implements the -V=full fingerprint protocol go vet uses for
// build caching: any output that changes when the binary changes will do,
// so we hash the executable like stock vet tools.
type versionFlag struct{}

func (versionFlag) IsBoolFlag() bool { return true }
func (versionFlag) Get() interface{} { return nil }
func (versionFlag) String() string   { return "" }
func (versionFlag) Set(s string) error {
	if s != "full" {
		log.Fatalf("unsupported flag value: -V=%s (use -V=full)", s)
	}
	exe, err := os.Executable()
	if err != nil {
		log.Fatal(err)
	}
	f, err := os.Open(exe)
	if err != nil {
		log.Fatal(err)
	}
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		log.Fatal(err)
	}
	f.Close()
	fmt.Printf("%s version devel comments-go-here buildID=%02x\n", exe, string(h.Sum(nil)))
	os.Exit(0)
	return nil
}

// triState distinguishes unset from explicit true/false for the per-
// analyzer enable flags, matching vet's selection semantics.
type triState int

const (
	unset triState = iota
	setTrue
	setFalse
)

func (ts *triState) IsBoolFlag() bool { return true }
func (ts *triState) Get() interface{} { return *ts == setTrue }
func (ts triState) String() string {
	switch ts {
	case setTrue:
		return "true"
	case setFalse:
		return "false"
	}
	return "unset"
}
func (ts *triState) Set(value string) error {
	switch strings.ToLower(value) {
	case "true", "1", "t":
		*ts = setTrue
	case "false", "0", "f":
		*ts = setFalse
	default:
		return fmt.Errorf("invalid boolean %q", value)
	}
	return nil
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
