// Package goldenfloat defines an Analyzer that enforces the hex-float
// contract in golden- and seed-capture code.
//
// The golden suites diff capture strings byte-for-byte, so every measured
// float64 must be rendered with %x (full mantissa, no decimal rounding).
// A %v/%f/%g/%e slipped into a capture line truncates the mantissa and
// turns a real determinism regression into an invisible one. The analyzer
// scopes itself to capture code paths — functions whose name contains
// "capture" or "golden" (case-insensitive), or files named golden*.go —
// inside the deterministic packages.
package goldenfloat

import (
	"go/ast"
	"go/types"
	"path/filepath"
	"strings"

	"github.com/hybridmig/hybridmig/internal/analysis"
	"github.com/hybridmig/hybridmig/internal/analysis/lintutil"
)

const doc = `require %x for floats in golden- and seed-capture code

Within deterministic packages, any fmt formatting call in a capture code
path (function name containing "capture"/"golden", or a golden*.go file)
that renders a float32/float64 operand with a decimal verb (%v %f %g %e and
their upper-case forms) is reported: the hex-float contract requires %x so
goldens pin the full mantissa. Escape hatch: //migsim:decimal <reason>.`

var Analyzer = &analysis.Analyzer{
	Name: "goldenfloat",
	Doc:  doc,
	Run:  run,
}

var decimalVerbs = map[rune]bool{
	'v': true, 'f': true, 'F': true, 'g': true, 'G': true, 'e': true, 'E': true,
}

func run(pass *analysis.Pass) (interface{}, error) {
	if !lintutil.Deterministic(pass.Pkg.Path()) {
		return nil, nil
	}
	for _, file := range pass.Files {
		goldenFile := strings.HasPrefix(filepath.Base(pass.Fset.Position(file.Pos()).Filename), "golden")
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			format, argsFrom, ok := lintutil.FormatArg(pass.TypesInfo, call)
			if !ok {
				return true
			}
			if !goldenFile && !inCaptureFunc(pass, file, call) {
				return true
			}
			for _, fv := range lintutil.ParseFormat(format) {
				if !decimalVerbs[fv.Verb] {
					continue
				}
				argIdx := argsFrom + fv.ArgIdx
				if argIdx >= len(call.Args) {
					continue
				}
				arg := call.Args[argIdx]
				if !floatTyped(pass, arg) {
					continue
				}
				if lintutil.Suppressed(pass, call.Pos(), "decimal") {
					continue
				}
				pass.Reportf(arg.Pos(), "capture path formats float %s with %%%c: the golden contract requires %%x (full mantissa), or annotate //migsim:decimal <reason>",
					types.ExprString(arg), fv.Verb)
			}
			return true
		})
	}
	return nil, nil
}

// inCaptureFunc reports whether the call sits inside a function whose name
// marks it as part of the capture path. The naming convention is itself
// part of the contract (DESIGN.md §18): capture helpers are named so the
// analyzer can find them.
func inCaptureFunc(pass *analysis.Pass, file *ast.File, n ast.Node) bool {
	decl, _, found := lintutil.FuncFor(file, n.Pos())
	if !found || decl == nil {
		return false
	}
	name := strings.ToLower(decl.Name.Name)
	return strings.Contains(name, "capture") || strings.Contains(name, "golden")
}

func floatTyped(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}
