// Package main is outside the deterministic set: even a function named
// capture may print decimal floats here.
package main

import "fmt"

func capture(v float64) string { return fmt.Sprintf("%v", v) }

func main() { fmt.Println(capture(1.5)) }
