package metrics

import (
	"fmt"
	"strings"
)

func mean(vals []float64) float64 {
	s := 0.0
	for _, v := range vals {
		s += v
	}
	return s / float64(len(vals))
}

// capture is a capture-path function by naming convention: floats must be
// rendered with %x.
func capture(vals []float64, n int, name string) string {
	var b strings.Builder
	for _, v := range vals {
		fmt.Fprintf(&b, "v=%v\n", v) // want `capture path formats float v with %v`
	}
	fmt.Fprintf(&b, "first=%g\n", vals[0]) // want `formats float vals\[0\] with %g`
	fmt.Fprintf(&b, "n=%d name=%s\n", n, name)
	fmt.Fprintf(&b, "hex=%x\n", vals[0])
	//migsim:decimal human-facing summary line, never diffed by a golden
	fmt.Fprintf(&b, "mean=%.3f\n", mean(vals))
	return b.String()
}

// report is not a capture path: decimal rendering for humans is fine here.
func report(v float64) string {
	return fmt.Sprintf("%.1f%%", v*100)
}
