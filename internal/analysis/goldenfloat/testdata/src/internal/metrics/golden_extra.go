package metrics

import "fmt"

// A golden*.go file is a capture path wholesale, whatever its functions
// are called.
func renderRow(mig float64, vms int) string {
	return fmt.Sprintf("vms=%d mig=%e", vms, mig) // want `formats float mig with %e`
}
