package goldenfloat_test

import (
	"testing"

	"github.com/hybridmig/hybridmig/internal/analysis/atest"
	"github.com/hybridmig/hybridmig/internal/analysis/goldenfloat"
)

func TestGoldenFloat(t *testing.T) {
	atest.Run(t, "testdata", goldenfloat.Analyzer, "internal/metrics", "cmd/tool")
}
