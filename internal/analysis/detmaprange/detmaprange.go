// Package detmaprange defines an Analyzer that flags order-sensitive
// iteration over maps in the deterministic simulation packages.
//
// Go randomizes map iteration order on purpose; any map range whose body
// has order-dependent effects (appending to a slice, emitting trace events,
// floating-point accumulation, last-write-wins assignment) is a latent
// golden-suite break. The analyzer allows loops it can prove are
// order-insensitive and otherwise demands either sorted keys or a justified
// //migsim:unordered <reason> annotation.
package detmaprange

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"github.com/hybridmig/hybridmig/internal/analysis"
	"github.com/hybridmig/hybridmig/internal/analysis/lintutil"
)

const doc = `flag order-sensitive map iteration in deterministic packages

Iterating a map in internal/{sim,flow,core,cluster,hv,lease,sched,strategy,
scenario,metrics,trace} is reported unless the loop body is provably
order-insensitive: integer/bitwise accumulation into scalars, boolean or
constant flag setting, set membership (map insert/delete), pure
conditionals around those, and the collect-then-sort idiom (append keys
into one slice, sort it in the very next statement). Anything else — appends, calls, trace emission,
floating-point accumulation (bitwise order-dependent!), plain last-write-wins
assignment — needs sorted keys or a trailing/preceding
//migsim:unordered <reason> annotation.`

var Analyzer = &analysis.Analyzer{
	Name: "detmaprange",
	Doc:  doc,
	Run:  run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	if !lintutil.Deterministic(pass.Pkg.Path()) {
		return nil, nil
	}
	for _, file := range pass.Files {
		if lintutil.IsTestFile(pass.Fset, file.Pos()) {
			continue
		}
		// Map each range statement to its next sibling, so the
		// collect-then-sort idiom can look one statement ahead.
		next := make(map[*ast.RangeStmt]ast.Stmt)
		ast.Inspect(file, func(n ast.Node) bool {
			var list []ast.Stmt
			switch n := n.(type) {
			case *ast.BlockStmt:
				list = n.List
			case *ast.CaseClause:
				list = n.Body
			case *ast.CommClause:
				list = n.Body
			default:
				return true
			}
			for i, s := range list {
				if rng, ok := s.(*ast.RangeStmt); ok && i+1 < len(list) {
					next[rng] = list[i+1]
				}
			}
			return true
		})
		ast.Inspect(file, func(n ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv, ok := pass.TypesInfo.Types[rng.X]
			if !ok {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return true
			}
			if orderInsensitive(pass, rng.Body) {
				return true
			}
			if collectThenSort(pass, rng, next[rng]) {
				return true
			}
			if lintutil.Suppressed(pass, rng.Pos(), "unordered") {
				return true
			}
			pass.Reportf(rng.Pos(), "order-sensitive range over map %s in deterministic package %s: iterate sorted keys, or annotate //migsim:unordered <reason>",
				types.ExprString(rng.X), pass.Pkg.Name())
			return true
		})
	}
	return nil, nil
}

// collectThenSort recognizes the canonical sorted-keys idiom: a loop whose
// only order-sensitive effect is appending into one slice, immediately
// followed by a statement that sorts that slice. Whatever order the map
// yields, the post-sort slice is identical.
//
//	for k := range m { keys = append(keys, k) }
//	slices.Sort(keys)
func collectThenSort(pass *analysis.Pass, rng *ast.RangeStmt, after ast.Stmt) bool {
	if after == nil {
		return false
	}
	var target ast.Expr // the single slice collected into
	for _, s := range rng.Body.List {
		if allowedStmt(pass, s) {
			continue
		}
		as, ok := s.(*ast.AssignStmt)
		if !ok || as.Tok != token.ASSIGN || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return false
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok || !isBuiltin(pass, call, "append") || len(call.Args) == 0 {
			return false
		}
		lhs, app := types.ExprString(as.Lhs[0]), types.ExprString(call.Args[0])
		if lhs != app || target != nil && types.ExprString(target) != lhs {
			return false
		}
		for _, arg := range call.Args[1:] {
			if containsCall(arg) {
				return false
			}
		}
		target = as.Lhs[0]
	}
	return target != nil && sortsExpr(pass, after, types.ExprString(target))
}

// sortsExpr reports whether s is a statement sorting the named expression:
// slices.Sort*/sort.(Strings|Ints|Float64s|Slice|SliceStable|Sort)(target, ...).
func sortsExpr(pass *analysis.Pass, s ast.Stmt, target string) bool {
	es, ok := s.(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok || len(call.Args) == 0 {
		return false
	}
	fn := lintutil.CalleeFunc(pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	switch fn.Pkg().Path() {
	case "slices":
		if !strings.HasPrefix(fn.Name(), "Sort") {
			return false
		}
	case "sort":
		switch fn.Name() {
		case "Strings", "Ints", "Float64s", "Slice", "SliceStable", "Sort":
		default:
			return false
		}
	default:
		return false
	}
	return types.ExprString(call.Args[0]) == target
}

// orderInsensitive conservatively decides whether executing the loop body
// once per map entry yields the same final state for every iteration order.
func orderInsensitive(pass *analysis.Pass, body *ast.BlockStmt) bool {
	for _, s := range body.List {
		if !allowedStmt(pass, s) {
			return false
		}
	}
	return true
}

func allowedStmt(pass *analysis.Pass, s ast.Stmt) bool {
	switch s := s.(type) {
	case *ast.IncDecStmt:
		// count++ / count-- commute across iterations.
		return simpleLvalue(s.X)

	case *ast.AssignStmt:
		return allowedAssign(pass, s)

	case *ast.IfStmt:
		// Set-membership and guarded accumulation: the condition must be
		// pure (no calls — a call could observe iteration order) and both
		// branches must themselves be order-insensitive. Note min/max
		// tracking (`if v > best { best = v }`) is NOT admitted: the plain
		// assignment is rejected below, because with `>=` ties make the
		// winner order-dependent and the analyzer cannot see tie-ness.
		if s.Init != nil && !allowedStmt(pass, s.Init) {
			return false
		}
		if containsCall(s.Cond) {
			return false
		}
		if !orderInsensitive(pass, s.Body) {
			return false
		}
		if s.Else != nil {
			switch e := s.Else.(type) {
			case *ast.BlockStmt:
				return orderInsensitive(pass, e)
			case *ast.IfStmt:
				return allowedStmt(pass, e)
			default:
				return false
			}
		}
		return true

	case *ast.ExprStmt:
		// delete(m, k) is the only call with an order-insensitive effect.
		if call, ok := s.X.(*ast.CallExpr); ok {
			return isBuiltin(pass, call, "delete")
		}
		return false

	case *ast.BranchStmt:
		// continue/break only shorten iteration; with an order-insensitive
		// body the final state is unchanged. goto/labels are rejected.
		return s.Label == nil && (s.Tok == token.CONTINUE || s.Tok == token.BREAK)

	case *ast.BlockStmt:
		return orderInsensitive(pass, s)

	case *ast.DeclStmt:
		// A loop-local declaration is harmless by itself; its uses are
		// judged where they occur.
		return true

	default:
		return false
	}
}

// allowedAssign admits the assignment forms whose final state cannot depend
// on iteration order.
func allowedAssign(pass *analysis.Pass, s *ast.AssignStmt) bool {
	switch s.Tok {
	case token.DEFINE:
		// Loop-local temp; its consumers are checked separately.
		return true

	case token.ADD_ASSIGN, token.SUB_ASSIGN:
		// sum += v commutes for integers. For floats it is bitwise
		// order-dependent (rounding), and for strings it is concatenation
		// — both rejected. (token.MUL_ASSIGN is rejected for the same
		// float reason; integer products are rare enough not to carve out.)
		for _, lhs := range s.Lhs {
			if !simpleLvalue(lhs) || !integerTyped(pass, lhs) {
				return false
			}
		}
		return pureExprs(s.Rhs)

	case token.OR_ASSIGN, token.AND_ASSIGN, token.XOR_ASSIGN:
		// Bitwise accumulation commutes on integers. XOR also commutes.
		for _, lhs := range s.Lhs {
			if !simpleLvalue(lhs) || !integerTyped(pass, lhs) {
				return false
			}
		}
		return pureExprs(s.Rhs)

	case token.ASSIGN:
		for i, lhs := range s.Lhs {
			var rhs ast.Expr
			if len(s.Rhs) == len(s.Lhs) {
				rhs = s.Rhs[i]
			}
			if !allowedPlainAssign(pass, lhs, rhs) {
				return false
			}
		}
		return pureExprs(s.Rhs)

	default:
		return false
	}
}

// allowedPlainAssign admits `=` targets that commute: writes into another
// map (each key written once per distinct key — collisions resolve to the
// same value expression regardless of order only when the key is the range
// key, but we accept any map write: duplicate-key writes with different
// values would already be a bug under sorted iteration), the blank
// identifier, and constant flag sets (`found = true`), which store the same
// value whenever they fire.
func allowedPlainAssign(pass *analysis.Pass, lhs, rhs ast.Expr) bool {
	if id, ok := lhs.(*ast.Ident); ok && id.Name == "_" {
		return true
	}
	if idx, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok {
		if tv, ok := pass.TypesInfo.Types[idx.X]; ok {
			if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
				return true
			}
		}
	}
	if rhs != nil && simpleLvalue(lhs) {
		if tv, ok := pass.TypesInfo.Types[rhs]; ok && tv.Value != nil {
			return true // constant store: same value every iteration
		}
	}
	return false
}

// simpleLvalue limits accumulation targets to names and field selectors —
// targets whose identity does not depend on the loop variables.
func simpleLvalue(e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return true
	case *ast.SelectorExpr:
		return simpleLvalue(e.X)
	default:
		return false
	}
}

func integerTyped(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

// pureExprs rejects right-hand sides containing calls (other than len/cap,
// which are pure) — a call could observe or leak iteration order.
func pureExprs(exprs []ast.Expr) bool {
	for _, e := range exprs {
		if containsCall(e) {
			return false
		}
	}
	return true
}

func isBuiltin(pass *analysis.Pass, call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, ok = pass.TypesInfo.Uses[id].(*types.Builtin)
	return ok
}

func containsCall(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && (id.Name == "len" || id.Name == "cap") {
				return true
			}
			found = true
			return false
		}
		return true
	})
	return found
}
