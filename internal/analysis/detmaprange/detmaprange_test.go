package detmaprange_test

import (
	"testing"

	"github.com/hybridmig/hybridmig/internal/analysis/atest"
	"github.com/hybridmig/hybridmig/internal/analysis/detmaprange"
)

func TestDetMapRange(t *testing.T) {
	atest.Run(t, "testdata", detmaprange.Analyzer, "internal/sim", "cmd/tool")
}
