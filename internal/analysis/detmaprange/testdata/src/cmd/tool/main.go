// Package main is outside the deterministic set: map iteration here is
// not the golden suites' problem, so nothing is reported.
package main

func main() {
	m := map[string]int{"a": 1}
	var out []string
	for k := range m {
		out = append(out, k)
	}
	_ = out
}
