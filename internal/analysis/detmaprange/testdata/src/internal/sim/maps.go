package sim

import "slices"

func sink(string) {}

// flagged: each of these loops has an order-dependent effect.
func flagged(m map[string]int, weights map[string]float64) []string {
	var out []string
	for k := range m { // want `order-sensitive range over map m`
		out = append(out, k)
	}
	for k := range m { // want `order-sensitive range over map m`
		sink(k) // a call can observe (or emit a trace in) iteration order
	}
	var sum float64
	for _, w := range weights { // want `order-sensitive range over map weights`
		sum += w // float addition is bitwise order-dependent
	}
	var last string
	for k := range m { // want `order-sensitive range over map m`
		last = k // last-write-wins
	}
	_ = sum
	_ = last
	return out
}

// clean: integer accumulation, set membership, map-to-map projection,
// delete, and pure guarded flag sets commute across iteration orders.
func clean(m map[string]int, target string) (int, bool) {
	total := 0
	n := 0
	found := false
	seen := map[string]bool{}
	for k, v := range m {
		total += v
		n++
		seen[k] = true
		if k == target {
			found = true
			break
		}
	}
	for k := range m {
		delete(seen, k)
	}
	return total + n, found
}

// collectThenSort: appending into one slice and sorting it in the very
// next statement normalizes away the iteration order.
func collectThenSort(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	slices.Sort(keys)
	return keys
}

// collectNoSort: the same append without the adjacent sort stays flagged
// (the slice escapes in map order).
func collectNoSort(m map[string]int) []string {
	var keys []string
	for k := range m { // want `order-sensitive range over map m`
		keys = append(keys, k)
	}
	return keys
}

// suppressed: the annotation with a justification silences the report.
func suppressed(m map[string]int) {
	//migsim:unordered set union reduction, order-free by construction
	for k := range m {
		sink(k)
	}
}

// bareAnnotation: an annotation without a reason does not suppress, and
// draws its own diagnostic.
func bareAnnotation(m map[string]int) {
	//migsim:unordered
	for k := range m { // want `annotation requires a justification` `order-sensitive range over map m`
		sink(k)
	}
}
