// Package registerinit defines an Analyzer that pins strategy registration
// to init() functions in packages under internal/strategy.
//
// The registry's completeness and its deterministic Names() order both rest
// on every Register call running during package initialization of the
// strategy tree: a Register from main, from a scenario, or from some other
// package makes the visible strategy set depend on call order and import
// graphs at run time. _test.go files are exempt — tests legitimately
// register throwaway fakes.
package registerinit

import (
	"go/ast"
	"strings"

	"github.com/hybridmig/hybridmig/internal/analysis"
	"github.com/hybridmig/hybridmig/internal/analysis/lintutil"
)

const doc = `restrict strategy.Register to init() under internal/strategy

Calls to the strategy registry's Register function (and any future
*.Register of a package named registry) must occur lexically inside an
init() function of a package under internal/strategy, so the registry is
sealed before main starts and Names() order is import-order deterministic.
Tests are exempt. Escape hatch: //migsim:register <reason>.`

var Analyzer = &analysis.Analyzer{
	Name: "registerinit",
	Doc:  doc,
	Run:  run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	for _, file := range pass.Files {
		if lintutil.IsTestFile(pass.Fset, file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := lintutil.CalleeFunc(pass.TypesInfo, call)
			if fn == nil || fn.Name() != "Register" || fn.Pkg() == nil {
				return true
			}
			if !registryPackage(fn.Pkg().Path()) {
				return true
			}
			inStrategy := registryPackage(pass.Pkg.Path())
			decl, _, found := lintutil.FuncFor(file, call.Pos())
			inInit := found && decl != nil && decl.Name.Name == "init" && decl.Recv == nil
			if inStrategy && inInit {
				return true
			}
			if lintutil.Suppressed(pass, call.Pos(), "register") {
				return true
			}
			switch {
			case !inStrategy:
				pass.Reportf(call.Pos(), "strategy.Register called from package %s: strategies register only from init() in packages under internal/strategy (or annotate //migsim:register <reason>)",
					pass.Pkg.Path())
			default:
				pass.Reportf(call.Pos(), "strategy.Register called outside init(): registration must complete during package initialization (or annotate //migsim:register <reason>)")
			}
			return true
		})
	}
	return nil, nil
}

// registryPackage reports whether path is internal/strategy or one of its
// subpackages (the segment-wise rule used by lintutil.Deterministic,
// narrowed to the strategy subtree).
func registryPackage(path string) bool {
	segs := strings.Split(path, "/")
	for i, s := range segs {
		if s == "internal" && i+1 < len(segs) && segs[i+1] == "strategy" {
			return true
		}
	}
	return false
}
