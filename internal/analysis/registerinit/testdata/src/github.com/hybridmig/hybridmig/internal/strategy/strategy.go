// Package strategy is a stub of the real registry with the same import
// path, so fixtures exercise exactly the resolution the analyzer performs.
package strategy

type Definition struct{ Name string }

var registry []Definition

func Register(d Definition) { registry = append(registry, d) }

func init() {
	Register(Definition{Name: "managed"}) // clean: init() inside internal/strategy
}

// AddLater is the in-package violation: right package, wrong time.
func AddLater(d Definition) {
	Register(d) // want `strategy.Register called outside init\(\)`
}
