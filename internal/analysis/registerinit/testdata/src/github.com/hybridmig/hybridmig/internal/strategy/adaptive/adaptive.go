// Package adaptive shows the allowed subpackage registration: init() in a
// package *under* internal/strategy.
package adaptive

import "github.com/hybridmig/hybridmig/internal/strategy"

func init() {
	strategy.Register(strategy.Definition{Name: "adaptive"}) // clean
}
