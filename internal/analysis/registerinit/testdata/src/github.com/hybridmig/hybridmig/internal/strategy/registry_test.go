package strategy

import "testing"

// Tests are exempt: registering a throwaway fake is how the conformance
// suite exercises the registry.
func TestRegisterFake(t *testing.T) {
	Register(Definition{Name: "fake"})
	if len(registry) == 0 {
		t.Fatal("empty registry")
	}
}
