package main

import "github.com/hybridmig/hybridmig/internal/strategy"

func main() {
	strategy.Register(strategy.Definition{Name: "rogue"}) // want `strategy.Register called from package cmd/reg`

	//migsim:register scenario-local shim registered before any Run, see DESIGN.md §18
	strategy.Register(strategy.Definition{Name: "shimmed"})
}

func init() {
	// Even init() is not enough outside the strategy subtree: the registry
	// order would depend on who imports whom.
	strategy.Register(strategy.Definition{Name: "outsider"}) // want `called from package cmd/reg`
}
