package registerinit_test

import (
	"testing"

	"github.com/hybridmig/hybridmig/internal/analysis/atest"
	"github.com/hybridmig/hybridmig/internal/analysis/registerinit"
)

func TestRegisterInit(t *testing.T) {
	atest.Run(t, "testdata", registerinit.Analyzer,
		"github.com/hybridmig/hybridmig/internal/strategy",
		"github.com/hybridmig/hybridmig/internal/strategy/adaptive",
		"cmd/reg",
	)
}
