// Package errsentinel defines an Analyzer that keeps sentinel-error
// handling wrap-safe.
//
// The fault paths classify outcomes through wrapping chains —
// ErrMigrationFenced wraps ErrMigrationAborted, scenario validation wraps
// ErrInvalidScenario — so a direct ==/!= against an Err* sentinel works
// today and silently stops matching the day an intermediate layer adds
// context with %w. Comparisons must use errors.Is, and fmt.Errorf that
// embeds a sentinel must wrap it with %w (never %v/%s) or the chain is cut.
// Unlike the clock and map checks this applies to test files too: the
// golden and conformance suites classify errors exactly like production
// code does.
package errsentinel

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"github.com/hybridmig/hybridmig/internal/analysis"
	"github.com/hybridmig/hybridmig/internal/analysis/lintutil"
)

const doc = `require errors.Is for Err* sentinels and %w when wrapping them

Comparing an error against a package-level Err* sentinel with == or != (or
a switch case) breaks as soon as any layer wraps the sentinel; use
errors.Is(err, ErrX). Passing a sentinel to fmt.Errorf under %v/%s instead
of %w cuts the unwrap chain for every caller downstream. Both patterns are
reported everywhere, including tests. Escape hatch: //migsim:sentinel
<reason> (e.g. proving pointer identity on purpose).`

var Analyzer = &analysis.Analyzer{
	Name: "errsentinel",
	Doc:  doc,
	Run:  run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				if n.Op != token.EQL && n.Op != token.NEQ {
					return true
				}
				sentinel := sentinelName(pass, n.X)
				if sentinel == "" {
					sentinel = sentinelName(pass, n.Y)
				}
				if sentinel == "" || !errorTyped(pass, n.X) || !errorTyped(pass, n.Y) {
					return true
				}
				if lintutil.Suppressed(pass, n.Pos(), "sentinel") {
					return true
				}
				pass.Reportf(n.Pos(), "direct %s comparison against sentinel %s breaks under wrapping: use errors.Is (or annotate //migsim:sentinel <reason>)",
					n.Op, sentinel)

			case *ast.SwitchStmt:
				// switch err { case ErrX: } is the same identity comparison
				// in disguise.
				if n.Tag == nil || !errorTyped(pass, n.Tag) {
					return true
				}
				for _, clause := range n.Body.List {
					cc, ok := clause.(*ast.CaseClause)
					if !ok {
						continue
					}
					for _, e := range cc.List {
						if name := sentinelName(pass, e); name != "" {
							if lintutil.Suppressed(pass, e.Pos(), "sentinel") {
								continue
							}
							pass.Reportf(e.Pos(), "switch case compares sentinel %s by identity: use if/else with errors.Is (or annotate //migsim:sentinel <reason>)", name)
						}
					}
				}

			case *ast.CallExpr:
				checkErrorf(pass, n)
			}
			return true
		})
	}
	return nil, nil
}

// checkErrorf flags fmt.Errorf calls that pass an Err* sentinel to a verb
// other than %w.
func checkErrorf(pass *analysis.Pass, call *ast.CallExpr) {
	fn := lintutil.CalleeFunc(pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "fmt" || fn.Name() != "Errorf" {
		return
	}
	format, argsFrom, ok := lintutil.FormatArg(pass.TypesInfo, call)
	if !ok {
		return
	}
	for _, fv := range lintutil.ParseFormat(format) {
		if fv.Verb == 'w' || fv.Verb == '*' {
			continue
		}
		argIdx := argsFrom + fv.ArgIdx
		if argIdx >= len(call.Args) {
			continue
		}
		name := sentinelName(pass, call.Args[argIdx])
		if name == "" {
			continue
		}
		if lintutil.Suppressed(pass, call.Pos(), "sentinel") {
			continue
		}
		pass.Reportf(call.Args[argIdx].Pos(), "fmt.Errorf embeds sentinel %s with %%%c: wrap with %%w so errors.Is still matches (or annotate //migsim:sentinel <reason>)",
			name, fv.Verb)
	}
}

// sentinelName resolves e to a package-level error variable named Err* and
// returns its name, or "".
func sentinelName(pass *analysis.Pass, e ast.Expr) string {
	var id *ast.Ident
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return ""
	}
	v, ok := pass.TypesInfo.Uses[id].(*types.Var)
	if !ok || v.Pkg() == nil || !strings.HasPrefix(v.Name(), "Err") {
		return ""
	}
	// Package-level: parent scope is the package scope.
	if v.Parent() != v.Pkg().Scope() {
		return ""
	}
	if !errorType(v.Type()) {
		return ""
	}
	return v.Name()
}

func errorTyped(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	return ok && tv.Type != nil && errorType(tv.Type)
}

var errorIface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

func errorType(t types.Type) bool {
	return types.Implements(t, errorIface)
}
