// Package a exercises errsentinel; the analyzer is repo-wide, so the
// fixture needs no special import path.
package a

import (
	"errors"
	"fmt"
)

var ErrStopped = errors.New("stopped")
var ErrWrapped = fmt.Errorf("context: %w", ErrStopped) // clean: %w keeps the chain

func classify(err error) int {
	if err == ErrStopped { // want `direct == comparison against sentinel ErrStopped`
		return 1
	}
	if err != ErrStopped { // want `direct != comparison against sentinel ErrStopped`
		return 2
	}
	if err != nil && errors.Is(err, ErrStopped) { // clean
		return 3
	}
	switch err {
	case ErrStopped: // want `switch case compares sentinel ErrStopped by identity`
		return 4
	case nil:
		return 5
	}
	//migsim:sentinel proving no layer wrapped it: identity is the point here
	if err == ErrStopped {
		return 6
	}
	return 0
}

func wrap(err error) error {
	if errors.Is(err, ErrStopped) {
		return fmt.Errorf("giving up: %v", ErrStopped) // want `embeds sentinel ErrStopped with %v`
	}
	return fmt.Errorf("giving up: %w", err) // clean: wrapping the live error
}
