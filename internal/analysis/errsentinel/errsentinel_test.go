package errsentinel_test

import (
	"testing"

	"github.com/hybridmig/hybridmig/internal/analysis/atest"
	"github.com/hybridmig/hybridmig/internal/analysis/errsentinel"
)

func TestErrSentinel(t *testing.T) {
	atest.Run(t, "testdata", errsentinel.Analyzer, "a")
}
