// Package atest is the fixture harness for the migsim analyzers: an
// in-process reimplementation of x/tools' analysistest sized for this
// suite.
//
// Fixtures live under <analyzer>/testdata/src/<importpath>/ exactly as with
// analysistest, and expectations are written as trailing comments:
//
//	for k := range m { // want `order-sensitive range over map`
//
// Each `want` carries one or more Go string literals (quoted or
// backquoted), each a regexp that must match the message of a diagnostic
// reported on that line; diagnostics and expectations must match 1:1.
//
// Imports inside fixtures resolve first against the fixture tree itself
// (so a fixture can import a stub github.com/hybridmig/hybridmig/internal/
// strategy), then against the standard library, which is typechecked from
// GOROOT source — no compiled export data or network needed.
package atest

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/scanner"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"

	"github.com/hybridmig/hybridmig/internal/analysis"
	"github.com/hybridmig/hybridmig/internal/analysis/driver"
)

// One process-wide fileset and source importer: the GOROOT closure of
// fmt/time/math/rand is typechecked once, not once per analyzer test.
var (
	fset        = token.NewFileSet()
	stdOnce     sync.Once
	stdImporter types.Importer
)

func std() types.Importer {
	stdOnce.Do(func() { stdImporter = importer.ForCompiler(fset, "source", nil) })
	return stdImporter
}

// Run loads each named package from dir/src/<path>, applies the analyzer,
// and checks its diagnostics against the fixtures' want comments.
func Run(t *testing.T, dir string, a *analysis.Analyzer, paths ...string) {
	t.Helper()
	if err := analysis.Validate([]*analysis.Analyzer{a}); err != nil {
		t.Fatal(err)
	}
	ld := &loader{dir: dir, pkgs: map[string]*loaded{}}
	for _, path := range paths {
		pkg, err := ld.load(path)
		if err != nil {
			t.Errorf("loading fixture %s: %v", path, err)
			continue
		}
		check(t, a, pkg)
	}
}

// A loaded fixture package: syntax plus type information.
type loaded struct {
	path  string
	files []*ast.File
	pkg   *types.Package
	info  *types.Info
	err   error
}

type loader struct {
	dir  string
	pkgs map[string]*loaded
}

func (ld *loader) load(path string) (*loaded, error) {
	if pkg, ok := ld.pkgs[path]; ok {
		return pkg, pkg.err
	}
	pkg := &loaded{path: path}
	ld.pkgs[path] = pkg // pre-insert to cut import cycles off at an error

	pkgDir := filepath.Join(ld.dir, "src", filepath.FromSlash(path))
	entries, err := os.ReadDir(pkgDir)
	if err != nil {
		pkg.err = err
		return pkg, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		pkg.err = fmt.Errorf("no Go files in %s", pkgDir)
		return pkg, pkg.err
	}
	for _, name := range names {
		f, err := parser.ParseFile(fset, filepath.Join(pkgDir, name), nil, parser.ParseComments)
		if err != nil {
			pkg.err = err
			return pkg, err
		}
		pkg.files = append(pkg.files, f)
	}

	pkg.info = &types.Info{
		Types:        make(map[ast.Expr]types.TypeAndValue),
		Defs:         make(map[*ast.Ident]types.Object),
		Uses:         make(map[*ast.Ident]types.Object),
		Implicits:    make(map[ast.Node]types.Object),
		Instances:    make(map[*ast.Ident]types.Instance),
		Scopes:       make(map[ast.Node]*types.Scope),
		Selections:   make(map[*ast.SelectorExpr]*types.Selection),
		FileVersions: make(map[*ast.File]string),
	}
	tc := &types.Config{
		Importer: importerFunc(func(importPath string) (*types.Package, error) {
			if _, err := os.Stat(filepath.Join(ld.dir, "src", filepath.FromSlash(importPath))); err == nil {
				dep, err := ld.load(importPath)
				if err != nil {
					return nil, err
				}
				return dep.pkg, nil
			}
			return std().Import(importPath)
		}),
		Sizes: types.SizesFor("gc", build.Default.GOARCH),
	}
	pkg.pkg, pkg.err = tc.Check(path, fset, pkg.files, pkg.info)
	return pkg, pkg.err
}

// check runs the analyzer on one loaded fixture and diffs diagnostics
// against want expectations.
func check(t *testing.T, a *analysis.Analyzer, pkg *loaded) {
	t.Helper()
	results := driver.RunAnalyzers([]*analysis.Analyzer{a}, &analysis.Pass{
		Fset:       fset,
		Files:      pkg.files,
		Pkg:        pkg.pkg,
		TypesInfo:  pkg.info,
		TypesSizes: types.SizesFor("gc", build.Default.GOARCH),
		Module:     &analysis.Module{Path: "example.com/fixture"},
	})
	res := results[0]
	if res.Err != nil {
		t.Errorf("%s on %s: unexpected analyzer error: %v", a.Name, pkg.path, res.Err)
		return
	}

	wants, err := wantsOf(pkg)
	if err != nil {
		t.Errorf("%s: bad want comment: %v", pkg.path, err)
		return
	}

	type key struct {
		file string
		line int
	}
	pending := map[key][]*want{}
	for i := range wants {
		w := &wants[i]
		k := key{w.file, w.line}
		pending[k] = append(pending[k], w)
	}

	for _, d := range res.Diagnostics {
		posn := fset.Position(d.Pos)
		k := key{posn.Filename, posn.Line}
		matched := false
		for _, w := range pending[k] {
			if !w.used && w.re.MatchString(d.Message) {
				w.used = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s", posn, d.Message)
		}
	}
	for _, w := range wants {
		if !w.used {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
}

type want struct {
	file string
	line int
	re   *regexp.Regexp
	used bool
}

// wantsOf extracts `// want "re" ...` expectations from every fixture file.
func wantsOf(pkg *loaded) ([]want, error) {
	var wants []want
	for _, f := range pkg.files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				rest, ok := strings.CutPrefix(text, "want ")
				if !ok {
					continue
				}
				posn := fset.Position(c.Pos())
				lits, err := scanLiterals(rest)
				if err != nil {
					return nil, fmt.Errorf("%s: %v", posn, err)
				}
				for _, lit := range lits {
					re, err := regexp.Compile(lit)
					if err != nil {
						return nil, fmt.Errorf("%s: %v", posn, err)
					}
					wants = append(wants, want{posn.Filename, posn.Line, re, false})
				}
			}
		}
	}
	return wants, nil
}

// scanLiterals parses a space-separated sequence of Go string literals.
func scanLiterals(s string) ([]string, error) {
	var sc scanner.Scanner
	f := token.NewFileSet().AddFile("want", -1, len(s))
	sc.Init(f, []byte(s), nil, 0)
	var out []string
	for {
		_, tok, lit := sc.Scan()
		switch tok {
		case token.STRING:
			v, err := strconv.Unquote(lit)
			if err != nil {
				return nil, err
			}
			out = append(out, v)
		case token.EOF, token.SEMICOLON:
			if len(out) == 0 {
				return nil, fmt.Errorf("want comment carries no string literal")
			}
			return out, nil
		default:
			return nil, fmt.Errorf("unexpected token %s in want comment", tok)
		}
	}
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
