// Package analysis is a compact, dependency-free reimplementation of the
// golang.org/x/tools/go/analysis API surface, sized for this repository's
// own lint suite (cmd/migsimvet).
//
// # Why not depend on x/tools?
//
// The simulator is a zero-dependency module and stays that way: the five
// migsim analyzers need only the Analyzer/Pass/Diagnostic contract plus the
// `go vet -vettool` driver protocol, none of the facts machinery, and no
// third-party code. This package defines the same shapes with the same
// field names, so each analyzer under internal/analysis/... reads exactly
// like a stock go/analysis pass and could be lifted onto the upstream
// framework by changing one import line.
//
// # The determinism contract
//
// The paper reproduction is only trustworthy because every run is
// bit-for-bit deterministic: the four golden suites (small, paper, fault,
// partition) pin hex-float captures of every measured quantity. The
// analyzers in the subdirectories turn the conventions that keep it that
// way into compile-time diagnostics:
//
//   - detmaprange: no order-sensitive iteration over maps in the
//     deterministic packages (//migsim:unordered <reason> to justify).
//   - simclock: no wall-clock (time.Now & friends) or global math/rand in
//     non-test simulation code; time comes from the sim clock, randomness
//     from an injected seeded *rand.Rand.
//   - goldenfloat: golden- and seed-capture code renders floats with %x,
//     never decimal verbs, so full mantissas are pinned.
//   - registerinit: strategy.Register only from init() in a package under
//     internal/strategy, so the registry is complete before main starts
//     and its order is import-order deterministic.
//   - errsentinel: sentinel errors are compared with errors.Is and wrapped
//     with %w, so fault-outcome classification survives wrapping chains.
//
// See DESIGN.md §18 for the contract prose and the annotation escape
// hatches, and cmd/migsimvet for the vet tool that enforces it in CI.
package analysis
