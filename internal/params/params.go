// Package params centralizes the physical and benchmark constants of the
// reproduction. The defaults mirror the paper's testbed — the graphene
// cluster of Grid'5000 (Section 5.1) — and its benchmark configurations
// (Sections 5.3–5.5). Experiments copy and tweak these rather than inventing
// their own numbers, so every run is traceable to the paper.
package params

// Byte-size helpers.
const (
	KB = 1 << 10
	MB = 1 << 20
	GB = 1 << 30
)

// Testbed describes the hardware of a simulated compute node and the
// datacenter interconnect.
type Testbed struct {
	// NICBandwidth is the per-direction NIC throughput in bytes/s. The paper
	// measured 117.5 MB/s for TCP over Gigabit Ethernet.
	NICBandwidth float64
	// DiskBandwidth is the local disk throughput in bytes/s (~55 MB/s SATA II).
	DiskBandwidth float64
	// FabricBandwidth is the aggregate switch capacity (~8 GB/s, Cisco
	// Catalyst, Section 5.4).
	FabricBandwidth float64
	// NetLatency is the one-way network latency in seconds (~0.1 ms).
	NetLatency float64
	// DiskLatency is the per-request disk access latency in seconds (seek +
	// rotational average for the SATA disks; small because the workloads are
	// streaming).
	DiskLatency float64
	// RAM is the memory of a VM instance in bytes (4 GB in all experiments).
	RAM int64
	// ImageSize is the virtual disk image size in bytes (4 GB raw image).
	ImageSize int64
	// ChunkSize is the stripe/chunk size used by the migration manager and
	// the repository (256 KB, Section 5.2.1).
	ChunkSize int64
}

// DefaultTestbed returns the graphene-cluster constants from Section 5.1.
func DefaultTestbed() Testbed {
	return Testbed{
		NICBandwidth:    117.5 * MB,
		DiskBandwidth:   55 * MB,
		FabricBandwidth: 8 * GB,
		NetLatency:      0.0001,
		DiskLatency:     0.0005,
		RAM:             4 * GB,
		ImageSize:       4 * GB,
		ChunkSize:       256 * KB,
	}
}

// Hypervisor holds the QEMU/KVM-like migration parameters.
type Hypervisor struct {
	// MaxDowntime is the stop-and-copy budget (QEMU default 30 ms).
	MaxDowntime float64
	// MigrationSpeed caps the migration transfer rate in bytes/s. The paper
	// sets it to the full NIC bandwidth.
	MigrationSpeed float64
	// MaxRounds bounds pre-copy iterations; when exceeded the hypervisor
	// forces stop-and-copy (mirrors management-layer timeouts in practice).
	MaxRounds int
	// DeviceState is the size of the non-memory device state (hardware
	// buffers, CPU state) transferred during downtime.
	DeviceState int64
	// MemPageSize is the dirty-tracking granularity. QEMU tracks 4 KiB
	// pages; we track groups of pages to keep bitmaps small, which is
	// equivalent for bulk workloads.
	MemPageSize int64
	// BootedFootprint is the non-zero guest memory right after boot (kernel
	// + userland of the Debian guest). Zero pages are elided by the
	// hypervisor exactly as QEMU's is_dup_page does.
	BootedFootprint int64
	// CPUSteal is the fraction of guest CPU consumed by host-side migration
	// work (migration thread, storage manager transfers) while a migration
	// involving the VM is active.
	CPUSteal float64
}

// DefaultHypervisor returns QEMU 1.0-like defaults per Section 5.1.
func DefaultHypervisor() Hypervisor {
	return Hypervisor{
		MaxDowntime:     0.030,
		MigrationSpeed:  117.5 * MB,
		MaxRounds:       100,
		DeviceState:     2 * MB,
		MemPageSize:     256 * KB,
		BootedFootprint: 512 * MB,
		CPUSteal:        0.12,
	}
}

// Guest holds the guest-OS model parameters (page cache and filesystem).
// They are calibrated so the no-migration IOR maxima match the paper's
// measurements: 1 GB/s reads from cache, 266 MB/s buffered writes against a
// 55 MB/s disk (Section 5.3).
type Guest struct {
	// CacheReadBandwidth is the throughput of reads served from the page
	// cache (paper: ~1 GB/s for IOR-Read).
	CacheReadBandwidth float64
	// CacheWriteBandwidth is the rate at which the cache absorbs buffered
	// writes while below the dirty limit (paper: ~266 MB/s for IOR-Write).
	CacheWriteBandwidth float64
	// DirtyLimit is the maximum dirty page-cache data before writers are
	// throttled to the writeback drain rate (Linux dirty_ratio behaviour).
	DirtyLimit int64
	// WritebackBatch is the size of one background writeback submission.
	WritebackBatch int64
	// CachePage is the page-cache tracking granularity. Dirty state is kept
	// per cache page so rewriting a still-dirty page creates no extra
	// writeback work (Linux semantics).
	CachePage int64
	// CacheRegion is the guest RAM set aside for the page cache.
	CacheRegion int64
	// CommitInterval is the journal commit period (ext3 default 5 s).
	CommitInterval float64
	// JournalWrite is the size of one journal commit record.
	JournalWrite int64
	// MetadataEvery issues one inode-table/bitmap update per this many bytes
	// of data written; these land on a small set of hot chunks.
	MetadataEvery int64
}

// DefaultGuest returns the calibrated guest model.
func DefaultGuest() Guest {
	return Guest{
		CacheReadBandwidth:  1 * GB,
		CacheWriteBandwidth: 266 * MB,
		DirtyLimit:          384 * MB,
		WritebackBatch:      16 * MB,
		CachePage:           16 * KB,
		CacheRegion:         2560 * MB,
		CommitInterval:      5.0,
		JournalWrite:        256 * KB,
		MetadataEvery:       64 * MB,
	}
}

// Manager holds the migration manager (our approach) parameters.
type Manager struct {
	// Threshold is the write-count cutoff: a chunk written at least this
	// many times during migration is no longer pushed and waits for the
	// prioritized pull phase (Algorithm 1). The paper leaves the value
	// unstated; 3 is the repository default and the ablation bench sweeps it.
	Threshold uint32
	// PushBatch is the number of contiguous chunks streamed per push flow.
	PushBatch int
	// PullBatch is the number of chunks fetched per background pull request
	// (the paper pulls chunk by chunk; see Algorithm 3).
	PullBatch int
	// PullRequestLatency is the per-request service overhead of a pull:
	// FUSE round trip plus request handling at the source. Pulls are
	// request/response; pushes stream.
	PullRequestLatency float64
	// BasePrefetch enables prefetching hot base-image content on the
	// destination using hints from the source (Section 4.1).
	BasePrefetch bool
	// BasePrefetchRate caps base-image prefetch bandwidth so it does not
	// starve the source pulls (bytes/s).
	BasePrefetchRate float64
	// Preseeded marks the base image as already replicated on every
	// compute node's local storage: images start fully local and
	// migrations preseed the destination replica too, so neither boot
	// I/O nor migration ever touches the shared repository. This models
	// a deployment with pre-staged images; it is also what makes
	// migrations of distinct node pairs fully independent of each other
	// (the parallel scenario kernel shards on it).
	Preseeded bool
}

// DefaultManager returns the default migration-manager tuning.
func DefaultManager() Manager {
	return Manager{
		Threshold:          3,
		PushBatch:          64,
		PullBatch:          1,
		PullRequestLatency: 0.008,
		BasePrefetch:       true,
		BasePrefetchRate:   40 * MB,
	}
}

// Repository holds the BlobSeer-substitute parameters.
type Repository struct {
	// StripeSize is the striping unit (256 KB per Section 5.2.1).
	StripeSize int64
	// Replication is the number of copies of each stripe.
	Replication int
	// MetadataLatency models one metadata round trip (version lookup).
	MetadataLatency float64
}

// DefaultRepository returns the paper's repository configuration.
func DefaultRepository() Repository {
	return Repository{StripeSize: 256 * KB, Replication: 1, MetadataLatency: 0.0002}
}

// IOR holds the IOR benchmark configuration from Section 5.3.
type IOR struct {
	Iterations int   // 10
	FileSize   int64 // 1 GB
	BlockSize  int64 // 256 KB
}

// DefaultIOR returns the paper's IOR configuration.
func DefaultIOR() IOR {
	return IOR{Iterations: 10, FileSize: 1 * GB, BlockSize: 256 * KB}
}

// AsyncWR holds the AsyncWR benchmark configuration. Section 5.3 states 180
// iterations and ~6 MB/s of I/O pressure; Section 5.4 fixes the total data
// at 1800 MB. 180 iterations x 10 MB at one iteration per ~1.67 s satisfies
// both statements (see DESIGN.md §5).
type AsyncWR struct {
	Iterations  int
	DataPerIter int64
	ComputeTime float64 // seconds of pure CPU per iteration
	// MemoryDirtyRate is the rate at which the compute phase dirties guest
	// memory (random data generation + buffer copy).
	MemoryDirtyRate float64
	// WorkingSet is the memory region the compute phase touches.
	WorkingSet int64
}

// DefaultAsyncWR returns the reconstructed AsyncWR configuration.
func DefaultAsyncWR() AsyncWR {
	return AsyncWR{
		Iterations:      180,
		DataPerIter:     10 * MB,
		ComputeTime:     10.0 / 6.0,
		MemoryDirtyRate: 24 * MB,
		WorkingSet:      64 * MB,
	}
}

// Rewrite holds the configuration of the hot/cold rewrite workload: a file
// whose leading HotBytes are rewritten every iteration (chunks the
// write-count threshold defers) followed by one pass over the rest (chunks
// the push phase drains), with a think pause between iterations. It is not a
// paper benchmark — it is the minimal workload that exercises every branch of
// the hybrid scheme, which is why the quickstart scenario uses it.
type Rewrite struct {
	FileSize   int64
	HotBytes   int64 // leading region rewritten every iteration
	Iterations int
	Interval   float64 // think time between iterations, seconds
}

// DefaultRewrite returns a small-scale rewrite configuration (64 MB file,
// 32 MB hot region) suitable for SmallConfig testbeds.
func DefaultRewrite() Rewrite {
	return Rewrite{
		FileSize:   64 * MB,
		HotBytes:   32 * MB,
		Iterations: 16,
		Interval:   0.5,
	}
}

// CM1 holds the CM1 application configuration from Section 5.5.
type CM1 struct {
	Procs           int     // 64 MPI ranks (8x8 grid)
	GridX, GridY    int     // process grid
	Intervals       int     // output intervals simulated
	ComputePerIntvl float64 // ~40 s of computation per output interval
	OutputSize      int64   // ~200 MB dumped per process per interval
	HaloBytes       int64   // halo exchange volume per neighbor per interval
	// MemoryDirtyRate is the stencil update rate over the working set.
	MemoryDirtyRate float64
	WorkingSet      int64
}

// DefaultCM1 returns the paper's CM1 configuration.
func DefaultCM1() CM1 {
	return CM1{
		Procs:           64,
		GridX:           8,
		GridY:           8,
		Intervals:       10,
		ComputePerIntvl: 40,
		OutputSize:      200 * MB,
		HaloBytes:       4 * MB,
		MemoryDirtyRate: 100 * MB,
		WorkingSet:      800 * MB,
	}
}

// Experiment bundles the per-run timing constants shared by Section 5
// scenarios.
type Experiment struct {
	// WarmupDelay is the delay before the (first) migration is initiated
	// (100 s in Sections 5.3 and 5.4).
	WarmupDelay float64
	// SuccessiveGap is the delay between successive migrations in the CM1
	// experiment (60 s, Section 5.5).
	SuccessiveGap float64
}

// DefaultExperiment returns the paper's scenario timing.
func DefaultExperiment() Experiment {
	return Experiment{WarmupDelay: 100, SuccessiveGap: 60}
}
