package params

import (
	"math"
	"testing"
)

func TestByteHelpers(t *testing.T) {
	if KB != 1024 || MB != 1024*KB || GB != 1024*MB {
		t.Fatalf("byte helpers wrong: %d %d %d", KB, MB, GB)
	}
}

// TestDefaultTestbedMatchesPaper pins the Section 5.1 graphene-cluster
// constants every experiment derives from.
func TestDefaultTestbedMatchesPaper(t *testing.T) {
	tb := DefaultTestbed()
	if tb.NICBandwidth != 117.5*MB {
		t.Errorf("NIC = %v, want 117.5 MB/s", tb.NICBandwidth)
	}
	if tb.DiskBandwidth != 55*MB {
		t.Errorf("disk = %v, want 55 MB/s", tb.DiskBandwidth)
	}
	if tb.FabricBandwidth != 8*GB {
		t.Errorf("fabric = %v, want 8 GB/s", tb.FabricBandwidth)
	}
	if tb.RAM != 4*GB || tb.ImageSize != 4*GB {
		t.Errorf("RAM/image = %d/%d, want 4 GB each", tb.RAM, tb.ImageSize)
	}
	if tb.ChunkSize != 256*KB {
		t.Errorf("chunk = %d, want 256 KB", tb.ChunkSize)
	}
	if tb.NetLatency <= 0 || tb.DiskLatency <= 0 {
		t.Errorf("latencies must be positive: %v %v", tb.NetLatency, tb.DiskLatency)
	}
	// The image must be an exact multiple of the chunk size, or the
	// geometry would have a ragged tail chunk in every experiment.
	if tb.ImageSize%tb.ChunkSize != 0 {
		t.Errorf("image %d not a multiple of chunk %d", tb.ImageSize, tb.ChunkSize)
	}
}

// TestDefaultHypervisorDerived checks the QEMU-like defaults and the derived
// relations the migration loop relies on.
func TestDefaultHypervisorDerived(t *testing.T) {
	hv := DefaultHypervisor()
	tb := DefaultTestbed()
	if hv.MaxDowntime != 0.030 {
		t.Errorf("max downtime = %v, want 30 ms", hv.MaxDowntime)
	}
	if hv.MigrationSpeed != tb.NICBandwidth {
		t.Errorf("migration speed %v != NIC %v (the paper uncaps it)", hv.MigrationSpeed, tb.NICBandwidth)
	}
	if hv.MaxRounds <= 1 {
		t.Errorf("round cap %d cannot drive an iterative pre-copy", hv.MaxRounds)
	}
	if hv.BootedFootprint >= tb.RAM {
		t.Errorf("booted footprint %d exceeds RAM %d", hv.BootedFootprint, tb.RAM)
	}
	if tb.RAM%hv.MemPageSize != 0 {
		t.Errorf("RAM %d not a multiple of page size %d", tb.RAM, hv.MemPageSize)
	}
	if hv.CPUSteal < 0 || hv.CPUSteal >= 1 {
		t.Errorf("CPU steal %v out of [0,1)", hv.CPUSteal)
	}
}

// TestDefaultGuestCalibration checks the guest model reproduces the paper's
// no-migration maxima ordering: cache reads (1 GB/s) > buffered writes
// (266 MB/s) > disk (55 MB/s), with a dirty limit the cache region can hold.
func TestDefaultGuestCalibration(t *testing.T) {
	g := DefaultGuest()
	tb := DefaultTestbed()
	if g.CacheReadBandwidth != 1*GB || g.CacheWriteBandwidth != 266*MB {
		t.Errorf("cache bandwidths %v/%v, want 1 GB/s and 266 MB/s", g.CacheReadBandwidth, g.CacheWriteBandwidth)
	}
	if !(g.CacheReadBandwidth > g.CacheWriteBandwidth && g.CacheWriteBandwidth > tb.DiskBandwidth) {
		t.Error("calibration must order cache read > cache write > disk")
	}
	if g.DirtyLimit <= 0 || g.DirtyLimit >= g.CacheRegion {
		t.Errorf("dirty limit %d vs cache region %d", g.DirtyLimit, g.CacheRegion)
	}
	if g.WritebackBatch%g.CachePage != 0 {
		t.Errorf("writeback batch %d not page-aligned (%d)", g.WritebackBatch, g.CachePage)
	}
	if g.CacheRegion >= tb.RAM {
		t.Errorf("cache region %d exceeds guest RAM %d", g.CacheRegion, tb.RAM)
	}
}

func TestDefaultManagerAndRepository(t *testing.T) {
	m := DefaultManager()
	if m.Threshold == 0 {
		t.Error("zero threshold defers every written chunk")
	}
	if m.PushBatch <= 0 || m.PullBatch <= 0 {
		t.Errorf("batches %d/%d must be positive", m.PushBatch, m.PullBatch)
	}
	if m.BasePrefetch && m.BasePrefetchRate <= 0 {
		t.Error("prefetch enabled with no rate budget")
	}
	r := DefaultRepository()
	tb := DefaultTestbed()
	if r.StripeSize != tb.ChunkSize {
		t.Errorf("stripe %d != chunk %d: manager and repository must agree (Section 5.2.1)", r.StripeSize, tb.ChunkSize)
	}
	if r.Replication < 1 {
		t.Errorf("replication %d", r.Replication)
	}
}

// TestDefaultAsyncWRReconstruction verifies the documented reconstruction:
// 180 iterations of 10 MB must total the 1800 MB Section 5.4 fixes, at an
// I/O pressure of about 6 MB/s given the per-iteration compute time.
func TestDefaultAsyncWRReconstruction(t *testing.T) {
	p := DefaultAsyncWR()
	total := int64(p.Iterations) * p.DataPerIter
	if total != 1800*MB {
		t.Errorf("total data = %d, want 1800 MB", total)
	}
	rate := float64(p.DataPerIter) / p.ComputeTime
	if math.Abs(rate-6*MB) > 0.1*MB {
		t.Errorf("I/O pressure %.2f MB/s, want ~6 MB/s", rate/MB)
	}
	if p.WorkingSet <= 0 || p.MemoryDirtyRate <= 0 {
		t.Errorf("memory model degenerate: %d %v", p.WorkingSet, p.MemoryDirtyRate)
	}
}

func TestDefaultIORAndCM1(t *testing.T) {
	ior := DefaultIOR()
	if ior.Iterations != 10 || ior.FileSize != 1*GB || ior.BlockSize != 256*KB {
		t.Errorf("IOR defaults %+v diverge from Section 5.3", ior)
	}
	if ior.FileSize%ior.BlockSize != 0 {
		t.Errorf("file %d not a multiple of block %d", ior.FileSize, ior.BlockSize)
	}
	cm1 := DefaultCM1()
	if cm1.GridX*cm1.GridY != cm1.Procs {
		t.Errorf("grid %dx%d != %d ranks", cm1.GridX, cm1.GridY, cm1.Procs)
	}
	if cm1.Procs != 64 || cm1.OutputSize != 200*MB {
		t.Errorf("CM1 defaults %+v diverge from Section 5.5", cm1)
	}
}

func TestDefaultExperimentTiming(t *testing.T) {
	e := DefaultExperiment()
	if e.WarmupDelay != 100 {
		t.Errorf("warm-up = %v, want the paper's 100 s", e.WarmupDelay)
	}
	if e.SuccessiveGap != 60 {
		t.Errorf("successive gap = %v, want the paper's 60 s", e.SuccessiveGap)
	}
}
