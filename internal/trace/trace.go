// Package trace is the simulation's observer bus: a lightweight,
// allocation-conscious event stream that the migration manager (internal/core),
// the cloud middleware (internal/cluster), the hypervisor (internal/hv) and
// the campaign orchestrator (internal/sched) publish to, and that callers of
// the public facade subscribe to instead of scraping logs.
//
// Emitting an event never schedules simulation work: observers run inline at
// the instant of the event, synchronously, in subscription order. A run with
// no subscribers therefore behaves bit-for-bit like a run that predates the
// bus (the golden determinism suite pins this), and a run with subscribers
// only differs by the observers' own side effects.
package trace

import "fmt"

// Kind classifies an event.
type Kind uint8

// Event kinds published by the simulation layers.
const (
	// KindMigrationRequested marks the middleware accepting a migration
	// request for a VM (cluster.MigrateInstance entry). Detail holds the
	// approach name; Value the destination node ID.
	KindMigrationRequested Kind = iota
	// KindPhase marks a storage-migration phase transition in the manager
	// (core): Detail is one of "push", "mirror", "passive" (postcopy's
	// source phase), "control-transfer", "released".
	KindPhase
	// KindRound marks the start of one hypervisor pre-copy round. Round is
	// the 0-based round number; Value the round's payload in bytes.
	KindRound
	// KindMigrationCompleted marks a migration fully finished per its
	// approach's definition of migration time. Value is the migration time
	// in seconds.
	KindMigrationCompleted
	// KindJobQueued marks a campaign job submitted to the orchestrator.
	KindJobQueued
	// KindJobAdmitted marks a campaign job passing admission control
	// (policy window open and concurrency slot acquired).
	KindJobAdmitted
	// KindJobFinished marks a campaign job completing. Value is the job's
	// downtime in seconds when known.
	KindJobFinished
	// KindCampaignStarted and KindCampaignFinished bracket one orchestrated
	// campaign. Detail is the policy name; Value the job count (started) or
	// the makespan in seconds (finished).
	KindCampaignStarted
	KindCampaignFinished
	// KindSample is a periodic degradation sample of one VM, emitted by the
	// scenario runner while migrations are in flight. Detail names the
	// sampled quantity (currently "dirty-bytes"); Value carries it.
	KindSample
	// KindFaultInjected marks a scripted fault firing (scenario layer).
	// Detail names the fault kind; VM/Value identify the target when the
	// fault addresses one.
	KindFaultInjected
	// KindMigrationAborted marks an in-flight migration being torn down by a
	// fault. Detail holds the reason; Value the wire bytes wasted by the
	// aborted attempt.
	KindMigrationAborted
	// KindMigrationRetried marks an aborted migration being re-admitted.
	// Round carries the attempt number about to run (2 for the first retry).
	KindMigrationRetried
	// KindLinkCapacity marks a scheduled link-capacity change taking effect.
	// Detail is the link name; Value the new capacity in bytes/s.
	KindLinkCapacity
	// KindLeaseAcquired marks an attachment lease granted (or handed over) on
	// a shared volume. VM is the volume name, Detail the holder node, Value
	// the write-authority epoch.
	KindLeaseAcquired
	// KindLeaseRenewed marks a lease holder heartbeating successfully at a
	// reconciler tick. VM is the volume, Detail the holder node.
	KindLeaseRenewed
	// KindLeaseExpired marks a lease lapsing past its TTL without renewal
	// (holder unreachable); the grace period starts. VM is the volume,
	// Detail the holder node.
	KindLeaseExpired
	// KindLeaseFenced marks the reconciler fencing a holder whose lease
	// stayed expired through the grace period: its attachment is revoked and
	// its writes are blocked. VM is the volume, Detail the fenced node.
	KindLeaseFenced
	// KindSplitBrain marks the unsafe failover taken when fencing is
	// disabled: a second writer is activated while the silent holder may
	// still be writing. VM is the volume, Detail the new writer node.
	KindSplitBrain
)

// String returns the kind's wire/report name.
func (k Kind) String() string {
	switch k {
	case KindMigrationRequested:
		return "migration-requested"
	case KindPhase:
		return "phase"
	case KindRound:
		return "round"
	case KindMigrationCompleted:
		return "migration-completed"
	case KindJobQueued:
		return "job-queued"
	case KindJobAdmitted:
		return "job-admitted"
	case KindJobFinished:
		return "job-finished"
	case KindCampaignStarted:
		return "campaign-started"
	case KindCampaignFinished:
		return "campaign-finished"
	case KindSample:
		return "sample"
	case KindFaultInjected:
		return "fault-injected"
	case KindMigrationAborted:
		return "migration-aborted"
	case KindMigrationRetried:
		return "migration-retried"
	case KindLinkCapacity:
		return "link-capacity"
	case KindLeaseAcquired:
		return "lease-acquired"
	case KindLeaseRenewed:
		return "lease-renewed"
	case KindLeaseExpired:
		return "lease-expired"
	case KindLeaseFenced:
		return "lease-fenced"
	case KindSplitBrain:
		return "split-brain"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Event is one observation. The struct is flat and value-typed so emitting
// does not allocate beyond the observer call itself.
type Event struct {
	Time   float64 // virtual time in seconds
	Kind   Kind
	VM     string  // instance/job name; "" for campaign-level events
	Detail string  // kind-specific label (phase name, policy name, ...)
	Round  int     // pre-copy round number (KindRound)
	Value  float64 // kind-specific measurement
}

// String renders the event for debugging and textual traces.
func (e Event) String() string {
	s := fmt.Sprintf("%10.4f %-20s", e.Time, e.Kind)
	if e.VM != "" {
		s += " vm=" + e.VM
	}
	if e.Detail != "" {
		s += " " + e.Detail
	}
	if e.Kind == KindRound {
		s += fmt.Sprintf(" round=%d", e.Round)
	}
	if e.Value != 0 {
		s += fmt.Sprintf(" value=%g", e.Value)
	}
	return s
}

// Observer receives events. Implementations must not mutate simulation
// state; they run synchronously inside the emitting layer.
type Observer interface {
	OnEvent(Event)
}

// ObserverFunc adapts a function to the Observer interface.
type ObserverFunc func(Event)

// OnEvent implements Observer.
func (f ObserverFunc) OnEvent(e Event) { f(e) }

// Bus fans events out to subscribers. The zero value is ready to use; a nil
// *Bus is valid and drops everything, so layers can hold an optional bus
// without nil checks at every emission site.
type Bus struct {
	obs []Observer
}

// Subscribe registers an observer. Observers are notified in subscription
// order.
func (b *Bus) Subscribe(o Observer) {
	if o != nil {
		b.obs = append(b.obs, o)
	}
}

// Active reports whether any observer is subscribed. Layers use it to skip
// building event payloads on the hot path.
func (b *Bus) Active() bool { return b != nil && len(b.obs) > 0 }

// Emit delivers the event to every subscriber, in order. It is a no-op on a
// nil or empty bus.
func (b *Bus) Emit(e Event) {
	if b == nil {
		return
	}
	for _, o := range b.obs {
		o.OnEvent(e)
	}
}
