// Command ablate sweeps the design choices of the hybrid migration scheme
// on the Figure 3 IOR scenario: the write-count threshold, the prioritized
// pull order, the repository stripe size, the base-image prefetch, and the
// paper's future-work extensions (dedup, compression).
//
// Usage:
//
//	ablate [-which threshold|priority|stripe|prefetch|dedup|compression|all]
//	       [-scale small|paper]
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/hybridmig/hybridmig/internal/experiments"
)

func main() {
	which := flag.String("which", "all", "ablation to run")
	scaleName := flag.String("scale", "small", "small or paper")
	flag.Parse()

	scale := experiments.ScaleSmall
	if *scaleName == "paper" {
		scale = experiments.ScalePaper
	}

	type ab struct {
		name string
		run  func(experiments.Scale) []experiments.AblationRow
	}
	all := []ab{
		{"threshold", experiments.AblateThreshold},
		{"priority", experiments.AblatePullPriority},
		{"stripe", experiments.AblateStripeSize},
		{"prefetch", experiments.AblateBasePrefetch},
		{"dedup", experiments.AblateDedup},
		{"compression", experiments.AblateCompression},
	}
	ran := false
	for _, a := range all {
		if *which != "all" && *which != a.name {
			continue
		}
		ran = true
		rows := a.run(scale)
		fmt.Println(experiments.AblationTable("Ablation: "+a.name+" ("+scale.String()+" scale, IOR scenario)", rows))
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "ablate: unknown ablation %q\n", *which)
		os.Exit(2)
	}
}
