// Command migsimd serves the hybridmig scenario engine over HTTP:
// simulation as a service. It accepts JSON scenario specs, runs them on a
// bounded worker pool with FIFO admission and load shedding, and exposes
// per-run status, typed results, cancellation, live NDJSON trace streaming,
// and Prometheus-style text metrics.
//
// Usage:
//
//	migsimd [-addr :8080] [-workers N] [-queue N] [-max-wall 300]
//
// Endpoints: POST /v1/runs, GET /v1/runs, GET /v1/runs/{id},
// GET /v1/runs/{id}/result, POST /v1/runs/{id}/cancel,
// GET /v1/runs/{id}/events, GET /metrics, GET /healthz, GET /readyz.
// See README.md for a curl quickstart.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on DefaultServeMux for -pprof
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/hybridmig/hybridmig/internal/service"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		workers  = flag.Int("workers", 0, "concurrent runs (0 = GOMAXPROCS)")
		queue    = flag.Int("queue", 16, "admission queue depth; a full queue sheds with HTTP 429")
		maxWall  = flag.Float64("max-wall", 300, "per-run wall-clock budget cap in seconds (runaway breaker)")
		pprofSrv = flag.String("pprof", "", "serve net/http/pprof on this separate address (e.g. localhost:6060); empty disables")
	)
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "migsimd: unexpected arguments: %v\n", flag.Args())
		os.Exit(2)
	}

	if *pprofSrv != "" {
		// The profiler gets its own listener so it is never exposed on the
		// service address; net/http/pprof registers on DefaultServeMux, which
		// the service handler does not use.
		go func() {
			log.Printf("migsimd: pprof on http://%s/debug/pprof/", *pprofSrv)
			if err := http.ListenAndServe(*pprofSrv, nil); err != nil {
				log.Printf("migsimd: pprof: %v", err)
			}
		}()
	}

	srv := service.New(service.Config{
		Workers:    *workers,
		QueueDepth: *queue,
		MaxWall:    time.Duration(*maxWall * float64(time.Second)),
	})
	srv.Start()

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	log.Printf("migsimd: listening on %s (workers=%d queue=%d max-wall=%gs)",
		*addr, *workers, *queue, *maxWall)

	select {
	case <-ctx.Done():
		log.Printf("migsimd: shutting down")
	case err := <-errc:
		log.Fatalf("migsimd: serve: %v", err)
	}

	// Stop accepting connections first, then drain the pool: queued and
	// running runs are canceled and workers exit once they finish tearing
	// their runs down.
	shutCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("migsimd: http shutdown: %v", err)
	}
	if err := srv.Shutdown(shutCtx); err != nil {
		log.Printf("migsimd: pool shutdown: %v", err)
	}
	log.Printf("migsimd: bye")
}
