// Command paperrepro regenerates the tables and figures of the paper's
// evaluation section and prints them as text tables.
//
// Usage:
//
//	paperrepro [-experiment table1|fig3|fig4|fig5|campaign|all] [-scale small|paper]
//
// At -scale paper the runs use the full Section 5 parameters (4 GB images
// and RAM, 100 s warm-up, up to 30 concurrent migrations, 64 CM1 ranks);
// -scale small preserves the ratios at roughly 1/16 size for quick runs.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/hybridmig/hybridmig/internal/experiments"
	"github.com/hybridmig/hybridmig/internal/metrics"
)

func main() {
	exp := flag.String("experiment", "all", "which artifact to regenerate: table1, fig3, fig4, fig5, campaign, all")
	scaleName := flag.String("scale", "small", "run size: small or paper")
	flag.Parse()

	var scale experiments.Scale
	switch *scaleName {
	case "small":
		scale = experiments.ScaleSmall
	case "paper":
		scale = experiments.ScalePaper
	default:
		fmt.Fprintf(os.Stderr, "paperrepro: unknown scale %q\n", *scaleName)
		os.Exit(2)
	}

	want := func(name string) bool { return *exp == "all" || *exp == name }
	ran := false

	if want("table1") {
		ran = true
		t := metrics.NewTable("Table 1: summary of compared approaches", "approach", "local storage transfer strategy")
		for _, r := range experiments.RunTable1() {
			t.AddRow(string(r.Approach), r.Strategy)
		}
		fmt.Println(t)
	}
	if want("fig3") {
		ran = true
		start := time.Now()
		rows := experiments.RunFig3(scale)
		for _, t := range experiments.Fig3Tables(rows) {
			fmt.Println(t)
		}
		fmt.Printf("(fig3 %s scale: %.1fs wall)\n\n", scale, time.Since(start).Seconds())
	}
	if want("fig4") {
		ran = true
		start := time.Now()
		rows := experiments.RunFig4(scale)
		for _, t := range experiments.Fig4Tables(scale, rows) {
			fmt.Println(t)
		}
		fmt.Printf("(fig4 %s scale: %.1fs wall)\n\n", scale, time.Since(start).Seconds())
	}
	if want("fig5") {
		ran = true
		start := time.Now()
		rows := experiments.RunFig5(scale)
		for _, t := range experiments.Fig5Tables(scale, rows) {
			fmt.Println(t)
		}
		fmt.Printf("(fig5 %s scale: %.1fs wall)\n\n", scale, time.Since(start).Seconds())
	}
	if want("campaign") {
		ran = true
		start := time.Now()
		rows := experiments.RunCampaign(scale)
		for _, t := range experiments.CampaignTables(scale, rows) {
			fmt.Println(t)
		}
		fmt.Printf("(campaign %s scale: %.1fs wall)\n\n", scale, time.Since(start).Seconds())
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "paperrepro: unknown experiment %q\n", *exp)
		os.Exit(2)
	}
}
