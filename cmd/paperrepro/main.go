// Command paperrepro regenerates the tables and figures of the paper's
// evaluation section and prints them as text tables, or as machine-readable
// JSON with -json. Every experiment runs through the declarative scenario
// API (see internal/experiments).
//
// Usage:
//
//	paperrepro [-experiment table1|fig3|fig4|fig5|campaign|strategies|all]
//	           [-scale small|paper] [-json]
//
// -experiment strategies lists the full storage-transfer strategy registry —
// the paper's five approaches plus every strategy registered on top (the
// adaptive-threshold hybrid) — with their Table 1 summary lines.
//
// At -scale paper the runs use the full Section 5 parameters (4 GB images
// and RAM, 100 s warm-up, up to 30 concurrent migrations, 64 CM1 ranks);
// -scale small preserves the ratios at roughly 1/16 size for quick runs.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"github.com/hybridmig/hybridmig/internal/experiments"
	"github.com/hybridmig/hybridmig/internal/metrics"
	"github.com/hybridmig/hybridmig/internal/strategy"
	_ "github.com/hybridmig/hybridmig/internal/strategy/adaptive" // register the sixth strategy
)

func main() {
	exp := flag.String("experiment", "all", "which artifact to regenerate: table1, fig3, fig4, fig5, campaign, strategies, all")
	scaleName := flag.String("scale", "small", "run size: small or paper")
	jsonOut := flag.Bool("json", false, "emit machine-readable JSON instead of text tables")
	parallel := flag.Int("parallel", 0, "experiment cells to run concurrently (0 = serial, -1 = GOMAXPROCS); output is identical either way")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile at exit to this file")
	flag.Parse()
	experiments.SetParallel(*parallel)

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "paperrepro: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "paperrepro: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "paperrepro: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "paperrepro: %v\n", err)
			}
		}()
	}

	var scale experiments.Scale
	switch *scaleName {
	case "small":
		scale = experiments.ScaleSmall
	case "paper":
		scale = experiments.ScalePaper
	default:
		fmt.Fprintf(os.Stderr, "paperrepro: unknown scale %q\n", *scaleName)
		os.Exit(2)
	}

	want := func(name string) bool { return *exp == "all" || *exp == name }
	ran := false
	report := map[string]any{"scale": scale.String()}

	if want("table1") {
		ran = true
		rows := experiments.RunTable1()
		if *jsonOut {
			report["table1"] = rows
		} else {
			t := metrics.NewTable("Table 1: summary of compared approaches", "approach", "local storage transfer strategy")
			for _, r := range rows {
				t.AddRow(string(r.Approach), r.Strategy)
			}
			fmt.Println(t)
		}
	}
	if want("fig3") {
		ran = true
		start := time.Now()
		rows := experiments.RunFig3(scale)
		if *jsonOut {
			report["fig3"] = rows
		} else {
			for _, t := range experiments.Fig3Tables(rows) {
				fmt.Println(t)
			}
			fmt.Printf("(fig3 %s scale: %.1fs wall)\n\n", scale, time.Since(start).Seconds())
		}
	}
	if want("fig4") {
		ran = true
		start := time.Now()
		rows := experiments.RunFig4(scale)
		if *jsonOut {
			report["fig4"] = rows
		} else {
			for _, t := range experiments.Fig4Tables(scale, rows) {
				fmt.Println(t)
			}
			fmt.Printf("(fig4 %s scale: %.1fs wall)\n\n", scale, time.Since(start).Seconds())
		}
	}
	if want("fig5") {
		ran = true
		start := time.Now()
		rows := experiments.RunFig5(scale)
		if *jsonOut {
			report["fig5"] = rows
		} else {
			for _, t := range experiments.Fig5Tables(scale, rows) {
				fmt.Println(t)
			}
			fmt.Printf("(fig5 %s scale: %.1fs wall)\n\n", scale, time.Since(start).Seconds())
		}
	}
	if want("strategies") {
		ran = true
		names := strategy.Names()
		if *jsonOut {
			rows := make([]map[string]string, 0, len(names))
			for _, n := range names {
				d, _ := strategy.Describe(n)
				rows = append(rows, map[string]string{"name": n, "description": d})
			}
			report["strategies"] = rows
		} else {
			t := metrics.NewTable("Registered storage-transfer strategies", "strategy", "description")
			for _, n := range names {
				d, _ := strategy.Describe(n)
				t.AddRow(n, d)
			}
			fmt.Println(t)
		}
	}
	if want("campaign") {
		ran = true
		start := time.Now()
		rows := experiments.RunCampaign(scale)
		if *jsonOut {
			report["campaign"] = rows
		} else {
			for _, t := range experiments.CampaignTables(scale, rows) {
				fmt.Println(t)
			}
			fmt.Printf("(campaign %s scale: %.1fs wall)\n\n", scale, time.Since(start).Seconds())
		}
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "paperrepro: unknown experiment %q\n", *exp)
		os.Exit(2)
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			fmt.Fprintf(os.Stderr, "paperrepro: %v\n", err)
			os.Exit(1)
		}
	}
}
