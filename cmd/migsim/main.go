// Command migsim runs live-migration scenarios through the declarative
// public API. In single-VM mode (the default) one VM runs a chosen workload
// and storage transfer approach and is migrated after a warm-up, with a full
// measurement summary. With -vms N (N > 1) it runs a campaign: a fleet of N
// VMs migrates together under an orchestration policy, and the campaign
// aggregates are reported. -json emits the measurements as machine-readable
// JSON instead of text.
//
// Usage:
//
//	migsim [-approach <strategy>] [-list]
//	       [-workload ior|asyncwr|none] [-scale small|paper] [-warmup s]
//	       [-threshold n]
//	       [-vms n] [-policy all-at-once|serial|batched-k|cycle-aware] [-k n]
//	       [-crash-at s] [-retries n] [-retry-backoff s]
//	       [-degrade-at s] [-degrade-dur s] [-degrade-factor f]
//	       [-partition node:start:dur]
//	       [-bg-rate MB/s] [-bg-stop s]
//	       [-trace] [-json]
//
// -approach accepts any registered storage transfer strategy — the paper's
// five (our-approach, mirror, postcopy, precopy, pvfs-shared) plus the
// adaptive-threshold hybrid ("adaptive"); -list prints the registry and
// exits. -threshold overrides the Algorithm 1 write-count cutoff for
// push-based strategies, making the paper's threshold ablation runnable from
// the CLI.
//
// Degraded-mode flags: -crash-at injects a destination crash into the first
// VM's migration at the given time (give it a retry budget with -retries);
// -degrade-* scales the destination node's NIC for a window; -partition cuts
// a node off the network for a window — shared-volume leases it holds are
// fenced once silent past TTL+grace, reported as fenced attempts; -bg-* runs
// background cross traffic into the destination until -bg-stop.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	hybridmig "github.com/hybridmig/hybridmig"
)

func main() {
	approachName := flag.String("approach", "our-approach", "storage transfer strategy (see -list)")
	listStrategies := flag.Bool("list", false, "list the registered strategies and exit")
	workloadName := flag.String("workload", "ior", "guest workload: ior, asyncwr, none")
	scaleName := flag.String("scale", "small", "small or paper")
	warmup := flag.Float64("warmup", -1, "seconds before the migration (default: scale's warm-up)")
	threshold := flag.Int("threshold", -1, "Algorithm 1 write-count cutoff for push-based strategies (-1 = default)")
	vms := flag.Int("vms", 1, "number of VMs; > 1 runs an orchestrated campaign")
	policyName := flag.String("policy", "batched-k", "campaign policy: all-at-once, serial, batched-k, cycle-aware")
	batchK := flag.Int("k", 2, "admission width for the batched-k and cycle-aware policies")
	traceRun := flag.Bool("trace", false, "print the observer event stream while the scenario runs")
	jsonOut := flag.Bool("json", false, "emit machine-readable JSON instead of text")
	crashAt := flag.Float64("crash-at", 0, "inject a destination crash into the first VM's migration at this time (0 = off)")
	retries := flag.Int("retries", 3, "max migration attempts per VM when faults are injected")
	retryBackoff := flag.Float64("retry-backoff", 1, "seconds before an aborted migration retries")
	degradeAt := flag.Float64("degrade-at", 0, "degrade the destination node's NIC at this time (0 = off)")
	degradeDur := flag.Float64("degrade-dur", 10, "degradation window in seconds")
	degradeFactor := flag.Float64("degrade-factor", 0.25, "degraded NIC bandwidth as a fraction of nominal")
	partition := flag.String("partition", "", "partition a node off the network: node:start:duration (e.g. 1:8.2:8)")
	bgRate := flag.Float64("bg-rate", 0, "background cross-traffic pacing in MB/s into the destination (0 = off)")
	bgStop := flag.Float64("bg-stop", 60, "background traffic stop time in seconds")
	preseed := flag.Bool("preseed", false, "model pre-staged images: the base image is already on every node's local storage")
	parallel := flag.Int("parallel", 0, "component-parallel kernel workers (0 = serial kernel, -1 = GOMAXPROCS); decomposition needs -preseed")
	flag.Parse()
	df := degradedFlags{
		crashAt: *crashAt, retries: *retries, retryBackoff: *retryBackoff,
		degradeAt: *degradeAt, degradeDur: *degradeDur, degradeFactor: *degradeFactor,
		bgRate: *bgRate, bgStop: *bgStop,
	}
	if *partition != "" {
		node, at, dur, err := parsePartition(*partition)
		if err != nil {
			fmt.Fprintf(os.Stderr, "migsim: %v\n", err)
			os.Exit(2)
		}
		df.partNode, df.partAt, df.partDur, df.partSet = node, at, dur, true
	}
	if err := df.validate(); err != nil {
		fmt.Fprintf(os.Stderr, "migsim: %v\n", err)
		os.Exit(2)
	}

	if *listStrategies {
		for _, a := range hybridmig.Strategies() {
			desc, _ := hybridmig.StrategyDescription(a)
			fmt.Printf("%-14s %s\n", a, desc)
		}
		return
	}
	var approach hybridmig.Approach
	for _, a := range hybridmig.Strategies() {
		if string(a) == *approachName {
			approach = a
		}
	}
	if approach == "" {
		fmt.Fprintf(os.Stderr, "migsim: unknown strategy %q (run migsim -list for the registry)\n", *approachName)
		os.Exit(2)
	}
	var common []hybridmig.Option
	if *threshold >= 0 {
		common = append(common, hybridmig.WithThreshold(uint32(*threshold)))
	}
	if *preseed {
		common = append(common, hybridmig.WithPreseededImages())
	}
	if *parallel != 0 {
		common = append(common, hybridmig.WithParallel(*parallel))
	}
	scale := hybridmig.ScaleSmall
	if *scaleName == "paper" {
		scale = hybridmig.ScalePaper
	}
	if *vms > 1 {
		var pol hybridmig.Policy
		switch *policyName {
		case "all-at-once":
			pol = hybridmig.AllAtOnce()
		case "serial":
			pol = hybridmig.Serial()
		case "batched-k":
			pol = hybridmig.BatchedK(*batchK)
		case "cycle-aware":
			pol = hybridmig.CycleAware(*batchK)
		default:
			fmt.Fprintf(os.Stderr, "migsim: unknown policy %q\n", *policyName)
			os.Exit(2)
		}
		runCampaign(scale, approach, *workloadName, *warmup, *vms, pol, *traceRun, *jsonOut,
			append(common, df.options("vm00", *vms, *vms+(*vms+1)/2)...))
		return
	}
	runSingle(scale, approach, *workloadName, *warmup, *traceRun, *jsonOut,
		append(common, df.options("vm0", 1, 10)...))
}

// errFlagSyntax is wrapped by every fault/traffic flag validation failure, so
// a malformed spec is a named, testable error naming the expected grammar —
// never a zero value silently altering the run.
var errFlagSyntax = errors.New("invalid flag value")

func flagErrf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", errFlagSyntax, fmt.Sprintf(format, args...))
}

// parsePartition parses -partition's node:start:duration grammar strictly:
// exactly three ':'-separated fields, node a non-negative integer, start a
// non-negative time, duration positive. No trailing junk is tolerated (the
// old Sscanf parser silently accepted "1:8.2:8xyz").
func parsePartition(s string) (node int, at, dur float64, err error) {
	const grammar = "-partition wants node:start:duration (e.g. 1:8.2:8)"
	fields := strings.Split(s, ":")
	if len(fields) != 3 {
		return 0, 0, 0, flagErrf("%s, got %q", grammar, s)
	}
	node, err = strconv.Atoi(fields[0])
	if err != nil || node < 0 {
		return 0, 0, 0, flagErrf("%s; node must be a non-negative integer, got %q", grammar, fields[0])
	}
	at, err = strconv.ParseFloat(fields[1], 64)
	if err != nil || at < 0 {
		return 0, 0, 0, flagErrf("%s; start must be a non-negative time in seconds, got %q", grammar, fields[1])
	}
	dur, err = strconv.ParseFloat(fields[2], 64)
	if err != nil || dur <= 0 {
		return 0, 0, 0, flagErrf("%s; duration must be a positive span in seconds, got %q", grammar, fields[2])
	}
	return node, at, dur, nil
}

// degradedFlags bundles the fault/traffic/retry flags.
type degradedFlags struct {
	crashAt, retryBackoff                float64
	retries                              int
	degradeAt, degradeDur, degradeFactor float64
	partNode                             int
	partAt, partDur                      float64
	partSet                              bool
	bgRate, bgStop                       float64
}

// validate rejects malformed fault/traffic flag combinations with a named
// error before they can silently alter the run.
func (d degradedFlags) validate() error {
	if d.crashAt < 0 {
		return flagErrf("-crash-at must be >= 0 seconds (0 disables), got %g", d.crashAt)
	}
	if d.retries < 0 {
		return flagErrf("-retries must be >= 0 attempts (0 means a single attempt), got %d", d.retries)
	}
	if d.retryBackoff < 0 {
		return flagErrf("-retry-backoff must be >= 0 seconds, got %g", d.retryBackoff)
	}
	if d.degradeAt < 0 {
		return flagErrf("-degrade-at must be >= 0 seconds (0 disables), got %g", d.degradeAt)
	}
	if d.degradeAt > 0 {
		if d.degradeDur <= 0 {
			return flagErrf("-degrade-dur must be a positive window in seconds, got %g", d.degradeDur)
		}
		if d.degradeFactor < 0 || d.degradeFactor > 1 {
			return flagErrf("-degrade-factor must be a fraction in [0,1], got %g", d.degradeFactor)
		}
	}
	if d.bgRate < 0 {
		return flagErrf("-bg-rate must be >= 0 MB/s (0 disables), got %g", d.bgRate)
	}
	if d.bgRate > 0 && d.bgStop <= 0 {
		return flagErrf("-bg-stop must be a positive time in seconds when -bg-rate is set, got %g", d.bgStop)
	}
	return nil
}

// options translates the flags into scenario options targeting the first
// VM's migration (firstVM migrates to dstNode in both modes); totalNodes
// bounds the background-traffic source choice.
func (d degradedFlags) options(firstVM string, dstNode, totalNodes int) []hybridmig.Option {
	var opts []hybridmig.Option
	var faults []hybridmig.FaultSpec
	if d.crashAt > 0 {
		faults = append(faults, hybridmig.FaultSpec{
			Kind: hybridmig.FaultDestCrash, VM: firstVM, At: d.crashAt})
	}
	if d.degradeAt > 0 {
		faults = append(faults, hybridmig.FaultSpec{
			Kind: hybridmig.FaultLinkDegrade, Node: dstNode,
			At: d.degradeAt, Duration: d.degradeDur, Factor: d.degradeFactor})
	}
	if d.partSet {
		faults = append(faults, hybridmig.FaultSpec{
			Kind: hybridmig.FaultPartition, Node: d.partNode,
			At: d.partAt, Duration: d.partDur})
	}
	if len(faults) > 0 {
		opts = append(opts, hybridmig.WithFaults(faults...),
			hybridmig.WithRetry(hybridmig.RetrySpec{MaxAttempts: d.retries, Backoff: d.retryBackoff}))
	}
	if d.bgRate > 0 {
		opts = append(opts, hybridmig.WithBackgroundTraffic(hybridmig.TrafficSpec{
			Src: (dstNode + 1) % totalNodes, Dst: dstNode, Start: 0, Stop: d.bgStop,
			Rate: d.bgRate * float64(1<<20)}))
	}
	return opts
}

// workloadSpec maps the -workload flag to a declarative spec using the
// scale's default parameters.
func workloadSpec(set hybridmig.Setup, name string) hybridmig.WorkloadSpec {
	switch name {
	case "ior":
		return hybridmig.IOR(&set.IOR)
	case "asyncwr":
		return hybridmig.AsyncWR(&set.AsyncWR, 0)
	case "none":
		return hybridmig.WorkloadSpec{}
	}
	fmt.Fprintf(os.Stderr, "migsim: unknown workload %q\n", name)
	os.Exit(2)
	return hybridmig.WorkloadSpec{}
}

// traceOption subscribes a printing observer when -trace is set.
func traceOption(enabled bool) []hybridmig.Option {
	if !enabled {
		return nil
	}
	obs := hybridmig.ObserverFunc(func(e hybridmig.Event) {
		fmt.Fprintln(os.Stderr, e)
	})
	return []hybridmig.Option{hybridmig.WithObserver(obs), hybridmig.WithSampleInterval(1)}
}

// fail prints the scenario error and exits nonzero.
func fail(err error) {
	fmt.Fprintf(os.Stderr, "migsim: %v\n", err)
	os.Exit(1)
}

// runCampaign migrates a fleet of n VMs together under the policy, packing
// two migrations per destination node as in the campaign experiment.
func runCampaign(scale hybridmig.Scale, approach hybridmig.Approach, workloadName string, warmup float64, n int, pol hybridmig.Policy, traceRun, jsonOut bool, degraded []hybridmig.Option) {
	set := hybridmig.SetupFor(scale, n+(n+1)/2)
	if warmup >= 0 {
		set.Warmup = warmup
	}
	opts := append(traceOption(traceRun), hybridmig.WithConfig(set.Cluster))
	s := hybridmig.NewScenario(append(opts, degraded...)...)
	steps := make([]hybridmig.Step, n)
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("vm%02d", i)
		s.AddVM(hybridmig.VMSpec{Name: name, Node: i, Approach: approach,
			Workload: workloadSpec(set, workloadName)})
		steps[i] = hybridmig.Step{VM: name, Dst: n + i/2}
	}
	s.Campaign(set.Warmup, pol, steps...)
	res, err := s.Run()
	if err != nil {
		fail(err)
	}
	c := res.Campaigns[0]

	if jsonOut {
		out := struct {
			Approach hybridmig.Approach  `json:"approach"`
			Workload string              `json:"workload"`
			Scale    string              `json:"scale"`
			Campaign *hybridmig.Campaign `json:"campaign"`
		}{approach, workloadName, scale.String(), c}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fail(err)
		}
		return
	}
	fmt.Printf("approach:  %s\n", approach)
	fmt.Printf("workload:  %s (%s scale), %d VMs, policy %s\n\n", workloadName, scale, n, pol.Name())
	if c.Retries > 0 || c.ExhaustedJobs > 0 {
		fmt.Printf("faults:    %d retries, %d exhausted jobs, %.1f MB wasted\n\n",
			c.Retries, c.ExhaustedJobs, c.WastedBytes/(1<<20))
	}
	fmt.Println(c.Summary())
	if len(c.Traffic) > 0 {
		fmt.Println("traffic during campaign:")
		for _, tbytes := range c.Traffic {
			fmt.Printf("  %-8s %8.1f MB\n", tbytes.Tag, tbytes.Bytes/(1<<20))
		}
	}
}

// singleReport is the -json shape of a single-VM run.
type singleReport struct {
	Approach      hybridmig.Approach       `json:"approach"`
	Workload      string                   `json:"workload"`
	Scale         string                   `json:"scale"`
	MigrationS    float64                  `json:"migration_s"`
	DowntimeMS    float64                  `json:"downtime_ms"`
	Rounds        int                      `json:"rounds"`
	Converged     bool                     `json:"converged"`
	Retries       int                      `json:"retries,omitempty"`
	AbortedBytes  float64                  `json:"aborted_bytes,omitempty"`
	Exhausted     bool                     `json:"exhausted,omitempty"`
	Fenced        int                      `json:"fenced,omitempty"`
	SplitBrain    int                      `json:"split_brain_windows,omitempty"`
	MemoryBytes   float64                  `json:"memory_bytes"`
	BlockBytes    float64                  `json:"block_bytes,omitempty"`
	Core          hybridmig.CoreStats      `json:"core_stats"`
	Traffic       map[string]float64       `json:"traffic_bytes"`
	WorkloadStats hybridmig.WorkloadResult `json:"workload_stats"`
}

// runSingle is the original one-VM scenario.
func runSingle(scale hybridmig.Scale, approach hybridmig.Approach, workloadName string, warmup float64, traceRun, jsonOut bool, degraded []hybridmig.Option) {
	set := hybridmig.SetupFor(scale, 10)
	if warmup >= 0 {
		set.Warmup = warmup
	}
	opts := append(traceOption(traceRun), hybridmig.WithConfig(set.Cluster))
	s := hybridmig.NewScenario(append(opts, degraded...)...).
		AddVM(hybridmig.VMSpec{Name: "vm0", Node: 0, Approach: approach,
			Workload: workloadSpec(set, workloadName)}).
		MigrateAt("vm0", 1, set.Warmup)
	res, err := s.Run()
	if err != nil {
		fail(err)
	}
	vm := res.VM("vm0")

	if jsonOut {
		out := singleReport{
			Approach:      approach,
			Workload:      workloadName,
			Scale:         scale.String(),
			MigrationS:    vm.MigrationTime,
			DowntimeMS:    vm.Downtime * 1000,
			Rounds:        vm.Rounds,
			Converged:     vm.Converged,
			Retries:       vm.Retries,
			AbortedBytes:  vm.AbortedBytes,
			Exhausted:     vm.Exhausted,
			Fenced:        vm.Fenced,
			SplitBrain:    res.SplitBrainWindows,
			MemoryBytes:   vm.MemoryBytes,
			BlockBytes:    vm.BlockBytes,
			Core:          vm.Core,
			Traffic:       res.Traffic,
			WorkloadStats: vm.Workload,
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fail(err)
		}
		return
	}
	fmt.Printf("approach:        %s\n", approach)
	fmt.Printf("workload:        %s (%s scale)\n", workloadName, scale)
	fmt.Printf("migration time:  %.2f s\n", vm.MigrationTime)
	fmt.Printf("downtime:        %.0f ms\n", vm.Downtime*1000)
	if vm.Aborts > 0 || vm.Exhausted {
		fmt.Printf("faults:          %d aborted attempts, %d retries, %.1f MB wasted (exhausted=%v)\n",
			vm.Aborts, vm.Retries, vm.AbortedBytes/(1<<20), vm.Exhausted)
	}
	if vm.Fenced > 0 {
		fmt.Printf("fenced:          %d attempts aborted by lease fencing\n", vm.Fenced)
	}
	fmt.Printf("memory moved:    %.1f MB in %d rounds (converged=%v)\n",
		vm.MemoryBytes/(1<<20), vm.Rounds, vm.Converged)
	if vm.BlockBytes > 0 {
		fmt.Printf("block migration: %.1f MB\n", vm.BlockBytes/(1<<20))
	}
	st := vm.Core
	// Manager-backed strategies (completed core stats) report transfer stats
	// even when a run moved no chunks (e.g. -workload none still prefetches
	// base content); strategy-agnostic so registered strategies need no case
	// here.
	if st.Complete {
		fmt.Printf("pushed:          %d chunks (%.1f MB)\n", st.PushedChunks, st.PushedBytes/(1<<20))
		fmt.Printf("pulled:          %d background + %d on-demand (%.1f MB)\n",
			st.PulledChunks, st.OnDemandPulls, (st.PulledBytes+st.OnDemandBytes)/(1<<20))
		fmt.Printf("hot (deferred):  %d chunks\n", st.SkippedHot)
		fmt.Printf("base prefetch:   %.1f MB\n", st.PrefetchBytes/(1<<20))
	}
	fmt.Printf("network traffic: memory %.1f MB, push %.1f MB, pull %.1f MB, blockmig %.1f MB, mirror %.1f MB, repo %.1f MB, pfs %.1f MB\n",
		res.Traffic["memory"]/(1<<20),
		res.Traffic["push"]/(1<<20),
		res.Traffic["pull"]/(1<<20),
		res.Traffic["blockmig"]/(1<<20),
		res.Traffic["mirror"]/(1<<20),
		res.Traffic["repo"]/(1<<20),
		res.Traffic["pfs"]/(1<<20))
	switch vm.Workload.Kind {
	case hybridmig.WorkloadIOR:
		fmt.Printf("IOR:             read %.1f MB/s, write %.1f MB/s over %d iterations\n",
			vm.Workload.ReadBW()/(1<<20), vm.Workload.WriteBW()/(1<<20), vm.Workload.Iterations)
	case hybridmig.WorkloadAsyncWR:
		fmt.Printf("AsyncWR:         %d iterations, %.2f MB/s sustained\n",
			vm.Workload.Counter, vm.Workload.WriteBW()/(1<<20))
	}
}
