// Command migsim runs a single live-migration scenario: one VM under a
// chosen workload and storage transfer approach, migrated after a warm-up,
// with a full measurement summary.
//
// Usage:
//
//	migsim [-approach our-approach|mirror|postcopy|precopy|pvfs-shared]
//	       [-workload ior|asyncwr|none] [-scale small|paper] [-warmup s]
package main

import (
	"flag"
	"fmt"
	"os"

	hybridmig "github.com/hybridmig/hybridmig"
	"github.com/hybridmig/hybridmig/internal/experiments"
	"github.com/hybridmig/hybridmig/internal/flow"
	"github.com/hybridmig/hybridmig/internal/sim"
	"github.com/hybridmig/hybridmig/internal/workload"
)

func main() {
	approachName := flag.String("approach", "our-approach", "storage transfer approach")
	workloadName := flag.String("workload", "ior", "guest workload: ior, asyncwr, none")
	scaleName := flag.String("scale", "small", "small or paper")
	warmup := flag.Float64("warmup", -1, "seconds before the migration (default: scale's warm-up)")
	flag.Parse()

	var approach hybridmig.Approach
	for _, a := range hybridmig.Approaches() {
		if string(a) == *approachName {
			approach = a
		}
	}
	if approach == "" {
		fmt.Fprintf(os.Stderr, "migsim: unknown approach %q\n", *approachName)
		os.Exit(2)
	}
	scale := experiments.ScaleSmall
	if *scaleName == "paper" {
		scale = experiments.ScalePaper
	}
	set := experiments.NewSetup(scale, 10)
	if *warmup >= 0 {
		set.Warmup = *warmup
	}

	tb := hybridmig.NewTestbed(set.Cluster)
	inst := tb.Launch("vm0", 0, approach)

	var ior *workload.IOR
	var awr *workload.AsyncWR
	switch *workloadName {
	case "ior":
		inst.Guest.Buffered = false
		ior = workload.NewIOR(set.IOR)
		tb.Eng.Go("ior", func(p *sim.Proc) { ior.Run(p, inst.Guest) })
	case "asyncwr":
		awr = workload.NewAsyncWR(set.AsyncWR)
		tb.Eng.Go("asyncwr", func(p *sim.Proc) { awr.Run(p, inst.Guest) })
	case "none":
	default:
		fmt.Fprintf(os.Stderr, "migsim: unknown workload %q\n", *workloadName)
		os.Exit(2)
	}

	tb.Eng.Go("middleware", func(p *sim.Proc) {
		p.Sleep(set.Warmup)
		tb.MigrateInstance(p, inst, 1)
	})
	hybridmig.Run(tb)

	fmt.Printf("approach:        %s\n", approach)
	fmt.Printf("workload:        %s (%s scale)\n", *workloadName, scale)
	fmt.Printf("migration time:  %.2f s\n", inst.MigrationTime)
	fmt.Printf("downtime:        %.0f ms\n", inst.HVResult.Downtime*1000)
	fmt.Printf("memory moved:    %.1f MB in %d rounds (converged=%v)\n",
		inst.HVResult.MemoryBytes/(1<<20), inst.HVResult.Rounds, inst.HVResult.Converged)
	if inst.HVResult.BlockBytes > 0 {
		fmt.Printf("block migration: %.1f MB\n", inst.HVResult.BlockBytes/(1<<20))
	}
	if inst.Core != nil {
		st := inst.CoreStats
		fmt.Printf("pushed:          %d chunks (%.1f MB)\n", st.PushedChunks, st.PushedBytes/(1<<20))
		fmt.Printf("pulled:          %d background + %d on-demand (%.1f MB)\n",
			st.PulledChunks, st.OnDemandPulls, (st.PulledBytes+st.OnDemandBytes)/(1<<20))
		fmt.Printf("hot (deferred):  %d chunks\n", st.SkippedHot)
		fmt.Printf("base prefetch:   %.1f MB\n", st.PrefetchBytes/(1<<20))
	}
	net := tb.Cl.Net
	fmt.Printf("network traffic: memory %.1f MB, push %.1f MB, pull %.1f MB, blockmig %.1f MB, mirror %.1f MB, repo %.1f MB, pfs %.1f MB\n",
		net.BytesByTag(flow.TagMemory)/(1<<20),
		net.BytesByTag(flow.TagStoragePush)/(1<<20),
		net.BytesByTag(flow.TagStoragePull)/(1<<20),
		net.BytesByTag(flow.TagBlockMig)/(1<<20),
		net.BytesByTag(flow.TagMirror)/(1<<20),
		net.BytesByTag(flow.TagRepo)/(1<<20),
		net.BytesByTag(flow.TagPFS)/(1<<20))
	if ior != nil {
		fmt.Printf("IOR:             read %.1f MB/s, write %.1f MB/s over %d iterations\n",
			ior.Report.ReadBW()/(1<<20), ior.Report.WriteBW()/(1<<20), ior.Report.Iterations)
	}
	if awr != nil {
		fmt.Printf("AsyncWR:         %d iterations, %.2f MB/s sustained\n",
			awr.Report.Counter, awr.Report.WriteBW()/(1<<20))
	}
}
